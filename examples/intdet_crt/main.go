// Exact integer determinants by Chinese remaindering: run the Kaltofen–Pan
// determinant over several word-sized prime fields and reconstruct the
// integer value — the classic application pattern for abstract-field
// algorithms (the same code runs unchanged over every F_p).
//
//	go run ./examples/intdet_crt
package main

import (
	"fmt"
	"log"
	"math/big"

	"repro/internal/core"
	"repro/internal/ff"
	"repro/internal/matrix"
)

// Word-sized primes just below 2⁶² (verified by NewFp64).
var crtPrimes = []uint64{
	4611686018427387847, // 2⁶² − 57
	4611686018427387817, // 2⁶² − 87
	4611686018427387787, // 2⁶² − 117
}

func main() {
	const n = 12
	src := ff.NewSource(99)

	// An integer matrix with entries in [−50, 50].
	entries := make([][]int64, n)
	for i := range entries {
		entries[i] = make([]int64, n)
		for j := range entries[i] {
			entries[i][j] = int64(src.Uint64n(101)) - 50
		}
	}

	// Hadamard bound: |det| ≤ ∏ row norms ≤ (50·√n)ⁿ. Check the CRT
	// modulus covers 2×bound (sign range).
	bound := hadamardBound(entries)
	modulus := big.NewInt(1)
	for _, p := range crtPrimes {
		modulus.Mul(modulus, new(big.Int).SetUint64(p))
	}
	if modulus.Cmp(new(big.Int).Lsh(bound, 1)) <= 0 {
		log.Fatal("CRT modulus too small for the Hadamard bound; add primes")
	}
	fmt.Printf("n = %d, Hadamard bound ≈ %s, CRT modulus ≈ %s\n",
		n, sci(bound), sci(modulus))

	// Residues via the Kaltofen–Pan determinant over each F_p.
	residues := make([]*big.Int, len(crtPrimes))
	for k, p := range crtPrimes {
		f := ff.MustFp64(p)
		s, err := core.NewSolver[uint64](f, core.Options{Seed: uint64(k) + 1})
		if err != nil {
			log.Fatal(err)
		}
		a := matrix.NewDense[uint64](f, n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, f.FromInt64(entries[i][j]))
			}
		}
		d, err := s.Det(a)
		if err != nil {
			log.Fatalf("F_%d: %v", p, err)
		}
		residues[k] = new(big.Int).SetUint64(d)
		fmt.Printf("det mod %d = %d\n", p, d)
	}

	// CRT reconstruction into the symmetric range.
	det := crt(residues, crtPrimes)
	half := new(big.Int).Rsh(modulus, 1)
	if det.Cmp(half) > 0 {
		det.Sub(det, modulus)
	}
	fmt.Printf("det(A) = %s\n", det)

	// Cross-check with exact rational Gaussian elimination.
	rf := ff.NewRat()
	ra := matrix.NewDense[*big.Rat](rf, n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			ra.Set(i, j, rf.FromInt64(entries[i][j]))
		}
	}
	want, err := matrix.Det[*big.Rat](rf, ra)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact rational check: %s — match: %v\n",
		want.RatString(), want.Num().Cmp(det) == 0 && want.IsInt())
}

func hadamardBound(rows [][]int64) *big.Int {
	bound := big.NewInt(1)
	for _, row := range rows {
		norm2 := big.NewInt(0)
		for _, v := range row {
			norm2.Add(norm2, new(big.Int).Mul(big.NewInt(v), big.NewInt(v)))
		}
		// Integer ceiling of the row norm.
		r := new(big.Int).Sqrt(norm2)
		r.Add(r, big.NewInt(1))
		bound.Mul(bound, r)
	}
	return bound
}

// crt combines residues by iterative pairwise reconstruction.
func crt(residues []*big.Int, primes []uint64) *big.Int {
	x := new(big.Int).Set(residues[0])
	m := new(big.Int).SetUint64(primes[0])
	for i := 1; i < len(primes); i++ {
		p := new(big.Int).SetUint64(primes[i])
		// x' ≡ x (mod m), x' ≡ r (mod p): x' = x + m·((r−x)·m⁻¹ mod p).
		diff := new(big.Int).Sub(residues[i], x)
		diff.Mod(diff, p)
		minv := new(big.Int).ModInverse(new(big.Int).Mod(m, p), p)
		t := new(big.Int).Mul(diff, minv)
		t.Mod(t, p)
		x.Add(x, new(big.Int).Mul(m, t))
		m.Mul(m, p)
	}
	return x.Mod(x, m)
}

func sci(v *big.Int) string {
	f := new(big.Float).SetInt(v)
	return f.Text('e', 3)
}
