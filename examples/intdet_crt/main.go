// Exact integer determinants by Chinese remaindering — the classic
// application pattern for abstract-field algorithms (the same generic
// determinant code runs unchanged over every F_p).
//
// Since PR 9 the whole pattern is one call: core.IntSolver sizes a
// certified prime set from the Hadamard bound, runs the Kaltofen–Pan
// determinant over each residue field concurrently, recombines by CRT,
// and verifies the result a posteriori. This example makes that call and
// cross-checks it against exact rational Gaussian elimination.
//
//	go run ./examples/intdet_crt
package main

import (
	"fmt"
	"log"
	"math/big"
	"time"

	"repro/internal/core"
	"repro/internal/ff"
	"repro/internal/matrix"
	"repro/internal/rns"
)

func main() {
	const n = 12
	src := ff.NewSource(99)

	// An integer matrix with entries in [−50, 50].
	a := rns.NewIntMat(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, big.NewInt(int64(src.Uint64n(101))-50))
		}
	}
	bound := rns.HadamardBound(a)
	fmt.Printf("n = %d, Hadamard bound ≈ %s\n", n, sci(bound))

	// One call replaces the old hand-rolled loop: prime selection (residue
	// count certified from the Hadamard bound), one KP determinant per
	// residue field across a worker pool, CRT, and verification against a
	// fresh check prime.
	s := core.MustNewIntSolver(core.IntOptions{Seed: 1})
	start := time.Now()
	det, stats, err := s.DetInt(a)
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range stats.Primes {
		fmt.Printf("residue %d: NTT prime %d\n", i, p)
	}
	fmt.Printf("det(A) = %s  (%d residues, verified=%v, %s)\n",
		det, stats.Residues, stats.Verified, time.Since(start).Round(time.Microsecond))

	// Cross-check with exact rational Gaussian elimination.
	rf := ff.NewRat()
	ra := matrix.NewDense[*big.Rat](rf, n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			ra.Set(i, j, new(big.Rat).SetInt(a.At(i, j)))
		}
	}
	want, err := matrix.Det[*big.Rat](rf, ra)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact rational check: %s — match: %v\n",
		want.RatString(), want.IsInt() && want.Num().Cmp(det) == 0)
}

func sci(v *big.Int) string {
	f := new(big.Float).SetInt(v)
	return f.Text('e', 3)
}
