// Sparse black-box solving — Wiedemann's method, the motivation of the
// paper's §2: solve a large sparse system touching the matrix only through
// matrix-vector products, and compare the field-operation count against
// dense Gaussian elimination.
//
//	go run ./examples/sparse_wiedemann
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ff"
	"repro/internal/matrix"
	"repro/internal/wiedemann"
)

func main() {
	base := ff.MustFp64(ff.P62)
	src := ff.NewSource(7)
	const n = 300
	const density = 0.01

	// ~n + density·n² non-zero entries.
	sp := matrix.RandomSparse[uint64](base, src, n, density, base.Modulus())
	fmt.Printf("sparse system: n = %d, nnz = %d (%.1f per row)\n",
		n, sp.NNZ(), float64(sp.NNZ())/n)

	b := ff.SampleVec[uint64](base, src, n, base.Modulus())

	// Count field operations through the instrumented wrapper.
	cf := ff.NewCounting[uint64](base)
	x, err := wiedemann.Solve[uint64](cf, matrix.SparseBox[uint64]{M: sp}, b, src, base.Modulus(), 0)
	if err != nil {
		log.Fatal(err)
	}
	wOps := cf.Counts()
	if !ff.VecEqual[uint64](base, sp.Apply(base, x), b) {
		log.Fatal("verification failed")
	}
	fmt.Printf("wiedemann: %d ops (%d mul, %d add, %d div) — verified\n",
		wOps.Total(), wOps.Mul, wOps.Add, wOps.Div)

	cf.Reset()
	if _, err := matrix.Solve[uint64](cf, sp.Dense(base), b); err != nil {
		log.Fatal(err)
	}
	luOps := cf.Counts()
	fmt.Printf("gaussian : %d ops\n", luOps.Total())
	fmt.Printf("advantage: %.1f× fewer operations for the black-box method\n",
		float64(luOps.Total())/float64(wOps.Total()))

	// The same through the façade, plus the Las Vegas singularity test.
	s, err := core.NewSolver[uint64](base, core.Options{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	sing, err := s.IsSingular(sp.Dense(base))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("singular?  %v (Las Vegas certificate)\n", sing)
}
