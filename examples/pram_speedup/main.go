// PRAM processor efficiency: schedule the Theorem 4 circuit with Brent's
// theorem for a sweep of processor counts, and evaluate it with a real
// goroutine pool — the paper's "processor efficient" claim made concrete.
//
//	go run ./examples/pram_speedup
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"repro/internal/circuit"
	"repro/internal/ff"
	"repro/internal/kp"
	"repro/internal/matrix"
)

func main() {
	f := ff.MustFp64(ff.P62)
	src := ff.NewSource(5)
	const n = 24

	b, err := kp.TraceSolve[uint64](f, matrix.Classical[circuit.Wire]{}, n)
	if err != nil {
		log.Fatal(err)
	}
	one := b.BrentSchedule(1)
	fmt.Printf("Theorem 4 circuit, n = %d: work W = %d, depth D = %d\n",
		n, one.Work, one.Depth)
	fmt.Printf("processor-efficient point p* = W/D = %d\n\n", b.ProcessorEfficientP())

	fmt.Printf("%-10s %-10s %-10s %-12s %s\n", "p", "T_p", "speedup", "efficiency", "T_p ≤ W/p + D")
	for _, p := range []int{1, 4, 16, 64, 256, 1024, b.ProcessorEfficientP(), 1 << 16} {
		s := b.BrentSchedule(p)
		fmt.Printf("%-10d %-10d %-10.1f %-12.3f %v\n",
			p, s.Time, s.Speedup(), s.Efficiency(), s.BrentBoundHolds())
	}

	// Real cores: level-parallel evaluation with a goroutine pool.
	var a *matrix.Dense[uint64]
	for {
		a = matrix.Random[uint64](f, src, n, n, f.Modulus())
		if d, _ := matrix.Det[uint64](f, a); !f.IsZero(d) {
			break
		}
	}
	rhs := ff.SampleVec[uint64](f, src, n, f.Modulus())
	rnd := kp.DrawRandomness[uint64](f, src, n, f.Modulus())
	inputs := append(append(append([]uint64{}, a.Data...), rhs...), rnd.Flat()...)

	fmt.Printf("\nwall-clock evaluation (%d hardware threads):\n", runtime.GOMAXPROCS(0))
	var base time.Duration
	for _, w := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		best := time.Duration(1 << 62)
		for rep := 0; rep < 5; rep++ {
			start := time.Now()
			x, err := circuit.EvalParallel[uint64](b, f, inputs, w)
			if err != nil {
				log.Fatal(err)
			}
			if rep == 0 && !ff.VecEqual[uint64](f, a.MulVec(f, x), rhs) {
				log.Fatal("wrong answer from parallel evaluation")
			}
			if el := time.Since(start); el < best {
				best = el
			}
		}
		if w == 1 {
			base = best
		}
		fmt.Printf("  workers=%-3d  %-12s speedup %.2f\n", w, best, float64(base)/float64(best))
	}
}
