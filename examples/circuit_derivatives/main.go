// Theorem 5/6 demo: build the determinant circuit, differentiate it with
// the depth-preserving Baur–Strassen transformation, and read the matrix
// inverse off the gradient — the paper's marquee application ("Their
// motivating example was the same as ours").
//
//	go run ./examples/circuit_derivatives
package main

import (
	"fmt"
	"log"

	"repro/internal/circuit"
	"repro/internal/ff"
	"repro/internal/kp"
	"repro/internal/matrix"
)

func main() {
	f := ff.MustFp64(ff.P62)
	src := ff.NewSource(3)
	const n = 6

	// 1. The determinant circuit of §2/§3: n² inputs, 5n−1 random nodes.
	det, err := kp.TraceDet[uint64](f, matrix.Classical[circuit.Wire]{}, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("det circuit   : size %6d, depth %3d, randoms %d\n",
		det.LiveSize(), det.Depth(), det.NumRandom())

	// 2. Theorem 5: append the gradient. Every ∂det/∂a_{ij} — all n² of
	// them — costs at most 4× the original length, at O(1)× the depth.
	inv, err := kp.TraceInverse[uint64](f, matrix.Classical[circuit.Wire]{}, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inverse circuit: size %6d, depth %3d  (ratio %.2f, %.2f)\n",
		inv.LiveSize(), inv.Depth(),
		float64(inv.LiveSize())/float64(det.LiveSize()),
		float64(inv.Depth())/float64(det.Depth()))

	// 3. Evaluate: one circuit evaluation yields the whole inverse.
	var a *matrix.Dense[uint64]
	for {
		a = matrix.Random[uint64](f, src, n, n, f.Modulus())
		if d, _ := matrix.Det[uint64](f, a); !f.IsZero(d) {
			break
		}
	}
	rnd := kp.DrawRandomness[uint64](f, src, n, f.Modulus())
	m, err := kp.InverseFromCircuit[uint64](inv, f, a, rnd)
	if err != nil {
		log.Fatal(err)
	}
	ok := matrix.Mul[uint64](f, a, m).Equal(f, matrix.Identity[uint64](f, n))
	fmt.Printf("A·A⁻¹ = I     : %v\n", ok)

	// 4. The same trick gives transposed solving for free (§4 end):
	// differentiate f(y) = (A⁻¹y)ᵀb with respect to y.
	trans, err := kp.TraceTransposedSolve[uint64](f, matrix.Classical[circuit.Wire]{}, n)
	if err != nil {
		log.Fatal(err)
	}
	b := ff.SampleVec[uint64](f, src, n, f.Modulus())
	x, err := kp.TransposedSolveFromCircuit[uint64](trans, f, a, b, rnd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Aᵀx = b       : %v (via the transposition principle)\n",
		ff.VecEqual[uint64](f, a.Transpose().MulVec(f, x), b))
}
