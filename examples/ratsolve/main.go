// Exact solving over ℚ: a rational system A·x = b answered with exact
// rationals, no floating point anywhere. core.IntSolver clears
// denominators row by row, solves the integer image over a certified set
// of word-sized NTT primes (one independent Kaltofen–Pan solve per
// residue field), recombines by CRT, recovers the rational entries by
// lattice-based rational reconstruction, and verifies A·x = b exactly.
//
// The demo solves a Hilbert-like system — the standard stress test for
// exact rational arithmetic, where naive floating point loses all digits
// by n ≈ 12 — and prints the exact answer plus the residue statistics.
//
//	go run ./examples/ratsolve
package main

import (
	"fmt"
	"log"
	"math/big"
	"time"

	"repro/internal/core"
)

func main() {
	const n = 10

	// The Hilbert matrix H[i][j] = 1/(i+j+1) with b[i] = 1: notoriously
	// ill-conditioned over ℝ (condition number ≈ 10¹³ at n = 10), exactly
	// solvable over ℚ.
	a := make([][]*big.Rat, n)
	for i := range a {
		a[i] = make([]*big.Rat, n)
		for j := range a[i] {
			a[i][j] = big.NewRat(1, int64(i+j+1))
		}
	}
	b := make([]*big.Rat, n)
	for i := range b {
		b[i] = big.NewRat(1, 1)
	}

	s := core.MustNewIntSolver(core.IntOptions{Seed: 7})
	start := time.Now()
	x, stats, err := s.SolveRat(a, b)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range x.Rats() {
		fmt.Printf("x[%d] = %s\n", i, r.RatString())
	}
	fmt.Printf("\n%d residue fields, %d bad prime(s) replaced, parallel efficiency %.2f×, %s total\n",
		stats.Residues, stats.BadPrimes, stats.ParallelEfficiency, time.Since(start).Round(time.Microsecond))
	fmt.Printf("verified A·x = b exactly over ℚ: %v\n", stats.Verified)

	// Sanity: the solution of the Hilbert system is integral (a classical
	// identity — the inverse Hilbert matrix has integer entries).
	allInt := true
	for _, r := range x.Rats() {
		if !r.IsInt() {
			allInt = false
		}
	}
	fmt.Printf("all entries integral (inverse Hilbert matrices are integer): %v\n", allInt)
}
