// §5 extensions end-to-end: polynomial GCDs and resultants through
// structured linear algebra — Sylvester kernels, the branch-free
// known-degree GCD, black-box resultants via Wiedemann on the structured
// Sylvester operator, and the §4 transposed Vandermonde solver.
//
//	go run ./examples/gcd_resultant
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ff"
	"repro/internal/poly"
)

func main() {
	f := ff.MustFp64(ff.PNTT62)
	s, err := core.NewSolver[uint64](f, core.Options{Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	src := ff.NewSource(10)

	// Plant a gcd of degree 3.
	g := mustMonic(f, ff.SampleVec[uint64](f, src, 4, f.Modulus()))
	a := poly.Mul[uint64](f, g, randomMonic(f, src, 7))
	b := poly.Mul[uint64](f, g, randomMonic(f, src, 5))
	fmt.Printf("deg a = %d, deg b = %d, planted gcd degree %d\n",
		poly.Deg[uint64](f, a), poly.Deg[uint64](f, b), poly.Deg[uint64](f, g))

	// 1. GCD via the Sylvester kernel (no Euclidean remainder chain).
	h, err := s.GCD(a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Sylvester-kernel gcd: %s\n", poly.String[uint64](f, h))
	fmt.Printf("   matches planted:   %v\n", poly.Equal[uint64](f, h, g))

	// 2. Branch-free recovery once the degree is known — the form the
	// paper's parallel GCD circuits need (one structured linear solve,
	// no zero tests anywhere).
	h2, err := s.GCDKnownDegree(a, b, poly.Deg[uint64](f, g))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("known-degree gcd:     %s (equal: %v)\n",
		poly.String[uint64](f, h2), poly.Equal[uint64](f, h2, h))

	// 3. Resultants: shared factor ⇒ 0; after dividing it out ⇒ non-zero.
	r0, err := s.Resultant(a, b)
	if err != nil {
		log.Fatal(err)
	}
	aRed, _, err := poly.DivMod[uint64](f, a, g)
	if err != nil {
		log.Fatal(err)
	}
	bRed, _, err := poly.DivMod[uint64](f, b, g)
	if err != nil {
		log.Fatal(err)
	}
	r1, err := s.Resultant(aRed, bRed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resultant(a, b)       = %d (shared factor ⇒ 0)\n", r0)
	fmt.Printf("resultant(a/g, b/g)   = %d (coprime ⇒ non-zero)\n", r1)
	fmt.Println("   (computed by Wiedemann on the structured Sylvester operator:")
	fmt.Println("    every matrix-vector product is two polynomial multiplications)")

	// 4. Transposed Vandermonde solve via differentiated fast
	// interpolation (§4's closing construction).
	n := 8
	nodes := make([]uint64, n)
	for i := range nodes {
		nodes[i] = uint64(i + 1)
	}
	rhs := ff.SampleVec[uint64](f, src, n, f.Modulus())
	x, err := s.TransposedVandermonde(nodes, rhs)
	if err != nil {
		log.Fatal(err)
	}
	ok := ff.VecEqual[uint64](f, poly.VandermondeTransposedApply[uint64](f, nodes, x), rhs)
	fmt.Printf("transposed Vandermonde solve (n = %d): verified %v\n", n, ok)
}

func randomMonic(f ff.Fp64, src *ff.Source, deg int) []uint64 {
	p := ff.SampleVec[uint64](f, src, deg+1, f.Modulus())
	p[deg] = 1
	return p
}

func mustMonic(f ff.Fp64, p []uint64) []uint64 {
	p[len(p)-1] = 1
	return p
}
