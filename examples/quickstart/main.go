// Quickstart: solve a non-singular linear system over a word-sized prime
// field with the Kaltofen–Pan Theorem 4 solver, batch several right-hand
// sides through one shared front end, reuse a factored handle, and compute
// the determinant and inverse of the matrix.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ff"
	"repro/internal/matrix"
)

func main() {
	// The field: F_p for a 62-bit prime. Any ff.Field works — including
	// extension fields, big primes, and the rationals.
	f := ff.MustFp64(ff.P62)
	solver, err := core.NewSolver[uint64](f, core.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// A small system with a known solution.
	a := matrix.FromRows[uint64](f, [][]int64{
		{2, 1, 0, 0},
		{1, 3, 1, 0},
		{0, 1, 4, 1},
		{0, 0, 1, 5},
	})
	x0 := ff.VecFromInt64[uint64](f, []int64{1, 2, 3, 4})
	b := a.MulVec(f, x0)

	// Theorem 4: randomized, processor-efficient solve. The solver is Las
	// Vegas — the returned x is verified, never wrong.
	x, err := solver.Solve(a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("x          = %s\n", ff.VecString[uint64](f, x))
	fmt.Printf("recovered  = %v\n", ff.VecEqual[uint64](f, x, x0))

	// Batched solve: several right-hand sides share one preconditioning,
	// Krylov doubling, and minimum-polynomial recovery — the per-column
	// marginal cost is roughly one matrix product.
	src := ff.NewSource(7)
	bs := matrix.Random[uint64](f, src, 4, 3, f.Modulus())
	xs, err := solver.SolveBatch(a, bs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("A·X = B    = %v (for %d right-hand sides at once)\n",
		matrix.Mul[uint64](f, a, xs).Equal(f, bs), bs.Cols)

	// A reusable handle: Factor pays the Krylov front end once; every
	// subsequent Solve replays only the backsolve.
	h, err := solver.Factor(a)
	if err != nil {
		log.Fatal(err)
	}
	x2, err := h.Solve(b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("factored   = %v (same solution, no Krylov re-run)\n",
		ff.VecEqual[uint64](f, x2, x))

	// §2 determinant (via the Toeplitz machinery of §3).
	det, err := solver.Det(a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("det(A)     = %d\n", det)

	// Theorem 6: the inverse from the Baur–Strassen derivative of the
	// determinant circuit.
	inv, err := solver.Inverse(a)
	if err != nil {
		log.Fatal(err)
	}
	ok := matrix.Mul[uint64](f, a, inv).Equal(f, matrix.Identity[uint64](f, 4))
	fmt.Printf("A·A⁻¹ = I  = %v\n", ok)

	// The circuit behind the solve, with the paper's cost measures.
	circ, err := solver.SolveCircuit(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit    : size %d, depth %d, %d random nodes\n",
		circ.LiveSize(), circ.Depth(), circ.NumRandom())
}
