// Command kpsolve runs the Kaltofen–Pan algorithms on a linear system over
// a word-sized prime field, either randomly generated or read from a file.
//
// Usage:
//
//	kpsolve -n 32                     # random non-singular 32×32 system
//	kpsolve -n 16 -op det             # determinant
//	kpsolve -op solve -in system.txt  # read a system from a file
//	kpsolve -n 64 -rhs 8              # batched solve of 8 right-hand sides
//	kpsolve -n 256 -mul parallel      # pooled multicore multiplication
//	kpsolve -n 256 -precond implicit  # black-box Ã = A·H·D (no dense matmul)
//	kpsolve -n 256 -op gs             # Theorem 3 Toeplitz Gohberg–Semencul solve
//	kpsolve -n 8 -ring zz -op solve   # exact solve over ℤ (RNS/CRT engine)
//	kpsolve -n 8 -ring qq -op det     # exact determinant of a rational matrix
//	kpsolve -n 128 -trace out.json    # per-phase Chrome trace_event timeline
//	kpsolve -n 512 -pprof :6060       # live pprof + /debug/vars metrics
//	kpsolve -n 256 -serve :9090       # Prometheus /metrics + JSON /snapshot
//	kpsolve -n 64 -log json           # structured per-attempt slog records
//
// The input file format is: first line "n p" (dimension and field modulus),
// then n lines of n matrix entries, then one or more right-hand sides of n
// entries each (all integers, reduced mod p; the total count after the
// matrix must be a multiple of n). Multiple right-hand sides go through the
// batched engine for op=solve. The file's modulus is authoritative: if -p
// is not given the file's field is adopted, and an explicit -p that
// disagrees with the file is an error — silently reducing a system mod the
// wrong prime would "verify" an answer to a different system.
//
// -ring selects the coefficient ring. The default fp runs over one word
// prime field; zz and qq run the RNS/CRT multi-modulus engine and print
// exact integer/rational answers (op solve | det | rank; the instance is
// randomly generated, -in stays fp-only).
//
// Exit codes map the typed error taxonomy so scripts can branch without
// parsing messages:
//
//	0  success
//	1  generic failure (I/O, configuration, internal errors)
//	2  usage errors (bad flags or file format)
//	3  kp.ErrRetriesExhausted — all Las Vegas attempts failed
//	4  kp.ErrSingular — a singular matrix where non-singular is required
//	5  kp.ErrInconsistent — the system has no solution
//	6  kp.ErrBadShape — dimension mismatch
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"math/big"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/ff"
	"repro/internal/kp"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/rns"
	"repro/internal/server"
)

func main() {
	var (
		n      = flag.Int("n", 16, "dimension for randomly generated instances")
		p      = flag.Uint64("p", ff.P62, "prime field modulus (for -in files it must match the file)")
		op     = flag.String("op", "solve", "operation: solve | det | inv | rank | transposed | gs (Theorem 3 Toeplitz fast path)")
		ring   = flag.String("ring", "fp", "coefficient ring: fp (one word prime field) | zz (exact over the integers) | qq (exact over the rationals)")
		prec   = flag.String("precond", "dense", "preconditioner route for the Theorem 4 pipeline: dense (materialize Ã = A·H·D) | implicit (black-box composition, no dense matmul)")
		in     = flag.String("in", "", "read the system from a file instead of generating it")
		rhs    = flag.Int("rhs", 1, "right-hand sides for randomly generated op=solve instances; >1 solves them as one batch")
		mul    = flag.String("mul", "classical", "matrix multiplier: "+strings.Join(matrix.Names(), "|"))
		seed   = flag.Uint64("seed", uint64(time.Now().UnixNano()), "random seed")
		trace  = flag.String("trace", "", "write a Chrome trace_event JSON timeline of the solve phases to this file")
		pprof  = flag.String("pprof", "", "serve net/http/pprof and the obs metrics registry (/debug/vars) on this address, e.g. :6060")
		serve  = flag.String("serve", "", "serve telemetry (/metrics Prometheus text, /snapshot JSON, /healthz) on this address and keep the process alive after the operation until SIGINT/SIGTERM, e.g. :9090")
		logFmt = flag.String("log", "off", "structured per-attempt logging to stderr: off | text | json")
	)
	flag.Parse()
	// Shared -mul validation: unknown names are an error, never a silent
	// fall-back to the classical default.
	names, err := matrix.ParseMulFlag(*mul)
	if err != nil {
		usage(err)
	}
	if len(names) != 1 {
		usage(fmt.Errorf("-mul wants exactly one of %s", strings.Join(matrix.Names(), "|")))
	}
	if *rhs < 1 {
		usage(fmt.Errorf("-rhs wants a positive count, got %d", *rhs))
	}

	var logger *slog.Logger
	switch *logFmt {
	case "off":
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	default:
		usage(fmt.Errorf("-log wants off|text|json, got %q", *logFmt))
	}

	if *pprof != "" {
		obs.PublishExpvar()
		go func() {
			if err := http.ListenAndServe(*pprof, nil); err != nil {
				log.Printf("kpsolve: pprof listener: %v", err)
			}
		}()
	}
	// The telemetry listener starts before the operation so live runs can be
	// scraped mid-solve; main blocks on SIGINT/SIGTERM after the output when
	// -serve is set, keeping /metrics up for collectors. Shutdown drains
	// in-flight scrapes via http.Server.Shutdown instead of killing them
	// mid-body (the signal handler is installed only once the operation is
	// done, so Ctrl-C mid-solve still aborts the process).
	var (
		serveDone chan error
		serveStop context.CancelFunc
	)
	if *serve != "" {
		ln, err := net.Listen("tcp", *serve)
		if err != nil {
			usage(fmt.Errorf("-serve %s: %w", *serve, err))
		}
		// A serving kpsolve gets the closed-loop surfaces too: triggered
		// profile captures (bad-prime storms fire even without a server in
		// front) and the metrics timeline behind /debug/timeline.
		obs.SetProfileStore(obs.NewProfileStore(obs.ProfileStoreConfig{}))
		tl := obs.NewTimeline(obs.TimelineConfig{Interval: time.Second})
		obs.SetTimeline(tl)
		tl.Start()
		fmt.Fprintf(os.Stderr, "kpsolve: telemetry on http://%s (/metrics /snapshot /debug/profiles /debug/timeline /healthz)\n", ln.Addr())
		var serveCtx context.Context
		serveCtx, serveStop = context.WithCancel(context.Background())
		serveDone = make(chan error, 1)
		go func() {
			serveDone <- server.ServeUntil(serveCtx, ln, obs.Handler(), 5*time.Second)
		}()
	}
	// holdTelemetry blocks on SIGINT/SIGTERM after the output when -serve is
	// set, keeping /metrics up for collectors (shared by the fp and ring
	// exits).
	holdTelemetry := func() {
		if *serve == "" {
			return
		}
		fmt.Fprintf(os.Stderr, "kpsolve: holding telemetry endpoints open; SIGINT/SIGTERM to exit\n")
		sigCtx, stop := server.SignalContext(context.Background())
		var serveErr error
		select {
		case <-sigCtx.Done():
			serveStop() // graceful drain: in-flight scrapes finish
			serveErr = <-serveDone
		case serveErr = <-serveDone:
			// The listener failed on its own; nothing left to hold open.
		}
		stop()
		if serveErr != nil {
			fatal(serveErr)
		}
		fmt.Fprintln(os.Stderr, "kpsolve: telemetry drained, bye")
	}
	// -trace needs an Observer for the timeline; -serve installs one too so
	// the phase-latency histograms and /snapshot phase totals are live, not
	// just the always-on attempt statistics.
	var observer *obs.Observer
	if *trace != "" || *serve != "" {
		observer = obs.New(0)
	}

	if *ring != "fp" {
		// The exact rings generate their own instances and print exact
		// answers; the fp-only file/batch/trace-cross-check flags stay out.
		if *in != "" {
			usage(fmt.Errorf("-in reads fp systems; -ring %s generates a random instance", *ring))
		}
		if *rhs != 1 {
			usage(fmt.Errorf("-rhs is fp-only; -ring %s solves a single right-hand side", *ring))
		}
		if observer != nil {
			// The RNS engine records its phases (rns/primes, rns/residue,
			// rns/crt, rns/verify) on the process-global active Observer.
			obs.SetActive(observer)
		}
		runRing(*ring, *op, *n, *seed, names[0], *prec, logger)
		if *trace != "" {
			if err := writeTrace(observer, nil, *trace); err != nil {
				fatal(err)
			}
		}
		holdTelemetry()
		return
	}

	pSet := false
	flag.Visit(func(fl *flag.Flag) {
		if fl.Name == "p" {
			pSet = true
		}
	})

	var f ff.Fp64
	var a *matrix.Dense[uint64]
	var bs *matrix.Dense[uint64] // right-hand sides as columns
	if *in != "" {
		f, a, bs, err = readSystem(*in, *p, pSet)
		if err != nil {
			usage(err)
		}
	} else {
		f, err = ff.NewFp64(*p)
		if err != nil {
			usage(err)
		}
	}
	s, err := core.NewSolver[uint64](f, core.Options{
		Seed:        *seed,
		Multiplier:  names[0],
		PrecondMode: *prec,
		Observer:    observer,
		Instrument:  observer != nil,
		Logger:      logger,
	})
	if err != nil {
		usage(err)
	}
	src := ff.NewSource(*seed + 1)

	if *in == "" {
		a = matrix.Random[uint64](f, src, *n, *n, f.Modulus())
		bs = matrix.Random[uint64](f, src, *n, *rhs, f.Modulus())
		fmt.Printf("generated a random %d×%d system with %d right-hand side(s) over F_%d\n", *n, *n, *rhs, f.Modulus())
	}
	if bs.Cols > 1 && *op != "solve" {
		usage(fmt.Errorf("op %q takes a single right-hand side (got %d); only op=solve is batched", *op, bs.Cols))
	}
	if *op == "gs" && *in == "" {
		// The fast path wants a Toeplitz system; regenerate A from 2n−1
		// entries (the dense draw above kept the randomness deterministic
		// but is not Toeplitz).
		a = matrix.ToeplitzDense[uint64](f, ff.SampleVec[uint64](f, src, 2**n-1, f.Modulus()))
		fmt.Printf("regenerated A as a random %d×%d Toeplitz matrix\n", *n, *n)
	}
	b := bs.Col(0)

	// A per-run trace identity: carried as a bare context tag (not a full
	// span-attribution scope — the CLI keeps span parentage on the global
	// Observer chain so the Instrumented field-op attribution in -trace
	// output stays exact), it stamps every flight-recorder entry and
	// per-attempt log record, so a crash dump names the failing run.
	tc := obs.NewTraceContext()
	ctx := obs.ContextWithTrace(context.Background(), tc)

	start := time.Now()
	switch *op {
	case "solve":
		if bs.Cols > 1 {
			x, err := s.SolveBatchCtx(ctx, a, bs)
			if err != nil {
				fatal(err)
			}
			for j := 0; j < x.Cols; j++ {
				fmt.Printf("x[%d] = %s\n", j, ff.VecString[uint64](f, x.Col(j)))
			}
			fmt.Printf("verified A·X = B for all %d columns: %v\n", x.Cols,
				matrix.Mul[uint64](f, a, x).Equal(f, bs))
			break
		}
		x, err := s.SolveCtx(ctx, a, b)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("x = %s\n", ff.VecString[uint64](f, x))
		fmt.Printf("verified A·x = b: %v\n", ff.VecEqual[uint64](f, a.MulVec(f, x), b))
	case "det":
		d, err := s.DetCtx(ctx, a)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("det(A) = %d\n", d)
	case "inv":
		inv, err := s.InverseCtx(ctx, a)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("A⁻¹ computed (Theorem 6 circuit); A·A⁻¹ = I: %v\n",
			matrix.Mul[uint64](f, a, inv).Equal(f, matrix.Identity[uint64](f, a.Rows)))
	case "rank":
		r, err := s.RankCtx(ctx, a)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("rank(A) = %d\n", r)
	case "gs":
		entries, err := toeplitzEntries(a)
		if err != nil {
			usage(err)
		}
		x, err := s.SolveToeplitzGS(entries, b)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("x = %s\n", ff.VecString[uint64](f, x))
		fmt.Printf("verified T·x = b (Theorem 3 Gohberg–Semencul): %v\n",
			ff.VecEqual[uint64](f, a.MulVec(f, x), b))
	case "transposed":
		x, err := s.TransposedSolveCtx(ctx, a, b)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("x = %s\n", ff.VecString[uint64](f, x))
		fmt.Printf("verified Aᵀ·x = b: %v\n",
			ff.VecEqual[uint64](f, a.Transpose().MulVec(f, x), b))
	default:
		usage(fmt.Errorf("unknown op %q", *op))
	}
	fmt.Printf("elapsed: %s\n", time.Since(start))

	if *trace != "" {
		if err := writeTrace(observer, s.MulStats(), *trace); err != nil {
			fatal(err)
		}
	}

	holdTelemetry()
}

// runRing executes op over ℤ or ℚ through the RNS/CRT engine: a random
// instance, an exact answer (big rationals/integers on stdout), and the
// residue statistics that summarize the multi-modulus run.
func runRing(ring, op string, n int, seed uint64, mul, prec string, logger *slog.Logger) {
	if op != "solve" && op != "det" && op != "rank" {
		usage(fmt.Errorf("op %q is not available over %s; -ring zz|qq supports solve|det|rank", op, ring))
	}
	s, err := core.NewIntSolver(core.IntOptions{
		Seed:        seed,
		Multiplier:  mul,
		PrecondMode: prec,
		Logger:      logger,
	})
	if err != nil {
		usage(err)
	}
	src := ff.NewSource(seed + 1)
	tc := obs.NewTraceContext()
	ctx := obs.ContextWithTrace(context.Background(), tc)

	var a *rns.IntMat
	switch ring {
	case "zz":
		a = randomIntMat(src, n, 999)
		fmt.Printf("generated a random %d×%d integer matrix with entries in [-999, 999]\n", n, n)
	case "qq":
		if op != "solve" {
			usage(fmt.Errorf("op %q over qq is not supported; rank and det are invariant under clearing denominators — use -ring zz", op))
		}
		fmt.Printf("generated a random %d×%d rational system with entries num/den, |num| ≤ 99, den ≤ 9\n", n, n)
	default:
		usage(fmt.Errorf("unknown -ring %q (want fp|zz|qq)", ring))
	}

	start := time.Now()
	var stats *kp.RingStats
	switch {
	case ring == "qq":
		aq, bq := randomRatSystem(src, n)
		x, st, err := s.SolveRatCtx(ctx, aq, bq)
		if err != nil {
			fatal(err)
		}
		stats = st
		for i, r := range x.Rats() {
			fmt.Printf("x[%d] = %s\n", i, r.RatString())
		}
		fmt.Printf("verified A·x = b exactly over ℚ: %v\n", st.Verified)
	case op == "solve":
		b := randomIntVec(src, n, 999)
		x, st, err := s.SolveIntCtx(ctx, a, b)
		if err != nil {
			fatal(err)
		}
		stats = st
		for i, r := range x.Rats() {
			fmt.Printf("x[%d] = %s\n", i, r.RatString())
		}
		fmt.Printf("verified A·x = b exactly over ℚ: %v\n", st.Verified)
	case op == "det":
		d, st, err := s.DetIntCtx(ctx, a)
		if err != nil {
			fatal(err)
		}
		stats = st
		fmt.Printf("det(A) = %s\n", d)
	case op == "rank":
		r, st, err := s.RankIntCtx(ctx, a)
		if err != nil {
			fatal(err)
		}
		stats = st
		fmt.Printf("rank(A) = %d\n", r)
	}
	fmt.Printf("residues: %d over %d-bit NTT primes (%d bad prime(s) replaced), factor cache %d hit / %d miss\n",
		stats.Residues, 62, stats.BadPrimes, stats.CacheHits, stats.CacheMisses)
	fmt.Printf("phases: primes %s · residues wall %s (sum %s, parallel efficiency %.2f×) · crt+reconstruct %s · verify %s\n",
		time.Duration(stats.PrimesNs), time.Duration(stats.ResidueWallNs), time.Duration(stats.ResidueSumNs),
		stats.ParallelEfficiency, time.Duration(stats.CRTNs), time.Duration(stats.VerifyNs))
	fmt.Printf("elapsed: %s\n", time.Since(start))
}

// randomIntMat draws an n×n integer matrix with entries uniform in
// [-max, max].
func randomIntMat(src *ff.Source, n int, max int64) *rns.IntMat {
	a := rns.NewIntMat(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, big.NewInt(int64(src.Intn(int(2*max+1)))-max))
		}
	}
	return a
}

// randomIntVec draws an n-vector with entries uniform in [-max, max].
func randomIntVec(src *ff.Source, n int, max int64) []*big.Int {
	b := make([]*big.Int, n)
	for i := range b {
		b[i] = big.NewInt(int64(src.Intn(int(2*max+1))) - max)
	}
	return b
}

// randomRatSystem draws an n×n rational system with numerators in
// [-99, 99] and denominators in [1, 9].
func randomRatSystem(src *ff.Source, n int) ([][]*big.Rat, []*big.Rat) {
	draw := func() *big.Rat {
		return big.NewRat(int64(src.Intn(199))-99, int64(src.Intn(9))+1)
	}
	a := make([][]*big.Rat, n)
	for i := range a {
		a[i] = make([]*big.Rat, n)
		for j := range a[i] {
			a[i][j] = draw()
		}
	}
	b := make([]*big.Rat, n)
	for i := range b {
		b[i] = draw()
	}
	return a, b
}

// writeTrace exports the observer's timeline and prints the per-phase
// summary, cross-checked against the Instrumented multiplier totals (the
// two count the same operations through independent paths). A nil stats
// skips the multiplier cross-check — the ring engine runs one instrumented
// multiplier per residue, so no single MulStats covers the run.
func writeTrace(o *obs.Observer, stats *matrix.MulStats, path string) error {
	if err := o.WriteTraceFile(path); err != nil {
		return err
	}
	fmt.Printf("\nphase summary (trace written to %s):\n", path)
	totals := o.PhaseTotals()
	for _, name := range o.PhaseNames() {
		t := totals[name]
		fmt.Printf("  %-13s %3d span(s)  wall %-14s field-ops %d\n", name, t.Count, t.Wall, t.FieldOps)
	}
	if dropped := o.Dropped(); dropped > 0 {
		fmt.Printf("  (%d spans dropped: ring wrapped)\n", dropped)
	}
	if stats != nil {
		snap := stats.Snapshot()
		fmt.Printf("  multiplier: %d calls, %d classical-equivalent field-ops, wall %s, busy %s\n",
			snap.Calls, snap.FieldOps, snap.Wall, snap.Busy)
		if spanOps := o.TotalFieldOps(); spanOps != snap.FieldOps {
			fmt.Printf("  WARNING: span field-ops %d != instrumented field-ops %d\n", spanOps, snap.FieldOps)
		}
	}
	return nil
}

// toeplitzEntries checks that a is Toeplitz and returns its 2n−1 defining
// entries in the D[n−1+i−j] layout (D[0] = top-right corner). op=gs on a
// file system refuses non-Toeplitz input instead of silently solving a
// different matrix.
func toeplitzEntries(a *matrix.Dense[uint64]) ([]uint64, error) {
	n := a.Rows
	for i := 1; i < n; i++ {
		for j := 1; j < n; j++ {
			if a.At(i, j) != a.At(i-1, j-1) {
				return nil, fmt.Errorf("op=gs needs a Toeplitz matrix, but A[%d][%d] != A[%d][%d]", i, j, i-1, j-1)
			}
		}
	}
	d := make([]uint64, 2*n-1)
	for k := range d {
		if k <= n-1 {
			d[k] = a.At(0, n-1-k)
		} else {
			d[k] = a.At(k-(n-1), 0)
		}
	}
	return d, nil
}

// readSystem parses "n p" followed by n×n matrix entries and one or more
// right-hand sides of n entries each (the trailing count must be a multiple
// of n; each group of n becomes one column of the returned B). The field is
// built from the file's own modulus; pFlag is only consulted when the user
// set -p explicitly (pSet), in which case a mismatch with the file is an
// error rather than a silent wrong-field reduction.
func readSystem(path string, pFlag uint64, pSet bool) (ff.Fp64, *matrix.Dense[uint64], *matrix.Dense[uint64], error) {
	var f ff.Fp64
	file, err := os.Open(path)
	if err != nil {
		return f, nil, nil, err
	}
	defer file.Close()
	sc := bufio.NewScanner(file)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	sc.Split(bufio.ScanWords)
	next := func() (int64, error) {
		if !sc.Scan() {
			return 0, fmt.Errorf("unexpected end of input")
		}
		var v int64
		_, err := fmt.Sscan(sc.Text(), &v)
		return v, err
	}
	n64, err := next()
	if err != nil {
		return f, nil, nil, err
	}
	mod, err := next()
	if err != nil {
		return f, nil, nil, err
	}
	if mod <= 1 {
		return f, nil, nil, fmt.Errorf("%s: invalid modulus %d", path, mod)
	}
	if pSet && uint64(mod) != pFlag {
		return f, nil, nil, fmt.Errorf("%s is a system over F_%d but -p selects F_%d; drop -p to adopt the file's field, or rerun with -p %d",
			path, mod, pFlag, mod)
	}
	f, err = ff.NewFp64(uint64(mod))
	if err != nil {
		return f, nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	n := int(n64)
	a := matrix.NewDense[uint64](f, n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v, err := next()
			if err != nil {
				return f, nil, nil, err
			}
			a.Set(i, j, f.FromInt64(v))
		}
	}
	// Everything after the matrix is right-hand-side data: k·n entries for
	// k right-hand sides.
	var tail []uint64
	for sc.Scan() {
		var v int64
		if _, err := fmt.Sscan(sc.Text(), &v); err != nil {
			return f, nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		tail = append(tail, f.FromInt64(v))
	}
	if len(tail) == 0 || len(tail)%n != 0 {
		return f, nil, nil, fmt.Errorf("%s: %d right-hand-side entries after the matrix; want a positive multiple of n = %d",
			path, len(tail), n)
	}
	k := len(tail) / n
	bs := matrix.NewDense[uint64](f, n, k)
	for j := 0; j < k; j++ {
		for i := 0; i < n; i++ {
			bs.Set(i, j, tail[j*n+i])
		}
	}
	return f, a, bs, nil
}

// usage reports a bad invocation or input file and exits 2.
func usage(err error) {
	fmt.Fprintln(os.Stderr, "kpsolve:", err)
	dumpFlight()
	os.Exit(2)
}

// fatal maps the typed error taxonomy onto the documented exit codes.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kpsolve:", err)
	dumpFlight()
	switch {
	case errors.Is(err, kp.ErrRetriesExhausted):
		os.Exit(3)
	case errors.Is(err, kp.ErrSingular):
		os.Exit(4)
	case errors.Is(err, kp.ErrInconsistent):
		os.Exit(5)
	case errors.Is(err, kp.ErrBadShape):
		os.Exit(6)
	}
	os.Exit(1)
}

// dumpFlight writes the crash flight recorder — the ring of recent solve
// summaries every driver feeds unconditionally — to stderr on any non-zero
// exit, so a failed run carries its own post-mortem. Writes nothing when no
// solves ran.
func dumpFlight() {
	obs.WriteFlightRecord(os.Stderr)
}
