// Command kpsolve runs the Kaltofen–Pan algorithms on a linear system over
// a word-sized prime field, either randomly generated or read from a file.
//
// Usage:
//
//	kpsolve -n 32                     # random non-singular 32×32 system
//	kpsolve -n 16 -op det             # determinant
//	kpsolve -op solve -in system.txt  # read a system from a file
//
// The input file format is: first line "n p" (dimension and field modulus),
// then n lines of n matrix entries, then one line of n right-hand-side
// entries (all integers, reduced mod p).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/ff"
	"repro/internal/matrix"
)

func main() {
	var (
		n    = flag.Int("n", 16, "dimension for randomly generated instances")
		p    = flag.Uint64("p", ff.P62, "prime field modulus")
		op   = flag.String("op", "solve", "operation: solve | det | inv | rank | transposed")
		in   = flag.String("in", "", "read the system from a file instead of generating it")
		seed = flag.Uint64("seed", uint64(time.Now().UnixNano()), "random seed")
	)
	flag.Parse()

	f, err := ff.NewFp64(*p)
	if err != nil {
		fatal(err)
	}
	s := core.NewSolver[uint64](f, core.Options{Seed: *seed})
	src := ff.NewSource(*seed + 1)

	var a *matrix.Dense[uint64]
	var b []uint64
	if *in != "" {
		a, b, err = readSystem(f, *in)
		if err != nil {
			fatal(err)
		}
	} else {
		a = matrix.Random[uint64](f, src, *n, *n, f.Modulus())
		b = ff.SampleVec[uint64](f, src, *n, f.Modulus())
		fmt.Printf("generated a random %d×%d system over F_%d\n", *n, *n, *p)
	}

	start := time.Now()
	switch *op {
	case "solve":
		x, err := s.Solve(a, b)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("x = %s\n", ff.VecString[uint64](f, x))
		fmt.Printf("verified A·x = b: %v\n", ff.VecEqual[uint64](f, a.MulVec(f, x), b))
	case "det":
		d, err := s.Det(a)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("det(A) = %d\n", d)
	case "inv":
		inv, err := s.Inverse(a)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("A⁻¹ computed (Theorem 6 circuit); A·A⁻¹ = I: %v\n",
			matrix.Mul[uint64](f, a, inv).Equal(f, matrix.Identity[uint64](f, a.Rows)))
	case "rank":
		r, err := s.Rank(a)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("rank(A) = %d\n", r)
	case "transposed":
		x, err := s.TransposedSolve(a, b)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("x = %s\n", ff.VecString[uint64](f, x))
		fmt.Printf("verified Aᵀ·x = b: %v\n",
			ff.VecEqual[uint64](f, a.Transpose().MulVec(f, x), b))
	default:
		fatal(fmt.Errorf("unknown op %q", *op))
	}
	fmt.Printf("elapsed: %s\n", time.Since(start))
}

func readSystem(f ff.Fp64, path string) (*matrix.Dense[uint64], []uint64, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer file.Close()
	sc := bufio.NewScanner(file)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	sc.Split(bufio.ScanWords)
	next := func() (int64, error) {
		if !sc.Scan() {
			return 0, fmt.Errorf("kpsolve: unexpected end of input")
		}
		var v int64
		_, err := fmt.Sscan(sc.Text(), &v)
		return v, err
	}
	n64, err := next()
	if err != nil {
		return nil, nil, err
	}
	if _, err := next(); err != nil { // modulus (checked against -p by caller convention)
		return nil, nil, err
	}
	n := int(n64)
	a := matrix.NewDense[uint64](f, n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v, err := next()
			if err != nil {
				return nil, nil, err
			}
			a.Set(i, j, f.FromInt64(v))
		}
	}
	b := make([]uint64, n)
	for i := range b {
		v, err := next()
		if err != nil {
			return nil, nil, err
		}
		b[i] = f.FromInt64(v)
	}
	return a, b, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kpsolve:", err)
	os.Exit(1)
}
