package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSystem(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sys.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const sys101 = "3 101\n" +
	"1 2 3\n" +
	"4 5 6\n" +
	"7 8 10\n" +
	"-1 0 102\n"

func TestReadSystem(t *testing.T) {
	path := writeSystem(t, sys101)
	f, a, b, err := readSystem(path, 101, true)
	if err != nil {
		t.Fatal(err)
	}
	if f.Modulus() != 101 {
		t.Fatalf("modulus %d", f.Modulus())
	}
	if a.Rows != 3 || a.Cols != 3 {
		t.Fatalf("shape %dx%d", a.Rows, a.Cols)
	}
	if a.At(2, 2) != 10 || a.At(0, 1) != 2 {
		t.Fatal("matrix entries wrong")
	}
	if b.Rows != 3 || b.Cols != 1 {
		t.Fatalf("rhs shape %dx%d", b.Rows, b.Cols)
	}
	// Negative and >p entries reduce mod p.
	if b.At(0, 0) != 100 || b.At(1, 0) != 0 || b.At(2, 0) != 1 {
		t.Fatalf("rhs = %v", b.Col(0))
	}
}

func TestReadSystemMultiRHS(t *testing.T) {
	// Two trailing groups of n entries become two columns of B.
	path := writeSystem(t, sys101+"1 2 3\n")
	_, _, b, err := readSystem(path, 101, true)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rows != 3 || b.Cols != 2 {
		t.Fatalf("rhs shape %dx%d, want 3x2", b.Rows, b.Cols)
	}
	if b.At(0, 1) != 1 || b.At(2, 1) != 3 {
		t.Fatalf("second column = %v", b.Col(1))
	}
}

func TestReadSystemRaggedRHS(t *testing.T) {
	// A trailing count that is not a multiple of n is a format error.
	path := writeSystem(t, sys101+"1 2\n")
	if _, _, _, err := readSystem(path, 101, true); err == nil {
		t.Fatal("ragged right-hand-side data accepted")
	}
}

func TestReadSystemAdoptsFileModulus(t *testing.T) {
	// -p left at its default: the file's field wins.
	path := writeSystem(t, sys101)
	f, _, _, err := readSystem(path, 1<<61, false)
	if err != nil {
		t.Fatal(err)
	}
	if f.Modulus() != 101 {
		t.Fatalf("adopted modulus %d, want 101", f.Modulus())
	}
}

func TestReadSystemModulusMismatch(t *testing.T) {
	// An explicit -p that disagrees with the file must error, not silently
	// reduce the entries mod the wrong prime.
	path := writeSystem(t, sys101)
	_, _, _, err := readSystem(path, 103, true)
	if err == nil {
		t.Fatal("modulus mismatch accepted")
	}
	if !strings.Contains(err.Error(), "F_101") || !strings.Contains(err.Error(), "F_103") {
		t.Fatalf("unhelpful mismatch error: %v", err)
	}
}

func TestReadSystemBadModulus(t *testing.T) {
	for _, hdr := range []string{"2 1\n", "2 0\n", "2 -7\n", "2 100\n"} {
		path := writeSystem(t, hdr+"1 2\n3 4\n5 6\n")
		if _, _, _, err := readSystem(path, 101, false); err == nil {
			t.Fatalf("header %q accepted", hdr)
		}
	}
}

func TestReadSystemTruncated(t *testing.T) {
	path := writeSystem(t, "2 101\n1 2\n")
	if _, _, _, err := readSystem(path, 101, true); err == nil {
		t.Fatal("truncated input accepted")
	}
}

func TestReadSystemMissingFile(t *testing.T) {
	if _, _, _, err := readSystem("/nonexistent/x", 101, false); err == nil {
		t.Fatal("missing file accepted")
	}
}
