package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ff"
)

func TestReadSystem(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sys.txt")
	content := "3 101\n" +
		"1 2 3\n" +
		"4 5 6\n" +
		"7 8 10\n" +
		"-1 0 102\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	f := ff.MustFp64(101)
	a, b, err := readSystem(f, path)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows != 3 || a.Cols != 3 {
		t.Fatalf("shape %dx%d", a.Rows, a.Cols)
	}
	if a.At(2, 2) != 10 || a.At(0, 1) != 2 {
		t.Fatal("matrix entries wrong")
	}
	// Negative and >p entries reduce mod p.
	if b[0] != 100 || b[1] != 0 || b[2] != 1 {
		t.Fatalf("rhs = %v", b)
	}
}

func TestReadSystemTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(path, []byte("2 101\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readSystem(ff.MustFp64(101), path); err == nil {
		t.Fatal("truncated input accepted")
	}
}

func TestReadSystemMissingFile(t *testing.T) {
	if _, _, err := readSystem(ff.MustFp64(101), "/nonexistent/x"); err == nil {
		t.Fatal("missing file accepted")
	}
}
