// Command kpdclient exercises a running kpd daemon from the command line:
// it generates a random system (or repeats a seeded one to demonstrate the
// factorization cache), posts it to the requested endpoint, verifies the
// returned solution locally, and reports whether the server's cache hit.
//
// Usage:
//
//	kpdclient -addr http://127.0.0.1:8080 -n 64          # one solve
//	kpdclient -addr http://127.0.0.1:8080 -n 64 -repeat 3 # same matrix 3×: cache hits
//	kpdclient -addr http://127.0.0.1:8080 -n 64 -rhs 8    # batched solve
//	kpdclient -addr http://127.0.0.1:8080 -op factor      # warm the cache only
//	kpdclient -addr http://127.0.0.1:8080 -n 16 -ring zz  # exact integer solve
//
// Exit codes: 0 success, 1 request/verification failure, 2 usage.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/big"
	"os"
	"time"

	"repro/internal/ff"
	"repro/internal/matrix"
	"repro/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "kpd base URL")
		n        = flag.Int("n", 32, "system dimension")
		p        = flag.Uint64("p", ff.P62, "prime field modulus")
		op       = flag.String("op", "solve", "operation: solve | batch | factor")
		rhs      = flag.Int("rhs", 4, "right-hand sides for op=batch")
		seed     = flag.Uint64("seed", uint64(time.Now().UnixNano()), "matrix generation seed (fix it to re-request the same matrix)")
		repeat   = flag.Int("repeat", 1, "send the same system this many times (2nd+ should be cache hits)")
		deadline = flag.Duration("deadline", 10*time.Second, "per-request deadline")
		slow     = flag.Duration("slow", 250*time.Millisecond, "round-trip time above which the server's trace and profile URLs are printed (0 disables; match kpd -trace-slow)")
		precond  = flag.String("precond", "", "preconditioner route: dense | implicit (empty = server default; cache entries are per-mode)")
		ring     = flag.String("ring", "fp", "coefficient ring: fp (one word prime field) | zz (exact over the integers; op=solve only)")
	)
	flag.Parse()
	if *repeat < 1 || *n < 1 || *rhs < 1 {
		fmt.Fprintln(os.Stderr, "kpdclient: -n, -rhs and -repeat want positive values")
		os.Exit(2)
	}
	if *ring == "zz" {
		runRing(*addr, *op, *n, *seed, *repeat, *deadline, *precond, *slow)
		return
	}
	if *ring != "fp" {
		fmt.Fprintf(os.Stderr, "kpdclient: -ring wants fp or zz, got %q\n", *ring)
		os.Exit(2)
	}

	f, err := ff.NewFp64(*p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kpdclient:", err)
		os.Exit(2)
	}
	src := ff.NewSource(*seed)
	a := matrix.Random[uint64](f, src, *n, *n, f.Modulus())
	req := server.SolveRequest{
		P:          *p,
		A:          denseRows(a),
		DeadlineMS: deadline.Milliseconds(),
		Precond:    *precond,
	}
	var bs *matrix.Dense[uint64]
	switch *op {
	case "solve":
		req.B = ff.SampleVec[uint64](f, src, *n, f.Modulus())
	case "batch":
		bs = matrix.Random[uint64](f, src, *n, *rhs, f.Modulus())
		req.Bs = denseCols(bs)
	case "factor":
	default:
		fmt.Fprintf(os.Stderr, "kpdclient: unknown -op %q\n", *op)
		os.Exit(2)
	}

	client := &server.Client{BaseURL: *addr}
	ctx := context.Background()
	for i := 0; i < *repeat; i++ {
		start := time.Now()
		var resp *server.SolveResponse
		var err error
		switch *op {
		case "solve":
			resp, err = client.Solve(ctx, req)
		case "batch":
			resp, err = client.SolveBatch(ctx, req)
		case "factor":
			resp, err = client.Factor(ctx, req)
		}
		if err != nil {
			// APIError.Error() already quotes the trace id; surface it on
			// its own line too so scripts can grep it and pull the request
			// out of the server's /debug/traces — and the profile store,
			// since a failed request may have fired a triggered capture.
			fmt.Fprintln(os.Stderr, "kpdclient:", err)
			var apiErr *server.APIError
			if errors.As(err, &apiErr) && apiErr.TraceID != "" {
				fmt.Fprintf(os.Stderr, "kpdclient: trace_id=%s (see kpd /debug/traces?id=%s and /debug/profiles)\n", apiErr.TraceID, apiErr.TraceID)
			}
			os.Exit(1)
		}
		rtt := time.Since(start)
		noteSlow(rtt, *slow, resp.TraceID)
		// Trust but verify: the solver is Las Vegas, the transport is not.
		switch *op {
		case "solve":
			if !ff.VecEqual[uint64](f, a.MulVec(f, resp.X), req.B) {
				fmt.Fprintln(os.Stderr, "kpdclient: returned x does not satisfy A·x = b")
				os.Exit(1)
			}
		case "batch":
			for j, x := range resp.Xs {
				if !ff.VecEqual[uint64](f, a.MulVec(f, x), bs.Col(j)) {
					fmt.Fprintf(os.Stderr, "kpdclient: returned column %d does not satisfy A·x = b\n", j)
					os.Exit(1)
				}
			}
		}
		verified := ""
		if *op != "factor" {
			verified = ", verified locally"
		}
		fmt.Printf("%s n=%d cache=%s server=%.1fms rtt=%s digest=%s… trace=%s%s\n",
			*op, resp.N, resp.Cache, resp.ElapsedMS, rtt.Round(time.Millisecond), resp.Digest[:12], resp.TraceID, verified)
	}
}

// runRing posts an exact integer solve (ring=zz) and verifies the returned
// rationals locally over ℚ. Repeats with a fixed -seed re-send the same
// matrix, so the second round should report cache=hit: every residue
// factorization is served from the server's per-prime cache.
// noteSlow points at the server-side artifacts when a round trip crossed
// the slow threshold: the tail-sampled trace store retains the request (it
// was slow) and the profile store likely holds a capture fired while it
// ran, both keyed by the same trace id.
func noteSlow(rtt, slow time.Duration, traceID string) {
	if slow <= 0 || rtt < slow || traceID == "" {
		return
	}
	fmt.Fprintf(os.Stderr, "kpdclient: slow request (rtt=%s): trace_id=%s (see kpd /debug/traces?id=%s and /debug/profiles)\n",
		rtt.Round(time.Millisecond), traceID, traceID)
}

func runRing(addr, op string, n int, seed uint64, repeat int, deadline time.Duration, precond string, slow time.Duration) {
	if op != "solve" {
		fmt.Fprintf(os.Stderr, "kpdclient: -ring zz supports -op solve only, got %q\n", op)
		os.Exit(2)
	}
	src := ff.NewSource(seed)
	const bound = 999
	draw := func() string {
		return fmt.Sprintf("%d", src.Intn(2*bound+1)-bound)
	}
	az := make([][]string, n)
	for i := range az {
		az[i] = make([]string, n)
		for j := range az[i] {
			az[i][j] = draw()
		}
	}
	bz := make([]string, n)
	for i := range bz {
		bz[i] = draw()
	}
	req := server.SolveRequest{
		Ring:       "zz",
		Az:         az,
		Bz:         bz,
		DeadlineMS: deadline.Milliseconds(),
		Precond:    precond,
	}
	client := &server.Client{BaseURL: addr}
	ctx := context.Background()
	for i := 0; i < repeat; i++ {
		start := time.Now()
		resp, err := client.Solve(ctx, req)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kpdclient:", err)
			var apiErr *server.APIError
			if errors.As(err, &apiErr) && apiErr.TraceID != "" {
				fmt.Fprintf(os.Stderr, "kpdclient: trace_id=%s (see kpd /debug/traces?id=%s and /debug/profiles)\n", apiErr.TraceID, apiErr.TraceID)
			}
			os.Exit(1)
		}
		rtt := time.Since(start)
		noteSlow(rtt, slow, resp.TraceID)
		if !verifyRing(az, bz, resp.Xr) {
			fmt.Fprintln(os.Stderr, "kpdclient: returned x does not satisfy A·x = b over ℚ")
			os.Exit(1)
		}
		residues := 0
		if resp.RNS != nil {
			residues = resp.RNS.Residues
		}
		fmt.Printf("solve ring=zz n=%d residues=%d cache=%s server=%.1fms rtt=%s digest=%s… trace=%s, verified locally\n",
			resp.N, residues, resp.Cache, resp.ElapsedMS, rtt.Round(time.Millisecond), resp.Digest[:12], resp.TraceID)
	}
}

// verifyRing checks A·x = b exactly over ℚ from the wire strings.
func verifyRing(az [][]string, bz []string, xr []string) bool {
	if len(xr) != len(bz) {
		return false
	}
	x := make([]*big.Rat, len(xr))
	for i, s := range xr {
		r, ok := new(big.Rat).SetString(s)
		if !ok {
			return false
		}
		x[i] = r
	}
	for i, row := range az {
		acc := new(big.Rat)
		for j, s := range row {
			a, ok := new(big.Rat).SetString(s)
			if !ok {
				return false
			}
			acc.Add(acc, a.Mul(a, x[j]))
		}
		b, ok := new(big.Rat).SetString(bz[i])
		if !ok || acc.Cmp(b) != 0 {
			return false
		}
	}
	return true
}

// denseRows flattens a dense matrix into the wire row-of-rows form.
func denseRows(m *matrix.Dense[uint64]) [][]uint64 {
	rows := make([][]uint64, m.Rows)
	for i := range rows {
		rows[i] = m.Row(i)
	}
	return rows
}

// denseCols returns the columns of m (the wire form of a multi-RHS block).
func denseCols(m *matrix.Dense[uint64]) [][]uint64 {
	cols := make([][]uint64, m.Cols)
	for j := range cols {
		cols[j] = m.Col(j)
	}
	return cols
}
