// Command kpd is the long-running Kaltofen–Pan solve daemon: an HTTP+JSON
// service over core.Solver with a digest-keyed factorization cache, bounded
// admission control, per-request deadlines, and the full obs telemetry
// surface on the same listener.
//
// Usage:
//
//	kpd -addr :8080                      # defaults: parallel multiplier, 64-entry cache
//	kpd -addr :8080 -cache 256 -queue 64 # bigger cache, deeper waiting room
//	kpd -addr :8080 -precond implicit    # black-box Ã = A·H·D, no dense matmul
//	kpd -addr :8080 -log json            # structured request + attempt records
//
// Endpoints: POST /v1/solve, /v1/solve_batch, /v1/factor (JSON bodies, see
// internal/server); GET /metrics (Prometheus 0.0.4, or OpenMetrics with
// exemplars via Accept negotiation / ?format=openmetrics), /snapshot
// (JSON), /debug/traces (tail-sampled request traces), /debug/profiles
// (triggered pprof captures), /debug/timeline (metrics sample ring),
// /debug/slo (objective status), /healthz. Repeat matrices hit the
// factorization cache and skip the Krylov phase — watch
// kp_server_cache_hits_total and the absence of new batch/krylov spans.
// Every request gets a W3C trace context (honoring an incoming traceparent
// header); slow, errored and unlucky requests are always retained in the
// trace store, and slow requests, queue saturation and RNS bad-prime
// storms fire triggered profile captures cross-linked by trace id. With
// -slo, latency/error/efficiency objectives are evaluated as multi-window
// burn rates over the timeline and a breach degrades /healthz (503).
// SIGINT/SIGTERM drains in-flight requests before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"strings"
	"time"

	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		mul      = flag.String("mul", "parallel", "matrix multiplier: "+strings.Join(matrix.Names(), "|"))
		precond  = flag.String("precond", "dense", "default preconditioner route: dense | implicit (requests may override per call)")
		seed     = flag.Uint64("seed", 0, "root randomness seed (0 = deterministic default; each request runs on a Split child)")
		cache    = flag.Int("cache", 64, "factorization cache capacity (matrices)")
		conc     = flag.Int("concurrency", 0, "max solves executing at once (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 0, "max queued requests before 429 (0 = 4×concurrency)")
		deadline = flag.Duration("deadline", 30*time.Second, "cap on per-request deadlines")
		maxDim   = flag.Int("max-n", 2048, "largest accepted system dimension")
		grace    = flag.Duration("grace", 10*time.Second, "drain budget on SIGINT/SIGTERM")
		logFmt   = flag.String("log", "off", "structured request/attempt logging to stderr: off | text | json")

		traces      = flag.Int("traces", 256, "tail-sampled trace store capacity (0 disables /debug/traces)")
		traceSlow   = flag.Duration("trace-slow", 250*time.Millisecond, "latency above which a request trace is always retained")
		traceSample = flag.Int("trace-sample", 16, "keep 1 in this many fast+successful request traces (1 = keep all)")

		profiles    = flag.Int("profiles", 32, "triggered profile store capacity (0 disables /debug/profiles)")
		profileCPU  = flag.Duration("profile-cpu", 250*time.Millisecond, "CPU capture window per trigger (negative = heap only)")
		profileCool = flag.Duration("profile-cooldown", 10*time.Second, "minimum interval between captures per trigger reason")

		timelineCap      = flag.Int("timeline", 360, "metrics timeline capacity in samples (0 disables /debug/timeline)")
		timelineInterval = flag.Duration("timeline-interval", 10*time.Second, "metrics timeline sampling interval")

		slo     = flag.Bool("slo", false, "evaluate SLO burn rates over the timeline (degrades /healthz on breach)")
		sloP99  = flag.Duration("slo-p99", 250*time.Millisecond, "latency objective: 99% of /v1/solve requests faster than this")
		sloFast = flag.Duration("slo-fast", time.Minute, "fast burn window")
		sloSlow = flag.Duration("slo-slow", 15*time.Minute, "slow burn window")
		sloBurn = flag.Float64("slo-burn", 1.0, "burn-rate threshold; breach when both windows burn at or above it")
	)
	flag.Parse()

	var logger *slog.Logger
	switch *logFmt {
	case "off":
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	default:
		fatal(fmt.Errorf("-log wants off|text|json, got %q", *logFmt))
	}

	srv, err := server.New(server.Config{
		Multiplier:    *mul,
		PrecondMode:   *precond,
		Seed:          *seed,
		CacheSize:     *cache,
		MaxConcurrent: *conc,
		MaxQueue:      *queue,
		MaxDeadline:   *deadline,
		MaxDim:        *maxDim,
		Logger:        logger,
	})
	if err != nil {
		fatal(err)
	}
	// An active Observer keeps the phase-latency histograms and /snapshot
	// phase totals live for every solve the daemon runs — and populates the
	// per-request span trees the trace store retains.
	obs.SetActive(obs.New(0))
	if *traces > 0 {
		obs.SetTraceStore(obs.NewTraceStore(obs.TraceStoreConfig{
			Capacity:      *traces,
			SlowThreshold: *traceSlow,
			SampleEvery:   *traceSample,
		}))
	}
	if *profiles > 0 {
		obs.SetProfileStore(obs.NewProfileStore(obs.ProfileStoreConfig{
			Capacity:    *profiles,
			CPUDuration: *profileCPU,
			Cooldown:    *profileCool,
		}))
	}
	if *timelineCap > 0 {
		tl := obs.NewTimeline(obs.TimelineConfig{
			Capacity: *timelineCap,
			Interval: *timelineInterval,
		})
		obs.SetTimeline(tl)
		tl.Start()
		defer tl.Stop()
		if *slo {
			eng := obs.NewSLOEngine(obs.SLOConfig{
				FastWindow: *sloFast,
				SlowWindow: *sloSlow,
				Burn:       *sloBurn,
			}, tl, obs.DefaultKpdObjectives(*sloP99))
			obs.SetSLOEngine(eng)
			eng.Start()
			defer eng.Stop()
		}
	} else if *slo {
		fatal(fmt.Errorf("-slo needs the timeline: set -timeline > 0"))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "kpd: serving on http://%s (/v1/solve /v1/solve_batch /v1/factor /metrics /snapshot /debug/traces /debug/profiles /debug/timeline /healthz)\n", ln.Addr())

	ctx, stop := server.SignalContext(context.Background())
	defer stop()
	if err := server.ServeUntil(ctx, ln, srv.Handler(), *grace); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "kpd: drained, bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kpd:", err)
	os.Exit(1)
}
