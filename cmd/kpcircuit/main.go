// Command kpcircuit builds the paper's algebraic circuits and prints their
// cost profile: size, depth, operation mix, random-node count, level
// widths, and Brent schedules for a sweep of processor counts.
//
// Usage:
//
//	kpcircuit -n 16 -kind solve
//	kpcircuit -n 32 -kind det -levels
//	kpcircuit -n 8  -kind inverse -p 1,4,16,64
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/circuit"
	"repro/internal/ff"
	"repro/internal/kp"
	"repro/internal/matrix"
	"repro/internal/structured"
)

func main() {
	var (
		n      = flag.Int("n", 16, "dimension")
		kind   = flag.String("kind", "solve", "circuit: solve | det | inverse | transposed | toeplitz-charpoly")
		levels = flag.Bool("levels", false, "print per-level widths")
		procs  = flag.String("p", "1,2,4,16,64,256,1024", "processor counts for Brent schedules")
		dot    = flag.String("dot", "", "write the (compacted) circuit as Graphviz DOT to this file")
		save   = flag.String("save", "", "serialize the circuit to this file (binary, reloadable with -load)")
		load   = flag.String("load", "", "load a previously saved circuit instead of building one")
	)
	flag.Parse()

	f := ff.MustFp64(ff.P62)
	mul := matrix.Classical[circuit.Wire]{}
	var b *circuit.Builder
	var err error
	if *load != "" {
		fh, err := os.Open(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kpcircuit:", err)
			os.Exit(1)
		}
		b, err = circuit.ReadCircuit(fh)
		fh.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "kpcircuit:", err)
			os.Exit(1)
		}
		*kind = "loaded"
	} else {
		switch *kind {
		case "solve":
			b, err = kp.TraceSolve[uint64](f, mul, *n)
		case "det":
			b, err = kp.TraceDet[uint64](f, mul, *n)
		case "inverse":
			b, err = kp.TraceInverse[uint64](f, mul, *n)
		case "transposed":
			b, err = kp.TraceTransposedSolve[uint64](f, mul, *n)
		case "toeplitz-charpoly":
			bb := circuit.NewBuilderFor[uint64](f)
			entries := bb.Inputs(2**n - 1)
			cp, cerr := structured.CharPoly[circuit.Wire](bb, structured.Toeplitz[circuit.Wire]{N: *n, D: entries})
			if cerr != nil {
				err = cerr
			} else {
				bb.Return(cp...)
				b = bb
			}
		default:
			fmt.Fprintf(os.Stderr, "kpcircuit: unknown kind %q\n", *kind)
			os.Exit(2)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "kpcircuit:", err)
		os.Exit(1)
	}
	if *save != "" {
		fh, err := os.Create(*save)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kpcircuit:", err)
			os.Exit(1)
		}
		if _, err := b.WriteTo(fh); err != nil {
			fmt.Fprintln(os.Stderr, "kpcircuit:", err)
			os.Exit(1)
		}
		fh.Close()
		fmt.Printf("saved circuit to %s\n", *save)
	}

	m := b.Metrics()
	if *load != "" {
		fmt.Printf("circuit %s (from %s, %d inputs)\n", *kind, *load, m.Inputs)
	} else {
		fmt.Printf("circuit %s, n = %d\n", *kind, *n)
	}
	fmt.Printf("  size      %d arithmetic nodes (live: %d)\n", m.Size, b.LiveSize())
	fmt.Printf("  depth     %d\n", m.Depth)
	fmt.Printf("  ops       %d add/sub/neg, %d mul, %d div/inv\n", m.Adds, m.Muls, m.Divs)
	fmt.Printf("  inputs    %d (%d random — Theorem 4 promises O(n))\n", m.Inputs, m.Randoms)
	fmt.Printf("  outputs   %d\n", m.Outputs)
	fmt.Printf("  p* = W/D  %d processors for polylog time at full efficiency\n", b.ProcessorEfficientP())

	fmt.Println("\nBrent schedules (T_p ≤ W/p + D):")
	fmt.Printf("  %-8s %-10s %-10s %-10s\n", "p", "T_p", "speedup", "efficiency")
	for _, tok := range strings.Split(*procs, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || p < 1 {
			continue
		}
		s := b.BrentSchedule(p)
		fmt.Printf("  %-8d %-10d %-10.2f %-10.3f\n", p, s.Time, s.Speedup(), s.Efficiency())
	}

	if *levels {
		fmt.Println("\nlevel widths:")
		for l, w := range b.LevelWidths() {
			if l == 0 || w == 0 {
				continue
			}
			fmt.Printf("  depth %4d: %d nodes\n", l, w)
		}
	}

	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kpcircuit:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := b.Compact().WriteDOT(f, *kind); err != nil {
			fmt.Fprintln(os.Stderr, "kpcircuit:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote Graphviz DOT to %s\n", *dot)
	}
}
