// Command kpbench regenerates the reproduction's experiment tables
// (DESIGN.md §4, E1–E13). Each table states the paper claim it checks and
// the measured values; EXPERIMENTS.md records a full run.
//
// Usage:
//
//	kpbench                 # run every experiment, quick sweeps
//	kpbench -full           # full sweeps (minutes)
//	kpbench -run E4,E10     # selected experiments
//	kpbench -md             # emit Markdown (for EXPERIMENTS.md)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
	"repro/internal/matrix"
)

func main() {
	var (
		run  = flag.String("run", "all", "comma-separated experiment ids (E1..E14, E3a, E4a, E4m, E10w) or 'all'")
		full = flag.Bool("full", false, "full parameter sweeps (slower)")
		seed = flag.Uint64("seed", 20260704, "random seed (runs are deterministic per seed)")
		md   = flag.Bool("md", false, "emit Markdown tables")
		mul  = flag.String("mul", "all", "multipliers for the E4m substrate ablation: 'all' or a comma-separated subset of "+strings.Join(matrix.Names(), ","))
	)
	flag.Parse()

	if *mul != "all" {
		if err := exp.SetMultipliers(strings.Split(*mul, ",")); err != nil {
			fmt.Fprintf(os.Stderr, "kpbench: %v\n", err)
			os.Exit(2)
		}
	}

	var selected []exp.Experiment
	if *run == "all" {
		selected = exp.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e := exp.ByID(strings.TrimSpace(id))
			if e == nil {
				fmt.Fprintf(os.Stderr, "kpbench: unknown experiment %q\n", id)
				os.Exit(2)
			}
			selected = append(selected, *e)
		}
	}

	for _, e := range selected {
		tab, err := e.Run(*seed, !*full)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kpbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *md {
			fmt.Println(tab.Markdown())
		} else {
			fmt.Println(tab.String())
		}
	}
}
