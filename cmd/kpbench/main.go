// Command kpbench regenerates the reproduction's experiment tables
// (DESIGN.md §4, E1–E13) and emits the machine-readable benchmark JSON
// that seeds the BENCH_*.json perf trajectory. Each table states the paper
// claim it checks and the measured values; EXPERIMENTS.md records a full
// run.
//
// Usage:
//
//	kpbench                 # run every experiment, quick sweeps
//	kpbench -full           # full sweeps (minutes)
//	kpbench -run E4,E10     # selected experiments
//	kpbench -md             # emit Markdown (for EXPERIMENTS.md)
//	kpbench -json -n 64,128 # per-phase op counts/timings as JSON
//	kpbench -rhs 8 -n 256   # batched multi-RHS rows (implies -json)
//	kpbench -ring zz        # exact ℤ rows: residues, CRT, parallel efficiency (implies -json)
//	kpbench -structured     # Toeplitz workload: dense vs implicit vs GS rows
//	kpbench -pprof :6060    # serve net/http/pprof + /debug/vars
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/exp"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	var (
		run      = flag.String("run", "all", "comma-separated experiment ids (E1..E14, E3a, E4a, E4m, E10w) or 'all'")
		full     = flag.Bool("full", false, "full parameter sweeps (slower)")
		seed     = flag.Uint64("seed", 20260704, "random seed (runs are deterministic per seed)")
		md       = flag.Bool("md", false, "emit Markdown tables")
		mul      = flag.String("mul", "all", "multipliers: 'all' or a comma-separated subset of "+strings.Join(matrix.Names(), ","))
		jsonF    = flag.Bool("json", false, "run the per-phase solve benchmark and emit a BENCH JSON report instead of experiment tables")
		nFlag    = flag.String("n", "64,128,256", "comma-separated system dimensions for -json")
		rhs      = flag.Int("rhs", 1, "right-hand sides per system: >1 adds batched SolveBatch rows (with their independent-solves baseline) to the -json report, and implies -json")
		structd  = flag.Bool("structured", false, "add the Toeplitz workload to the -json report (dense vs implicit vs Gohberg–Semencul rows at -structured-n), and implies -json")
		ringF    = flag.String("ring", "fp", "fp, or zz to add exact integer RNS/CRT rows (residue count, per-residue wall, CRT/reconstruct time, parallel efficiency) to the -json report at the -n dimensions; implies -json")
		structN  = flag.String("structured-n", "256,1024", "comma-separated Toeplitz dimensions for -structured")
		pprof    = flag.String("pprof", "", "serve net/http/pprof and the obs metrics registry (/debug/vars) on this address, e.g. :6060")
		serve    = flag.String("serve", "", "serve telemetry (/metrics Prometheus text, /snapshot JSON, /healthz) on this address for live scraping while the benchmarks run, e.g. :9090")
		workers  = flag.Int("workers", 0, "worker count for the shared matrix pool (0 = GOMAXPROCS)")
		baseline = flag.String("baseline", "", "BENCH_*.json file to gate -json runs against: exit non-zero if any shared (n, multiplier) cell is >10% slower")
	)
	flag.Parse()

	if *workers > 0 {
		if err := matrix.SetPoolWorkers(*workers); err != nil {
			fatal(err)
		}
	}
	if procs := runtime.GOMAXPROCS(0); procs < matrix.PoolWorkers() {
		fmt.Fprintf(os.Stderr, "kpbench: warning: GOMAXPROCS (%d) < pool workers (%d); workers will contend for cores and parallel timings will under-report speedup\n",
			procs, matrix.PoolWorkers())
	}

	// Unknown -mul names are an error in every mode: silently defaulting
	// would relabel a benchmark of the wrong kernel.
	muls, err := matrix.ParseMulFlag(*mul)
	if err != nil {
		fatal(err)
	}

	if *pprof != "" {
		obs.PublishExpvar()
		go func() {
			if err := http.ListenAndServe(*pprof, nil); err != nil {
				log.Printf("kpbench: pprof listener: %v", err)
			}
		}()
	}
	// Telemetry stays live for the whole run: benchmark sweeps take long
	// enough that a collector can scrape phase histograms and attempt
	// counters while they accumulate. SIGINT/SIGTERM or normal completion
	// drains in-flight scrapes via http.Server.Shutdown instead of cutting
	// a /metrics body short; a second signal force-kills a wedged drain.
	if *serve != "" {
		ln, err := net.Listen("tcp", *serve)
		if err != nil {
			fatal(fmt.Errorf("-serve %s: %w", *serve, err))
		}
		// The closed-loop surfaces ride along on a serving benchmark run:
		// bad-prime storms in the ring sweeps fire triggered captures, and
		// the timeline lets a collector read rates instead of raw totals.
		obs.SetProfileStore(obs.NewProfileStore(obs.ProfileStoreConfig{}))
		tl := obs.NewTimeline(obs.TimelineConfig{Interval: time.Second})
		obs.SetTimeline(tl)
		tl.Start()
		fmt.Fprintf(os.Stderr, "kpbench: telemetry on http://%s (/metrics /snapshot /debug/profiles /debug/timeline /healthz)\n", ln.Addr())
		ctx, stop := server.SignalContext(context.Background())
		done := make(chan error, 1)
		go func() {
			done <- server.ServeUntil(ctx, ln, obs.Handler(), 2*time.Second)
		}()
		defer func() {
			stop() // cancels ctx; ServeUntil shuts the listener down cleanly
			if err := <-done; err != nil {
				log.Printf("kpbench: telemetry listener: %v", err)
			}
		}()
	}

	if *rhs < 1 {
		fatal(fmt.Errorf("-rhs wants a positive count, got %d", *rhs))
	}
	if *ringF != "fp" && *ringF != "zz" {
		fatal(fmt.Errorf("-ring wants fp or zz, got %q (qq instances clear denominators into zz ones; bench the zz rows)", *ringF))
	}
	if *jsonF || *rhs > 1 || *structd || *ringF != "fp" {
		if *mul == "all" {
			// The JSON trajectory tracks the serial baseline against the
			// pooled kernels; blocked/strassen ride in via -mul.
			muls = []string{"classical", "parallel", "parallel-strassen"}
		}
		ns, err := parseDims(*nFlag)
		if err != nil {
			fatal(err)
		}
		report, err := exp.BenchJSON(ns, muls, *seed, *rhs)
		if err != nil {
			fatal(err)
		}
		if *structd {
			sns, err := parseDims(*structN)
			if err != nil {
				fatal(err)
			}
			runs, err := exp.BenchStructured(sns, *seed)
			if err != nil {
				fatal(err)
			}
			report.Runs = append(report.Runs, runs...)
		}
		if *ringF == "zz" {
			// Ring rows bench the whole multi-modulus engine; the inner
			// per-residue multiplier is one knob, so default to the serial
			// baseline unless -mul narrows the set explicitly.
			ringMuls := muls
			if *mul == "all" {
				ringMuls = []string{"classical"}
			}
			runs, err := exp.BenchRing(ns, ringMuls, *seed)
			if err != nil {
				fatal(err)
			}
			report.Runs = append(report.Runs, runs...)
		}
		if err := report.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		if *baseline != "" {
			base, err := exp.ReadBenchReport(*baseline)
			if err != nil {
				fatal(err)
			}
			if regressions := exp.CompareBaseline(report, base, 0.10); len(regressions) > 0 {
				for _, r := range regressions {
					fmt.Fprintf(os.Stderr, "kpbench: regression vs %s: %s\n", *baseline, r)
				}
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "kpbench: no regressions vs %s\n", *baseline)
		}
		return
	}

	// Header: make benchmark output self-describing — which kernels, which
	// field, how wide the pool is.
	fmt.Printf("kpbench: field F_%d, multipliers %s, pool %d workers (GOMAXPROCS %d), seed %d\n\n",
		exp.FieldModulus(), strings.Join(muls, ","), matrix.PoolWorkers(), runtime.GOMAXPROCS(0), *seed)
	if *mul != "all" {
		if err := exp.SetMultipliers(muls); err != nil {
			fatal(err)
		}
	}

	var selected []exp.Experiment
	if *run == "all" {
		selected = exp.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e := exp.ByID(strings.TrimSpace(id))
			if e == nil {
				fatal(fmt.Errorf("unknown experiment %q", id))
			}
			selected = append(selected, *e)
		}
	}

	for _, e := range selected {
		tab, err := e.Run(*seed, !*full)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		if *md {
			fmt.Println(tab.Markdown())
		} else {
			fmt.Println(tab.String())
		}
	}
}

// parseDims parses the -json dimension list.
func parseDims(spec string) ([]int, error) {
	var ns []int
	for _, raw := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(raw))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid dimension %q in -n", raw)
		}
		ns = append(ns, n)
	}
	return ns, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "kpbench: %v\n", err)
	os.Exit(2)
}
