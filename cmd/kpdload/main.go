// Command kpdload is the kpd load-test driver: it hammers a running daemon
// with concurrent clients cycling through a pool of distinct matrices and
// reports throughput, latency quantiles (p50/p90/p99), cache hit rate and
// the status breakdown — the numbers that tell you whether the
// factorization cache and the admission control are doing their jobs.
//
// Usage:
//
//	kpdload -addr http://127.0.0.1:8080 -c 8 -requests 200 -n 64
//	kpdload -c 16 -requests 500 -n 64 -matrices 4   # 4 distinct matrices → high hit rate
//	kpdload -c 32 -requests 200 -n 96 -matrices 200 # all-miss: stress factoring + queue
//	kpdload -c 8 -requests 200 -n 64 -json          # machine-readable kpdload/v1 report
//
// A non-zero exit means requests failed for reasons other than 429
// backpressure (which is load shedding working as designed, reported but
// tolerated).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ff"
	"repro/internal/matrix"
	"repro/internal/server"
)

// loadSchema identifies the -json report layout for downstream tooling,
// following the kpbench/v1 convention.
const loadSchema = "kpdload/v1"

// loadReport is the kpdload -json document: the run configuration plus the
// throughput / latency-quantile / cache / error numbers the text report
// prints, machine-readable for CI trend tracking.
type loadReport struct {
	Schema     string `json:"schema"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	Addr       string `json:"addr"`
	Clients    int    `json:"clients"`
	Requests   int    `json:"requests"`
	Dim        int    `json:"n"`
	Matrices   int    `json:"matrices"`
	Rhs        int    `json:"rhs,omitempty"`
	WallNs     int64  `json:"wall_ns"`
	Throughput float64 `json:"throughput_rps"`
	OK         int64  `json:"ok"`
	P50Ns      int64  `json:"p50_ns"`
	P90Ns      int64  `json:"p90_ns"`
	P99Ns      int64  `json:"p99_ns"`
	MaxNs      int64  `json:"max_ns"`
	CacheHits  int64  `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	HitRate    float64 `json:"hit_rate"`
	Rejected   int64  `json:"rejected"`
	Failed     int64  `json:"failed"`
	Wrong      int64  `json:"wrong"`
	// Statuses maps HTTP status code (as a string, for JSON) to count.
	Statuses map[string]int `json:"statuses"`
}

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "kpd base URL")
		clients  = flag.Int("c", 8, "concurrent clients")
		requests = flag.Int("requests", 100, "total requests across all clients")
		n        = flag.Int("n", 48, "system dimension")
		mats     = flag.Int("matrices", 4, "distinct matrices cycled through (fewer = higher cache hit rate)")
		rhs      = flag.Int("rhs", 0, "use /v1/solve_batch with this many right-hand sides (0 = /v1/solve)")
		p        = flag.Uint64("p", ff.P62, "prime field modulus")
		seed     = flag.Uint64("seed", 1, "matrix generation seed")
		deadline = flag.Duration("deadline", 30*time.Second, "per-request deadline")
		jsonOut  = flag.Bool("json", false, "emit the kpdload/v1 JSON report on stdout instead of the text summary")
	)
	flag.Parse()
	if *clients < 1 || *requests < 1 || *n < 1 || *mats < 1 {
		fmt.Fprintln(os.Stderr, "kpdload: -c, -requests, -n and -matrices want positive values")
		os.Exit(2)
	}

	f, err := ff.NewFp64(*p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kpdload:", err)
		os.Exit(2)
	}
	src := ff.NewSource(*seed)
	type instance struct {
		a   *matrix.Dense[uint64]
		req server.SolveRequest
	}
	pool := make([]instance, *mats)
	for i := range pool {
		a := matrix.Random[uint64](f, src, *n, *n, f.Modulus())
		req := server.SolveRequest{P: *p, DeadlineMS: deadline.Milliseconds()}
		req.A = make([][]uint64, *n)
		for r := 0; r < *n; r++ {
			req.A[r] = a.Row(r)
		}
		if *rhs > 0 {
			bs := matrix.Random[uint64](f, src, *n, *rhs, f.Modulus())
			req.Bs = make([][]uint64, *rhs)
			for j := 0; j < *rhs; j++ {
				req.Bs[j] = bs.Col(j)
			}
		} else {
			req.B = ff.SampleVec[uint64](f, src, *n, f.Modulus())
		}
		pool[i] = instance{a: a, req: req}
	}

	var (
		next      atomic.Int64
		hits      atomic.Int64
		misses    atomic.Int64
		rejected  atomic.Int64
		failed    atomic.Int64
		wrong     atomic.Int64
		latMu     sync.Mutex
		latencies []time.Duration
		statusMu  sync.Mutex
		statuses  = make(map[int]int)
	)
	client := &server.Client{BaseURL: *addr}
	ctx := context.Background()
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(*requests) {
					return
				}
				inst := pool[int(i)%len(pool)]
				t0 := time.Now()
				var resp *server.SolveResponse
				var err error
				if *rhs > 0 {
					resp, err = client.SolveBatch(ctx, inst.req)
				} else {
					resp, err = client.Solve(ctx, inst.req)
				}
				lat := time.Since(t0)
				if err != nil {
					var apiErr *server.APIError
					if errors.As(err, &apiErr) {
						statusMu.Lock()
						statuses[apiErr.Status]++
						statusMu.Unlock()
						if apiErr.Status == 429 {
							rejected.Add(1)
							continue
						}
					}
					failed.Add(1)
					fmt.Fprintln(os.Stderr, "kpdload:", err)
					continue
				}
				statusMu.Lock()
				statuses[200]++
				statusMu.Unlock()
				latMu.Lock()
				latencies = append(latencies, lat)
				latMu.Unlock()
				if resp.Cache == "hit" {
					hits.Add(1)
				} else {
					misses.Add(1)
				}
				// Spot-verify: A·x = b for the first returned column.
				x := resp.X
				var b []uint64
				if *rhs > 0 {
					x, b = resp.Xs[0], inst.req.Bs[0]
				} else {
					b = inst.req.B
				}
				if !ff.VecEqual[uint64](f, inst.a.MulVec(f, x), b) {
					wrong.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	ok := int64(len(latencies))
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	q := func(p float64) time.Duration {
		if ok == 0 {
			return 0
		}
		return latencies[min(int(p*float64(ok)), int(ok)-1)]
	}
	hitRate := float64(hits.Load()) / float64(max(hits.Load()+misses.Load(), 1))

	if *jsonOut {
		report := loadReport{
			Schema:     loadSchema,
			GoVersion:  runtime.Version(),
			NumCPU:     runtime.NumCPU(),
			Addr:       *addr,
			Clients:    *clients,
			Requests:   *requests,
			Dim:        *n,
			Matrices:   *mats,
			Rhs:        *rhs,
			WallNs:     elapsed.Nanoseconds(),
			Throughput: float64(ok) / elapsed.Seconds(),
			OK:         ok,
			P50Ns:      q(0.50).Nanoseconds(),
			P90Ns:      q(0.90).Nanoseconds(),
			P99Ns:      q(0.99).Nanoseconds(),
			CacheHits:  hits.Load(),
			CacheMisses: misses.Load(),
			HitRate:    hitRate,
			Rejected:   rejected.Load(),
			Failed:     failed.Load(),
			Wrong:      wrong.Load(),
			Statuses:   make(map[string]int),
		}
		if ok > 0 {
			report.MaxNs = latencies[ok-1].Nanoseconds()
		}
		statusMu.Lock()
		for c, count := range statuses {
			report.Statuses[strconv.Itoa(c)] = count
		}
		statusMu.Unlock()
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "kpdload:", err)
			os.Exit(1)
		}
	} else {
		fmt.Printf("kpdload: %d requests, %d clients, n=%d, %d distinct matrices, rhs=%d\n",
			*requests, *clients, *n, *mats, *rhs)
		fmt.Printf("  wall %s, throughput %.1f req/s\n", elapsed.Round(time.Millisecond), float64(ok)/elapsed.Seconds())
		if ok > 0 {
			fmt.Printf("  latency p50 %s  p90 %s  p99 %s  max %s\n",
				q(0.50).Round(time.Microsecond), q(0.90).Round(time.Microsecond),
				q(0.99).Round(time.Microsecond), latencies[ok-1].Round(time.Microsecond))
		}
		fmt.Printf("  cache: %d hits, %d misses (%.1f%% hit rate)\n",
			hits.Load(), misses.Load(), 100*hitRate)
		fmt.Printf("  rejected (429 backpressure): %d\n", rejected.Load())
		statusMu.Lock()
		codes := make([]int, 0, len(statuses))
		for c := range statuses {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		fmt.Printf("  status:")
		for _, c := range codes {
			fmt.Printf(" %d×%d", c, statuses[c])
		}
		fmt.Println()
		statusMu.Unlock()
	}
	if w := wrong.Load(); w > 0 {
		fmt.Fprintf(os.Stderr, "kpdload: %d responses FAILED local verification\n", w)
		os.Exit(1)
	}
	if f := failed.Load(); f > 0 {
		fmt.Fprintf(os.Stderr, "kpdload: %d requests failed\n", f)
		os.Exit(1)
	}
}
