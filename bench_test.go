// Benchmark harness: one benchmark family per experiment in DESIGN.md §4
// (the "tables and figures" of this reproduction — the paper itself is a
// theory paper, so the experiments regenerate its theorem claims), plus
// micro-benchmarks of the substrate layers.
//
//	go test -bench=. -benchmem
//
// Experiment benchmarks print their measured table once and report the
// headline quantity as a custom metric, so `go test -bench` output doubles
// as the reproduction record (see bench_output.txt / EXPERIMENTS.md).
package repro_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/charpoly"
	"repro/internal/circuit"
	"repro/internal/exp"
	"repro/internal/ff"
	"repro/internal/kp"
	"repro/internal/matrix"
	"repro/internal/poly"
	"repro/internal/seq"
	"repro/internal/structured"
	"repro/internal/wiedemann"
)

var benchField = ff.MustFp64(ff.PNTT62) // FFT-friendly: the library's intended substrate

var printOnce sync.Map

// runExperiment runs one E-table inside a benchmark, printing the table the
// first time and reporting wall time per run through the framework.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e := exp.ByID(id)
	if e == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		tab, err := e.Run(20260704, true)
		if err != nil {
			b.Fatal(err)
		}
		if _, done := printOnce.LoadOrStore(id, true); !done {
			fmt.Printf("\n%s\n", tab.String())
		}
	}
}

func BenchmarkE1MinpolyProbability(b *testing.B)        { runExperiment(b, "E1") }
func BenchmarkE2PreconditionerProbability(b *testing.B) { runExperiment(b, "E2") }
func BenchmarkE3ToeplitzCharpolyCircuit(b *testing.B)   { runExperiment(b, "E3") }
func BenchmarkE3aLeverrierAblation(b *testing.B)        { runExperiment(b, "E3a") }
func BenchmarkE4SolverCircuit(b *testing.B)             { runExperiment(b, "E4") }
func BenchmarkE4aStrassenAblation(b *testing.B)         { runExperiment(b, "E4a") }
func BenchmarkE4mMultiplierSubstrate(b *testing.B)      { runExperiment(b, "E4m") }
func BenchmarkE5ProcessorCounts(b *testing.B)           { runExperiment(b, "E5") }
func BenchmarkE6BaurStrassen(b *testing.B)              { runExperiment(b, "E6") }
func BenchmarkE7InverseCircuit(b *testing.B)            { runExperiment(b, "E7") }
func BenchmarkE8Transposed(b *testing.B)                { runExperiment(b, "E8") }
func BenchmarkE9SmallCharacteristic(b *testing.B)       { runExperiment(b, "E9") }
func BenchmarkE10PramSchedule(b *testing.B)             { runExperiment(b, "E10") }
func BenchmarkE10Wallclock(b *testing.B)                { runExperiment(b, "E10w") }
func BenchmarkE11SparseCrossover(b *testing.B)          { runExperiment(b, "E11") }
func BenchmarkE12PolyGCD(b *testing.B)                  { runExperiment(b, "E12") }
func BenchmarkE13RankNullspace(b *testing.B)            { runExperiment(b, "E13") }
func BenchmarkE14ExtensionLifting(b *testing.B)         { runExperiment(b, "E14") }

// --- substrate micro-benchmarks ---

func BenchmarkFieldMul(b *testing.B) {
	f := benchField
	x, y := uint64(123456789123456), uint64(987654321987654)
	for i := 0; i < b.N; i++ {
		x = f.Mul(x, y)
	}
	_ = x
}

func BenchmarkFieldInv(b *testing.B) {
	f := benchField
	x := uint64(123456789123456)
	for i := 0; i < b.N; i++ {
		v, err := f.Inv(x)
		if err != nil {
			b.Fatal(err)
		}
		x = v + 1
	}
}

func BenchmarkPolyMul(b *testing.B) {
	f := benchField
	src := ff.NewSource(1)
	for _, n := range []int{32, 256, 1024} {
		x := ff.SampleVec[uint64](f, src, n, f.Modulus())
		y := ff.SampleVec[uint64](f, src, n, f.Modulus())
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				poly.Mul[uint64](f, x, y)
			}
		})
	}
}

func BenchmarkMatMul(b *testing.B) {
	f := benchField
	src := ff.NewSource(2)
	for _, n := range []int{32, 64, 128} {
		x := matrix.Random[uint64](f, src, n, n, f.Modulus())
		y := matrix.Random[uint64](f, src, n, n, f.Modulus())
		b.Run(fmt.Sprintf("classical/n=%d", n), func(b *testing.B) {
			m := matrix.Classical[uint64]{}
			for i := 0; i < b.N; i++ {
				m.Mul(f, x, y)
			}
		})
		b.Run(fmt.Sprintf("strassen/n=%d", n), func(b *testing.B) {
			m := matrix.Strassen[uint64]{Cutoff: 32}
			for i := 0; i < b.N; i++ {
				m.Mul(f, x, y)
			}
		})
	}
}

// BenchmarkMulParallel is the substrate acceptance benchmark: every
// registered multiplier on the same random products, n up to 256. The
// blocked and pooled kernels must beat serial Classical at n ≥ 256 (on
// multicore hosts the pooled kernels additionally scale with cores).
func BenchmarkMulParallel(b *testing.B) {
	f := benchField
	src := ff.NewSource(11)
	for _, n := range []int{64, 128, 256} {
		x := matrix.Random[uint64](f, src, n, n, f.Modulus())
		y := matrix.Random[uint64](f, src, n, n, f.Modulus())
		for _, name := range matrix.Names() {
			mul, err := matrix.ByName[uint64](name)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/n=%d", name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					mul.Mul(f, x, y)
				}
			})
		}
	}
}

// BenchmarkKrylovDoubling exercises the equation (9) doubling — the
// solvers' hottest composite loop — under the serial and pooled substrates.
func BenchmarkKrylovDoubling(b *testing.B) {
	f := benchField
	src := ff.NewSource(12)
	const n = 128
	a := matrix.Random[uint64](f, src, n, n, f.Modulus())
	v := ff.SampleVec[uint64](f, src, n, f.Modulus())
	for _, name := range []string{"classical", "parallel"} {
		mul, err := matrix.ByName[uint64](name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				matrix.KrylovDoubling[uint64](f, mul, a, v, 2*n)
			}
		})
	}
}

func BenchmarkToeplitzCharPoly(b *testing.B) {
	f := benchField
	src := ff.NewSource(3)
	for _, n := range []int{16, 64} {
		tp := structured.RandomToeplitz[uint64](f, src, n, f.Modulus())
		b.Run(fmt.Sprintf("theorem3/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := structured.CharPoly[uint64](f, tp); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("berkowitz/n=%d", n), func(b *testing.B) {
			d := tp.Dense(f)
			for i := 0; i < b.N; i++ {
				charpoly.CharPolyBerkowitz[uint64](f, d)
			}
		})
	}
}

func BenchmarkSolvers(b *testing.B) {
	f := benchField
	src := ff.NewSource(4)
	for _, n := range []int{16, 32} {
		a := matrix.Random[uint64](f, src, n, n, f.Modulus())
		rhs := ff.SampleVec[uint64](f, src, n, f.Modulus())
		b.Run(fmt.Sprintf("kp/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := kp.Solve[uint64](f, matrix.Classical[uint64]{}, a, rhs, kp.Params{Src: src, Subset: f.Modulus()}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("lu/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := matrix.Solve[uint64](f, a, rhs); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("csanky/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := charpoly.SolveCsanky[uint64](f, matrix.Classical[uint64]{}, a, rhs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkWiedemannSparse(b *testing.B) {
	f := benchField
	src := ff.NewSource(5)
	for _, n := range []int{100, 300} {
		sp := matrix.RandomSparse[uint64](f, src, n, 0.02, f.Modulus())
		rhs := ff.SampleVec[uint64](f, src, n, f.Modulus())
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := wiedemann.Solve[uint64](f, matrix.SparseBox[uint64]{M: sp}, rhs, src, f.Modulus(), 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCircuitTraceAndEval(b *testing.B) {
	f := benchField
	src := ff.NewSource(6)
	const n = 16
	b.Run("trace-solve", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := kp.TraceSolve[uint64](f, matrix.Classical[circuit.Wire]{}, n); err != nil {
				b.Fatal(err)
			}
		}
	})
	circ, err := kp.TraceSolve[uint64](f, matrix.Classical[circuit.Wire]{}, n)
	if err != nil {
		b.Fatal(err)
	}
	a := matrix.Random[uint64](f, src, n, n, f.Modulus())
	rhs := ff.SampleVec[uint64](f, src, n, f.Modulus())
	rnd := kp.DrawRandomness[uint64](f, src, n, f.Modulus())
	inputs := append(append(append([]uint64{}, a.Data...), rhs...), rnd.Flat()...)
	b.Run("eval", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := circuit.Eval[uint64](circ, f, inputs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gradient", func(b *testing.B) {
		det, err := kp.TraceDet[uint64](f, matrix.Classical[circuit.Wire]{}, n)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c := det.Clone()
			if _, err := circuit.Gradient(c, c.Outputs()[0]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkResultant(b *testing.B) {
	f := benchField
	src := ff.NewSource(8)
	for _, deg := range []int{16, 48} {
		pa := ff.SampleVec[uint64](f, src, deg+1, f.Modulus())
		pb := ff.SampleVec[uint64](f, src, deg+1, f.Modulus())
		pa[deg], pb[deg] = 1, 1
		b.Run(fmt.Sprintf("dense-det/deg=%d", deg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := kp.ResultantSylvester[uint64](f, pa, pb); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("blackbox-wiedemann/deg=%d", deg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := kp.ResultantWiedemann[uint64](f, pa, pb, kp.Params{Src: src, Subset: f.Modulus()}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("euclid/deg=%d", deg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := poly.Resultant[uint64](f, pa, pb); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkInverse(b *testing.B) {
	f := benchField
	src := ff.NewSource(9)
	for _, n := range []int{16, 32} {
		a := matrix.Random[uint64](f, src, n, n, f.Modulus())
		b.Run(fmt.Sprintf("lu/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := matrix.Inverse[uint64](f, a); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("bunch-hopcroft/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := matrix.InverseBH[uint64](f, matrix.Classical[uint64]{}, a, src, f.Modulus(), 0); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("kp-theorem6/n=%d", n), func(b *testing.B) {
			if n > 16 {
				b.Skip("circuit build dominates at this size")
			}
			for i := 0; i < b.N; i++ {
				if _, err := kp.Inverse[uint64](f, matrix.Classical[uint64]{}, a, kp.Params{Src: src, Subset: f.Modulus()}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCompact(b *testing.B) {
	circ, err := kp.TraceSolve[uint64](benchField, matrix.Classical[circuit.Wire]{}, 16)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		circ.Compact()
	}
}

func BenchmarkBerlekampMassey(b *testing.B) {
	f := benchField
	src := ff.NewSource(7)
	for _, n := range []int{64, 512} {
		// A sequence with a planted degree-n/2 recurrence.
		g := make([]uint64, n/2+1)
		for i := range g {
			g[i] = src.Uint64n(f.Modulus())
		}
		g[n/2] = 1
		init := ff.SampleVec[uint64](f, src, n/2, f.Modulus())
		a := seq.Apply[uint64](f, g, init, 2*n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := seq.MinPoly[uint64](f, a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
