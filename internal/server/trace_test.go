package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// withTraceStore installs a fresh tail-sampling store that keeps every
// request (SampleEvery 1), restoring the previous global on cleanup.
func withTraceStore(t *testing.T) *obs.TraceStore {
	t.Helper()
	prev := obs.ActiveTraceStore()
	store := obs.NewTraceStore(obs.TraceStoreConfig{Capacity: 64, SlowThreshold: time.Hour, SampleEvery: 1})
	obs.SetTraceStore(store)
	t.Cleanup(func() { obs.SetTraceStore(prev) })
	return store
}

// TestTraceparentPropagation is the tentpole end-to-end check: a client
// traceparent flows through the server, comes back on the response, and the
// retained trace carries the request's span tree tagged with the same id.
func TestTraceparentPropagation(t *testing.T) {
	withObserver(t)
	store := withTraceStore(t)
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, _, req := testSystem(t, 7, 16)
	body, _ := json.Marshal(req)
	const clientTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	const clientSpan = "00f067aa0ba902b7"
	hreq, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", bytes.NewReader(body))
	hreq.Header.Set("traceparent", "00-"+clientTrace+"-"+clientSpan+"-01")
	hresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(hresp.Body)
		t.Fatalf("status %d: %s", hresp.StatusCode, raw)
	}

	// The response echoes the trace on the header and in the body.
	echoed, err := obs.ParseTraceparent(hresp.Header.Get("traceparent"))
	if err != nil {
		t.Fatalf("response traceparent: %v", err)
	}
	if echoed.Trace.String() != clientTrace {
		t.Fatalf("response trace = %s, want the client's %s", echoed.Trace, clientTrace)
	}
	if echoed.Span.String() == clientSpan {
		t.Fatal("server reused the client's span id instead of minting a child")
	}
	var resp SolveResponse
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.TraceID != clientTrace {
		t.Fatalf("body trace_id = %q, want %q", resp.TraceID, clientTrace)
	}

	// The retained trace: correct linkage, summary, and a span tree whose
	// every span is tagged with the request's trace id.
	rt, ok := store.Get(clientTrace)
	if !ok {
		t.Fatal("request not retained in the trace store")
	}
	if rt.ParentSpanID != clientSpan {
		t.Fatalf("parent span = %q, want the client's %q", rt.ParentSpanID, clientSpan)
	}
	if rt.SpanID != echoed.Span.String() {
		t.Fatalf("root span = %q, want the echoed %q", rt.SpanID, echoed.Span)
	}
	if rt.Route != "solve" || rt.Status != 200 || rt.Cache != "miss" || rt.N != 16 {
		t.Fatalf("summary = route %q status %d cache %q n %d", rt.Route, rt.Status, rt.Cache, rt.N)
	}
	if rt.Attempts < 1 {
		t.Fatalf("attempts = %d, want ≥ 1", rt.Attempts)
	}
	if len(rt.Spans) == 0 {
		t.Fatal("trace retained no spans")
	}
	names := make(map[string]bool)
	for _, sp := range rt.Spans {
		names[sp.Name] = true
		if sp.Trace.String() != clientTrace {
			t.Fatalf("span %q tagged with trace %q, want %q", sp.Name, sp.Trace, clientTrace)
		}
	}
	for _, want := range []string{"request/solve", obs.PhaseBatchKrylov, obs.PhaseBatchBacksolve} {
		if !names[want] {
			t.Fatalf("span tree misses %q (has %v)", want, names)
		}
	}
}

// TestMalformedTraceparentFallsBackToFreshTrace: a garbage header must not
// fail the request — the server mints its own identity.
func TestMalformedTraceparentFallsBackToFreshTrace(t *testing.T) {
	withTraceStore(t)
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, _, req := testSystem(t, 8, 16)
	body, _ := json.Marshal(req)
	hreq, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", bytes.NewReader(body))
	hreq.Header.Set("traceparent", "garbage-in")
	hresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("malformed traceparent failed the request: %d", hresp.StatusCode)
	}
	var resp SolveResponse
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.TraceID) != 32 {
		t.Fatalf("fresh trace id = %q, want 32 hex digits", resp.TraceID)
	}
}

// TestClientSendsTraceparentAndSurfacesErrors: the typed Client mints a
// traceparent per request (honoring one already on ctx) and APIError quotes
// the server's trace id.
func TestClientSendsTraceparentAndSurfacesErrors(t *testing.T) {
	store := withTraceStore(t)
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &Client{BaseURL: ts.URL}

	// A caller-provided trace rides ctx end to end.
	tc := obs.NewTraceContext()
	ctx := obs.ContextWithTrace(context.Background(), tc)
	_, _, req := testSystem(t, 9, 16)
	resp, err := client.Solve(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.TraceID != tc.Trace.String() {
		t.Fatalf("server saw trace %q, client sent %q", resp.TraceID, tc.Trace)
	}

	// An invalid request: the APIError carries the trace id and the trace
	// is retained as an error.
	bad := SolveRequest{P: req.P, A: [][]uint64{}}
	_, err = client.Solve(context.Background(), bad)
	if err == nil {
		t.Fatal("empty system should fail")
	}
	apiErr, ok := err.(*APIError)
	if !ok {
		t.Fatalf("error type %T, want *APIError", err)
	}
	if apiErr.Status != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", apiErr.Status)
	}
	if len(apiErr.TraceID) != 32 {
		t.Fatalf("APIError trace id = %q, want 32 hex digits", apiErr.TraceID)
	}
	if !strings.Contains(apiErr.Error(), apiErr.TraceID) {
		t.Fatalf("APIError.Error() %q does not quote the trace id", apiErr.Error())
	}
	rt, ok := store.Get(apiErr.TraceID)
	if !ok {
		t.Fatal("errored request not retained")
	}
	if rt.Kept != obs.KeptError || rt.Status != 400 || rt.Error == "" {
		t.Fatalf("errored trace = kept %q status %d error %q", rt.Kept, rt.Status, rt.Error)
	}
}

// TestDebugTracesEndpoint drives /debug/traces through the server mux: the
// list document, the per-trace span tree, and the Chrome export.
func TestDebugTracesEndpoint(t *testing.T) {
	withObserver(t)
	withTraceStore(t)
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &Client{BaseURL: ts.URL}

	_, _, req := testSystem(t, 10, 16)
	resp, err := client.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	get := func(path string) []byte {
		t.Helper()
		hresp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer hresp.Body.Close()
		raw, _ := io.ReadAll(hresp.Body)
		if hresp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d: %s", path, hresp.StatusCode, raw)
		}
		return raw
	}

	var list struct {
		Traces []struct {
			TraceID string `json:"trace_id"`
			Route   string `json:"route"`
			Spans   int    `json:"spans"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(get("/debug/traces"), &list); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tr := range list.Traces {
		if tr.TraceID == resp.TraceID {
			found = true
			if tr.Route != "solve" || tr.Spans == 0 {
				t.Fatalf("list entry = %+v", tr)
			}
		}
	}
	if !found {
		t.Fatalf("trace %s not in /debug/traces list", resp.TraceID)
	}

	var full obs.RequestTrace
	if err := json.Unmarshal(get("/debug/traces?id="+resp.TraceID), &full); err != nil {
		t.Fatal(err)
	}
	if full.TraceID != resp.TraceID || len(full.Spans) == 0 {
		t.Fatalf("full trace = id %q, %d spans", full.TraceID, len(full.Spans))
	}

	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(get("/debug/traces?id="+resp.TraceID+"&format=chrome"), &chrome); err != nil {
		t.Fatal(err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("chrome export has no events")
	}

	// Without a store, the endpoint 404s instead of serving stale data.
	obs.SetTraceStore(nil)
	hresp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled store served %d, want 404", hresp.StatusCode)
	}
}

// TestQueueWaitSpanOnContention: a request that had to queue records the
// wait on its retained trace.
func TestQueueWaitSpanOnContention(t *testing.T) {
	withObserver(t)
	store := withTraceStore(t)
	gate := make(chan struct{})
	s := newTestServer(t, func(c *Config) {
		c.MaxConcurrent = 1
		c.MaxQueue = 4
	})
	s.testHookInSlot = func() { <-gate }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &Client{BaseURL: ts.URL}

	_, _, req := testSystem(t, 11, 16)
	done := make(chan error, 2)
	var ids [2]obs.TraceContext
	for i := range ids {
		ids[i] = obs.NewTraceContext()
		go func(tc obs.TraceContext) {
			_, err := client.Solve(obs.ContextWithTrace(context.Background(), tc), req)
			done <- err
		}(ids[i])
	}
	// Both requests are in (one in the slot, one queued); release the gate
	// after they have had time to collide.
	time.Sleep(100 * time.Millisecond)
	close(gate)
	for range ids {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}

	waited := 0
	for _, tc := range ids {
		rt, ok := store.Get(tc.Trace.String())
		if !ok {
			t.Fatalf("trace %s not retained", tc.Trace)
		}
		if rt.QueueWait > 0 {
			waited++
			names := make(map[string]bool)
			for _, sp := range rt.Spans {
				names[sp.Name] = true
			}
			if !names["queue/wait"] {
				t.Fatalf("queued request has QueueWait=%s but no queue/wait span (spans %v)", rt.QueueWait, names)
			}
		}
	}
	if waited == 0 {
		t.Fatal("neither request recorded a queue wait despite MaxConcurrent=1 and a wedged slot")
	}
}
