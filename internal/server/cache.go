package server

import (
	"container/list"
	"context"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
)

// Factorization cache: the economic heart of kpd. kp.Factor is the whole
// Theorem 4 front end — preconditioning, Krylov doubling, characteristic
// polynomial — while Factored.Solve replays only the backsolve, so a
// digest-keyed LRU of Factored handles turns every repeat matrix into a
// cheap backsolve (observable as batch/backsolve spans with no new
// batch/krylov span, and as server.cache.hits on /metrics).
//
// Handles are shared, not checked out: kp.Factorization is safe for
// concurrent use, so any number of in-flight requests may hold the same
// entry while it is (or even after it has been) evicted — eviction only
// drops the cache's reference.

var (
	cacheHits      = obs.NewCounter("server.cache.hits")
	cacheMisses    = obs.NewCounter("server.cache.misses")
	cacheEvictions = obs.NewCounter("server.cache.evictions")
	cacheSize      = obs.NewGauge("server.cache.size")
)

// Cache is a bounded LRU of reusable factorizations keyed by canonical
// matrix digest (matrix.DigestString), with duplicate-factor suppression:
// concurrent misses on the same key run the expensive Factor once and share
// the result. Safe for concurrent use.
type Cache[E any] struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used; values are *cacheEntry[E]
	byKey    map[string]*list.Element
	inflight map[string]*flight[E]
}

type cacheEntry[E any] struct {
	key string
	fa  *core.Factored[E]
}

// flight is one in-progress Factor shared by every concurrent miss on its
// key.
type flight[E any] struct {
	done chan struct{} // closed when fa/err are final
	fa   *core.Factored[E]
	err  error
}

// NewCache returns an LRU holding at most capacity factorizations
// (capacity must be positive).
func NewCache[E any](capacity int) *Cache[E] {
	if capacity <= 0 {
		panic("server: cache capacity must be positive")
	}
	return &Cache[E]{
		capacity: capacity,
		ll:       list.New(),
		byKey:    make(map[string]*list.Element),
		inflight: make(map[string]*flight[E]),
	}
}

// Len returns the number of cached factorizations.
func (c *Cache[E]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Get returns the cached factorization for key, if present, marking it
// most recently used.
func (c *Cache[E]) Get(key string) (*core.Factored[E], bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry[E]).fa, true
	}
	return nil, false
}

// GetOrFactor returns the factorization for key, running factor on a miss.
// The boolean reports a cache hit. Concurrent misses on the same key are
// coalesced: one caller factors, the rest wait for its result (or for
// their own ctx). A failed factor is not cached — the waiters receive the
// leader's error and the next request retries fresh, so a transient
// failure (an unlucky randomization burst, a canceled leader) cannot
// poison the key.
func (c *Cache[E]) GetOrFactor(ctx context.Context, key string, factor func() (*core.Factored[E], error)) (*core.Factored[E], bool, error) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		fa := el.Value.(*cacheEntry[E]).fa
		c.mu.Unlock()
		cacheHits.Inc()
		return fa, true, nil
	}
	if fl, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		select {
		case <-fl.done:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		if fl.err != nil {
			// The leader failed with *its* deadline or randomness; report
			// the miss against this request rather than retrying here (the
			// caller owns the retry policy).
			return nil, false, fl.err
		}
		cacheHits.Inc()
		return fl.fa, true, nil
	}
	fl := &flight[E]{done: make(chan struct{})}
	c.inflight[key] = fl
	c.mu.Unlock()

	cacheMisses.Inc()
	fl.fa, fl.err = factor()

	c.mu.Lock()
	delete(c.inflight, key)
	if fl.err == nil {
		c.insert(key, fl.fa)
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.fa, false, fl.err
}

// Put inserts (or refreshes) a factorization under key.
func (c *Cache[E]) Put(key string, fa *core.Factored[E]) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insert(key, fa)
}

// insert adds key→fa at the front and evicts past capacity. Caller holds mu.
func (c *Cache[E]) insert(key string, fa *core.Factored[E]) {
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry[E]).fa = fa
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry[E]{key: key, fa: fa})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry[E]).key)
		cacheEvictions.Inc()
	}
	cacheSize.Set(int64(c.ll.Len()))
}
