package server

import (
	"bytes"
	"encoding/json"
	"math/big"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// postJSON posts a raw JSON body and decodes the response envelope.
func postJSON(t *testing.T, h http.Handler, path, body string) (int, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader([]byte(body)))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	var m map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &m); err != nil {
		t.Fatalf("response %q: %v", w.Body.String(), err)
	}
	return w.Code, m
}

func postSolve(t *testing.T, h http.Handler, req SolveRequest) (int, *SolveResponse, map[string]any) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	code, m := postJSON(t, h, "/v1/solve", string(body))
	var resp SolveResponse
	raw, _ := json.Marshal(m)
	_ = json.Unmarshal(raw, &resp)
	return code, &resp, m
}

// TestRingZZSolve: exact integer solve over the wire — the response
// carries canonical rational strings, ring stats, and the second request
// on the same matrix hits the residue factorization cache.
func TestRingZZSolve(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()
	req := SolveRequest{
		Ring: "zz",
		Az: [][]string{
			{"4", "-2", "1"},
			{"3", "6", "-4"},
			{"2", "1", "8"},
		},
		Bz: []string{"12", "-25", "32"},
	}
	code, resp, _ := postSolve(t, h, req)
	if code != http.StatusOK {
		t.Fatalf("status %d, resp %+v", code, resp)
	}
	if resp.Ring != "zz" || resp.Cache != "miss" {
		t.Fatalf("ring/cache: %+v", resp)
	}
	if resp.RNS == nil || !resp.RNS.Verified || resp.RNS.Residues < 1 {
		t.Fatalf("rns stats: %+v", resp.RNS)
	}
	if len(resp.Xr) != 3 {
		t.Fatalf("xr: %v", resp.Xr)
	}
	// Verify the returned strings solve the system exactly over ℚ.
	x := make([]*big.Rat, 3)
	for i, sx := range resp.Xr {
		r, ok := new(big.Rat).SetString(sx)
		if !ok {
			t.Fatalf("xr[%d] = %q not rational", i, sx)
		}
		x[i] = r
	}
	a := [][]int64{{4, -2, 1}, {3, 6, -4}, {2, 1, 8}}
	b := []int64{12, -25, 32}
	for i := range a {
		acc := new(big.Rat)
		for j := range a[i] {
			acc.Add(acc, new(big.Rat).Mul(new(big.Rat).SetInt64(a[i][j]), x[j]))
		}
		if acc.Cmp(new(big.Rat).SetInt64(b[i])) != 0 {
			t.Fatalf("row %d residual: %s", i, acc.RatString())
		}
	}

	// Same matrix, different RHS: all residue factorizations are cached.
	req.Bz = []string{"1", "0", "-1"}
	code, resp2, _ := postSolve(t, h, req)
	if code != http.StatusOK {
		t.Fatalf("repeat status %d", code)
	}
	if resp2.Cache != "hit" {
		t.Fatalf("repeat request cache = %q, want hit (stats %+v)", resp2.Cache, resp2.RNS)
	}
	if resp2.RNS.CacheMisses != 0 || resp2.RNS.CacheHits < 1 {
		t.Fatalf("repeat stats: %+v", resp2.RNS)
	}
	if resp2.Digest != resp.Digest {
		t.Fatal("digest changed between identical matrices")
	}
}

// TestRingQQSolve: rational entries ("num/den") round-trip exactly.
func TestRingQQSolve(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()
	req := SolveRequest{
		Ring: "qq",
		Az: [][]string{
			{"1/2", "1/3"},
			{"-2/5", "1"},
		},
		Bz: []string{"5/6", "3/5"},
	}
	code, resp, _ := postSolve(t, h, req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %+v", code, resp)
	}
	x := make([]*big.Rat, 2)
	for i, sx := range resp.Xr {
		r, ok := new(big.Rat).SetString(sx)
		if !ok {
			t.Fatalf("xr[%d] = %q", i, sx)
		}
		x[i] = r
	}
	// Row 0: x0/2 + x1/3 = 5/6; row 1: −2x0/5 + x1 = 3/5.
	r0 := new(big.Rat).Add(new(big.Rat).Mul(big.NewRat(1, 2), x[0]), new(big.Rat).Mul(big.NewRat(1, 3), x[1]))
	if r0.Cmp(big.NewRat(5, 6)) != 0 {
		t.Fatalf("row 0 residual %s", r0.RatString())
	}
	r1 := new(big.Rat).Add(new(big.Rat).Mul(big.NewRat(-2, 5), x[0]), x[1])
	if r1.Cmp(big.NewRat(3, 5)) != 0 {
		t.Fatalf("row 1 residual %s", r1.RatString())
	}
}

// TestRingSingular422: a singular ℤ system maps to 422, like its field
// counterpart.
func TestRingSingular422(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.Retries = 2 })
	code, _, m := postSolve(t, s.Handler(), SolveRequest{
		Ring: "zz",
		Az:   [][]string{{"1", "2"}, {"2", "4"}},
		Bz:   []string{"1", "1"},
	})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, body %v", code, m)
	}
}

// TestRingValidation: ring routes reject malformed ring requests with 400
// and a useful message.
func TestRingValidation(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()
	cases := []struct {
		name string
		path string
		body string
	}{
		{"unknown ring", "/v1/solve", `{"ring":"gf9","az":[["1"]],"bz":["1"]}`},
		{"ring on batch", "/v1/solve_batch", `{"ring":"zz","az":[["1"]],"bz":["1"]}`},
		{"fp fields with zz", "/v1/solve", `{"ring":"zz","p":31,"az":[["1"]],"bz":["1"]}`},
		{"non-integer entry", "/v1/solve", `{"ring":"zz","az":[["x"]],"bz":["1"]}`},
		{"missing rhs", "/v1/solve", `{"ring":"zz","az":[["1"]]}`},
		{"bad verify", "/v1/solve", `{"ring":"zz","az":[["1"]],"bz":["1"],"verify":"maybe"}`},
	}
	for _, tc := range cases {
		code, m := postJSON(t, h, tc.path, tc.body)
		if code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, body %v", tc.name, code, m)
		}
	}
}

// TestUnknownFieldRejected: the strict decoder names the offending field
// in a 400 — client typos fail loudly (the api versioning satellite).
func TestUnknownFieldRejected(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()
	code, m := postJSON(t, h, "/v1/solve", `{"p":4611686018427387847,"a":[[1]],"b":[1],"subste":31}`)
	if code != http.StatusBadRequest {
		t.Fatalf("status %d, body %v", code, m)
	}
	msg, _ := m["error"].(string)
	if !strings.Contains(msg, "subste") {
		t.Fatalf("error %q does not name the unknown field", msg)
	}
	// A correct body on the same server still works.
	code, m = postJSON(t, h, "/v1/solve", `{"p":4611686018427387847,"a":[[2]],"b":[4]}`)
	if code != http.StatusOK {
		t.Fatalf("clean request status %d, body %v", code, m)
	}
}
