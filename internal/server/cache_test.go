package server

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/ff"
	"repro/internal/matrix"
)

// factorFor builds a real Factored handle for cache tests.
func factorFor(t *testing.T, seed uint64, n int) *core.Factored[uint64] {
	t.Helper()
	f := ff.MustFp64(ff.P62)
	src := ff.NewSource(seed)
	a := matrix.Random[uint64](f, src, n, n, f.Modulus())
	s, err := core.NewSolver[uint64](f, core.Options{Seed: seed + 1, Multiplier: "classical"})
	if err != nil {
		t.Fatal(err)
	}
	fa, err := s.Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	return fa
}

// TestCacheLRUCapacity: the cache never exceeds its capacity and evicts in
// least-recently-used order.
func TestCacheLRUCapacity(t *testing.T) {
	evict0 := cacheEvictions.Value()
	c := NewCache[uint64](2)
	fa := factorFor(t, 1, 4)
	c.Put("a", fa)
	c.Put("b", fa)
	if _, ok := c.Get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing before eviction")
	}
	c.Put("c", fa)
	if c.Len() != 2 {
		t.Fatalf("capacity 2 cache holds %d entries", c.Len())
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction although it was least recently used")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a was evicted although it was recently used")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c missing right after insert")
	}
	if d := cacheEvictions.Value() - evict0; d != 1 {
		t.Fatalf("server.cache.evictions grew by %d, want 1", d)
	}
}

// TestCacheGetOrFactorCoalesces: concurrent misses on one key run the
// factor function exactly once and share the result.
func TestCacheGetOrFactorCoalesces(t *testing.T) {
	c := NewCache[uint64](4)
	fa := factorFor(t, 2, 4)
	var calls int32
	var mu sync.Mutex
	started := make(chan struct{})
	release := make(chan struct{})
	factor := func() (*core.Factored[uint64], error) {
		mu.Lock()
		calls++
		mu.Unlock()
		close(started)
		<-release
		return fa, nil
	}

	const waiters = 4
	var wg sync.WaitGroup
	results := make([]bool, waiters)
	go func() {
		// Leader.
		if _, hit, err := c.GetOrFactor(context.Background(), "k", factor); err != nil || hit {
			t.Errorf("leader: hit=%v err=%v", hit, err)
		}
	}()
	<-started
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, hit, err := c.GetOrFactor(context.Background(), "k", func() (*core.Factored[uint64], error) {
				t.Error("follower ran factor despite an in-flight leader")
				return fa, nil
			})
			if err != nil {
				t.Errorf("follower %d: %v", i, err)
				return
			}
			results[i] = hit && got == fa
		}(i)
	}
	close(release)
	wg.Wait()
	for i, ok := range results {
		if !ok {
			t.Fatalf("follower %d did not share the leader's factorization", i)
		}
	}
	if calls != 1 {
		t.Fatalf("factor ran %d times, want 1", calls)
	}
}

// TestCacheFailedFactorNotCached: an error result must not poison the key.
func TestCacheFailedFactorNotCached(t *testing.T) {
	c := NewCache[uint64](4)
	fa := factorFor(t, 3, 4)
	if _, _, err := c.GetOrFactor(context.Background(), "k", func() (*core.Factored[uint64], error) {
		return nil, fmt.Errorf("unlucky randomness")
	}); err == nil {
		t.Fatal("expected the leader's error")
	}
	got, hit, err := c.GetOrFactor(context.Background(), "k", func() (*core.Factored[uint64], error) {
		return fa, nil
	})
	if err != nil || hit || got != fa {
		t.Fatalf("retry after failure: got=%v hit=%v err=%v", got, hit, err)
	}
}

// TestEvictionRefactorsEndToEnd drives eviction through the HTTP surface:
// with a capacity-1 cache, solving A, then B (evicting A), then A again
// must re-factor A — visible as a cache miss AND a fresh batch/krylov
// span.
func TestEvictionRefactorsEndToEnd(t *testing.T) {
	o := withObserver(t)
	s := newTestServer(t, func(c *Config) { c.CacheSize = 1 })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &Client{BaseURL: ts.URL}

	_, _, reqA := testSystem(t, 10, 10)
	_, _, reqB := testSystem(t, 11, 10)
	ctx := context.Background()

	if resp, err := client.Solve(ctx, reqA); err != nil || resp.Cache != "miss" {
		t.Fatalf("solve A: %v cache=%v", err, resp)
	}
	spans1 := krylovSpans(o)
	if resp, err := client.Solve(ctx, reqB); err != nil || resp.Cache != "miss" {
		t.Fatalf("solve B: %v cache=%v", err, resp)
	}
	if s.cache.Len() != 1 {
		t.Fatalf("capacity-1 cache holds %d entries", s.cache.Len())
	}
	// A was evicted by B: solving A again is a miss and re-runs Krylov.
	resp, err := client.Solve(ctx, reqA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cache != "hit" {
		spans3 := krylovSpans(o)
		if spans3 <= spans1 {
			t.Fatalf("re-solve of evicted A did not re-emit a batch/krylov span (%d → %d)", spans1, spans3)
		}
	} else {
		t.Fatal("evicted matrix reported a cache hit")
	}
}
