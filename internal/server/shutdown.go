package server

import (
	"context"
	"errors"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// Process lifecycle shared by every long-running binary in the repo (kpd,
// kpsolve -serve, kpbench -serve): a signal-canceled context plus an HTTP
// serve loop that drains in-flight requests on shutdown instead of dying
// mid-response (a killed scrape used to truncate /metrics bodies; a killed
// solve wasted the whole Krylov phase).

// SignalContext returns a context canceled on SIGINT or SIGTERM. The stop
// function releases the signal registration; a second signal after
// cancellation kills the process via the default handler, so a wedged
// drain can still be interrupted by hand.
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
	// NotifyContext keeps the signal registration (and so keeps swallowing
	// signals) until stop is called; unregister as soon as the context is
	// canceled so the documented second-signal escape hatch actually works.
	go func() {
		<-ctx.Done()
		stop()
	}()
	return ctx, stop
}

// ServeUntil serves h on ln until ctx is canceled, then gracefully drains:
// the listener closes immediately (new connections are refused) while
// in-flight requests get up to grace to finish. It returns nil after a
// clean drain, the drain error if grace expired with requests still
// running (they are then hard-closed), or the serve error if the listener
// failed before ctx was done.
func ServeUntil(ctx context.Context, ln net.Listener, h http.Handler, grace time.Duration) error {
	srv := &http.Server{Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		srv.Close()
		return err
	}
	return nil
}
