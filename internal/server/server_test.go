package server

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/ff"
	"repro/internal/matrix"
	"repro/internal/obs"
)

// newTestServer builds a Server with small, deterministic test settings,
// overridable by tweak.
func newTestServer(t *testing.T, tweak func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		Multiplier:  "classical",
		Seed:        42,
		CacheSize:   8,
		MaxDeadline: 30 * time.Second,
		MaxDim:      256,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// testSystem generates a random (almost surely non-singular over F_P62)
// system in wire form plus its dense original for verification.
func testSystem(t *testing.T, seed uint64, n int) (ff.Fp64, *matrix.Dense[uint64], SolveRequest) {
	t.Helper()
	f := ff.MustFp64(ff.P62)
	src := ff.NewSource(seed)
	a := matrix.Random[uint64](f, src, n, n, f.Modulus())
	req := SolveRequest{P: ff.P62}
	req.A = make([][]uint64, n)
	for i := 0; i < n; i++ {
		req.A[i] = a.Row(i)
	}
	req.B = ff.SampleVec[uint64](f, src, n, f.Modulus())
	return f, a, req
}

// withObserver installs a fresh Observer (global state) for span counting.
func withObserver(t *testing.T) *obs.Observer {
	t.Helper()
	prev := obs.Active()
	o := obs.New(1 << 14)
	obs.SetActive(o)
	t.Cleanup(func() { obs.SetActive(prev) })
	return o
}

func krylovSpans(o *obs.Observer) int {
	return o.PhaseTotals()[obs.PhaseBatchKrylov].Count
}

// TestSolveAndCacheHit is the core economics check: the first solve of a
// matrix factors (batch/krylov runs), the second solve of the same matrix
// hits the cache and runs no Krylov phase at all.
func TestSolveAndCacheHit(t *testing.T) {
	o := withObserver(t)
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &Client{BaseURL: ts.URL}

	f, a, req := testSystem(t, 1, 16)
	hits0 := cacheHits.Value()

	resp, err := client.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cache != "miss" {
		t.Fatalf("first solve: cache = %q, want miss", resp.Cache)
	}
	if !ff.VecEqual[uint64](f, a.MulVec(f, resp.X), req.B) {
		t.Fatal("first solve: A·x ≠ b")
	}
	if resp.Digest != matrix.DigestString[uint64](f, a) {
		t.Fatal("response digest disagrees with the canonical matrix digest")
	}
	spansAfterMiss := krylovSpans(o)
	if spansAfterMiss == 0 {
		t.Fatal("first solve recorded no batch/krylov span — did it factor at all?")
	}

	// Fresh RHS, same matrix: must hit, must not re-run Krylov.
	req.B = ff.SampleVec[uint64](f, ff.NewSource(99), 16, f.Modulus())
	resp2, err := client.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Cache != "hit" {
		t.Fatalf("second solve: cache = %q, want hit", resp2.Cache)
	}
	if !ff.VecEqual[uint64](f, a.MulVec(f, resp2.X), req.B) {
		t.Fatal("second solve: A·x ≠ b")
	}
	if got := krylovSpans(o); got != spansAfterMiss {
		t.Fatalf("cache hit re-ran the Krylov phase: %d spans, want %d", got, spansAfterMiss)
	}
	if d := cacheHits.Value() - hits0; d != 1 {
		t.Fatalf("server.cache.hits grew by %d, want 1", d)
	}
}

func TestSolveBatchEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &Client{BaseURL: ts.URL}

	f, a, req := testSystem(t, 2, 12)
	req.B = nil
	src := ff.NewSource(7)
	k := 3
	req.Bs = make([][]uint64, k)
	for j := range req.Bs {
		req.Bs[j] = ff.SampleVec[uint64](f, src, 12, f.Modulus())
	}
	resp, err := client.SolveBatch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Xs) != k {
		t.Fatalf("got %d solutions, want %d", len(resp.Xs), k)
	}
	for j, x := range resp.Xs {
		if !ff.VecEqual[uint64](f, a.MulVec(f, x), req.Bs[j]) {
			t.Fatalf("column %d: A·x ≠ b", j)
		}
	}
}

// TestFactorWarmsCache: /v1/factor then /v1/solve on the same matrix is a
// hit — the warming pattern a client with known upcoming traffic uses.
func TestFactorWarmsCache(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &Client{BaseURL: ts.URL}

	_, _, req := testSystem(t, 3, 10)
	resp, err := client.Factor(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cache != "miss" {
		t.Fatalf("factor: cache = %q, want miss", resp.Cache)
	}
	resp2, err := client.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Cache != "hit" {
		t.Fatalf("solve after factor: cache = %q, want hit", resp2.Cache)
	}
}

// TestBackpressure429 wedges the single execution slot and fills the
// queue, then checks the next request is rejected with 429 immediately —
// and that the wedged requests still complete once released (no deadlock).
func TestBackpressure429(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.MaxConcurrent = 1
		c.MaxQueue = 1
	})
	gate := make(chan struct{})
	var wedged sync.WaitGroup
	wedged.Add(1)
	var once sync.Once
	s.testHookInSlot = func() {
		once.Do(wedged.Done) // signal: slot is held
		<-gate
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &Client{BaseURL: ts.URL}
	_, _, req := testSystem(t, 4, 8)

	results := make(chan error, 2)
	go func() {
		_, err := client.Solve(context.Background(), req)
		results <- err
	}()
	wedged.Wait() // slot held; queue empty

	go func() {
		_, err := client.Solve(context.Background(), req)
		results <- err
	}()
	// Wait until the second request occupies the queue.
	for i := 0; i < 500; i++ {
		if s.queued.Load() == 1 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if s.queued.Load() != 1 {
		t.Fatal("second request never queued")
	}

	// Slot busy + queue full: this one must bounce with 429 now.
	start := time.Now()
	_, err := client.Solve(context.Background(), req)
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.Status != 429 {
		t.Fatalf("overflow request: got %v, want APIError 429", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("429 was not immediate")
	}

	close(gate) // drain the wedge
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("wedged request %d failed after release: %v", i, err)
		}
	}
}

// TestQueuedRequestHonorsDeadline: a request stuck in the queue past its
// deadline leaves with 503 instead of waiting forever.
func TestQueuedRequestHonorsDeadline(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.MaxConcurrent = 1
		c.MaxQueue = 4
	})
	gate := make(chan struct{})
	var wedged sync.WaitGroup
	wedged.Add(1)
	var once sync.Once
	s.testHookInSlot = func() {
		once.Do(wedged.Done)
		<-gate
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &Client{BaseURL: ts.URL}
	_, _, req := testSystem(t, 5, 8)

	done := make(chan error, 1)
	go func() {
		_, err := client.Solve(context.Background(), req)
		done <- err
	}()
	wedged.Wait()

	req2 := req
	req2.DeadlineMS = 50
	_, err := client.Solve(context.Background(), req2)
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.Status != 503 {
		t.Fatalf("queued-past-deadline request: got %v, want APIError 503", err)
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestBadRequests(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxDim = 16 })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &Client{BaseURL: ts.URL}
	ctx := context.Background()

	cases := []struct {
		name string
		req  SolveRequest
	}{
		{"empty", SolveRequest{P: ff.P62}},
		{"ragged", SolveRequest{P: ff.P62, A: [][]uint64{{1, 2}, {3}}, B: []uint64{1, 2}}},
		{"rhs mismatch", SolveRequest{P: ff.P62, A: [][]uint64{{1, 0}, {0, 1}}, B: []uint64{1}}},
		{"composite modulus", SolveRequest{P: 15, A: [][]uint64{{1, 0}, {0, 1}}, B: []uint64{1, 2}}},
		{"too large", SolveRequest{P: ff.P62, A: make([][]uint64, 17), B: make([]uint64, 17)}},
		{"char too small", SolveRequest{P: 2, A: [][]uint64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}, B: []uint64{1, 1, 1}}},
	}
	for _, tc := range cases {
		_, err := client.Solve(ctx, tc.req)
		apiErr, ok := err.(*APIError)
		if !ok || apiErr.Status != 400 {
			t.Errorf("%s: got %v, want APIError 400", tc.name, err)
		}
	}
}

// TestSingularMatrix422: a singular input exhausts the Las Vegas retries
// and surfaces as 422 — a property of the request, not a server error.
func TestSingularMatrix422(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.Retries = 2 })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &Client{BaseURL: ts.URL}

	// Rank-1 matrix: row i = (i+1)·(1, 2, 3, 4).
	n := 4
	req := SolveRequest{P: ff.P62, A: make([][]uint64, n), B: []uint64{1, 2, 3, 4}}
	for i := 0; i < n; i++ {
		req.A[i] = make([]uint64, n)
		for j := 0; j < n; j++ {
			req.A[i][j] = uint64((i + 1) * (j + 1))
		}
	}
	_, err := client.Solve(context.Background(), req)
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.Status != 422 {
		t.Fatalf("singular solve: got %v, want APIError 422", err)
	}
}

// TestConcurrentMixedLoad is the -race workhorse: many goroutines, a mix
// of cache hits (shared kp.Factorization) and misses (per-request
// ff.Source splits), all results verified. Before the PR's bugfixes this
// pattern raced on both the shared power ladder and the shared random
// stream.
func TestConcurrentMixedLoad(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.MaxConcurrent = 4
		c.MaxQueue = 64
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &Client{BaseURL: ts.URL}

	const distinct = 3
	systems := make([]struct {
		f   ff.Fp64
		a   *matrix.Dense[uint64]
		req SolveRequest
	}, distinct)
	for i := range systems {
		systems[i].f, systems[i].a, systems[i].req = testSystem(t, uint64(100+i), 12)
	}

	const goroutines = 8
	const perG = 6
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := ff.NewSource(uint64(500 + g))
			for i := 0; i < perG; i++ {
				sys := systems[(g+i)%distinct]
				req := sys.req
				req.B = ff.SampleVec[uint64](sys.f, src, 12, sys.f.Modulus())
				resp, err := client.Solve(context.Background(), req)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if !ff.VecEqual[uint64](sys.f, sys.a.MulVec(sys.f, resp.X), req.B) {
					t.Errorf("goroutine %d: A·x ≠ b under concurrent load", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestMetricsEndpointServesServerFamilies: the request/cache metrics are
// visible on the same listener's /metrics in Prometheus form.
func TestMetricsEndpointServesServerFamilies(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &Client{BaseURL: ts.URL}
	_, _, req := testSystem(t, 6, 8)
	if _, err := client.Solve(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	hresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	buf := make([]byte, 1<<20)
	n, _ := hresp.Body.Read(buf)
	for n < len(buf) {
		m, err := hresp.Body.Read(buf[n:])
		n += m
		if err != nil {
			break
		}
	}
	text := string(buf[:n])
	for _, want := range []string{
		"kp_server_requests_total",
		"kp_server_cache_hits_total",
		"kp_server_cache_misses_total",
		"kp_server_inflight",
		"kp_server_queue_depth",
		"kp_server_request_ns_bucket",
	} {
		if !contains(text, want) {
			t.Errorf("/metrics is missing %s", want)
		}
	}
}

func contains(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}

// TestPrecondModeCacheKeying is the no-collision check for the PR's cache
// contract: dense- and implicit-preconditioned factorizations of the SAME
// matrix are distinct cache entries — the second mode misses instead of
// picking up the first mode's Factored — while repeats within a mode hit.
func TestPrecondModeCacheKeying(t *testing.T) {
	s := newTestServer(t, nil) // server default: dense
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &Client{BaseURL: ts.URL}

	// NTT-friendly field, so the implicit route runs its cached transforms.
	f := ff.MustFp64(ff.PNTT62)
	src := ff.NewSource(17)
	n := 12
	a := matrix.Random[uint64](f, src, n, n, f.Modulus())
	req := SolveRequest{P: ff.PNTT62, A: make([][]uint64, n)}
	for i := 0; i < n; i++ {
		req.A[i] = a.Row(i)
	}
	req.B = ff.SampleVec[uint64](f, src, n, f.Modulus())

	req.Precond = "implicit"
	resp, err := client.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cache != "miss" || resp.Precond != "implicit" {
		t.Fatalf("implicit solve: cache=%q precond=%q, want miss/implicit", resp.Cache, resp.Precond)
	}
	if !ff.VecEqual[uint64](f, a.MulVec(f, resp.X), req.B) {
		t.Fatal("implicit solve: A·x ≠ b")
	}

	// Same matrix, dense mode: must NOT alias the implicit entry.
	req.Precond = "dense"
	resp2, err := client.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Cache != "miss" || resp2.Precond != "dense" {
		t.Fatalf("dense solve of cached-implicit matrix: cache=%q precond=%q, want miss/dense", resp2.Cache, resp2.Precond)
	}
	if !ff.VecEqual[uint64](f, a.MulVec(f, resp2.X), req.B) {
		t.Fatal("dense solve: A·x ≠ b")
	}
	if resp.Digest != resp2.Digest {
		t.Fatal("modes disagree on the canonical matrix digest")
	}
	if got := s.cache.Len(); got != 2 {
		t.Fatalf("cache holds %d entries for one matrix in two modes, want 2", got)
	}

	// Repeats within each mode hit their own entry.
	for _, mode := range []string{"implicit", "dense", ""} {
		req.Precond = mode
		resp, err := client.Solve(context.Background(), req)
		if err != nil {
			t.Fatalf("mode %q repeat: %v", mode, err)
		}
		if resp.Cache != "hit" {
			t.Fatalf("mode %q repeat: cache=%q, want hit", mode, resp.Cache)
		}
	}

	// An unknown mode is a 400, before any math runs.
	req.Precond = "sideways"
	if _, err := client.Solve(context.Background(), req); err == nil {
		t.Fatal("unknown precond mode accepted")
	} else if apiErr, ok := err.(*APIError); !ok || apiErr.Status != 400 {
		t.Fatalf("unknown precond mode: got %v, want 400", err)
	}
}

// TestServerDefaultPrecondImplicit: a server configured with
// PrecondMode "implicit" applies it to requests that don't choose, and a
// bogus configured mode fails construction.
func TestServerDefaultPrecondImplicit(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.PrecondMode = "implicit" })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &Client{BaseURL: ts.URL}

	f, a, req := testSystem(t, 23, 10)
	resp, err := client.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Precond != "implicit" {
		t.Fatalf("default-mode solve ran precond=%q, want implicit", resp.Precond)
	}
	if !ff.VecEqual[uint64](f, a.MulVec(f, resp.X), req.B) {
		t.Fatal("A·x ≠ b under the implicit server default")
	}

	if _, err := New(Config{PrecondMode: "upside-down"}); err == nil {
		t.Fatal("New accepted an unknown PrecondMode")
	}
}
