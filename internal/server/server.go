// Package server is the kpd networked solve service: an HTTP+JSON front
// end over core.Solver with a digest-keyed LRU cache of factorizations,
// bounded-queue admission control with backpressure, per-request deadlines
// riding kp.Params.Ctx cancellation, and request-level telemetry in the
// obs registry (scrapeable at /metrics beside the solve endpoints).
//
// Endpoints:
//
//	POST /v1/solve        {"p":…,"a":[[…]],"b":[…]}        → {"x":[…],…}
//	POST /v1/solve_batch  {"p":…,"a":[[…]],"bs":[[…],…]}   → {"xs":[[…],…],…}
//	POST /v1/factor       {"p":…,"a":[[…]]}                → {"digest":…,…}
//	GET  /metrics /snapshot /healthz                        (obs.Handler)
//
// /v1/solve additionally accepts "ring": "zz" or "qq" with string-valued
// entries ("az"/"bz"), solving exactly over ℤ/ℚ through the RNS/CRT
// multi-modulus engine; the response then carries the exact rational
// solution ("xr") and the run's RingStats ("rns"). Per-(matrix, prime)
// factorizations are cached in the engine, so repeat ring requests on the
// same matrix skip every residue front end.
//
// Request bodies are strict: unknown top-level fields are rejected with
// 400 naming the offending field, so client typos (or version drift) fail
// loudly instead of being silently ignored.
//
// Every response carries the canonical matrix digest and whether the
// factorization came from the cache ("hit") or was computed ("miss");
// repeat matrices skip the Krylov phase entirely.
//
// Concurrency contract: one Server handles any number of concurrent
// requests. Each request draws its randomness from a private
// ff.Source.Split child (the root source is touched only under srcMu),
// and cached kp.Factorization handles are shared across requests, which
// is safe by kp's concurrency guarantee.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/big"
	"net/http"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/errs"
	"repro/internal/ff"
	"repro/internal/kp"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/rns"
)

// Request-level telemetry, exposed on /metrics with the rest of the obs
// registry ("server." is mangled to kp_server_…).
var (
	reqTotal    = obs.NewCounter("server.requests")
	reqRejected = obs.NewCounter("server.rejected")
	reqErrors   = obs.NewCounter("server.errors")
	inflight    = obs.NewGauge("server.inflight")
	queueDepth  = obs.NewGauge("server.queue.depth")

	queueWaitHist = obs.NewHistogram("server.queue.wait.ns")
	latSolve      = obs.NewLabeledHistogram("server.request.ns", "route", "solve")
	latBatch      = obs.NewLabeledHistogram("server.request.ns", "route", "solve_batch")
	latFactor     = obs.NewLabeledHistogram("server.request.ns", "route", "factor")
)

// Config configures a Server. The zero value of every field selects a
// sensible default (see New).
type Config struct {
	// Multiplier names the matrix-multiplication black box (matrix.Names);
	// "" selects "parallel" — a server exists to use the cores.
	Multiplier string
	// Seed seeds the root randomness source (0 = kp.DefaultSeed). Every
	// request runs on its own Split child, so concurrent load stays both
	// race-free and replayable in single-request order.
	Seed uint64
	// Retries bounds the Las Vegas attempts per factorization.
	Retries int
	// CacheSize bounds the factorization LRU (default 64 matrices).
	CacheSize int
	// MaxConcurrent bounds solves executing simultaneously (default
	// GOMAXPROCS). Beyond it, requests wait in the queue.
	MaxConcurrent int
	// MaxQueue bounds the waiting room; a request arriving with MaxQueue
	// requests already waiting is rejected with 429 (default
	// 4×MaxConcurrent).
	MaxQueue int
	// MaxDeadline caps the per-request deadline; a request asking for more
	// (or not asking) gets this much (default 30s).
	MaxDeadline time.Duration
	// MaxDim rejects systems larger than MaxDim×MaxDim with 400 before any
	// work happens (default 2048).
	MaxDim int
	// PrecondMode selects the default preconditioner route for requests
	// that do not ask for one: "dense" (materialized Ã = A·H·D, the
	// default) or "implicit" (black-box composition, no dense products
	// before the verify). Each request may override it via the "precond"
	// field; the factorization cache keys entries by digest AND mode, so
	// the two routes never alias each other's cached factorizations.
	PrecondMode string
	// Logger, when non-nil, receives one record per request (route, n,
	// cache, status, wall) and is forwarded to the solvers' per-attempt
	// logging.
	Logger *slog.Logger
}

// Server is the kpd solve service. Create with New, mount Handler.
type Server struct {
	cfg   Config
	cache *Cache[uint64]

	srcMu sync.Mutex
	src   *ff.Source

	precond kp.PrecondMode // default preconditioner mode (validated in New)

	solverMu sync.Mutex
	solvers  map[solverKey]*core.Solver[uint64] // one per (modulus, precond mode)

	sem    chan struct{} // execution slots (MaxConcurrent)
	queued atomic.Int64

	// intEng drives ring=zz/qq requests; it owns the per-(matrix, prime)
	// residue factorization cache, shared across requests.
	intEng *kp.IntEngine

	// testHookInSlot, when non-nil, runs while a request holds an
	// execution slot — tests use it to wedge the server and probe the
	// admission control deterministically.
	testHookInSlot func()
}

// New returns a Server for the config, resolving zero values to defaults.
func New(cfg Config) (*Server, error) {
	if cfg.Multiplier == "" {
		cfg.Multiplier = "parallel"
	}
	if _, err := matrix.ByName[uint64](cfg.Multiplier); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	if cfg.Seed == 0 {
		cfg.Seed = kp.DefaultSeed
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 64
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4 * cfg.MaxConcurrent
	}
	if cfg.MaxDeadline <= 0 {
		cfg.MaxDeadline = 30 * time.Second
	}
	if cfg.MaxDim <= 0 {
		cfg.MaxDim = 2048
	}
	precond, err := kp.ParsePrecondMode(cfg.PrecondMode)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	intMul, _ := matrix.ByName[uint64](cfg.Multiplier) // validated above
	return &Server{
		cfg:     cfg,
		precond: precond,
		cache:   NewCache[uint64](cfg.CacheSize),
		src:     ff.NewSource(cfg.Seed),
		solvers: make(map[solverKey]*core.Solver[uint64]),
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		intEng:  kp.NewIntEngine(intMul),
	}, nil
}

// solverKey identifies one configured solver: requests in different fields
// or different preconditioner modes must not share a core.Solver, because
// the mode is baked into the solver's kp.Params.
type solverKey struct {
	modulus uint64
	precond kp.PrecondMode
}

// Handler returns the service mux: the /v1 solve endpoints plus the obs
// telemetry endpoints (/metrics, /snapshot, /healthz).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", func(w http.ResponseWriter, r *http.Request) {
		s.handle(w, r, "solve", latSolve)
	})
	mux.HandleFunc("POST /v1/solve_batch", func(w http.ResponseWriter, r *http.Request) {
		s.handle(w, r, "solve_batch", latBatch)
	})
	mux.HandleFunc("POST /v1/factor", func(w http.ResponseWriter, r *http.Request) {
		s.handle(w, r, "factor", latFactor)
	})
	mux.Handle("/", obs.Handler())
	return mux
}

// SolveRequest is the JSON request body of every /v1 endpoint. Entries are
// integers reduced modulo P.
type SolveRequest struct {
	// P is the prime field modulus.
	P uint64 `json:"p"`
	// A is the n×n system matrix, row by row.
	A [][]uint64 `json:"a"`
	// B is the right-hand side for /v1/solve (length n).
	B []uint64 `json:"b,omitempty"`
	// Bs are the k right-hand sides for /v1/solve_batch (each length n).
	Bs [][]uint64 `json:"bs,omitempty"`
	// DeadlineMS bounds this request's wall time; 0 or anything above the
	// server's MaxDeadline is clamped to MaxDeadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Precond overrides the server's default preconditioner mode for this
	// request: "dense" or "implicit" ("" = server default). Factorizations
	// are cached per (matrix, mode), so switching modes on a repeat matrix
	// is a cache miss, not a wrong answer.
	Precond string `json:"precond,omitempty"`
	// Ring selects the coefficient ring: "fp" (default; word prime field
	// P), "zz" (integers) or "qq" (rationals). zz/qq are /v1/solve only and
	// take the system in Az/Bz instead of A/B.
	Ring string `json:"ring,omitempty"`
	// Az is the n×n matrix for ring zz/qq, entries as decimal strings
	// (ring qq also accepts "num/den").
	Az [][]string `json:"az,omitempty"`
	// Bz is the right-hand side for ring zz/qq (length n).
	Bz []string `json:"bz,omitempty"`
	// Verify overrides the ring engine's a-posteriori exact check: "on"
	// (default) or "off". Ignored for ring fp.
	Verify string `json:"verify,omitempty"`
}

// SolveResponse is the JSON response of every /v1 endpoint.
type SolveResponse struct {
	// X is the solution vector (/v1/solve).
	X []uint64 `json:"x,omitempty"`
	// Xs are the per-RHS solutions (/v1/solve_batch), Xs[i] solving
	// A·x = Bs[i].
	Xs [][]uint64 `json:"xs,omitempty"`
	// N is the system dimension.
	N int `json:"n"`
	// Digest is the canonical matrix digest. The factorization cache key
	// is this digest qualified by the preconditioner mode.
	Digest string `json:"digest"`
	// Precond is the preconditioner mode this request ran under.
	Precond string `json:"precond"`
	// Cache is "hit" when the factorization came from the cache, "miss"
	// when this request computed it.
	Cache string `json:"cache"`
	// ElapsedMS is the server-side wall time of the request.
	ElapsedMS float64 `json:"elapsed_ms"`
	// TraceID identifies the request in /debug/traces and the server log.
	TraceID string `json:"trace_id,omitempty"`
	// Ring echoes the coefficient ring the request ran over ("" = fp).
	Ring string `json:"ring,omitempty"`
	// Xr is the exact solution for ring zz/qq, one canonical rational
	// string ("num" or "num/den") per coordinate.
	Xr []string `json:"xr,omitempty"`
	// RNS reports the multi-modulus run (residue count, bad primes, cache
	// hits, phase times, parallel efficiency) for ring zz/qq.
	RNS *kp.RingStats `json:"rns,omitempty"`
}

// errorResponse is the JSON body of every non-2xx response. TraceID lets a
// failing client quote the exact request when reading /debug/traces or the
// server log.
type errorResponse struct {
	Error   string `json:"error"`
	TraceID string `json:"trace_id,omitempty"`
}

// handle runs the common request pipeline: trace identity, decode,
// validate, admission, deadline, digest/cache, route-specific math,
// respond, tail-sample.
func (s *Server) handle(w http.ResponseWriter, r *http.Request, route string, lat *obs.Histogram) {
	start := time.Now()
	reqTotal.Inc()

	// Request identity: continue the caller's trace when a valid W3C
	// traceparent came in (our root span becomes a child of the caller's
	// span), else mint a fresh trace. A malformed header must never fail
	// the request — it only loses the caller's linkage.
	var parentSpan obs.SpanID
	tc := obs.NewTraceContext()
	if parent, perr := obs.ParseTraceparent(r.Header.Get("traceparent")); perr == nil {
		parentSpan = parent.Span
		tc = parent.Child()
	}
	scope := obs.NewScope(tc)
	ctx := obs.ContextWithScope(r.Context(), scope)
	w.Header().Set("traceparent", tc.Traceparent())

	// pprof labels: a CPU or goroutine profile taken while this request
	// runs attributes its samples to the trace id and route.
	var (
		status int
		resp   *SolveResponse
		err    error
	)
	pprof.Do(ctx, pprof.Labels("trace_id", tc.Trace.String(), "route", route), func(ctx context.Context) {
		sp := obs.StartPhaseCtx(ctx, "request/"+route)
		status, resp, err = s.serve(r.WithContext(ctx), route)
		sp.End()
	})
	wall := time.Since(start)
	// The latency sample doubles as the bucket's OpenMetrics exemplar: a
	// p99 spike on a dashboard carries the trace id of a request that
	// caused it.
	lat.ObserveExemplar(wall.Nanoseconds(), tc.Trace.String())

	if err != nil {
		if status == http.StatusTooManyRequests {
			reqRejected.Inc()
		} else {
			reqErrors.Inc()
		}
		writeJSON(w, status, errorResponse{Error: err.Error(), TraceID: tc.Trace.String()})
	} else {
		status = http.StatusOK
		resp.TraceID = tc.Trace.String()
		resp.ElapsedMS = float64(wall.Microseconds()) / 1000
		writeJSON(w, http.StatusOK, resp)
	}
	s.logRequest(route, resp, status, start, tc, err)
	s.recordTrace(route, resp, status, start, wall, tc, parentSpan, scope, err)
	// A request over the slow threshold fires a triggered profile capture
	// tagged with the same trace id the trace store just retained, so
	// /debug/traces and /debug/profiles cross-link for the post-mortem.
	if ts := obs.ActiveTraceStore(); ts != nil && wall >= ts.Config().SlowThreshold {
		obs.TriggerProfile(obs.TriggerSlowRequest, tc.Trace.String(),
			fmt.Sprintf("route=%s wall=%s", route, wall))
	}
}

// recordTrace submits the finished request to the tail-sampling trace
// store, when one is installed; the store decides retention (slow, errored,
// unlucky, or background sample).
func (s *Server) recordTrace(route string, resp *SolveResponse, status int, start time.Time, wall time.Duration, tc obs.TraceContext, parentSpan obs.SpanID, scope *obs.TraceScope, err error) {
	ts := obs.ActiveTraceStore()
	if ts == nil {
		return
	}
	rt := obs.RequestTrace{
		TraceID:      tc.Trace.String(),
		SpanID:       tc.Span.String(),
		ParentSpanID: parentSpan.String(),
		Route:        route,
		Status:       status,
		Attempts:     scope.Attempts(),
		Start:        start,
		Wall:         wall,
		QueueWait:    scope.QueueWait(),
		Spans:        scope.Spans(),
		SpansDropped: scope.SpansDropped(),
	}
	if resp != nil {
		rt.N = resp.N
		rt.Cache = resp.Cache
	}
	if err != nil {
		rt.Error = err.Error()
	}
	ts.Record(rt)
}

// serve decodes and executes one request, returning the HTTP status and
// either a response or an error.
func (s *Server) serve(r *http.Request, route string) (int, *SolveResponse, error) {
	var req SolveRequest
	// Bound the body by what a MaxDim system can legitimately need
	// (~20 bytes per decimal entry) so a hostile body cannot balloon memory
	// before validation sees the dimensions.
	limit := int64(s.cfg.MaxDim)*int64(s.cfg.MaxDim)*24 + 1<<20
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, limit))
	// Strict body: a typo'd or unsupported top-level field is a client bug
	// the server must name, not silently ignore.
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return http.StatusBadRequest, nil, fmt.Errorf("decode request: %w", err)
	}

	// Preconditioner mode: per-request override, else the server default.
	var err error
	precond := s.precond
	if req.Precond != "" {
		if precond, err = kp.ParsePrecondMode(req.Precond); err != nil {
			return http.StatusBadRequest, nil, err
		}
	}

	switch req.Ring {
	case "", "fp":
	case "zz", "qq":
		return s.serveRing(r, route, &req, precond)
	default:
		return http.StatusBadRequest, nil, fmt.Errorf("unknown ring %q (want \"fp\", \"zz\" or \"qq\")", req.Ring)
	}

	f, a, err := s.buildSystem(&req)
	if err != nil {
		return http.StatusBadRequest, nil, err
	}
	n := a.Rows

	// Per-request deadline, clamped to the server cap, cancels the Las
	// Vegas drivers cooperatively via kp.Params.Ctx (the request context
	// also dies when the client disconnects or the server drains).
	deadline := s.cfg.MaxDeadline
	if req.DeadlineMS > 0 && time.Duration(req.DeadlineMS)*time.Millisecond < deadline {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	// Admission: a free execution slot, or a bounded wait in the queue, or
	// 429. Backpressure bounds memory and keeps latency honest — beyond
	// MaxQueue waiting solves, a fast failure beats a doomed wait.
	release, status, err := s.acquire(ctx)
	if err != nil {
		return status, nil, err
	}
	defer release()
	if s.testHookInSlot != nil {
		s.testHookInSlot()
	}

	// Factorization via the digest-keyed cache: repeat matrices skip the
	// Krylov phase and go straight to the backsolve. The key qualifies the
	// matrix digest with the preconditioner mode — a dense-preconditioned
	// Factored and an implicit one for the same matrix hold different
	// internal state (materialized Ã vs black-box composition) and must
	// never collide.
	digest := matrix.DigestString[uint64](f, a)
	cacheKey := digest + "|precond=" + string(precond)
	fa, hit, err := s.cache.GetOrFactor(ctx, cacheKey, func() (*core.Factored[uint64], error) {
		solver, err := s.solverFor(f, precond)
		if err != nil {
			return nil, err
		}
		// Nested pprof label: profile samples inside the expensive
		// cache-miss factorization additionally carry phase=factor.
		var (
			fa   *core.Factored[uint64]
			ferr error
		)
		pprof.Do(ctx, pprof.Labels("phase", "factor"), func(ctx context.Context) {
			fa, ferr = solver.WithSource(s.splitSource()).FactorCtx(ctx, a)
		})
		return fa, ferr
	})
	if err != nil {
		return errStatus(err), nil, err
	}
	resp := &SolveResponse{N: n, Digest: digest, Precond: string(precond), Cache: cacheLabel(hit)}

	switch route {
	case "factor":
		return http.StatusOK, resp, nil
	case "solve":
		x, err := fa.SolveCtx(ctx, req.B)
		if err != nil {
			return errStatus(err), nil, err
		}
		resp.X = x
		return http.StatusOK, resp, nil
	case "solve_batch":
		bm := matrix.NewDense[uint64](f, n, len(req.Bs))
		for j, col := range req.Bs {
			for i, v := range col {
				bm.Set(i, j, v%f.Modulus())
			}
		}
		x, err := fa.InverseApplyCtx(ctx, bm)
		if err != nil {
			return errStatus(err), nil, err
		}
		xs := make([][]uint64, x.Cols)
		for j := range xs {
			xs[j] = x.Col(j)
		}
		resp.Xs = xs
		return http.StatusOK, resp, nil
	default:
		return http.StatusNotFound, nil, fmt.Errorf("unknown route %q", route)
	}
}

// serveRing executes a ring=zz/qq request: exact solve over ℤ/ℚ through
// the multi-modulus engine, under the same admission control and deadline
// regime as the field routes. Only /v1/solve supports exact rings.
func (s *Server) serveRing(r *http.Request, route string, req *SolveRequest, precond kp.PrecondMode) (int, *SolveResponse, error) {
	if route != "solve" {
		return http.StatusBadRequest, nil, fmt.Errorf("ring %q is supported on /v1/solve only, not /v1/%s: %w", req.Ring, route, kp.ErrBadShape)
	}
	if len(req.A) > 0 || len(req.B) > 0 || len(req.Bs) > 0 || req.P != 0 {
		return http.StatusBadRequest, nil, fmt.Errorf("ring %q takes the system in \"az\"/\"bz\"; \"p\"/\"a\"/\"b\"/\"bs\" do not apply: %w", req.Ring, kp.ErrBadShape)
	}
	verify, err := rns.ParseVerifyMode(req.Verify)
	if err != nil {
		return http.StatusBadRequest, nil, err
	}
	n := len(req.Az)
	if n == 0 {
		return http.StatusBadRequest, nil, fmt.Errorf("empty system: %w", kp.ErrBadShape)
	}
	if n > s.cfg.MaxDim {
		return http.StatusBadRequest, nil, fmt.Errorf("dimension %d exceeds the server limit %d: %w", n, s.cfg.MaxDim, kp.ErrBadShape)
	}
	if len(req.Bz) != n {
		return http.StatusBadRequest, nil, fmt.Errorf("right-hand side has %d entries, want %d: %w", len(req.Bz), n, kp.ErrBadShape)
	}

	deadline := s.cfg.MaxDeadline
	if req.DeadlineMS > 0 && time.Duration(req.DeadlineMS)*time.Millisecond < deadline {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()
	release, status, err := s.acquire(ctx)
	if err != nil {
		return status, nil, err
	}
	defer release()
	if s.testHookInSlot != nil {
		s.testHookInSlot()
	}

	rp := rns.Params{Verify: verify, Workers: s.cfg.MaxConcurrent}
	kpp := kp.Params{Src: s.splitSource(), Retries: s.cfg.Retries, Ctx: ctx, Logger: s.cfg.Logger, Precond: precond}
	var (
		x     *rns.RatVec
		stats *kp.RingStats
	)
	switch req.Ring {
	case "zz":
		a, b, berr := buildIntSystem(req.Az, req.Bz)
		if berr != nil {
			return http.StatusBadRequest, nil, berr
		}
		resp := &SolveResponse{N: n, Ring: req.Ring, Precond: string(precond), Digest: a.Digest()}
		x, stats, err = s.intEng.Solve(ctx, a, b, rp, kpp)
		if err != nil {
			return errStatus(err), nil, err
		}
		return ringOK(resp, x, stats)
	default: // "qq"
		a, b, berr := buildRatSystem(req.Az, req.Bz)
		if berr != nil {
			return http.StatusBadRequest, nil, berr
		}
		ai, bi, cerr := rns.ClearDenominators(a, b)
		if cerr != nil {
			return http.StatusBadRequest, nil, cerr
		}
		resp := &SolveResponse{N: n, Ring: req.Ring, Precond: string(precond), Digest: ai.Digest()}
		x, stats, err = s.intEng.Solve(ctx, ai, bi, rp, kpp)
		if err != nil {
			return errStatus(err), nil, err
		}
		return ringOK(resp, x, stats)
	}
}

// ringOK fills the ring response: canonical rational strings plus the
// engine stats, with the cache label summarizing the residue lookups.
func ringOK(resp *SolveResponse, x *rns.RatVec, stats *kp.RingStats) (int, *SolveResponse, error) {
	xr := make([]string, x.Len())
	for i := range xr {
		xr[i] = x.Rat(i).RatString()
	}
	resp.Xr = xr
	resp.RNS = stats
	resp.Cache = cacheLabel(stats.CacheMisses == 0 && stats.CacheHits > 0)
	return http.StatusOK, resp, nil
}

// buildIntSystem parses decimal-string entries into the ℤ system.
func buildIntSystem(az [][]string, bz []string) (*rns.IntMat, []*big.Int, error) {
	n := len(az)
	a := rns.NewIntMat(n, n)
	for i, row := range az {
		if len(row) != n {
			return nil, nil, fmt.Errorf("row %d has %d entries, want %d: %w", i, len(row), n, kp.ErrBadShape)
		}
		for j, e := range row {
			v, ok := new(big.Int).SetString(strings.TrimSpace(e), 10)
			if !ok {
				return nil, nil, fmt.Errorf("a[%d][%d]: %q is not a decimal integer: %w", i, j, e, kp.ErrBadShape)
			}
			a.Set(i, j, v)
		}
	}
	b := make([]*big.Int, n)
	for i, e := range bz {
		v, ok := new(big.Int).SetString(strings.TrimSpace(e), 10)
		if !ok {
			return nil, nil, fmt.Errorf("b[%d]: %q is not a decimal integer: %w", i, e, kp.ErrBadShape)
		}
		b[i] = v
	}
	return a, b, nil
}

// buildRatSystem parses rational-string entries ("3", "-2/7", "1.5") into
// the ℚ system.
func buildRatSystem(az [][]string, bz []string) ([][]*big.Rat, []*big.Rat, error) {
	n := len(az)
	a := make([][]*big.Rat, n)
	for i, row := range az {
		if len(row) != n {
			return nil, nil, fmt.Errorf("row %d has %d entries, want %d: %w", i, len(row), n, kp.ErrBadShape)
		}
		a[i] = make([]*big.Rat, n)
		for j, e := range row {
			v, ok := new(big.Rat).SetString(strings.TrimSpace(e))
			if !ok {
				return nil, nil, fmt.Errorf("a[%d][%d]: %q is not a rational: %w", i, j, e, kp.ErrBadShape)
			}
			a[i][j] = v
		}
	}
	b := make([]*big.Rat, n)
	for i, e := range bz {
		v, ok := new(big.Rat).SetString(strings.TrimSpace(e))
		if !ok {
			return nil, nil, fmt.Errorf("b[%d]: %q is not a rational: %w", i, e, kp.ErrBadShape)
		}
		b[i] = v
	}
	return a, b, nil
}

// buildSystem validates the request shape and materializes the field and
// matrix. Entries are reduced modulo p, so clients may send any residue
// representative.
func (s *Server) buildSystem(req *SolveRequest) (ff.Fp64, *matrix.Dense[uint64], error) {
	var f ff.Fp64
	n := len(req.A)
	if n == 0 {
		return f, nil, fmt.Errorf("empty system: %w", kp.ErrBadShape)
	}
	if n > s.cfg.MaxDim {
		return f, nil, fmt.Errorf("dimension %d exceeds the server limit %d: %w", n, s.cfg.MaxDim, kp.ErrBadShape)
	}
	f, err := ff.NewFp64(req.P)
	if err != nil {
		return f, nil, err
	}
	a := matrix.NewDense[uint64](f, n, n)
	for i, row := range req.A {
		if len(row) != n {
			return f, nil, fmt.Errorf("row %d has %d entries, want %d: %w", i, len(row), n, kp.ErrBadShape)
		}
		for j, v := range row {
			a.Set(i, j, v%f.Modulus())
		}
	}
	if req.B != nil && len(req.B) != n {
		return f, nil, fmt.Errorf("right-hand side has %d entries, want %d: %w", len(req.B), n, kp.ErrBadShape)
	}
	for i := range req.B {
		req.B[i] %= f.Modulus()
	}
	for j, col := range req.Bs {
		if len(col) != n {
			return f, nil, fmt.Errorf("right-hand side %d has %d entries, want %d: %w", j, len(col), n, kp.ErrBadShape)
		}
	}
	return f, a, nil
}

// acquire claims an execution slot, waiting in the bounded queue when all
// slots are busy. It returns the release function, or a non-zero HTTP
// status with the rejection error.
func (s *Server) acquire(ctx context.Context) (func(), int, error) {
	select {
	case s.sem <- struct{}{}:
	default:
		// All slots busy: join the queue unless it is full.
		if n := s.queued.Add(1); n > int64(s.cfg.MaxQueue) {
			s.queued.Add(-1)
			// Queue saturation is the second profile trigger: a capture
			// taken while the server is wedged shows what the executing
			// requests are doing, which the bounced request cannot.
			obs.TriggerProfile(obs.TriggerQueueSaturation,
				obs.TraceFromContext(ctx).Trace.String(),
				fmt.Sprintf("queue full: %d executing, %d queued", s.cfg.MaxConcurrent, s.cfg.MaxQueue))
			return nil, http.StatusTooManyRequests,
				fmt.Errorf("server at capacity (%d executing, %d queued); retry later", s.cfg.MaxConcurrent, s.cfg.MaxQueue)
		}
		queueDepth.Set(s.queued.Load())
		// The wait is a span on the request's trace (queue/wait) and an
		// annotation on its scope, so the tail sampler can show where a
		// slow request's time went before any math ran.
		sp := obs.StartPhaseCtx(ctx, "queue/wait")
		sc := obs.ScopeFromContext(ctx)
		wait := time.Now()
		select {
		case s.sem <- struct{}{}:
			s.queued.Add(-1)
			queueDepth.Set(s.queued.Load())
			d := time.Since(wait)
			queueWaitHist.Observe(d.Nanoseconds())
			sc.SetQueueWait(d)
			sp.End()
		case <-ctx.Done():
			s.queued.Add(-1)
			queueDepth.Set(s.queued.Load())
			sc.SetQueueWait(time.Since(wait))
			sp.End()
			return nil, http.StatusServiceUnavailable, fmt.Errorf("canceled while queued: %w", ctx.Err())
		}
	}
	inflight.Add(1)
	return func() {
		inflight.Add(-1)
		<-s.sem
	}, 0, nil
}

// solverFor returns (creating on first use) the solver for f's modulus and
// the given preconditioner mode.
func (s *Server) solverFor(f ff.Fp64, precond kp.PrecondMode) (*core.Solver[uint64], error) {
	key := solverKey{modulus: f.Modulus(), precond: precond}
	s.solverMu.Lock()
	defer s.solverMu.Unlock()
	if sv, ok := s.solvers[key]; ok {
		return sv, nil
	}
	sv, err := core.NewSolver[uint64](f, core.Options{
		Seed:        s.cfg.Seed,
		Multiplier:  s.cfg.Multiplier,
		Retries:     s.cfg.Retries,
		PrecondMode: string(precond),
		Logger:      s.cfg.Logger,
	})
	if err != nil {
		return nil, err
	}
	s.solvers[key] = sv
	return sv, nil
}

// splitSource derives one private random stream for a request. The root
// source is a mutable splitmix64 stream — the only place it is ever
// touched is here, under srcMu, so concurrent requests can never corrupt
// it (or each other's Las Vegas probability accounting).
func (s *Server) splitSource() *ff.Source {
	s.srcMu.Lock()
	defer s.srcMu.Unlock()
	return s.src.Split()
}

// errStatus maps the kp error taxonomy onto HTTP statuses.
func errStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	case errors.Is(err, kp.ErrBadShape), errors.Is(err, kp.ErrCharacteristicTooSmall):
		return http.StatusBadRequest
	case errors.Is(err, errs.ErrBoundTooSmall), errors.Is(err, errs.ErrReconstructFailed):
		// Undersized forced prime set / bound: a property of the request.
		return http.StatusUnprocessableEntity
	case errors.Is(err, kp.ErrSingular), errors.Is(err, kp.ErrInconsistent), errors.Is(err, kp.ErrRetriesExhausted):
		// Exhausted retries on a non-singular input have probability
		// ≈ (3n²/|S|)^retries ≈ 0, so this is virtually always "the matrix
		// is singular" — a property of the request, not the server.
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

func cacheLabel(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// writeJSON marshals into memory first (same discipline as the obs
// /snapshot fix: never stream-encode into the ResponseWriter, so a late
// encode error cannot corrupt a committed 200).
func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
}

// logRequest emits the per-request slog record when logging is configured.
// The trace attr cross-links the record to /debug/traces and to the per-
// attempt kp records carrying the same id.
func (s *Server) logRequest(route string, resp *SolveResponse, status int, start time.Time, tc obs.TraceContext, err error) {
	if s.cfg.Logger == nil {
		return
	}
	attrs := []any{
		slog.String("route", route),
		slog.Int("status", status),
		slog.Duration("wall", time.Since(start)),
		slog.String("trace", tc.Trace.String()),
	}
	if resp != nil {
		attrs = append(attrs, slog.Int("n", resp.N), slog.String("cache", resp.Cache))
	}
	if err != nil {
		attrs = append(attrs, slog.String("error", err.Error()))
		s.cfg.Logger.Error("kpd.request", attrs...)
		return
	}
	s.cfg.Logger.Info("kpd.request", attrs...)
}
