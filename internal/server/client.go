package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/obs"
)

// Client is a minimal typed client for the kpd /v1 endpoints, shared by
// cmd/kpdclient and the cmd/kpdload load driver.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the underlying client; nil selects a default with a generous
	// overall timeout (per-request deadlines ride the request body).
	HTTP *http.Client
}

// APIError is a non-2xx response from the server, carrying the HTTP status
// (429 = backpressure, 422 = singular input, 504 = deadline, …), the
// server's error text, and the request's trace id — quote it when reading
// the server's /debug/traces or log.
type APIError struct {
	Status  int
	Msg     string
	TraceID string
}

func (e *APIError) Error() string {
	if e.TraceID != "" {
		return fmt.Sprintf("kpd: %d: %s (trace %s)", e.Status, e.Msg, e.TraceID)
	}
	return fmt.Sprintf("kpd: %d: %s", e.Status, e.Msg)
}

// Solve posts req to /v1/solve.
func (c *Client) Solve(ctx context.Context, req SolveRequest) (*SolveResponse, error) {
	return c.post(ctx, "/v1/solve", req)
}

// SolveBatch posts req to /v1/solve_batch.
func (c *Client) SolveBatch(ctx context.Context, req SolveRequest) (*SolveResponse, error) {
	return c.post(ctx, "/v1/solve_batch", req)
}

// Factor posts req to /v1/factor, warming the server's factorization cache.
func (c *Client) Factor(ctx context.Context, req SolveRequest) (*SolveResponse, error) {
	return c.post(ctx, "/v1/factor", req)
}

func (c *Client) post(ctx context.Context, path string, req SolveRequest) (*SolveResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	// Propagate the request's trace identity: reuse a trace already on ctx
	// (a traced caller), else mint a fresh one per request, so every kpd
	// request is cross-linkable even from untraced tools.
	tc := obs.TraceFromContext(ctx)
	if tc.IsZero() {
		tc = obs.NewTraceContext()
	}
	hreq.Header.Set("traceparent", tc.Traceparent())
	hc := c.HTTP
	if hc == nil {
		hc = &http.Client{Timeout: 2 * time.Minute}
	}
	hresp, err := hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(hresp.Body, 1<<30))
	if err != nil {
		return nil, err
	}
	if hresp.StatusCode != http.StatusOK {
		var apiErr errorResponse
		if json.Unmarshal(raw, &apiErr) == nil && apiErr.Error != "" {
			return nil, &APIError{Status: hresp.StatusCode, Msg: apiErr.Error, TraceID: apiErr.TraceID}
		}
		return nil, &APIError{Status: hresp.StatusCode, Msg: string(raw), TraceID: tc.Trace.String()}
	}
	var resp SolveResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, fmt.Errorf("decode response: %w", err)
	}
	return &resp, nil
}
