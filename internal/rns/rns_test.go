package rns

import (
	"math/big"
	"strings"
	"testing"

	"repro/internal/ff"
)

// TestReduceModPaths: the int64 fast path and the big.Int slow path agree,
// including on negative entries and entries beyond the word size.
func TestReduceModPaths(t *testing.T) {
	p := uint64(ff.P62)
	huge := new(big.Int).Lsh(big.NewInt(1), 100)
	entries := []*big.Int{
		big.NewInt(0), big.NewInt(1), big.NewInt(-1),
		big.NewInt(1 << 62), big.NewInt(-(1 << 62)),
		huge, new(big.Int).Neg(huge),
	}
	got := make([]uint64, len(entries))
	ReduceVecMod(entries, p, got)
	tmp := new(big.Int)
	pb := new(big.Int).SetUint64(p)
	for i, e := range entries {
		want := tmp.Mod(e, pb).Uint64()
		if got[i] != want {
			t.Fatalf("entry %s: reduced to %d, want %d", e, got[i], want)
		}
		if got[i] >= p {
			t.Fatalf("entry %s: residue %d not canonical", e, got[i])
		}
	}
}

// TestHadamardBoundDominatesDet on a matrix with a known determinant.
func TestHadamardBoundDominatesDet(t *testing.T) {
	a := IntMatFromInt64([][]int64{
		{3, -1, 2},
		{0, 4, -5},
		{7, 1, 1},
	})
	// det = 3(4+5) − (−1)(0+35) + 2(0−28) = 27 + 35 − 56 = 6.
	bound := HadamardBound(a)
	if bound.Cmp(big.NewInt(6)) < 0 {
		t.Fatalf("Hadamard bound %s below |det| = 6", bound)
	}
	// SolveBound dominates the plain determinant bound.
	b := []*big.Int{big.NewInt(1), big.NewInt(-2), big.NewInt(3)}
	if SolveBound(a, b).Cmp(bound) < 0 {
		t.Fatal("SolveBound below HadamardBound")
	}
}

// TestIntMatDigest: content-addressed, entry-sensitive, representation-
// independent.
func TestIntMatDigest(t *testing.T) {
	a := IntMatFromInt64([][]int64{{1, 2}, {3, -4}})
	b := IntMatFromInt64([][]int64{{1, 2}, {3, -4}})
	if a.Digest() != b.Digest() {
		t.Fatal("equal matrices digest differently")
	}
	b.Set(1, 1, big.NewInt(4))
	if a.Digest() == b.Digest() {
		t.Fatal("entry flip did not change the digest")
	}
	// A big.Int built differently for the same value digests equal.
	c := NewIntMat(2, 2)
	c.Set(0, 0, big.NewInt(1))
	c.Set(0, 1, new(big.Int).SetUint64(2))
	c.Set(1, 0, new(big.Int).Sub(big.NewInt(10), big.NewInt(7)))
	c.Set(1, 1, big.NewInt(-4))
	if a.Digest() != c.Digest() {
		t.Fatal("same values, different construction: digests differ")
	}
}

// TestRatVecNormalize: lowest-terms invariants, including the all-zero
// vector and a negative denominator.
func TestRatVecNormalize(t *testing.T) {
	v := &RatVec{
		Num: []*big.Int{big.NewInt(-4), big.NewInt(6), big.NewInt(0)},
		Den: big.NewInt(-8),
	}
	v.Normalize()
	if v.Den.Cmp(big.NewInt(4)) != 0 {
		t.Fatalf("den = %s, want 4", v.Den)
	}
	for i, w := range []int64{2, -3, 0} {
		if v.Num[i].Cmp(big.NewInt(w)) != 0 {
			t.Fatalf("num[%d] = %s, want %d", i, v.Num[i], w)
		}
	}
	z := &RatVec{Num: []*big.Int{big.NewInt(0), big.NewInt(0)}, Den: big.NewInt(12)}
	z.Normalize()
	if z.Den.Cmp(big.NewInt(1)) != 0 || !z.IsInt() {
		t.Fatalf("zero vector normalized to den %s, want 1", z.Den)
	}
	if got := z.Rat(0).RatString(); got != "0" {
		t.Fatalf("Rat(0) = %s, want 0", got)
	}
}

// TestParseVerifyMode matches the PrecondMode parsing idiom: "" is the
// safe default, junk fails loudly.
func TestParseVerifyMode(t *testing.T) {
	if m, err := ParseVerifyMode(""); err != nil || m != VerifyOn {
		t.Fatalf(`ParseVerifyMode("") = %q, %v`, m, err)
	}
	if m, err := ParseVerifyMode("off"); err != nil || m != VerifyOff {
		t.Fatalf(`ParseVerifyMode("off") = %q, %v`, m, err)
	}
	if _, err := ParseVerifyMode("maybe"); err == nil || !strings.Contains(err.Error(), "maybe") {
		t.Fatalf("ParseVerifyMode(maybe) err = %v, want named-field error", err)
	}
}
