package rns

import (
	"fmt"
	"math/big"
)

// Rational reconstruction: the lattice step that turns a CRT residue back
// into the unique bounded rational it came from. Given u ≡ num·den⁻¹
// (mod M), the pairs (n, d) with n ≡ u·d (mod M) form a 2-dimensional
// lattice; the extended Euclidean remainder sequence on (M, u) walks its
// short vectors (this is exactly the computation a half-gcd accelerates —
// the remainders r_i and cofactors t_i satisfy r_i ≡ t_i·u (mod M), with
// |r_i| shrinking while |t_i| grows), and the first remainder ≤ numBound
// yields the answer. Uniqueness holds whenever M > 2·numBound·denBound,
// which is what PrimesFor certifies.

// Reconstruct returns (num, den) with num ≡ u·den (mod M), |num| ≤
// numBound, 0 < den ≤ denBound and gcd(num, den) = 1, or
// ErrReconstructFailed when no such pair exists. u must lie in [0, M).
func Reconstruct(u, m, numBound, denBound *big.Int) (*big.Int, *big.Int, error) {
	if u.Sign() < 0 || u.Cmp(m) >= 0 {
		return nil, nil, fmt.Errorf("rns: residue %s outside [0, M): %w", u, ErrReconstructFailed)
	}
	// Remainder sequence invariant: r = s·M + t·u (s untracked), so every
	// (r_i, t_i) is a lattice point: r_i ≡ t_i·u (mod M).
	r0, r1 := new(big.Int).Set(m), new(big.Int).Set(u)
	t0, t1 := new(big.Int), big.NewInt(1)
	q, tmp := new(big.Int), new(big.Int)
	for r1.Sign() != 0 && r1.Cmp(numBound) > 0 {
		q.Quo(r0, r1)
		// (r0, r1) ← (r1, r0 − q·r1); same rotation for t.
		tmp.Mul(q, r1)
		r0.Sub(r0, tmp)
		r0, r1 = r1, r0
		tmp.Mul(q, t1)
		t0.Sub(t0, tmp)
		t0, t1 = t1, t0
	}
	num := new(big.Int).Set(r1)
	den := new(big.Int).Set(t1)
	if den.Sign() < 0 {
		den.Neg(den)
		num.Neg(num)
	}
	if den.Sign() == 0 || den.Cmp(denBound) > 0 {
		return nil, nil, fmt.Errorf("rns: denominator %s exceeds bound %s: %w", den, denBound, ErrReconstructFailed)
	}
	// The unique bounded solution is coprime; a common factor means the
	// walk landed on a multiple — no bounded representative exists.
	if num.Sign() != 0 {
		g := new(big.Int).GCD(nil, nil, tmp.Abs(num), den)
		if g.Cmp(bigOne) != 0 {
			return nil, nil, fmt.Errorf("rns: gcd(num, den) = %s ≠ 1: %w", g, ErrReconstructFailed)
		}
	}
	return num, den, nil
}

// ReconstructVec reconstructs every coordinate of a CRT-combined solution
// vector against shared bounds and returns the lowest-common-denominator
// form. residues[i] ∈ [0, M) is x_i mod M.
func ReconstructVec(residues []*big.Int, m, numBound, denBound *big.Int) (*RatVec, error) {
	nums := make([]*big.Int, len(residues))
	dens := make([]*big.Int, len(residues))
	lcm := big.NewInt(1)
	tmp := new(big.Int)
	for i, u := range residues {
		n, d, err := Reconstruct(u, m, numBound, denBound)
		if err != nil {
			return nil, fmt.Errorf("coordinate %d: %w", i, err)
		}
		nums[i], dens[i] = n, d
		// lcm ← lcm·d / gcd(lcm, d)
		g := tmp.GCD(nil, nil, lcm, d)
		lcm.Mul(lcm, new(big.Int).Quo(d, g))
	}
	// Scale numerators onto the common denominator.
	for i := range nums {
		nums[i].Mul(nums[i], tmp.Quo(lcm, dens[i]))
	}
	v := &RatVec{Num: nums, Den: lcm}
	v.Normalize()
	return v, nil
}
