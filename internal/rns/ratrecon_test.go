package rns

import (
	"errors"
	"math/big"
	"testing"

	"repro/internal/ff"
)

// residueOf maps num/den into ℤ/M: u = num·den⁻¹ mod M.
func residueOf(t *testing.T, num, den, m *big.Int) *big.Int {
	t.Helper()
	inv := new(big.Int).ModInverse(new(big.Int).Mod(den, m), m)
	if inv == nil {
		t.Fatalf("den %s not invertible mod %s", den, m)
	}
	u := new(big.Int).Mul(new(big.Int).Mod(num, m), inv)
	return u.Mod(u, m)
}

// TestReconstructRoundTrip: random rationals inside the bound round-trip
// residue → (num, den) exactly, including negative numerators and integer
// (den = 1) cases.
func TestReconstructRoundTrip(t *testing.T) {
	primes, err := ff.GenerateNTTPrimes(62, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	basis := NewCRTBasis(primes)
	bound := big.NewInt(1 << 30)
	src := ff.NewSource(7)
	for i := 0; i < 200; i++ {
		num := big.NewInt(int64(src.Uint64n(1<<30)) - (1 << 29))
		den := big.NewInt(int64(src.Uint64n(1<<30)) + 1)
		g := new(big.Int).GCD(nil, nil, new(big.Int).Abs(num), den)
		if num.Sign() != 0 {
			num.Quo(num, g)
			den.Quo(den, g)
		} else {
			den.SetInt64(1)
		}
		u := residueOf(t, num, den, basis.M)
		gn, gd, err := Reconstruct(u, basis.M, bound, bound)
		if err != nil {
			t.Fatalf("round %d: %v (num=%s den=%s)", i, err, num, den)
		}
		if gn.Cmp(num) != 0 || gd.Cmp(den) != 0 {
			t.Fatalf("round %d: got %s/%s, want %s/%s", i, gn, gd, num, den)
		}
	}
}

// TestReconstructDenominatorAtBound: the extreme admissible pair — both
// numerator and denominator exactly at the bound — still reconstructs when
// M > 2·N·D, and the bound arithmetic (PrimesFor) certifies exactly that.
func TestReconstructDenominatorAtBound(t *testing.T) {
	bound := new(big.Int).Lsh(big.NewInt(1), 100) // 2^100
	count := PrimesFor(bound, 62)
	primes, err := ff.GenerateNTTPrimes(62, 20, count)
	if err != nil {
		t.Fatal(err)
	}
	basis := NewCRTBasis(primes)
	// num = −bound, den = bound−1 (coprime: bound is a power of two).
	num := new(big.Int).Neg(bound)
	den := new(big.Int).Sub(bound, big.NewInt(1))
	u := residueOf(t, num, den, basis.M)
	gn, gd, err := Reconstruct(u, basis.M, bound, bound)
	if err != nil {
		t.Fatal(err)
	}
	if gn.Cmp(num) != 0 || gd.Cmp(den) != 0 {
		t.Fatalf("got %s/%s, want %s/%s", gn, gd, num, den)
	}
}

// TestReconstructBoundTooSmall: a rational outside the stated bound is
// detected, not silently aliased.
func TestReconstructBoundTooSmall(t *testing.T) {
	primes, err := ff.GenerateNTTPrimes(62, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	basis := NewCRTBasis(primes)
	// A denominator far beyond the tiny stated bound.
	num := big.NewInt(123456789)
	den := big.NewInt(1<<40 + 1)
	u := residueOf(t, num, den, basis.M)
	small := big.NewInt(1000)
	if _, _, err := Reconstruct(u, basis.M, small, small); !errors.Is(err, ErrReconstructFailed) {
		t.Fatalf("err = %v, want ErrReconstructFailed", err)
	}
}

// TestReconstructVecCommonDenominator: per-coordinate reconstruction folds
// into the canonical lowest-common-denominator form.
func TestReconstructVecCommonDenominator(t *testing.T) {
	primes, err := ff.GenerateNTTPrimes(62, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	basis := NewCRTBasis(primes)
	// x = (1/2, −3/4, 5, 0) → common den 4, nums (2, −3, 20, 0).
	nums := []*big.Int{big.NewInt(1), big.NewInt(-3), big.NewInt(5), big.NewInt(0)}
	dens := []*big.Int{big.NewInt(2), big.NewInt(4), big.NewInt(1), big.NewInt(1)}
	res := make([]*big.Int, len(nums))
	for i := range nums {
		res[i] = residueOf(t, nums[i], dens[i], basis.M)
	}
	bound := big.NewInt(1 << 20)
	v, err := ReconstructVec(res, basis.M, bound, bound)
	if err != nil {
		t.Fatal(err)
	}
	if v.Den.Cmp(big.NewInt(4)) != 0 {
		t.Fatalf("common den = %s, want 4", v.Den)
	}
	want := []int64{2, -3, 20, 0}
	for i, w := range want {
		if v.Num[i].Cmp(big.NewInt(w)) != 0 {
			t.Fatalf("num[%d] = %s, want %d", i, v.Num[i], w)
		}
	}
	if v.IsInt() {
		t.Fatal("IsInt true for a fractional vector")
	}
}

// TestCRTBasisCombine: CRT agrees with direct residue arithmetic, and the
// symmetric reduction recovers negative integers.
func TestCRTBasisCombine(t *testing.T) {
	primes, err := ff.GenerateNTTPrimes(62, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	basis := NewCRTBasis(primes)
	want := big.NewInt(-987654321123456789)
	res := make([]uint64, len(primes))
	tmp := new(big.Int)
	for k, p := range primes {
		tmp.Mod(want, tmp.SetUint64(p))
		res[k] = tmp.Uint64()
	}
	x := basis.Combine(res)
	got := SymmetricReduce(x, basis.M)
	if got.Cmp(want) != 0 {
		t.Fatalf("CRT round trip = %s, want %s", got, want)
	}
}

// TestPrimesForCoversBound: the certified count always yields a modulus
// strictly beyond the 2·N·D uniqueness window.
func TestPrimesForCoversBound(t *testing.T) {
	for _, bits := range []int{40, 62} {
		bound := new(big.Int).Lsh(big.NewInt(1), 200)
		count := PrimesFor(bound, bits)
		primes, err := ff.GenerateNTTPrimes(bits, 10, count)
		if err != nil {
			t.Fatal(err)
		}
		m := big.NewInt(1)
		for _, p := range primes {
			m.Mul(m, new(big.Int).SetUint64(p))
		}
		need := new(big.Int).Mul(bound, bound)
		need.Lsh(need, 1)
		if m.Cmp(need) <= 0 {
			t.Fatalf("bits=%d: modulus %s does not exceed 2·bound² = %s", bits, m, need)
		}
	}
}

// FuzzReconstructRoundTrip round-trips arbitrary bounded rationals through
// residue formation and reconstruction — the fuzz analogue of the solve →
// reconstruct pipeline for a single coordinate.
func FuzzReconstructRoundTrip(f *testing.F) {
	f.Add(int64(1), int64(2))
	f.Add(int64(-3), int64(7))
	f.Add(int64(0), int64(1))
	f.Add(int64(1<<40), int64(1))
	f.Add(int64(-1<<40), int64(1<<40)-1)
	primes, err := ff.GenerateNTTPrimes(62, 20, 3)
	if err != nil {
		f.Fatal(err)
	}
	basis := NewCRTBasis(primes)
	bound := new(big.Int).Lsh(big.NewInt(1), 62)
	f.Fuzz(func(t *testing.T, rawNum, rawDen int64) {
		if rawDen == 0 {
			return
		}
		num := big.NewInt(rawNum)
		den := big.NewInt(rawDen)
		if den.Sign() < 0 {
			den.Neg(den)
			num.Neg(num)
		}
		if num.Sign() == 0 {
			den.SetInt64(1)
		} else {
			g := new(big.Int).GCD(nil, nil, new(big.Int).Abs(num), den)
			num.Quo(num, g)
			den.Quo(den, g)
		}
		inv := new(big.Int).ModInverse(new(big.Int).Mod(den, basis.M), basis.M)
		if inv == nil {
			return // den shares a factor with M; not a reachable solve case
		}
		u := new(big.Int).Mul(new(big.Int).Mod(num, basis.M), inv)
		u.Mod(u, basis.M)
		gn, gd, err := Reconstruct(u, basis.M, bound, bound)
		if err != nil {
			t.Fatalf("Reconstruct(%s/%s): %v", num, den, err)
		}
		if gn.Cmp(num) != 0 || gd.Cmp(den) != 0 {
			t.Fatalf("got %s/%s, want %s/%s", gn, gd, num, den)
		}
	})
}
