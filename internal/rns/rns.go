// Package rns is the number-theoretic substrate of exact solving over ℤ
// and ℚ: residue-number-system (RNS) parameters, integer/rational matrix
// and result types, certified Hadamard/Cramer prime-count bounds, Chinese
// remainder combination, and rational reconstruction (the half-gcd lattice
// step). It is pure bookkeeping — the residue solves themselves are driven
// by kp.IntEngine, which imports this package; rns imports only the field,
// matrix and error layers, so every layer above (kp, core, server, the
// CLIs) can share its types without cycles.
//
// The paper's abstract-field claim is what makes the whole scheme work:
// the same Theorem 4 code runs unchanged over every residue field F_p, so
// a characteristic-0 problem (§5: integer determinants, least squares over
// ℚ) becomes an embarrassingly parallel family of word-sized solves plus
// the reconstruction in this package.
package rns

import (
	"fmt"
	"math/big"

	"repro/internal/errs"
	"repro/internal/matrix"
)

// Error taxonomy (shared sentinels; errors.Is matches across layers).
var (
	// ErrBoundTooSmall reports a forced prime set too small for the answer.
	ErrBoundTooSmall = errs.ErrBoundTooSmall
	// ErrReconstructFailed reports a failed rational reconstruction.
	ErrReconstructFailed = errs.ErrReconstructFailed
	// ErrSingular reports a matrix singular over ℚ.
	ErrSingular = errs.ErrSingular
	// ErrBadShape reports mismatched dimensions.
	ErrBadShape = errs.ErrBadShape
)

// VerifyMode selects the a-posteriori exact check of a multi-modulus run.
type VerifyMode string

const (
	// VerifyOn (the default; "" resolves to it) checks the reconstructed
	// answer exactly: A·num = den·b over ℤ for solves, a fresh check-prime
	// residue comparison for determinants. The check upgrades the CRT
	// pipeline from "correct if the bound arithmetic is right" to
	// "verified", at the cost of one O(n²) big-integer pass (solve) or one
	// extra residue solve (det).
	VerifyOn VerifyMode = "on"
	// VerifyOff skips the check — for benchmarking the raw pipeline or
	// when the certified bound is trusted.
	VerifyOff VerifyMode = "off"
)

// ParseVerifyMode validates a mode string ("" selects VerifyOn).
func ParseVerifyMode(s string) (VerifyMode, error) {
	switch VerifyMode(s) {
	case "", VerifyOn:
		return VerifyOn, nil
	case VerifyOff:
		return VerifyOff, nil
	}
	return "", fmt.Errorf("rns: unknown verify mode %q (want %q or %q)", s, VerifyOn, VerifyOff)
}

// Params configures a multi-modulus run. The zero value is ready to use:
// the prime count is certified from the Hadamard/Cramer bound of the
// actual input, primes are 62-bit NTT-friendly, and verification is on.
type Params struct {
	// Primes, when positive, forces the residue count instead of deriving
	// it from Bound. A forced count too small for the answer surfaces as
	// ErrBoundTooSmall (the verification or reconstruction catches it);
	// the certified default cannot undershoot.
	Primes int
	// Bound, when non-nil, overrides the certified magnitude bound: the
	// engine promises only that answers with |numerator| and |denominator|
	// ≤ Bound reconstruct correctly. Nil derives the Hadamard/Cramer bound
	// from the input — always safe, sometimes pessimistic (more residues
	// than a lucky answer needs).
	Bound *big.Int
	// Verify selects the a-posteriori exact check ("" = VerifyOn).
	Verify VerifyMode
	// Workers bounds the residue solves running concurrently; 0 selects
	// GOMAXPROCS. Residue solves are fully independent, so this is the
	// embarrassingly-parallel axis of the engine.
	Workers int
	// PrimeBits is the residue prime size in bits (0 = 62, the largest the
	// Fp64 lazy-reduction kernels accept). Smaller primes mean more
	// residues for the same bound — only useful in tests that want to
	// exercise many residues cheaply.
	PrimeBits int
	// Log2n is the guaranteed two-adicity of the generated primes
	// (0 = 2^20); every residue field supports NTT sizes up to 2^Log2n, so
	// the implicit Hankel-preconditioner fast path is available per
	// residue.
	Log2n int
}

// Fill resolves the zero values of p to their defaults.
func (p Params) Fill() Params {
	if p.Verify == "" {
		p.Verify = VerifyOn
	}
	if p.PrimeBits == 0 {
		p.PrimeBits = 62
	}
	if p.Log2n == 0 {
		p.Log2n = 20
	}
	return p
}

// IntMat is a dense n×m matrix over ℤ. Entries are treated as immutable
// (shared, never written through) once the matrix is built.
type IntMat struct {
	Rows, Cols int
	Data       []*big.Int // row-major, len = Rows·Cols
}

// NewIntMat returns a zero rows×cols integer matrix.
func NewIntMat(rows, cols int) *IntMat {
	if rows < 0 || cols < 0 {
		panic("rns: negative dimension")
	}
	m := &IntMat{Rows: rows, Cols: cols, Data: make([]*big.Int, rows*cols)}
	for i := range m.Data {
		m.Data[i] = new(big.Int)
	}
	return m
}

// IntMatFromInt64 builds an IntMat from int64 rows (must be rectangular).
func IntMatFromInt64(rows [][]int64) *IntMat {
	r := len(rows)
	c := 0
	if r > 0 {
		c = len(rows[0])
	}
	m := &IntMat{Rows: r, Cols: c, Data: make([]*big.Int, 0, r*c)}
	for _, row := range rows {
		if len(row) != c {
			panic("rns: ragged rows")
		}
		for _, v := range row {
			m.Data = append(m.Data, big.NewInt(v))
		}
	}
	return m
}

// At returns the (i, j) entry.
func (m *IntMat) At(i, j int) *big.Int { return m.Data[i*m.Cols+j] }

// Set sets the (i, j) entry (the big.Int is stored, not copied).
func (m *IntMat) Set(i, j int, v *big.Int) { m.Data[i*m.Cols+j] = v }

// Digest returns the canonical content digest of the matrix — the ring-ℤ
// cache key (matrix.DigestIntsString).
func (m *IntMat) Digest() string {
	return matrix.DigestIntsString(m.Rows, m.Cols, m.Data)
}

// ReduceMod writes the residues of m's entries modulo p into dst (len
// Rows·Cols, row-major), as canonical representatives in [0, p). Entries
// that fit in an int64 take a division-free word path; only genuinely big
// entries pay a big.Int Mod.
func (m *IntMat) ReduceMod(p uint64, dst []uint64) {
	reduceSlice(m.Data, p, dst)
}

// ReduceVecMod is ReduceMod for a plain ℤ vector.
func ReduceVecMod(v []*big.Int, p uint64, dst []uint64) {
	reduceSlice(v, p, dst)
}

func reduceSlice(src []*big.Int, p uint64, dst []uint64) {
	if len(dst) != len(src) {
		panic("rns: reduce destination length mismatch")
	}
	var tmp big.Int
	for i, e := range src {
		if e.IsInt64() {
			v := e.Int64() % int64(p)
			if v < 0 {
				v += int64(p)
			}
			dst[i] = uint64(v)
			continue
		}
		tmp.Mod(e, tmp.SetUint64(p)) // Mod result is in [0, p) for p > 0
		dst[i] = tmp.Uint64()
	}
}

// RatVec is the solution of an integer/rational system in lowest common
// form: X[i] = Num[i] / Den with Den > 0 and gcd(gcd_i Num[i], Den) = 1.
type RatVec struct {
	Num []*big.Int
	Den *big.Int
}

// Len returns the vector length.
func (v *RatVec) Len() int { return len(v.Num) }

// Rat returns the i-th coordinate as a big.Rat.
func (v *RatVec) Rat(i int) *big.Rat {
	return new(big.Rat).SetFrac(v.Num[i], v.Den)
}

// Rats returns all coordinates as big.Rat values.
func (v *RatVec) Rats() []*big.Rat {
	out := make([]*big.Rat, len(v.Num))
	for i := range out {
		out[i] = v.Rat(i)
	}
	return out
}

// IsInt reports whether every coordinate is an integer (Den == 1).
func (v *RatVec) IsInt() bool { return v.Den.Cmp(bigOne) == 0 }

// Normalize divides out the gcd of all numerators and the denominator and
// fixes Den > 0, producing the canonical lowest-common-denominator form.
func (v *RatVec) Normalize() {
	if v.Den.Sign() == 0 {
		panic("rns: zero denominator")
	}
	g := new(big.Int).Abs(v.Den)
	for _, n := range v.Num {
		// Zero numerators divide everything; big.Int.GCD rejects
		// non-positive operands, so skip them.
		if n.Sign() == 0 || g.Cmp(bigOne) == 0 {
			continue
		}
		g.GCD(nil, nil, g, new(big.Int).Abs(n))
	}
	if v.Den.Sign() < 0 {
		g.Neg(g)
	}
	if g.Cmp(bigOne) != 0 {
		v.Den.Quo(v.Den, g)
		for _, n := range v.Num {
			n.Quo(n, g)
		}
	}
}

var bigOne = big.NewInt(1)
