package rns

import (
	"fmt"
	"math/big"
)

// Solving over ℚ reduces to solving over ℤ: scaling row i of [A | b] by the
// least common multiple of its denominators leaves the solution vector x
// unchanged (each equation is multiplied by a nonzero constant), so the
// engine clears denominators row by row and runs the integer pipeline.

// ClearDenominators returns the integer system equivalent to the rational
// system A·x = b: each row of [A | b] is scaled by the LCM of its entries'
// denominators. a must be rectangular with len(b) == len(a).
func ClearDenominators(a [][]*big.Rat, b []*big.Rat) (*IntMat, []*big.Int, error) {
	n := len(a)
	if n == 0 {
		return nil, nil, fmt.Errorf("rns: empty system: %w", ErrBadShape)
	}
	if len(b) != n {
		return nil, nil, fmt.Errorf("rns: %d rows but %d right-hand entries: %w", n, len(b), ErrBadShape)
	}
	cols := len(a[0])
	m := &IntMat{Rows: n, Cols: cols, Data: make([]*big.Int, n*cols)}
	bi := make([]*big.Int, n)
	lcm := new(big.Int)
	g := new(big.Int)
	for i, row := range a {
		if len(row) != cols {
			return nil, nil, fmt.Errorf("rns: row %d has %d entries, want %d: %w", i, len(row), cols, ErrBadShape)
		}
		// L = lcm of the row's denominators (all positive by big.Rat's
		// normalization).
		lcm.SetInt64(1)
		for _, e := range row {
			d := e.Denom()
			g.GCD(nil, nil, lcm, d)
			lcm.Mul(lcm, new(big.Int).Quo(d, g))
		}
		d := b[i].Denom()
		g.GCD(nil, nil, lcm, d)
		lcm.Mul(lcm, new(big.Int).Quo(d, g))
		// Scale the row: entry num·(L/den) is exact by construction.
		for j, e := range row {
			v := new(big.Int).Quo(lcm, e.Denom())
			m.Data[i*cols+j] = v.Mul(v, e.Num())
		}
		v := new(big.Int).Quo(lcm, b[i].Denom())
		bi[i] = v.Mul(v, b[i].Num())
	}
	return m, bi, nil
}
