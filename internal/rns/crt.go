package rns

import "math/big"

// Chinese remainder combination. The engine solves each residue field
// independently; CRT glues the word-sized answers back into ℤ/M for the
// full modulus M = ∏ p_k, after which SymmetricReduce (integers) or
// Reconstruct (rationals) maps into the true answer range.

// CRTBasis precomputes the mixed products for a fixed prime set so that
// combining many values (every coordinate of a solution vector) pays the
// per-prime setup once.
type CRTBasis struct {
	Primes []uint64
	M      *big.Int   // ∏ primes
	terms  []*big.Int // terms[k] = M_k · (M_k⁻¹ mod p_k), M_k = M / p_k
}

// NewCRTBasis builds the basis for distinct primes.
func NewCRTBasis(primes []uint64) *CRTBasis {
	m := big.NewInt(1)
	for _, p := range primes {
		m.Mul(m, new(big.Int).SetUint64(p))
	}
	terms := make([]*big.Int, len(primes))
	pk := new(big.Int)
	for k, p := range primes {
		pk.SetUint64(p)
		mk := new(big.Int).Quo(m, pk)
		inv := new(big.Int).ModInverse(new(big.Int).Mod(mk, pk), pk)
		terms[k] = mk.Mul(mk, inv) // M_k · (M_k⁻¹ mod p_k)
	}
	return &CRTBasis{Primes: append([]uint64(nil), primes...), M: m, terms: terms}
}

// Combine returns the unique x ∈ [0, M) with x ≡ residues[k] mod p_k.
func (b *CRTBasis) Combine(residues []uint64) *big.Int {
	if len(residues) != len(b.Primes) {
		panic("rns: residue count does not match CRT basis")
	}
	x := new(big.Int)
	t := new(big.Int)
	for k, r := range residues {
		x.Add(x, t.Mul(b.terms[k], t.SetUint64(r)))
	}
	return x.Mod(x, b.M)
}

// SymmetricReduce maps x ∈ [0, M) into the symmetric range (−M/2, M/2] —
// the integer a CRT residue represents when the true answer may be
// negative.
func SymmetricReduce(x, m *big.Int) *big.Int {
	half := new(big.Int).Rsh(m, 1)
	if x.Cmp(half) > 0 {
		return new(big.Int).Sub(x, m)
	}
	return new(big.Int).Set(x)
}
