package rns

import "math/big"

// Certified result-magnitude bounds: how big can the answer be, and
// therefore how many residue primes the CRT modulus needs. Everything here
// is integer arithmetic on ceilings — the bounds are upper bounds, never
// estimates, so the certified prime count can be pessimistic but cannot
// undershoot (undershooting is exactly the ErrBoundTooSmall failure mode
// reserved for user overrides).

// HadamardBound returns the column-norm Hadamard bound on |det(A)|:
// ∏_j ceil(‖col_j‖₂), with each factor clamped to ≥ 1 so the product also
// bounds every (n−1)-column sub-product (used by the Cramer numerator
// bound). A must be square.
func HadamardBound(a *IntMat) *big.Int {
	bound := big.NewInt(1)
	norm2 := new(big.Int)
	sq := new(big.Int)
	for j := 0; j < a.Cols; j++ {
		norm2.SetInt64(0)
		for i := 0; i < a.Rows; i++ {
			e := a.At(i, j)
			norm2.Add(norm2, sq.Mul(e, e))
		}
		// ceil(√norm2), clamped to ≥ 1: Sqrt floors, so add 1 unless the
		// norm is an exact square of the floor.
		r := new(big.Int).Sqrt(norm2)
		if sq.Mul(r, r).Cmp(norm2) < 0 {
			r.Add(r, bigOne)
		}
		if r.Sign() == 0 {
			r.SetInt64(1)
		}
		bound.Mul(bound, r)
	}
	return bound
}

// SolveBound returns the Cramer magnitude bound for A·x = b over ℤ: a
// single N with |numerator_i| ≤ N and 0 < denominator ≤ N for the reduced
// rational solution. By Cramer, x_i = det(A_i(b))/det(A): the denominator
// divides det(A), so HadamardBound(A) covers it; each numerator determinant
// replaces one column of A by b, and is bounded by the product of the other
// columns' norms (≤ HadamardBound(A), every factor being ≥ 1) times
// ceil(‖b‖₂).
func SolveBound(a *IntMat, b []*big.Int) *big.Int {
	h := HadamardBound(a)
	norm2 := new(big.Int)
	sq := new(big.Int)
	for _, e := range b {
		norm2.Add(norm2, sq.Mul(e, e))
	}
	r := new(big.Int).Sqrt(norm2)
	if sq.Mul(r, r).Cmp(norm2) < 0 {
		r.Add(r, bigOne)
	}
	if r.Sign() == 0 {
		r.SetInt64(1)
	}
	return h.Mul(h, r)
}

// PrimesFor returns how many primes of the given bit size the CRT modulus
// needs to cover the reconstruction window for answers of magnitude ≤
// bound: rational reconstruction of num/den with |num|, den ≤ bound is
// unique iff M > 2·bound², so the count satisfies 2^((bits−1)·count) >
// 2·bound² (every generated prime exceeds 2^(bits−1)).
func PrimesFor(bound *big.Int, bits int) int {
	// need = 2·bound² + 1; count = ceil(bitlen(need) / (bits−1)), min 1.
	need := new(big.Int).Mul(bound, bound)
	need.Lsh(need, 1)
	need.Add(need, bigOne)
	per := bits - 1
	count := (need.BitLen() + per - 1) / per
	if count < 1 {
		count = 1
	}
	return count
}

// DetPrimesFor is PrimesFor for a plain integer result (no denominator):
// the symmetric CRT range must cover [−bound, bound], i.e. M > 2·bound.
func DetPrimesFor(bound *big.Int, bits int) int {
	need := new(big.Int).Lsh(bound, 1)
	need.Add(need, bigOne)
	per := bits - 1
	count := (need.BitLen() + per - 1) / per
	if count < 1 {
		count = 1
	}
	return count
}
