package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/ff"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/structured"
)

// kpbench -json: the machine-readable benchmark that seeds the BENCH_*.json
// perf trajectory. One run = one Theorem 4 solve of a random n×n system
// under one multiplier, traced through an obs.Observer so the report splits
// wall time and classical-equivalent field operations across the KP91
// phases (precondition, krylov, minpoly, backsolve).

// BenchSchema identifies the report layout for downstream tooling.
const BenchSchema = "kpbench/v1"

// FieldModulus returns the modulus of the word prime field the experiments
// and benchmarks run over (for self-describing benchmark headers).
func FieldModulus() uint64 { return fpCirc.Modulus() }

// BenchPhase is the per-phase slice of one run.
type BenchPhase struct {
	WallNs   int64  `json:"wall_ns"`
	FieldOps uint64 `json:"field_ops"`
	MulCalls uint64 `json:"mul_calls"`
	Spans    int    `json:"spans"`
	// ApplyNs / ApplyCalls are the black-box apply time and count inside
	// the phase — the implicit route's analogue of mul_calls (dense
	// products never happen there, structured applies do).
	ApplyNs    int64  `json:"apply_ns,omitempty"`
	ApplyCalls uint64 `json:"apply_calls,omitempty"`
}

// BenchRun is one (n, multiplier, rhs) measurement.
type BenchRun struct {
	Dim        int    `json:"n"`
	Multiplier string `json:"multiplier"`
	// Rhs is the number of right-hand sides; 0 (legacy reports) and 1 both
	// mean a single traced Solve. Rows with Rhs > 1 measure SolveBatch.
	Rhs int `json:"rhs,omitempty"`
	// Precond is the preconditioner route: "dense" (materialized Ã, also
	// the meaning of "" in legacy reports), "implicit" (black-box Ã), or
	// "gs" (the Theorem 3 Gohberg–Semencul fast path, Toeplitz rows only).
	Precond string `json:"precond,omitempty"`
	// Workload is "" for a dense random system, "toeplitz" for the
	// structured workload (A is a random non-singular Toeplitz matrix).
	Workload string                `json:"workload,omitempty"`
	WallNs   int64                 `json:"wall_ns"`
	Phases   map[string]BenchPhase `json:"phases"`
	// PrecondNs is the wall time of the precondition phase alone — the
	// head-to-head cell for dense formation of A·H·D vs implicit wiring.
	PrecondNs int64 `json:"precond_ns,omitempty"`
	// ApplyNs / ApplyCalls total the black-box apply work across phases.
	ApplyNs    int64  `json:"apply_ns,omitempty"`
	ApplyCalls uint64 `json:"apply_calls,omitempty"`
	// FieldOpsTotal is the matrix.Instrumented total for the run; the sum
	// of the per-phase field_ops must match it (each op is attributed to
	// exactly one span).
	FieldOpsTotal uint64 `json:"field_ops_total"`
	MulCalls      uint64 `json:"mul_calls"`
	// MulWallNs / MulBusyNs are the union / summed durations inside the
	// multiplication black box; busy > wall means the pool overlapped
	// multiplies' inner chunks.
	MulWallNs int64 `json:"mul_wall_ns"`
	MulBusyNs int64 `json:"mul_busy_ns"`
	Verified  bool  `json:"verified"`
	// DroppedSpans counts spans the run's Observer ring evicted before
	// export; non-zero means the per-phase tables under-report span counts
	// (never durations of the spans that survived).
	DroppedSpans int64 `json:"dropped_spans"`
	// ObsOverheadNs is the telemetry cost of this run: the traced,
	// instrumented wall time minus the wall time of the identical workload
	// on an identically seeded solver with the Observer and instrumentation
	// off. Signed — at small n it sits inside scheduler noise and can go
	// negative.
	ObsOverheadNs int64 `json:"obs_overhead_ns"`
	// IndepWallNs (Rhs > 1 rows only) is the wall time of solving the same
	// Rhs right-hand sides as independent Solve calls, and BatchSpeedup is
	// IndepWallNs / WallNs — the amortization factor of the batch engine.
	IndepWallNs  int64   `json:"indep_wall_ns,omitempty"`
	BatchSpeedup float64 `json:"batch_speedup,omitempty"`
	// Ring is "" for field rows and "zz" for exact integer rows (BenchRing);
	// the fields below are ring rows only. Residues counts the residue
	// fields CRT'd together, ResidueWallNs/ResidueSumNs split the concurrent
	// residue phase into wall vs serialized time (their ratio is
	// ParallelEfficiency), CRTNs is Chinese remaindering plus rational
	// reconstruction, and RNSVerifyNs the a-posteriori exact check over ℤ.
	Ring               string  `json:"ring,omitempty"`
	Residues           int     `json:"residues,omitempty"`
	BadPrimes          int     `json:"bad_primes,omitempty"`
	ResidueWallNs      int64   `json:"residue_wall_ns,omitempty"`
	ResidueSumNs       int64   `json:"residue_sum_ns,omitempty"`
	CRTNs              int64   `json:"crt_ns,omitempty"`
	RNSVerifyNs        int64   `json:"rns_verify_ns,omitempty"`
	ParallelEfficiency float64 `json:"parallel_efficiency,omitempty"`
}

// BenchReport is the kpbench -json document.
type BenchReport struct {
	Schema       string           `json:"schema"`
	GoVersion    string           `json:"go_version"`
	NumCPU       int              `json:"num_cpu"`
	GOMAXPROCS   int              `json:"gomaxprocs"`
	PoolWorkers  int              `json:"pool_workers"`
	FieldModulus uint64           `json:"field_modulus"`
	Seed         uint64           `json:"seed"`
	Runs         []BenchRun       `json:"runs"`
	Metrics      map[string]int64 `json:"metrics"`
	// Direct measurements of the closed-loop telemetry hot paths, taken
	// once per report. The per-run obs_overhead_ns delta sits inside
	// scheduler noise at small n, so the perf gate checks these instead:
	// ObsTimelineSampleNs is the cost of one full timeline sample (every
	// counter, histogram and attempt group walked), amortized over a burst —
	// against kpd's 10s sampling interval it must stay far under 1%.
	// ObsExemplarObserveNs is one ObserveExemplar call (two atomic adds and
	// a pointer swap) on the request-latency hot path.
	ObsTimelineSampleNs  int64 `json:"obs_timeline_sample_ns"`
	ObsExemplarObserveNs int64 `json:"obs_exemplar_observe_ns"`
}

// BenchJSON runs one traced Theorem 4 solve per (n, multiplier) pair — plus,
// for rhs > 1, one traced SolveBatch over rhs right-hand sides together with
// its independent-solves baseline — and returns the per-phase report. Each
// run gets a fresh Observer (installed as the active one for its duration),
// so phase totals are per-run; the final metrics snapshot is cumulative over
// the process.
func BenchJSON(ns []int, muls []string, seed uint64, rhs int) (*BenchReport, error) {
	f := fpCirc
	report := &BenchReport{
		Schema:       BenchSchema,
		GoVersion:    runtime.Version(),
		NumCPU:       runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		PoolWorkers:  matrix.PoolWorkers(),
		FieldModulus: f.Modulus(),
		Seed:         seed,
	}
	prev := obs.Active()
	defer obs.SetActive(prev)
	for _, n := range ns {
		src := ff.NewSource(seed + uint64(n))
		a := matrix.Random[uint64](f, src, n, n, f.Modulus())
		b := ff.SampleVec[uint64](f, src, n, f.Modulus())
		var bs *matrix.Dense[uint64]
		if rhs > 1 {
			bs = matrix.Random[uint64](f, src, n, rhs, f.Modulus())
		}
		for _, name := range muls {
			if _, err := matrix.ByName[uint64](name); err != nil {
				return nil, err
			}
			opts := core.Options{Seed: seed, Multiplier: name, Instrument: true}

			run, err := benchOne(f, opts, a, n, name, prev, func(s *core.Solver[uint64]) (func() bool, error) {
				x, err := s.Solve(a, b)
				if err != nil {
					return nil, err
				}
				return func() bool { return ff.VecEqual[uint64](f, a.MulVec(f, x), b) }, nil
			})
			if err != nil {
				return nil, fmt.Errorf("bench n=%d mul=%s: %w", n, name, err)
			}
			report.Runs = append(report.Runs, *run)

			if rhs <= 1 {
				continue
			}
			batch, err := benchOne(f, opts, a, n, name, prev, func(s *core.Solver[uint64]) (func() bool, error) {
				x, err := s.SolveBatch(a, bs)
				if err != nil {
					return nil, err
				}
				return func() bool {
					mul, _ := matrix.ByName[uint64](name)
					return mul.Mul(f, a, x).Equal(f, bs)
				}, nil
			})
			if err != nil {
				return nil, fmt.Errorf("bench n=%d mul=%s rhs=%d: %w", n, name, rhs, err)
			}
			batch.Rhs = rhs
			// Amortization baseline: the same right-hand sides as rhs
			// independent solves on an identically seeded solver (untraced —
			// span overhead is noise at these sizes).
			indep, err := core.NewSolver[uint64](f, core.Options{Seed: seed, Multiplier: name})
			if err != nil {
				return nil, err
			}
			start := time.Now()
			for j := 0; j < rhs; j++ {
				if _, err := indep.Solve(a, bs.Col(j)); err != nil {
					return nil, fmt.Errorf("bench n=%d mul=%s rhs=%d (independent solve %d): %w", n, name, rhs, j, err)
				}
			}
			batch.IndepWallNs = time.Since(start).Nanoseconds()
			if batch.WallNs > 0 {
				batch.BatchSpeedup = float64(batch.IndepWallNs) / float64(batch.WallNs)
			}
			report.Runs = append(report.Runs, *batch)
		}

		// One implicit-preconditioner row per n: the same solve with Ã left
		// as a black-box composition. The multiplier label is nominal — the
		// implicit route performs no dense matrix-matrix products, which is
		// exactly what its precond_ns and mul-call columns demonstrate.
		impOpts := core.Options{Seed: seed, Multiplier: "classical", Instrument: true, PrecondMode: "implicit"}
		imp, err := benchOne(f, impOpts, a, n, "classical", prev, func(s *core.Solver[uint64]) (func() bool, error) {
			x, err := s.Solve(a, b)
			if err != nil {
				return nil, err
			}
			return func() bool { return ff.VecEqual[uint64](f, a.MulVec(f, x), b) }, nil
		})
		if err != nil {
			return nil, fmt.Errorf("bench n=%d implicit: %w", n, err)
		}
		report.Runs = append(report.Runs, *imp)
	}
	report.ObsTimelineSampleNs, report.ObsExemplarObserveNs = measureObsCosts()
	report.Metrics = obs.MetricsSnapshot()
	return report, nil
}

// measureObsCosts times the two closed-loop telemetry hot paths directly:
// a full timeline sample over the registry as populated by the benchmark
// runs (a realistic series count), and a single exemplar-tagged histogram
// observation. Direct timing is what makes the <1% observability-overhead
// claim checkable in CI — the run-level obs_overhead_ns subtraction is too
// noisy to gate on.
func measureObsCosts() (sampleNs, exemplarNs int64) {
	tl := obs.NewTimeline(obs.TimelineConfig{Capacity: 8, Interval: time.Hour})
	const samples = 16
	start := time.Now()
	for i := 0; i < samples; i++ {
		tl.SampleNow()
	}
	sampleNs = time.Since(start).Nanoseconds() / samples

	h := obs.NewLabeledHistogram("bench.obs.exemplar.ns", "probe", "observe")
	const iters = 1 << 16
	start = time.Now()
	for i := 0; i < iters; i++ {
		h.ObserveExemplar(int64(i), "cafefeedcafefeedcafefeedcafefeed")
	}
	exemplarNs = time.Since(start).Nanoseconds() / iters
	return sampleNs, exemplarNs
}

// BenchStructured runs the Toeplitz workload: for each n, a random
// non-singular Toeplitz system solved three ways — the Theorem 4 dense
// route on the materialized matrix, the same pipeline with the implicit
// preconditioner, and the Theorem 3 Gohberg–Semencul fast path that never
// materializes anything dense. The GS row has no phase table (the
// structured backend is not span-instrumented); its wall_ns against the
// dense row's is the headline structured speedup.
func BenchStructured(ns []int, seed uint64) ([]BenchRun, error) {
	f := fpCirc
	prev := obs.Active()
	defer obs.SetActive(prev)
	var runs []BenchRun
	for _, n := range ns {
		src := ff.NewSource(seed + 7*uint64(n))
		var entries []uint64
		var tm structured.Toeplitz[uint64]
		var a *matrix.Dense[uint64]
		// Redraw until the Toeplitz matrix is usable by all three backends
		// (GS needs a non-singular T with charpoly constant term ≠ 0; a
		// random draw fails with probability ≈ n/p ≈ 0).
		for {
			tm = structured.RandomToeplitz[uint64](f, src, n, f.Modulus())
			entries = tm.D
			a = tm.Dense(f)
			if _, err := structured.NewGSSolver(f, tm); err == nil {
				break
			}
		}
		b := ff.SampleVec[uint64](f, src, n, f.Modulus())

		for _, mode := range []string{"dense", "implicit"} {
			opts := core.Options{Seed: seed, Multiplier: "classical", Instrument: true, PrecondMode: mode}
			run, err := benchOne(f, opts, a, n, "classical", prev, func(s *core.Solver[uint64]) (func() bool, error) {
				x, err := s.Solve(a, b)
				if err != nil {
					return nil, err
				}
				return func() bool { return ff.VecEqual[uint64](f, a.MulVec(f, x), b) }, nil
			})
			if err != nil {
				return nil, fmt.Errorf("structured bench n=%d %s: %w", n, mode, err)
			}
			run.Workload = "toeplitz"
			runs = append(runs, *run)
		}

		// Theorem 3 fast path: Newton + Gohberg–Semencul on the 2n−1
		// defining entries, one structured solve, no dense object anywhere.
		gsSolver, err := core.NewSolver[uint64](f, core.Options{Seed: seed, Multiplier: "classical"})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		x, err := gsSolver.SolveToeplitzGS(entries, b)
		wall := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("structured bench n=%d gs: %w", n, err)
		}
		runs = append(runs, BenchRun{
			Dim:        n,
			Multiplier: "classical",
			Precond:    "gs",
			Workload:   "toeplitz",
			WallNs:     wall.Nanoseconds(),
			Verified:   ff.VecEqual[uint64](f, tm.MulVec(f, x), b),
		})
	}
	return runs, nil
}

// benchOne times one traced, instrumented solver call and folds the
// observer's phase totals into a BenchRun.
func benchOne(f ff.Fp64, opts core.Options, a *matrix.Dense[uint64], n int, name string, prev *obs.Observer, run func(*core.Solver[uint64]) (func() bool, error)) (*BenchRun, error) {
	o := obs.New(0)
	opts.Observer = o
	s, err := core.NewSolver[uint64](f, opts)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	verify, err := run(s)
	wall := time.Since(start)
	obs.SetActive(prev)
	if err != nil {
		return nil, err
	}
	// Enabled-vs-disabled delta: replay the identical workload on an
	// identically seeded solver with no Observer and no instrumentation
	// (the nil-span fast path), so obs_overhead_ns prices the telemetry
	// layer itself rather than run-to-run variance of different inputs.
	plainOpts := opts
	plainOpts.Observer = nil
	plainOpts.Instrument = false
	plain, err := core.NewSolver[uint64](f, plainOpts)
	if err != nil {
		return nil, err
	}
	plainStart := time.Now()
	if _, err := run(plain); err != nil {
		return nil, err
	}
	plainWall := time.Since(plainStart)
	snap := s.MulStats().Snapshot()
	phases := make(map[string]BenchPhase)
	var precondNs, applyNs int64
	var applyCalls uint64
	for phase, t := range o.PhaseTotals() {
		phases[phase] = BenchPhase{
			WallNs:     t.Wall.Nanoseconds(),
			FieldOps:   t.FieldOps,
			MulCalls:   t.MulCalls,
			Spans:      t.Count,
			ApplyNs:    t.ApplyTime.Nanoseconds(),
			ApplyCalls: t.ApplyCalls,
		}
		if phase == obs.PhasePrecondition || phase == obs.PhaseBatchPrecondition {
			precondNs += t.Wall.Nanoseconds()
		}
		applyNs += t.ApplyTime.Nanoseconds()
		applyCalls += t.ApplyCalls
	}
	return &BenchRun{
		Dim:           n,
		Multiplier:    name,
		Precond:       string(s.PrecondMode()),
		WallNs:        wall.Nanoseconds(),
		Phases:        phases,
		PrecondNs:     precondNs,
		ApplyNs:       applyNs,
		ApplyCalls:    applyCalls,
		FieldOpsTotal: snap.FieldOps,
		MulCalls:      snap.Calls,
		MulWallNs:     snap.Wall.Nanoseconds(),
		MulBusyNs:     snap.Busy.Nanoseconds(),
		Verified:      verify(),
		DroppedSpans:  o.Dropped(),
		ObsOverheadNs: wall.Nanoseconds() - plainWall.Nanoseconds(),
	}, nil
}

// WriteJSON writes the report, indented for diff-friendly BENCH_*.json
// files.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
