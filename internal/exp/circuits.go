package exp

import (
	"math"

	"repro/internal/charpoly"
	"repro/internal/circuit"
	"repro/internal/ff"
	"repro/internal/kp"
	"repro/internal/matrix"
	"repro/internal/poly"
	"repro/internal/structured"
)

// Circuit experiments E3, E4, E6, E7, E8: trace the branch-free algorithms
// through the circuit builder and measure the paper's size/depth bounds.

var fpCirc = ff.MustFp64(ff.PNTT62) // NTT-friendly: traced products use the fast path

func log2(x float64) float64 { return math.Log2(x) }

// E3 traces the Theorem 3 Toeplitz characteristic-polynomial pipeline and
// checks size = O(n²·log n·loglog n), depth = O((log n)²). The size ratio
// column divides by n²·log²n (our Karatsuba substrate replaces the paper's
// FFT, shifting one log factor — see DESIGN.md §2); the ratios must
// flatten or shrink as n grows. Every circuit is also evaluated and checked
// against Berkowitz.
func E3(seed uint64, quick bool) (*Table, error) {
	src := ff.NewSource(seed)
	t := &Table{
		ID:         "E3",
		Title:      "Theorem 3 — Toeplitz charpoly circuit size and depth",
		PaperClaim: "size O(n²·log n·loglog n), depth O((log n)²) for char 0 or > n",
		Columns: []string{"n", "size", "size/(n²·log²n)", "depth", "depth/log²n",
			"verified"},
	}
	ns := []int{4, 8, 16, 32, 64}
	if quick {
		ns = []int{4, 8, 16}
	}
	for _, n := range ns {
		b := circuit.NewBuilderFor[uint64](fpCirc)
		entries := b.Inputs(2*n - 1)
		tp := structured.Toeplitz[circuit.Wire]{N: n, D: entries}
		cp, err := structured.CharPoly[circuit.Wire](b, tp)
		if err != nil {
			return nil, err
		}
		b.Return(cp...)
		m := b.Metrics()
		size := b.LiveSize()
		ln := log2(float64(n))
		// Verify against Berkowitz on a random instance.
		vals := ff.SampleVec[uint64](fpCirc, src, 2*n-1, ff.P31)
		got, err := circuit.Eval[uint64](b, fpCirc, vals)
		if err != nil {
			return nil, err
		}
		want := charpoly.CharPolyBerkowitz[uint64](fpCirc, matrix.ToeplitzDense[uint64](fpCirc, vals))
		verified := poly.Equal[uint64](fpCirc, got, want)
		t.AddRow(d(n), d(size),
			f3(float64(size)/(float64(n)*float64(n)*ln*ln)),
			d(m.Depth), f2(float64(m.Depth)/(ln*ln)), boolMark(verified))
	}
	t.AddNote("size = live arithmetic nodes (dead trace temporaries excluded)")
	t.AddNote("size ratio uses n²·log²n: Karatsuba's extra log factor vs the paper's Cantor–Kaltofen FFT (DESIGN.md §2)")
	return t, nil
}

// E3Ablation compares the depth growth of the two Leverrier back ends: the
// sequential Newton-identity substitution has depth Θ(n) (it doubles with
// n), while the power-series exponential route (Schönhage) grows
// polylogarithmically — the property Theorem 3 needs. At small n the
// sequential form's tiny constant wins; the table exposes the growth rates
// and the crossover.
func E3Ablation(seed uint64, quick bool) (*Table, error) {
	t := &Table{
		ID:    "E3a",
		Title: "Ablation — Leverrier back end: sequential vs power-series exp",
		PaperClaim: "the Newton-identity system must be solved by Schönhage's series method " +
			"for depth O((log n)²); forward substitution is Θ(n)",
		Columns: []string{"n", "depth (sequential)", "growth", "depth (series exp)", "growth"},
	}
	ns := []int{8, 16, 32, 64, 128, 256, 512, 1024}
	if quick {
		ns = []int{8, 16, 32, 64}
	}
	prevSeq, prevSer := 0, 0
	for _, n := range ns {
		seqDepth, err := leverrierDepth(n, false)
		if err != nil {
			return nil, err
		}
		serDepth, err := leverrierDepth(n, true)
		if err != nil {
			return nil, err
		}
		gSeq, gSer := "-", "-"
		if prevSeq > 0 {
			gSeq = f2(float64(seqDepth) / float64(prevSeq))
			gSer = f2(float64(serDepth) / float64(prevSer))
		}
		t.AddRow(d(n), d(seqDepth), gSeq, d(serDepth), gSer)
		prevSeq, prevSer = seqDepth, serDepth
	}
	t.AddNote("sequential growth stays ≈ 2.0 per doubling (linear depth); series growth decays toward 1 (polylog); the series route overtakes past the crossover and is the only one compatible with Theorem 3's bound")
	return t, nil
}

func leverrierDepth(n int, series bool) (int, error) {
	b := circuit.NewBuilderFor[uint64](fpCirc)
	s := b.Inputs(n)
	var cp []circuit.Wire
	var err error
	if series {
		cp, err = charpoly.PowerSumsToCharPolySeries[circuit.Wire](b, s)
	} else {
		cp, err = charpoly.PowerSumsToCharPoly[circuit.Wire](b, s)
	}
	if err != nil {
		return 0, err
	}
	b.Return(cp...)
	return b.Depth(), nil
}

// E4 traces the full Theorem 4 solver and measures its size against
// n^ω·log n (classical ω = 3) and its depth against (log n)². Each circuit
// is evaluated on a random non-singular system and the output verified.
func E4(seed uint64, quick bool) (*Table, error) {
	src := ff.NewSource(seed)
	t := &Table{
		ID:         "E4",
		Title:      "Theorem 4 — solver circuit size, depth, randomness",
		PaperClaim: "size O(n^ω·log n), depth O((log n)²), O(n) random nodes; zero-divisions ≤ 3n²/|S|",
		Columns: []string{"n", "size", "size/(n³·log n)", "depth", "depth/log²n",
			"randoms", "verified"},
	}
	ns := []int{4, 8, 16, 32, 64}
	if quick {
		ns = []int{4, 8, 16}
	}
	for _, n := range ns {
		b, err := kp.TraceSolve[uint64](fpCirc, matrix.Classical[circuit.Wire]{}, n)
		if err != nil {
			return nil, err
		}
		m := b.Metrics()
		size := b.LiveSize()
		ln := log2(float64(n))
		verified, err := verifySolveCircuit(b, src, n)
		if err != nil {
			return nil, err
		}
		t.AddRow(d(n), d(size),
			f3(float64(size)/(math.Pow(float64(n), 3)*ln)),
			d(m.Depth), f2(float64(m.Depth)/(ln*ln)),
			d(m.Randoms), boolMark(verified))
	}
	t.AddNote("classical multiplier: ω = 3; randoms = 5n−1 = O(n) as Theorem 4 requires")
	return t, nil
}

func verifySolveCircuit(b *circuit.Builder, src *ff.Source, n int) (bool, error) {
	f := fpCirc
	for {
		a := matrix.Random[uint64](f, src, n, n, ff.P31)
		if det, _ := matrix.Det[uint64](f, a); f.IsZero(det) {
			continue
		}
		rhs := ff.SampleVec[uint64](f, src, n, ff.P31)
		rnd := kp.DrawRandomness[uint64](f, src, n, ff.P31)
		inputs := append(append(append([]uint64{}, a.Data...), rhs...), rnd.Flat()...)
		x, err := circuit.Eval[uint64](b, f, inputs)
		if err != nil {
			continue // unlucky randomness: redraw (the Las Vegas loop)
		}
		return ff.VecEqual[uint64](f, a.MulVec(f, x), rhs), nil
	}
}

// E6 measures Theorem 5 on three circuit families: the Baur–Strassen
// gradient must stay within 4× the size (plus the trivial instructions the
// theorem's accounting removes; we report the raw ratio) and O(1)× the
// depth of the original program.
func E6(seed uint64, quick bool) (*Table, error) {
	t := &Table{
		ID:         "E6",
		Title:      "Theorem 5 — Baur–Strassen gradient size/depth ratios",
		PaperClaim: "all partial derivatives at length ≤ 4l and depth O(d)",
		Columns:    []string{"circuit", "n", "size P", "size Q", "ratio (≤4)", "depth P", "depth Q", "ratio"},
	}
	ns := []int{8, 16, 32}
	if quick {
		ns = []int{8, 16}
	}
	for _, n := range ns {
		// Family 1: balanced product ∏xᵢ (pure multiplications).
		b := circuit.NewBuilderFor[uint64](fpCirc)
		xs := b.Inputs(n)
		prod := balancedProductWire(b, xs)
		if err := addGradientRow(t, "product", n, b, prod); err != nil {
			return nil, err
		}
		// Family 2: quadratic form xᵀMx with constant M.
		b2 := circuit.NewBuilderFor[uint64](fpCirc)
		xs2 := b2.Inputs(n)
		var terms []circuit.Wire
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				terms = append(terms, b2.Mul(xs2[i], b2.Mul(b2.FromInt64(int64(1+(i*j)%7)), xs2[j])))
			}
		}
		qf := b2.SumBalanced(terms)
		if err := addGradientRow(t, "quadratic", n, b2, qf); err != nil {
			return nil, err
		}
		// Family 3: the Theorem 4 determinant circuit itself (Theorem 6's
		// input), capped to keep the quick mode fast.
		if n <= 16 {
			b3, err := kp.TraceDet[uint64](fpCirc, matrix.Classical[circuit.Wire]{}, n)
			if err != nil {
				return nil, err
			}
			if err := addGradientRow(t, "KP det", n, b3, b3.Outputs()[0]); err != nil {
				return nil, err
			}
		}
	}
	t.AddNote("ratio is raw size(Q)/size(P) including the trivial instructions Theorem 5's 4l count eliminates; ≤ 4 is the theorem's bound after their removal")
	return t, nil
}

func balancedProductWire(b *circuit.Builder, ws []circuit.Wire) circuit.Wire {
	cur := append([]circuit.Wire(nil), ws...)
	for len(cur) > 1 {
		var next []circuit.Wire
		for i := 0; i+1 < len(cur); i += 2 {
			next = append(next, b.Mul(cur[i], cur[i+1]))
		}
		if len(cur)%2 == 1 {
			next = append(next, cur[len(cur)-1])
		}
		cur = next
	}
	return cur[0]
}

func addGradientRow(t *Table, name string, n int, b *circuit.Builder, out circuit.Wire) error {
	b.Return(out)
	sizeP := b.LiveSize()
	depthP := b.NodeDepth(out)
	grads, err := circuit.Gradient(b, out)
	if err != nil {
		return err
	}
	b.Return(grads...)
	sizeQ := b.LiveSize()
	depthQ := b.Depth()
	t.AddRow(name, d(n), d(sizeP), d(sizeQ), f2(float64(sizeQ)/float64(max(sizeP, 1))),
		d(depthP), d(depthQ), f2(float64(depthQ)/float64(max(depthP, 1))))
	return nil
}

// E7 builds the Theorem 6 inverse circuit (gradient of the determinant
// circuit) and measures its size/depth against the determinant circuit,
// verifying A·A⁻¹ = I on random instances.
func E7(seed uint64, quick bool) (*Table, error) {
	src := ff.NewSource(seed)
	t := &Table{
		ID:         "E7",
		Title:      "Theorem 6 — inverse circuit from the determinant circuit",
		PaperClaim: "same O(n^ω·log n) size and O((log n)²) depth bounds as Theorem 4",
		Columns:    []string{"n", "det size", "inv size", "ratio", "det depth", "inv depth", "verified"},
	}
	ns := []int{4, 8, 16}
	if quick {
		ns = []int{4, 8}
	}
	for _, n := range ns {
		det, err := kp.TraceDet[uint64](fpCirc, matrix.Classical[circuit.Wire]{}, n)
		if err != nil {
			return nil, err
		}
		inv, err := kp.TraceInverse[uint64](fpCirc, matrix.Classical[circuit.Wire]{}, n)
		if err != nil {
			return nil, err
		}
		verified := false
		for attempt := 0; attempt < 10 && !verified; attempt++ {
			a := matrix.Random[uint64](fpCirc, src, n, n, ff.P31)
			if det0, _ := matrix.Det[uint64](fpCirc, a); fpCirc.IsZero(det0) {
				continue
			}
			rnd := kp.DrawRandomness[uint64](fpCirc, src, n, ff.P31)
			m, err := kp.InverseFromCircuit[uint64](inv, fpCirc, a, rnd)
			if err != nil {
				continue
			}
			verified = matrix.Mul[uint64](fpCirc, a, m).Equal(fpCirc, matrix.Identity[uint64](fpCirc, n))
		}
		t.AddRow(d(n), d(det.LiveSize()), d(inv.LiveSize()),
			f2(float64(inv.LiveSize())/float64(det.LiveSize())),
			d(det.Depth()), d(inv.Depth()), boolMark(verified))
	}
	return t, nil
}

// E8 measures the transposition principle: the (Aᵀ)⁻¹b circuit obtained by
// differentiating f(y) = (A⁻¹y)ᵀb stays within ~4–5× the solver circuit
// size at comparable depth, and its output verifies Aᵀx = b.
func E8(seed uint64, quick bool) (*Table, error) {
	src := ff.NewSource(seed)
	t := &Table{
		ID:         "E8",
		Title:      "§4 — transposed systems via the transposition principle",
		PaperClaim: "a circuit for (Aᵀ)⁻¹b of size 4l and depth O(d) from any size-l depth-d solver",
		Columns:    []string{"n", "solve size", "transposed size", "ratio", "solve depth", "transposed depth", "verified"},
	}
	ns := []int{4, 8, 16}
	if quick {
		ns = []int{4, 8}
	}
	for _, n := range ns {
		solve, err := kp.TraceSolve[uint64](fpCirc, matrix.Classical[circuit.Wire]{}, n)
		if err != nil {
			return nil, err
		}
		trans, err := kp.TraceTransposedSolve[uint64](fpCirc, matrix.Classical[circuit.Wire]{}, n)
		if err != nil {
			return nil, err
		}
		verified := false
		for attempt := 0; attempt < 10 && !verified; attempt++ {
			a := matrix.Random[uint64](fpCirc, src, n, n, ff.P31)
			if det0, _ := matrix.Det[uint64](fpCirc, a); fpCirc.IsZero(det0) {
				continue
			}
			rhs := ff.SampleVec[uint64](fpCirc, src, n, ff.P31)
			rnd := kp.DrawRandomness[uint64](fpCirc, src, n, ff.P31)
			x, err := kp.TransposedSolveFromCircuit[uint64](trans, fpCirc, a, rhs, rnd)
			if err != nil {
				continue
			}
			verified = ff.VecEqual[uint64](fpCirc, a.Transpose().MulVec(fpCirc, x), rhs)
		}
		t.AddRow(d(n), d(solve.LiveSize()), d(trans.LiveSize()),
			f2(float64(trans.LiveSize())/float64(solve.LiveSize())),
			d(solve.Depth()), d(trans.Depth()), boolMark(verified))
	}
	t.AddNote("the transposed circuit also contains the dot product with b and the gradient plumbing; the paper's 4l counts the solver body only")
	return t, nil
}
