// Package exp contains the experiment runners of the reproduction: one per
// entry in DESIGN.md's experiment index (E1–E13), each regenerating a
// quantitative claim of Kaltofen–Pan (SPAA 1991) as a measured table. The
// runners are shared by cmd/kpbench (full sweeps, recorded in
// EXPERIMENTS.md) and bench_test.go (quick sweeps under `go test -bench`).
package exp

import (
	"fmt"
	"strings"
)

// Table is one experiment's result: a paper claim and the measured rows.
type Table struct {
	ID         string
	Title      string
	PaperClaim string
	Columns    []string
	Rows       [][]string
	Notes      []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a footnote.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&sb, "paper: %s\n", t.PaperClaim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total-2) + "\n")
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Markdown renders the table as a GitHub-flavored Markdown table (used to
// regenerate EXPERIMENTS.md).
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&sb, "**Paper claim.** %s\n\n", t.PaperClaim)
	sb.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "\n*%s*\n", n)
	}
	sb.WriteString("\n")
	return sb.String()
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func d(v int) string      { return fmt.Sprintf("%d", v) }
func u(v uint64) string   { return fmt.Sprintf("%d", v) }
