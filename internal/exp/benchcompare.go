package exp

import (
	"encoding/json"
	"fmt"
	"os"
)

// Regression gating for the BENCH_*.json trajectory: kpbench -json -baseline
// compares the fresh report against a committed baseline file and fails the
// run when any shared (n, multiplier) cell got slower than the tolerance.

// ReadBenchReport loads a BENCH_*.json file.
func ReadBenchReport(path string) (*BenchReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r BenchReport
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != BenchSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, BenchSchema)
	}
	return &r, nil
}

// CompareBaseline checks cur against base cell by cell and returns one
// message per regression: a (ring, n, multiplier, rhs, precond, workload)
// run whose wall_ns exceeds the baseline's by more than the fractional
// tolerance (0.10 = 10% slower). Rhs 0 (legacy reports) and 1 are the same
// cell, and legacy rows without a precond label are "dense", so old
// baselines keep gating single-solve dense rows; implicit, GS,
// structured-workload and ring rows only gate against baselines that carry
// them (the ring qualifier keeps a zz row from colliding with the fp row
// of the same n and multiplier). Cells present in only one report are
// ignored — the gate guards shared coverage, it does not force identical
// grids across PRs.
func CompareBaseline(cur, base *BenchReport, tol float64) []string {
	key := func(r BenchRun) string {
		rhs := r.Rhs
		if rhs == 0 {
			rhs = 1
		}
		k := fmt.Sprintf("%d/%s/%d", r.Dim, r.Multiplier, rhs)
		if r.Precond != "" && r.Precond != "dense" {
			k += "/" + r.Precond
		}
		if r.Workload != "" {
			k += "@" + r.Workload
		}
		if r.Ring != "" {
			k = r.Ring + "!" + k
		}
		return k
	}
	baseCells := make(map[string]int64, len(base.Runs))
	for _, r := range base.Runs {
		baseCells[key(r)] = r.WallNs
	}
	var regressions []string
	for _, r := range cur.Runs {
		bw, ok := baseCells[key(r)]
		if !ok || bw <= 0 {
			continue
		}
		limit := float64(bw) * (1 + tol)
		if float64(r.WallNs) > limit {
			cell := fmt.Sprintf("n=%d %s", r.Dim, r.Multiplier)
			if r.Ring != "" {
				cell = fmt.Sprintf("%s ring=%s", cell, r.Ring)
			}
			if r.Rhs > 1 {
				cell = fmt.Sprintf("%s rhs=%d", cell, r.Rhs)
			}
			if r.Precond != "" && r.Precond != "dense" {
				cell = fmt.Sprintf("%s precond=%s", cell, r.Precond)
			}
			if r.Workload != "" {
				cell = fmt.Sprintf("%s workload=%s", cell, r.Workload)
			}
			regressions = append(regressions, fmt.Sprintf(
				"%s: wall %.2fms vs baseline %.2fms (+%.0f%%, tolerance %.0f%%)",
				cell,
				float64(r.WallNs)/1e6, float64(bw)/1e6,
				100*(float64(r.WallNs)/float64(bw)-1), 100*tol))
		}
	}
	return regressions
}
