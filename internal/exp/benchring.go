package exp

import (
	"fmt"
	"math/big"
	"time"

	"repro/internal/core"
	"repro/internal/ff"
	"repro/internal/rns"
)

// kpbench -ring zz: exact integer rows for the BENCH_*.json trajectory.
// One row = one exact Solve of a random n×n integer system through the
// RNS/CRT engine — every residue field solved independently by the
// Theorem 4 pipeline, then Chinese remaindering, rational reconstruction
// and the a-posteriori verification over ℤ. The row carries the residue
// count and the phase split (residue wall vs serialized sum, CRT and
// verify time), so the trajectory tracks both the exact-solve wall time
// and the realized parallel efficiency of the residue fan-out.

// ringEntryBound is the magnitude of the random integer entries; the
// Hadamard/Cramer bound (and hence the residue count) grows with it.
const ringEntryBound = 999

// BenchRing runs one exact ℤ-solve per (n, multiplier) pair and returns
// the ring rows. The multiplier names the per-residue inner black box.
func BenchRing(ns []int, muls []string, seed uint64) ([]BenchRun, error) {
	var runs []BenchRun
	for _, n := range ns {
		src := ff.NewSource(seed + 13*uint64(n))
		a := rns.NewIntMat(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, big.NewInt(int64(src.Intn(2*ringEntryBound+1))-ringEntryBound))
			}
		}
		b := make([]*big.Int, n)
		for i := range b {
			b[i] = big.NewInt(int64(src.Intn(2*ringEntryBound+1)) - ringEntryBound)
		}
		for _, name := range muls {
			s, err := core.NewIntSolver(core.IntOptions{Seed: seed, Multiplier: name})
			if err != nil {
				return nil, err
			}
			start := time.Now()
			_, stats, err := s.SolveInt(a, b)
			wall := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("ring bench n=%d mul=%s: %w", n, name, err)
			}
			runs = append(runs, BenchRun{
				Dim:                n,
				Multiplier:         name,
				Ring:               "zz",
				WallNs:             wall.Nanoseconds(),
				Verified:           stats.Verified,
				Residues:           stats.Residues,
				BadPrimes:          stats.BadPrimes,
				ResidueWallNs:      stats.ResidueWallNs,
				ResidueSumNs:       stats.ResidueSumNs,
				CRTNs:              stats.CRTNs,
				RNSVerifyNs:        stats.VerifyNs,
				ParallelEfficiency: stats.ParallelEfficiency,
			})
		}
	}
	return runs, nil
}
