package exp

// Runner is one experiment: it returns the measured table.
type Runner func(seed uint64, quick bool) (*Table, error)

// Experiment pairs an id with its runner and a one-line description.
type Experiment struct {
	ID          string
	Description string
	Run         Runner
}

// All returns every experiment in DESIGN.md index order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Lemma 2 projection probability", E1},
		{"E2", "Theorem 2 / eq.(2) preconditioner probability", E2},
		{"E3", "Theorem 3 Toeplitz charpoly circuit", E3},
		{"E3a", "Ablation: sequential vs series Leverrier depth", E3Ablation},
		{"E4", "Theorem 4 solver circuit", E4},
		{"E4a", "Ablation: multiplication black box sets ω", E4a},
		{"E4m", "Ablation: dense multiplier substrate wall clock", E4m},
		{"E5", "Processor counts vs Csanky/Berkowitz/LU", E5},
		{"E6", "Theorem 5 Baur–Strassen ratios", E6},
		{"E7", "Theorem 6 inverse circuit", E7},
		{"E8", "Transposition principle", E8},
		{"E9", "Small characteristic (Chistov route)", E9},
		{"E10", "Brent/PRAM schedules", E10},
		{"E10w", "Wall-clock parallel evaluation", E10Wallclock},
		{"E11", "Wiedemann vs Gaussian on sparse systems", E11},
		{"E12", "GCD via Sylvester matrices", E12},
		{"E13", "Rank / nullspace / singular systems", E13},
		{"E14", "Small Galois fields: extension lifting", E14},
	}
}

// ByID returns the experiment with the given id, or nil.
func ByID(id string) *Experiment {
	for _, e := range All() {
		if e.ID == id {
			return &e
		}
	}
	return nil
}
