package exp

import (
	"runtime"
	"time"

	"repro/internal/circuit"
	"repro/internal/ff"
	"repro/internal/kp"
	"repro/internal/matrix"
)

// E10 is the PRAM experiment: Brent schedules of the Theorem 4 circuit for
// a sweep of processor counts — verifying T_p ≤ W/p + D exactly and showing
// that p ≈ W/D processors reach polylog time (the paper's processor
// efficiency) — plus wall-clock goroutine evaluation on the host's cores.
func E10(seed uint64, quick bool) (*Table, error) {
	n := 32
	if quick {
		n = 16
	}
	b, err := kp.TraceSolve[uint64](fpCirc, matrix.Classical[circuit.Wire]{}, n)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:         "E10",
		Title:      "Brent/PRAM schedule of the Theorem 4 circuit",
		PaperClaim: "T_p ≤ W/p + D; with p ≈ W/D processors, time O((log n)²) at full efficiency",
		Columns:    []string{"p", "T_p", "speedup", "efficiency", "Brent bound holds"},
	}
	one := b.BrentSchedule(1)
	ps := []int{1, 2, 4, 16, 64, 256, 1024, b.ProcessorEfficientP(), 1 << 20}
	for _, p := range ps {
		s := b.BrentSchedule(p)
		t.AddRow(d(p), d(s.Time), f2(s.Speedup()), f3(s.Efficiency()),
			boolMark(s.BrentBoundHolds()))
	}
	t.AddNote("n = %d: work W = %d, depth D = %d, processor-efficient p* = W/D = %d",
		n, one.Work, one.Depth, b.ProcessorEfficientP())
	return t, nil
}

// E10Wallclock measures real goroutine-parallel evaluation of the
// Theorem 4 circuit against the sequential evaluator.
func E10Wallclock(seed uint64, quick bool) (*Table, error) {
	n := 32
	reps := 5
	if quick {
		n = 16
		reps = 3
	}
	src := ff.NewSource(seed)
	b, err := kp.TraceSolve[uint64](fpCirc, matrix.Classical[circuit.Wire]{}, n)
	if err != nil {
		return nil, err
	}
	a := randNonsingularCnt(fpCirc, src, n)
	rhs := ff.SampleVec[uint64](fpCirc, src, n, ff.P31)
	rnd := kp.DrawRandomness[uint64](fpCirc, src, n, ff.P31)
	inputs := append(append(append([]uint64{}, a.Data...), rhs...), rnd.Flat()...)

	t := &Table{
		ID:         "E10w",
		Title:      "Wall-clock parallel circuit evaluation (goroutine pool)",
		PaperClaim: "the level-parallel schedule realizes the PRAM speedup on real cores",
		Columns:    []string{"workers", "time", "speedup vs 1 worker"},
	}
	baseline := time.Duration(0)
	maxW := runtime.GOMAXPROCS(0)
	workers := []int{1}
	for _, w := range []int{2, 4, maxW} {
		if w <= maxW && w > workers[len(workers)-1] {
			workers = append(workers, w)
		}
	}
	for _, w := range workers {
		best := time.Duration(1 << 62)
		for r := 0; r < reps; r++ {
			start := time.Now()
			if _, err := circuit.EvalParallel[uint64](b, fpCirc, inputs, w); err != nil {
				return nil, err
			}
			if el := time.Since(start); el < best {
				best = el
			}
		}
		if w == 1 {
			baseline = best
		}
		t.AddRow(d(w), best.String(), f2(float64(baseline)/float64(best)))
	}
	t.AddNote("n = %d, circuit size %d; per-node work is one word-sized field op, so speedup saturates early from scheduling overhead — the Brent table above is the model-level result", n, b.Size())
	return t, nil
}
