package exp

import (
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs every experiment in quick mode and asserts
// (a) it completes, (b) it produced rows, and (c) no bound-check column
// reports a violation ("NO").
func TestAllExperimentsQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run(12345, true)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s: no rows", e.ID)
			}
			for _, row := range tab.Rows {
				for _, cell := range row {
					if cell == "NO" {
						t.Fatalf("%s: bound violated in row %v", e.ID, row)
					}
				}
			}
			if !strings.Contains(tab.String(), e.ID) {
				t.Fatalf("%s: rendering broken", e.ID)
			}
			if !strings.Contains(tab.Markdown(), "|") {
				t.Fatalf("%s: markdown rendering broken", e.ID)
			}
		})
	}
}

func TestRegistry(t *testing.T) {
	if ByID("E4") == nil {
		t.Fatal("E4 missing from registry")
	}
	if ByID("nope") != nil {
		t.Fatal("unknown id resolved")
	}
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
	}
}
