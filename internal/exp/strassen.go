package exp

import (
	"math"

	"repro/internal/circuit"
	"repro/internal/ff"
	"repro/internal/kp"
	"repro/internal/matrix"
)

// E4a measures the paper's black-box-ω statement: "the processor count and
// especially the constant in the big-O estimate is directly related to the
// particular matrix multiplication algorithm used". The same Theorem 4
// trace is built once over the classical multiplier (ω = 3) and once over
// Strassen (ω = log₂7 ≈ 2.807); the mult-node counts must scale with the
// respective exponents, and the Strassen/classical ratio must fall as n
// grows.
func E4a(seed uint64, quick bool) (*Table, error) {
	src := ff.NewSource(seed)
	t := &Table{
		ID:         "E4a",
		Title:      "Ablation — the matrix-multiplication black box sets ω",
		PaperClaim: "Theorem 4's size is O(n^ω log n) for whatever ω the plugged-in multiplier has",
		Columns: []string{"n", "classical muls", "strassen muls", "ratio",
			"classical growth", "strassen growth", "verified"},
	}
	ns := []int{8, 16, 32, 64}
	if quick {
		ns = []int{8, 16, 32}
	}
	var prevC, prevS int
	for _, n := range ns {
		cls, err := kp.TraceSolve[uint64](fpCirc, matrix.Classical[circuit.Wire]{}, n)
		if err != nil {
			return nil, err
		}
		str, err := kp.TraceSolve[uint64](fpCirc, matrix.Strassen[circuit.Wire]{Cutoff: 8}, n)
		if err != nil {
			return nil, err
		}
		cMuls := cls.Metrics().Muls
		sMuls := str.Metrics().Muls
		gC, gS := "-", "-"
		if prevC > 0 {
			gC = f2(math.Log2(float64(cMuls) / float64(prevC)))
			gS = f2(math.Log2(float64(sMuls) / float64(prevS)))
		}
		verified, err := verifySolveCircuit(str, src, n)
		if err != nil {
			return nil, err
		}
		t.AddRow(d(n), d(cMuls), d(sMuls), f2(float64(sMuls)/float64(cMuls)),
			gC, gS, boolMark(verified))
		prevC, prevS = cMuls, sMuls
	}
	t.AddNote("growth columns are log₂ of the per-doubling multiplication growth; classical trends to ω = 3 contributions plus the n²·polylog Toeplitz part, Strassen strictly lower — and the Strassen-backed circuit still solves its systems")
	return t, nil
}
