package exp

import (
	"fmt"
	"time"

	"repro/internal/ff"
	"repro/internal/kp"
	"repro/internal/matrix"
)

// mulNames is the set of dense multipliers E4m sweeps; kpbench -mul
// restricts it.
var mulNames = matrix.Names()

// SetMultipliers restricts the multiplier ablation (E4m) to the named
// kernels. Every name must be registered in matrix.Names().
func SetMultipliers(names []string) error {
	for _, n := range names {
		if _, err := matrix.ByName[uint64](n); err != nil {
			return err
		}
	}
	mulNames = names
	return nil
}

// E4m is the substrate ablation behind the paper's black-box-ω framing,
// measured in wall clock rather than node counts (E4a): the same products
// and the same Theorem 4 solves run under every registered multiplier —
// serial classical, the cache-blocked kernel, the pooled row-parallel
// kernel, and both Strassen forms. Results are bit-identical across
// multipliers (finite-field arithmetic is exact, so summation order is
// irrelevant), which the "solve identical" column verifies by re-running
// the solver with an identical randomness stream.
func E4m(seed uint64, quick bool) (*Table, error) {
	f := fpCirc
	src := ff.NewSource(seed)
	ns := []int{64, 128, 256}
	reps := 3
	solveN := 32
	if quick {
		ns = []int{32, 64}
		reps = 2
		solveN = 16
	}
	t := &Table{
		ID:         "E4m",
		Title:      "Ablation — dense multiplier substrate (pooled/tiled kernels)",
		PaperClaim: "the multiplication black box sets the constant: same results, different wall clock",
		Columns:    []string{"n", "multiplier", "time/mul", "field-ops", "speedup vs classical", "solve identical"},
	}

	// Identity check: Theorem 4 under each multiplier, identical randomness
	// stream, must produce the identical solution vector.
	sa := matrix.Random[uint64](f, src, solveN, solveN, ff.P31)
	sb := ff.SampleVec[uint64](f, src, solveN, ff.P31)
	want, err := kp.Solve[uint64](f, matrix.Classical[uint64]{}, sa, sb, kp.Params{Src: ff.NewSource(seed + 1), Subset: f.Modulus()})
	if err != nil {
		return nil, err
	}
	identical := map[string]bool{}
	for _, name := range mulNames {
		mul, err := matrix.ByName[uint64](name)
		if err != nil {
			return nil, err
		}
		got, err := kp.Solve[uint64](f, mul, sa, sb, kp.Params{Src: ff.NewSource(seed + 1), Subset: f.Modulus()})
		identical[name] = err == nil && ff.VecEqual[uint64](f, got, want)
	}

	for _, n := range ns {
		a := matrix.Random[uint64](f, src, n, n, f.Modulus())
		b := matrix.Random[uint64](f, src, n, n, f.Modulus())
		want := matrix.Classical[uint64]{}.Mul(f, a, b)
		var baseline time.Duration
		for _, name := range mulNames {
			mul, err := matrix.ByName[uint64](name)
			if err != nil {
				return nil, err
			}
			inst := matrix.NewInstrumented(mul)
			best := time.Duration(1 << 62)
			for r := 0; r < reps; r++ {
				start := time.Now()
				out := inst.Mul(f, a, b)
				if el := time.Since(start); el < best {
					best = el
				}
				if !out.Equal(f, want) {
					return nil, fmt.Errorf("E4m: %s product differs from classical at n=%d", name, n)
				}
			}
			if name == "classical" {
				baseline = best
			}
			speedup := "-"
			if baseline > 0 && name != "classical" {
				speedup = f2(float64(baseline) / float64(best))
			}
			snap := inst.Stats.Snapshot()
			t.AddRow(d(n), name, best.String(), fmt.Sprintf("%d", snap.FieldOps/snap.Calls),
				speedup, boolMark(identical[name]))
		}
	}
	t.AddNote("pool: %d shared workers; field-ops is the classical-equivalent count r·c·(2k−1) the paper's size bounds are stated in; solve identical = Theorem 4 under this multiplier reproduces the classical solution bit-for-bit from the same randomness stream (n = %d)",
		matrix.PoolWorkers(), solveN)
	return t, nil
}
