package exp

import (
	"errors"

	"repro/internal/charpoly"
	"repro/internal/ff"
	"repro/internal/kp"
	"repro/internal/matrix"
	"repro/internal/poly"
	"repro/internal/structured"
	"repro/internal/wiedemann"
)

// Operation-count experiments E5, E9, E11, E12: exact field-operation
// counts through the ff.Counting wrapper — the unit-cost measure of the
// paper's model, free of interface-dispatch and allocator noise.

// E5 compares the total work (sequential field operations ≈ processor ×
// time product) of the KP solver against the baselines the paper cites:
// Csanky/Leverrier (the paper: "exceeds by a factor of almost n the
// complexity of matrix multiplication"), division-free Berkowitz, and
// sequential Gaussian elimination (the work yardstick).
func E5(seed uint64, quick bool) (*Table, error) {
	base := ff.MustFp64(ff.PNTT62) // FFT-friendly: KP runs on its intended substrate
	src := ff.NewSource(seed)
	t := &Table{
		ID:         "E5",
		Title:      "Processor counts — KP work vs Csanky, Berkowitz, Gaussian",
		PaperClaim: "KP: O(n^ω log n) ops at polylog depth; Csanky ~n·n^ω; previous division-free ~n more",
		Columns: []string{"n", "KP solve", "Csanky solve", "Berkowitz cp", "LU solve",
			"Csanky/KP", "KP/LU"},
	}
	ns := []int{8, 16, 32, 64, 128}
	if quick {
		ns = []int{8, 16, 32}
	}
	for _, n := range ns {
		cf := ff.NewCounting[uint64](base)
		a := randNonsingularCnt(base, src, n)
		b := ff.SampleVec[uint64](base, src, n, ff.P31)
		rnd := kp.DrawRandomness[uint64](base, src, n, ff.P31)

		cf.Reset()
		if _, err := kp.SolveOnce[uint64](cf, matrix.Classical[uint64]{}, a, b, rnd); err != nil {
			return nil, err
		}
		kpOps := cf.Counts().Total()

		cf.Reset()
		if _, err := charpoly.SolveCsanky[uint64](cf, matrix.Classical[uint64]{}, a, b); err != nil {
			return nil, err
		}
		csankyOps := cf.Counts().Total()

		cf.Reset()
		charpoly.CharPolyBerkowitz[uint64](cf, a)
		berkOps := cf.Counts().Total()

		cf.Reset()
		if _, err := matrix.Solve[uint64](cf, a, b); err != nil {
			return nil, err
		}
		luOps := cf.Counts().Total()

		t.AddRow(d(n), u(kpOps), u(csankyOps), u(berkOps), u(luOps),
			f2(float64(csankyOps)/float64(kpOps)),
			f2(float64(kpOps)/float64(luOps)))
	}
	t.AddNote("Csanky/KP must grow ~linearly in n (the paper's processor gap); KP/LU is the polylog-factor overhead of depth-efficiency")
	return t, nil
}

// E9 measures the §5 small-characteristic story in two parts. First, on a
// single large-characteristic field (so both algorithms ride the same fast
// polynomial substrate), the Chistov-on-structured-blocks route of §5 costs
// a factor ≈ n more than the Theorem 3 circuit — the paper's display (12)
// versus (7). Second, over F₂ (characteristic ≤ n) Theorem 3's Leverrier
// step must refuse while the §5 route still delivers the correct
// characteristic polynomial.
func E9(seed uint64, quick bool) (*Table, error) {
	src := ff.NewSource(seed)
	t := &Table{
		ID:         "E9",
		Title:      "§5 — small characteristic: Chistov route vs Theorem 3",
		PaperClaim: "any characteristic at O(n³ log n loglog n) size — one factor n above Theorem 3",
		Columns: []string{"n", "Thm3 ops", "Chistov ops", "ratio", "ratio/n",
			"F2 ok", "Leverrier refused (F2)"},
	}
	ns := []int{16, 32, 64, 128}
	if quick {
		ns = []int{16, 32}
	}
	big := ff.MustFp64(ff.PNTT62)
	f2f := ff.MustFp64(2)
	for _, n := range ns {
		// Same field, same substrate: isolate the factor n.
		entries := ff.SampleVec[uint64](big, src, 2*n-1, 1<<30)
		cbig := ff.NewCounting[uint64](big)
		if _, err := structured.CharPoly[uint64](cbig, structured.NewToeplitz(entries)); err != nil {
			return nil, err
		}
		thm3 := cbig.Counts().Total()

		cbig.Reset()
		got, err := structured.CharPolySmallChar[uint64](cbig, structured.NewToeplitz(entries))
		if err != nil {
			return nil, err
		}
		chistov := cbig.Counts().Total()
		want, err := structured.CharPoly[uint64](big, structured.NewToeplitz(entries))
		if err != nil {
			return nil, err
		}
		if !poly.Equal[uint64](big, got, want) {
			return nil, errOpcountMismatch
		}

		// Characteristic 2: the §5 route works, Theorem 3 refuses.
		e2 := make([]uint64, 2*n-1)
		for i := range e2 {
			e2[i] = src.Uint64n(2)
		}
		tp2 := structured.NewToeplitz(e2)
		got2, err := structured.CharPolySmallChar[uint64](f2f, tp2)
		if err != nil {
			return nil, err
		}
		want2 := charpoly.CharPolyBerkowitz[uint64](f2f, tp2.Dense(f2f))
		f2ok := poly.Equal[uint64](f2f, got2, want2)
		_, errLev := structured.CharPoly[uint64](f2f, tp2)
		refused := errLev == charpoly.ErrSmallCharacteristic

		ratio := float64(chistov) / float64(thm3)
		t.AddRow(d(n), u(thm3), u(chistov), f2(ratio), f3(ratio/float64(n)),
			boolMark(f2ok), boolMark(refused))
	}
	t.AddNote("ratio/n settling to a constant reproduces the paper's extra factor n; the F2 columns exercise the small-characteristic case itself")
	return t, nil
}

var errOpcountMismatch = errors.New("exp: charpoly routes disagree")

// E11 reproduces Wiedemann's original motivation (§2): on sparse matrices
// the black-box solver beats Gaussian elimination once fill-in dominates,
// with the crossover moving as density grows.
func E11(seed uint64, quick bool) (*Table, error) {
	base := ff.MustFp64(ff.P31)
	src := ff.NewSource(seed)
	t := &Table{
		ID:         "E11",
		Title:      "Wiedemann vs Gaussian elimination on sparse systems",
		PaperClaim: "black-box solving costs O(n)·(cost of A·x) + O(n²) — wins on sparse inputs",
		Columns:    []string{"n", "density", "nnz", "Wiedemann ops", "LU ops", "LU/Wiedemann", "winner"},
	}
	type cfg struct {
		n         int
		densities []float64
	}
	cfgs := []cfg{
		{128, []float64{0.005, 0.02, 0.1, 0.5}},
		{256, []float64{0.005, 0.02, 0.1}},
		{512, []float64{0.005, 0.02}},
	}
	if quick {
		cfgs = []cfg{{96, []float64{0.01, 0.5}}}
	}
	for _, c := range cfgs {
		n := c.n
		for _, dens := range c.densities {
			cf := ff.NewCounting[uint64](base)
			sp := matrix.RandomSparse[uint64](base, src, n, dens, ff.P31)
			b := ff.SampleVec[uint64](base, src, n, ff.P31)

			cf.Reset()
			_, err := solveWiedemannCounted(cf, sp, b, src)
			if err != nil {
				return nil, err
			}
			wOps := cf.Counts().Total()

			cf.Reset()
			if _, err := matrix.Solve[uint64](cf, sp.Dense(base), b); err != nil {
				return nil, err
			}
			luOps := cf.Counts().Total()

			winner := "wiedemann"
			if luOps < wOps {
				winner = "gaussian"
			}
			t.AddRow(d(n), f3(dens), d(sp.NNZ()), u(wOps), u(luOps),
				f2(float64(luOps)/float64(wOps)), winner)
		}
	}
	t.AddNote("Wiedemann wins at low density and loses once nnz ~ n²; the crossover is the paper's sparse-vs-dense trade")
	return t, nil
}

func solveWiedemannCounted(cf *ff.Counting[uint64], sp *matrix.Sparse[uint64], b []uint64, src *ff.Source) ([]uint64, error) {
	return wiedemann.Solve[uint64](cf, matrix.SparseBox[uint64]{M: sp}, b, src, ff.P31, 0)
}

// E12 cross-validates the §5 structured-matrix GCD against the Euclidean
// reference, with operation counts.
func E12(seed uint64, quick bool) (*Table, error) {
	base := ff.MustFp64(ff.P31)
	src := ff.NewSource(seed)
	t := &Table{
		ID:         "E12",
		Title:      "§5 — polynomial GCD via Sylvester matrices",
		PaperClaim: "GCD (char 0 or > n) reducible to structured linear algebra",
		Columns: []string{"deg a", "deg b", "deg gcd", "Sylvester ops", "Euclid ops",
			"match", "known-deg match", "resultant match", "bb-resultant match"},
	}
	cases := [][3]int{{8, 6, 2}, {16, 12, 4}, {24, 24, 8}, {40, 36, 10}}
	if quick {
		cases = cases[:2]
	}
	for _, c := range cases {
		da, db, dg := c[0], c[1], c[2]
		g := randPolyCnt(src, dg)
		a := poly.Mul[uint64](base, g, randPolyCnt(src, da-dg))
		b := poly.Mul[uint64](base, g, randPolyCnt(src, db-dg))

		cf := ff.NewCounting[uint64](base)
		sylGCD, err := kp.GCDSylvester[uint64](cf, a, b)
		if err != nil {
			return nil, err
		}
		sylOps := cf.Counts().Total()

		cf.Reset()
		eucGCD, err := poly.GCD[uint64](cf, a, b)
		if err != nil {
			return nil, err
		}
		eucOps := cf.Counts().Total()

		match := poly.Equal[uint64](base, sylGCD, eucGCD)

		// Branch-free known-degree recovery (§5's circuit-friendly form).
		kdGCD, err := kp.GCDKnownDegree[uint64](base, a, b, poly.Deg[uint64](base, eucGCD))
		if err != nil {
			return nil, err
		}
		kdMatch := poly.Equal[uint64](base, kdGCD, eucGCD)

		rs, err := kp.ResultantSylvester[uint64](base, a, b)
		if err != nil {
			return nil, err
		}
		re, err := poly.Resultant[uint64](base, a, b)
		if err != nil {
			return nil, err
		}
		resMatch := base.IsZero(rs) == base.IsZero(re)

		// Black-box resultant through the structured Sylvester operator.
		rw, err := kp.ResultantWiedemann[uint64](base, a, b, kp.Params{Src: src, Subset: ff.P31})
		if err != nil {
			return nil, err
		}
		bbMatch := base.Equal(rw, rs)

		t.AddRow(d(poly.Deg[uint64](base, a)), d(poly.Deg[uint64](base, b)),
			d(poly.Deg[uint64](base, sylGCD)), u(sylOps), u(eucOps),
			boolMark(match), boolMark(kdMatch), boolMark(resMatch), boolMark(bbMatch))
	}
	t.AddNote("the structured route costs more sequential ops — its value is polylog depth, which Euclid's remainder chain cannot offer")
	return t, nil
}

func randPolyCnt(src *ff.Source, deg int) []uint64 {
	p := make([]uint64, deg+1)
	for i := range p {
		p[i] = src.Uint64n(ff.P31)
	}
	p[deg] = 1 + src.Uint64n(ff.P31-1)
	return p
}

func randNonsingularCnt(f ff.Fp64, src *ff.Source, n int) *matrix.Dense[uint64] {
	for {
		a := matrix.Random[uint64](f, src, n, n, ff.P31)
		if d, _ := matrix.Det[uint64](f, a); !f.IsZero(d) {
			return a
		}
	}
}
