package exp

import (
	"errors"

	"repro/internal/ff"
	"repro/internal/kp"
	"repro/internal/matrix"
)

// E14 measures the paper's small-field remedy: "For Galois fields K with
// card(K) < 3n², the algorithm is performed in an algebraic extension L
// over K, so that the failure probability can be bounded away from 0."
// Over F_101 with n = 8 the bound 3n²/|S| exceeds 1 (the direct algorithm
// may fail often or always); lifting to F_{101^k} restores a failure
// probability ≈ 0. The table reports per-attempt failure rates of the
// branch-free pipeline with and without lifting.
func E14(seed uint64, quick bool) (*Table, error) {
	base := ff.MustFp64(101)
	src := ff.NewSource(seed)
	t := &Table{
		ID:         "E14",
		Title:      "§2 — small Galois fields: direct vs extension-lifted solving",
		PaperClaim: "card(K) < 3n² ⇒ run in an extension L ⊇ K to bound the failure probability away from 0",
		Columns: []string{"n", "3n²/|K|", "direct fail rate", "lifted fail rate",
			"lifted k", "solutions verified"},
	}
	ns := []int{6, 8, 10}
	trials := 60
	if quick {
		ns = []int{6, 8}
		trials = 20
	}
	for _, n := range ns {
		directFail, liftedFail, verified, total := 0, 0, 0, 0
		k := kp.ExtensionDegree(101, n, 0.25)
		for trial := 0; trial < trials; trial++ {
			a := matrix.Random[uint64](base, src, n, n, 101)
			if d, _ := matrix.Det[uint64](base, a); base.IsZero(d) {
				continue
			}
			total++
			b := ff.SampleVec[uint64](base, src, n, 101)
			// Direct: one branch-free attempt over F_101 itself.
			rnd := kp.DrawRandomness[uint64](base, src, n, 101)
			x, err := kp.SolveOnce[uint64](base, matrix.Classical[uint64]{}, a, b, rnd)
			if err != nil || !ff.VecEqual[uint64](base, a.MulVec(base, x), b) {
				directFail++
			}
			// Lifted: the §2 remedy (Las Vegas driver with a couple of
			// retries; count full failures).
			lx, err := kp.SolveViaExtension(base, a, b, src, 0.25, 3)
			if err != nil {
				if !errors.Is(err, kp.ErrRetriesExhausted) {
					return nil, err
				}
				liftedFail++
				continue
			}
			if ff.VecEqual[uint64](base, a.MulVec(base, lx), b) {
				verified++
			}
		}
		if total == 0 {
			continue
		}
		bound := 3 * float64(n) * float64(n) / 101
		t.AddRow(d(n), f2(bound), ratio(directFail, total), ratio(liftedFail, total),
			d(k), ratio(verified, total-liftedFail))
	}
	t.AddNote("direct attempts run the same branch-free pipeline with |S| = |K| = 101, where the paper's bound is vacuous; the lifted runs sample from F_{101^k}")
	return t, nil
}
