package exp

import (
	"errors"
	"math"

	"repro/internal/ff"
	"repro/internal/kp"
	"repro/internal/matrix"
	"repro/internal/poly"
	"repro/internal/wiedemann"
)

// Probability experiments E1, E2 and E13. All run over F_{2¹⁷−1} with
// deliberately small sampling subsets so failures are actually observable;
// the paper's bounds must hold as inequalities at every measured point.

// E1 measures Lemma 2: Prob(f_u^{A,b} = f^A) ≥ 1 − 2·deg(f^A)/|S|.
// For each n and |S|, random matrices with full minimum polynomial
// (companion matrices of random monic polynomials, so deg f^A = n exactly)
// are projected with random u, b from S and the failure frequency
// deg(f_u^{A,b}) < n is compared against the bound.
func E1(seed uint64, quick bool) (*Table, error) {
	f := ff.MustFp64(ff.P17)
	src := ff.NewSource(seed)
	t := &Table{
		ID:         "E1",
		Title:      "Lemma 2 — random projections preserve the minimum polynomial",
		PaperClaim: "Prob(f_u^{A,b} = f^A) ≥ 1 − 2·deg(f^A)/|S| for u, b uniform over S",
		Columns:    []string{"n", "|S|", "trials", "failures", "measured", "bound 2n/|S|", "holds"},
	}
	ns := []int{4, 8, 16}
	trials := 2000
	if quick {
		ns = []int{4, 8}
		trials = 300
	}
	for _, n := range ns {
		// Include tiny subsets so failures are actually observable: at
		// |S| = 2 the bound is vacuous (≥ 1) but the measured rate shows
		// how loose Lemma 2 is in practice.
		for _, subset := range []uint64{2, 4, uint64(2 * n), uint64(16 * n)} {
			failures := 0
			for trial := 0; trial < trials; trial++ {
				// Companion matrix of a random monic polynomial with
				// non-zero constant term: minpoly = charpoly, degree n.
				a := randomCompanion(f, src, n)
				u := ff.SampleVec[uint64](f, src, n, subset)
				b := ff.SampleVec[uint64](f, src, n, subset)
				mp, err := wiedemann.MinPolySeq[uint64](f, matrix.DenseBox[uint64]{M: a}, u, b)
				if err != nil {
					return nil, err
				}
				if poly.Deg[uint64](f, mp) < n {
					failures++
				}
			}
			measured := float64(failures) / float64(trials)
			bound := 2 * float64(n) / float64(subset)
			holds := measured <= bound+confidence(trials)
			t.AddRow(d(n), u(subset), d(trials), d(failures), f3(measured),
				f3(math.Min(bound, 1)), boolMark(holds))
		}
	}
	t.AddNote("matrices are companion matrices, so deg f^A = n exactly; field F_%d", ff.P17)
	return t, nil
}

// E2 measures Theorem 2 and equation (2): the Hankel preconditioner makes
// every leading principal minor of A·H non-zero with probability
// ≥ 1 − n(n−1)/(2|S|), and the full pipeline condition deg f̃ = n ∧
// f̃(0) ≠ 0 fails with probability ≤ 3n²/|S| on non-singular A.
func E2(seed uint64, quick bool) (*Table, error) {
	f := ff.MustFp64(ff.P17)
	src := ff.NewSource(seed)
	t := &Table{
		ID:         "E2",
		Title:      "Theorem 2 + eq. (2) — preconditioner success probabilities",
		PaperClaim: "minors of AH all ≠ 0 w.p. ≥ 1 − n(n−1)/(2|S|); full failure ≤ 3n²/|S|",
		Columns: []string{"n", "|S|", "trials", "minor fail", "bound n(n−1)/2|S|",
			"pipeline fail", "bound 3n²/|S|", "holds"},
	}
	ns := []int{4, 8}
	trials := 600
	if quick {
		ns = []int{4}
		trials = 150
	}
	for _, n := range ns {
		for _, subset := range []uint64{uint64(2 * n * n), uint64(12 * n * n)} {
			minorFail, pipeFail, valid := 0, 0, 0
			for trial := 0; trial < trials; trial++ {
				a := matrix.Random[uint64](f, src, n, n, ff.P17)
				if det, _ := matrix.Det[uint64](f, a); f.IsZero(det) {
					continue
				}
				valid++
				h := ff.SampleVec[uint64](f, src, 2*n-1, subset)
				ah := matrix.Mul[uint64](f, a, matrix.HankelDense[uint64](f, h))
				ok, err := matrix.AllLeadingMinorsNonZero[uint64](f, ah)
				if err != nil {
					return nil, err
				}
				if !ok {
					minorFail++
				}
				// Full pipeline condition with fresh D, u, b.
				p := wiedemann.Precondition[uint64](f, matrix.DenseBox[uint64]{M: a}, src, subset)
				u := ff.SampleVec[uint64](f, src, n, subset)
				b := ff.SampleVec[uint64](f, src, n, subset)
				mp, err := wiedemann.MinPolySeq[uint64](f, p.Box, u, b)
				if err != nil {
					return nil, err
				}
				if poly.Deg[uint64](f, mp) < n || f.IsZero(poly.Coef[uint64](f, mp, 0)) {
					pipeFail++
				}
			}
			if valid == 0 {
				continue
			}
			mRate := float64(minorFail) / float64(valid)
			pRate := float64(pipeFail) / float64(valid)
			mBound := float64(n*(n-1)) / (2 * float64(subset))
			pBound := 3 * float64(n) * float64(n) / float64(subset)
			holds := mRate <= mBound+confidence(valid) && pRate <= pBound+confidence(valid)
			t.AddRow(d(n), u(subset), d(valid), f3(mRate), f3(mBound),
				f3(pRate), f3(math.Min(pBound, 1)), boolMark(holds))
		}
	}
	return t, nil
}

// E13 measures the §5 extensions: rank recovery, nullspace dimension and
// singular-solve success on matrices of planted rank, as |S| shrinks.
func E13(seed uint64, quick bool) (*Table, error) {
	f := ff.MustFp64(ff.P17)
	src := ff.NewSource(seed)
	t := &Table{
		ID:         "E13",
		Title:      "§5 — rank, nullspace, singular systems (verified outputs)",
		PaperClaim: "randomized preconditioning reduces rank/nullspace/singular solve to non-singular leading blocks",
		Columns:    []string{"n", "rank r", "trials", "rank ok", "nullspace ok", "singular-solve ok"},
	}
	cases := []struct{ n, r int }{{6, 3}, {8, 5}, {10, 2}}
	trials := 60
	if quick {
		cases = cases[:2]
		trials = 15
	}
	for _, tc := range cases {
		rankOK, nsOK, solveOK := 0, 0, 0
		for trial := 0; trial < trials; trial++ {
			a := plantedRank(f, src, tc.n, tc.r)
			r, err := kp.Rank[uint64](f, a, kp.Params{Src: src, Subset: ff.P17})
			if err != nil {
				return nil, err
			}
			if r == tc.r {
				rankOK++
			}
			ns, err := kp.Nullspace[uint64](f, a, kp.Params{Src: src, Subset: ff.P17})
			if err == nil && ns.Cols == tc.n-tc.r && matrix.Mul[uint64](f, a, ns).IsZero(f) {
				nsOK++
			}
			y := ff.SampleVec[uint64](f, src, tc.n, ff.P17)
			b := a.MulVec(f, y)
			x, err := kp.SolveSingular[uint64](f, a, b, kp.Params{Src: src, Subset: ff.P17})
			if err == nil && ff.VecEqual[uint64](f, a.MulVec(f, x), b) {
				solveOK++
			} else if errors.Is(err, kp.ErrInconsistent) {
				// impossible for a planted consistent system: count as fail
				_ = err
			}
		}
		t.AddRow(d(tc.n), d(tc.r), d(trials),
			ratio(rankOK, trials), ratio(nsOK, trials), ratio(solveOK, trials))
	}
	t.AddNote("all outputs are verified before being counted, so every non-ok is a Las Vegas retry exhaustion, never a wrong answer")
	return t, nil
}

func randomCompanion(f ff.Fp64, src *ff.Source, n int) *matrix.Dense[uint64] {
	a := matrix.NewDense[uint64](f, n, n)
	for i := 1; i < n; i++ {
		a.Set(i, i-1, f.One())
	}
	for i := 0; i < n; i++ {
		a.Set(i, n-1, src.Uint64n(f.Modulus()))
	}
	// Non-zero constant term keeps the matrix non-singular.
	a.Set(0, n-1, 1+src.Uint64n(f.Modulus()-1))
	return a
}

func plantedRank(f ff.Fp64, src *ff.Source, n, r int) *matrix.Dense[uint64] {
	if r == 0 {
		return matrix.NewDense[uint64](f, n, n)
	}
	for {
		l := matrix.Random[uint64](f, src, n, r, ff.P17)
		rm := matrix.Random[uint64](f, src, r, n, ff.P17)
		m := matrix.Mul[uint64](f, l, rm)
		if got, _ := matrix.Rank[uint64](f, m); got == r {
			return m
		}
	}
}

// confidence is a crude sampling slack (3 standard deviations of a
// worst-case Bernoulli) added to the bound before declaring violation.
func confidence(trials int) float64 {
	return 3 * 0.5 / math.Sqrt(float64(trials))
}

func boolMark(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}

func ratio(num, den int) string {
	return f3(float64(num) / float64(den))
}
