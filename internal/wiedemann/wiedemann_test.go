package wiedemann

import (
	"testing"

	"repro/internal/ff"
	"repro/internal/matrix"
	"repro/internal/poly"
)

var fp = ff.MustFp64(ff.P31)

func denseBox(a *matrix.Dense[uint64]) matrix.BlackBox[uint64] {
	return matrix.DenseBox[uint64]{M: a}
}

func TestMinPolyDividesCharPoly(t *testing.T) {
	f := fp
	src := ff.NewSource(101)
	for _, n := range []int{2, 4, 7, 10} {
		a := matrix.Random[uint64](f, src, n, n, ff.P31)
		mp, err := MinPoly[uint64](f, denseBox(a), src, ff.P31)
		if err != nil {
			t.Fatal(err)
		}
		// mp(A)·b projects to zero on the sequence; and since |S| is huge,
		// mp = f^A whp, hence mp(A) = 0 as a matrix.
		acc := matrix.NewDense[uint64](f, n, n)
		pow := matrix.Identity[uint64](f, n)
		for k := 0; k <= poly.Deg[uint64](f, mp); k++ {
			acc = acc.Add(f, pow.Scale(f, poly.Coef[uint64](f, mp, k)))
			pow = matrix.Mul[uint64](f, pow, a)
		}
		if !acc.IsZero(f) {
			t.Fatalf("n=%d: minimum polynomial does not annihilate A", n)
		}
	}
}

func TestIsSingular(t *testing.T) {
	f := fp
	src := ff.NewSource(103)
	// Singular: rank-1 matrix.
	n := 6
	col := ff.SampleVec[uint64](f, src, n, ff.P31)
	row := ff.SampleVec[uint64](f, src, n, ff.P31)
	sing := matrix.NewDense[uint64](f, n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sing.Set(i, j, f.Mul(col[i], row[j]))
		}
	}
	got, err := IsSingular[uint64](f, denseBox(sing), src, ff.P31)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("rank-1 matrix not detected as singular")
	}
	// Non-singular: identity plus random diagonal.
	d := matrix.Identity[uint64](f, n)
	got, err = IsSingular[uint64](f, denseBox(d), src, ff.P31)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("identity detected as singular")
	}
}

func TestDetAgainstLU(t *testing.T) {
	f := fp
	src := ff.NewSource(105)
	for _, n := range []int{1, 2, 3, 5, 8, 12} {
		a := matrix.Random[uint64](f, src, n, n, ff.P31)
		want, err := matrix.Det[uint64](f, a)
		if err != nil {
			t.Fatal(err)
		}
		if f.IsZero(want) {
			continue
		}
		got, err := Det[uint64](f, denseBox(a), src, ff.P31, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("n=%d: Wiedemann det = %d, LU det = %d", n, got, want)
		}
	}
}

func TestDetSingularExhausts(t *testing.T) {
	f := fp
	src := ff.NewSource(107)
	s := matrix.FromRows[uint64](f, [][]int64{{1, 2, 3}, {2, 4, 6}, {3, 6, 9}})
	if _, err := Det[uint64](f, denseBox(s), src, ff.P31, 3); err != ErrRetriesExhausted {
		t.Fatalf("singular det err = %v, want ErrRetriesExhausted", err)
	}
}

func TestSolveDense(t *testing.T) {
	f := fp
	src := ff.NewSource(109)
	for _, n := range []int{1, 2, 4, 8, 16} {
		a := matrix.Random[uint64](f, src, n, n, ff.P31)
		if d, _ := matrix.Det[uint64](f, a); f.IsZero(d) {
			continue
		}
		b := ff.SampleVec[uint64](f, src, n, ff.P31)
		x, err := Solve[uint64](f, denseBox(a), b, src, ff.P31, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !ff.VecEqual[uint64](f, a.MulVec(f, x), b) {
			t.Fatalf("n=%d: Ax != b", n)
		}
	}
}

func TestSolveSparse(t *testing.T) {
	f := fp
	src := ff.NewSource(111)
	n := 60
	s := matrix.RandomSparse[uint64](f, src, n, 0.05, ff.P31)
	b := ff.SampleVec[uint64](f, src, n, ff.P31)
	x, err := Solve[uint64](f, matrix.SparseBox[uint64]{M: s}, b, src, ff.P31, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ff.VecEqual[uint64](f, s.Apply(f, x), b) {
		t.Fatal("sparse Wiedemann solve wrong")
	}
}

func TestSolveZeroRHS(t *testing.T) {
	f := fp
	src := ff.NewSource(112)
	a := matrix.Random[uint64](f, src, 4, 4, ff.P31)
	x, err := Solve[uint64](f, denseBox(a), make([]uint64, 4), src, ff.P31, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ff.VecIsZero[uint64](f, x) {
		t.Fatal("zero rhs must give zero solution")
	}
}

func TestPreconditionedBox(t *testing.T) {
	f := fp
	src := ff.NewSource(113)
	n := 7
	a := matrix.Random[uint64](f, src, n, n, ff.P31)
	p := Precondition[uint64](f, denseBox(a), src, ff.P31)
	// Ã·x computed by the composed box equals the explicit product.
	hd := p.H.Dense(f)
	dd := matrix.Diagonal[uint64](f, p.D)
	atilde := matrix.Mul[uint64](f, matrix.Mul[uint64](f, a, hd), dd)
	x := ff.SampleVec[uint64](f, src, n, ff.P31)
	if !ff.VecEqual[uint64](f, p.Box.Apply(f, x), atilde.MulVec(f, x)) {
		t.Fatal("preconditioned box disagrees with explicit Ã")
	}
	// det(D) helper.
	dDet, err := matrix.Det[uint64](f, dd)
	if err != nil {
		t.Fatal(err)
	}
	if p.DetD(f) != dDet {
		t.Fatal("DetD wrong")
	}
}

// TestEquation2Probability spot-checks the paper's bound (2): with
// |S| = 3n²/ε the failure rate of deg(f̃)=n ∧ f̃(0)≠0 stays below ε for
// non-singular A. Uses a small field subset so failures are observable.
func TestEquation2Probability(t *testing.T) {
	f := ff.MustFp64(ff.P17)
	src := ff.NewSource(115)
	n := 4
	const trials = 400
	subset := uint64(3 * n * n * 4) // ε = 1/4
	failures := 0
	valid := 0
	for trial := 0; trial < trials; trial++ {
		a := matrix.Random[uint64](f, src, n, n, ff.P17)
		if d, _ := matrix.Det[uint64](f, a); f.IsZero(d) {
			continue
		}
		valid++
		p := Precondition[uint64](f, denseBox(a), src, subset)
		u := ff.SampleVec[uint64](f, src, n, subset)
		b := ff.SampleVec[uint64](f, src, n, subset)
		mp, err := MinPolySeq[uint64](f, p.Box, u, b)
		if err != nil {
			t.Fatal(err)
		}
		if poly.Deg[uint64](f, mp) < n || f.IsZero(poly.Coef[uint64](f, mp, 0)) {
			failures++
		}
	}
	if valid == 0 {
		t.Fatal("no non-singular instances")
	}
	rate := float64(failures) / float64(valid)
	if rate > 0.25 {
		t.Fatalf("failure rate %.3f exceeds the ε=0.25 bound of equation (2)", rate)
	}
}

func TestLemma2SequenceDegree(t *testing.T) {
	// For random u, b over a large subset the projected minimum polynomial
	// reaches the full minimum polynomial of A (here: a companion matrix
	// with known minpoly = charpoly of degree n).
	f := fp
	src := ff.NewSource(117)
	n := 6
	// Companion matrix of λⁿ − 1 (minpoly degree n).
	a := matrix.NewDense[uint64](f, n, n)
	for i := 1; i < n; i++ {
		a.Set(i, i-1, f.One())
	}
	a.Set(0, n-1, f.One())
	mp, err := MinPoly[uint64](f, denseBox(a), src, ff.P31)
	if err != nil {
		t.Fatal(err)
	}
	if poly.Deg[uint64](f, mp) != n {
		t.Fatalf("companion minpoly degree %d, want %d", poly.Deg[uint64](f, mp), n)
	}
	want := make([]uint64, n+1)
	want[0] = f.Neg(f.One())
	want[n] = f.One()
	if !poly.Equal[uint64](f, mp, want) {
		t.Fatalf("companion minpoly = %s", poly.String[uint64](f, mp))
	}
}

func TestMinPolyCertified(t *testing.T) {
	f := fp
	src := ff.NewSource(119)
	// Matrix with known small minimum polynomial: block diagonal of two
	// identical companion blocks — minpoly degree n/2 < n = charpoly degree.
	n := 8
	blockPoly := []uint64{3, 1, 0, 2, 1} // λ⁴ + 2λ³ + λ + 3
	a := matrix.NewDense[uint64](f, n, n)
	for blk := 0; blk < 2; blk++ {
		off := blk * 4
		for i := 1; i < 4; i++ {
			a.Set(off+i, off+i-1, f.One())
		}
		for i := 0; i < 4; i++ {
			a.Set(off+i, off+3, f.Neg(blockPoly[i]))
		}
	}
	mp, err := MinPolyCertified[uint64](f, denseBox(a), src, ff.P31, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !poly.Equal[uint64](f, mp, blockPoly) {
		t.Fatalf("certified minpoly = %s, want the planted block polynomial",
			poly.String[uint64](f, mp))
	}
	// Identity: minpoly λ − 1 regardless of n.
	id := matrix.Identity[uint64](f, 6)
	mp, err = MinPolyCertified[uint64](f, denseBox(id), src, ff.P31, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !poly.Equal[uint64](f, mp, poly.FromInt64[uint64](f, []int64{-1, 1})) {
		t.Fatalf("identity minpoly = %s", poly.String[uint64](f, mp))
	}
}
