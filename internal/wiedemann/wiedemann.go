// Package wiedemann implements Wiedemann's (1986) randomized black-box
// linear algebra — the first pillar of the Kaltofen–Pan construction (§2):
// project the matrix into the scalar sequence {u·Aⁱ·b}, read its minimum
// polynomial, and recover determinants and solutions from it. The
// randomized preconditioning Ã = A·H·D (Theorem 2 + equation (1)) makes
// the minimum polynomial equal the characteristic polynomial with
// probability ≥ 1 − 3n²/|S| (equation (2)).
package wiedemann

import (
	"fmt"
	"time"

	"repro/internal/errs"
	"repro/internal/ff"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/poly"
	"repro/internal/seq"
	"repro/internal/structured"
)

// solveAttemptsHist is the shared attempts-per-driver-call distribution
// (one "solve.attempts" family across the kp and wiedemann routes).
var solveAttemptsHist = obs.NewHistogram("solve.attempts")

// recordAttempt reports one black-box Las Vegas attempt to the telemetry
// pipeline (the statistics behind obs.BoundsReport).
func recordAttempt(solver string, n int, subset uint64, outcome, phase string, wall time.Duration) {
	obs.RecordAttempt(obs.Attempt{
		Solver: solver, N: n, Subset: subset,
		Outcome: outcome, Phase: phase, Wall: wall,
	})
}

// recordDone closes one driver call: the retry-count sample and the
// flight-recorder entry.
func recordDone(solver string, n int, subset uint64, attempts int, start time.Time, err error) {
	solveAttemptsHist.Observe(int64(attempts))
	outcome := "ok"
	if err != nil {
		outcome = err.Error()
	}
	obs.RecordFlight(obs.FlightEntry{
		Op: solver, N: n, Subset: subset,
		Attempts: attempts, Outcome: outcome, Wall: time.Since(start),
	})
}

// ErrRetriesExhausted is returned by the Las Vegas drivers when every
// randomized attempt failed — overwhelmingly because the input is singular,
// since per-trial failure on non-singular input is ≤ 3n²/|S|. It is the
// shared errs.ErrRetriesExhausted sentinel, so errors.Is matches it against
// kp.ErrRetriesExhausted.
var ErrRetriesExhausted = errs.ErrRetriesExhausted

// DefaultRetries is the number of independent random attempts the Las
// Vegas drivers make before giving up.
const DefaultRetries = 5

// MinPolySeq returns the minimum polynomial of the projected sequence
// {u·Aⁱ·b}, i = 0..2n−1 — the polynomial f_u^{A,b} of the paper. With u, b
// uniform over a subset of size s it equals the minimum polynomial f^A of A
// with probability ≥ 1 − 2·deg(f^A)/s (Lemma 2).
func MinPolySeq[E any](f ff.Field[E], a matrix.BlackBox[E], u, b []E) ([]E, error) {
	n, _ := a.Dims()
	sp := obs.StartPhase(obs.PhaseKrylov)
	vs := matrix.KrylovIterative(f, a, b, 2*n)
	s := matrix.ProjectSequence(f, u, vs)
	sp.End()
	sp = obs.StartPhase(obs.PhaseMinPoly)
	defer sp.End()
	return seq.MinPoly(f, s)
}

// MinPoly returns (with high probability) the minimum polynomial f^A of the
// black box A, using fresh random projections u, b from the canonical
// subset of size subset.
func MinPoly[E any](f ff.Field[E], a matrix.BlackBox[E], src *ff.Source, subset uint64) ([]E, error) {
	n, _ := a.Dims()
	u := ff.SampleVec(f, src, n, subset)
	b := ff.SampleVec(f, src, n, subset)
	return MinPolySeq(f, a, u, b)
}

// MinPolyCertified returns the minimum polynomial of a dense matrix as a
// *certified* (Las Vegas) result: the projected candidate f_u^{A,b} always
// divides f^A, and a divisor of f^A that annihilates A must equal f^A — so
// checking f(A)·v = 0 on a fresh random vector (and retrying the
// projection on failure) upgrades Lemma 2's high-probability statement to
// a guarantee. Cost per attempt: 2n black-box products plus deg(f) more
// for the certificate.
func MinPolyCertified[E any](f ff.Field[E], a matrix.BlackBox[E], src *ff.Source, subset uint64, retries int) ([]E, error) {
	n, _ := a.Dims()
	if retries <= 0 {
		retries = DefaultRetries
	}
	for attempt := 0; attempt < retries; attempt++ {
		mp, err := MinPoly(f, a, src, subset)
		if err != nil {
			return nil, err
		}
		// Certificate: f(A)·v = 0 for several random v. One v catches a
		// proper divisor with probability ≥ 1 − deg gap/|S|; use two.
		ok := true
		for check := 0; check < 2 && ok; check++ {
			v := ff.SampleVec(f, src, n, subset)
			if !ff.VecIsZero(f, applyPoly(f, a, mp, v)) {
				ok = false
			}
		}
		if ok {
			return mp, nil
		}
	}
	return nil, ErrRetriesExhausted
}

// applyPoly returns p(A)·v using deg(p) black-box products. The Horner-style
// accumulation runs through the in-place fused kernels: one accumulator
// vector for the whole evaluation instead of two fresh slices per term.
func applyPoly[E any](f ff.Field[E], a matrix.BlackBox[E], p []E, v []E) []E {
	acc := make([]E, len(v))
	ff.VecScaleInto(f, acc, poly.Coef(f, p, 0), v)
	cur := v
	for i := 1; i < len(p); i++ {
		cur = a.Apply(f, cur)
		ff.VecMulAddInto(f, acc, poly.Coef(f, p, i), cur)
	}
	return acc
}

// IsSingular is the paper's Las Vegas singularity test: if λ divides
// f_u^{A,b} then det(A) = 0 is certain (0 is an eigenvalue); otherwise A is
// declared non-singular, wrongly so with probability ≤ ε for subset size
// ≥ 2n/ε on a singular input.
func IsSingular[E any](f ff.Field[E], a matrix.BlackBox[E], src *ff.Source, subset uint64) (bool, error) {
	mp, err := MinPoly(f, a, src, subset)
	if err != nil {
		return false, err
	}
	return f.IsZero(poly.Coef(f, mp, 0)), nil
}

// diagBox applies a diagonal matrix as a black box.
type diagBox[E any] struct{ d []E }

func (b diagBox[E]) Dims() (int, int) { return len(b.d), len(b.d) }
func (b diagBox[E]) Apply(f ff.Field[E], x []E) []E {
	out := make([]E, len(x))
	for i := range x {
		out[i] = f.Mul(b.d[i], x[i])
	}
	return out
}

// Preconditioned bundles Ã = A·H·D as a black box together with the random
// data needed to undo the preconditioning.
type Preconditioned[E any] struct {
	Box matrix.BlackBox[E]
	H   structured.Hankel[E]
	D   []E
	N   int
}

// Precondition draws the random Hankel and diagonal factors of §2
// (Theorem 2 + equation (1)) and returns Ã as a composed black box: one
// Ã·x costs one A-product plus O(M(n)) for the structured factors.
func Precondition[E any](f ff.Field[E], a matrix.BlackBox[E], src *ff.Source, subset uint64) *Preconditioned[E] {
	sp := obs.StartPhase(obs.PhasePrecondition)
	defer sp.End()
	n, _ := a.Dims()
	h := structured.Hankel[E]{N: n, D: ff.SampleVec(f, src, 2*n-1, subset)}
	d := make([]E, n)
	for i := range d {
		d[i] = ff.SampleNonZero(f, src, subset)
	}
	return &Preconditioned[E]{
		Box: matrix.ComposedBox[E]{Boxes: []matrix.BlackBox[E]{a, h, diagBox[E]{d}}},
		H:   h,
		D:   d,
		N:   n,
	}
}

// DetD returns det(D) = ∏ dᵢ.
func (p *Preconditioned[E]) DetD(f ff.Field[E]) E {
	prod := f.One()
	for _, v := range p.D {
		prod = f.Mul(prod, v)
	}
	return prod
}

// Det returns det(A) for a non-singular black box by the paper's §2
// algorithm: compute f̃ = f_u^{Ã,b} for Ã = AHD; if deg f̃ = n and
// f̃(0) ≠ 0 then det(λI−Ã) = f̃ and
//
//	det(A) = (−1)ⁿ·f̃(0) / (det(H)·det(D)),
//
// with det(H) from the Toeplitz characteristic-polynomial circuit
// (Theorem 3 on the mirror of H). Unlucky randomness is retried; singular
// inputs exhaust the retries. Requires characteristic 0 or > n for the
// det(H) step.
func Det[E any](f ff.Field[E], a matrix.BlackBox[E], src *ff.Source, subset uint64, retries int) (E, error) {
	var zero E
	n, _ := a.Dims()
	if retries <= 0 {
		retries = DefaultRetries
	}
	started := time.Now()
	for attempt := 0; attempt < retries; attempt++ {
		astart := time.Now()
		p := Precondition(f, a, src, subset)
		mp, err := MinPoly(f, p.Box, src, subset)
		if err != nil {
			recordAttempt("wiedemann.det", n, subset, obs.OutcomeError, obs.PhaseMinPoly, time.Since(astart))
			recordDone("wiedemann.det", n, subset, attempt+1, started, err)
			return zero, err
		}
		if poly.Deg(f, mp) < n || f.IsZero(poly.Coef(f, mp, 0)) {
			// Unlucky randomness, or singular input: the projected minimum
			// polynomial misses degree n or has zero constant term.
			recordAttempt("wiedemann.det", n, subset, obs.OutcomeDegenerate, obs.PhaseMinPoly, time.Since(astart))
			continue
		}
		// det(Ã) = (−1)ⁿ·charpoly(0) = (−1)ⁿ·mp(0).
		detTilde := poly.Coef(f, mp, 0)
		if n%2 == 1 {
			detTilde = f.Neg(detTilde)
		}
		detH, err := structured.DetHankel(f, p.H)
		if err != nil {
			recordAttempt("wiedemann.det", n, subset, obs.OutcomeError, obs.PhaseBacksolve, time.Since(astart))
			recordDone("wiedemann.det", n, subset, attempt+1, started, err)
			return zero, err
		}
		den := f.Mul(detH, p.DetD(f))
		// f̃(0) ≠ 0 implies Ã non-singular, hence det(H), det(D) ≠ 0 and
		// "the division is possible".
		d, err := f.Div(detTilde, den)
		if err != nil {
			err = fmt.Errorf("wiedemann: inconsistent preconditioner determinant: %w", err)
			recordAttempt("wiedemann.det", n, subset, obs.OutcomeDivZero, obs.PhaseBacksolve, time.Since(astart))
			recordDone("wiedemann.det", n, subset, attempt+1, started, err)
			return zero, err
		}
		recordAttempt("wiedemann.det", n, subset, obs.OutcomeSuccess, "", time.Since(astart))
		recordDone("wiedemann.det", n, subset, attempt+1, started, nil)
		return d, nil
	}
	recordDone("wiedemann.det", n, subset, retries, started, ErrRetriesExhausted)
	return zero, ErrRetriesExhausted
}

// Solve solves A·x = b for a non-singular black box by Wiedemann's method:
// from the minimum polynomial m(λ) = λᵈ + c_{d−1}λ^{d−1} + … + c₀ of the
// Krylov sequence {Aⁱb} (c₀ ≠ 0 for non-singular A),
//
//	x = −(1/c₀)·(A^{d−1}b + c_{d−1}A^{d−2}b + … + c₁b).
//
// The result is verified against A·x = b, so a returned solution is always
// correct (Las Vegas); unlucky projections are retried.
func Solve[E any](f ff.Field[E], a matrix.BlackBox[E], b []E, src *ff.Source, subset uint64, retries int) ([]E, error) {
	n, _ := a.Dims()
	if len(b) != n {
		panic("wiedemann: Solve dimension mismatch")
	}
	if retries <= 0 {
		retries = DefaultRetries
	}
	if ff.VecIsZero(f, b) {
		return ff.VecZero(f, n), nil
	}
	started := time.Now()
	for attempt := 0; attempt < retries; attempt++ {
		astart := time.Now()
		x, outcome, phase, err := solveAttempt(f, a, b, src, subset, n)
		recordAttempt("wiedemann.solve", n, subset, outcome, phase, time.Since(astart))
		if err != nil {
			recordDone("wiedemann.solve", n, subset, attempt+1, started, err)
			return nil, err
		}
		if outcome == obs.OutcomeSuccess {
			recordDone("wiedemann.solve", n, subset, attempt+1, started, nil)
			return x, nil
		}
	}
	recordDone("wiedemann.solve", n, subset, retries, started, ErrRetriesExhausted)
	return nil, ErrRetriesExhausted
}

// solveAttempt is one randomized Wiedemann attempt: fresh projection,
// minimum polynomial, backsolve, verification. It returns the telemetry
// classification alongside the candidate; a non-nil error aborts the Las
// Vegas loop (retryable bad luck comes back as a non-success outcome with
// a nil error). Spans close eagerly and via defer, so early returns leave
// no span open.
func solveAttempt[E any](f ff.Field[E], a matrix.BlackBox[E], b []E, src *ff.Source, subset uint64, n int) (x []E, outcome, phase string, err error) {
	u := ff.SampleVec(f, src, n, subset)
	sp := obs.StartPhase(obs.PhaseKrylov)
	defer sp.End()
	vs := matrix.KrylovIterative(f, a, b, 2*n)
	s := matrix.ProjectSequence(f, u, vs)
	sp.End()
	sp = obs.StartPhase(obs.PhaseMinPoly)
	defer sp.End()
	mp, err := seq.MinPoly(f, s)
	sp.End()
	if err != nil {
		return nil, obs.OutcomeError, obs.PhaseMinPoly, err
	}
	d := poly.Deg(f, mp)
	c0 := poly.Coef(f, mp, 0)
	if d < 1 || f.IsZero(c0) {
		return nil, obs.OutcomeDegenerate, obs.PhaseMinPoly, nil
	}
	// x = −(1/c₀)·Σ_{j=1}^{d} mp_j·A^{j−1}b.
	sp = obs.StartPhase(obs.PhaseBacksolve)
	defer sp.End()
	acc := ff.VecZero(f, n)
	for j := 1; j <= d; j++ {
		ff.VecMulAddInto(f, acc, poly.Coef(f, mp, j), vs[j-1])
	}
	scale, err := f.Div(f.Neg(f.One()), c0)
	if err != nil {
		return nil, obs.OutcomeDivZero, obs.PhaseBacksolve, nil
	}
	ff.VecScaleInto(f, acc, scale, acc)
	x = acc
	sp.End()
	if !ff.VecEqual(f, a.Apply(f, x), b) {
		return nil, obs.OutcomeVerifyFailed, "verify", nil
	}
	return x, obs.OutcomeSuccess, "", nil
}
