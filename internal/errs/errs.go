// Package errs holds the solver-wide error taxonomy: the sentinel values
// that every layer of the reproduction (matrix substrate, Wiedemann
// black-box route, the kp Theorem 4 pipelines, the core façade) reports
// failure through. Each substrate package re-exports the sentinels it can
// produce under its own name (kp.ErrSingular, wiedemann.ErrRetriesExhausted,
// matrix.ErrSingular, …); because the re-exports are the *same values*,
// errors.Is matches across package boundaries — a caller holding
// kp.ErrRetriesExhausted recognizes an exhaustion bubbling out of the
// Wiedemann resultant path without knowing which engine produced it.
//
// The package sits below every other internal package and imports nothing
// but the standard library, so any layer may depend on it without cycles.
package errs

import "errors"

var (
	// ErrSingular reports a singular matrix where a non-singular one was
	// required (zero pivot in elimination, vanishing charpoly constant
	// term, degenerate leading block).
	ErrSingular = errors.New("singular matrix")

	// ErrRetriesExhausted reports that every randomized Las Vegas attempt
	// failed. On non-singular inputs a single attempt fails with
	// probability ≤ 3n²/|S| (the paper's equation (2)), so exhaustion
	// virtually certifies a singular input.
	ErrRetriesExhausted = errors.New("all randomized attempts failed (input likely singular)")

	// ErrInconsistent reports a linear system with no solution.
	ErrInconsistent = errors.New("inconsistent linear system (no solution)")

	// ErrBadShape reports arguments whose dimensions do not form a valid
	// problem (non-square matrix for a square-only routine, mismatched
	// right-hand-side length, …).
	ErrBadShape = errors.New("dimension mismatch")

	// ErrCharacteristicTooSmall reports a field whose characteristic is
	// ≤ n, violating Theorem 4's hypothesis (use the any-characteristic
	// §5 routes instead).
	ErrCharacteristicTooSmall = errors.New("field characteristic too small for Theorem 4 (use the any-characteristic §5 routes)")

	// ErrBoundTooSmall reports a multi-modulus (RNS/CRT) run whose prime
	// set was forced — by an explicit rns.Params.Primes count or Bound
	// override — below what the answer actually needs: the CRT modulus
	// cannot separate the true result from an alias. The certified
	// (Hadamard/Cramer) sizing never produces this error.
	ErrBoundTooSmall = errors.New("CRT modulus too small for the result (raise rns.Params.Primes or Bound)")

	// ErrReconstructFailed reports a rational reconstruction with no
	// num/den pair inside the requested bounds — either the modulus is too
	// small for the true answer (see ErrBoundTooSmall) or the residue is
	// not congruent to any bounded rational.
	ErrReconstructFailed = errors.New("rational reconstruction found no bounded num/den pair")
)
