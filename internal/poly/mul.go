package poly

import "repro/internal/ff"

// karatsubaThreshold is the operand length below which multiplication falls
// back to the schoolbook method. Chosen empirically for word-sized fields;
// correctness does not depend on it (the tests sweep across it).
const karatsubaThreshold = 32

// Mul returns a·b. Lengths below karatsubaThreshold use the schoolbook
// method; larger operands use Karatsuba's O(n^1.585) recursion.
//
// Over fields advertising 2-power roots of unity (ff.RootsOfUnity — e.g.
// F_p for p = ff.PNTT62), large products switch to the NTT path in ntt.go,
// the stand-in for the paper's Cantor–Kaltofen multiplication; other fields
// keep Karatsuba, which DESIGN.md §2 records as a log-factor substitution.
func Mul[E any](f ff.Field[E], a, b []E) []E {
	a, b = Trim(f, a), Trim(f, b)
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	if c, ok := tryMulNTT(f, a, b); ok {
		return Trim(f, c)
	}
	return Trim(f, mulRec(f, a, b))
}

func mulRec[E any](f ff.Field[E], a, b []E) []E {
	if len(a) < karatsubaThreshold || len(b) < karatsubaThreshold {
		return mulSchoolbook(f, a, b)
	}
	return mulKaratsuba(f, a, b)
}

// mulSchoolbook computes the convolution with a balanced summation tree per
// output coefficient, so that traced circuits get depth O(log n) per
// product rather than O(n) — without this, every polynomial multiply would
// put a linear chain on the critical path and the (log n)² depth of
// Theorems 3 and 4 would be unobservable.
func mulSchoolbook[E any](f ff.Field[E], a, b []E) []E {
	c := make([]E, len(a)+len(b)-1)
	if ker, ok := ff.KernelsOf(f); ok {
		// Kernel-bearing fields take the fused row sweep: one saxpy per
		// coefficient of a, each at one REDC per product. The balanced
		// accumulation below only matters for traced/counted fields.
		z := f.Zero()
		for k := range c {
			c[k] = z
		}
		for i := range a {
			if f.IsZero(a[i]) {
				continue
			}
			ker.MulAddVec(c[i:i+len(b)], a[i], b)
		}
		return c
	}
	one := f.One()
	terms := make([]E, 0, min(len(a), len(b)))
	for k := range c {
		terms = terms[:0]
		lo := k - len(b) + 1
		if lo < 0 {
			lo = 0
		}
		hi := k
		if hi > len(a)-1 {
			hi = len(a) - 1
		}
		for i := lo; i <= hi; i++ {
			if f.IsZero(a[i]) || f.IsZero(b[k-i]) {
				continue
			}
			// Units multiply for free, mirroring the x·1 folding of traced
			// circuits (I − λT entries and Newton's constant terms make
			// these common on the structured path).
			switch {
			case f.Equal(a[i], one):
				terms = append(terms, b[k-i])
			case f.Equal(b[k-i], one):
				terms = append(terms, a[i])
			default:
				terms = append(terms, f.Mul(a[i], b[k-i]))
			}
		}
		c[k] = ff.SumTree(f, terms)
	}
	return c
}

// mulKaratsuba splits a = a0 + λ^m a1, b = b0 + λ^m b1 and uses
// a·b = a0b0 + λ^m[(a0+a1)(b0+b1) − a0b0 − a1b1] + λ^{2m} a1b1.
func mulKaratsuba[E any](f ff.Field[E], a, b []E) []E {
	m := max(len(a), len(b)) / 2
	a0, a1 := splitAt(a, m)
	b0, b1 := splitAt(b, m)

	z0 := mulRec(f, a0, b0)
	z2 := mulRec(f, a1, b1)
	sa := addRaw(f, a0, a1)
	sb := addRaw(f, b0, b1)
	z1 := mulRec(f, sa, sb)

	out := make([]E, len(a)+len(b)-1)
	for i := range out {
		out[i] = f.Zero()
	}
	accumulate(f, out, z0, 0)
	// z1 − z0 − z2 at offset m.
	for i := range z1 {
		t := z1[i]
		if i < len(z0) {
			t = f.Sub(t, z0[i])
		}
		if i < len(z2) {
			t = f.Sub(t, z2[i])
		}
		if !f.IsZero(t) && m+i < len(out) {
			out[m+i] = f.Add(out[m+i], t)
		}
	}
	accumulate(f, out, z2, 2*m)
	return out
}

func splitAt[E any](a []E, m int) (lo, hi []E) {
	if len(a) <= m {
		return a, nil
	}
	return a[:m], a[m:]
}

func addRaw[E any](f ff.Field[E], a, b []E) []E {
	n := max(len(a), len(b))
	c := make([]E, n)
	for i := range c {
		c[i] = f.Add(Coef(f, a, i), Coef(f, b, i))
	}
	return c
}

func accumulate[E any](f ff.Field[E], dst, src []E, off int) {
	for i := range src {
		if off+i < len(dst) {
			dst[off+i] = f.Add(dst[off+i], src[i])
		}
	}
}

// MulTrunc returns a·b mod λ^k, skipping work above the truncation bound
// where the operand shapes make that easy.
func MulTrunc[E any](f ff.Field[E], a, b []E, k int) []E {
	a, b = TruncDeg(f, a, k), TruncDeg(f, b, k)
	return TruncDeg(f, Mul(f, a, b), k)
}

// Pow returns a^e by binary exponentiation.
func Pow[E any](f ff.Field[E], a []E, e int) []E {
	if e < 0 {
		panic("poly: negative exponent")
	}
	result := Constant(f, f.One())
	base := Trim(f, a)
	for e > 0 {
		if e&1 == 1 {
			result = Mul(f, result, base)
		}
		base = Mul(f, base, base)
		e >>= 1
	}
	return result
}

// Product multiplies a list of polynomials with a balanced product tree,
// keeping intermediate degrees (and traced circuit depth) balanced.
func Product[E any](f ff.Field[E], ps [][]E) []E {
	switch len(ps) {
	case 0:
		return Constant(f, f.One())
	case 1:
		return Trim(f, ps[0])
	}
	cur := make([][]E, len(ps))
	copy(cur, ps)
	for len(cur) > 1 {
		next := make([][]E, 0, (len(cur)+1)/2)
		for i := 0; i+1 < len(cur); i += 2 {
			next = append(next, Mul(f, cur[i], cur[i+1]))
		}
		if len(cur)%2 == 1 {
			next = append(next, cur[len(cur)-1])
		}
		cur = next
	}
	return cur[0]
}

// FromRoots returns ∏ (λ − r) over the given roots, via a product tree.
func FromRoots[E any](f ff.Field[E], roots []E) []E {
	ps := make([][]E, len(roots))
	for i, r := range roots {
		ps[i] = []E{f.Neg(r), f.One()}
	}
	return Product(f, ps)
}
