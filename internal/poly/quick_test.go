package poly

import (
	"testing"
	"testing/quick"

	"repro/internal/ff"
)

// Property-based tests (testing/quick) on the polynomial ring. Raw uint64
// fuzz inputs are mapped into the field and shaped into polynomials of
// bounded degree.

var qf = ff.MustFp64(ff.P31)

func mkPoly(seed []uint64, maxLen int) []uint64 {
	if maxLen <= 0 {
		maxLen = 1
	}
	n := 1 + int(seedAt(seed, 0)%uint64(maxLen))
	out := make([]uint64, n)
	for i := range out {
		out[i] = qf.Elem(seedAt(seed, i+1))
	}
	return Trim[uint64](qf, out)
}

func seedAt(seed []uint64, i int) uint64 {
	if len(seed) == 0 {
		return uint64(i)*0x9e3779b97f4a7c15 + 1
	}
	return seed[i%len(seed)] + uint64(i)*0x9e3779b97f4a7c15
}

func TestQuickMulCommutesAndEvalHom(t *testing.T) {
	prop := func(sa, sb []uint64, x uint64) bool {
		a := mkPoly(sa, 40)
		b := mkPoly(sb, 40)
		ab := Mul[uint64](qf, a, b)
		if !Equal[uint64](qf, ab, Mul[uint64](qf, b, a)) {
			return false
		}
		// Evaluation is a ring homomorphism: (ab)(x) = a(x)·b(x).
		xv := qf.Elem(x)
		return qf.Equal(Eval[uint64](qf, ab, xv),
			qf.Mul(Eval[uint64](qf, a, xv), Eval[uint64](qf, b, xv)))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDivModReconstructs(t *testing.T) {
	prop := func(sa, sb []uint64) bool {
		a := mkPoly(sa, 60)
		b := mkPoly(sb, 25)
		if IsZero[uint64](qf, b) {
			return true
		}
		q, r, err := DivMod[uint64](qf, a, b)
		if err != nil {
			return false
		}
		if Deg[uint64](qf, r) >= Deg[uint64](qf, b) {
			return false
		}
		return Equal[uint64](qf, Add[uint64](qf, Mul[uint64](qf, q, b), r), a)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGCDDividesBoth(t *testing.T) {
	prop := func(sa, sb []uint64) bool {
		a := mkPoly(sa, 30)
		b := mkPoly(sb, 30)
		g, err := GCD[uint64](qf, a, b)
		if err != nil {
			return false
		}
		if IsZero[uint64](qf, g) {
			return IsZero[uint64](qf, a) && IsZero[uint64](qf, b)
		}
		for _, p := range [][]uint64{a, b} {
			if IsZero[uint64](qf, p) {
				continue
			}
			_, r, err := DivMod[uint64](qf, p, g)
			if err != nil || !IsZero[uint64](qf, r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSeriesInverseIdentity(t *testing.T) {
	prop := func(sa []uint64, kRaw uint8) bool {
		k := 1 + int(kRaw%40)
		a := mkPoly(sa, 20)
		a = append([]uint64{1 + seedAt(sa, 99)%(ff.P31-1)}, a...) // unit constant term
		inv, err := SeriesInv[uint64](qf, a, k)
		if err != nil {
			return false
		}
		return Equal[uint64](qf, MulTrunc[uint64](qf, a, inv, k),
			Constant[uint64](qf, qf.One()))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickReverseInvolution(t *testing.T) {
	prop := func(sa []uint64) bool {
		a := mkPoly(sa, 30)
		n := len(a)
		if n == 0 {
			return true
		}
		// Double reversal at the exact degree is the identity.
		return Equal[uint64](qf, Reverse[uint64](qf, Reverse[uint64](qf, a, n-1), n-1), a)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNTTMatchesKaratsuba(t *testing.T) {
	fntt := ff.MustFp64(ff.PNTT62)
	prop := func(sa, sb []uint64, la, lb uint8) bool {
		a := make([]uint64, 16+int(la)%120)
		b := make([]uint64, 16+int(lb)%120)
		for i := range a {
			a[i] = fntt.Elem(seedAt(sa, i))
		}
		for i := range b {
			b[i] = fntt.Elem(seedAt(sb, i))
		}
		got := Mul[uint64](fntt, a, b)
		want := Trim[uint64](fntt, mulKaratsuba[uint64](fntt, a, b))
		return Equal[uint64](fntt, got, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
