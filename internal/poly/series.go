package poly

import (
	"math/big"

	"repro/internal/ff"
)

// Series is the truncated power-series ring K[[λ]]/λᴷ presented through the
// ff.Field interface, so that every generic algorithm in this repository
// can run with series coefficients unchanged. This is how the paper's §3
// treats its Toeplitz matrices: "T(λ) can be viewed as a Toeplitz matrix
// with entries in the field of extended power series K((λ))" — the
// truncated local ring suffices because every series the algorithms invert
// has an invertible constant term (units of K[[λ]]), and Inv reports
// ff.ErrDivisionByZero otherwise exactly like a field does for zero.
//
// Elements are coefficient slices of length ≤ K with no trailing zeros
// (as produced by Trim); the zero series is nil.
type Series[E any] struct {
	// F is the coefficient field.
	F ff.Field[E]
	// K is the truncation order: elements represent classes mod λᴷ.
	K int
}

// NewSeries returns the ring K[[λ]]/λᵏ over f.
func NewSeries[E any](f ff.Field[E], k int) Series[E] {
	if k < 1 {
		panic("poly: series truncation order must be ≥ 1")
	}
	return Series[E]{F: f, K: k}
}

// Zero returns the zero series.
func (s Series[E]) Zero() []E { return nil }

// One returns the unit series.
func (s Series[E]) One() []E { return Constant(s.F, s.F.One()) }

// Add returns a + b mod λᴷ.
func (s Series[E]) Add(a, b []E) []E { return TruncDeg(s.F, Add(s.F, a, b), s.K) }

// Sub returns a − b mod λᴷ.
func (s Series[E]) Sub(a, b []E) []E { return TruncDeg(s.F, Sub(s.F, a, b), s.K) }

// Neg returns −a.
func (s Series[E]) Neg(a []E) []E { return Neg(s.F, a) }

// Mul returns a·b mod λᴷ.
func (s Series[E]) Mul(a, b []E) []E { return MulTrunc(s.F, a, b, s.K) }

// IsZero reports whether a ≡ 0 mod λᴷ.
func (s Series[E]) IsZero(a []E) bool { return IsZero(s.F, TruncDeg(s.F, a, s.K)) }

// Equal reports whether a ≡ b mod λᴷ.
func (s Series[E]) Equal(a, b []E) bool {
	return Equal(s.F, TruncDeg(s.F, a, s.K), TruncDeg(s.F, b, s.K))
}

// FromInt64 embeds an integer as a constant series.
func (s Series[E]) FromInt64(v int64) []E { return Constant(s.F, s.F.FromInt64(v)) }

// String formats the series.
func (s Series[E]) String(a []E) string { return String(s.F, a) }

// Inv returns the series inverse (Newton iteration). It fails with
// ff.ErrDivisionByZero exactly when the constant term is zero — i.e. when a
// is a non-unit of the local ring.
func (s Series[E]) Inv(a []E) ([]E, error) {
	return SeriesInv(s.F, TruncDeg(s.F, a, s.K), s.K)
}

// Div returns a/b mod λᴷ for unit b.
func (s Series[E]) Div(a, b []E) ([]E, error) {
	return SeriesDiv(s.F, TruncDeg(s.F, a, s.K), TruncDeg(s.F, b, s.K), s.K)
}

// Characteristic returns the coefficient field's characteristic.
func (s Series[E]) Characteristic() *big.Int { return s.F.Characteristic() }

// Cardinality returns |K|ᴷ for finite coefficient fields, 0 otherwise.
func (s Series[E]) Cardinality() *big.Int {
	c := s.F.Cardinality()
	if c.Sign() == 0 {
		return new(big.Int)
	}
	return new(big.Int).Exp(c, big.NewInt(int64(s.K)), nil)
}

// Elem enumerates constant series through the coefficient field's
// enumeration — sufficient for sampling, which only ever needs constants.
func (s Series[E]) Elem(i uint64) []E { return Constant(s.F, s.F.Elem(i)) }

// Lift embeds a coefficient-field element as a constant series.
func (s Series[E]) Lift(e E) []E { return Constant(s.F, e) }

// RootOfUnity lifts the coefficient field's roots of unity into the series
// ring (a primitive root of K stays primitive as a constant series), so
// bivariate products — polynomials whose coefficients are series — take
// the NTT fast path in the outer variable too. This is what realizes the
// paper's bivariate Cantor–Kaltofen bound inside the Newton iteration.
func (s Series[E]) RootOfUnity(log2n int) ([]E, bool) {
	r, ok := any(s.F).(ff.RootsOfUnity[E])
	if !ok {
		return nil, false
	}
	e, ok := r.RootOfUnity(log2n)
	if !ok {
		return nil, false
	}
	return Constant(s.F, e), true
}

// LambdaMinus returns the series c·λ + d (used to build I − λT entries:
// LambdaMinus(−t, δ)).
func (s Series[E]) LambdaMinus(d, c E) []E {
	return TruncDeg(s.F, Trim(s.F, []E{d, c}), s.K)
}

var _ ff.Field[[]uint64] = Series[uint64]{}
