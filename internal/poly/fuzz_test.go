package poly

import (
	"testing"

	"repro/internal/ff"
)

// Native fuzz targets. Under plain `go test` the seed corpus runs as unit
// tests; `go test -fuzz=FuzzX ./internal/poly` explores further.

func bytesToPoly(f ff.Fp64, data []byte, max int) []uint64 {
	if len(data) > max {
		data = data[:max]
	}
	out := make([]uint64, len(data))
	for i, b := range data {
		out[i] = f.FromInt64(int64(b) * 2654435761)
	}
	return Trim[uint64](f, out)
}

func FuzzDivModReconstruction(fz *testing.F) {
	fz.Add([]byte{1, 2, 3, 4, 5, 6, 7}, []byte{1, 1})
	fz.Add([]byte{0, 0, 9}, []byte{5})
	fz.Add([]byte{255, 254, 253, 252, 251, 250}, []byte{7, 0, 0, 1})
	f := ff.MustFp64(ff.P31)
	fz.Fuzz(func(t *testing.T, da, db []byte) {
		a := bytesToPoly(f, da, 80)
		b := bytesToPoly(f, db, 40)
		if IsZero[uint64](f, b) {
			return
		}
		q, r, err := DivMod[uint64](f, a, b)
		if err != nil {
			t.Fatalf("DivMod: %v", err)
		}
		if Deg[uint64](f, r) >= Deg[uint64](f, b) {
			t.Fatal("remainder degree too large")
		}
		if !Equal[uint64](f, Add[uint64](f, Mul[uint64](f, q, b), r), a) {
			t.Fatal("qb + r != a")
		}
	})
}

func FuzzNTTAgainstSchoolbook(fz *testing.F) {
	fz.Add([]byte{1, 2, 3}, []byte{4, 5, 6})
	fz.Add(make([]byte, 64), make([]byte, 33))
	f := ff.MustFp64(ff.PNTT62)
	fz.Fuzz(func(t *testing.T, da, db []byte) {
		a := bytesToPoly(f, da, 100)
		b := bytesToPoly(f, db, 100)
		got := Mul[uint64](f, a, b)
		if len(a) == 0 || len(b) == 0 {
			if got != nil {
				t.Fatal("product with zero polynomial not zero")
			}
			return
		}
		want := Trim[uint64](f, mulSchoolbook[uint64](f, a, b))
		if !Equal[uint64](f, got, want) {
			t.Fatal("Mul disagrees with schoolbook")
		}
	})
}

func FuzzSeriesInv(fz *testing.F) {
	fz.Add([]byte{1, 9, 8, 7}, uint8(12))
	fz.Add([]byte{3}, uint8(1))
	f := ff.MustFp64(ff.P31)
	fz.Fuzz(func(t *testing.T, da []byte, kRaw uint8) {
		a := bytesToPoly(f, da, 30)
		k := 1 + int(kRaw%48)
		if f.IsZero(Coef[uint64](f, a, 0)) {
			if _, err := SeriesInv[uint64](f, a, k); err == nil {
				t.Fatal("non-unit inverted")
			}
			return
		}
		inv, err := SeriesInv[uint64](f, a, k)
		if err != nil {
			t.Fatalf("SeriesInv: %v", err)
		}
		if !Equal[uint64](f, MulTrunc[uint64](f, a, inv, k), Constant[uint64](f, f.One())) {
			t.Fatal("a·a⁻¹ != 1 mod λ^k")
		}
	})
}

func FuzzGCDInvariants(fz *testing.F) {
	fz.Add([]byte{6, 11, 6, 1}, []byte{2, 3, 1})
	f := ff.MustFp64(ff.P31)
	fz.Fuzz(func(t *testing.T, da, db []byte) {
		a := bytesToPoly(f, da, 25)
		b := bytesToPoly(f, db, 25)
		g, err := GCD[uint64](f, a, b)
		if err != nil {
			t.Fatalf("GCD: %v", err)
		}
		if IsZero[uint64](f, g) {
			if !IsZero[uint64](f, a) || !IsZero[uint64](f, b) {
				t.Fatal("zero gcd of non-zero inputs")
			}
			return
		}
		for _, p := range [][]uint64{a, b} {
			if IsZero[uint64](f, p) {
				continue
			}
			if _, r, err := DivMod[uint64](f, p, g); err != nil || !IsZero[uint64](f, r) {
				t.Fatal("gcd does not divide an input")
			}
		}
		if !f.Equal(Lead[uint64](f, g), f.One()) {
			t.Fatal("gcd not monic")
		}
	})
}
