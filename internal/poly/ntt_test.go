package poly

import (
	"testing"

	"repro/internal/ff"
)

func TestRootOfUnityOrders(t *testing.T) {
	f := ff.MustFp64(ff.PNTT62)
	for _, k := range []int{1, 2, 8, 20, 48} {
		r, ok := f.RootOfUnity(k)
		if !ok {
			t.Fatalf("no 2^%d-th root in F_PNTT62", k)
		}
		// Order exactly 2^k: r^(2^k) = 1 and r^(2^{k−1}) = −1.
		x := r
		for i := 0; i < k-1; i++ {
			x = f.Mul(x, x)
		}
		if x != f.Neg(f.One()) {
			t.Fatalf("root of order 2^%d: half power != −1", k)
		}
		if f.Mul(x, x) != f.One() {
			t.Fatalf("root of order 2^%d: full power != 1", k)
		}
	}
	// Beyond the 2-adicity there is none.
	if _, ok := f.RootOfUnity(49); ok {
		t.Fatal("claimed a 2^49-th root in a field with 2-adicity 48")
	}
	// P31 has 2-adicity 1.
	f31 := ff.MustFp64(ff.P31)
	if _, ok := f31.RootOfUnity(2); ok {
		t.Fatal("P31 claims 4th roots of unity")
	}
	if r, ok := f31.RootOfUnity(1); !ok || r != ff.P31-1 {
		t.Fatalf("P31 2nd root = %d, want −1", r)
	}
}

func TestNTTMulMatchesSchoolbook(t *testing.T) {
	f := ff.MustFp64(ff.PNTT62)
	src := ff.NewSource(301)
	for _, da := range []int{30, 31, 32, 63, 64, 100, 257} {
		for _, db := range []int{30, 64, 200} {
			a := make([]uint64, da+1)
			b := make([]uint64, db+1)
			for i := range a {
				a[i] = src.Uint64n(f.Modulus())
			}
			for i := range b {
				b[i] = src.Uint64n(f.Modulus())
			}
			a[da], b[db] = 1, 1
			got := Mul[uint64](f, a, b)
			want := Trim[uint64](f, mulSchoolbook[uint64](f, a, b))
			if !Equal[uint64](f, got, want) {
				t.Fatalf("NTT product wrong at deg %d × %d", da, db)
			}
		}
	}
}

func TestNTTPathIsTaken(t *testing.T) {
	// The NTT path must actually engage above the threshold: count ops and
	// compare against the Karatsuba op count over a root-less field.
	ntt := ff.NewCounting[uint64](ff.MustFp64(ff.PNTT62))
	kar := ff.NewCounting[uint64](ff.MustFp64(ff.P62)) // 2-adicity 1: no NTT
	src := ff.NewSource(303)
	n := 512
	a := ff.SampleVec[uint64](ntt, src, n, 1<<20)
	b := ff.SampleVec[uint64](ntt, src, n, 1<<20)
	Mul[uint64](ntt, a, b)
	Mul[uint64](kar, a, b)
	nttOps := ntt.Counts().Total()
	karOps := kar.Counts().Total()
	if nttOps >= karOps {
		t.Fatalf("NTT (%d ops) not cheaper than Karatsuba (%d ops) at n=%d", nttOps, karOps, n)
	}
	// Counting wrapper must forward the root interface for this to work at
	// all — otherwise the counts above would match.
}

func TestSeriesRingNTT(t *testing.T) {
	// The series ring lifts roots of unity, so bivariate products (outer
	// NTT over series coefficients) agree with the naive route.
	f := ff.MustFp64(ff.PNTT62)
	s := NewSeries[uint64](f, 9)
	src := ff.NewSource(305)
	if _, ok := s.RootOfUnity(5); !ok {
		t.Fatal("series ring does not lift roots of unity")
	}
	n := 70 // outer length above nttThreshold
	a := make([][]uint64, n)
	b := make([][]uint64, n)
	for i := range a {
		a[i] = ff.SampleVec[uint64](f, src, 9, f.Modulus())
		b[i] = ff.SampleVec[uint64](f, src, 9, f.Modulus())
	}
	got := Mul[[]uint64](s, a, b)
	want := Trim[[]uint64](s, mulSchoolbook[[]uint64](s, a, b))
	if !Equal[[]uint64](s, got, want) {
		t.Fatal("bivariate NTT product disagrees with schoolbook")
	}
}
