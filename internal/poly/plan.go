package poly

import (
	"fmt"
	"sync"

	"repro/internal/ff"
)

// NTTPlan is a reusable transform plan: one power-of-two size, its
// primitive root, inverse root and 1/n, resolved once so repeated products
// at the same size — the structured black-box applies issue two transforms
// per matrix-vector product, thousands per solve — skip root discovery,
// inversions and buffer allocation entirely. Plans require the fused
// in-place kernel (ff.NTTKernel): abstract fields, wrapper fields and the
// p = 2 sentinel fail construction with a typed error and callers keep the
// schoolbook path, preserving traced circuit shape and op counts.
type NTTPlan[E any] struct {
	f       ff.Field[E]
	ker     ff.NTTKernel[E]
	log2n   int
	n       int
	root    E
	rootInv E
	nInv    E

	// scratchPool recycles length-n transform buffers across applies; the
	// convolution hot path allocates nothing after warm-up.
	scratchPool sync.Pool
}

// NewNTTPlan returns a plan whose transform length is the smallest power of
// two ≥ minLen, or a typed error (ff.ErrNoRootOfUnity for a prime with too
// little 2-adicity, ff.ErrNoNTTKernel for a backend without the fused
// transform) directing the caller to the schoolbook fallback.
func NewNTTPlan[E any](f ff.Field[E], minLen int) (*NTTPlan[E], error) {
	if minLen < 1 {
		minLen = 1
	}
	log2n, n := 0, 1
	for n < minLen {
		n <<= 1
		log2n++
	}
	root, err := ff.NTTSupport(f, log2n)
	if err != nil {
		return nil, fmt.Errorf("poly: no NTT plan of length %d: %w", n, err)
	}
	rootInv, err := f.Inv(root)
	if err != nil {
		return nil, fmt.Errorf("poly: NTT plan root inversion: %w", err)
	}
	nInv, err := f.Inv(f.FromInt64(int64(n)))
	if err != nil {
		return nil, fmt.Errorf("poly: NTT plan length inversion: %w", err)
	}
	p := &NTTPlan[E]{
		f:     f,
		ker:   any(f).(ff.NTTKernel[E]),
		log2n: log2n, n: n,
		root: root, rootInv: rootInv, nInv: nInv,
	}
	p.scratchPool.New = func() any {
		buf := make([]E, p.n)
		return &buf
	}
	return p, nil
}

// Len returns the transform length (a power of two).
func (p *NTTPlan[E]) Len() int { return p.n }

// Transform returns the forward transform of a, zero-padded to the plan
// length, as a fresh slice the caller may retain — this is how the
// structured matrices cache the transform of their defining entries once.
func (p *NTTPlan[E]) Transform(a []E) []E {
	if len(a) > p.n {
		panic("poly: NTTPlan.Transform input exceeds plan length")
	}
	buf := make([]E, p.n)
	copy(buf, a)
	for i := len(a); i < p.n; i++ {
		buf[i] = p.f.Zero()
	}
	if !p.ker.NTTInPlace(buf, p.root, p.log2n) {
		panic("poly: fused transform vanished after plan construction")
	}
	return buf
}

// ConvolveHat writes coefficients [lo, hi) of the linear convolution
// (preimage of ahat) * x into out (which must have length hi−lo). The plan
// length must cover the full product — deg(a) + len(x) − 1 ≤ Len() — so the
// cyclic convolution the transform computes equals the linear one. One
// forward transform of x, one pointwise product, one inverse transform; the
// 1/n normalization is folded into the extracted window.
func (p *NTTPlan[E]) ConvolveHat(ahat, x []E, lo, hi int, out []E) {
	if len(ahat) != p.n {
		panic("poly: ConvolveHat transform length mismatch")
	}
	if len(x) > p.n || lo < 0 || hi > p.n || hi < lo || len(out) != hi-lo {
		panic("poly: ConvolveHat window out of range")
	}
	bufp := p.scratchPool.Get().(*[]E)
	buf := *bufp
	copy(buf, x)
	for i := len(x); i < p.n; i++ {
		buf[i] = p.f.Zero()
	}
	p.ker.NTTInPlace(buf, p.root, p.log2n)
	for i := range buf {
		buf[i] = p.f.Mul(buf[i], ahat[i])
	}
	p.ker.NTTInPlace(buf, p.rootInv, p.log2n)
	for i := lo; i < hi; i++ {
		out[i-lo] = p.f.Mul(buf[i], p.nInv)
	}
	p.scratchPool.Put(bufp)
}
