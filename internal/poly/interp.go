package poly

import (
	"fmt"

	"repro/internal/ff"
)

// EvalMany evaluates a at each of the given points (Horner per point).
func EvalMany[E any](f ff.Field[E], a []E, xs []E) []E {
	out := make([]E, len(xs))
	for i, x := range xs {
		out[i] = Eval(f, a, x)
	}
	return out
}

// Interpolate returns the unique polynomial of degree < len(xs) through the
// points (xs[i], ys[i]). The xs must be pairwise distinct. Interpolation is
// the engine of the fast transposed-Vandermonde solver the paper mentions at
// the end of §4 ("a fast transposed Vandermonde system solver based on fast
// polynomial interpolation").
func Interpolate[E any](f ff.Field[E], xs, ys []E) ([]E, error) {
	n := len(xs)
	if len(ys) != n {
		return nil, fmt.Errorf("poly: %d points but %d values", n, len(ys))
	}
	if n == 0 {
		return nil, nil
	}
	// Newton's divided differences: numerically irrelevant over exact
	// fields, but O(n²) like Lagrange and easier to build incrementally.
	coef := append([]E(nil), ys...)
	for level := 1; level < n; level++ {
		for i := n - 1; i >= level; i-- {
			den := f.Sub(xs[i], xs[i-level])
			d, err := f.Div(f.Sub(coef[i], coef[i-1]), den)
			if err != nil {
				return nil, fmt.Errorf("poly: interpolation nodes not distinct: %w", err)
			}
			coef[i] = d
		}
	}
	// Expand the Newton form Σ coef[i]·∏_{j<i}(λ − xs[j]).
	result := []E(nil)
	basis := Constant(f, f.One())
	for i := 0; i < n; i++ {
		result = Add(f, result, Scale(f, coef[i], basis))
		basis = Mul(f, basis, []E{f.Neg(xs[i]), f.One()})
	}
	return result, nil
}

// VandermondeApply returns V·c where V is the Vandermonde matrix of the
// points xs: (V·c)[i] = Σ_j c[j]·xs[i]^j, i.e. multipoint evaluation.
func VandermondeApply[E any](f ff.Field[E], xs, c []E) []E {
	return EvalMany(f, c, xs)
}

// VandermondeSolve solves V·c = y for c given distinct points xs, i.e.
// interpolation.
func VandermondeSolve[E any](f ff.Field[E], xs, y []E) ([]E, error) {
	c, err := Interpolate(f, xs, y)
	if err != nil {
		return nil, err
	}
	// Pad to full length so callers get a vector of len(xs) coefficients.
	out := make([]E, len(xs))
	for i := range out {
		out[i] = Coef(f, c, i)
	}
	return out, nil
}

// VandermondeTransposedApply returns Vᵀ·c: (Vᵀ·c)[j] = Σ_i c[i]·xs[i]^j,
// the power-sum weighted moments of the points.
func VandermondeTransposedApply[E any](f ff.Field[E], xs, c []E) []E {
	n := len(xs)
	out := make([]E, n)
	pw := make([]E, n)
	for i := range pw {
		pw[i] = f.One()
	}
	for j := 0; j < n; j++ {
		out[j] = ff.SumTree(f, mulVec(f, c, pw))
		if j+1 < n {
			for i := range pw {
				pw[i] = f.Mul(pw[i], xs[i])
			}
		}
	}
	return out
}

func mulVec[E any](f ff.Field[E], a, b []E) []E {
	c := make([]E, len(a))
	for i := range a {
		c[i] = f.Mul(a[i], b[i])
	}
	return c
}
