// Package poly implements dense univariate polynomial arithmetic over an
// abstract field, the substrate for the Toeplitz machinery of Kaltofen–Pan
// §3: Toeplitz-matrix-times-vector products are polynomial multiplications,
// the Newton iteration divides by power series, and the minimum polynomials
// of linearly generated sequences are polynomials over K.
//
// A polynomial is a coefficient slice c with c[i] the coefficient of λ^i,
// normalized so that the last entry is non-zero; the zero polynomial is the
// empty (or nil) slice. All functions treat their inputs as immutable.
package poly

import (
	"strings"

	"repro/internal/ff"
)

// Trim removes trailing zero coefficients, returning the normal form.
func Trim[E any](f ff.Field[E], a []E) []E {
	n := len(a)
	for n > 0 && f.IsZero(a[n-1]) {
		n--
	}
	return a[:n]
}

// Deg returns the degree of a, with Deg(0) = −1.
func Deg[E any](f ff.Field[E], a []E) int {
	return len(Trim(f, a)) - 1
}

// IsZero reports whether a is the zero polynomial.
func IsZero[E any](f ff.Field[E], a []E) bool {
	return len(Trim(f, a)) == 0
}

// Equal reports whether a and b denote the same polynomial.
func Equal[E any](f ff.Field[E], a, b []E) bool {
	a, b = Trim(f, a), Trim(f, b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !f.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// Coef returns the coefficient of λ^i — zero beyond the stored length and
// for negative i (callers index shifted convolutions freely).
func Coef[E any](f ff.Field[E], a []E, i int) E {
	if i >= 0 && i < len(a) {
		return a[i]
	}
	return f.Zero()
}

// Lead returns the leading coefficient of a non-zero polynomial.
func Lead[E any](f ff.Field[E], a []E) E {
	a = Trim(f, a)
	if len(a) == 0 {
		panic("poly: leading coefficient of zero polynomial")
	}
	return a[len(a)-1]
}

// Constant returns the degree-0 polynomial c (or zero polynomial if c = 0).
func Constant[E any](f ff.Field[E], c E) []E {
	return Trim(f, []E{c})
}

// X returns the monomial λ.
func X[E any](f ff.Field[E]) []E {
	return []E{f.Zero(), f.One()}
}

// Monomial returns c·λ^k.
func Monomial[E any](f ff.Field[E], c E, k int) []E {
	if f.IsZero(c) {
		return nil
	}
	m := make([]E, k+1)
	for i := 0; i < k; i++ {
		m[i] = f.Zero()
	}
	m[k] = c
	return m
}

// FromInt64 builds a polynomial from integer coefficients, low degree first.
func FromInt64[E any](f ff.Field[E], cs []int64) []E {
	out := make([]E, len(cs))
	for i, c := range cs {
		out[i] = f.FromInt64(c)
	}
	return Trim(f, out)
}

// Add returns a + b.
func Add[E any](f ff.Field[E], a, b []E) []E {
	if ker, ok := ff.KernelsOf(f); ok {
		if len(b) > len(a) {
			a, b = b, a
		}
		c := make([]E, len(a))
		copy(c, a)
		ker.AddInto(c[:len(b)], b)
		return Trim(f, c)
	}
	n := max(len(a), len(b))
	m := min(len(a), len(b))
	c := make([]E, n)
	for i := 0; i < m; i++ {
		// Skip additions a traced circuit folds away (x + 0 = x): interior
		// zeros are common in the structured path's series coefficients,
		// and a counted run should not be charged for them.
		switch {
		case f.IsZero(a[i]):
			c[i] = b[i]
		case f.IsZero(b[i]):
			c[i] = a[i]
		default:
			c[i] = f.Add(a[i], b[i])
		}
	}
	// Past the shorter operand the sum is the longer one verbatim.
	copy(c[m:], a[m:])
	copy(c[m:], b[m:])
	return Trim(f, c)
}

// Sub returns a − b.
func Sub[E any](f ff.Field[E], a, b []E) []E {
	if ker, ok := ff.KernelsOf(f); ok {
		c := make([]E, max(len(a), len(b)))
		copy(c, a)
		z := f.Zero()
		for i := len(a); i < len(c); i++ {
			c[i] = z
		}
		ker.SubInto(c[:len(b)], b)
		return Trim(f, c)
	}
	n := max(len(a), len(b))
	m := min(len(a), len(b))
	c := make([]E, n)
	for i := 0; i < m; i++ {
		// Mirror circuit folding: x − 0 = x; 0 − y costs one negation
		// (OpNeg and OpSub both count as additions in the circuit model).
		switch {
		case f.IsZero(b[i]):
			c[i] = a[i]
		case f.IsZero(a[i]):
			c[i] = f.Neg(b[i])
		default:
			c[i] = f.Sub(a[i], b[i])
		}
	}
	// Tails: a's survives verbatim, b's is negated.
	copy(c[m:], a[m:])
	for i := len(a); i < len(b); i++ {
		c[i] = f.Neg(b[i])
	}
	return Trim(f, c)
}

// Neg returns −a.
func Neg[E any](f ff.Field[E], a []E) []E {
	c := make([]E, len(a))
	for i := range a {
		c[i] = f.Neg(a[i])
	}
	return c
}

// Scale returns s·a.
func Scale[E any](f ff.Field[E], s E, a []E) []E {
	if f.IsZero(s) {
		return nil
	}
	c := make([]E, len(a))
	for i := range a {
		c[i] = f.Mul(s, a[i])
	}
	return Trim(f, c)
}

// MulXk returns λ^k · a.
func MulXk[E any](f ff.Field[E], a []E, k int) []E {
	a = Trim(f, a)
	if len(a) == 0 {
		return nil
	}
	c := make([]E, k+len(a))
	for i := 0; i < k; i++ {
		c[i] = f.Zero()
	}
	copy(c[k:], a)
	return c
}

// TruncDeg returns a mod λ^k (the low k coefficients).
func TruncDeg[E any](f ff.Field[E], a []E, k int) []E {
	if len(a) > k {
		a = a[:k]
	}
	return Trim(f, a)
}

// ShiftRight returns a / λ^k discarding the remainder (coefficients k…).
func ShiftRight[E any](f ff.Field[E], a []E, k int) []E {
	if k >= len(a) {
		return nil
	}
	return Trim(f, a[k:])
}

// Reverse returns the degree-n reversal λ^n·a(1/λ) where n ≥ Deg(a). The
// result has the coefficients of a in reverse order, padded to length n+1.
// Reversal converts between Toeplitz and Hankel convolution forms.
func Reverse[E any](f ff.Field[E], a []E, n int) []E {
	c := make([]E, n+1)
	for i := range c {
		c[i] = Coef(f, a, n-i)
	}
	return Trim(f, c)
}

// Monic divides a by its leading coefficient. a must be non-zero.
func Monic[E any](f ff.Field[E], a []E) ([]E, error) {
	a = Trim(f, a)
	if len(a) == 0 {
		panic("poly: Monic of zero polynomial")
	}
	inv, err := f.Inv(a[len(a)-1])
	if err != nil {
		return nil, err
	}
	return Scale(f, inv, a), nil
}

// Eval returns a(x) by Horner's rule.
func Eval[E any](f ff.Field[E], a []E, x E) E {
	r := f.Zero()
	for i := len(a) - 1; i >= 0; i-- {
		r = f.Add(f.Mul(r, x), a[i])
	}
	return r
}

// Derivative returns a′.
func Derivative[E any](f ff.Field[E], a []E) []E {
	if len(a) <= 1 {
		return nil
	}
	c := make([]E, len(a)-1)
	for i := 1; i < len(a); i++ {
		c[i-1] = f.Mul(f.FromInt64(int64(i)), a[i])
	}
	return Trim(f, c)
}

// String formats a in λ for diagnostics.
func String[E any](f ff.Field[E], a []E) string {
	a = Trim(f, a)
	if len(a) == 0 {
		return "0"
	}
	var parts []string
	for i := len(a) - 1; i >= 0; i-- {
		if f.IsZero(a[i]) {
			continue
		}
		c := f.String(a[i])
		switch i {
		case 0:
			parts = append(parts, c)
		case 1:
			parts = append(parts, c+"·λ")
		default:
			parts = append(parts, c+"·λ^"+itoa(i))
		}
	}
	return strings.Join(parts, " + ")
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	pos := len(b)
	for i > 0 {
		pos--
		b[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(b[pos:])
}
