package poly

import (
	"fmt"

	"repro/internal/ff"
)

// Fast multipoint evaluation and interpolation via subproduct trees —
// O(M(n)·log n) operations instead of n². The paper's §4 closes with "a
// fast transposed Vandermonde system solver based on fast polynomial
// interpolation": this file supplies the fast interpolation; the
// transposition-principle half lives in internal/kp.

// SubproductTree holds the balanced tree of ∏(λ − xᵢ) over point ranges:
// level 0 are the linear factors, the root is the full master polynomial.
type SubproductTree[E any] struct {
	// Levels[l][k] = ∏_{i in block k of width 2^l} (λ − xᵢ).
	Levels [][][]E
	Points []E
	// invCache[l][k] memoizes SeriesInv(rev(node), deg(node)+1), the
	// Newton-division precomputation: with it every division down the
	// tree is two truncated products, the von zur Gathen–Gerhard "going
	// down the subproduct tree" trick that keeps multipoint evaluation at
	// O(M(n) log n).
	invCache [][][]E
}

// NewSubproductTree builds the tree for the given points.
func NewSubproductTree[E any](f ff.Field[E], xs []E) *SubproductTree[E] {
	n := len(xs)
	if n == 0 {
		panic("poly: subproduct tree of no points")
	}
	level := make([][]E, n)
	for i, x := range xs {
		level[i] = []E{f.Neg(x), f.One()}
	}
	t := &SubproductTree[E]{Points: append([]E(nil), xs...)}
	t.Levels = append(t.Levels, level)
	for len(level) > 1 {
		next := make([][]E, 0, (len(level)+1)/2)
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, Mul(f, level[i], level[i+1]))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		t.Levels = append(t.Levels, next)
		level = next
	}
	t.invCache = make([][][]E, len(t.Levels))
	for l := range t.invCache {
		t.invCache[l] = make([][]E, len(t.Levels[l]))
	}
	return t
}

// remDown reduces a modulo the (level, idx) node. Inputs always satisfy
// deg(a) < 2·deg(node) on the way down, so the quotient length is at most
// deg(node)+1 and the memoized inverse suffices.
func (t *SubproductTree[E]) remDown(f ff.Field[E], a []E, level, idx int) ([]E, error) {
	node := t.Levels[level][idx]
	a = Trim(f, a)
	if len(a) < len(node) {
		return a, nil
	}
	m := len(node) - 1
	k := len(a) - m
	if k > m+1 {
		// Out-of-profile call (only possible at the root): fall back.
		return Rem(f, a, node)
	}
	inv := t.invCache[level][idx]
	if inv == nil {
		var err error
		inv, err = SeriesInv(f, Reverse(f, node, m), m+1)
		if err != nil {
			return nil, err
		}
		t.invCache[level][idx] = inv
	}
	ra := Reverse(f, a, len(a)-1)
	rq := MulTrunc(f, ra, TruncDeg(f, inv, k), k)
	q := make([]E, k)
	for i := range q {
		q[i] = Coef(f, rq, k-1-i)
	}
	q = Trim(f, q)
	return Sub(f, TruncDeg(f, a, m), MulTrunc(f, q, node, m)), nil
}

// Master returns ∏(λ − xᵢ).
func (t *SubproductTree[E]) Master() []E {
	top := t.Levels[len(t.Levels)-1]
	return top[0]
}

// EvalManyFast evaluates a at every tree point by recursive remaindering
// down the subproduct tree: a mod (λ−xᵢ) = a(xᵢ).
func (t *SubproductTree[E]) EvalManyFast(f ff.Field[E], a []E) ([]E, error) {
	return t.evalRec(f, a, len(t.Levels)-1, 0)
}

func (t *SubproductTree[E]) evalRec(f ff.Field[E], a []E, level, idx int) ([]E, error) {
	r, err := t.remDown(f, a, level, idx)
	if err != nil {
		return nil, err
	}
	if level == 0 {
		return []E{Coef(f, r, 0)}, nil
	}
	// Children of node idx at level−1: 2idx and (if present) 2idx+1.
	lo, err := t.evalRec(f, r, level-1, 2*idx)
	if err != nil {
		return nil, err
	}
	if 2*idx+1 >= len(t.Levels[level-1]) {
		return lo, nil
	}
	hi, err := t.evalRec(f, r, level-1, 2*idx+1)
	if err != nil {
		return nil, err
	}
	return append(lo, hi...), nil
}

// EvalManyFast evaluates a at the points xs in O(M(n) log n).
func EvalManyFast[E any](f ff.Field[E], a []E, xs []E) ([]E, error) {
	if len(xs) == 0 {
		return nil, nil
	}
	return NewSubproductTree(f, xs).EvalManyFast(f, a)
}

// InterpolateFast returns the unique polynomial of degree < n through
// (xs[i], ys[i]) in O(M(n) log n): with m = ∏(λ−xᵢ), the Lagrange weights
// are 1/m′(xᵢ) (batch-computed with one fast multipoint evaluation), and
// the weighted combination Σ cᵢ·m/(λ−xᵢ) is assembled up the tree.
func InterpolateFast[E any](f ff.Field[E], xs, ys []E) ([]E, error) {
	n := len(xs)
	if len(ys) != n {
		return nil, fmt.Errorf("poly: %d points but %d values", n, len(ys))
	}
	if n == 0 {
		return nil, nil
	}
	t := NewSubproductTree(f, xs)
	dm := Derivative(f, t.Master())
	dvals, err := t.EvalManyFast(f, dm)
	if err != nil {
		return nil, err
	}
	// cᵢ = yᵢ / m′(xᵢ); m′(xᵢ) = 0 ⇔ repeated nodes.
	c := make([]E, n)
	for i := range c {
		v, err := f.Div(ys[i], dvals[i])
		if err != nil {
			return nil, fmt.Errorf("poly: interpolation nodes not distinct: %w", err)
		}
		c[i] = v
	}
	return t.combineUp(f, c, len(t.Levels)-1, 0), nil
}

// combineUp computes Σ_{i in block} cᵢ·(block product)/(λ−xᵢ) recursively:
// combine(parent) = left·rightProduct + right·leftProduct.
func (t *SubproductTree[E]) combineUp(f ff.Field[E], c []E, level, idx int) []E {
	if level == 0 {
		return Constant(f, c[idx])
	}
	loIdx := 2 * idx
	hiIdx := 2*idx + 1
	lo := t.combineUp(f, c, level-1, loIdx)
	if hiIdx >= len(t.Levels[level-1]) {
		return lo
	}
	hi := t.combineUp(f, c, level-1, hiIdx)
	return Add(f,
		Mul(f, lo, t.Levels[level-1][hiIdx]),
		Mul(f, hi, t.Levels[level-1][loIdx]))
}

// combineUp block index bookkeeping: the c slice is indexed by point; at
// level 0 block k covers exactly point k... but the recursion above passes
// idx as a *block* index, and at level 0 blocks and points coincide, so
// c[idx] is correct.
