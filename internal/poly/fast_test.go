package poly

import (
	"testing"

	"repro/internal/ff"
)

func TestEvalManyFastMatchesHorner(t *testing.T) {
	f := ff.MustFp64(ff.P31)
	src := ff.NewSource(201)
	for _, n := range []int{1, 2, 3, 5, 8, 17, 33, 64} {
		xs := make([]uint64, n)
		for i := range xs {
			xs[i] = uint64(i * i * 7) // distinct
		}
		a := randPoly(f, src, src.Intn(2*n+2))
		got, err := EvalManyFast[uint64](f, a, xs)
		if err != nil {
			t.Fatal(err)
		}
		want := EvalMany[uint64](f, a, xs)
		if !ff.VecEqual[uint64](f, got, want) {
			t.Fatalf("n=%d: fast multipoint evaluation disagrees with Horner", n)
		}
	}
}

func TestSubproductTreeMaster(t *testing.T) {
	f := ff.MustFp64(ff.P31)
	xs := []uint64{1, 2, 3, 4, 5}
	tr := NewSubproductTree[uint64](f, xs)
	want := FromRoots[uint64](f, xs)
	if !Equal[uint64](f, tr.Master(), want) {
		t.Fatal("master polynomial wrong")
	}
	// Every root vanishes on the master.
	for _, x := range xs {
		if !f.IsZero(Eval[uint64](f, tr.Master(), x)) {
			t.Fatal("root not a root of master")
		}
	}
}

func TestInterpolateFastMatchesSlow(t *testing.T) {
	f := ff.MustFp64(ff.P31)
	src := ff.NewSource(203)
	for _, n := range []int{1, 2, 3, 7, 16, 33, 50} {
		xs := make([]uint64, n)
		for i := range xs {
			xs[i] = uint64(3*i + 1)
		}
		ys := ff.SampleVec[uint64](f, src, n, ff.P31)
		got, err := InterpolateFast[uint64](f, xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Interpolate[uint64](f, xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal[uint64](f, got, want) {
			t.Fatalf("n=%d: fast interpolation disagrees with divided differences", n)
		}
		// And it actually interpolates.
		for i := range xs {
			if Eval[uint64](f, got, xs[i]) != ys[i] {
				t.Fatalf("n=%d: interpolant misses point %d", n, i)
			}
		}
	}
	// Repeated nodes must error, not fabricate.
	if _, err := InterpolateFast[uint64](f, []uint64{5, 5}, []uint64{1, 2}); err == nil {
		t.Fatal("repeated nodes accepted")
	}
}

func TestFastOpsGrowQuasilinearly(t *testing.T) {
	// The fast routine's op count must grow like M(n)·log n (≈ ×5 per
	// size quadrupling) where the Horner sweep grows quadratically (×16).
	// With plain radix-2 NTT constants the absolute crossover sits beyond
	// the sizes worth op-counting in a test, so assert the growth rates.
	f := ff.NewCounting[uint64](ff.MustFp64(ff.PNTT62))
	src := ff.NewSource(205)
	measure := func(n int) (fast, slow uint64) {
		xs := make([]uint64, n)
		for i := range xs {
			xs[i] = uint64(i)
		}
		a := ff.SampleVec[uint64](f, src, n, 1<<30)
		f.Reset()
		if _, err := EvalManyFast[uint64](f, a, xs); err != nil {
			t.Fatal(err)
		}
		fast = f.Counts().Total()
		f.Reset()
		EvalMany[uint64](f, a, xs)
		slow = f.Counts().Total()
		return fast, slow
	}
	fast1, slow1 := measure(256)
	fast2, slow2 := measure(1024)
	fastGrowth := float64(fast2) / float64(fast1)
	slowGrowth := float64(slow2) / float64(slow1)
	if fastGrowth > 8 {
		t.Fatalf("fast multipoint grew ×%.1f per ×4 size — not quasi-linear", fastGrowth)
	}
	if slowGrowth < 14 {
		t.Fatalf("Horner sweep grew only ×%.1f — measurement broken", slowGrowth)
	}
}
