package poly

import (
	"testing"

	"repro/internal/ff"
)

var f101 = ff.MustFp64(101)

func randPoly(f ff.Fp64, src *ff.Source, deg int) []uint64 {
	if deg < 0 {
		return nil
	}
	p := make([]uint64, deg+1)
	for i := range p {
		p[i] = src.Uint64n(f.Modulus())
	}
	p[deg] = 1 + src.Uint64n(f.Modulus()-1) // ensure exact degree
	return p
}

func TestTrimDegIsZero(t *testing.T) {
	f := f101
	if Deg[uint64](f, nil) != -1 {
		t.Fatal("Deg(0) != -1")
	}
	if !IsZero[uint64](f, []uint64{0, 0, 0}) {
		t.Fatal("all-zero slice not recognized as zero polynomial")
	}
	a := []uint64{5, 0, 3, 0, 0}
	if got := Deg[uint64](f, a); got != 2 {
		t.Fatalf("Deg = %d, want 2", got)
	}
	if got := len(Trim[uint64](f, a)); got != 3 {
		t.Fatalf("Trim length = %d, want 3", got)
	}
}

func TestAddSubNegScale(t *testing.T) {
	f := f101
	a := FromInt64[uint64](f, []int64{1, 2, 3})
	b := FromInt64[uint64](f, []int64{4, 5})
	if !Equal[uint64](f, Add[uint64](f, a, b), FromInt64[uint64](f, []int64{5, 7, 3})) {
		t.Fatal("Add wrong")
	}
	if !Equal[uint64](f, Sub[uint64](f, a, b), FromInt64[uint64](f, []int64{-3, -3, 3})) {
		t.Fatal("Sub wrong")
	}
	if !IsZero[uint64](f, Add[uint64](f, a, Neg[uint64](f, a))) {
		t.Fatal("a + (−a) != 0")
	}
	if !Equal[uint64](f, Scale[uint64](f, f.FromInt64(2), a), FromInt64[uint64](f, []int64{2, 4, 6})) {
		t.Fatal("Scale wrong")
	}
	// Cancellation must re-normalize: (λ²) + (−λ²) = 0.
	l2 := Monomial[uint64](f, f.One(), 2)
	if !IsZero[uint64](f, Add[uint64](f, l2, Neg[uint64](f, l2))) {
		t.Fatal("cancellation did not trim")
	}
}

func TestMulAgainstSchoolbook(t *testing.T) {
	f := ff.MustFp64(ff.P31)
	src := ff.NewSource(1)
	// Sweep sizes across the Karatsuba threshold.
	for _, da := range []int{0, 1, 5, 31, 32, 33, 64, 100, 200} {
		for _, db := range []int{0, 3, 31, 33, 97} {
			a := randPoly(f, src, da)
			b := randPoly(f, src, db)
			want := Trim[uint64](f, mulSchoolbook[uint64](f, a, b))
			got := Mul[uint64](f, a, b)
			if !Equal[uint64](f, got, want) {
				t.Fatalf("Mul mismatch at deg %d × %d", da, db)
			}
			if Deg[uint64](f, got) != da+db {
				t.Fatalf("deg(ab) = %d, want %d", Deg[uint64](f, got), da+db)
			}
		}
	}
	if Mul[uint64](f, nil, randPoly(f, src, 5)) != nil {
		t.Fatal("0·b != 0")
	}
}

func TestMulRingAxioms(t *testing.T) {
	f := ff.MustFp64(ff.P31)
	src := ff.NewSource(2)
	for i := 0; i < 25; i++ {
		a := randPoly(f, src, src.Intn(60))
		b := randPoly(f, src, src.Intn(60))
		c := randPoly(f, src, src.Intn(60))
		if !Equal[uint64](f, Mul[uint64](f, a, b), Mul[uint64](f, b, a)) {
			t.Fatal("ab != ba")
		}
		lhs := Mul[uint64](f, a, Add[uint64](f, b, c))
		rhs := Add[uint64](f, Mul[uint64](f, a, b), Mul[uint64](f, a, c))
		if !Equal[uint64](f, lhs, rhs) {
			t.Fatal("a(b+c) != ab+ac")
		}
		lhs = Mul[uint64](f, Mul[uint64](f, a, b), c)
		rhs = Mul[uint64](f, a, Mul[uint64](f, b, c))
		if !Equal[uint64](f, lhs, rhs) {
			t.Fatal("(ab)c != a(bc)")
		}
	}
}

func TestDivMod(t *testing.T) {
	f := ff.MustFp64(ff.P31)
	src := ff.NewSource(3)
	for i := 0; i < 50; i++ {
		a := randPoly(f, src, src.Intn(80))
		b := randPoly(f, src, src.Intn(40))
		q, r, err := DivMod[uint64](f, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if Deg[uint64](f, r) >= Deg[uint64](f, b) {
			t.Fatalf("deg r = %d not < deg b = %d", Deg[uint64](f, r), Deg[uint64](f, b))
		}
		recon := Add[uint64](f, Mul[uint64](f, q, b), r)
		if !Equal[uint64](f, recon, Trim[uint64](f, a)) {
			t.Fatal("qb + r != a")
		}
	}
	if _, _, err := DivMod[uint64](f, randPoly(f, src, 3), nil); err != ff.ErrDivisionByZero {
		t.Fatalf("division by zero polynomial: err = %v", err)
	}
}

func TestSeriesInv(t *testing.T) {
	f := ff.MustFp64(ff.P31)
	src := ff.NewSource(4)
	for _, k := range []int{1, 2, 3, 7, 8, 9, 33, 100} {
		a := randPoly(f, src, src.Intn(20))
		a[0] = 1 + src.Uint64n(f.Modulus()-1) // invertible constant term
		inv, err := SeriesInv[uint64](f, a, k)
		if err != nil {
			t.Fatal(err)
		}
		prod := MulTrunc[uint64](f, a, inv, k)
		if !Equal[uint64](f, prod, Constant[uint64](f, f.One())) {
			t.Fatalf("a·a⁻¹ != 1 mod λ^%d", k)
		}
	}
	// Non-invertible constant term must fail.
	if _, err := SeriesInv[uint64](f, []uint64{0, 1}, 4); err == nil {
		t.Fatal("SeriesInv accepted a(0)=0")
	}
}

func TestSeriesDiv(t *testing.T) {
	f := ff.MustFp64(ff.P31)
	src := ff.NewSource(5)
	a := randPoly(f, src, 12)
	b := randPoly(f, src, 9)
	b[0] = 7
	const k = 30
	q, err := SeriesDiv[uint64](f, a, b, k)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal[uint64](f, MulTrunc[uint64](f, q, b, k), TruncDeg[uint64](f, a, k)) {
		t.Fatal("(a/b)·b != a mod λ^k")
	}
}

func TestGCD(t *testing.T) {
	f := ff.MustFp64(ff.P31)
	src := ff.NewSource(6)
	for i := 0; i < 30; i++ {
		g := randPoly(f, src, 1+src.Intn(5))
		a := Mul[uint64](f, g, randPoly(f, src, src.Intn(10)))
		b := Mul[uint64](f, g, randPoly(f, src, src.Intn(10)))
		got, err := GCD[uint64](f, a, b)
		if err != nil {
			t.Fatal(err)
		}
		// gcd must divide both and be divisible by the planted factor.
		for _, x := range [][]uint64{a, b} {
			if _, r, _ := DivMod[uint64](f, x, got); !IsZero[uint64](f, r) {
				t.Fatal("gcd does not divide operand")
			}
		}
		if _, r, _ := DivMod[uint64](f, got, g); !IsZero[uint64](f, r) {
			t.Fatalf("planted factor missing from gcd (deg g=%d, deg gcd=%d)",
				Deg[uint64](f, g), Deg[uint64](f, got))
		}
		if !f.Equal(Lead[uint64](f, got), f.One()) {
			t.Fatal("gcd not monic")
		}
	}
}

func TestGCDExtBezout(t *testing.T) {
	f := ff.MustFp64(ff.P31)
	src := ff.NewSource(7)
	for i := 0; i < 30; i++ {
		a := randPoly(f, src, src.Intn(15))
		b := randPoly(f, src, src.Intn(15))
		g, s, tt, err := GCDExt[uint64](f, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) == 0 && len(b) == 0 {
			continue
		}
		comb := Add[uint64](f, Mul[uint64](f, s, a), Mul[uint64](f, tt, b))
		if !Equal[uint64](f, comb, g) {
			t.Fatal("sa + tb != gcd")
		}
	}
}

func TestEuclideanScheme(t *testing.T) {
	f := f101
	a := FromInt64[uint64](f, []int64{-1, 0, 0, 0, 1}) // λ⁴ − 1
	b := FromInt64[uint64](f, []int64{-1, 0, 1})       // λ² − 1, divides a
	rems, quos, err := EuclideanScheme[uint64](f, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rems) != 2 || len(quos) != 1 {
		t.Fatalf("rems=%d quos=%d, want 2 and 1", len(rems), len(quos))
	}
	// Degrees must strictly decrease.
	src := ff.NewSource(8)
	fp := ff.MustFp64(ff.P31)
	ra := randPoly(fp, src, 20)
	rb := randPoly(fp, src, 15)
	rems, _, err = EuclideanScheme[uint64](fp, ra, rb)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rems); i++ {
		if Deg[uint64](fp, rems[i]) >= Deg[uint64](fp, rems[i-1]) {
			t.Fatal("remainder degrees do not decrease")
		}
	}
}

func TestResultant(t *testing.T) {
	f := f101
	// Res(λ−a, λ−b) = b − a ... with sign convention Res = ∏(roots diff);
	// for monic linear polynomials Res(λ−2, λ−5) = (2−5)·(−1)^{1·1}… the
	// key checks: zero iff common root, and multiplicativity.
	am := FromInt64[uint64](f, []int64{-2, 1})
	bm := FromInt64[uint64](f, []int64{-5, 1})
	r, err := Resultant[uint64](f, am, bm)
	if err != nil {
		t.Fatal(err)
	}
	if f.IsZero(r) {
		t.Fatal("resultant of coprime polynomials is zero")
	}
	r2, err := Resultant[uint64](f, am, am)
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsZero(r2) {
		t.Fatal("resultant of equal polynomials must vanish")
	}
	// Shared factor ⇒ zero.
	shared := Mul[uint64](f, am, bm)
	r3, err := Resultant[uint64](f, shared, am)
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsZero(r3) {
		t.Fatal("resultant with common factor must vanish")
	}
}

func TestEvalAndHorner(t *testing.T) {
	f := f101
	a := FromInt64[uint64](f, []int64{1, 2, 3}) // 1 + 2λ + 3λ²
	if got := Eval[uint64](f, a, f.FromInt64(2)); got != 17 {
		t.Fatalf("Eval = %d, want 17", got)
	}
	if got := Eval[uint64](f, nil, f.FromInt64(2)); got != 0 {
		t.Fatalf("Eval(0) = %d", got)
	}
}

func TestDerivative(t *testing.T) {
	f := f101
	a := FromInt64[uint64](f, []int64{7, 1, 2, 3}) // 7 + λ + 2λ² + 3λ³
	want := FromInt64[uint64](f, []int64{1, 4, 9})
	if !Equal[uint64](f, Derivative[uint64](f, a), want) {
		t.Fatal("Derivative wrong")
	}
	if Derivative[uint64](f, FromInt64[uint64](f, []int64{5})) != nil {
		t.Fatal("derivative of constant must be zero")
	}
}

func TestReverseMonicPow(t *testing.T) {
	f := f101
	a := FromInt64[uint64](f, []int64{1, 2, 3})
	rev := Reverse[uint64](f, a, 2)
	if !Equal[uint64](f, rev, FromInt64[uint64](f, []int64{3, 2, 1})) {
		t.Fatal("Reverse wrong")
	}
	rev4 := Reverse[uint64](f, a, 4)
	if !Equal[uint64](f, rev4, FromInt64[uint64](f, []int64{0, 0, 3, 2, 1})) {
		t.Fatal("padded Reverse wrong")
	}
	m, err := Monic[uint64](f, FromInt64[uint64](f, []int64{4, 2}))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal[uint64](f, m, FromInt64[uint64](f, []int64{2, 1})) {
		t.Fatal("Monic wrong")
	}
	p := Pow[uint64](f, FromInt64[uint64](f, []int64{1, 1}), 3) // (1+λ)³
	if !Equal[uint64](f, p, FromInt64[uint64](f, []int64{1, 3, 3, 1})) {
		t.Fatal("Pow wrong")
	}
}

func TestProductAndFromRoots(t *testing.T) {
	f := f101
	roots := ff.VecFromInt64[uint64](f, []int64{1, 2, 3})
	p := FromRoots[uint64](f, roots)
	// (λ−1)(λ−2)(λ−3) = λ³ − 6λ² + 11λ − 6
	want := FromInt64[uint64](f, []int64{-6, 11, -6, 1})
	if !Equal[uint64](f, p, want) {
		t.Fatalf("FromRoots = %s", String[uint64](f, p))
	}
	for _, r := range roots {
		if !f.IsZero(Eval[uint64](f, p, r)) {
			t.Fatal("root not a root")
		}
	}
	if !Equal[uint64](f, Product[uint64](f, nil), Constant[uint64](f, f.One())) {
		t.Fatal("empty product != 1")
	}
}

func TestInterpolate(t *testing.T) {
	f := ff.MustFp64(ff.P31)
	src := ff.NewSource(9)
	for _, n := range []int{1, 2, 3, 8, 20} {
		// Distinct points 0..n−1, random target polynomial of degree < n.
		xs := make([]uint64, n)
		for i := range xs {
			xs[i] = uint64(i)
		}
		target := randPoly(f, src, n-1)
		ys := EvalMany[uint64](f, target, xs)
		got, err := Interpolate[uint64](f, xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal[uint64](f, got, Trim[uint64](f, target)) {
			t.Fatalf("n=%d: interpolation did not recover the polynomial", n)
		}
	}
	// Repeated nodes must error.
	if _, err := Interpolate[uint64](f, []uint64{1, 1}, []uint64{2, 3}); err == nil {
		t.Fatal("Interpolate accepted repeated nodes")
	}
}

func TestVandermonde(t *testing.T) {
	f := ff.MustFp64(ff.P31)
	src := ff.NewSource(10)
	n := 9
	xs := make([]uint64, n)
	for i := range xs {
		xs[i] = uint64(i + 1)
	}
	c := ff.SampleVec[uint64](f, src, n, ff.P31)
	y := VandermondeApply[uint64](f, xs, c)
	got, err := VandermondeSolve[uint64](f, xs, y)
	if err != nil {
		t.Fatal(err)
	}
	if !ff.VecEqual[uint64](f, got, c) {
		t.Fatal("VandermondeSolve did not invert VandermondeApply")
	}
	// Transposed apply: check one coordinate by hand.
	ct := ff.SampleVec[uint64](f, src, n, ff.P31)
	vt := VandermondeTransposedApply[uint64](f, xs, ct)
	want := f.Zero()
	for i := range xs {
		want = f.Add(want, f.Mul(ct[i], f.Mul(xs[i], xs[i])))
	}
	if vt[2] != want {
		t.Fatal("VandermondeTransposedApply wrong at row 2")
	}
}

func TestMulTruncShiftTrunc(t *testing.T) {
	f := f101
	a := FromInt64[uint64](f, []int64{1, 2, 3, 4, 5})
	if got := TruncDeg[uint64](f, a, 2); !Equal[uint64](f, got, FromInt64[uint64](f, []int64{1, 2})) {
		t.Fatal("TruncDeg wrong")
	}
	if got := ShiftRight[uint64](f, a, 2); !Equal[uint64](f, got, FromInt64[uint64](f, []int64{3, 4, 5})) {
		t.Fatal("ShiftRight wrong")
	}
	if got := ShiftRight[uint64](f, a, 9); got != nil {
		t.Fatal("ShiftRight beyond length must be zero")
	}
	if got := MulXk[uint64](f, FromInt64[uint64](f, []int64{1, 1}), 2); !Equal[uint64](f, got, FromInt64[uint64](f, []int64{0, 0, 1, 1})) {
		t.Fatal("MulXk wrong")
	}
	b := FromInt64[uint64](f, []int64{9, 8, 7})
	if got := MulTrunc[uint64](f, a, b, 3); !Equal[uint64](f, got, TruncDeg[uint64](f, Mul[uint64](f, a, b), 3)) {
		t.Fatal("MulTrunc disagrees with truncated Mul")
	}
}

func TestString(t *testing.T) {
	f := f101
	if got := String[uint64](f, nil); got != "0" {
		t.Fatalf("String(0) = %q", got)
	}
	a := FromInt64[uint64](f, []int64{1, 0, 3})
	if got := String[uint64](f, a); got != "3·λ^2 + 1" {
		t.Fatalf("String = %q", got)
	}
}
