package poly

import "repro/internal/ff"

// GCD returns the monic greatest common divisor of a and b (zero polynomial
// if both are zero). Kaltofen–Pan §5 notes that the Toeplitz machinery
// extends to Sylvester matrices and hence to parallel GCD computation; this
// sequential Euclidean GCD is the reference implementation those
// extensions are validated against (experiment E12).
func GCD[E any](f ff.Field[E], a, b []E) ([]E, error) {
	r0, r1 := Trim(f, a), Trim(f, b)
	for len(r1) != 0 {
		_, rem, err := DivMod(f, r0, r1)
		if err != nil {
			return nil, err
		}
		r0, r1 = r1, rem
	}
	if len(r0) == 0 {
		return nil, nil
	}
	return Monic(f, r0)
}

// GCDExt returns monic g = gcd(a, b) and Bézout cofactors s, t with
// s·a + t·b = g.
func GCDExt[E any](f ff.Field[E], a, b []E) (g, s, t []E, err error) {
	r0, r1 := Trim(f, a), Trim(f, b)
	s0, s1 := Constant(f, f.One()), []E(nil)
	t0, t1 := []E(nil), Constant(f, f.One())
	for len(r1) != 0 {
		q, rem, err := DivMod(f, r0, r1)
		if err != nil {
			return nil, nil, nil, err
		}
		r0, r1 = r1, rem
		s0, s1 = s1, Sub(f, s0, Mul(f, q, s1))
		t0, t1 = t1, Sub(f, t0, Mul(f, q, t1))
	}
	if len(r0) == 0 {
		return nil, nil, nil, nil
	}
	lcInv, err := f.Inv(Lead(f, r0))
	if err != nil {
		return nil, nil, nil, err
	}
	return Scale(f, lcInv, r0), Scale(f, lcInv, s0), Scale(f, lcInv, t0), nil
}

// EuclideanScheme returns the full remainder sequence r₀ = a, r₁ = b,
// r_{i+1} = r_{i−1} mod r_i down to (but excluding) the zero remainder,
// together with the quotients. The paper's §5 extension computes "the
// coefficients of the polynomials in the Euclidean scheme" in parallel;
// this is the sequential reference.
func EuclideanScheme[E any](f ff.Field[E], a, b []E) (rems [][]E, quos [][]E, err error) {
	r0, r1 := Trim(f, a), Trim(f, b)
	rems = [][]E{r0}
	if len(r1) == 0 {
		return rems, nil, nil
	}
	rems = append(rems, r1)
	for len(r1) != 0 {
		q, rem, err := DivMod(f, r0, r1)
		if err != nil {
			return nil, nil, err
		}
		quos = append(quos, q)
		r0, r1 = r1, rem
		if len(r1) != 0 {
			rems = append(rems, r1)
		}
	}
	return rems, quos, nil
}

// Resultant returns the resultant of a and b, computed from the Euclidean
// remainder sequence. Res(a,b) ≠ 0 iff gcd(a,b) = 1; it equals the
// determinant of the Sylvester matrix, which E12 cross-checks against the
// structured-matrix route.
func Resultant[E any](f ff.Field[E], a, b []E) (E, error) {
	a, b = Trim(f, a), Trim(f, b)
	zero := f.Zero()
	if len(a) == 0 || len(b) == 0 {
		return zero, nil
	}
	res := f.One()
	// Standard recursion: Res(a,b) = lc(b)^{deg a − deg r} (−1)^{deg a·deg b} Res(b, r).
	for {
		da, db := len(a)-1, len(b)-1
		if db == 0 {
			// Res(a, const) = const^{deg a}.
			c := b[0]
			p := f.One()
			for i := 0; i < da; i++ {
				p = f.Mul(p, c)
			}
			return f.Mul(res, p), nil
		}
		_, r, err := DivMod(f, a, b)
		if err != nil {
			var z E
			return z, err
		}
		if len(r) == 0 {
			return zero, nil // common factor ⇒ resultant 0
		}
		dr := len(r) - 1
		lc := b[db]
		p := f.One()
		for i := 0; i < da-dr; i++ {
			p = f.Mul(p, lc)
		}
		res = f.Mul(res, p)
		if da%2 == 1 && db%2 == 1 {
			res = f.Neg(res)
		}
		a, b = b, r
	}
}
