package poly

import "repro/internal/ff"

// NTT-based multiplication — the reproduction's stand-in for the paper's
// Cantor–Kaltofen fast polynomial product. When the coefficient field
// advertises 2-power roots of unity (ff.RootsOfUnity), products above
// nttThreshold switch to evaluation–interpolation at O(n log n) operations,
// which is what makes the Theorem 3 circuit size come out at n²·polylog
// instead of the Karatsuba exponent. The transform is pure field
// arithmetic (butterflies and constant multiplications), so it traces
// through the circuit builder like everything else.

// nttThreshold is the result length above which NTT multiplication is
// attempted. Below it Karatsuba/schoolbook wins on constants.
const nttThreshold = 32

// tryMulNTT multiplies via NTT if the field supports it at the needed
// size; ok=false falls back to the classical path.
func tryMulNTT[E any](f ff.Field[E], a, b []E) ([]E, bool) {
	r, capable := any(f).(ff.RootsOfUnity[E])
	if !capable {
		return nil, false
	}
	resLen := len(a) + len(b) - 1
	if resLen < nttThreshold || min(len(a), len(b)) < nttThreshold/4 {
		// Lopsided products (scalar-by-vector and similar) are cheaper —
		// in work and, crucially, in traced circuit depth — as direct
		// convolutions: an NTT would pay 3 transforms for a product that
		// schoolbook finishes at depth O(log min).
		return nil, false
	}
	log2n := 0
	n := 1
	for n < resLen {
		n <<= 1
		log2n++
	}
	root, ok := r.RootOfUnity(log2n)
	if !ok {
		return nil, false
	}
	fa := padTo(f, a, n)
	fb := padTo(f, b, n)
	nttInPlace(f, fa, root, log2n)
	nttInPlace(f, fb, root, log2n)
	for i := range fa {
		fa[i] = f.Mul(fa[i], fb[i])
	}
	if err := inverseNTTInPlace(f, fa, root, log2n); err != nil {
		return nil, false
	}
	return fa[:resLen], true
}

func padTo[E any](f ff.Field[E], a []E, n int) []E {
	out := make([]E, n)
	copy(out, a)
	for i := len(a); i < n; i++ {
		out[i] = f.Zero()
	}
	return out
}

// nttInPlace is the iterative radix-2 Cooley–Tukey transform: bit-reversal
// permutation followed by log2n butterfly rounds. root must be a primitive
// 2^log2n-th root of unity.
func nttInPlace[E any](f ff.Field[E], a []E, root E, log2n int) {
	// Fields with a fused transform (ff.NTTKernel: Fp64's Montgomery-domain
	// butterflies) run it directly; wrappers and abstract fields keep the
	// generic loop below, preserving op counts and traced circuit shape.
	if ker, ok := any(f).(ff.NTTKernel[E]); ok && ker.NTTInPlace(a, root, log2n) {
		return
	}
	n := len(a)
	bitReverse(a, log2n)
	// Precompute the per-stage roots: stage s uses ω_s = root^(2^{log2n−s}),
	// a primitive 2^s-th root.
	stageRoot := make([]E, log2n+1)
	stageRoot[log2n] = root
	for s := log2n - 1; s >= 1; s-- {
		stageRoot[s] = f.Mul(stageRoot[s+1], stageRoot[s+1])
	}
	// One twiddle buffer serves every stage: stage s needs the m/2 ≤ n/2
	// powers 1, ω_s, ω_s², …, computed once per stage instead of once per
	// block — for the early stages that removes a factor n/m of the
	// twiddle multiplications, and the butterfly loop becomes pure
	// table-indexed arithmetic.
	tw := make([]E, n/2)
	for s := 1; s <= log2n; s++ {
		m := 1 << s
		half := m / 2
		wm := stageRoot[s]
		w := f.One()
		for j := 0; j < half; j++ {
			tw[j] = w
			w = f.Mul(w, wm)
		}
		for k := 0; k < n; k += m {
			for j := 0; j < half; j++ {
				t := f.Mul(tw[j], a[k+j+half])
				u := a[k+j]
				a[k+j] = f.Add(u, t)
				a[k+j+half] = f.Sub(u, t)
			}
		}
	}
}

// inverseNTTInPlace applies the inverse transform: NTT with root⁻¹ followed
// by division by n.
func inverseNTTInPlace[E any](f ff.Field[E], a []E, root E, log2n int) error {
	rootInv, err := f.Inv(root)
	if err != nil {
		return err
	}
	nttInPlace(f, a, rootInv, log2n)
	nInv, err := f.Inv(f.FromInt64(int64(len(a))))
	if err != nil {
		return err
	}
	ff.VecScaleInto(f, a, nInv, a)
	return nil
}

func bitReverse[E any](a []E, log2n int) {
	n := len(a)
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
	}
	_ = log2n
}
