package poly

import "repro/internal/ff"

// fastDivThreshold gates the Newton-division path: both the divisor degree
// and the quotient degree must reach it before the reversal trick beats
// schoolbook long division.
const fastDivThreshold = 32

// DivMod returns the Euclidean quotient and remainder of a by b, with
// deg(r) < deg(b). The divisor must be non-zero; its leading coefficient is
// inverted, which can surface ff.ErrDivisionByZero only through symbolic
// fields (the circuit builder defers the zero test to evaluation time).
// Large operands dispatch to Newton division (reverse + power-series
// inverse, O(M(n)) instead of O(n·m)) — the ingredient that keeps the
// subproduct-tree algorithms at M(n)·log n.
func DivMod[E any](f ff.Field[E], a, b []E) (q, r []E, err error) {
	a, b = Trim(f, a), Trim(f, b)
	if len(b) == 0 {
		return nil, nil, ff.ErrDivisionByZero
	}
	if len(a) < len(b) {
		return nil, a, nil
	}
	if len(b) >= fastDivThreshold && len(a)-len(b) >= fastDivThreshold {
		return divModNewton(f, a, b)
	}
	lcInv, err := f.Inv(b[len(b)-1])
	if err != nil {
		return nil, nil, err
	}
	rem := append([]E(nil), a...)
	q = make([]E, len(a)-len(b)+1)
	for i := range q {
		q[i] = f.Zero()
	}
	for len(rem) >= len(b) {
		d := len(rem) - len(b)
		c := f.Mul(rem[len(rem)-1], lcInv)
		q[d] = c
		for i := range b {
			rem[d+i] = f.Sub(rem[d+i], f.Mul(c, b[i]))
		}
		rem = Trim(f, rem[:len(rem)-1])
	}
	return Trim(f, q), rem, nil
}

// Rem returns a mod b.
func Rem[E any](f ff.Field[E], a, b []E) ([]E, error) {
	_, r, err := DivMod(f, a, b)
	return r, err
}

// divModNewton divides by the classical reversal trick: with n = deg a,
// m = deg b, k = n − m + 1, the quotient is
//
//	q = rev_k( rev_n(a) · rev_m(b)⁻¹ mod λᵏ )
//
// (one power-series inversion plus two products), and r = a − q·b needs
// only the low m coefficients.
func divModNewton[E any](f ff.Field[E], a, b []E) (q, r []E, err error) {
	n, m := len(a)-1, len(b)-1
	k := n - m + 1
	ra := Reverse(f, a, n)
	rb := Reverse(f, b, m)
	rbInv, err := SeriesInv(f, rb, k)
	if err != nil {
		return nil, nil, err // leading coefficient of b not invertible
	}
	rq := MulTrunc(f, ra, rbInv, k)
	q = make([]E, k)
	for i := range q {
		q[i] = Coef(f, rq, k-1-i)
	}
	q = Trim(f, q)
	qb := MulTrunc(f, q, b, m)
	r = Sub(f, TruncDeg(f, a, m), qb)
	return q, r, nil
}

// SeriesInv returns the power-series inverse of a modulo λ^k by Newton
// iteration: y ← y(2 − a·y), doubling the precision each step. This is the
// primitive the paper's §3 uses to divide by u₁^{(i−1)}(λ) inside the
// Gohberg/Semencul Newton iteration ("That expansion ... can be obtained
// ... with 2 Newton iteration steps", citing Lipson 1981).
//
// The constant term a(0) must be invertible; otherwise the series inverse
// does not exist and an error is returned.
func SeriesInv[E any](f ff.Field[E], a []E, k int) ([]E, error) {
	if k <= 0 {
		return nil, nil
	}
	c0 := Coef(f, a, 0)
	y0, err := f.Inv(c0)
	if err != nil {
		return nil, err
	}
	y := []E{y0}
	two := f.FromInt64(2)
	for prec := 1; prec < k; {
		prec *= 2
		if prec > k {
			prec = k
		}
		// y ← y(2 − a·y) mod λ^prec
		ay := MulTrunc(f, TruncDeg(f, a, prec), y, prec)
		corr := Sub(f, Constant(f, two), ay)
		y = MulTrunc(f, y, corr, prec)
	}
	return TruncDeg(f, y, k), nil
}

// SeriesDiv returns a/b as a power series modulo λ^k (b(0) invertible).
func SeriesDiv[E any](f ff.Field[E], a, b []E, k int) ([]E, error) {
	bi, err := SeriesInv(f, b, k)
	if err != nil {
		return nil, err
	}
	return MulTrunc(f, TruncDeg(f, a, k), bi, k), nil
}
