// Package charpoly collects characteristic-polynomial algorithms: the
// Leverrier/Newton-identity step at the heart of Kaltofen–Pan's Theorem 3,
// its depth-efficient power-series form (Schönhage 1982), and the baselines
// the paper positions itself against — Csanky (1976), the division-free
// Berkowitz (1984) algorithm, Chistov's (1985) any-characteristic method,
// and a Hessenberg-reduction cross-check.
//
// Convention: a characteristic polynomial is returned as the coefficient
// slice of det(λI − A), low degree first, monic of length n+1.
package charpoly

import (
	"errors"
	"fmt"

	"repro/internal/ff"
	"repro/internal/poly"
)

// ErrSmallCharacteristic is returned by the Leverrier/Csanky routines when
// the field characteristic is positive and ≤ n: they divide by 2, 3, …, n,
// "the same restriction on the characteristic of the field as ... Csanky's
// solution" (Kaltofen–Pan §1). Use Berkowitz or Chistov instead.
var ErrSmallCharacteristic = errors.New("charpoly: field characteristic ≤ n; use a division-free method")

// PowerSumsToCharPoly recovers the characteristic polynomial from the power
// sums s[i] = Trace(A^{i+1}) = Σ λ_k^{i+1} for i = 0..n−1, by solving the
// paper's lower-triangular Newton-identity system
//
//	( 1            ) (c₁)   (s₁)
//	( s₁   2       ) (c₂) = (s₂)   det(λI−A) = λⁿ − c₁λ^{n−1} − … − cₙ
//	( s₂   s₁  3   ) (c₃)   (s₃)
//	( …            ) (…)    (…)
//
// by forward substitution (O(n²) operations, depth O(n); the circuit path
// uses PowerSumsToCharPolySeries instead). Requires characteristic 0 or > n.
func PowerSumsToCharPoly[E any](f ff.Field[E], s []E) ([]E, error) {
	n := len(s)
	if !ff.CharacteristicExceeds(f, n) {
		return nil, ErrSmallCharacteristic
	}
	c := make([]E, n) // c[k−1] = c_k
	for k := 1; k <= n; k++ {
		// k·c_k = s_k − Σ_{i=1}^{k−1} s_{k−i}·c_i
		acc := s[k-1]
		for i := 1; i < k; i++ {
			acc = f.Sub(acc, f.Mul(s[k-i-1], c[i-1]))
		}
		v, err := f.Div(acc, f.FromInt64(int64(k)))
		if err != nil {
			return nil, fmt.Errorf("charpoly: dividing by %d: %w", k, err)
		}
		c[k-1] = v
	}
	// Assemble λⁿ − c₁λ^{n−1} − … − cₙ, low degree first.
	cp := make([]E, n+1)
	for k := 1; k <= n; k++ {
		cp[n-k] = f.Neg(c[k-1])
	}
	cp[n] = f.One()
	return cp, nil
}

// PowerSumsToCharPolySeries recovers the characteristic polynomial from
// power sums with power-series exponentials (Schönhage 1982, cited by the
// paper for solving the Newton-identity system in O((log n)²) depth):
//
//	det(I − λA) = exp(−Σ_{i≥1} s_i λ^i / i)   (mod λ^{n+1})
//
// followed by degree-n reversal. All loops double precision, so the traced
// circuit has depth O((log n)²). Requires characteristic 0 or > n (the
// formal integral divides by 1, …, n).
func PowerSumsToCharPolySeries[E any](f ff.Field[E], s []E) ([]E, error) {
	n := len(s)
	if !ff.CharacteristicExceeds(f, n) {
		return nil, ErrSmallCharacteristic
	}
	// g = −Σ s_i λ^i / i, a series with zero constant term.
	g := make([]E, n+1)
	g[0] = f.Zero()
	for i := 1; i <= n; i++ {
		v, err := f.Div(s[i-1], f.FromInt64(int64(i)))
		if err != nil {
			return nil, err
		}
		g[i] = f.Neg(v)
	}
	rev, err := SeriesExp(f, g, n+1)
	if err != nil {
		return nil, err
	}
	// det(λI − A) = λⁿ·det(I − (1/λ)A): reverse at degree n.
	cp := poly.Reverse(f, rev, n)
	// Pad to exact length n+1 (the reversal is monic: rev(0) = 1).
	out := make([]E, n+1)
	for i := range out {
		out[i] = poly.Coef(f, cp, i)
	}
	return out, nil
}

// SeriesLog returns log(a/a(0)) mod λ^k via the formal integral of a′/a,
// which is insensitive to constant scaling; for the a(0) = 1 series the
// algorithms feed it, this is log(a). Requires invertible a(0) (the
// division reports ff.ErrDivisionByZero otherwise) and divides by
// 1, …, k−1. No structural precondition is checked, so the function also
// works on symbolic (circuit-traced) series whose constant term is 1 only
// value-wise.
func SeriesLog[E any](f ff.Field[E], a []E, k int) ([]E, error) {
	da := poly.Derivative(f, a)
	q, err := poly.SeriesDiv(f, da, a, k-1)
	if err != nil {
		return nil, err
	}
	return seriesIntegrate(f, q, k)
}

// seriesIntegrate returns ∫a mod λ^k (constant of integration zero).
func seriesIntegrate[E any](f ff.Field[E], a []E, k int) ([]E, error) {
	out := make([]E, k)
	out[0] = f.Zero()
	for i := 1; i < k; i++ {
		c := poly.Coef(f, a, i-1)
		v, err := f.Div(c, f.FromInt64(int64(i)))
		if err != nil {
			return nil, fmt.Errorf("charpoly: integrating term %d: %w", i, err)
		}
		out[i] = v
	}
	return poly.Trim(f, out), nil
}

// SeriesExp returns exp(g) mod λ^k for a series with g(0) = 0, via the
// Newton iteration y ← y·(1 + g − log y), doubling precision each round.
// The reciprocal 1/y needed by each log step is maintained incrementally
// (one scalar Newton step per round) rather than recomputed, keeping the
// traced circuit at O(1) products per round and O((log n)²) total depth —
// the same device the §3 Toeplitz iteration uses for 1/u₁.
func SeriesExp[E any](f ff.Field[E], g []E, k int) ([]E, error) {
	if !f.IsZero(poly.Coef(f, g, 0)) {
		return nil, errors.New("charpoly: SeriesExp needs zero constant term")
	}
	y := []E{f.One()}
	z := []E{f.One()} // ≈ 1/y at the previous precision
	two := poly.Constant(f, f.FromInt64(2))
	for prec := 1; prec < k; {
		prec *= 2
		if prec > k {
			prec = k
		}
		// Refresh z ← z(2 − y·z) to the current precision (two steps: the
		// first lifts the round's doubling, the second absorbs the final
		// odd truncation exactly like the paper's u₁ update).
		for step := 0; step < 2; step++ {
			z = poly.MulTrunc(f, z, poly.Sub(f, two, poly.MulTrunc(f, y, z, prec)), prec)
		}
		// log y = ∫ y′·(1/y).
		ly, err := seriesIntegrate(f, poly.MulTrunc(f, poly.Derivative(f, y), z, prec-1), prec)
		if err != nil {
			return nil, err
		}
		// corr = 1 + g − log y
		corr := poly.Add(f, poly.Constant(f, f.One()),
			poly.Sub(f, poly.TruncDeg(f, g, prec), ly))
		y = poly.MulTrunc(f, y, corr, prec)
	}
	return poly.TruncDeg(f, y, k), nil
}
