package charpoly

import (
	"repro/internal/ff"
	"repro/internal/matrix"
)

// CharPolyBerkowitz returns det(λI − A) by Berkowitz's (1984) division-free
// algorithm. It works over any commutative ring — in particular over every
// characteristic — which is why the paper cites it as the best previous
// parallel approach for small characteristic ("needed by a factor of n more
// processors"). This sequential form is Θ(n⁴) ring operations.
//
// The algorithm grows the characteristic polynomial of the leading
// principal submatrices: with A_r = [[M, S], [R, d]] partitioned around the
// last row/column, the coefficient vector of charpoly(A_r) is the product
// of a lower-triangular Toeplitz matrix — whose first column is
// (1, −d, −RS, −RMS, −RM²S, …) — with the coefficient vector of
// charpoly(M).
func CharPolyBerkowitz[E any](f ff.Field[E], a *matrix.Dense[E]) []E {
	n := a.Rows
	if n != a.Cols {
		panic("charpoly: Berkowitz needs a square matrix")
	}
	// Coefficients high degree first: c[0]·λ^r + c[1]·λ^{r−1} + …
	c := []E{f.One()}
	for r := 1; r <= n; r++ {
		d := a.At(r-1, r-1)
		// R = row r−1 of the first r−1 columns, S = column r−1 of the
		// first r−1 rows, M = leading (r−1)×(r−1) block.
		rRow := make([]E, r-1)
		s := make([]E, r-1)
		for j := 0; j < r-1; j++ {
			rRow[j] = a.At(r-1, j)
			s[j] = a.At(j, r-1)
		}
		// Toeplitz column t = (1, −d, −R·S, −R·M·S, −R·M²·S, …), length r+1.
		t := make([]E, r+1)
		t[0] = f.One()
		t[1] = f.Neg(d)
		v := s
		for k := 2; k <= r; k++ {
			t[k] = f.Neg(ff.Dot(f, rRow, v))
			if k < r {
				v = mulLeadingBlock(f, a, r-1, v)
			}
		}
		// c ← (lower-triangular Toeplitz from t)·c, i.e. truncated
		// convolution of t with c, keeping r+1 coefficients.
		next := make([]E, r+1)
		for i := 0; i <= r; i++ {
			acc := f.Zero()
			for j := 0; j < len(c) && j <= i; j++ {
				if i-j <= r {
					acc = f.Add(acc, f.Mul(t[i-j], c[j]))
				}
			}
			next[i] = acc
		}
		c = next
	}
	// Convert to low-degree-first: charpoly[k] = c[n−k].
	out := make([]E, n+1)
	for k := 0; k <= n; k++ {
		out[k] = c[n-k]
	}
	return out
}

// mulLeadingBlock returns M·v where M is the leading k×k block of a,
// without materializing M.
func mulLeadingBlock[E any](f ff.Field[E], a *matrix.Dense[E], k int, v []E) []E {
	out := make([]E, k)
	for i := 0; i < k; i++ {
		terms := make([]E, k)
		for j := 0; j < k; j++ {
			terms[j] = f.Mul(a.At(i, j), v[j])
		}
		out[i] = ff.SumTree(f, terms)
	}
	return out
}

// DetBerkowitz returns det(A) division-free: (−1)ⁿ times the constant term
// of the characteristic polynomial.
func DetBerkowitz[E any](f ff.Field[E], a *matrix.Dense[E]) E {
	cp := CharPolyBerkowitz(f, a)
	d := cp[0]
	if a.Rows%2 == 1 {
		d = f.Neg(d)
	}
	return d
}
