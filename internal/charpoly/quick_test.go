package charpoly

import (
	"testing"
	"testing/quick"

	"repro/internal/ff"
	"repro/internal/matrix"
	"repro/internal/poly"
)

var qf = ff.MustFp64(ff.P31)

func mkMat(seed []uint64, n int) *matrix.Dense[uint64] {
	m := matrix.NewDense[uint64](qf, n, n)
	for i := range m.Data {
		var v uint64 = uint64(i)*0x9e3779b97f4a7c15 + 11
		if len(seed) > 0 {
			v += seed[i%len(seed)]
		}
		m.Data[i] = qf.Elem(v)
	}
	return m
}

// Characteristic polynomials are similarity invariants: charpoly(AB) =
// charpoly(BA) for square A, B (they are similar up to a rank argument;
// over a field the identity holds for all square A, B).
func TestQuickCharPolyABequalsBA(t *testing.T) {
	prop := func(sa, sb []uint64, nRaw uint8) bool {
		n := 1 + int(nRaw%6)
		a, b := mkMat(sa, n), mkMat(sb, n)
		pab := CharPolyBerkowitz[uint64](qf, matrix.Mul[uint64](qf, a, b))
		pba := CharPolyBerkowitz[uint64](qf, matrix.Mul[uint64](qf, b, a))
		return poly.Equal[uint64](qf, pab, pba)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// charpoly(Aᵀ) = charpoly(A).
func TestQuickCharPolyTransposeInvariant(t *testing.T) {
	prop := func(sa []uint64, nRaw uint8) bool {
		n := 1 + int(nRaw%7)
		a := mkMat(sa, n)
		pa := CharPolyBerkowitz[uint64](qf, a)
		pat := CharPolyBerkowitz[uint64](qf, a.Transpose())
		return poly.Equal[uint64](qf, pa, pat)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// All four algorithms agree on random instances (the cross-validation
// property, fuzz-style).
func TestQuickAllCharPolyMethodsAgree(t *testing.T) {
	prop := func(sa []uint64, nRaw uint8) bool {
		n := 1 + int(nRaw%6)
		a := mkMat(sa, n)
		berk := CharPolyBerkowitz[uint64](qf, a)
		cs, err := CharPolyCsanky[uint64](qf, matrix.Classical[uint64]{}, a)
		if err != nil {
			return false
		}
		ch, err := CharPolyChistov[uint64](qf, a)
		if err != nil {
			return false
		}
		hs, err := CharPolyHessenberg[uint64](qf, a)
		if err != nil {
			return false
		}
		return poly.Equal[uint64](qf, berk, cs) &&
			poly.Equal[uint64](qf, berk, ch) &&
			poly.Equal[uint64](qf, berk, hs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The characteristic polynomial of a triangular matrix is ∏(λ − dᵢ).
func TestQuickTriangularCharPoly(t *testing.T) {
	prop := func(sd []uint64, nRaw uint8) bool {
		n := 1 + int(nRaw%7)
		a := matrix.NewDense[uint64](qf, n, n)
		diag := make([]uint64, n)
		for i := 0; i < n; i++ {
			var v uint64 = uint64(i)*7 + 1
			if len(sd) > 0 {
				v += sd[i%len(sd)]
			}
			diag[i] = qf.Elem(v)
			a.Set(i, i, diag[i])
			for j := i + 1; j < n; j++ {
				a.Set(i, j, qf.Elem(v*31+uint64(j)))
			}
		}
		got := CharPolyBerkowitz[uint64](qf, a)
		want := poly.FromRoots[uint64](qf, diag)
		return poly.Equal[uint64](qf, got, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
