package charpoly

import (
	"repro/internal/ff"
	"repro/internal/matrix"
	"repro/internal/poly"
)

// CharPolyHessenberg returns det(λI − A) by similarity reduction to upper
// Hessenberg form followed by the standard determinant recurrence — an
// O(n³) sequential algorithm valid over any field. Unlike the paper's
// circuits it uses zero tests (pivot selection), so it serves purely as a
// fast cross-check baseline.
func CharPolyHessenberg[E any](f ff.Field[E], a *matrix.Dense[E]) ([]E, error) {
	n := a.Rows
	if n != a.Cols {
		panic("charpoly: Hessenberg needs a square matrix")
	}
	if n == 0 {
		return []E{f.One()}, nil
	}
	h := a.Clone()
	// Reduce columns 0..n−3: zero out entries below the first subdiagonal
	// by similarity transformations (row op + matching inverse column op).
	for col := 0; col < n-2; col++ {
		// Pivot search in column col, rows col+1..n−1.
		pivot := -1
		for r := col + 1; r < n; r++ {
			if !f.IsZero(h.At(r, col)) {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue // column already reduced
		}
		if pivot != col+1 {
			similaritySwap(h, pivot, col+1)
		}
		pInv, err := f.Inv(h.At(col+1, col))
		if err != nil {
			return nil, err
		}
		for r := col + 2; r < n; r++ {
			factor := f.Mul(h.At(r, col), pInv)
			if f.IsZero(factor) {
				continue
			}
			// Row r ← row r − factor·row (col+1); column col+1 ← column
			// (col+1) + factor·column r (the inverse transformation).
			for c := 0; c < n; c++ {
				h.Set(r, c, f.Sub(h.At(r, c), f.Mul(factor, h.At(col+1, c))))
			}
			for rr := 0; rr < n; rr++ {
				h.Set(rr, col+1, f.Add(h.At(rr, col+1), f.Mul(factor, h.At(rr, r))))
			}
		}
	}
	// Determinant recurrence on the Hessenberg matrix:
	// p₀ = 1, p_k(λ) = (λ − h_{k,k})p_{k−1}
	//                  − Σ_{i<k} h_{i,k}·(∏_{j=i+1..k−1} h_{j+1,j})·p_i
	// with 0-based indices over the leading k×k blocks.
	ps := make([][]E, n+1)
	ps[0] = poly.Constant(f, f.One())
	for k := 1; k <= n; k++ {
		term := poly.Mul(f, []E{f.Neg(h.At(k-1, k-1)), f.One()}, ps[k-1])
		prod := f.One()
		for i := k - 2; i >= 0; i-- {
			prod = f.Mul(prod, h.At(i+1, i))
			coef := f.Mul(h.At(i, k-1), prod)
			term = poly.Sub(f, term, poly.Scale(f, coef, ps[i]))
		}
		ps[k] = term
	}
	out := make([]E, n+1)
	for i := range out {
		out[i] = poly.Coef(f, ps[n], i)
	}
	return out, nil
}

func similaritySwap[E any](m *matrix.Dense[E], a, b int) {
	// Swap rows a,b and columns a,b (a similarity by a transposition).
	for c := 0; c < m.Cols; c++ {
		va, vb := m.At(a, c), m.At(b, c)
		m.Set(a, c, vb)
		m.Set(b, c, va)
	}
	for r := 0; r < m.Rows; r++ {
		va, vb := m.At(r, a), m.At(r, b)
		m.Set(r, a, vb)
		m.Set(r, b, va)
	}
}
