package charpoly

import (
	"math/big"
	"testing"

	"repro/internal/ff"
	"repro/internal/matrix"
	"repro/internal/poly"
)

var fp = ff.MustFp64(ff.P31)

func classical() matrix.Classical[uint64] { return matrix.Classical[uint64]{} }

func TestAllMethodsAgreeLargeChar(t *testing.T) {
	f := fp
	src := ff.NewSource(51)
	for _, n := range []int{1, 2, 3, 5, 8, 12} {
		a := matrix.Random[uint64](f, src, n, n, ff.P31)
		berk := CharPolyBerkowitz[uint64](f, a)
		csanky, err := CharPolyCsanky[uint64](f, classical(), a)
		if err != nil {
			t.Fatal(err)
		}
		chist, err := CharPolyChistov[uint64](f, a)
		if err != nil {
			t.Fatal(err)
		}
		hess, err := CharPolyHessenberg[uint64](f, a)
		if err != nil {
			t.Fatal(err)
		}
		for name, cp := range map[string][]uint64{
			"csanky": csanky, "chistov": chist, "hessenberg": hess,
		} {
			if !poly.Equal[uint64](f, cp, berk) {
				t.Fatalf("n=%d: %s = %s disagrees with berkowitz = %s", n, name,
					poly.String[uint64](f, cp), poly.String[uint64](f, berk))
			}
		}
		// Constant term = (−1)ⁿ det(A) against LU.
		det, err := matrix.Det[uint64](f, a)
		if err != nil {
			t.Fatal(err)
		}
		c0 := berk[0]
		if n%2 == 1 {
			c0 = f.Neg(c0)
		}
		if c0 != det {
			t.Fatalf("n=%d: charpoly constant term inconsistent with LU det", n)
		}
		// Coefficient of λ^{n−1} = −Trace(A).
		if berk[n-1] != f.Neg(a.Trace(f)) {
			t.Fatalf("n=%d: trace coefficient wrong", n)
		}
	}
}

func TestCharPolyKnownMatrix(t *testing.T) {
	f := ff.MustFp64(101)
	// A = {{2,1},{1,2}}: charpoly λ² − 4λ + 3 (eigenvalues 1, 3).
	a := matrix.FromRows[uint64](f, [][]int64{{2, 1}, {1, 2}})
	want := poly.FromInt64[uint64](f, []int64{3, -4, 1})
	berk := CharPolyBerkowitz[uint64](f, a)
	if !poly.Equal[uint64](f, berk, want) {
		t.Fatalf("Berkowitz = %s", poly.String[uint64](f, berk))
	}
	cs, err := CharPolyCsanky[uint64](f, matrix.Classical[uint64]{}, a)
	if err != nil {
		t.Fatal(err)
	}
	if !poly.Equal[uint64](f, cs, want) {
		t.Fatalf("Csanky = %s", poly.String[uint64](f, cs))
	}
}

func TestCayleyHamilton(t *testing.T) {
	f := fp
	src := ff.NewSource(53)
	for _, n := range []int{2, 4, 6} {
		a := matrix.Random[uint64](f, src, n, n, ff.P31)
		cp := CharPolyBerkowitz[uint64](f, a)
		// p(A) must be the zero matrix.
		acc := matrix.NewDense[uint64](f, n, n)
		pow := matrix.Identity[uint64](f, n)
		for k := 0; k <= n; k++ {
			acc = acc.Add(f, pow.Scale(f, cp[k]))
			if k < n {
				pow = matrix.Mul[uint64](f, pow, a)
			}
		}
		if !acc.IsZero(f) {
			t.Fatalf("n=%d: Cayley–Hamilton violated", n)
		}
	}
}

func TestSmallCharacteristicMethods(t *testing.T) {
	// Over F₂ and F₃ with n ≥ char: Leverrier must refuse, Berkowitz,
	// Chistov and Hessenberg must agree.
	for _, p := range []uint64{2, 3} {
		f := ff.MustFp64(p)
		src := ff.NewSource(55 + p)
		n := 6
		a := matrix.Random[uint64](f, src, n, n, p)
		if _, err := CharPolyCsanky[uint64](f, matrix.Classical[uint64]{}, a); err != ErrSmallCharacteristic {
			t.Fatalf("F_%d: Csanky err = %v, want ErrSmallCharacteristic", p, err)
		}
		berk := CharPolyBerkowitz[uint64](f, a)
		chist, err := CharPolyChistov[uint64](f, a)
		if err != nil {
			t.Fatal(err)
		}
		hess, err := CharPolyHessenberg[uint64](f, a)
		if err != nil {
			t.Fatal(err)
		}
		if !poly.Equal[uint64](f, chist, berk) {
			t.Fatalf("F_%d: Chistov %s != Berkowitz %s", p,
				poly.String[uint64](f, chist), poly.String[uint64](f, berk))
		}
		if !poly.Equal[uint64](f, hess, berk) {
			t.Fatalf("F_%d: Hessenberg disagrees", p)
		}
		d, err := DetChistov[uint64](f, a)
		if err != nil {
			t.Fatal(err)
		}
		lu, err := matrix.Det[uint64](f, a)
		if err != nil {
			t.Fatal(err)
		}
		if d != lu {
			t.Fatalf("F_%d: DetChistov = %d, LU det = %d", p, d, lu)
		}
		if DetBerkowitz[uint64](f, a) != lu {
			t.Fatalf("F_%d: DetBerkowitz disagrees with LU", p)
		}
	}
}

func TestCharPolyOverGF2k(t *testing.T) {
	// Extension field of characteristic 2: Chistov and Berkowitz agree.
	f, err := ff.NewGF2k(8, ff.NewSource(57))
	if err != nil {
		t.Fatal(err)
	}
	src := ff.NewSource(58)
	n := 5
	a := matrix.Random[[]uint64](f, src, n, n, 256)
	berk := CharPolyBerkowitz[[]uint64](f, a)
	chist, err := CharPolyChistov[[]uint64](f, a)
	if err != nil {
		t.Fatal(err)
	}
	if !poly.Equal[[]uint64](f, chist, berk) {
		t.Fatal("GF(2^8): Chistov disagrees with Berkowitz")
	}
}

func TestCharPolyOverRationals(t *testing.T) {
	f := ff.NewRat()
	a := matrix.FromRows[*big.Rat](f, [][]int64{{0, 1, 0}, {0, 0, 1}, {6, -11, 6}})
	// Companion matrix of λ³ − 6λ² + 11λ − 6 = (λ−1)(λ−2)(λ−3).
	want := poly.FromInt64[*big.Rat](f, []int64{-6, 11, -6, 1})
	cs, err := CharPolyCsanky[*big.Rat](f, matrix.Classical[*big.Rat]{}, a)
	if err != nil {
		t.Fatal(err)
	}
	if !poly.Equal[*big.Rat](f, cs, want) {
		t.Fatalf("companion charpoly = %s", poly.String[*big.Rat](f, cs))
	}
}

func TestInverseCsanky(t *testing.T) {
	f := fp
	src := ff.NewSource(59)
	for _, n := range []int{1, 2, 5, 9} {
		a := matrix.Random[uint64](f, src, n, n, ff.P31)
		inv, err := InverseCsanky[uint64](f, classical(), a)
		if err == matrix.ErrSingular {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.Mul[uint64](f, a, inv).Equal(f, matrix.Identity[uint64](f, n)) {
			t.Fatalf("n=%d: Csanky inverse wrong", n)
		}
		b := ff.SampleVec[uint64](f, src, n, ff.P31)
		x, err := SolveCsanky[uint64](f, classical(), a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !ff.VecEqual[uint64](f, a.MulVec(f, x), b) {
			t.Fatalf("n=%d: Csanky solve wrong", n)
		}
	}
	// Singular input must be reported.
	s := matrix.FromRows[uint64](f, [][]int64{{1, 2}, {2, 4}})
	if _, err := InverseCsanky[uint64](f, classical(), s); err != matrix.ErrSingular {
		t.Fatalf("singular: err = %v", err)
	}
}

func TestPowerSumsSeriesMatchesSequential(t *testing.T) {
	f := fp
	src := ff.NewSource(61)
	for _, n := range []int{1, 2, 3, 7, 16} {
		a := matrix.Random[uint64](f, src, n, n, ff.P31)
		s := PowerTraces[uint64](f, classical(), a, n)
		seq, err := PowerSumsToCharPoly[uint64](f, s)
		if err != nil {
			t.Fatal(err)
		}
		ser, err := PowerSumsToCharPolySeries[uint64](f, s)
		if err != nil {
			t.Fatal(err)
		}
		if !poly.Equal[uint64](f, seq, ser) {
			t.Fatalf("n=%d: series route %s != sequential route %s", n,
				poly.String[uint64](f, ser), poly.String[uint64](f, seq))
		}
	}
}

func TestSeriesExpLog(t *testing.T) {
	f := fp
	src := ff.NewSource(63)
	const k = 20
	g := make([]uint64, k)
	for i := 1; i < k; i++ {
		g[i] = src.Uint64n(ff.P31)
	}
	e, err := SeriesExp[uint64](f, g, k)
	if err != nil {
		t.Fatal(err)
	}
	l, err := SeriesLog[uint64](f, e, k)
	if err != nil {
		t.Fatal(err)
	}
	if !poly.Equal[uint64](f, l, poly.Trim[uint64](f, g)) {
		t.Fatal("log(exp(g)) != g")
	}
	// exp(g1+g2) = exp(g1)·exp(g2).
	g2 := make([]uint64, k)
	for i := 1; i < k; i++ {
		g2[i] = src.Uint64n(ff.P31)
	}
	e2, err := SeriesExp[uint64](f, g2, k)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := SeriesExp[uint64](f, poly.Add[uint64](f, g, g2), k)
	if err != nil {
		t.Fatal(err)
	}
	if !poly.Equal[uint64](f, sum, poly.MulTrunc[uint64](f, e, e2, k)) {
		t.Fatal("exp not multiplicative")
	}
	// Constant-term guards.
	if _, err := SeriesExp[uint64](f, []uint64{1}, 4); err == nil {
		t.Fatal("SeriesExp accepted non-zero constant term")
	}
	// SeriesLog normalizes: log(c·a) = log(a) for constant c.
	a := []uint64{1, 5, 7, 9, 11}
	la, err := SeriesLog[uint64](f, a, 5)
	if err != nil {
		t.Fatal(err)
	}
	lca, err := SeriesLog[uint64](f, poly.Scale[uint64](f, 3, a), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !poly.Equal[uint64](f, la, lca) {
		t.Fatal("SeriesLog not scale-invariant")
	}
	// Zero constant term is a genuine division failure.
	if _, err := SeriesLog[uint64](f, []uint64{0, 1}, 4); err == nil {
		t.Fatal("SeriesLog accepted a non-unit")
	}
}
