package charpoly

import (
	"repro/internal/ff"
	"repro/internal/matrix"
	"repro/internal/poly"
)

// CharPolyChistov returns det(λI − A) by Chistov's (1985) method, valid
// over any field. Kaltofen–Pan §5 extend their Toeplitz results to small
// positive characteristic exactly this way: "appeal to Chistov's method
// ... in conjunction with computing for all i ≤ n ... the entry
// ((I_i − λA_i)⁻¹)_{i,i} mod λ^{n+1}".
//
// The identity: with A_i the i-th leading principal submatrix,
//
//	det(I − λA_{i−1}) / det(I − λA_i) = ((I_i − λA_i)⁻¹)_{i,i}
//
// by Cramer's rule, so det(I − λA) telescopes into 1/∏ g_i with
// g_i := ((I_i − λA_i)⁻¹)_{i,i}. Each g_i is the projection of the Neumann
// series Σ λ^j A_i^j e_i onto coordinate i, computed with n+1 black-box
// products; the only inversion is of a power series with constant term 1,
// so no field division ever fails — any characteristic is fine.
func CharPolyChistov[E any](f ff.Field[E], a *matrix.Dense[E]) ([]E, error) {
	n := a.Rows
	if n != a.Cols {
		panic("charpoly: Chistov needs a square matrix")
	}
	if n == 0 {
		return []E{f.One()}, nil
	}
	gs := make([][]E, n)
	for i := 1; i <= n; i++ {
		gs[i-1] = chistovEntry(f, func(v []E) []E {
			return mulLeadingBlock(f, a, i, v)
		}, i, n)
	}
	// ∏ g_i with a balanced product tree, truncated at λ^{n+1}.
	prod := productTrunc(f, gs, n+1)
	rev, err := poly.SeriesInv(f, prod, n+1)
	if err != nil {
		return nil, err // unreachable: constant term is 1
	}
	cp := poly.Reverse(f, rev, n)
	out := make([]E, n+1)
	for k := range out {
		out[k] = poly.Coef(f, cp, k)
	}
	return out, nil
}

// chistovEntry returns ((I_i − λA_i)⁻¹)_{i,i} mod λ^{terms+1} as the series
// Σ_j ((A_i)^j)_{i,i} λ^j, for the leading block applied by apply.
func chistovEntry[E any](f ff.Field[E], apply func([]E) []E, i, terms int) []E {
	v := ff.VecZero(f, i)
	v[i-1] = f.One()
	g := make([]E, terms+1)
	for j := 0; j <= terms; j++ {
		g[j] = v[i-1]
		if j < terms {
			v = apply(v)
		}
	}
	return poly.Trim(f, g)
}

func productTrunc[E any](f ff.Field[E], ps [][]E, k int) []E {
	cur := make([][]E, len(ps))
	copy(cur, ps)
	if len(cur) == 0 {
		return poly.Constant(f, f.One())
	}
	for len(cur) > 1 {
		next := make([][]E, 0, (len(cur)+1)/2)
		for i := 0; i+1 < len(cur); i += 2 {
			next = append(next, poly.MulTrunc(f, cur[i], cur[i+1], k))
		}
		if len(cur)%2 == 1 {
			next = append(next, cur[len(cur)-1])
		}
		cur = next
	}
	return poly.TruncDeg(f, cur[0], k)
}

// DetChistov returns det(A) over any field as (−1)ⁿ times the constant
// term of Chistov's characteristic polynomial.
func DetChistov[E any](f ff.Field[E], a *matrix.Dense[E]) (E, error) {
	cp, err := CharPolyChistov(f, a)
	if err != nil {
		var z E
		return z, err
	}
	d := cp[0]
	if a.Rows%2 == 1 {
		d = f.Neg(d)
	}
	return d, nil
}
