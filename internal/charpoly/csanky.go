package charpoly

import (
	"repro/internal/ff"
	"repro/internal/matrix"
	"repro/internal/obs"
)

// Csanky's (1976) parallel linear-system solver via Leverrier's method —
// the prior art Kaltofen–Pan improve on. It computes all matrix powers
// A, A², …, Aⁿ, their traces, and the Newton-identity system; the power
// computation is what costs "a factor of almost n" more processors than
// matrix multiplication (Preparata–Sarwate, Galil–Pan refined this; the
// straightforward version below is Θ(n·n^ω) work, the paper's point for
// experiment E5).

// CharPolyCsanky returns det(λI − A) by Leverrier's method. Requires
// characteristic 0 or > n.
func CharPolyCsanky[E any](f ff.Field[E], mul matrix.Multiplier[E], a *matrix.Dense[E]) ([]E, error) {
	n := a.Rows
	if n == 0 {
		return []E{f.One()}, nil
	}
	s := PowerTraces(f, mul, a, n)
	sp := obs.StartPhase(obs.PhaseMinPoly)
	defer sp.End()
	return PowerSumsToCharPoly(f, s)
}

// PowerTraces returns s[i] = Trace(A^{i+1}) for i = 0..m−1, computing the
// powers by repeated multiplication (m−1 matrix products: the Θ(n^{ω+1})
// work term that dominates Csanky's processor count).
func PowerTraces[E any](f ff.Field[E], mul matrix.Multiplier[E], a *matrix.Dense[E], m int) []E {
	// The power ladder is Csanky's Krylov analogue — the Θ(n^{ω+1}) work
	// term the KP91 doubling avoids — so it reports under the same phase.
	sp := obs.StartPhase(obs.PhaseKrylov)
	defer sp.End()
	s := make([]E, m)
	pow := a
	for i := 0; i < m; i++ {
		s[i] = pow.Trace(f)
		if i+1 < m {
			pow = mul.Mul(f, pow, a)
		}
	}
	return s
}

// InverseCsanky returns A⁻¹ via the Cayley–Hamilton theorem: with
// det(λI−A) = λⁿ + p₁λ^{n−1} + … + pₙ,
//
//	A⁻¹ = −(1/pₙ)·(A^{n−1} + p₁A^{n−2} + … + p_{n−1}I).
//
// Returns matrix.ErrSingular when pₙ = ±det(A) vanishes.
func InverseCsanky[E any](f ff.Field[E], mul matrix.Multiplier[E], a *matrix.Dense[E]) (*matrix.Dense[E], error) {
	n := a.Rows
	cp, err := CharPolyCsanky(f, mul, a)
	if err != nil {
		return nil, err
	}
	pn := cp[0] // constant term = (−1)ⁿ det(A)
	if f.IsZero(pn) {
		return nil, matrix.ErrSingular
	}
	// Horner on matrices: B = A^{n−1} + p₁A^{n−2} + … + p_{n−1}I where
	// p_k = cp[n−k].
	b := matrix.Identity(f, n) // coefficient of the leading term (monic)
	for k := 1; k <= n-1; k++ {
		b = mul.Mul(f, b, a)
		pk := cp[n-k]
		for i := 0; i < n; i++ {
			b.Set(i, i, f.Add(b.At(i, i), pk))
		}
	}
	negInv, err := f.Inv(pn)
	if err != nil {
		return nil, err
	}
	return b.Scale(f, f.Neg(negInv)), nil
}

// SolveCsanky solves Ax = b through InverseCsanky — the baseline solver of
// experiment E5.
func SolveCsanky[E any](f ff.Field[E], mul matrix.Multiplier[E], a *matrix.Dense[E], b []E) ([]E, error) {
	inv, err := InverseCsanky(f, mul, a)
	if err != nil {
		return nil, err
	}
	return inv.MulVec(f, b), nil
}
