package integration

import (
	"testing"

	"repro/internal/ff"
	"repro/internal/kp"
	"repro/internal/matrix"
	"repro/internal/obs"
)

// TestObservedFailureRateWithinEq2Bound is the acceptance check for the Las
// Vegas statistics module: drive well over 1000 real attempts through
// kp.Solve at a deliberately small sampling subset (|S| = 512 at n = 4, so
// equation (2)'s bound 3n²/|S| = 0.09375 is far from trivial) and assert
// the observed per-attempt failure rate BoundsReport computes stays within
// the paper's bound. On a correct sampler and preconditioner the true rate
// is far below the bound, so this does not flake; a rate above it is
// exactly the regression the module exists to catch.
func TestObservedFailureRateWithinEq2Bound(t *testing.T) {
	obs.ResetAttempts()
	t.Cleanup(obs.ResetAttempts)

	const (
		n      = 4
		subset = 512
		calls  = 1200
	)
	f := ff.MustFp64(ff.P62)
	src := ff.NewSource(20260805)
	var a *matrix.Dense[uint64]
	for {
		a = matrix.Random[uint64](f, src, n, n, f.Modulus())
		if d, err := matrix.Det[uint64](f, a); err == nil && !f.IsZero(d) {
			break
		}
	}
	p := kp.Params{Src: ff.NewSource(41), Subset: subset, Retries: 25}
	for i := 0; i < calls; i++ {
		b := ff.SampleVec[uint64](f, src, n, f.Modulus())
		x, err := kp.Solve[uint64](f, matrix.Classical[uint64]{}, a, b, p)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if !ff.VecEqual[uint64](f, a.MulVec(f, x), b) {
			t.Fatalf("call %d: wrong solution", i)
		}
	}

	var line *obs.BoundsLine
	for _, l := range obs.BoundsReport() {
		if l.Solver == "kp.solve" && l.N == n && l.Subset == subset {
			line = &l
			break
		}
	}
	if line == nil {
		t.Fatal("no (kp.solve, 4, 512) attempt group recorded")
	}
	if line.Attempts < 1000 {
		t.Fatalf("only %d attempts recorded, want ≥ 1000", line.Attempts)
	}
	wantBound := 3.0 * n * n / subset
	if line.BoundEq2 != wantBound {
		t.Fatalf("eq2 bound = %v, want %v", line.BoundEq2, wantBound)
	}
	if line.ObservedRate > line.BoundEq2 {
		t.Fatalf("observed failure rate %v exceeds the equation (2) bound %v over %d attempts (%d failures, by outcome %v)",
			line.ObservedRate, line.BoundEq2, line.Attempts, line.Failures, line.ByOutcome)
	}
	if !line.WithinEq2 {
		t.Fatalf("WithinEq2 = false with rate %v ≤ bound %v", line.ObservedRate, line.BoundEq2)
	}
	t.Logf("observed rate %v over %d attempts vs eq2 bound %v (failures %v)",
		line.ObservedRate, line.Attempts, line.BoundEq2, line.ByOutcome)
}
