// Package integration runs the full public surface across every field
// implementation — the "abstract field" claim of the paper exercised as a
// configuration matrix. Each cell solves, inverts, takes determinants,
// ranks, and cross-checks against the Gaussian baseline over the same
// field.
package integration

import (
	"math/big"
	"testing"

	"repro/internal/core"
	"repro/internal/ff"
	"repro/internal/matrix"
	"repro/internal/poly"
)

// runMatrixSuite exercises the Solver API over one field.
func runMatrixSuite[E any](t *testing.T, f ff.Field[E], subset uint64, n int) {
	t.Helper()
	s, err := core.NewSolver[E](f, core.Options{Seed: 0xC0FFEE, SubsetSize: subset})
	if err != nil {
		t.Fatal(err)
	}
	src := ff.NewSource(31337)

	var a *matrix.Dense[E]
	for {
		a = matrix.Random(f, src, n, n, subset)
		if d, err := matrix.Det(f, a); err == nil && !f.IsZero(d) {
			break
		}
	}
	b := ff.SampleVec(f, src, n, subset)

	x, err := s.Solve(a, b)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !ff.VecEqual(f, a.MulVec(f, x), b) {
		t.Fatal("Solve: Ax != b")
	}
	want, err := matrix.Solve(f, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !ff.VecEqual(f, x, want) {
		t.Fatal("Solve differs from Gaussian elimination")
	}

	d, err := s.Det(a)
	if err != nil {
		t.Fatalf("Det: %v", err)
	}
	lu, err := matrix.Det(f, a)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(d, lu) {
		t.Fatal("Det differs from LU")
	}

	inv, err := s.Inverse(a)
	if err != nil {
		t.Fatalf("Inverse: %v", err)
	}
	if !matrix.Mul(f, a, inv).Equal(f, matrix.Identity(f, n)) {
		t.Fatal("Inverse: A·A⁻¹ != I")
	}

	r, err := s.Rank(a)
	if err != nil {
		t.Fatalf("Rank: %v", err)
	}
	if r != n {
		t.Fatalf("Rank of non-singular = %d, want %d", r, n)
	}

	// Toeplitz charpoly round trip: det(T) via Theorem 3 vs LU.
	entries := ff.SampleVec(f, src, 2*n-1, subset)
	cp, err := s.CharPolyToeplitz(entries)
	if err != nil {
		t.Fatalf("CharPolyToeplitz: %v", err)
	}
	td := matrix.ToeplitzDense(f, entries)
	tLU, err := matrix.Det(f, td)
	if err != nil {
		t.Fatal(err)
	}
	c0 := poly.Coef(f, cp, 0)
	if n%2 == 1 {
		c0 = f.Neg(c0)
	}
	if !f.Equal(c0, tLU) {
		t.Fatal("Toeplitz charpoly constant term inconsistent with LU det")
	}

	// GCD over the same field.
	g := poly.FromInt64(f, []int64{1, 1})
	pa := poly.Mul(f, g, poly.FromInt64(f, []int64{2, 0, 1}))
	pb := poly.Mul(f, g, poly.FromInt64(f, []int64{3, 1}))
	hh, err := s.GCD(pa, pb)
	if err != nil {
		t.Fatalf("GCD: %v", err)
	}
	if !poly.Equal(f, hh, g) {
		t.Fatalf("GCD = %s", poly.String(f, hh))
	}
}

func TestWordPrime(t *testing.T) {
	runMatrixSuite[uint64](t, ff.MustFp64(ff.P31), ff.P31, 6)
}

func TestNTTPrime(t *testing.T) {
	f := ff.MustFp64(ff.PNTT62)
	runMatrixSuite[uint64](t, f, f.Modulus(), 6)
}

func TestBigPrime(t *testing.T) {
	p, _ := new(big.Int).SetString("170141183460469231731687303715884105727", 10)
	runMatrixSuite[*big.Int](t, ff.MustFpBig(p), 1<<40, 4)
}

func TestExtensionField(t *testing.T) {
	src := ff.NewSource(41)
	base := ff.MustFp64(ff.P17)
	mod, err := ff.FindIrreducible(base, 2, src)
	if err != nil {
		t.Fatal(err)
	}
	f, err := ff.NewFpExt(base, mod)
	if err != nil {
		t.Fatal(err)
	}
	runMatrixSuite[[]uint64](t, f, 1<<30, 4)
}

func TestRationals(t *testing.T) {
	runMatrixSuite[*big.Rat](t, ff.NewRat(), 1<<20, 3)
}

// TestSmallCharacteristicSurface checks that over F₂ the characteristic
// guard routes everything Theorem 4-shaped to an error while the
// any-characteristic §5 surface still works.
func TestSmallCharacteristicSurface(t *testing.T) {
	f2 := ff.MustFp64(2)
	s := core.MustNewSolver[uint64](f2, core.Options{Seed: 5})
	src := ff.NewSource(43)
	n := 5
	a := matrix.Random[uint64](f2, src, n, n, 2)
	if _, err := s.Solve(a, make([]uint64, n)); err == nil {
		t.Fatal("Theorem 4 over F₂ with n = 5 must be refused")
	}
	if _, err := s.Det(a); err == nil {
		t.Fatal("determinant route must be refused too")
	}
	entries := ff.SampleVec[uint64](f2, src, 2*n-1, 2)
	cp, err := s.CharPolyToeplitzAnyChar(entries)
	if err != nil {
		t.Fatal(err)
	}
	if poly.Deg[uint64](f2, cp) != n {
		t.Fatal("any-characteristic charpoly degree wrong")
	}
	// Rank and nullspace are characteristic-agnostic.
	r, err := s.Rank(a)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := matrix.Rank[uint64](f2, a)
	if err != nil {
		t.Fatal(err)
	}
	if r != lr {
		t.Fatalf("rank over F₂: %d vs baseline %d", r, lr)
	}
}
