package circuit

import (
	"testing"
	"testing/quick"

	"repro/internal/ff"
)

// Property-based tests on the builder's constant-folding semantics: every
// folded constant expression must evaluate to the same field element the
// direct computation gives — over both a fold-enabled prime-field model
// and a characteristic-0 model where only the small-integer folds apply.

func TestQuickConstantFoldingSemantics(t *testing.T) {
	f := ff.MustFp64(ff.P31)
	prop := func(x, y int64) bool {
		b := NewBuilderFor[uint64](f)
		cx, cy := b.FromInt64(x), b.FromInt64(y)
		sum := b.Add(cx, cy)
		dif := b.Sub(cx, cy)
		prd := b.Mul(cx, cy)
		neg := b.Neg(cx)
		outs := []Wire{sum, dif, prd, neg}
		var div Wire
		hasDiv := false
		if f.FromInt64(y) != 0 {
			var err error
			div, err = b.Div(cx, cy)
			if err != nil {
				return false
			}
			outs = append(outs, div)
			hasDiv = true
		}
		b.Return(outs...)
		// Everything folded: zero arithmetic nodes.
		if b.Size() != 0 {
			return false
		}
		got, err := Eval[uint64](b, f, nil)
		if err != nil {
			return false
		}
		fx, fy := f.FromInt64(x), f.FromInt64(y)
		want := []uint64{f.Add(fx, fy), f.Sub(fx, fy), f.Mul(fx, fy), f.Neg(fx)}
		if hasDiv {
			q, err := f.Div(fx, fy)
			if err != nil {
				return false
			}
			want = append(want, q)
		}
		return ff.VecEqual[uint64](f, got, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTracedArithmeticMatchesDirect(t *testing.T) {
	f := ff.MustFp64(ff.PNTT62)
	prop := func(xs [5]uint64) bool {
		b := NewBuilderFor[uint64](f)
		in := b.Inputs(5)
		// ((x0+x1)·x2 − x3)·(x4 + 1)
		e := b.Mul(b.Sub(b.Mul(b.Add(in[0], in[1]), in[2]), in[3]), b.Add(in[4], b.One()))
		b.Return(e)
		vals := make([]uint64, 5)
		for i, x := range xs {
			vals[i] = f.Elem(x)
		}
		got, err := Eval[uint64](b, f, vals)
		if err != nil {
			return false
		}
		want := f.Mul(f.Sub(f.Mul(f.Add(vals[0], vals[1]), vals[2]), vals[3]),
			f.Add(vals[4], f.One()))
		return got[0] == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGradientOfPolynomialEval(t *testing.T) {
	// f(x) = Σ cᵢxⁱ traced via Horner; gradient must equal Σ i·cᵢx^{i−1}.
	f := ff.MustFp64(ff.P31)
	prop := func(cs [6]uint64, x uint64) bool {
		b := NewBuilderFor[uint64](f)
		xw := b.Input()
		acc := b.Zero()
		for i := len(cs) - 1; i >= 0; i-- {
			acc = b.Add(b.Mul(acc, xw), b.FromInt64(int64(cs[i]%ff.P31)))
		}
		grads, err := Gradient(b, acc)
		if err != nil {
			return false
		}
		b.Return(grads[0])
		xv := f.Elem(x)
		got, err := Eval[uint64](b, f, []uint64{xv})
		if err != nil {
			return false
		}
		want := f.Zero()
		pow := f.One()
		for i := 1; i < len(cs); i++ {
			want = f.Add(want, f.Mul(f.FromInt64(int64(i)), f.Mul(cs[i]%ff.P31, pow)))
			pow = f.Mul(pow, xv)
		}
		return got[0] == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCompactInvariant(t *testing.T) {
	f := ff.MustFp64(ff.P31)
	prop := func(xs [8]uint64, mix uint8) bool {
		b := NewBuilderFor[uint64](f)
		in := b.Inputs(8)
		// A small random-shape expression plus guaranteed dead code.
		w := in[0]
		for i := 1; i < 8; i++ {
			if (mix>>(i%8))&1 == 1 {
				w = b.Add(w, in[i])
			} else {
				w = b.Mul(w, in[i])
			}
		}
		b.Mul(in[0], in[1]) // dead
		b.Return(w)
		c := b.Compact()
		vals := make([]uint64, 8)
		for i, x := range xs {
			vals[i] = f.Elem(x)
		}
		want, err := Eval[uint64](b, f, vals)
		if err != nil {
			return false
		}
		got, err := Eval[uint64](c, f, vals)
		if err != nil {
			return false
		}
		return got[0] == want[0] && c.Size() == b.LiveSize()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
