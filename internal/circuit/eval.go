package circuit

import (
	"fmt"

	"repro/internal/ff"
)

// Eval evaluates the circuit over a concrete field, consuming inputs in
// creation order (random inputs included — the Las Vegas drivers supply
// fresh random values there on each retry). A division by zero surfaces as
// ff.ErrDivisionByZero wrapped with the failing node, matching the paper's
// failure mode; no zero tests are performed anywhere else.
func Eval[E any](b *Builder, f ff.Field[E], inputs []E) ([]E, error) {
	vals, err := evalAll(b, f, inputs)
	if err != nil {
		return nil, err
	}
	out := make([]E, len(b.outputs))
	for i, w := range b.outputs {
		out[i] = vals[w]
	}
	return out, nil
}

func evalAll[E any](b *Builder, f ff.Field[E], inputs []E) ([]E, error) {
	if len(inputs) != b.nInputs {
		return nil, fmt.Errorf("circuit: %d inputs supplied, circuit has %d", len(inputs), b.nInputs)
	}
	vals := make([]E, len(b.ops))
	next := 0
	for i, op := range b.ops {
		x, y := b.argA[i], b.argB[i]
		switch op {
		case OpInput:
			vals[i] = inputs[next]
			next++
		case OpConst:
			vals[i] = f.FromInt64(b.kval[i])
		case OpAdd:
			vals[i] = f.Add(vals[x], vals[y])
		case OpSub:
			vals[i] = f.Sub(vals[x], vals[y])
		case OpNeg:
			vals[i] = f.Neg(vals[x])
		case OpMul:
			vals[i] = f.Mul(vals[x], vals[y])
		case OpDiv:
			v, err := f.Div(vals[x], vals[y])
			if err != nil {
				return nil, fmt.Errorf("circuit: node %d: %w", i, err)
			}
			vals[i] = v
		case OpInv:
			v, err := f.Inv(vals[x])
			if err != nil {
				return nil, fmt.Errorf("circuit: node %d: %w", i, err)
			}
			vals[i] = v
		}
	}
	return vals, nil
}
