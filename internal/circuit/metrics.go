package circuit

// Metrics summarizes a circuit in the paper's two cost measures: size (the
// number of arithmetic nodes — additions, subtractions, negations,
// multiplications, divisions, inversions) and depth (the longest
// input-to-output path counting arithmetic nodes). Inputs and constants are
// free, as in the straight-line-program model.
type Metrics struct {
	Size      int
	Depth     int
	Adds      int // add + sub + neg
	Muls      int
	Divs      int // div + inv
	Inputs    int
	Randoms   int
	Constants int
	Outputs   int
}

// Metrics returns the cost summary. Depth is measured at the declared
// outputs (the whole DAG if no outputs are declared).
func (b *Builder) Metrics() Metrics {
	m := Metrics{Inputs: b.nInputs, Randoms: b.nRandom, Outputs: len(b.outputs)}
	for _, op := range b.ops {
		switch op {
		case OpAdd, OpSub, OpNeg:
			m.Adds++
		case OpMul:
			m.Muls++
		case OpDiv, OpInv:
			m.Divs++
		case OpConst:
			m.Constants++
		}
	}
	m.Size = m.Adds + m.Muls + m.Divs
	if len(b.outputs) > 0 {
		for _, w := range b.outputs {
			if int(b.depth[w]) > m.Depth {
				m.Depth = int(b.depth[w])
			}
		}
	} else {
		for _, d := range b.depth {
			if int(d) > m.Depth {
				m.Depth = int(d)
			}
		}
	}
	return m
}

// Size returns the number of arithmetic nodes.
func (b *Builder) Size() int { return b.Metrics().Size }

// Depth returns the circuit depth at the declared outputs.
func (b *Builder) Depth() int { return b.Metrics().Depth }

// NodeDepth returns the depth of one wire.
func (b *Builder) NodeDepth(w Wire) int { return int(b.depth[w]) }

// LevelWidths returns, for each depth level d ≥ 1, the number of arithmetic
// nodes at that level — the level profile the PRAM scheduler works from.
// Only nodes that the declared outputs depend on are counted (dead nodes
// would inflate the schedule).
func (b *Builder) LevelWidths() []int {
	live := b.liveSet()
	depth := b.Metrics().Depth
	widths := make([]int, depth+1)
	for i, op := range b.ops {
		if op == OpInput || op == OpConst || !live[i] {
			continue
		}
		widths[b.depth[i]]++
	}
	return widths
}

// liveSet marks nodes reachable from the outputs (every node if no outputs
// are declared).
func (b *Builder) liveSet() []bool {
	live := make([]bool, len(b.ops))
	if len(b.outputs) == 0 {
		for i := range live {
			live[i] = true
		}
		return live
	}
	stack := make([]Wire, 0, len(b.outputs))
	for _, w := range b.outputs {
		if !live[w] {
			live[w] = true
			stack = append(stack, w)
		}
	}
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range []Wire{b.argA[w], b.argB[w]} {
			if p >= 0 && !live[p] {
				live[p] = true
				stack = append(stack, p)
			}
		}
	}
	return live
}

// LiveSize returns the number of arithmetic nodes the outputs depend on —
// the honest size of the computation after dead-code removal.
func (b *Builder) LiveSize() int {
	live := b.liveSet()
	n := 0
	for i, op := range b.ops {
		if !live[i] {
			continue
		}
		switch op {
		case OpAdd, OpSub, OpNeg, OpMul, OpDiv, OpInv:
			n++
		}
	}
	return n
}
