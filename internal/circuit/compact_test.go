package circuit

import (
	"strings"
	"testing"

	"repro/internal/ff"
)

func TestCompactPreservesSemantics(t *testing.T) {
	f := ff.MustFp64(ff.P31)
	src := ff.NewSource(171)
	b := NewBuilderFor[uint64](f)
	xs := b.Inputs(16)
	// A computation with deliberate dead code.
	live := b.SumBalanced(xs)
	dead := b.Mul(xs[0], xs[1])
	dead = b.Mul(dead, dead)
	_ = dead
	q, err := b.Div(live, xs[0])
	if err != nil {
		t.Fatal(err)
	}
	b.Return(q, live)

	c := b.Compact()
	if c.Size() != b.LiveSize() {
		t.Fatalf("compact size %d != live size %d", c.Size(), b.LiveSize())
	}
	if c.Size() >= b.Size() {
		t.Fatal("compact did not remove dead nodes")
	}
	if c.NumInputs() != b.NumInputs() {
		t.Fatal("compact changed the input count")
	}
	if c.Depth() != b.Depth() {
		t.Fatalf("compact changed depth: %d vs %d", c.Depth(), b.Depth())
	}
	vals := make([]uint64, 16)
	for i := range vals {
		vals[i] = 1 + src.Uint64n(ff.P31-1)
	}
	want, err := Eval[uint64](b, f, vals)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Eval[uint64](c, f, vals)
	if err != nil {
		t.Fatal(err)
	}
	if !ff.VecEqual[uint64](f, got, want) {
		t.Fatal("compact changed evaluation results")
	}
}

func TestCompactKeepsUnusedInputs(t *testing.T) {
	f := ff.MustFp64(ff.P31)
	b := NewBuilderFor[uint64](f)
	x := b.Input()
	_ = b.Input() // never used: must still be consumed positionally
	y := b.Input()
	b.Return(b.Add(x, y))
	c := b.Compact()
	if c.NumInputs() != 3 {
		t.Fatalf("inputs = %d, want 3", c.NumInputs())
	}
	got, err := Eval[uint64](c, f, []uint64{5, 999, 7})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 12 {
		t.Fatalf("eval = %d, want 12", got[0])
	}
}

func TestWriteDOT(t *testing.T) {
	f := ff.MustFp64(ff.P31)
	b := NewBuilderFor[uint64](f)
	x, y := b.Input(), b.Input()
	out := b.Mul(b.Add(x, y), b.FromInt64(3))
	b.Return(out)
	var sb strings.Builder
	if err := b.WriteDOT(&sb, "demo"); err != nil {
		t.Fatal(err)
	}
	dot := sb.String()
	for _, want := range []string{"digraph", "shape=box", "doublecircle", "->"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
}
