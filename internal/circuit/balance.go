package circuit

import "container/heap"

// Accumulation-tree balancing (the paper's Figure 3, after Hoover, Klawe &
// Pippenger): a list of contribution wires is summed by repeatedly
// combining the two shallowest partial sums, so wires that are already deep
// end up near the root and the final depth stays within O(log t) of the
// deepest contribution — the device that keeps the Baur–Strassen transform
// at depth O(d) instead of O(d·t).

type wireHeap struct {
	b  *Builder
	ws []Wire
}

func (h *wireHeap) Len() int { return len(h.ws) }
func (h *wireHeap) Less(i, j int) bool {
	return h.b.depth[h.ws[i]] < h.b.depth[h.ws[j]]
}
func (h *wireHeap) Swap(i, j int)      { h.ws[i], h.ws[j] = h.ws[j], h.ws[i] }
func (h *wireHeap) Push(x interface{}) { h.ws = append(h.ws, x.(Wire)) }
func (h *wireHeap) Pop() interface{} {
	w := h.ws[len(h.ws)-1]
	h.ws = h.ws[:len(h.ws)-1]
	return w
}

// SumBalanced returns the sum of ws as a depth-balanced addition tree.
// An empty list sums to the constant zero; a singleton is returned as-is
// (one of the "trivial instructions" Theorem 5's count eliminates).
func (b *Builder) SumBalanced(ws []Wire) Wire {
	switch len(ws) {
	case 0:
		return b.Zero()
	case 1:
		return ws[0]
	case 2:
		return b.Add(ws[0], ws[1])
	}
	h := &wireHeap{b: b, ws: append([]Wire(nil), ws...)}
	heap.Init(h)
	for h.Len() > 1 {
		x := heap.Pop(h).(Wire)
		y := heap.Pop(h).(Wire)
		heap.Push(h, b.Add(x, y))
	}
	return h.ws[0]
}
