// External test package: it pulls in internal/kp (which itself imports
// circuit), so it must live outside package circuit to avoid the cycle.
package circuit_test

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/ff"
	"repro/internal/kp"
	"repro/internal/matrix"
	"repro/internal/obs"
)

// TestProductCircuitSizeMatchesInstrumented ties circuit.Metrics to the
// matrix.Instrumented counter on the measure they share: for the classical
// multiplier, one r×k by k×c product costs r·c·(2k−1) field operations,
// which is both the node count the tracing creates and the
// classical-equivalent count the instrumentation reports.
func TestProductCircuitSizeMatchesInstrumented(t *testing.T) {
	model := ff.MustFp64(ff.P31)
	n := 8
	inst := matrix.NewInstrumented(matrix.Classical[circuit.Wire]{})
	b := circuit.NewBuilderFor[uint64](model)
	aw := &matrix.Dense[circuit.Wire]{Rows: n, Cols: n, Data: b.Inputs(n * n)}
	bw := &matrix.Dense[circuit.Wire]{Rows: n, Cols: n, Data: b.Inputs(n * n)}
	out := inst.Mul(b, aw, bw)
	b.Return(out.Data...)

	want := uint64(n * n * (2*n - 1))
	if got := inst.Stats.Snapshot().FieldOps; got != want {
		t.Fatalf("instrumented field-ops = %d, want %d", got, want)
	}
	m := b.Metrics()
	if got := uint64(m.Size); got != want {
		t.Fatalf("circuit size = %d, want %d (must equal the instrumented count)", got, want)
	}
	if got := uint64(m.Muls); got != uint64(n*n*n) {
		t.Fatalf("circuit muls = %d, want %d", got, n*n*n)
	}
}

// TestSolveCircuitOpsAgreeWithInstrumented runs the fixed 8×8 Theorem 4
// solve in all three op-counting modes and checks they agree:
//
//   - circuit mode: SolveOnce traced on the Builder, multiplications
//     counted by an Instrumented wire multiplier and by circuit.Metrics;
//   - concrete mode: the same branch-free SolveOnce over a counting field
//     with an Instrumented uint64 multiplier;
//   - obs mode: the concrete run's per-span field-op counters.
//
// The multiplication black box sees the same dimension sequence in both
// modes (the algorithm is branch-free), so the Instrumented totals must be
// identical; the obs spans must account for every one of those ops exactly
// once; and the traced circuit must contain at least the multiplication
// nodes.
func TestSolveCircuitOpsAgreeWithInstrumented(t *testing.T) {
	const n = 8
	model := ff.MustFp64(ff.P31)

	// Circuit mode.
	wireInst := matrix.NewInstrumented(matrix.Classical[circuit.Wire]{})
	b, err := kp.TraceSolve[uint64](model, wireInst, n)
	if err != nil {
		t.Fatal(err)
	}
	circuitMulOps := wireInst.Stats.Snapshot().FieldOps
	if circuitMulOps == 0 {
		t.Fatal("tracing exercised no multiplications")
	}

	// Concrete mode, under an observer.
	f := ff.MustFp64(ff.P31)
	cf := ff.NewCounting[uint64](f)
	inst := matrix.NewInstrumented(matrix.Classical[uint64]{})
	o := obs.New(0)
	obs.SetActive(o)
	defer obs.SetActive(nil)
	src := ff.NewSource(5)
	var x []uint64
	var a *matrix.Dense[uint64]
	var rhs []uint64
	for {
		a = matrix.Random[uint64](f, src, n, n, ff.P31)
		rhs = ff.SampleVec[uint64](f, src, n, ff.P31)
		rnd := kp.DrawRandomness[uint64](cf, src, n, ff.P31)
		cf.Reset()
		inst.Stats.Reset()
		x, err = kp.SolveOnce[uint64](cf, inst, a, rhs, rnd)
		if err == nil && ff.VecEqual[uint64](f, a.MulVec(f, x), rhs) {
			break // lucky randomness: the branch-free attempt succeeded
		}
	}
	concrete := inst.Stats.Snapshot()

	// The multiplication black box costs the same in both modes.
	if concrete.FieldOps != circuitMulOps {
		t.Fatalf("concrete instrumented ops %d != circuit instrumented ops %d",
			concrete.FieldOps, circuitMulOps)
	}
	// The obs spans attribute each of those ops to exactly one phase.
	if got := o.TotalFieldOps(); got != concrete.FieldOps {
		t.Fatalf("obs span ops %d != instrumented ops %d", got, concrete.FieldOps)
	}
	// The counting field sees every operation, multiplications included.
	counted := cf.Counts().Total()
	if counted < concrete.FieldOps {
		t.Fatalf("counting field total %d < multiplication ops %d", counted, concrete.FieldOps)
	}
	// The traced circuit performs the same computation, so its size covers
	// the multiplication nodes and dominates the concrete run's total: the
	// concrete field trims zero polynomial coefficients as it goes (zero
	// tests are free and data-dependent), while the branch-free circuit
	// must process worst-case degrees everywhere.
	m := b.Metrics()
	if uint64(m.Size) < circuitMulOps {
		t.Fatalf("circuit size %d < multiplication ops %d", m.Size, circuitMulOps)
	}
	if uint64(m.Size) < counted {
		t.Fatalf("circuit size %d < counting-field total %d", m.Size, counted)
	}
}
