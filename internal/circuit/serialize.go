package circuit

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/big"

	"repro/internal/ff"
)

// Binary serialization of circuits: large traces (the n = 64 Theorem 4
// solver has tens of millions of nodes and takes seconds to rebuild) can be
// written once and memory-mapped style reloaded. The format is versioned
// and self-describing; roots-of-unity providers are re-derived from the
// stored characteristic at load time when the modeled field is a word
// prime.

const serialMagic = "KPCIRC01"

// WriteTo serializes the circuit. Returns the byte count written.
func (b *Builder) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	write := func(data any) error {
		if err := binary.Write(bw, binary.LittleEndian, data); err != nil {
			return err
		}
		total += int64(binary.Size(data))
		return nil
	}
	if _, err := bw.WriteString(serialMagic); err != nil {
		return total, err
	}
	total += int64(len(serialMagic))

	charBytes := b.char.Bytes()
	cardBytes := b.card.Bytes()
	header := []uint64{
		uint64(len(b.ops)),
		uint64(b.nInputs),
		uint64(b.nRandom),
		uint64(len(b.outputs)),
		uint64(len(charBytes)),
		uint64(len(cardBytes)),
	}
	if err := write(header); err != nil {
		return total, err
	}
	if _, err := bw.Write(charBytes); err != nil {
		return total, err
	}
	total += int64(len(charBytes))
	if _, err := bw.Write(cardBytes); err != nil {
		return total, err
	}
	total += int64(len(cardBytes))

	for _, chunk := range []any{b.ops, b.argA, b.argB, b.kval, b.depth, b.inputs, b.outputs} {
		if err := write(chunk); err != nil {
			return total, err
		}
	}
	return total, bw.Flush()
}

// ReadCircuit deserializes a circuit written by WriteTo.
func ReadCircuit(r io.Reader) (*Builder, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(serialMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != serialMagic {
		return nil, fmt.Errorf("circuit: bad magic %q", magic)
	}
	header := make([]uint64, 6)
	if err := binary.Read(br, binary.LittleEndian, header); err != nil {
		return nil, err
	}
	nNodes, nInputs, nRandom, nOutputs := int(header[0]), int(header[1]), int(header[2]), int(header[3])
	charBytes := make([]byte, header[4])
	if _, err := io.ReadFull(br, charBytes); err != nil {
		return nil, err
	}
	cardBytes := make([]byte, header[5])
	if _, err := io.ReadFull(br, cardBytes); err != nil {
		return nil, err
	}
	char := new(big.Int).SetBytes(charBytes)
	card := new(big.Int).SetBytes(cardBytes)

	b := NewBuilder(char, card)
	// Re-derive the roots-of-unity provider for word-prime models so a
	// reloaded circuit keeps tracing NTT products like the original.
	if b.foldP != 0 {
		if fp, err := ff.NewFp64(b.foldP); err == nil {
			b.roots = fp
		}
	}
	b.ops = make([]Op, nNodes)
	b.argA = make([]Wire, nNodes)
	b.argB = make([]Wire, nNodes)
	b.kval = make([]int64, nNodes)
	b.depth = make([]int32, nNodes)
	b.inputs = make([]Wire, nInputs)
	b.outputs = make([]Wire, nOutputs)
	for _, chunk := range []any{b.ops, b.argA, b.argB, b.kval, b.depth, b.inputs, b.outputs} {
		if err := binary.Read(br, binary.LittleEndian, chunk); err != nil {
			return nil, err
		}
	}
	b.nInputs = nInputs
	b.nRandom = nRandom
	// Rebuild the constant intern table and validate node shape.
	for i, op := range b.ops {
		switch op {
		case OpConst:
			if _, dup := b.constIdx[b.kval[i]]; !dup {
				b.constIdx[b.kval[i]] = Wire(i)
			}
		case OpAdd, OpSub, OpMul, OpDiv:
			if b.argA[i] < 0 || b.argA[i] >= Wire(i) || b.argB[i] < 0 || b.argB[i] >= Wire(i) {
				return nil, fmt.Errorf("circuit: node %d has invalid operands", i)
			}
		case OpNeg, OpInv:
			if b.argA[i] < 0 || b.argA[i] >= Wire(i) {
				return nil, fmt.Errorf("circuit: node %d has invalid operand", i)
			}
		case OpInput:
			// positions re-validated below
		default:
			return nil, fmt.Errorf("circuit: node %d has unknown op %d", i, op)
		}
	}
	for _, w := range b.outputs {
		if w < 0 || int(w) >= nNodes {
			return nil, fmt.Errorf("circuit: output wire %d out of range", w)
		}
	}
	return b, nil
}
