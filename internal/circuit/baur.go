package circuit

import "fmt"

// Gradient implements Theorem 5 (Baur–Strassen 1983, depth-preserved per
// Kaltofen–Singer 1990): given a wire out computing a function f of the
// circuit inputs, it appends reverse-mode adjoint code to the builder and
// returns, for every input node in creation order, a wire computing ∂f/∂xᵢ.
//
// The construction walks the program backwards (the mirror image of Figure
// 2). Each node's adjoint is the balanced sum of the contributions pushed
// to it by its consumers (Figure 3's accumulation trees, built shallowest-
// first so depth stays O(d)); the per-edge work is constant — at most two
// operations for a multiplication and three for a division, exactly the
// counting that yields the ≤ 4l bound after trivial instructions are
// folded. The transform "will divide by exactly the same rational functions
// as the old" program: the only divisor it introduces is y for an original
// node x/y, so no new zero divisions are possible.
func Gradient(b *Builder, out Wire) ([]Wire, error) {
	if out < 0 || int(out) >= len(b.ops) {
		return nil, fmt.Errorf("circuit: gradient output wire %d out of range", out)
	}
	n := int(out) + 1
	// live[v]: node v feeds out (within the first n nodes).
	live := make([]bool, n)
	live[out] = true
	for v := out; v >= 0; v-- {
		if !live[v] {
			continue
		}
		if x := b.argA[v]; x >= 0 {
			live[x] = true
		}
		if y := b.argB[v]; y >= 0 {
			live[y] = true
		}
	}
	contribs := make([][]Wire, n)
	push := func(target Wire, w Wire) {
		if kw, c := b.isConst(w); c && kw == 0 {
			return // zero contributions are the trivial instructions of Thm 5
		}
		contribs[target] = append(contribs[target], w)
	}
	adjOf := func(v Wire) Wire {
		if v == out {
			if len(contribs[v]) == 0 {
				return b.One()
			}
			// out consumed by itself is impossible; seed with 1.
			return b.SumBalanced(append(contribs[v], b.One()))
		}
		return b.SumBalanced(contribs[v])
	}
	adj := make([]Wire, n)
	for i := range adj {
		adj[i] = -1
	}
	for v := out; v >= 0; v-- {
		if !live[v] {
			continue
		}
		if v != out && len(contribs[v]) == 0 {
			continue // f does not depend on this node after folding
		}
		a := adjOf(v)
		adj[v] = a
		x, y := b.argA[v], b.argB[v]
		switch b.ops[v] {
		case OpInput, OpConst:
			// leaves: nothing to propagate
		case OpAdd:
			push(x, a)
			push(y, a)
		case OpSub:
			push(x, a)
			push(y, b.Neg(a))
		case OpNeg:
			push(x, b.Neg(a))
		case OpMul:
			push(x, b.Mul(a, y))
			push(y, b.Mul(a, x))
		case OpDiv:
			// v = x/y: ∂v/∂x = 1/y, ∂v/∂y = −v/y.
			t, err := b.Div(a, y)
			if err != nil {
				return nil, err
			}
			push(x, t)
			push(y, b.Neg(b.Mul(t, v)))
		case OpInv:
			// v = 1/x: ∂v/∂x = −v².
			push(x, b.Neg(b.Mul(a, b.Mul(v, v))))
		}
	}
	grads := make([]Wire, len(b.inputs))
	for i, in := range b.inputs {
		if int(in) < n && adj[in] >= 0 {
			grads[i] = adj[in]
		} else {
			grads[i] = b.Zero()
		}
	}
	return grads, nil
}

// Clone returns a deep copy of the builder, so a gradient can be appended
// without disturbing the original circuit.
func (b *Builder) Clone() *Builder {
	nb := &Builder{
		ops:      append([]Op(nil), b.ops...),
		argA:     append([]Wire(nil), b.argA...),
		argB:     append([]Wire(nil), b.argB...),
		kval:     append([]int64(nil), b.kval...),
		depth:    append([]int32(nil), b.depth...),
		nInputs:  b.nInputs,
		nRandom:  b.nRandom,
		inputs:   append([]Wire(nil), b.inputs...),
		outputs:  append([]Wire(nil), b.outputs...),
		constIdx: make(map[int64]Wire, len(b.constIdx)),
		char:     b.char,
		card:     b.card,
		roots:    b.roots,
	}
	for k, v := range b.constIdx {
		nb.constIdx[k] = v
	}
	return nb
}
