package circuit

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/ff"
)

// EvalParallel evaluates the circuit level-by-level with a goroutine pool —
// a wall-clock realization of the PRAM schedule on real cores. Nodes within
// one depth level are independent, so each level is a parallel-for with a
// barrier; the span of the computation is the circuit depth, matching the
// Brent simulation that experiment E10 reports next to these timings.
func EvalParallel[E any](b *Builder, f ff.Field[E], inputs []E, workers int) ([]E, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return Eval(b, f, inputs)
	}
	if len(inputs) != b.nInputs {
		return nil, fmt.Errorf("circuit: %d inputs supplied, circuit has %d", len(inputs), b.nInputs)
	}
	// Bucket nodes by depth; inputs/constants land at level 0.
	maxDepth := 0
	for _, d := range b.depth {
		if int(d) > maxDepth {
			maxDepth = int(d)
		}
	}
	levels := make([][]int32, maxDepth+1)
	for i := range b.ops {
		levels[b.depth[i]] = append(levels[b.depth[i]], int32(i))
	}

	vals := make([]E, len(b.ops))
	// Level 0 sequentially (input order matters).
	next := 0
	for _, i := range levels[0] {
		switch b.ops[i] {
		case OpInput:
			vals[i] = inputs[next]
			next++
		case OpConst:
			vals[i] = f.FromInt64(b.kval[i])
		}
	}

	var mu sync.Mutex
	var firstErr error
	for l := 1; l <= maxDepth; l++ {
		nodes := levels[l]
		if len(nodes) == 0 {
			continue
		}
		chunk := (len(nodes) + workers - 1) / workers
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := min(lo+chunk, len(nodes))
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(nodes []int32) {
				defer wg.Done()
				for _, i := range nodes {
					x, y := b.argA[i], b.argB[i]
					switch b.ops[i] {
					case OpAdd:
						vals[i] = f.Add(vals[x], vals[y])
					case OpSub:
						vals[i] = f.Sub(vals[x], vals[y])
					case OpNeg:
						vals[i] = f.Neg(vals[x])
					case OpMul:
						vals[i] = f.Mul(vals[x], vals[y])
					case OpDiv:
						v, err := f.Div(vals[x], vals[y])
						if err != nil {
							mu.Lock()
							if firstErr == nil {
								firstErr = fmt.Errorf("circuit: node %d: %w", i, err)
							}
							mu.Unlock()
							return
						}
						vals[i] = v
					case OpInv:
						v, err := f.Inv(vals[x])
						if err != nil {
							mu.Lock()
							if firstErr == nil {
								firstErr = fmt.Errorf("circuit: node %d: %w", i, err)
							}
							mu.Unlock()
							return
						}
						vals[i] = v
					}
				}
			}(nodes[lo:hi])
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
	}
	out := make([]E, len(b.outputs))
	for i, w := range b.outputs {
		out[i] = vals[w]
	}
	return out, nil
}
