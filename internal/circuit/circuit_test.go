package circuit

import (
	"errors"
	"testing"

	"repro/internal/ff"
	"repro/internal/poly"
)

var fp = ff.MustFp64(ff.P31)

func TestBuildAndEval(t *testing.T) {
	b := NewBuilderFor[uint64](fp)
	x, y := b.Input(), b.Input()
	// f = (x+y)·(x−y) + 3
	s := b.Add(x, y)
	d := b.Sub(x, y)
	p := b.Mul(s, d)
	out := b.Add(p, b.FromInt64(3))
	b.Return(out)

	got, err := Eval[uint64](b, fp, []uint64{7, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 7*7-4*4+3 {
		t.Fatalf("eval = %d, want 36", got[0])
	}
	m := b.Metrics()
	if m.Size != 4 || m.Depth != 3 || m.Inputs != 2 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestConstantFolding(t *testing.T) {
	b := NewBuilderFor[uint64](fp)
	x := b.Input()
	if b.Add(x, b.Zero()) != x {
		t.Fatal("x + 0 not folded")
	}
	if b.Mul(x, b.One()) != x {
		t.Fatal("x·1 not folded")
	}
	if !b.IsZero(b.Mul(x, b.Zero())) {
		t.Fatal("x·0 not folded to 0")
	}
	if b.Sub(x, b.Zero()) != x {
		t.Fatal("x − 0 not folded")
	}
	if !b.Equal(b.Add(b.FromInt64(2), b.FromInt64(3)), b.FromInt64(5)) {
		t.Fatal("2 + 3 not folded")
	}
	if w, _ := b.Div(x, b.One()); w != x {
		t.Fatal("x/1 not folded")
	}
	if b.Size() != 0 {
		t.Fatalf("folding still emitted %d nodes", b.Size())
	}
	// Negative constant folding.
	if !b.Equal(b.Neg(b.FromInt64(4)), b.FromInt64(-4)) {
		t.Fatal("−4 not folded")
	}
	// FromInt64 interning.
	if b.FromInt64(42) != b.FromInt64(42) {
		t.Fatal("constants not interned")
	}
}

func TestDivisionByZeroAtEval(t *testing.T) {
	b := NewBuilderFor[uint64](fp)
	x, y := b.Input(), b.Input()
	q, err := b.Div(x, y)
	if err != nil {
		t.Fatal(err) // build time never fails
	}
	b.Return(q)
	if _, err := Eval[uint64](b, fp, []uint64{3, 0}); !errors.Is(err, ff.ErrDivisionByZero) {
		t.Fatalf("err = %v, want ErrDivisionByZero", err)
	}
	got, err := Eval[uint64](b, fp, []uint64{6, 3})
	if err != nil || got[0] != 2 {
		t.Fatalf("6/3 = %v, %v", got, err)
	}
}

func TestTracedPolynomialAlgebraMatchesDirect(t *testing.T) {
	// Trace generic polynomial code through the builder and compare the
	// evaluation against running it directly over F_p.
	src := ff.NewSource(91)
	const n = 8
	b := NewBuilderFor[uint64](fp)
	aw := b.Inputs(n)
	bw := b.Inputs(n)
	prod := poly.Mul[Wire](b, aw, bw)
	inv, err := poly.SeriesInv[Wire](b, aw, n)
	if err != nil {
		t.Fatal(err)
	}
	outs := append(append([]Wire{}, prod...), inv...)
	b.Return(outs...)

	av := ff.SampleVec[uint64](fp, src, n, ff.P31)
	bv := ff.SampleVec[uint64](fp, src, n, ff.P31)
	av[0] = 7 // invertible constant term for the series inverse
	got, err := Eval[uint64](b, fp, append(append([]uint64{}, av...), bv...))
	if err != nil {
		t.Fatal(err)
	}
	wantProd := poly.Mul[uint64](fp, av, bv)
	wantInv, err := poly.SeriesInv[uint64](fp, av, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(prod); i++ {
		if got[i] != poly.Coef[uint64](fp, wantProd, i) {
			t.Fatalf("traced product coefficient %d mismatch", i)
		}
	}
	for i := 0; i < len(inv); i++ {
		if got[len(prod)+i] != poly.Coef[uint64](fp, wantInv, i) {
			t.Fatalf("traced series inverse coefficient %d mismatch", i)
		}
	}
}

func TestSumBalancedDepth(t *testing.T) {
	b := NewBuilderFor[uint64](fp)
	ws := b.Inputs(1000)
	s := b.SumBalanced(ws)
	b.Return(s)
	if d := b.NodeDepth(s); d > 11 { // ⌈log₂ 1000⌉ = 10, allow one slack
		t.Fatalf("balanced sum depth = %d", d)
	}
	vals := make([]uint64, 1000)
	want := uint64(0)
	src := ff.NewSource(92)
	for i := range vals {
		vals[i] = src.Uint64n(1000)
		want = fp.Add(want, vals[i])
	}
	got, err := Eval[uint64](b, fp, vals)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != want {
		t.Fatal("balanced sum value wrong")
	}
	// Uneven input depths: deep wire should not be buried.
	b2 := NewBuilderFor[uint64](fp)
	x := b2.Input()
	deep := x
	for i := 0; i < 20; i++ {
		deep = b2.Add(deep, x)
	}
	shallow := b2.Inputs(7)
	sum := b2.SumBalanced(append([]Wire{deep}, shallow...))
	if d := b2.NodeDepth(sum); d > 20+4 {
		t.Fatalf("heap balancing buried the deep wire: depth %d", d)
	}
}

func TestGradientQuadraticForm(t *testing.T) {
	// f(x) = Σᵢⱼ xᵢ·cᵢⱼ·xⱼ with constant c: ∂f/∂xₖ = Σⱼ (c_{kj}+c_{jk})xⱼ.
	const n = 5
	src := ff.NewSource(93)
	c := make([][]uint64, n)
	for i := range c {
		c[i] = ff.SampleVec[uint64](fp, src, n, 1000)
	}
	b := NewBuilderFor[uint64](fp)
	xs := b.Inputs(n)
	var terms []Wire
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			terms = append(terms, b.Mul(xs[i], b.Mul(b.FromInt64(int64(c[i][j])), xs[j])))
		}
	}
	f := b.SumBalanced(terms)
	grads, err := Gradient(b, f)
	if err != nil {
		t.Fatal(err)
	}
	b.Return(append([]Wire{f}, grads...)...)

	xv := ff.SampleVec[uint64](fp, src, n, ff.P31)
	got, err := Eval[uint64](b, fp, xv)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n; k++ {
		want := fp.Zero()
		for j := 0; j < n; j++ {
			want = fp.Add(want, fp.Mul(fp.Add(c[k][j], c[j][k]), xv[j]))
		}
		if got[1+k] != want {
			t.Fatalf("∂f/∂x%d = %d, want %d", k, got[1+k], want)
		}
	}
}

func TestGradientWithDivision(t *testing.T) {
	// f(x, y) = x/y: ∂f/∂x = 1/y, ∂f/∂y = −x/y².
	b := NewBuilderFor[uint64](fp)
	x, y := b.Input(), b.Input()
	q, err := b.Div(x, y)
	if err != nil {
		t.Fatal(err)
	}
	grads, err := Gradient(b, q)
	if err != nil {
		t.Fatal(err)
	}
	b.Return(grads...)
	xv, yv := uint64(12), uint64(5)
	got, err := Eval[uint64](b, fp, []uint64{xv, yv})
	if err != nil {
		t.Fatal(err)
	}
	yinv, _ := fp.Inv(yv)
	if got[0] != yinv {
		t.Fatal("∂(x/y)/∂x wrong")
	}
	want := fp.Neg(fp.Mul(xv, fp.Mul(yinv, yinv)))
	if got[1] != want {
		t.Fatal("∂(x/y)/∂y wrong")
	}
	// The gradient divides only where the original did: y = 0 still the
	// only failure.
	if _, err := Eval[uint64](b, fp, []uint64{1, 0}); !errors.Is(err, ff.ErrDivisionByZero) {
		t.Fatal("expected division by zero")
	}
}

func TestGradientInv(t *testing.T) {
	// f(x) = 1/x: f′ = −1/x².
	b := NewBuilderFor[uint64](fp)
	x := b.Input()
	ix, err := b.Inv(x)
	if err != nil {
		t.Fatal(err)
	}
	grads, err := Gradient(b, ix)
	if err != nil {
		t.Fatal(err)
	}
	b.Return(grads...)
	got, err := Eval[uint64](b, fp, []uint64{9})
	if err != nil {
		t.Fatal(err)
	}
	inv9, _ := fp.Inv(9)
	if got[0] != fp.Neg(fp.Mul(inv9, inv9)) {
		t.Fatal("∂(1/x)/∂x wrong")
	}
}

// finite-difference-style check over F_p: for polynomial f,
// f(x+h) − f(x) = h·(∂f/∂x) + O(h²) does not apply over finite fields, so
// instead verify the gradient against an independently traced symbolic
// derivative on univariate compositions.
func TestGradientChainRule(t *testing.T) {
	// f(x) = ((x² + 3)·x + 5)²: f′ = 2((x²+3)x+5)·(3x²+3).
	b := NewBuilderFor[uint64](fp)
	x := b.Input()
	x2 := b.Mul(x, x)
	inner := b.Add(b.Mul(b.Add(x2, b.FromInt64(3)), x), b.FromInt64(5))
	f := b.Mul(inner, inner)
	grads, err := Gradient(b, f)
	if err != nil {
		t.Fatal(err)
	}
	b.Return(grads...)
	for _, xv := range []uint64{0, 1, 2, 17, 1234567} {
		got, err := Eval[uint64](b, fp, []uint64{xv})
		if err != nil {
			t.Fatal(err)
		}
		innerV := fp.Add(fp.Mul(fp.Add(fp.Mul(xv, xv), 3), xv), 5)
		deriv := fp.Mul(fp.Mul(2, innerV), fp.Add(fp.Mul(3, fp.Mul(xv, xv)), 3))
		if got[0] != deriv {
			t.Fatalf("x=%d: f′ = %d, want %d", xv, got[0], deriv)
		}
	}
}

func TestGradientSizeDepthBounds(t *testing.T) {
	// Theorem 5's measured form: size(Q) ≤ 4·size(P) + O(1) and depth(Q)
	// within a constant factor of depth(P), on a mul/div-heavy circuit.
	src := ff.NewSource(94)
	for _, n := range []int{8, 16, 32, 64} {
		b := NewBuilderFor[uint64](fp)
		xs := b.Inputs(n)
		// Balanced product with some divisions sprinkled in.
		cur := xs
		for len(cur) > 1 {
			var next []Wire
			for i := 0; i+1 < len(cur); i += 2 {
				next = append(next, b.Mul(cur[i], cur[i+1]))
			}
			if len(cur)%2 == 1 {
				next = append(next, cur[len(cur)-1])
			}
			cur = next
		}
		f := cur[0]
		q, err := b.Div(f, xs[0])
		if err != nil {
			t.Fatal(err)
		}
		sizeP := b.Size()
		depthP := b.NodeDepth(q)
		grads, err := Gradient(b, q)
		if err != nil {
			t.Fatal(err)
		}
		b.Return(grads...)
		sizeQ := b.Size()
		depthQ := b.Depth()
		if sizeQ > 5*sizeP+2 {
			t.Fatalf("n=%d: gradient size %d > 5·%d", n, sizeQ, sizeP)
		}
		if depthQ > 4*depthP+8 {
			t.Fatalf("n=%d: gradient depth %d vs original %d", n, depthQ, depthP)
		}
		// Value check: ∂(∏xᵢ/x₀)/∂xₖ = ∏_{i≠k,0} xᵢ for k ≠ 0, 0 for k = 0
		// (x₀ cancels: f/x₀ does not depend on x₀... it does not!).
		xv := make([]uint64, n)
		for i := range xv {
			xv[i] = 1 + src.Uint64n(ff.P31-1)
		}
		got, err := Eval[uint64](b, fp, xv)
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k < n; k++ {
			want := fp.One()
			for i := 1; i < n; i++ {
				if i != k {
					want = fp.Mul(want, xv[i])
				}
			}
			if got[k] != want {
				t.Fatalf("n=%d: ∂/∂x%d wrong", n, k)
			}
		}
		if got[0] != 0 {
			t.Fatalf("n=%d: ∂/∂x₀ = %d, want 0 (x₀ cancels)", n, got[0])
		}
	}
}

func TestBrentSchedule(t *testing.T) {
	b := NewBuilderFor[uint64](fp)
	xs := b.Inputs(64)
	s := b.SumBalanced(xs)
	b.Return(s)
	// Balanced tree of 63 adds, depth 6.
	one := b.BrentSchedule(1)
	if one.Work != 63 || one.Depth != 6 || one.Time != 63 {
		t.Fatalf("p=1 schedule %+v", one)
	}
	for _, p := range []int{1, 2, 4, 8, 16, 32, 999} {
		s := b.BrentSchedule(p)
		if !s.BrentBoundHolds() {
			t.Fatalf("Brent bound violated at p=%d: %+v", p, s)
		}
		if s.Time < s.Depth {
			t.Fatalf("time below critical path at p=%d", p)
		}
	}
	inf := b.BrentSchedule(1 << 20)
	if inf.Time != 6 {
		t.Fatalf("unbounded processors: time %d, want depth 6", inf.Time)
	}
	if p := b.ProcessorEfficientP(); p != (63+5)/6 {
		t.Fatalf("ProcessorEfficientP = %d", p)
	}
}

func TestLevelWidthsLiveOnly(t *testing.T) {
	b := NewBuilderFor[uint64](fp)
	x, y := b.Input(), b.Input()
	live := b.Add(x, y)
	b.Mul(x, y) // dead node
	b.Return(live)
	w := b.LevelWidths()
	if len(w) != 2 || w[1] != 1 {
		t.Fatalf("LevelWidths = %v, dead node counted?", w)
	}
	if b.LiveSize() != 1 {
		t.Fatalf("LiveSize = %d", b.LiveSize())
	}
	if b.Size() != 2 {
		t.Fatalf("Size = %d", b.Size())
	}
}

func TestEvalParallelMatchesSequential(t *testing.T) {
	src := ff.NewSource(95)
	b := NewBuilderFor[uint64](fp)
	xs := b.Inputs(128)
	// A few layers of mixed arithmetic.
	cur := xs
	for round := 0; round < 4; round++ {
		next := make([]Wire, 0, len(cur))
		for i := 0; i+1 < len(cur); i += 2 {
			m := b.Mul(cur[i], cur[i+1])
			a := b.Add(cur[i], cur[i+1])
			next = append(next, b.Sub(m, a))
		}
		cur = next
	}
	b.Return(cur...)
	vals := ff.SampleVec[uint64](fp, src, 128, ff.P31)
	want, err := Eval[uint64](b, fp, vals)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		got, err := EvalParallel[uint64](b, fp, vals, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !ff.VecEqual[uint64](fp, got, want) {
			t.Fatalf("parallel eval (w=%d) differs", workers)
		}
	}
	// Division-by-zero propagates from workers too.
	b2 := NewBuilderFor[uint64](fp)
	p, q := b2.Input(), b2.Input()
	d, _ := b2.Div(p, q)
	b2.Return(d)
	if _, err := EvalParallel[uint64](b2, fp, []uint64{1, 0}, 4); !errors.Is(err, ff.ErrDivisionByZero) {
		t.Fatalf("parallel div-by-zero err = %v", err)
	}
}

func TestClone(t *testing.T) {
	b := NewBuilderFor[uint64](fp)
	x := b.Input()
	f := b.Mul(x, x)
	b.Return(f)
	c := b.Clone()
	c.Mul(f, f) // extend the clone only
	if b.NumNodes() == c.NumNodes() {
		t.Fatal("clone shares node storage")
	}
	got, err := Eval[uint64](b, fp, []uint64{5})
	if err != nil || got[0] != 25 {
		t.Fatalf("original damaged by clone: %v %v", got, err)
	}
}

func TestRandomInputsCounted(t *testing.T) {
	b := NewBuilderFor[uint64](fp)
	b.Inputs(3)
	b.RandomInputs(5)
	if b.NumInputs() != 8 || b.NumRandom() != 5 {
		t.Fatalf("inputs=%d randoms=%d", b.NumInputs(), b.NumRandom())
	}
}
