package circuit

import (
	"fmt"
	"io"
)

// Compact returns an equivalent circuit containing only the nodes the
// declared outputs depend on, renumbered densely. Tracing leaves behind
// dead temporaries (e.g. unused Karatsuba cross terms); Compact makes the
// stored object match the honest LiveSize measure and shrinks memory for
// large circuits before evaluation or scheduling.
func (b *Builder) Compact() *Builder {
	if len(b.outputs) == 0 {
		return b.Clone()
	}
	live := b.liveSet()
	remap := make([]Wire, len(b.ops))
	nb := &Builder{
		constIdx: make(map[int64]Wire),
		char:     b.char,
		card:     b.card,
		roots:    b.roots,
		foldP:    b.foldP,
	}
	for i, op := range b.ops {
		remap[i] = -1
		// Inputs must all survive (evaluation consumes them positionally),
		// live or not.
		if op == OpInput {
			w := nb.push(OpInput, -1, -1, 0, 0)
			nb.nInputs++
			nb.inputs = append(nb.inputs, w)
			remap[i] = w
			continue
		}
		if !live[i] {
			continue
		}
		switch op {
		case OpConst:
			remap[i] = nb.constant(b.kval[i])
		default:
			x := remap[b.argA[i]]
			var y Wire = -1
			if b.argB[i] >= 0 {
				y = remap[b.argB[i]]
			}
			d := int32(1 + nb.depthOf(x))
			if y >= 0 && nb.depthOf(y)+1 > int(d) {
				d = int32(nb.depthOf(y) + 1)
			}
			remap[i] = nb.push(op, x, y, 0, d)
		}
	}
	nb.nRandom = b.nRandom
	outs := make([]Wire, len(b.outputs))
	for i, w := range b.outputs {
		outs[i] = remap[w]
	}
	nb.outputs = outs
	return nb
}

func (b *Builder) depthOf(w Wire) int {
	if w < 0 {
		return 0
	}
	return int(b.depth[w])
}

// WriteDOT emits the circuit as a Graphviz digraph (inputs as boxes,
// constants as plain text, arithmetic nodes labeled by operator, outputs
// double-circled). Intended for small circuits — visualizing the traced
// programs and their gradients.
func (b *Builder) WriteDOT(w io.Writer, name string) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=BT;\n", name); err != nil {
		return err
	}
	live := b.liveSet()
	isOut := make(map[Wire]bool, len(b.outputs))
	for _, o := range b.outputs {
		isOut[o] = true
	}
	opSym := map[Op]string{
		OpAdd: "+", OpSub: "−", OpNeg: "neg", OpMul: "×", OpDiv: "÷", OpInv: "inv",
	}
	for i, op := range b.ops {
		if !live[i] {
			continue
		}
		id := Wire(i)
		var attr string
		switch op {
		case OpInput:
			attr = fmt.Sprintf("label=\"x%d\", shape=box", id)
		case OpConst:
			attr = fmt.Sprintf("label=\"%d\", shape=plaintext", b.kval[i])
		default:
			shape := "ellipse"
			if isOut[id] {
				shape = "doublecircle"
			}
			attr = fmt.Sprintf("label=%q, shape=%s", opSym[op], shape)
		}
		if _, err := fmt.Fprintf(w, "  n%d [%s];\n", id, attr); err != nil {
			return err
		}
		for _, p := range []Wire{b.argA[i], b.argB[i]} {
			if p >= 0 {
				if _, err := fmt.Fprintf(w, "  n%d -> n%d;\n", p, id); err != nil {
					return err
				}
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
