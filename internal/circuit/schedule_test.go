package circuit

import (
	"testing"

	"repro/internal/ff"
)

func buildTestCircuit(t *testing.T) *Builder {
	t.Helper()
	f := ff.MustFp64(ff.P31)
	b := NewBuilderFor[uint64](f)
	xs := b.Inputs(64)
	// Two interacting reduction trees plus a division.
	s := b.SumBalanced(xs)
	p := xs[0]
	for i := 1; i < 32; i++ {
		p = b.Mul(p, xs[i])
	}
	q, err := b.Div(s, p)
	if err != nil {
		t.Fatal(err)
	}
	b.Return(q)
	return b
}

func TestListScheduleValidAndBrent(t *testing.T) {
	b := buildTestCircuit(t)
	for _, p := range []int{1, 2, 3, 7, 16, 1000} {
		r := b.ListSchedule(p)
		if err := r.Validate(b); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if !r.BrentBoundHolds() {
			t.Fatalf("p=%d: Brent bound violated: steps=%d work=%d depth=%d",
				p, r.Steps, r.Work, r.Depth)
		}
		if r.Steps < r.Depth {
			t.Fatalf("p=%d: schedule beat the critical path", p)
		}
		if len(r.Assignments) != r.Work {
			t.Fatalf("p=%d: %d assignments for %d nodes", p, len(r.Assignments), r.Work)
		}
	}
	// One processor serializes exactly.
	one := b.ListSchedule(1)
	if one.Steps != one.Work {
		t.Fatalf("p=1: steps %d != work %d", one.Steps, one.Work)
	}
	// Unbounded processors reach the critical path exactly (greedy list
	// scheduling is optimal when p ≥ width).
	inf := b.ListSchedule(1 << 20)
	if inf.Steps != inf.Depth {
		t.Fatalf("p=∞: steps %d != depth %d", inf.Steps, inf.Depth)
	}
}

func TestListScheduleNoWorseThanLevels(t *testing.T) {
	// Greedy list scheduling may beat the level-synchronized schedule and
	// must never lose to it by more than the level barriers allow; check
	// it at a few processor counts on an unbalanced circuit.
	b := buildTestCircuit(t)
	for _, p := range []int{2, 4, 8} {
		list := b.ListSchedule(p)
		level := b.BrentSchedule(p)
		if list.Steps > level.Time {
			t.Fatalf("p=%d: list schedule (%d) worse than level schedule (%d)",
				p, list.Steps, level.Time)
		}
	}
}
