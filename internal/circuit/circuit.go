// Package circuit implements the paper's machine model: algebraic circuits
// (straight-line programs) over an abstract field, with exact size and
// depth accounting, evaluation over any concrete field, the Baur–Strassen
// gradient transformation of Theorem 5 with depth-preserving accumulation
// balancing (Figures 2 and 3, Hoover–Klawe–Pippenger), and a Brent-style
// PRAM scheduler for the processor-efficiency experiments.
//
// Circuits are built by *tracing*: Builder implements ff.Field[Wire], so
// any branch-free generic algorithm in this repository — and the
// Kaltofen–Pan algorithms are branch-free by design ("our algorithms
// realize shallow algebraic circuits and thus have no zero-tests") — turns
// into the literal circuit by running it with symbolic wires.
package circuit

import (
	"fmt"
	"math/big"
	"math/bits"

	"repro/internal/ff"
)

// Op is a node kind.
type Op uint8

// Node kinds. Input and Const nodes are free (depth 0, size 0); the six
// arithmetic kinds each cost one unit of size and one unit of depth.
const (
	OpInput Op = iota
	OpConst
	OpAdd
	OpSub
	OpNeg
	OpMul
	OpDiv
	OpInv
)

func (o Op) String() string {
	switch o {
	case OpInput:
		return "input"
	case OpConst:
		return "const"
	case OpAdd:
		return "add"
	case OpSub:
		return "sub"
	case OpNeg:
		return "neg"
	case OpMul:
		return "mul"
	case OpDiv:
		return "div"
	case OpInv:
		return "inv"
	}
	return "?"
}

// Wire identifies a node in a Builder.
type Wire int32

// Builder is an append-only algebraic-circuit DAG that doubles as an
// ff.Field[Wire] so algorithms can be traced through it. It carries the
// characteristic/cardinality of the target field, because traced algorithms
// consult them (Leverrier's validity check).
type Builder struct {
	ops   []Op
	argA  []Wire
	argB  []Wire
	kval  []int64 // OpConst: the FromInt64 preimage
	depth []int32

	nInputs  int
	nRandom  int
	inputs   []Wire
	outputs  []Wire
	constIdx map[int64]Wire

	char *big.Int
	card *big.Int

	// roots provides the modeled field's 2-power roots of unity as
	// FromInt64 preimages, so traced polynomial products can take the NTT
	// fast path with the roots embedded as circuit constants.
	roots ff.Int64Roots

	// foldP, when non-zero, is a word-sized prime with modeled field
	// exactly F_p: constant arithmetic is then folded modulo p, so chains
	// of constant operations (e.g. NTT twiddle factors) cost nothing —
	// constants are free in the straight-line-program model.
	foldP uint64
}

// NewBuilder returns an empty circuit whose zero tests and characteristic
// queries model a target field with the given characteristic and
// cardinality (use NewBuilderFor to copy them from a concrete field).
func NewBuilder(char, card *big.Int) *Builder {
	b := &Builder{
		constIdx: make(map[int64]Wire),
		char:     new(big.Int).Set(char),
		card:     new(big.Int).Set(card),
	}
	if char.Sign() > 0 && char.Cmp(card) == 0 && char.IsUint64() && char.Uint64() < 1<<63 {
		b.foldP = char.Uint64()
	}
	return b
}

// NewBuilderFor returns an empty circuit modeling the field f. If f
// publishes integer-coded roots of unity (ff.Int64Roots, e.g. F_p for
// p = ff.PNTT62), the builder inherits them and traced products use NTT.
func NewBuilderFor[E any](f ff.Field[E]) *Builder {
	b := NewBuilder(f.Characteristic(), f.Cardinality())
	if r, ok := any(f).(ff.Int64Roots); ok {
		b.roots = r
	}
	return b
}

// RootOfUnity exposes the modeled field's roots of unity as constant
// wires, implementing ff.RootsOfUnity[Wire].
func (b *Builder) RootOfUnity(log2n int) (Wire, bool) {
	if b.roots == nil {
		return 0, false
	}
	v, ok := b.roots.RootOfUnityInt64(log2n)
	if !ok {
		return 0, false
	}
	return b.constant(v), true
}

func (b *Builder) push(op Op, x, y Wire, k int64, d int32) Wire {
	b.ops = append(b.ops, op)
	b.argA = append(b.argA, x)
	b.argB = append(b.argB, y)
	b.kval = append(b.kval, k)
	b.depth = append(b.depth, d)
	return Wire(len(b.ops) - 1)
}

// Input appends an input node and returns its wire. Evaluation consumes
// input values in creation order.
func (b *Builder) Input() Wire {
	w := b.push(OpInput, -1, -1, 0, 0)
	b.nInputs++
	b.inputs = append(b.inputs, w)
	return w
}

// Inputs appends n input nodes.
func (b *Builder) Inputs(n int) []Wire {
	ws := make([]Wire, n)
	for i := range ws {
		ws[i] = b.Input()
	}
	return ws
}

// RandomInput appends an input node flagged as one of the paper's "nodes
// that denote random (input) elements"; evaluation treats it like any other
// input, but NumRandom reports the count (Theorems 4 and 6 promise O(n)).
func (b *Builder) RandomInput() Wire {
	w := b.Input()
	b.nRandom++
	return w
}

// RandomInputs appends n random-input nodes.
func (b *Builder) RandomInputs(n int) []Wire {
	ws := make([]Wire, n)
	for i := range ws {
		ws[i] = b.RandomInput()
	}
	return ws
}

// Return declares the circuit outputs (resetting any previous choice).
func (b *Builder) Return(ws ...Wire) {
	b.outputs = append(b.outputs[:0], ws...)
}

// Outputs returns the declared output wires.
func (b *Builder) Outputs() []Wire { return append([]Wire(nil), b.outputs...) }

// NumNodes returns the total node count including inputs and constants.
func (b *Builder) NumNodes() int { return len(b.ops) }

// NumInputs returns the number of input nodes (random inputs included).
func (b *Builder) NumInputs() int { return b.nInputs }

// NumRandom returns the number of random-input nodes.
func (b *Builder) NumRandom() int { return b.nRandom }

// constant interns FromInt64 constants so folding can identify them. Over
// a prime-field model the key is the canonical residue, so −1 and p−1 are
// the same wire.
func (b *Builder) constant(k int64) Wire {
	if b.foldP != 0 {
		k = b.canonical(k)
	}
	if w, ok := b.constIdx[k]; ok {
		return w
	}
	w := b.push(OpConst, -1, -1, k, 0)
	b.constIdx[k] = w
	return w
}

// canonical reduces k into [0, p) for the prime-field model.
func (b *Builder) canonical(k int64) int64 {
	m := k % int64(b.foldP)
	if m < 0 {
		m += int64(b.foldP)
	}
	return m
}

// modMul returns kx·ky mod p via a 128-bit product.
func (b *Builder) modMul(kx, ky int64) int64 {
	x := uint64(b.canonical(kx))
	y := uint64(b.canonical(ky))
	hi, lo := mul128(x, y)
	return int64(mod128(hi, lo, b.foldP))
}

// modInv returns k⁻¹ mod p (extended Euclid), with ok=false for k ≡ 0.
func (b *Builder) modInv(k int64) (int64, bool) {
	a := b.canonical(k)
	if a == 0 {
		return 0, false
	}
	t, newT := int64(0), int64(1)
	r, newR := int64(b.foldP), a
	for newR != 0 {
		q := r / newR
		t, newT = newT, t-q*newT
		r, newR = newR, r-q*newR
	}
	if t < 0 {
		t += int64(b.foldP)
	}
	return t, true
}

func (b *Builder) isConst(w Wire) (int64, bool) {
	if b.ops[w] == OpConst {
		return b.kval[w], true
	}
	return 0, false
}

const foldLimit = 1 << 31 // fold integer-constant arithmetic below this magnitude

func (b *Builder) binary(op Op, x, y Wire) Wire {
	d := 1 + max32(b.depth[x], b.depth[y])
	return b.push(op, x, y, 0, d)
}

// --- ff.Field[Wire] implementation (with peephole constant folding) ---

// Zero returns the constant-0 wire.
func (b *Builder) Zero() Wire { return b.constant(0) }

// One returns the constant-1 wire.
func (b *Builder) One() Wire { return b.constant(1) }

// Add appends x + y (folding x+0, 0+y, and small constant pairs).
func (b *Builder) Add(x, y Wire) Wire {
	kx, cx := b.isConst(x)
	ky, cy := b.isConst(y)
	switch {
	case cx && kx == 0:
		return y
	case cy && ky == 0:
		return x
	case cx && cy && b.foldP != 0:
		return b.constant(b.canonical(b.canonical(kx) - int64(b.foldP) + b.canonical(ky)))
	case cx && cy && abs64(kx)+abs64(ky) < foldLimit:
		return b.constant(kx + ky)
	}
	return b.binary(OpAdd, x, y)
}

// Sub appends x − y (folding x−0 and constant pairs; 0−y becomes Neg).
func (b *Builder) Sub(x, y Wire) Wire {
	kx, cx := b.isConst(x)
	ky, cy := b.isConst(y)
	switch {
	case cy && ky == 0:
		return x
	case cx && cy && b.foldP != 0:
		return b.constant(b.canonical(b.canonical(kx) - b.canonical(ky)))
	case cx && cy && abs64(kx)+abs64(ky) < foldLimit:
		return b.constant(kx - ky)
	case cx && kx == 0:
		return b.Neg(y)
	}
	return b.binary(OpSub, x, y)
}

// Neg appends −x (folding constants).
func (b *Builder) Neg(x Wire) Wire {
	if kx, cx := b.isConst(x); cx {
		if b.foldP != 0 {
			return b.constant(b.canonical(-b.canonical(kx)))
		}
		if abs64(kx) < foldLimit {
			return b.constant(-kx)
		}
	}
	return b.push(OpNeg, x, -1, 0, 1+b.depth[x])
}

// Mul appends x·y (folding x·0, x·1, and small constant pairs).
func (b *Builder) Mul(x, y Wire) Wire {
	kx, cx := b.isConst(x)
	ky, cy := b.isConst(y)
	switch {
	case cx && kx == 0, cy && ky == 0:
		return b.constant(0)
	case cx && kx == 1:
		return y
	case cy && ky == 1:
		return x
	case cx && cy && b.foldP != 0:
		return b.constant(b.modMul(kx, ky))
	case cx && cy && abs64(kx) < 1<<20 && abs64(ky) < 1<<20:
		return b.constant(kx * ky)
	}
	return b.binary(OpMul, x, y)
}

// Inv appends x⁻¹. No zero test happens at build time: an unlucky
// evaluation reports ff.ErrDivisionByZero, exactly the paper's model
// ("if the random choices are unlucky ... the circuit divides by zero").
func (b *Builder) Inv(x Wire) (Wire, error) {
	if kx, cx := b.isConst(x); cx {
		if kx == 1 {
			return x, nil
		}
		if b.foldP != 0 && b.canonical(kx) != 0 {
			inv, _ := b.modInv(kx)
			return b.constant(inv), nil
		}
	}
	return b.push(OpInv, x, -1, 0, 1+b.depth[x]), nil
}

// Div appends x/y (folding x/1).
func (b *Builder) Div(x, y Wire) (Wire, error) {
	if ky, cy := b.isConst(y); cy {
		if ky == 1 {
			return x, nil
		}
		if b.foldP != 0 && b.canonical(ky) != 0 {
			inv, _ := b.modInv(ky)
			return b.Mul(x, b.constant(inv)), nil
		}
	}
	if kx, cx := b.isConst(x); cx && kx == 0 {
		// 0/y = 0 for every valuation where y ≠ 0; an unlucky y = 0 would
		// have divided by zero, but the quotient is still what the Las
		// Vegas wrapper would discard — fold to keep circuits lean.
		return b.constant(0), nil
	}
	return b.binary(OpDiv, x, y), nil
}

// IsZero reports *structural* zeroness: true only for the constant 0.
// Generic code uses IsZero solely as a skip-work optimization (trimming,
// sparse multiply), for which "provably zero" is sound; branch-free
// algorithms never make control decisions on symbolic data.
func (b *Builder) IsZero(x Wire) bool {
	k, c := b.isConst(x)
	return c && k == 0
}

// Equal reports structural equality (same wire, or same folded constant).
func (b *Builder) Equal(x, y Wire) bool {
	if x == y {
		return true
	}
	kx, cx := b.isConst(x)
	ky, cy := b.isConst(y)
	return cx && cy && kx == ky
}

// FromInt64 appends (or reuses) an integer constant.
func (b *Builder) FromInt64(v int64) Wire { return b.constant(v) }

// String formats a wire for diagnostics.
func (b *Builder) String(x Wire) string {
	if k, c := b.isConst(x); c {
		return fmt.Sprintf("#%d=%d", x, k)
	}
	return fmt.Sprintf("#%d:%s", x, b.ops[x])
}

// Characteristic returns the modeled field characteristic.
func (b *Builder) Characteristic() *big.Int { return new(big.Int).Set(b.char) }

// Cardinality returns the modeled field cardinality.
func (b *Builder) Cardinality() *big.Int { return new(big.Int).Set(b.card) }

// Elem is unsupported: randomness must enter circuits as RandomInput nodes,
// never as baked-in constants.
func (b *Builder) Elem(i uint64) Wire {
	panic("circuit: sample randomness outside the trace and pass it via RandomInput")
}

var _ ff.Field[Wire] = (*Builder)(nil)

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func mul128(x, y uint64) (hi, lo uint64) { return bits.Mul64(x, y) }

func mod128(hi, lo, p uint64) uint64 {
	_, rem := bits.Div64(hi%p, lo, p)
	return rem
}
