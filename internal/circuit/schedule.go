package circuit

import "fmt"

// Explicit PRAM scheduling: beyond the aggregate Brent counts in pram.go,
// ListSchedule assigns every live arithmetic node a (step, processor) pair
// with greedy earliest-start list scheduling, producing the actual program
// a p-processor algebraic PRAM would run. Greedy list scheduling achieves
// T_p ≤ W/p + D (Graham/Brent); the level-synchronized scheduler can be
// slightly worse, and the difference is observable in the tests.

// Assignment places one node at one time step on one processor.
type Assignment struct {
	Node Wire
	Step int
	Proc int
}

// ListScheduleResult is an explicit schedule.
type ListScheduleResult struct {
	Processors  int
	Steps       int
	Work        int
	Depth       int
	Assignments []Assignment
}

// ListSchedule computes a greedy earliest-start schedule of the live
// arithmetic nodes on p processors: nodes become ready when both operands
// are finished; each step executes up to p ready nodes (lowest wire first,
// a deterministic tie-break).
//
// The sweep is O(steps × pending) in the worst case — fine for the
// model-validation circuits it exists for; use BrentSchedule for aggregate
// T_p numbers on multi-million-node traces.
func (b *Builder) ListSchedule(p int) *ListScheduleResult {
	if p < 1 {
		panic("circuit: need at least one processor")
	}
	live := b.liveSet()
	// finish[i] = step after which node i's value exists (0 for leaves).
	finish := make([]int, len(b.ops))
	// Count live arithmetic nodes and build a ready queue ordered by wire.
	res := &ListScheduleResult{Processors: p, Depth: b.Metrics().Depth}
	type pending struct {
		node  Wire
		ready int // earliest step index it may run at (1-based)
	}
	var queue []pending
	for i, op := range b.ops {
		if !live[i] {
			continue
		}
		switch op {
		case OpInput, OpConst:
			finish[i] = 0
		default:
			res.Work++
			ready := 1
			if x := b.argA[i]; x >= 0 {
				if f := finish[x]; f+1 > ready {
					ready = f + 1
				}
			}
			if y := b.argB[i]; y >= 0 {
				if f := finish[y]; f+1 > ready {
					ready = f + 1
				}
			}
			// Nodes appear in topological (creation) order, so operand
			// finish times are known... only if operands are arithmetic
			// nodes already scheduled. They are: argA/argB < i.
			queue = append(queue, pending{node: Wire(i), ready: ready})
			// Provisional: actual finish assigned below; store lower bound.
			finish[i] = ready // placeholder, fixed during the sweep
		}
	}
	// Sweep steps, packing up to p ready nodes per step. The queue is in
	// creation order; a node's true readiness depends on its operands'
	// *assigned* steps, so recompute on the fly.
	assigned := make([]bool, len(b.ops))
	remaining := res.Work
	step := 0
	for remaining > 0 {
		step++
		used := 0
		for qi := 0; qi < len(queue) && used < p; qi++ {
			nd := queue[qi].node
			if assigned[nd] {
				continue
			}
			ok := true
			for _, pa := range []Wire{b.argA[nd], b.argB[nd]} {
				if pa >= 0 && b.isArith(pa) && live[pa] {
					if !assigned[pa] || finish[pa] >= step {
						ok = false
						break
					}
				}
			}
			if !ok {
				continue
			}
			assigned[nd] = true
			finish[nd] = step
			res.Assignments = append(res.Assignments, Assignment{Node: nd, Step: step, Proc: used})
			used++
			remaining--
		}
		if used == 0 {
			panic("circuit: scheduler made no progress (cycle?)")
		}
	}
	res.Steps = step
	return res
}

func (b *Builder) isArith(w Wire) bool {
	switch b.ops[w] {
	case OpInput, OpConst:
		return false
	}
	return true
}

// Validate checks the schedule respects dependencies and the processor
// budget; used by the tests and available for external verification.
func (r *ListScheduleResult) Validate(b *Builder) error {
	stepOf := make(map[Wire]int, len(r.Assignments))
	perStep := make(map[int]int)
	for _, a := range r.Assignments {
		if prev, dup := stepOf[a.Node]; dup {
			return fmt.Errorf("node %d scheduled twice (steps %d, %d)", a.Node, prev, a.Step)
		}
		stepOf[a.Node] = a.Step
		perStep[a.Step]++
		if perStep[a.Step] > r.Processors {
			return fmt.Errorf("step %d exceeds %d processors", a.Step, r.Processors)
		}
		if a.Proc < 0 || a.Proc >= r.Processors {
			return fmt.Errorf("node %d on invalid processor %d", a.Node, a.Proc)
		}
	}
	for _, a := range r.Assignments {
		for _, p := range []Wire{b.argA[a.Node], b.argB[a.Node]} {
			if p < 0 || !b.isArith(p) {
				continue
			}
			ps, ok := stepOf[p]
			if !ok {
				continue // operand outside the live set (cannot happen)
			}
			if ps >= a.Step {
				return fmt.Errorf("node %d at step %d before operand %d at step %d",
					a.Node, a.Step, p, ps)
			}
		}
	}
	return nil
}

// BrentBoundHolds reports Steps ≤ Work/p + Depth.
func (r *ListScheduleResult) BrentBoundHolds() bool {
	return float64(r.Steps) <= float64(r.Work)/float64(r.Processors)+float64(r.Depth)+1e-9
}
