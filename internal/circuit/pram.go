package circuit

// Brent-style PRAM scheduling: a circuit of size W (work) and depth D runs
// on p processors in time T_p = Σ_levels ⌈width/p⌉ ≤ W/p + D — Brent's
// theorem, the bridge between the paper's circuit bounds and its
// "processor efficient" claim: with p ≈ W/D processors the running time is
// O(D) = O((log n)²), and W is within a log factor of the best sequential
// step count.

// Schedule reports the simulated execution of a circuit on p processors.
type Schedule struct {
	Processors int
	// Time is the exact greedy level-by-level step count Σ ⌈wᵢ/p⌉.
	Time int
	// Work is the number of live arithmetic nodes (T₁).
	Work int
	// Depth is the critical path length (T_∞).
	Depth int
}

// Speedup returns Work/Time, the achieved parallel speedup.
func (s Schedule) Speedup() float64 {
	if s.Time == 0 {
		return 1
	}
	return float64(s.Work) / float64(s.Time)
}

// Efficiency returns Speedup/p ∈ (0, 1].
func (s Schedule) Efficiency() float64 {
	if s.Processors == 0 {
		return 0
	}
	return s.Speedup() / float64(s.Processors)
}

// BrentBoundHolds reports Time ≤ Work/p + Depth (must always be true).
func (s Schedule) BrentBoundHolds() bool {
	return float64(s.Time) <= float64(s.Work)/float64(s.Processors)+float64(s.Depth)+1e-9
}

// BrentSchedule simulates the circuit on p processors: every depth level
// is executed in ⌈width/p⌉ steps (nodes within a level are independent by
// construction).
func (b *Builder) BrentSchedule(p int) Schedule {
	if p < 1 {
		panic("circuit: need at least one processor")
	}
	widths := b.LevelWidths()
	s := Schedule{Processors: p, Depth: len(widths) - 1}
	for l, w := range widths {
		if l == 0 || w == 0 {
			continue
		}
		s.Work += w
		s.Time += (w + p - 1) / p
	}
	return s
}

// SpeedupTable schedules the circuit for each processor count.
func (b *Builder) SpeedupTable(ps []int) []Schedule {
	out := make([]Schedule, len(ps))
	for i, p := range ps {
		out[i] = b.BrentSchedule(p)
	}
	return out
}

// ProcessorEfficientP returns ⌈Work/Depth⌉ — the processor count at which
// Brent's bound gives time O(Depth), i.e. polylog time at full efficiency.
func (b *Builder) ProcessorEfficientP() int {
	m := b.BrentSchedule(1)
	if m.Depth == 0 {
		return 1
	}
	return (m.Work + m.Depth - 1) / m.Depth
}
