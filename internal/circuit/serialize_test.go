package circuit

import (
	"bytes"
	"testing"

	"repro/internal/ff"
)

func TestSerializeRoundTrip(t *testing.T) {
	f := ff.MustFp64(ff.PNTT62)
	src := ff.NewSource(221)
	b := NewBuilderFor[uint64](f)
	xs := b.Inputs(10)
	r := b.RandomInputs(3)
	s := b.SumBalanced(append(xs, r...))
	q, err := b.Div(s, b.Add(xs[0], b.One()))
	if err != nil {
		t.Fatal(err)
	}
	b.Return(q, s)

	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCircuit(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != b.NumNodes() || got.NumInputs() != b.NumInputs() ||
		got.NumRandom() != b.NumRandom() {
		t.Fatal("round trip changed circuit shape")
	}
	if got.Size() != b.Size() || got.Depth() != b.Depth() {
		t.Fatal("round trip changed metrics")
	}
	if got.Characteristic().Cmp(b.Characteristic()) != 0 {
		t.Fatal("round trip changed characteristic")
	}
	vals := ff.SampleVec[uint64](f, src, 13, 1<<30)
	vals[0]++ // keep the divisor non-zero regardless of draw
	want, err := Eval[uint64](b, f, vals)
	if err != nil {
		t.Fatal(err)
	}
	have, err := Eval[uint64](got, f, vals)
	if err != nil {
		t.Fatal(err)
	}
	if !ff.VecEqual[uint64](f, have, want) {
		t.Fatal("round trip changed evaluation")
	}
	// The loaded circuit can keep growing (intern table rebuilt).
	w := got.Mul(got.FromInt64(7), got.Outputs()[0])
	if got.NodeDepth(w) == 0 {
		t.Fatal("loaded circuit not extendable")
	}
}

func TestReadCircuitRejectsGarbage(t *testing.T) {
	if _, err := ReadCircuit(bytes.NewReader([]byte("not a circuit"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Corrupt operand index.
	f := ff.MustFp64(ff.P31)
	b := NewBuilderFor[uint64](f)
	x := b.Input()
	b.Return(b.Mul(x, x))
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-20] ^= 0xff // scribble near the node tables
	if _, err := ReadCircuit(bytes.NewReader(raw)); err == nil {
		t.Log("corruption not detected at this offset (acceptable: data region)")
	}
}
