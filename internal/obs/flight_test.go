package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestFlightRecorderWrap(t *testing.T) {
	ResetFlight()
	t.Cleanup(ResetFlight)
	total := flightCapacity + 17
	for i := 0; i < total; i++ {
		RecordFlight(FlightEntry{Op: "kp.solve", N: i, Subset: 64, Attempts: 1, Outcome: "ok"})
	}
	entries := FlightEntries()
	if len(entries) != flightCapacity {
		t.Fatalf("got %d entries, want %d", len(entries), flightCapacity)
	}
	for i, e := range entries {
		if want := int64(total - flightCapacity + 1 + i); e.Seq != want {
			t.Fatalf("entry %d seq=%d, want %d (oldest surviving first)", i, e.Seq, want)
		}
	}
	if entries[0].N != total-flightCapacity {
		t.Fatalf("oldest surviving N = %d", entries[0].N)
	}
}

func TestFlightRecorderStampsWhen(t *testing.T) {
	ResetFlight()
	t.Cleanup(ResetFlight)
	before := time.Now()
	RecordFlight(FlightEntry{Op: "kp.solve", N: 4, Outcome: "ok"})
	entries := FlightEntries()
	if len(entries) != 1 {
		t.Fatalf("got %d entries", len(entries))
	}
	if entries[0].When.Before(before) {
		t.Fatalf("zero When not stamped: %v", entries[0].When)
	}
	// An explicit timestamp is preserved.
	when := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	RecordFlight(FlightEntry{Op: "kp.solve", N: 4, Outcome: "ok", When: when})
	entries = FlightEntries()
	if !entries[1].When.Equal(when) {
		t.Fatalf("explicit When overwritten: %v", entries[1].When)
	}
}

func TestWriteFlightRecord(t *testing.T) {
	ResetFlight()
	t.Cleanup(ResetFlight)
	var buf bytes.Buffer
	WriteFlightRecord(&buf)
	if buf.Len() != 0 {
		t.Fatalf("empty ring must write nothing, got %q", buf.String())
	}
	RecordFlight(FlightEntry{Op: "kp.batch", N: 32, Rhs: 8, Subset: 4096, Attempts: 2, Outcome: "retries exhausted", Wall: 3 * time.Millisecond})
	WriteFlightRecord(&buf)
	out := buf.String()
	for _, want := range []string{"flight recorder", "kp.batch", "n=32", "rhs=8", "attempts=2", "retries exhausted"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}
