package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// seedTelemetry populates every subsystem the exposition covers so the lint
// exercises counters, gauges, plain and labeled histograms, and attempt
// statistics in one document.
func seedTelemetry(t *testing.T) {
	t.Helper()
	NewCounter("test.prom.counter").Add(3)
	g := NewGauge("test.prom.gauge")
	g.Set(7)
	NewHistogram("test.prom.hist").Observe(100)
	o := New(16)
	withObserver(t, o)
	sp := StartPhase(PhaseKrylov) // labeled phase.latency.ns series
	time.Sleep(time.Microsecond)
	sp.End()
	RecordAttempt(Attempt{Solver: "kp.solve", N: 8, Subset: 4096, Outcome: OutcomeSuccess, Wall: time.Microsecond})
	RecordAttempt(Attempt{Solver: "kp.solve", N: 8, Subset: 4096, Outcome: OutcomeDivZero, Phase: PhaseMinPoly, Wall: time.Microsecond})
	RecordFlight(FlightEntry{Op: "kp.solve", N: 8, Subset: 4096, Attempts: 2, Outcome: "ok"})
}

func TestHandlerEndpoints(t *testing.T) {
	seedTelemetry(t)
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	health, _ := get("/healthz")
	if health != "ok\n" {
		t.Fatalf("healthz = %q", health)
	}

	metrics, ctype := get("/metrics")
	if !strings.Contains(ctype, "text/plain") || !strings.Contains(ctype, "version=0.0.4") {
		t.Fatalf("metrics content-type = %q", ctype)
	}
	for _, want := range []string{
		"kp_test_prom_counter_total 3",
		"kp_test_prom_gauge 7",
		"kp_phase_latency_ns_bucket{phase=\"krylov\",",
		"kp_attempts_total{solver=\"kp.solve\",",
		"kp_attempt_failure_bound_eq2{",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	snapshot, ctype := get("/snapshot")
	if !strings.Contains(ctype, "application/json") {
		t.Fatalf("snapshot content-type = %q", ctype)
	}
	var doc SnapshotDoc
	if err := json.Unmarshal([]byte(snapshot), &doc); err != nil {
		t.Fatalf("/snapshot is not valid JSON: %v", err)
	}
	if doc.Metrics["test.prom.counter"] != 3 {
		t.Fatalf("snapshot metrics wrong: %v", doc.Metrics["test.prom.counter"])
	}
	if len(doc.Flight) == 0 {
		t.Fatal("snapshot missing flight entries")
	}
	if len(doc.Attempts) == 0 {
		t.Fatal("snapshot missing attempt statistics")
	}
}

// TestPrometheusExpositionLint parses the full /metrics output and enforces
// the exposition-format rules a real scraper relies on: valid metric names,
// HELP/TYPE headers preceding every sample of their family, counters named
// *_total with non-negative finite values, histogram buckets cumulative and
// capped by a +Inf bucket equal to _count.
func TestPrometheusExpositionLint(t *testing.T) {
	seedTelemetry(t)
	var sb strings.Builder
	WriteMetrics(&sb)
	lintPromText(t, sb.String())
}

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

type promSample struct {
	name   string
	labels map[string]string
	value  float64
	line   int
}

func lintPromText(t *testing.T, text string) {
	t.Helper()
	typeOf := map[string]string{} // family -> counter|gauge|histogram
	helpSeen := map[string]bool{}
	var samples []promSample

	for i, line := range strings.Split(text, "\n") {
		ln := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || parts[1] == "" {
				t.Fatalf("line %d: HELP without text: %q", ln, line)
			}
			helpSeen[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln, line)
			}
			name, typ := parts[0], parts[1]
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("line %d: unknown TYPE %q", ln, typ)
			}
			if !helpSeen[name] {
				t.Fatalf("line %d: TYPE %s before its HELP", ln, name)
			}
			if _, dup := typeOf[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln, name)
			}
			typeOf[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		s, err := parsePromSample(line)
		if err != nil {
			t.Fatalf("line %d: %v (%q)", ln, err, line)
		}
		s.line = ln
		samples = append(samples, s)
	}

	if len(samples) == 0 {
		t.Fatal("no samples in exposition")
	}

	// Per-series bucket tracking for the histogram rules.
	type seriesKey struct{ family, labels string }
	lastCum := map[seriesKey]float64{}
	infCount := map[seriesKey]float64{}
	countVal := map[seriesKey]float64{}

	for _, s := range samples {
		if !promNameRe.MatchString(s.name) {
			t.Fatalf("line %d: invalid metric name %q", s.line, s.name)
		}
		for k := range s.labels {
			if !promLabelRe.MatchString(k) {
				t.Fatalf("line %d: invalid label name %q", s.line, k)
			}
		}
		family, sub := s.name, ""
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(s.name, suffix)
			if trimmed != s.name && typeOf[trimmed] == "histogram" {
				family, sub = trimmed, suffix
				break
			}
		}
		typ, ok := typeOf[family]
		if !ok {
			t.Fatalf("line %d: sample %s has no preceding TYPE", s.line, s.name)
		}
		switch typ {
		case "counter":
			if !strings.HasSuffix(family, "_total") {
				t.Fatalf("line %d: counter %s must end in _total", s.line, family)
			}
			if s.value < 0 {
				t.Fatalf("line %d: counter %s has negative value %v", s.line, s.name, s.value)
			}
		case "histogram":
			// Key the series by its labels minus le.
			rest := make([]string, 0, len(s.labels))
			for k, v := range s.labels {
				if k != "le" {
					rest = append(rest, k+"="+v)
				}
			}
			key := seriesKey{family, strings.Join(sortStrings(rest), ",")}
			switch sub {
			case "_bucket":
				le, hasLe := s.labels["le"]
				if !hasLe {
					t.Fatalf("line %d: histogram bucket without le label", s.line)
				}
				if s.value < lastCum[key] {
					t.Fatalf("line %d: bucket counts not cumulative for %s (%v < %v)", s.line, s.name, s.value, lastCum[key])
				}
				lastCum[key] = s.value
				if le == "+Inf" {
					infCount[key] = s.value
				} else if _, err := strconv.ParseFloat(le, 64); err != nil {
					t.Fatalf("line %d: unparseable le=%q", s.line, le)
				}
			case "_count":
				countVal[key] = s.value
			}
		}
	}
	for key, inf := range infCount {
		if c, ok := countVal[key]; !ok || c != inf {
			t.Fatalf("histogram %s{%s}: +Inf bucket %v != _count %v", key.family, key.labels, inf, countVal[key])
		}
	}
	for key := range countVal {
		if _, ok := infCount[key]; !ok {
			t.Fatalf("histogram %s{%s}: no +Inf bucket", key.family, key.labels)
		}
	}
}

func parsePromSample(line string) (promSample, error) {
	s := promSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value separator")
	} else {
		s.name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.LastIndex(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set")
		}
		for _, pair := range splitLabels(rest[1:end]) {
			eq := strings.Index(pair, "=")
			if eq < 0 {
				return s, fmt.Errorf("malformed label %q", pair)
			}
			val, err := strconv.Unquote(pair[eq+1:])
			if err != nil {
				return s, fmt.Errorf("unquoted label value in %q: %v", pair, err)
			}
			s.labels[pair[:eq]] = val
		}
		rest = rest[end+1:]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("unparseable value %q", rest)
	}
	s.value = v
	return s, nil
}

// splitLabels splits a label body on commas outside quoted values.
func splitLabels(body string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '"':
			if i == 0 || body[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, body[start:i])
				start = i + 1
			}
		}
	}
	if start < len(body) {
		out = append(out, body[start:])
	}
	return out
}

func sortStrings(s []string) []string {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s
}

// failRecorder is a ResponseWriter whose body writes fail after the first
// failAfter bytes, counting WriteHeader calls — the shape of a client that
// hangs up mid-response.
type failRecorder struct {
	header       int
	status       int
	written      int
	failAfter    int
	headerValues http.Header
}

func (r *failRecorder) Header() http.Header {
	if r.headerValues == nil {
		r.headerValues = make(http.Header)
	}
	return r.headerValues
}

func (r *failRecorder) WriteHeader(status int) {
	r.header++
	r.status = status
}

func (r *failRecorder) Write(b []byte) (int, error) {
	if r.written >= r.failAfter {
		return 0, fmt.Errorf("forced write failure")
	}
	r.written += len(b)
	return len(b), nil
}

// TestSnapshotEncodeFailure forces the snapshot marshal to fail and checks
// the handler's error path is clean: exactly one WriteHeader with status
// 500 and the error text — never a 200 followed by a partial JSON body.
func TestSnapshotEncodeFailure(t *testing.T) {
	seedTelemetry(t)
	old := marshalSnapshot
	marshalSnapshot = func(SnapshotDoc) ([]byte, error) {
		return nil, fmt.Errorf("forced encode failure")
	}
	t.Cleanup(func() { marshalSnapshot = old })

	srv := httptest.NewServer(Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 500 {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "forced encode failure") {
		t.Fatalf("body %q does not carry the encode error", body)
	}
	if ct := resp.Header.Get("Content-Type"); strings.Contains(ct, "application/json") {
		t.Fatalf("error response still claims JSON Content-Type %q beside a non-JSON body", ct)
	}
}

// TestSnapshotWriteFailure drives the handler against a connection that
// dies mid-body: the handler must not call WriteHeader a second time
// (the pre-fix code reached http.Error after a partial streamed encode).
func TestSnapshotWriteFailure(t *testing.T) {
	seedTelemetry(t)
	req := httptest.NewRequest("GET", "/snapshot", nil)
	rec := &failRecorder{failAfter: 16}
	Handler().ServeHTTP(rec, req)
	if rec.header > 1 {
		t.Fatalf("WriteHeader called %d times on a failed write; want at most once", rec.header)
	}
	if rec.status != 0 && rec.status != 200 {
		t.Fatalf("failed body write flipped the status to %d", rec.status)
	}
}

// TestSnapshotSingleDocument checks the success path emits one complete
// JSON document (the buffered rewrite must not change the wire format).
func TestSnapshotSingleDocument(t *testing.T) {
	seedTelemetry(t)
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var doc SnapshotDoc
	dec := json.NewDecoder(resp.Body)
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if dec.More() {
		t.Fatal("snapshot body carries trailing data after the document")
	}
	if len(doc.Metrics) == 0 {
		t.Fatal("snapshot lost its metrics")
	}
}
