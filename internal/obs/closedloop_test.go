package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- triggered profile store ---

func TestProfileStoreTrigger(t *testing.T) {
	ps := NewProfileStore(ProfileStoreConfig{CPUDuration: -1, Cooldown: time.Hour})
	const trace = "0123456789abcdef0123456789abcdef"
	id := ps.Trigger(TriggerSlowRequest, trace, "route=solve wall=1s")
	if id == 0 {
		t.Fatal("first trigger must capture")
	}
	c, data, ok := ps.Get(id)
	if !ok || len(data) == 0 {
		t.Fatalf("capture %d not retrievable (ok=%v, %d bytes)", id, ok, len(data))
	}
	if c.Kind != "heap" || c.Trigger != TriggerSlowRequest || c.TraceID != trace {
		t.Fatalf("capture metadata wrong: %+v", c)
	}
	if got := ps.IDsForTrace(trace); len(got) != 1 || got[0] != id {
		t.Fatalf("IDsForTrace = %v, want [%d]", got, id)
	}

	// Same reason inside the cooldown: suppressed. Different reason: fresh.
	if again := ps.Trigger(TriggerSlowRequest, trace, ""); again != 0 {
		t.Fatalf("cooldown did not suppress repeat trigger (id %d)", again)
	}
	if other := ps.Trigger(TriggerQueueSaturation, "", "queue full"); other == 0 {
		t.Fatal("a different trigger reason must not share the cooldown")
	}
}

func TestProfileStoreEviction(t *testing.T) {
	ps := NewProfileStore(ProfileStoreConfig{Capacity: 2, CPUDuration: -1, Cooldown: time.Nanosecond})
	first := ps.Trigger(TriggerManual, "", "one")
	ps.Trigger(TriggerManual, "", "two")
	ps.Trigger(TriggerManual, "", "three")
	if ps.Len() != 2 {
		t.Fatalf("ring holds %d captures, want capacity 2", ps.Len())
	}
	if _, _, ok := ps.Get(first); ok {
		t.Fatal("oldest capture must be evicted")
	}
	profs := ps.Profiles()
	if len(profs) != 2 || profs[0].Detail != "three" || profs[1].Detail != "two" {
		t.Fatalf("Profiles() = %+v, want newest first [three two]", profs)
	}
}

func TestProfileStoreCPUCapture(t *testing.T) {
	ps := NewProfileStore(ProfileStoreConfig{CPUDuration: 10 * time.Millisecond, Cooldown: time.Hour})
	ps.Trigger(TriggerManual, "feedfacefeedfacefeedfacefeedface", "cpu test")
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, c := range ps.Profiles() {
			if c.Kind == "cpu" {
				if c.Size == 0 {
					t.Fatal("cpu capture is empty")
				}
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("cpu capture never landed in the ring")
}

func TestBadPrimeStormTrigger(t *testing.T) {
	oldThreshold, oldWindow := stormThreshold, stormWindow
	stormThreshold, stormWindow = 3, time.Hour
	t.Cleanup(func() { stormThreshold, stormWindow = oldThreshold, oldWindow })

	ps := NewProfileStore(ProfileStoreConfig{CPUDuration: -1, Cooldown: time.Hour})
	SetProfileStore(ps)
	t.Cleanup(func() { SetProfileStore(nil) })

	NoteBadPrimeReplacement("")
	NoteBadPrimeReplacement("")
	if ps.Len() != 0 {
		t.Fatal("below-threshold replacements must not trigger")
	}
	NoteBadPrimeReplacement("abcdabcdabcdabcdabcdabcdabcdabcd")
	profs := ps.Profiles()
	if len(profs) != 1 || profs[0].Trigger != TriggerBadPrimeStorm {
		t.Fatalf("storm did not capture: %+v", profs)
	}
	if profs[0].TraceID != "abcdabcdabcdabcdabcdabcdabcdabcd" {
		t.Fatalf("storm capture lost the tripping trace id: %+v", profs[0])
	}
}

func TestProfilesHandlerAndTraceCrossLink(t *testing.T) {
	ps := NewProfileStore(ProfileStoreConfig{CPUDuration: -1, Cooldown: time.Hour})
	SetProfileStore(ps)
	ts := NewTraceStore(TraceStoreConfig{Capacity: 8, SlowThreshold: time.Millisecond})
	SetTraceStore(ts)
	t.Cleanup(func() { SetProfileStore(nil); SetTraceStore(nil) })

	const trace = "fade0123fade0123fade0123fade0123"
	ts.Record(RequestTrace{TraceID: trace, Route: "solve", Status: 200, Wall: time.Second})
	id := ps.Trigger(TriggerSlowRequest, trace, "route=solve")

	srv := httptest.NewServer(Handler())
	defer srv.Close()

	// List: the capture summary is there, newest first.
	resp, err := srv.Client().Get(srv.URL + "/debug/profiles")
	if err != nil {
		t.Fatal(err)
	}
	var list profilesDoc
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Profiles) != 1 || list.Profiles[0].ID != id || list.Profiles[0].TraceID != trace {
		t.Fatalf("/debug/profiles list = %+v", list)
	}

	// Download: raw pprof bytes.
	resp, err = srv.Client().Get(fmt.Sprintf("%s/debug/profiles?id=%d", srv.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || len(raw) == 0 {
		t.Fatalf("profile download: status %d, %d bytes", resp.StatusCode, len(raw))
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("profile download content-type = %q", ct)
	}

	// The trace detail and list entries cross-link to the capture.
	resp, err = srv.Client().Get(srv.URL + "/debug/traces?id=" + trace)
	if err != nil {
		t.Fatal(err)
	}
	var detail struct {
		TraceID    string  `json:"trace_id"`
		ProfileIDs []int64 `json:"profile_ids"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&detail); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if detail.TraceID != trace || len(detail.ProfileIDs) != 1 || detail.ProfileIDs[0] != id {
		t.Fatalf("trace detail cross-link = %+v, want profile %d", detail, id)
	}

	// Unknown id: 404, not a panic or an empty 200.
	resp, err = srv.Client().Get(srv.URL + "/debug/profiles?id=999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("unknown profile id: status %d, want 404", resp.StatusCode)
	}
}

// --- metrics timeline ---

func TestTimelineRingWrap(t *testing.T) {
	ctr := NewCounter("test.timeline.wrap")
	tl := NewTimeline(TimelineConfig{Capacity: 4, Interval: time.Hour})
	const rounds = 7
	for i := 0; i < rounds; i++ {
		ctr.Add(5)
		tl.SampleNow()
	}
	if tl.Len() != 4 {
		t.Fatalf("ring holds %d samples, want capacity 4", tl.Len())
	}
	samples := tl.Samples()
	// Oldest evicted: the survivors are seqs 4..7, oldest first.
	for i, s := range samples {
		if want := int64(rounds - 3 + i); s.Seq != want {
			t.Fatalf("samples[%d].Seq = %d, want %d (oldest evicted, order kept)", i, s.Seq, want)
		}
	}
	// Deltas stay correct across the wrap seam: 3 increments of 5 between
	// the oldest survivor and the newest sample.
	oldest, newest := samples[0], samples[len(samples)-1]
	if d := newest.Metrics["test.timeline.wrap"] - oldest.Metrics["test.timeline.wrap"]; d != 15 {
		t.Fatalf("windowed delta across seam = %d, want 15", d)
	}
	if rate, ok := tl.Rate("test.timeline.wrap", time.Hour); !ok || rate <= 0 {
		t.Fatalf("Rate = %v ok=%v, want positive", rate, ok)
	}
}

func TestTimelineCapturesHistsAndAttempts(t *testing.T) {
	h := NewLabeledHistogram("test.timeline.ns", "route", "solve")
	h.Observe(1000)
	RecordAttempt(Attempt{Solver: "test.timeline", N: 8, Subset: 1 << 20, Outcome: OutcomeSuccess})
	tl := NewTimeline(TimelineConfig{Capacity: 4, Interval: time.Hour})
	s := tl.SampleNow()
	hp, ok := s.Hists[`test.timeline.ns{route="solve"}`]
	if !ok || hp.Count != 1 || len(hp.Buckets) == 0 {
		t.Fatalf("sample missing histogram point: %+v", s.Hists)
	}
	ap, ok := s.Attempts["test.timeline/8/1048576"]
	if !ok || ap.Attempts != 1 || ap.BoundEq2 <= 0 {
		t.Fatalf("sample missing attempt point: %+v", s.Attempts)
	}
}

func TestTimelineHandler(t *testing.T) {
	tl := NewTimeline(TimelineConfig{Capacity: 4, Interval: time.Hour})
	tl.SampleNow()
	SetTimeline(tl)
	t.Cleanup(func() { SetTimeline(nil) })

	srv := httptest.NewServer(Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/timeline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc timelineDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Capacity != 4 || len(doc.Samples) != 1 {
		t.Fatalf("/debug/timeline = capacity %d, %d samples", doc.Capacity, len(doc.Samples))
	}
}

func TestTimelineStartStop(t *testing.T) {
	tl := NewTimeline(TimelineConfig{Capacity: 16, Interval: 5 * time.Millisecond})
	tl.Start()
	deadline := time.Now().Add(2 * time.Second)
	for tl.Len() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	tl.Stop()
	if tl.Len() < 2 {
		t.Fatalf("sampler took only %d samples", tl.Len())
	}
	n := tl.Len()
	time.Sleep(20 * time.Millisecond)
	if tl.Len() != n {
		t.Fatal("sampler kept running after Stop")
	}
}

// --- SLO engine ---

func TestSLOLatencyBreachDegradesHealthz(t *testing.T) {
	hist := NewLabeledHistogram("test.slo.request.ns", "route", "solve")
	tl := NewTimeline(TimelineConfig{Capacity: 16, Interval: time.Hour})
	tl.SampleNow() // baseline before any traffic

	eng := NewSLOEngine(SLOConfig{FastWindow: time.Hour, SlowWindow: time.Hour}, tl, []Objective{{
		Name: "test_latency_p99", Kind: KindLatency,
		Series:    `test.slo.request.ns{route="solve"}`,
		Threshold: float64(50 * time.Millisecond), Budget: 0.01,
	}})

	// Quiet traffic: all requests fast, no burn.
	for i := 0; i < 20; i++ {
		hist.Observe(int64(time.Millisecond))
	}
	tl.SampleNow()
	st := eng.Evaluate()
	if st[0].BurnFast != 0 || st[0].Breached {
		t.Fatalf("fast traffic must not burn: %+v", st[0])
	}

	// Regression: every request now blows the threshold.
	ResetFlight()
	t.Cleanup(ResetFlight)
	for i := 0; i < 20; i++ {
		hist.Observe(int64(time.Second))
	}
	tl.SampleNow()
	st = eng.Evaluate()
	if !st[0].Breached || st[0].BurnFast < 1 || st[0].BurnSlow < 1 {
		t.Fatalf("slow traffic must breach: %+v", st[0])
	}
	if st[0].Since.IsZero() {
		t.Fatal("breach must stamp Since")
	}

	// The breach is one flight-ring record and flips /healthz to 503.
	var found bool
	for _, e := range FlightEntries() {
		if e.Op == "slo.breach" && strings.Contains(e.Outcome, "test_latency_p99") {
			found = true
		}
	}
	if !found {
		t.Fatal("breach transition missing from the flight ring")
	}

	SetSLOEngine(eng)
	t.Cleanup(func() { SetSLOEngine(nil) })
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 503 || !strings.HasPrefix(string(body), "degraded\n") {
		t.Fatalf("/healthz under breach = %d %q, want 503 degraded", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "test_latency_p99") {
		t.Fatalf("degraded verdict does not name the objective: %q", body)
	}

	// kp_slo_* explains why on /metrics.
	var sb strings.Builder
	WriteMetrics(&sb)
	if !strings.Contains(sb.String(), "kp_slo_test_latency_p99_breached 1") {
		t.Fatalf("/metrics missing breach gauge:\n%s", sb.String())
	}

	// /debug/slo serves the objective status.
	resp, err = srv.Client().Get(srv.URL + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Objectives []ObjectiveStatus `json:"objectives"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(doc.Objectives) != 1 || !doc.Objectives[0].Breached {
		t.Fatalf("/debug/slo = %+v", doc)
	}

	// Recovery: fast traffic again clears the breach (windows clip to the
	// post-recovery samples once the slow burst ages out — emulate by
	// shrinking the window to the newest delta).
	for i := 0; i < 6000; i++ {
		hist.Observe(int64(time.Millisecond))
	}
	tl.SampleNow()
	st = eng.Evaluate()
	if st[0].Breached {
		t.Fatalf("diluted burn must clear the breach: %+v", st[0])
	}
	resp, err = srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != "ok\n" {
		t.Fatalf("/healthz after recovery = %d %q", resp.StatusCode, body)
	}
}

func TestSLOErrorRateBurn(t *testing.T) {
	bad := NewCounter("test.slo.errors")
	total := NewCounter("test.slo.requests")
	tl := NewTimeline(TimelineConfig{Capacity: 8, Interval: time.Hour})
	tl.SampleNow()
	eng := NewSLOEngine(SLOConfig{FastWindow: time.Hour, SlowWindow: time.Hour}, tl, []Objective{{
		Name: "test_error_rate", Kind: KindErrorRate,
		Series: "test.slo.errors", TotalSeries: "test.slo.requests", Budget: 0.01,
	}})
	total.Add(100)
	bad.Add(5) // 5% errors against a 1% budget: burn 5x
	tl.SampleNow()
	st := eng.Evaluate()
	if st[0].BurnFast < 4.9 || st[0].BurnFast > 5.1 || !st[0].Breached {
		t.Fatalf("error burn = %+v, want ~5x breach", st[0])
	}
}

func TestSLOEfficiencyFloor(t *testing.T) {
	g := NewGauge("test.slo.efficiency.milli")
	tl := NewTimeline(TimelineConfig{Capacity: 8, Interval: time.Hour})
	eng := NewSLOEngine(SLOConfig{FastWindow: time.Hour, SlowWindow: time.Hour}, tl, []Objective{{
		Name: "test_efficiency", Kind: KindEfficiencyFloor,
		Series: "test.slo.efficiency.milli", Threshold: 2000, Budget: 0.5,
	}})
	// Gauge never set: no eligible samples, no burn (a service that ran no
	// ring traffic must not page about ring efficiency).
	tl.SampleNow()
	if st := eng.Evaluate(); st[0].BurnFast != 0 {
		t.Fatalf("zero-traffic efficiency burn = %+v", st[0])
	}
	// Every sample below the floor: burn = 1/budget = 2x.
	g.Set(1200)
	tl.SampleNow()
	g.Set(1100)
	tl.SampleNow()
	st := eng.Evaluate()
	if st[0].BurnFast < 1.9 || !st[0].Breached {
		t.Fatalf("below-floor efficiency burn = %+v, want ~2x breach", st[0])
	}
}

func TestSLOAttemptBoundBurn(t *testing.T) {
	tl := NewTimeline(TimelineConfig{Capacity: 8, Interval: time.Hour})
	tl.SampleNow()
	eng := NewSLOEngine(SLOConfig{FastWindow: time.Hour, SlowWindow: time.Hour}, tl, []Objective{{
		Name: "test_attempt_bound", Kind: KindAttemptBound, Budget: 1,
	}})
	// n=8, |S|=2^20: eq (2) bound = 3·64/2^20 ≈ 1.8e-4. Half the attempts
	// failing is astronomically over the bound.
	for i := 0; i < 4; i++ {
		RecordAttempt(Attempt{Solver: "test.slo.attempts", N: 8, Subset: 1 << 20, Outcome: OutcomeSuccess})
		RecordAttempt(Attempt{Solver: "test.slo.attempts", N: 8, Subset: 1 << 20, Outcome: OutcomeDivZero})
	}
	tl.SampleNow()
	st := eng.Evaluate()
	if st[0].BurnFast < 100 || !st[0].Breached {
		t.Fatalf("attempt-bound burn = %+v, want enormous breach", st[0])
	}
}

// --- flight ring under concurrency ---

// TestFlightRingConcurrentHammer spins writers and readers against the
// flight ring at once; -race proves the locking, and the assertions prove
// dumps stay internally consistent (bounded, sequenced) mid-storm.
func TestFlightRingConcurrentHammer(t *testing.T) {
	ResetFlight()
	t.Cleanup(ResetFlight)
	const writers, perWriter = 8, 400
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				RecordFlight(FlightEntry{Op: "hammer", N: w, Attempts: i, Outcome: "ok"})
			}
		}(w)
	}
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				entries := FlightEntries()
				if len(entries) > flightCapacity {
					t.Errorf("dump of %d entries exceeds capacity %d", len(entries), flightCapacity)
					return
				}
				for i := 1; i < len(entries); i++ {
					if entries[i].Seq <= entries[i-1].Seq {
						t.Errorf("dump out of order: seq %d after %d", entries[i].Seq, entries[i-1].Seq)
						return
					}
				}
				var sb strings.Builder
				WriteFlightRecord(&sb)
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if n := len(FlightEntries()); n != flightCapacity {
		t.Fatalf("after %d writes the ring holds %d entries, want full capacity %d",
			writers*perWriter, n, flightCapacity)
	}
}

// --- OpenMetrics exposition ---

// TestOpenMetricsExpositionLint validates the OpenMetrics output: EOF
// terminator, counter family naming (TYPE without _total, samples with),
// and well-formed exemplars whose values sit inside their bucket.
func TestOpenMetricsExpositionLint(t *testing.T) {
	// Seed dedicated series (seedTelemetry would double-count the exact
	// values TestHandlerEndpoints asserts on the shared registry).
	NewCounter("test.om.counter").Add(2)
	NewGauge("test.om.gauge").Set(9)
	NewLabeledHistogram("test.om.ns", "route", "solve").
		ObserveExemplar(int64(123456), "cafe0123cafe0123cafe0123cafe0123")
	RecordAttempt(Attempt{Solver: "test.om", N: 8, Subset: 4096, Outcome: OutcomeSuccess})

	srv := httptest.NewServer(Handler())
	defer srv.Close()
	req, err := http.NewRequest("GET", srv.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/openmetrics-text") {
		t.Fatalf("negotiated content-type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lintOpenMetrics(t, string(raw))

	// ?format=openmetrics negotiates too (for humans with curl).
	resp2, err := srv.Client().Get(srv.URL + "/metrics?format=openmetrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); !strings.Contains(ct, "openmetrics") {
		t.Fatalf("?format=openmetrics content-type = %q", ct)
	}
}

var exemplarRe = regexp.MustCompile(`^\{trace_id="([0-9a-f]{32})"\} (\d+) (\d+(?:\.\d+)?)$`)

// lintOpenMetrics enforces the OpenMetrics rules layered on the 0.0.4
// lint: "# EOF" terminator, counter metadata named without _total while
// samples keep it, exemplars only on bucket lines with value ≤ le.
func lintOpenMetrics(t *testing.T, text string) {
	t.Helper()
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if len(lines) == 0 || lines[len(lines)-1] != "# EOF" {
		t.Fatal("OpenMetrics exposition must end with # EOF")
	}
	typeOf := map[string]string{}
	sawExemplar := false
	var plain []string // lines with exemplars stripped, for the 0.0.4 lint
	for i, line := range lines[:len(lines)-1] {
		ln := i + 1
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) == 2 {
				if parts[1] == "counter" && strings.HasSuffix(parts[0], "_total") {
					t.Fatalf("line %d: OpenMetrics counter family %q must not carry _total", ln, parts[0])
				}
				typeOf[parts[0]] = parts[1]
			}
			plain = append(plain, line)
			continue
		}
		if strings.HasPrefix(line, "#") {
			plain = append(plain, line)
			continue
		}
		sample, exemplar, hasEx := strings.Cut(line, " # ")
		plain = append(plain, sample)
		if !hasEx {
			continue
		}
		sawExemplar = true
		if !strings.Contains(sample, "_bucket{") {
			t.Fatalf("line %d: exemplar on a non-bucket line: %q", ln, line)
		}
		m := exemplarRe.FindStringSubmatch(exemplar)
		if m == nil {
			t.Fatalf("line %d: malformed exemplar %q", ln, exemplar)
		}
		// The exemplar's value must fall inside the bucket it annotates.
		s, err := parsePromSample(sample)
		if err != nil {
			t.Fatalf("line %d: %v", ln, err)
		}
		if le := s.labels["le"]; le != "+Inf" {
			leV, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("line %d: unparseable le %q", ln, le)
			}
			exV, _ := strconv.ParseFloat(m[2], 64)
			if exV > leV {
				t.Fatalf("line %d: exemplar value %v above bucket le %v", ln, exV, leV)
			}
		}
		if ts, _ := strconv.ParseFloat(m[3], 64); ts <= 0 {
			t.Fatalf("line %d: exemplar timestamp %q not positive", ln, m[3])
		}
	}
	if !sawExemplar {
		t.Fatal("exposition carries no exemplars despite ObserveExemplar traffic")
	}
	// Counter samples still end in _total even though their family does not.
	for family, typ := range typeOf {
		if typ != "counter" {
			continue
		}
		found := false
		for _, line := range plain {
			if strings.HasPrefix(line, family+"_total ") || strings.HasPrefix(line, family+"_total{") {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("counter family %s has no %s_total sample", family, family)
		}
	}
}
