package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics timeline: a background sampler that snapshots the whole metric
// state — every counter/gauge, every histogram's count/sum/quantiles and
// raw bucket counts, the Las Vegas attempt groups — into a bounded
// in-memory ring at a fixed interval. The counters themselves only ever
// say "how much since process start"; the timeline is what turns them into
// rates and windowed deltas, which is what the SLO burn-rate engine and a
// human diagnosing "when did p99 move" both need. Served as JSON at
// /debug/timeline.

// Timeline telemetry on /metrics (kp_timeline_…).
var (
	timelineSamples  = NewCounter("timeline.samples")
	timelineSampleNs = NewHistogram("timeline.sample.ns")
)

// HistPoint is one histogram series at one instant: totals, quantile
// estimates, and the raw (non-cumulative) bucket counts windowed deltas
// are computed from.
type HistPoint struct {
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	P50     uint64       `json:"p50"`
	P99     uint64       `json:"p99"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// AttemptPoint is one Las Vegas attempt group at one instant, with the
// paper's bounds beside the cumulative counts.
type AttemptPoint struct {
	Attempts    int64   `json:"attempts"`
	Failures    int64   `json:"failures"`
	BoundEq2    float64 `json:"bound_eq2"`
	BoundLemma2 float64 `json:"bound_lemma2"`
}

// TimelineSample is one tick of the sampler.
type TimelineSample struct {
	Seq  int64     `json:"seq"`
	When time.Time `json:"when"`
	// Metrics is the counter/gauge registry (gauges include "<name>.max").
	Metrics map[string]int64 `json:"metrics"`
	// Hists is keyed by series: `name` or `name{key="value"}`.
	Hists map[string]HistPoint `json:"hists"`
	// Attempts is keyed by "solver/n/subset".
	Attempts map[string]AttemptPoint `json:"attempts,omitempty"`
}

// histSeriesKey names one histogram series in a sample.
func histSeriesKey(s HistSnapshot) string {
	if s.LabelKey == "" {
		return s.Name
	}
	return fmt.Sprintf("%s{%s=%q}", s.Name, s.LabelKey, s.LabelValue)
}

// TimelineConfig configures a Timeline; zero values select defaults.
type TimelineConfig struct {
	// Capacity bounds the ring (default 360 samples — an hour at the
	// default interval).
	Capacity int
	// Interval is the sampling period (default 10s).
	Interval time.Duration
}

// Timeline is the bounded sample ring plus its sampler goroutine. Safe for
// concurrent use.
type Timeline struct {
	cfg TimelineConfig

	mu   sync.Mutex
	ring []TimelineSample
	next int64 // samples ever admitted; ring slot is next % cap

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewTimeline returns a timeline for the config, resolving zero values.
// Call Start to launch the sampler; SampleNow works without it.
func NewTimeline(cfg TimelineConfig) *Timeline {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 360
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Second
	}
	return &Timeline{
		cfg:  cfg,
		ring: make([]TimelineSample, 0, cfg.Capacity),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// Config returns the resolved configuration.
func (t *Timeline) Config() TimelineConfig { return t.cfg }

// Start launches the sampler goroutine: one immediate sample, then one per
// interval until Stop.
func (t *Timeline) Start() {
	go func() {
		defer close(t.done)
		t.SampleNow()
		tick := time.NewTicker(t.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				t.SampleNow()
			case <-t.stop:
				return
			}
		}
	}()
}

// Stop halts the sampler and waits for it to exit. Idempotent.
func (t *Timeline) Stop() {
	t.stopOnce.Do(func() { close(t.stop) })
	<-t.done
}

// SampleNow takes one sample of the full metric state and admits it to the
// ring. The cost of the walk is itself recorded (kp_timeline_sample_ns) so
// the observability overhead is observable.
func (t *Timeline) SampleNow() TimelineSample {
	start := time.Now()
	s := TimelineSample{
		When:    start,
		Metrics: MetricsSnapshot(),
		Hists:   make(map[string]HistPoint),
	}
	for _, h := range Histograms() {
		// Exemplars are served by /metrics; carrying them per sample would
		// only multiply retained pointers.
		buckets := make([]HistBucket, len(h.Buckets))
		for i, b := range h.Buckets {
			buckets[i] = HistBucket{Le: b.Le, Count: b.Count}
		}
		s.Hists[histSeriesKey(h)] = HistPoint{
			Count: h.Count, Sum: h.Sum, P50: h.P50, P99: h.P99, Buckets: buckets,
		}
	}
	if lines := BoundsReport(); len(lines) > 0 {
		s.Attempts = make(map[string]AttemptPoint, len(lines))
		for _, l := range lines {
			key := fmt.Sprintf("%s/%d/%d", l.Solver, l.N, l.Subset)
			s.Attempts[key] = AttemptPoint{
				Attempts: l.Attempts, Failures: l.Failures,
				BoundEq2: l.BoundEq2, BoundLemma2: l.BoundLemma2,
			}
		}
	}

	t.mu.Lock()
	t.next++
	s.Seq = t.next
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, s)
	} else {
		t.ring[(t.next-1)%int64(cap(t.ring))] = s
	}
	t.mu.Unlock()
	timelineSamples.Inc()
	timelineSampleNs.Observe(time.Since(start).Nanoseconds())
	return s
}

// Samples returns the retained samples, oldest first.
func (t *Timeline) Samples() []TimelineSample {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TimelineSample, 0, len(t.ring))
	for k := int64(len(t.ring)); k >= 1; k-- {
		out = append(out, t.ring[(t.next-k)%int64(cap(t.ring))])
	}
	return out
}

// Latest returns the newest sample.
func (t *Timeline) Latest() (TimelineSample, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) == 0 {
		return TimelineSample{}, false
	}
	return t.ring[(t.next-1)%int64(cap(t.ring))], true
}

// At returns the newest retained sample at least age old — the far edge of
// an SLO window. When the ring does not reach back that far it returns the
// oldest sample (the window is clipped to available history).
func (t *Timeline) At(age time.Duration) (TimelineSample, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) == 0 {
		return TimelineSample{}, false
	}
	cutoff := time.Now().Add(-age)
	var oldest TimelineSample
	for k := int64(len(t.ring)); k >= 1; k-- {
		s := t.ring[(t.next-k)%int64(cap(t.ring))]
		if k == int64(len(t.ring)) {
			oldest = s
		}
		if !s.When.After(cutoff) {
			oldest = s
		} else {
			break
		}
	}
	return oldest, true
}

// Rate returns the per-second rate of a counter over the window between
// the sample at least `window` old and the newest sample; ok is false when
// fewer than two samples span the window.
func (t *Timeline) Rate(metric string, window time.Duration) (float64, bool) {
	newest, ok := t.Latest()
	if !ok {
		return 0, false
	}
	oldest, _ := t.At(window)
	dt := newest.When.Sub(oldest.When).Seconds()
	if dt <= 0 {
		return 0, false
	}
	return float64(newest.Metrics[metric]-oldest.Metrics[metric]) / dt, true
}

// Len returns the number of retained samples.
func (t *Timeline) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// activeTimeline is the process-global timeline /debug/timeline serves and
// the SLO engine evaluates over; nil disables both.
var activeTimeline atomic.Pointer[Timeline]

// SetTimeline installs t as the process-global timeline (nil disables).
func SetTimeline(t *Timeline) { activeTimeline.Store(t) }

// ActiveTimeline returns the installed timeline, or nil.
func ActiveTimeline() *Timeline { return activeTimeline.Load() }
