package obs

import (
	"encoding/json"
	"io"
	"os"
)

// Chrome trace_event export: the recorded spans serialized as complete
// ("ph":"X") events, loadable in chrome://tracing / Perfetto. Span
// timestamps are microseconds from the Observer's epoch; the goroutine id
// becomes the tid so concurrently open phases land on separate rows.

// traceEvent is one entry of the trace_event format's traceEvents array.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the trace_event object form (metadata beside the events).
type traceFile struct {
	TraceEvents     []traceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// traceEventsOf converts span records to trace_event entries. Scoped spans
// carry their owning request's trace id in args so a multi-request
// timeline remains attributable per request.
func traceEventsOf(records []SpanRecord) []traceEvent {
	events := make([]traceEvent, 0, len(records))
	for _, r := range records {
		args := map[string]any{
			"span_id":   r.ID,
			"parent":    r.Parent,
			"field_ops": r.FieldOps,
			"mul_calls": r.MulCalls,
		}
		if !r.Trace.IsZero() {
			args["trace_id"] = r.Trace.String()
		}
		events = append(events, traceEvent{
			Name: r.Name,
			Cat:  "phase",
			Ph:   "X",
			Ts:   float64(r.Start.Nanoseconds()) / 1e3,
			Dur:  float64(r.Dur.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  r.GID,
			Args: args,
		})
	}
	return events
}

// writeTraceEventDoc writes one trace_event document for the given records.
func writeTraceEventDoc(w io.Writer, records []SpanRecord, other map[string]any) error {
	return json.NewEncoder(w).Encode(traceFile{
		TraceEvents:     traceEventsOf(records),
		DisplayTimeUnit: "ms",
		OtherData:       other,
	})
}

// WriteTrace writes the recorded spans as Chrome trace_event JSON. The
// metrics registry snapshot rides along under otherData so one file
// carries both the timeline and the pool counters.
func (o *Observer) WriteTrace(w io.Writer) error {
	other := map[string]any{
		"metrics":         MetricsSnapshot(),
		"spans_dropped":   o.Dropped(),
		"field_ops_total": o.TotalFieldOps(),
	}
	return writeTraceEventDoc(w, o.Records(), other)
}

// WriteRequestTrace writes one retained request trace as a Chrome
// trace_event document — the per-trace export behind
// /debug/traces?id=…&format=chrome.
func WriteRequestTrace(w io.Writer, rt RequestTrace) error {
	other := map[string]any{
		"trace_id":      rt.TraceID,
		"route":         rt.Route,
		"status":        rt.Status,
		"cache":         rt.Cache,
		"attempts":      rt.Attempts,
		"kept":          rt.Kept,
		"queue_wait_ns": rt.QueueWait.Nanoseconds(),
		"wall_ns":       rt.Wall.Nanoseconds(),
	}
	return writeTraceEventDoc(w, rt.Spans, other)
}

// WriteTraceFile writes the trace to the named file.
func (o *Observer) WriteTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := o.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
