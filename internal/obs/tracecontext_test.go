package obs

import (
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tc := NewTraceContext()
	if tc.IsZero() {
		t.Fatal("NewTraceContext returned a zero context")
	}
	if tc.Flags&0x01 == 0 {
		t.Fatal("minted context should set the sampled flag")
	}
	h := tc.Traceparent()
	if len(h) != 55 {
		t.Fatalf("traceparent length = %d, want 55: %q", len(h), h)
	}
	if !strings.HasPrefix(h, "00-") {
		t.Fatalf("traceparent should be version 00: %q", h)
	}
	got, err := ParseTraceparent(h)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", h, err)
	}
	if got != tc {
		t.Fatalf("round trip mismatch: sent %+v, parsed %+v", tc, got)
	}
}

func TestTraceparentKnownVector(t *testing.T) {
	// The W3C spec's example header.
	h := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tc, err := ParseTraceparent(h)
	if err != nil {
		t.Fatalf("ParseTraceparent: %v", err)
	}
	if tc.Trace.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id = %s", tc.Trace)
	}
	if tc.Span.String() != "00f067aa0ba902b7" {
		t.Fatalf("span id = %s", tc.Span)
	}
	if tc.Flags != 0x01 {
		t.Fatalf("flags = %#x, want 0x01", tc.Flags)
	}
	if tc.Traceparent() != h {
		t.Fatalf("re-rendered %q, want %q", tc.Traceparent(), h)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	bad := []struct {
		name string
		h    string
	}{
		{"empty", ""},
		{"short", "00-4bf92f35"},
		{"uppercase hex", strings.ToUpper(valid)},
		{"zero trace id", "00-00000000000000000000000000000000-00f067aa0ba902b7-01"},
		{"zero span id", "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01"},
		{"version ff", "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"},
		{"non-hex version", "zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"},
		{"non-hex trace id", "00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01"},
		{"non-hex flags", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz"},
		{"wrong delimiters", "00_4bf92f3577b34da6a3ce929d0e0e4736_00f067aa0ba902b7_01"},
		{"version 00 with trailing data", valid + "-extra"},
		{"future version with non-dash trailer", "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x"},
	}
	for _, tt := range bad {
		if _, err := ParseTraceparent(tt.h); err == nil {
			t.Errorf("%s: ParseTraceparent(%q) accepted a malformed header", tt.name, tt.h)
		}
	}
	// Future versions with extra dash-separated fields must parse (the spec
	// requires forward compatibility).
	future := "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extrafield"
	if _, err := ParseTraceparent(future); err != nil {
		t.Errorf("future-version header rejected: %v", err)
	}
}

// FuzzParseTraceparent asserts the parser never panics and that everything
// it accepts renders back to a header it accepts again (idempotence of the
// accept set), regardless of input shape.
func FuzzParseTraceparent(f *testing.F) {
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("")
	f.Add("00-00000000000000000000000000000000-0000000000000000-00")
	f.Add("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-what")
	f.Fuzz(func(t *testing.T, h string) {
		tc, err := ParseTraceparent(h)
		if err != nil {
			return
		}
		if tc.Trace.IsZero() || tc.Span.IsZero() {
			t.Fatalf("accepted %q with a zero id", h)
		}
		again, err := ParseTraceparent(tc.Traceparent())
		if err != nil {
			t.Fatalf("re-parse of accepted %q failed: %v", h, err)
		}
		if again.Trace != tc.Trace || again.Span != tc.Span || again.Flags != tc.Flags {
			t.Fatalf("re-parse of %q changed the context", h)
		}
	})
}

func TestChildKeepsTraceChangesSpan(t *testing.T) {
	tc := NewTraceContext()
	child := tc.Child()
	if child.Trace != tc.Trace {
		t.Fatal("Child changed the trace id")
	}
	if child.Span == tc.Span {
		t.Fatal("Child kept the parent span id")
	}
	if child.Span.IsZero() {
		t.Fatal("Child minted a zero span id")
	}
}

func TestContextCarriers(t *testing.T) {
	// Nil and empty contexts are safe and carry nothing.
	if sc := ScopeFromContext(nil); sc != nil {
		t.Fatal("nil ctx produced a scope")
	}
	if tc := TraceFromContext(nil); !tc.IsZero() {
		t.Fatal("nil ctx produced a trace")
	}

	tc := NewTraceContext()
	ctx := ContextWithTrace(nil, tc)
	if got := TraceFromContext(ctx); got != tc {
		t.Fatalf("bare trace tag: got %+v, want %+v", got, tc)
	}
	if ScopeFromContext(ctx) != nil {
		t.Fatal("bare trace tag must not produce a scope")
	}

	sc := NewScope(tc)
	ctx = ContextWithScope(nil, sc)
	if ScopeFromContext(ctx) != sc {
		t.Fatal("scope did not round-trip through the context")
	}
	if got := TraceFromContext(ctx); got != tc {
		t.Fatalf("scope-carried trace: got %+v, want %+v", got, tc)
	}
}

// TestScopedSpansKeepPerRequestParentage is the tentpole property: two
// scopes interleaving span starts on one Observer keep their own parent
// chains and collect only their own records, while the Observer ring still
// receives everything (the global phase totals stay whole).
func TestScopedSpansKeepPerRequestParentage(t *testing.T) {
	o := New(64)
	withObserver(t, o)

	scA := NewScope(NewTraceContext())
	scB := NewScope(NewTraceContext())
	ctxA := ContextWithScope(nil, scA)
	ctxB := ContextWithScope(nil, scB)

	rootA := StartPhaseCtx(ctxA, "request/a")
	rootB := StartPhaseCtx(ctxB, "request/b")
	childA := StartPhaseCtx(ctxA, "phase/a")
	childB := StartPhaseCtx(ctxB, "phase/b")
	if scA.OpenSpanName() != "phase/a" || scB.OpenSpanName() != "phase/b" {
		t.Fatalf("open spans = %q / %q", scA.OpenSpanName(), scB.OpenSpanName())
	}
	childB.End()
	childA.End()
	rootB.End()
	rootA.End()
	if scA.OpenSpanName() != "" || scB.OpenSpanName() != "" {
		t.Fatal("scopes left spans open")
	}

	for name, sc := range map[string]*TraceScope{"a": scA, "b": scB} {
		spans := sc.Spans()
		if len(spans) != 2 {
			t.Fatalf("scope %s collected %d spans, want 2", name, len(spans))
		}
		// Completion order: the child ends first.
		child, root := spans[0], spans[1]
		if child.Name != "phase/"+name || root.Name != "request/"+name {
			t.Fatalf("scope %s spans = %q, %q", name, child.Name, root.Name)
		}
		if child.Parent != root.ID {
			t.Fatalf("scope %s child parented to %d, want root %d (cross-request leakage)", name, child.Parent, root.ID)
		}
		want := sc.TraceContext().Trace
		for _, rec := range spans {
			if rec.Trace != want {
				t.Fatalf("scope %s span %q tagged with trace %s, want %s", name, rec.Name, rec.Trace, want)
			}
		}
	}

	// The Observer ring still saw all four spans.
	if got := len(o.Records()); got != 4 {
		t.Fatalf("observer ring has %d records, want 4", got)
	}
}

func TestScopeSpanCapBoundsMemory(t *testing.T) {
	withObserver(t, New(2*scopeSpanCap))
	sc := NewScope(NewTraceContext())
	ctx := ContextWithScope(nil, sc)
	for i := 0; i < scopeSpanCap+10; i++ {
		StartPhaseCtx(ctx, "phase/spin").End()
	}
	if got := len(sc.Spans()); got != scopeSpanCap {
		t.Fatalf("scope retained %d spans, want cap %d", got, scopeSpanCap)
	}
	if got := sc.SpansDropped(); got != 10 {
		t.Fatalf("dropped = %d, want 10", got)
	}
}

func TestNilScopeMethodsAreSafe(t *testing.T) {
	var sc *TraceScope
	sc.NoteAttempt()
	sc.SetQueueWait(1)
	if sc.Attempts() != 0 || sc.QueueWait() != 0 || sc.OpenSpanName() != "" || sc.Spans() != nil || sc.SpansDropped() != 0 {
		t.Fatal("nil scope leaked state")
	}
	if !sc.TraceContext().IsZero() {
		t.Fatal("nil scope has a trace")
	}
}

// BenchmarkSpanCtxDisabled guards the disabled fast path of the ctx-aware
// entry point: with no active Observer it must stay one atomic load and
// zero allocations, like BenchmarkSpanDisabled.
func BenchmarkSpanCtxDisabled(b *testing.B) {
	SetActive(nil)
	ctx := ContextWithScope(nil, NewScope(NewTraceContext()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := StartPhaseCtx(ctx, PhaseKrylov)
		sp.AddFieldOps(10, 1)
		sp.End()
	}
}

// BenchmarkSpanCtxScoped prices the enabled scoped path (span machinery +
// scope collection).
func BenchmarkSpanCtxScoped(b *testing.B) {
	o := New(1 << 10)
	SetActive(o)
	defer SetActive(nil)
	ctx := ContextWithScope(nil, NewScope(NewTraceContext()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := StartPhaseCtx(ctx, PhaseKrylov)
		sp.AddFieldOps(10, 1)
		sp.End()
	}
}
