package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Flight recorder: an always-on ring of the most recent driver-level solve
// summaries (one entry per Solve/SolveBatch/Factor/Det call, success or
// failure). Unlike spans it needs no Observer and is never disabled — the
// cost is one short mutex hold per driver call, amortized over an entire
// Las Vegas solve — so post-mortem context is available even in processes
// that never turned tracing on. kpsolve dumps it to stderr on any non-zero
// exit.

// FlightEntry is one recorded driver call.
type FlightEntry struct {
	Seq      int64         `json:"seq"`  // 1-based, process-wide
	When     time.Time     `json:"when"` // completion time
	Op       string        `json:"op"`   // driver: "kp.solve", "kp.batch", ...
	N        int           `json:"n"`
	Rhs      int           `json:"rhs,omitempty"` // right-hand sides (batch ops)
	Subset   uint64        `json:"subset"`
	Attempts int           `json:"attempts"` // Las Vegas attempts consumed
	Outcome  string        `json:"outcome"`  // "ok" or the error text
	Wall     time.Duration `json:"wall_ns"`
	// Trace and Span identify the owning request when the driver ran under
	// a trace context (kpd requests, kpsolve operations), so a crash dump
	// cross-links to /debug/traces and server logs.
	Trace TraceID `json:"trace,omitzero"`
	Span  SpanID  `json:"span,omitzero"`
}

// flightCapacity is the ring size: enough recent history for a post-mortem
// without unbounded growth.
const flightCapacity = 128

var flight struct {
	mu   sync.Mutex
	ring [flightCapacity]FlightEntry
	next int64 // entries ever recorded; slot is next % flightCapacity
}

// RecordFlight appends a driver-call summary to the flight ring. A zero
// When is stamped with the current time.
func RecordFlight(e FlightEntry) {
	if e.When.IsZero() {
		e.When = time.Now()
	}
	flight.mu.Lock()
	e.Seq = flight.next + 1
	flight.ring[flight.next%flightCapacity] = e
	flight.next++
	flight.mu.Unlock()
}

// FlightEntries returns the recorded entries, oldest surviving first.
func FlightEntries() []FlightEntry {
	flight.mu.Lock()
	defer flight.mu.Unlock()
	n := flight.next
	if n > flightCapacity {
		out := make([]FlightEntry, 0, flightCapacity)
		head := n % flightCapacity
		out = append(out, flight.ring[head:]...)
		out = append(out, flight.ring[:head]...)
		return out
	}
	out := make([]FlightEntry, n)
	copy(out, flight.ring[:n])
	return out
}

// WriteFlightRecord dumps the ring as a human-readable table (newest last).
// With no recorded entries it writes nothing, so callers can dump
// unconditionally on failure paths.
func WriteFlightRecord(w io.Writer) {
	entries := FlightEntries()
	if len(entries) == 0 {
		return
	}
	fmt.Fprintf(w, "flight recorder (%d most recent solve(s)):\n", len(entries))
	for _, e := range entries {
		rhs := ""
		if e.Rhs > 1 {
			rhs = fmt.Sprintf(" rhs=%d", e.Rhs)
		}
		id := ""
		if !e.Trace.IsZero() {
			id = fmt.Sprintf("  trace=%s span=%s", e.Trace, e.Span)
		}
		fmt.Fprintf(w, "  #%-4d %s  %-12s n=%-5d%s |S|=%d attempts=%d wall=%s  %s%s\n",
			e.Seq, e.When.Format("15:04:05.000"), e.Op, e.N, rhs, e.Subset, e.Attempts, e.Wall, e.Outcome, id)
	}
}

// ResetFlight clears the flight ring (tests).
func ResetFlight() {
	flight.mu.Lock()
	flight.ring = [flightCapacity]FlightEntry{}
	flight.next = 0
	flight.mu.Unlock()
}
