package obs

import (
	"encoding/json"
	"net/http"
)

// marshalSnapshot renders the /snapshot document. It is a variable so the
// handler test can force a marshal failure; production code never replaces
// it.
var marshalSnapshot = func(doc SnapshotDoc) ([]byte, error) {
	return json.MarshalIndent(doc, "", "  ")
}

// Embeddable HTTP exposition of the telemetry pipeline. Handler returns a
// mux any server can mount:
//
//	/metrics   Prometheus text format (counters, gauges, histograms,
//	           attempt statistics with the paper's failure bounds)
//	/snapshot  one JSON document with everything /metrics has, plus the
//	           flight-recorder ring and the active Observer's phase totals
//	/healthz   liveness: 200 "ok"
//
// kpsolve -serve and kpbench -serve mount it on a dedicated listener; a
// production embedder mounts it on its own mux next to pprof.

// SnapshotDoc is the /snapshot JSON document.
type SnapshotDoc struct {
	// Metrics is the counter/gauge registry (gauges contribute
	// "<name>.max" beside their current value).
	Metrics map[string]int64 `json:"metrics"`
	// Histograms are the log-bucketed distributions (phase latencies,
	// retry counts, batch sizes, pool samples).
	Histograms []HistSnapshot `json:"histograms"`
	// Attempts is the Las Vegas bounds report: observed failure rates
	// beside the equation (2) / Lemma 2 / Theorem 2 bounds.
	Attempts []BoundsLine `json:"attempts"`
	// Flight is the flight-recorder ring, oldest first.
	Flight []FlightEntry `json:"flight"`
	// PhaseTotals and DroppedSpans reflect the active Observer, when one
	// is installed.
	PhaseTotals  map[string]PhaseTotal `json:"phase_totals,omitempty"`
	DroppedSpans int64                 `json:"dropped_spans,omitempty"`
}

// Snapshot assembles the full telemetry state as one document.
func Snapshot() SnapshotDoc {
	doc := SnapshotDoc{
		Metrics:    MetricsSnapshot(),
		Histograms: Histograms(),
		Attempts:   BoundsReport(),
		Flight:     FlightEntries(),
	}
	if o := Active(); o != nil {
		doc.PhaseTotals = o.PhaseTotals()
		doc.DroppedSpans = o.Dropped()
	}
	return doc
}

// Handler returns the telemetry mux serving /metrics, /snapshot and
// /healthz.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteMetrics(w)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		// Marshal into memory before touching the ResponseWriter: encoding
		// straight into w means a mid-document failure has already committed
		// the 200 status and a partial body, so the http.Error afterwards is
		// a superfluous WriteHeader and the client sees corrupt JSON. With
		// the buffer, an error path writes exactly one clean 500 and the
		// success path writes exactly one complete document.
		body, err := marshalSnapshot(Snapshot())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(body, '\n'))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	return mux
}
