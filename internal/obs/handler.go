package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// marshalSnapshot renders the /snapshot document. It is a variable so the
// handler test can force a marshal failure; production code never replaces
// it.
var marshalSnapshot = func(doc SnapshotDoc) ([]byte, error) {
	return json.MarshalIndent(doc, "", "  ")
}

// Embeddable HTTP exposition of the telemetry pipeline. Handler returns a
// mux any server can mount:
//
//	/metrics   Prometheus text format (counters, gauges, histograms,
//	           attempt statistics with the paper's failure bounds)
//	/snapshot  one JSON document with everything /metrics has, plus the
//	           flight-recorder ring and the active Observer's phase totals
//	/healthz   liveness: 200 "ok"
//	/debug/traces  the tail-sampled request trace store (JSON list;
//	           ?id=<trace-id> for one span tree, &format=chrome for a
//	           Chrome trace_event export) — 404 until SetTraceStore
//
// kpsolve -serve and kpbench -serve mount it on a dedicated listener; a
// production embedder mounts it on its own mux next to pprof.

// SnapshotDoc is the /snapshot JSON document.
type SnapshotDoc struct {
	// Metrics is the counter/gauge registry (gauges contribute
	// "<name>.max" beside their current value).
	Metrics map[string]int64 `json:"metrics"`
	// Histograms are the log-bucketed distributions (phase latencies,
	// retry counts, batch sizes, pool samples).
	Histograms []HistSnapshot `json:"histograms"`
	// Attempts is the Las Vegas bounds report: observed failure rates
	// beside the equation (2) / Lemma 2 / Theorem 2 bounds.
	Attempts []BoundsLine `json:"attempts"`
	// Flight is the flight-recorder ring, oldest first.
	Flight []FlightEntry `json:"flight"`
	// Runtime is the runtime/metrics gauge set (GC pauses, scheduler
	// latency, goroutines, heap) also exported on /metrics.
	Runtime map[string]float64 `json:"runtime"`
	// PhaseTotals and DroppedSpans reflect the active Observer, when one
	// is installed.
	PhaseTotals  map[string]PhaseTotal `json:"phase_totals,omitempty"`
	DroppedSpans int64                 `json:"dropped_spans,omitempty"`
}

// Snapshot assembles the full telemetry state as one document.
func Snapshot() SnapshotDoc {
	doc := SnapshotDoc{
		Metrics:    MetricsSnapshot(),
		Histograms: Histograms(),
		Attempts:   BoundsReport(),
		Flight:     FlightEntries(),
		Runtime:    RuntimeSnapshot(),
	}
	if o := Active(); o != nil {
		doc.PhaseTotals = o.PhaseTotals()
		doc.DroppedSpans = o.Dropped()
	}
	return doc
}

// TraceSummary is one /debug/traces list entry: the request summary
// without the span tree (fetch the full trace by id for that).
type TraceSummary struct {
	TraceID   string        `json:"trace_id"`
	Route     string        `json:"route"`
	N         int           `json:"n,omitempty"`
	Status    int           `json:"status"`
	Cache     string        `json:"cache,omitempty"`
	Attempts  int           `json:"attempts"`
	Error     string        `json:"error,omitempty"`
	Start     time.Time     `json:"start"`
	Wall      time.Duration `json:"wall_ns"`
	QueueWait time.Duration `json:"queue_wait_ns"`
	Kept      string        `json:"kept"`
	Spans     int           `json:"spans"`
	// ProfileIDs cross-link to /debug/profiles?id= captures fired while
	// this request ran (same trace id).
	ProfileIDs []int64 `json:"profile_ids,omitempty"`
}

// tracesDoc is the /debug/traces list document.
type tracesDoc struct {
	Capacity      int            `json:"capacity"`
	SlowThreshold time.Duration  `json:"slow_threshold_ns"`
	SampleEvery   int            `json:"sample_every"`
	Traces        []TraceSummary `json:"traces"`
}

// handleTraces serves the tail-sampled trace store:
//
//	/debug/traces                     JSON list, newest first
//	/debug/traces?id=<trace-id>       one full trace (span tree included)
//	/debug/traces?id=<id>&format=chrome  the trace as Chrome trace_event JSON
func handleTraces(w http.ResponseWriter, r *http.Request) {
	ts := ActiveTraceStore()
	if ts == nil {
		http.Error(w, "trace store not enabled", http.StatusNotFound)
		return
	}
	if id := r.URL.Query().Get("id"); id != "" {
		rt, ok := ts.Get(id)
		if !ok {
			http.Error(w, "trace "+id+" not retained (evicted or sampled out)", http.StatusNotFound)
			return
		}
		if r.URL.Query().Get("format") == "chrome" {
			w.Header().Set("Content-Type", "application/json")
			var buf bytes.Buffer
			if err := WriteRequestTrace(&buf, rt); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Write(buf.Bytes())
			return
		}
		detail := struct {
			RequestTrace
			ProfileIDs []int64 `json:"profile_ids,omitempty"`
		}{RequestTrace: rt}
		if ps := ActiveProfileStore(); ps != nil {
			detail.ProfileIDs = ps.IDsForTrace(rt.TraceID)
		}
		writeJSONDoc(w, detail)
		return
	}
	traces := ts.Traces()
	doc := tracesDoc{
		Capacity:      ts.Config().Capacity,
		SlowThreshold: ts.Config().SlowThreshold,
		SampleEvery:   ts.Config().SampleEvery,
		Traces:        make([]TraceSummary, 0, len(traces)),
	}
	ps := ActiveProfileStore()
	for _, rt := range traces {
		sum := TraceSummary{
			TraceID: rt.TraceID, Route: rt.Route, N: rt.N, Status: rt.Status,
			Cache: rt.Cache, Attempts: rt.Attempts, Error: rt.Error,
			Start: rt.Start, Wall: rt.Wall, QueueWait: rt.QueueWait,
			Kept: rt.Kept, Spans: len(rt.Spans),
		}
		if ps != nil {
			sum.ProfileIDs = ps.IDsForTrace(rt.TraceID)
		}
		doc.Traces = append(doc.Traces, sum)
	}
	writeJSONDoc(w, doc)
}

// profilesDoc is the /debug/profiles list document.
type profilesDoc struct {
	Capacity    int              `json:"capacity"`
	CPUDuration time.Duration    `json:"cpu_duration_ns"`
	Cooldown    time.Duration    `json:"cooldown_ns"`
	Profiles    []ProfileCapture `json:"profiles"`
}

// handleProfiles serves the triggered profile store:
//
//	/debug/profiles          JSON list of capture summaries, newest first
//	/debug/profiles?id=<n>   the raw pprof bytes of one capture
func handleProfiles(w http.ResponseWriter, r *http.Request) {
	ps := ActiveProfileStore()
	if ps == nil {
		http.Error(w, "profile store not enabled", http.StatusNotFound)
		return
	}
	if idStr := r.URL.Query().Get("id"); idStr != "" {
		id, err := strconv.ParseInt(idStr, 10, 64)
		if err != nil {
			http.Error(w, "bad profile id "+idStr, http.StatusBadRequest)
			return
		}
		c, data, ok := ps.Get(id)
		if !ok {
			http.Error(w, "profile "+idStr+" not retained (evicted or never captured)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition",
			fmt.Sprintf("attachment; filename=%s-%d.pprof", c.Kind, c.ID))
		w.Write(data)
		return
	}
	cfg := ps.Config()
	writeJSONDoc(w, profilesDoc{
		Capacity:    cfg.Capacity,
		CPUDuration: cfg.CPUDuration,
		Cooldown:    cfg.Cooldown,
		Profiles:    ps.Profiles(),
	})
}

// timelineDoc is the /debug/timeline document.
type timelineDoc struct {
	Capacity int              `json:"capacity"`
	Interval time.Duration    `json:"interval_ns"`
	Samples  []TimelineSample `json:"samples"`
}

// handleTimeline serves the metrics timeline ring, oldest sample first.
func handleTimeline(w http.ResponseWriter, r *http.Request) {
	tl := ActiveTimeline()
	if tl == nil {
		http.Error(w, "timeline not enabled", http.StatusNotFound)
		return
	}
	cfg := tl.Config()
	writeJSONDoc(w, timelineDoc{
		Capacity: cfg.Capacity,
		Interval: cfg.Interval,
		Samples:  tl.Samples(),
	})
}

// writeJSONDoc marshals into memory first (the /snapshot discipline: a late
// encode error must not corrupt a committed 200).
func writeJSONDoc(w http.ResponseWriter, v any) {
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(body, '\n'))
}

// wantsOpenMetrics reports whether the scrape asked for OpenMetrics, via
// the Accept header (how Prometheus negotiates) or ?format=openmetrics
// (how a human curls it).
func wantsOpenMetrics(r *http.Request) bool {
	if r.URL.Query().Get("format") == "openmetrics" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text")
}

// Handler returns the telemetry mux serving /metrics, /snapshot,
// /healthz, /debug/traces, /debug/profiles and /debug/timeline.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if wantsOpenMetrics(r) {
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
			WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteMetrics(w)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		// Marshal into memory before touching the ResponseWriter: encoding
		// straight into w means a mid-document failure has already committed
		// the 200 status and a partial body, so the http.Error afterwards is
		// a superfluous WriteHeader and the client sees corrupt JSON. With
		// the buffer, an error path writes exactly one clean 500 and the
		// success path writes exactly one complete document.
		body, err := marshalSnapshot(Snapshot())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(body, '\n'))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		// With an SLO engine installed the liveness check becomes a
		// readiness verdict: a breaching objective flips it to 503 with
		// the burning objectives named, so the cheapest probe an operator
		// (or a load balancer) already has tells them where to look next.
		if e := ActiveSLOEngine(); e != nil {
			if degraded, reasons := e.Verdict(); degraded {
				w.WriteHeader(http.StatusServiceUnavailable)
				w.Write([]byte("degraded\n"))
				for _, reason := range reasons {
					w.Write([]byte(reason + "\n"))
				}
				return
			}
		}
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/slo", func(w http.ResponseWriter, r *http.Request) {
		e := ActiveSLOEngine()
		if e == nil {
			http.Error(w, "slo engine not enabled", http.StatusNotFound)
			return
		}
		writeJSONDoc(w, struct {
			FastWindow time.Duration     `json:"fast_window_ns"`
			SlowWindow time.Duration     `json:"slow_window_ns"`
			Burn       float64           `json:"burn_threshold"`
			Objectives []ObjectiveStatus `json:"objectives"`
		}{e.Config().FastWindow, e.Config().SlowWindow, e.Config().Burn, e.Status()})
	})
	mux.HandleFunc("/debug/traces", handleTraces)
	mux.HandleFunc("/debug/profiles", handleProfiles)
	mux.HandleFunc("/debug/timeline", handleTimeline)
	return mux
}
