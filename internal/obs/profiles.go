package obs

import (
	"bytes"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// Triggered profile store: a bounded ring of short pprof captures fired by
// the conditions worth profiling — a request slower than the trace store's
// slow threshold, the admission queue bouncing work with 429s, an RNS
// bad-prime replacement storm — instead of a human racing to attach pprof
// while the anomaly is still happening. Each capture is tagged with the
// trace id that tripped it, so /debug/traces entries cross-link to the
// profiles recorded while they ran and vice versa. A heap capture is
// synchronous (one WriteTo into a buffer); a CPU capture runs for a short
// fixed window on a background goroutine, guarded so only one is in flight
// process-wide (the runtime allows a single CPU profile at a time, and a
// second trigger during the window would add nothing but contention).

// Trigger reasons recorded on ProfileCapture.Trigger.
const (
	TriggerSlowRequest     = "slow_request"     // wall time ≥ the -trace-slow threshold
	TriggerQueueSaturation = "queue_saturation" // admission queue full, request bounced
	TriggerBadPrimeStorm   = "bad_prime_storm"  // RNS replaced many primes in a short window
	TriggerManual          = "manual"           // explicit capture (tests, operators)
)

// Profile-store telemetry on /metrics (kp_profile_store_…).
var (
	profilesCaptured   = NewCounter("profile.store.captured")
	profilesSuppressed = NewCounter("profile.store.suppressed")
)

// ProfileCapture is one retained pprof capture. Data is the raw pprof
// protobuf (gzip), served by /debug/profiles?id=.
type ProfileCapture struct {
	ID      int64         `json:"id"`
	Kind    string        `json:"kind"` // "heap" or "cpu"
	Trigger string        `json:"trigger"`
	TraceID string        `json:"trace_id,omitempty"`
	Detail  string        `json:"detail,omitempty"`
	Start   time.Time     `json:"start"`
	Dur     time.Duration `json:"duration_ns"`
	Size    int           `json:"size_bytes"`

	data []byte
}

// ProfileStoreConfig configures a ProfileStore; zero values select
// defaults.
type ProfileStoreConfig struct {
	// Capacity bounds the ring (default 32 captures).
	Capacity int
	// CPUDuration is the CPU profiling window per trigger (default 250ms;
	// negative disables CPU capture, heap-only).
	CPUDuration time.Duration
	// Cooldown is the minimum interval between captures for the same
	// trigger reason (default 10s) — a storm of slow requests must produce
	// one profile, not a profiling storm.
	Cooldown time.Duration
}

// ProfileStore is the bounded triggered-capture ring. Safe for concurrent
// use.
type ProfileStore struct {
	cfg ProfileStoreConfig

	mu   sync.Mutex
	ring []ProfileCapture
	next int64 // captures ever admitted; ring slot is next % cap
	seq  int64 // id source
	last map[string]time.Time // last capture time per trigger (cooldown)

	cpuBusy atomic.Bool
}

// NewProfileStore returns a store for the config, resolving zero values.
func NewProfileStore(cfg ProfileStoreConfig) *ProfileStore {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 32
	}
	if cfg.CPUDuration == 0 {
		cfg.CPUDuration = 250 * time.Millisecond
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 10 * time.Second
	}
	return &ProfileStore{
		cfg:  cfg,
		ring: make([]ProfileCapture, 0, cfg.Capacity),
		last: make(map[string]time.Time),
	}
}

// Config returns the resolved configuration.
func (ps *ProfileStore) Config() ProfileStoreConfig { return ps.cfg }

// Trigger fires one capture round for the given reason: a synchronous heap
// capture plus, when configured and no other CPU profile is running, an
// asynchronous CPU capture over cfg.CPUDuration. It returns the heap
// capture's id (0 when the trigger was suppressed by the per-reason
// cooldown). The CPU capture lands in the ring when its window closes.
func (ps *ProfileStore) Trigger(trigger, traceID, detail string) int64 {
	ps.mu.Lock()
	now := time.Now()
	if t, ok := ps.last[trigger]; ok && now.Sub(t) < ps.cfg.Cooldown {
		ps.mu.Unlock()
		profilesSuppressed.Inc()
		return 0
	}
	ps.last[trigger] = now
	ps.mu.Unlock()

	id := ps.captureHeap(trigger, traceID, detail)
	if ps.cfg.CPUDuration > 0 {
		ps.captureCPU(trigger, traceID, detail)
	}
	return id
}

// captureHeap snapshots the heap profile synchronously — deterministic for
// tests and cheap enough (one allocation-record walk) for a request path
// that already blew its latency budget.
func (ps *ProfileStore) captureHeap(trigger, traceID, detail string) int64 {
	start := time.Now()
	var buf bytes.Buffer
	p := pprof.Lookup("heap")
	if p == nil {
		return 0
	}
	if err := p.WriteTo(&buf, 0); err != nil {
		return 0
	}
	return ps.admit(ProfileCapture{
		Kind: "heap", Trigger: trigger, TraceID: traceID, Detail: detail,
		Start: start, Dur: time.Since(start), Size: buf.Len(), data: buf.Bytes(),
	})
}

// captureCPU runs one CPU profiling window on a background goroutine. The
// runtime supports a single CPU profile process-wide, so a second trigger
// while one is running is dropped (counted as suppressed).
func (ps *ProfileStore) captureCPU(trigger, traceID, detail string) {
	if !ps.cpuBusy.CompareAndSwap(false, true) {
		profilesSuppressed.Inc()
		return
	}
	go func() {
		defer ps.cpuBusy.Store(false)
		start := time.Now()
		var buf bytes.Buffer
		if err := pprof.StartCPUProfile(&buf); err != nil {
			// Someone else (net/http/pprof, a test) holds the profiler.
			profilesSuppressed.Inc()
			return
		}
		time.Sleep(ps.cfg.CPUDuration)
		pprof.StopCPUProfile()
		ps.admit(ProfileCapture{
			Kind: "cpu", Trigger: trigger, TraceID: traceID, Detail: detail,
			Start: start, Dur: time.Since(start), Size: buf.Len(), data: buf.Bytes(),
		})
	}()
}

// admit appends a capture to the ring, evicting oldest-first, and returns
// its id.
func (ps *ProfileStore) admit(c ProfileCapture) int64 {
	ps.mu.Lock()
	ps.seq++
	c.ID = ps.seq
	if len(ps.ring) < cap(ps.ring) {
		ps.ring = append(ps.ring, c)
	} else {
		ps.ring[ps.next%int64(cap(ps.ring))] = c
	}
	ps.next++
	ps.mu.Unlock()
	profilesCaptured.Inc()
	return c.ID
}

// Profiles returns the retained capture summaries, newest first, without
// profile bytes.
func (ps *ProfileStore) Profiles() []ProfileCapture {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	out := make([]ProfileCapture, 0, len(ps.ring))
	for k := int64(1); k <= int64(len(ps.ring)); k++ {
		c := ps.ring[(ps.next-k)%int64(cap(ps.ring))]
		c.data = nil
		out = append(out, c)
	}
	return out
}

// Get returns the capture with the given id and its pprof bytes.
func (ps *ProfileStore) Get(id int64) (ProfileCapture, []byte, bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for i := range ps.ring {
		if ps.ring[i].ID == id {
			return ps.ring[i], ps.ring[i].data, true
		}
	}
	return ProfileCapture{}, nil, false
}

// IDsForTrace returns the ids of retained captures tagged with the trace
// id — the cross-link /debug/traces surfaces beside each entry.
func (ps *ProfileStore) IDsForTrace(traceID string) []int64 {
	if traceID == "" {
		return nil
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	var ids []int64
	for i := range ps.ring {
		if ps.ring[i].TraceID == traceID {
			ids = append(ids, ps.ring[i].ID)
		}
	}
	return ids
}

// Len returns the number of retained captures.
func (ps *ProfileStore) Len() int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return len(ps.ring)
}

// activeProfiles is the process-global profile store /debug/profiles serves
// and the trigger sites fire into; nil disables triggered profiling.
var activeProfiles atomic.Pointer[ProfileStore]

// SetProfileStore installs ps as the process-global profile store (nil
// disables).
func SetProfileStore(ps *ProfileStore) { activeProfiles.Store(ps) }

// ActiveProfileStore returns the installed profile store, or nil.
func ActiveProfileStore() *ProfileStore { return activeProfiles.Load() }

// TriggerProfile fires the process-global store when one is installed; the
// trigger sites (server slow path, admission 429, bad-prime storm) call
// this without caring whether profiling is on.
func TriggerProfile(trigger, traceID, detail string) int64 {
	if ps := ActiveProfileStore(); ps != nil {
		return ps.Trigger(trigger, traceID, detail)
	}
	return 0
}

// Bad-prime storm detection. Every RNS prime replacement lands here (one
// mutex hold); when stormThreshold replacements arrive within stormWindow,
// the bad_prime_storm profile trigger fires. Occasional replacements are
// the Las Vegas design working as intended — a storm means the prime pool
// or the input distribution changed character, which is worth a capture.
var badPrimeStorm struct {
	mu    sync.Mutex
	times []time.Time
}

// Storm parameters: package vars so the storm test can tighten them.
var (
	stormWindow    = 10 * time.Second
	stormThreshold = 8
)

// NoteBadPrimeReplacement records one RNS bad-prime replacement and fires
// the storm trigger when the recent-replacement rate crosses the
// threshold. traceID attributes the capture to the request whose solve
// tripped it ("" when no trace context was active).
func NoteBadPrimeReplacement(traceID string) {
	now := time.Now()
	badPrimeStorm.mu.Lock()
	keep := badPrimeStorm.times[:0]
	for _, t := range badPrimeStorm.times {
		if now.Sub(t) < stormWindow {
			keep = append(keep, t)
		}
	}
	badPrimeStorm.times = append(keep, now)
	storm := len(badPrimeStorm.times) >= stormThreshold
	if storm {
		// Reset so the next storm is detected afresh; the profile store's
		// cooldown also rate-limits captures if replacements keep coming.
		badPrimeStorm.times = badPrimeStorm.times[:0]
	}
	badPrimeStorm.mu.Unlock()
	if storm {
		TriggerProfile(TriggerBadPrimeStorm, traceID, "rns bad-prime replacement storm")
	}
}
