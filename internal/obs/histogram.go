package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Lock-free log-bucketed histograms. Values (latencies in nanoseconds,
// queue depths, attempt counts) land in the bucket indexed by their bit
// length, so bucket i holds values in [2^{i-1}, 2^i) — bucket 0 holds the
// value 0 — and the upper bound of bucket i is 2^i − 1. Observe is two
// uncontended atomic adds and never allocates, which is what lets the pool
// submit path and Span.End sample continuously; readers reconstruct counts,
// sums and quantile estimates from a consistent-enough snapshot (each
// bucket is read atomically; cross-bucket skew is bounded by in-flight
// observations, fine for monitoring).

// histBuckets is the number of finite log2 buckets: bit lengths 0..63
// (bucket 64, values ≥ 2⁶³, exists only as the +Inf overflow).
const histBuckets = 65

// Histogram is a fixed-shape log2-bucketed distribution. The zero value is
// not useful; obtain instances from NewHistogram / NewLabeledHistogram so
// they are registered for exposition.
type Histogram struct {
	name     string
	labelKey string
	labelVal string
	sum      atomic.Uint64
	buckets  [histBuckets]atomic.Uint64
	// exemplars[i] is the most recent trace-tagged observation that landed
	// in bucket i — the OpenMetrics exemplar the exposition attaches to the
	// bucket, linking a latency band straight to a /debug/traces entry. Only
	// ObserveExemplar writes here; plain Observe stays two atomic adds.
	exemplars [histBuckets]atomic.Pointer[Exemplar]
}

// Exemplar is one trace-tagged observation kept per bucket for the
// OpenMetrics exposition (`# {trace_id="…"} value timestamp`).
type Exemplar struct {
	TraceID string    `json:"trace_id"`
	Value   uint64    `json:"value"`
	Time    time.Time `json:"time"`
}

// Observe records one value (negative values clamp to 0).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	u := uint64(0)
	if v > 0 {
		u = uint64(v)
	}
	h.buckets[bits.Len64(u)].Add(1)
	h.sum.Add(u)
}

// ObserveExemplar records one value like Observe and, when traceID is
// non-empty, remembers it as the bucket's exemplar. The exemplar write is
// one allocation plus an atomic pointer store — call sites that already
// materialized a trace id (Span.End, the server's request path) afford it;
// anonymous hot paths keep calling Observe.
func (h *Histogram) ObserveExemplar(v int64, traceID string) {
	if h == nil {
		return
	}
	u := uint64(0)
	if v > 0 {
		u = uint64(v)
	}
	i := bits.Len64(u)
	h.buckets[i].Add(1)
	h.sum.Add(u)
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: u, Time: time.Now()})
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.buckets {
		total += h.buckets[i].Load()
	}
	return total
}

// Sum returns the sum of all recorded values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Name returns the registered family name.
func (h *Histogram) Name() string { return h.name }

// Label returns the constant label pair ("", "" when unlabeled).
func (h *Histogram) Label() (key, value string) { return h.labelKey, h.labelVal }

// bucketUpper returns the inclusive upper bound of finite bucket i
// (2^i − 1); bucket histBuckets−1 is the +Inf overflow.
func bucketUpper(i int) uint64 {
	return 1<<uint(i) - 1
}

// Quantile returns an estimate of the q-quantile (q in [0, 1]): the upper
// bound of the bucket where the cumulative count crosses q·Count. The
// estimate is exact to within the bucket's factor-of-two resolution;
// 0 observations yield 0.
func (h *Histogram) Quantile(q float64) uint64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(total))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := 0; i < histBuckets-1; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			return bucketUpper(i)
		}
	}
	return ^uint64(0)
}

// HistBucket is one non-empty bucket of a snapshot, with its inclusive
// upper bound and its raw (non-cumulative) count. Le == ^uint64(0) marks
// the overflow (+Inf) bucket.
type HistBucket struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
	// Exemplar is the bucket's most recent trace-tagged observation, when
	// one exists.
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// HistSnapshot is a point-in-time copy of one histogram.
type HistSnapshot struct {
	Name       string       `json:"name"`
	LabelKey   string       `json:"label_key,omitempty"`
	LabelValue string       `json:"label_value,omitempty"`
	Count      uint64       `json:"count"`
	Sum        uint64       `json:"sum"`
	P50        uint64       `json:"p50"`
	P99        uint64       `json:"p99"`
	Buckets    []HistBucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state, keeping only non-empty
// buckets.
func (h *Histogram) Snapshot() HistSnapshot {
	snap := HistSnapshot{
		Name:       h.name,
		LabelKey:   h.labelKey,
		LabelValue: h.labelVal,
		Sum:        h.Sum(),
	}
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		le := bucketUpper(i)
		if i == histBuckets-1 {
			le = ^uint64(0)
		}
		snap.Buckets = append(snap.Buckets, HistBucket{Le: le, Count: c, Exemplar: h.exemplars[i].Load()})
		snap.Count += c
	}
	snap.P50 = h.Quantile(0.50)
	snap.P99 = h.Quantile(0.99)
	return snap
}

var histRegistry struct {
	mu   sync.Mutex
	hist map[string]*Histogram
}

func histKey(name, labelKey, labelVal string) string {
	return fmt.Sprintf("%s\x00%s\x00%s", name, labelKey, labelVal)
}

// NewHistogram registers (or, for an already registered name, returns) the
// named unlabeled histogram.
func NewHistogram(name string) *Histogram {
	return NewLabeledHistogram(name, "", "")
}

// NewLabeledHistogram registers (or returns) the histogram identified by a
// family name plus one constant label pair. Histograms sharing a family
// name form one exposition family — the per-phase latency histograms are
// NewLabeledHistogram("phase.latency.ns", "phase", name) for each phase.
func NewLabeledHistogram(name, labelKey, labelVal string) *Histogram {
	histRegistry.mu.Lock()
	defer histRegistry.mu.Unlock()
	if histRegistry.hist == nil {
		histRegistry.hist = make(map[string]*Histogram)
	}
	k := histKey(name, labelKey, labelVal)
	if h, ok := histRegistry.hist[k]; ok {
		return h
	}
	h := &Histogram{name: name, labelKey: labelKey, labelVal: labelVal}
	histRegistry.hist[k] = h
	return h
}

// Histograms snapshots every registered histogram, sorted by family name
// then label value (a stable order for /snapshot and the Prometheus
// exposition).
func Histograms() []HistSnapshot {
	histRegistry.mu.Lock()
	hists := make([]*Histogram, 0, len(histRegistry.hist))
	for _, h := range histRegistry.hist {
		hists = append(hists, h)
	}
	histRegistry.mu.Unlock()
	out := make([]HistSnapshot, 0, len(hists))
	for _, h := range hists {
		out = append(out, h.Snapshot())
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].LabelValue < out[j].LabelValue
	})
	return out
}
