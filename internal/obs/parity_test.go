// Package obs_test holds the exposition parity regression test. It lives
// outside package obs so it can blank-import the packages that register
// the production metric families (internal/kp, internal/server — both of
// which import obs, so an in-package test would be an import cycle) and
// then assert that every registered family is visible on BOTH surfaces:
// the /metrics text exposition and the /snapshot JSON document. A metric
// that shows up in one but not the other is exactly the regression that
// motivated this test: kp_rns_* phase histograms used to exist only once
// RNS traffic had run, so a fresh daemon's /snapshot omitted them.
package obs_test

import (
	"strings"
	"testing"

	"repro/internal/obs"

	_ "repro/internal/kp"     // registers rns.*, cache.*, precond.* families
	_ "repro/internal/matrix" // registers pool.* families
	_ "repro/internal/server" // registers server.* families
)

// mangle mirrors the exposition's name convention: "kp_" prefix, every
// non-alphanumeric byte replaced by '_'. (Deliberately re-implemented: if
// the convention drifts, this test fails loudly instead of following it.)
func mangle(name string) string {
	var b strings.Builder
	b.WriteString("kp_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

func TestEveryRegisteredFamilyOnBothSurfaces(t *testing.T) {
	snap := obs.Snapshot()
	var sb strings.Builder
	obs.WriteMetrics(&sb)
	text := sb.String()

	if len(snap.Metrics) == 0 || len(snap.Histograms) == 0 {
		t.Fatal("registry empty: the blank imports no longer register families")
	}

	// Every counter/gauge in the snapshot has a sample line on /metrics.
	// The snapshot does not distinguish counters from gauges, so accept the
	// plain name, the counter's _total form, or the gauge's _max companion.
	for name := range snap.Metrics {
		pn := mangle(strings.TrimSuffix(name, ".max"))
		candidates := []string{pn + " ", pn + "{", pn + "_total ", pn + "_total{"}
		if strings.HasSuffix(name, ".max") {
			candidates = []string{pn + "_max "}
		}
		found := false
		for _, c := range candidates {
			if strings.Contains(text, "\n"+c) || strings.HasPrefix(text, c) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("registry metric %q (as %s) missing from /metrics", name, pn)
		}
	}

	// Every histogram family in the snapshot is a histogram family on
	// /metrics, with its labeled series present bucket by bucket.
	for _, h := range snap.Histograms {
		family := mangle(h.Name)
		if !strings.Contains(text, "# TYPE "+family+" histogram") {
			t.Errorf("histogram family %q (as %s) missing from /metrics", h.Name, family)
			continue
		}
		if h.LabelKey != "" {
			series := family + `_bucket{` + h.LabelKey + `="` + h.LabelValue + `"`
			if !strings.Contains(text, series) {
				t.Errorf("histogram series %s{%s=%q} missing from /metrics", h.Name, h.LabelKey, h.LabelValue)
			}
		}
	}

	// The reverse inclusion for families /metrics synthesizes beyond the
	// registry (attempt bounds, runtime metrics) is covered by their own
	// snapshot sections.
	if snap.Attempts == nil && strings.Contains(text, "kp_attempts_total{") {
		t.Error("/metrics has attempt counters but /snapshot has no attempts section")
	}
	if len(snap.Runtime) == 0 {
		t.Error("/snapshot runtime section empty")
	}
}

// TestRNSPhaseFamiliesPreRegistered pins the fix this parity test exists
// for: the rns/* phase-latency series must be on both surfaces from
// process start, before any exact solve has run.
func TestRNSPhaseFamiliesPreRegistered(t *testing.T) {
	phases := []string{
		obs.PhaseRNSPrimes, obs.PhaseRNSResidue, obs.PhaseRNSCRT, obs.PhaseRNSVerify,
		obs.PhasePrecondition, obs.PhaseKrylov, obs.PhaseMinPoly, obs.PhaseBacksolve,
	}
	snap := obs.Snapshot()
	var sb strings.Builder
	obs.WriteMetrics(&sb)
	text := sb.String()
	for _, phase := range phases {
		inSnap := false
		for _, h := range snap.Histograms {
			if h.Name == "phase.latency.ns" && h.LabelValue == phase {
				inSnap = true
				break
			}
		}
		if !inSnap {
			t.Errorf("/snapshot missing phase.latency.ns series for %q", phase)
		}
		if !strings.Contains(text, `kp_phase_latency_ns_bucket{phase="`+phase+`"`) {
			t.Errorf("/metrics missing kp_phase_latency_ns series for %q", phase)
		}
	}
}
