package obs

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Per-request distributed tracing. A TraceContext is the W3C Trace Context
// identity of one request — a 128-bit trace id plus the 64-bit span id of
// the caller's active span — propagated on the wire as the "traceparent"
// header (kpdclient/kpdload → kpd) and in-process through context.Context.
//
// A TraceScope is the per-request attribution state: it carries the
// request's TraceContext, its own current-span pointer (so concurrent
// requests no longer interleave their span parentage through the single
// Observer-global pointer), and a bounded collection of the request's
// completed spans for the tail-sampling TraceStore. StartPhaseCtx consults
// the context for a scope; without one it degrades to the Observer-global
// behavior, and with no active Observer it is the same one-atomic-load nil
// fast path as StartPhase.

// TraceID is the 128-bit W3C trace id. The zero value is invalid ("no
// trace").
type TraceID [16]byte

// SpanID is the 64-bit W3C parent/span id. The zero value is invalid.
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zero id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the id is the invalid all-zero id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String returns the 32-digit lowercase hex form ("" for the zero id).
func (t TraceID) String() string {
	if t.IsZero() {
		return ""
	}
	return hex.EncodeToString(t[:])
}

// String returns the 16-digit lowercase hex form ("" for the zero id).
func (s SpanID) String() string {
	if s.IsZero() {
		return ""
	}
	return hex.EncodeToString(s[:])
}

// MarshalJSON renders the id as its hex string ("" when zero), keeping
// /debug/traces and flight-ring JSON human-greppable.
func (t TraceID) MarshalJSON() ([]byte, error) { return []byte(`"` + t.String() + `"`), nil }

// MarshalJSON renders the id as its hex string ("" when zero).
func (s SpanID) MarshalJSON() ([]byte, error) { return []byte(`"` + s.String() + `"`), nil }

// UnmarshalJSON accepts the hex string form ("" decodes to the zero id), so
// exported trace documents round-trip through tooling.
func (t *TraceID) UnmarshalJSON(b []byte) error { return unmarshalHexID(t[:], b, "trace id") }

// UnmarshalJSON accepts the hex string form ("" decodes to the zero id).
func (s *SpanID) UnmarshalJSON(b []byte) error { return unmarshalHexID(s[:], b, "span id") }

// unmarshalHexID decodes a JSON hex string of exactly 2*len(dst) digits (or
// "" for the zero id) into dst.
func unmarshalHexID(dst []byte, b []byte, what string) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("obs: %s is not a JSON string: %s", what, b)
	}
	src := string(b[1 : len(b)-1])
	if src == "" {
		clear(dst)
		return nil
	}
	if !decodeLowerHex(dst, src) {
		return fmt.Errorf("obs: %s %q is not %d lowercase hex digits", what, src, 2*len(dst))
	}
	return nil
}

// TraceContext identifies one request: the trace it belongs to and the span
// id of its most recent hop (the caller's span on an incoming traceparent,
// this process's root span after Child).
type TraceContext struct {
	Trace TraceID
	Span  SpanID
	// Flags is the W3C trace-flags octet; bit 0 is "sampled". Minted
	// contexts set it — tail sampling decides retention at request end, so
	// every request is recorded while in flight.
	Flags byte
}

// IsZero reports whether the context carries no trace.
func (tc TraceContext) IsZero() bool { return tc.Trace.IsZero() }

// NewTraceContext mints a fresh root context: random non-zero trace and
// span ids, sampled flag set.
func NewTraceContext() TraceContext {
	var tc TraceContext
	tc.Trace = newTraceID()
	tc.Span = newSpanID()
	tc.Flags = 0x01
	return tc
}

// Child returns a context in the same trace with a freshly minted span id —
// what a server does with an incoming traceparent before using it as its
// own identity.
func (tc TraceContext) Child() TraceContext {
	tc.Span = newSpanID()
	return tc
}

func newTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		// crypto/rand.Read never fails on supported platforms (Go ≥ 1.24
		// aborts the process rather than returning an error).
		cryptorand.Read(t[:])
	}
	return t
}

func newSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		cryptorand.Read(s[:])
	}
	return s
}

// Traceparent renders the context in W3C form:
// "00-<32 hex trace-id>-<16 hex span-id>-<2 hex flags>". A zero context
// renders "".
func (tc TraceContext) Traceparent() string {
	if tc.IsZero() {
		return ""
	}
	return fmt.Sprintf("00-%s-%s-%02x", hex.EncodeToString(tc.Trace[:]), hex.EncodeToString(tc.Span[:]), tc.Flags)
}

// ParseTraceparent parses a W3C traceparent header. Per the spec it
// requires lowercase hex, rejects the all-zero trace and span ids and
// version 0xff, and tolerates future versions carrying extra "-"-separated
// fields after the flags. Callers treat any error as "start a fresh trace"
// — a malformed header must never take a request down.
func ParseTraceparent(h string) (TraceContext, error) {
	var tc TraceContext
	if len(h) < 55 {
		return tc, fmt.Errorf("obs: traceparent too short (%d bytes)", len(h))
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return tc, fmt.Errorf("obs: traceparent delimiters malformed")
	}
	version, ok := hexByte(h[0], h[1])
	if !ok {
		return tc, fmt.Errorf("obs: traceparent version is not hex")
	}
	if version == 0xff {
		return tc, fmt.Errorf("obs: traceparent version ff is forbidden")
	}
	if version == 0x00 && len(h) != 55 {
		return tc, fmt.Errorf("obs: version-00 traceparent must be exactly 55 bytes, got %d", len(h))
	}
	if version > 0x00 && len(h) > 55 && h[55] != '-' {
		return tc, fmt.Errorf("obs: traceparent trailing fields malformed")
	}
	if !decodeLowerHex(tc.Trace[:], h[3:35]) {
		return tc, fmt.Errorf("obs: trace-id is not lowercase hex")
	}
	if tc.Trace.IsZero() {
		return TraceContext{}, fmt.Errorf("obs: all-zero trace-id is invalid")
	}
	if !decodeLowerHex(tc.Span[:], h[36:52]) {
		return TraceContext{}, fmt.Errorf("obs: parent-id is not lowercase hex")
	}
	if tc.Span.IsZero() {
		return TraceContext{}, fmt.Errorf("obs: all-zero parent-id is invalid")
	}
	flags, ok := hexByte(h[53], h[54])
	if !ok {
		return TraceContext{}, fmt.Errorf("obs: trace-flags are not hex")
	}
	tc.Flags = flags
	return tc, nil
}

// hexByte decodes two lowercase hex digits into one byte.
func hexByte(hi, lo byte) (byte, bool) {
	h, ok1 := hexNibble(hi)
	l, ok2 := hexNibble(lo)
	return h<<4 | l, ok1 && ok2
}

func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

// decodeLowerHex decodes src (lowercase hex, len(dst)*2 digits) into dst.
func decodeLowerHex(dst []byte, src string) bool {
	if len(src) != 2*len(dst) {
		return false
	}
	for i := range dst {
		b, ok := hexByte(src[2*i], src[2*i+1])
		if !ok {
			return false
		}
		dst[i] = b
	}
	return true
}

// scopeSpanCap bounds the spans one TraceScope retains for the trace
// store: a pathological request (thousands of Las Vegas attempts) must not
// hold unbounded memory. Beyond the cap the newest spans are dropped and
// counted.
const scopeSpanCap = 512

// TraceScope is one request's span-attribution state. Spans started with a
// scope-bearing context parent through the scope's own current pointer
// instead of the Observer-global one, so any number of concurrent requests
// keep clean per-request span trees, and their completed records are both
// committed to the Observer's ring (feeding the global phase totals and
// latency histograms exactly as before) and collected here for the
// tail-sampling TraceStore.
//
// A scope also accumulates request-level annotations the trace store keys
// its retention on: the Las Vegas attempt count (fed by the kp drivers)
// and the admission queue wait (fed by the server).
type TraceScope struct {
	tc      TraceContext
	current atomic.Pointer[Span]

	attempts  atomic.Int64
	queueWait atomic.Int64 // nanoseconds

	mu      sync.Mutex
	spans   []SpanRecord
	dropped int64
}

// NewScope returns a scope for the given request identity.
func NewScope(tc TraceContext) *TraceScope { return &TraceScope{tc: tc} }

// TraceContext returns the scope's request identity.
func (sc *TraceScope) TraceContext() TraceContext {
	if sc == nil {
		return TraceContext{}
	}
	return sc.tc
}

// OpenSpanName returns the name of the scope's innermost open span ("" when
// none) — the per-request analogue of Observer.OpenSpanName, asserted by
// the leak-guard tests.
func (sc *TraceScope) OpenSpanName() string {
	if sc == nil {
		return ""
	}
	if s := sc.current.Load(); s != nil {
		return s.name
	}
	return ""
}

// NoteAttempt counts one Las Vegas attempt against the request (nil-safe).
func (sc *TraceScope) NoteAttempt() {
	if sc != nil {
		sc.attempts.Add(1)
	}
}

// Attempts returns the Las Vegas attempts charged to the request.
func (sc *TraceScope) Attempts() int {
	if sc == nil {
		return 0
	}
	return int(sc.attempts.Load())
}

// SetQueueWait records how long the request waited for an execution slot.
func (sc *TraceScope) SetQueueWait(d time.Duration) {
	if sc != nil {
		sc.queueWait.Store(int64(d))
	}
}

// QueueWait returns the recorded admission queue wait.
func (sc *TraceScope) QueueWait() time.Duration {
	if sc == nil {
		return 0
	}
	return time.Duration(sc.queueWait.Load())
}

// append collects one completed span (capped at scopeSpanCap).
func (sc *TraceScope) append(rec SpanRecord) {
	sc.mu.Lock()
	if len(sc.spans) < scopeSpanCap {
		sc.spans = append(sc.spans, rec)
	} else {
		sc.dropped++
	}
	sc.mu.Unlock()
}

// Spans returns the request's completed spans in completion order.
func (sc *TraceScope) Spans() []SpanRecord {
	if sc == nil {
		return nil
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	out := make([]SpanRecord, len(sc.spans))
	copy(out, sc.spans)
	return out
}

// SpansDropped returns how many spans overflowed the scope's cap.
func (sc *TraceScope) SpansDropped() int64 {
	if sc == nil {
		return 0
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.dropped
}

// Context keys. Scope and bare trace are separate keys: a server request
// carries a full scope (per-request span attribution), while a CLI run may
// carry only the TraceContext to tag flight-ring entries and attempt logs
// without redirecting span parentage away from the Observer-global chain
// (which would detach the Instrumented field-op attribution it relies on).
type scopeCtxKey struct{}
type traceCtxKey struct{}

// ContextWithScope returns ctx carrying the scope (and hence its trace).
func ContextWithScope(ctx context.Context, sc *TraceScope) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, scopeCtxKey{}, sc)
}

// ScopeFromContext returns the scope carried by ctx, or nil (nil-safe).
func ScopeFromContext(ctx context.Context) *TraceScope {
	if ctx == nil {
		return nil
	}
	sc, _ := ctx.Value(scopeCtxKey{}).(*TraceScope)
	return sc
}

// ContextWithTrace returns ctx carrying a bare TraceContext for tagging
// (flight entries, attempt records) without a span-attribution scope.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFromContext returns the TraceContext carried by ctx — from its
// scope if one is present, else from a bare ContextWithTrace tag, else the
// zero context. Nil-safe.
func TraceFromContext(ctx context.Context) TraceContext {
	if ctx == nil {
		return TraceContext{}
	}
	if sc := ScopeFromContext(ctx); sc != nil {
		return sc.tc
	}
	tc, _ := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc
}

// StartPhaseCtx opens a span on the active Observer, attributing it to the
// request scope carried by ctx when one is present: the span parents
// through the scope's current pointer and its completed record is tagged
// with the scope's trace id and collected for the trace store. Without a
// scope it behaves exactly like StartPhase, and with no active Observer it
// is the same nil fast path (one atomic load, ctx untouched).
func StartPhaseCtx(ctx context.Context, name string) *Span {
	o := active.Load()
	if o == nil {
		return nil
	}
	if sc := ScopeFromContext(ctx); sc != nil {
		return o.startScoped(sc, name)
	}
	return o.StartSpan(name)
}

// startScoped opens a span whose parentage lives on the scope instead of
// the Observer-global current pointer.
func (o *Observer) startScoped(sc *TraceScope, name string) *Span {
	s := &Span{
		obs:   o,
		scope: sc,
		name:  name,
		start: time.Since(o.epoch),
		gid:   goroutineID(),
		id:    o.ids.Add(1),
	}
	if parent := sc.current.Load(); parent != nil {
		s.parent = parent
		s.pid = parent.id
	}
	sc.current.Store(s)
	return s
}
