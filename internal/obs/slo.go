package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// SLO burn-rate engine: declarative objectives over the metrics timeline,
// evaluated the way an SRE would by hand — how fast is the error budget
// being consumed over a fast window AND a slow window — so a transient
// blip (fast window hot, slow window calm) does not page, and a slow leak
// (slow window hot, fast window calm) does not page twice after it is
// over. An objective breaches only when both windows burn at or above the
// configured rate. Breaches surface three ways: kp_slo_* gauges on
// /metrics, a degraded verdict (HTTP 503) on /healthz naming the burning
// objectives, and a one-line record in the flight ring so a post-mortem
// dump shows when the budget started going.
//
// The objective kinds map onto the paper's claims where they can: the
// attempt_bound objective compares the observed Las Vegas failure rate in
// the window against equation (2)'s certified per-attempt bound, and the
// efficiency_floor objective watches the measured residue fan-out
// parallel efficiency that Theorem 1's processor-efficiency claim is
// about.

// Objective kinds.
const (
	// KindLatency bounds the fraction of observations of a histogram
	// series (Series) above Threshold (ns) to Budget.
	KindLatency = "latency"
	// KindErrorRate bounds the ratio of two counters, Series/TotalSeries,
	// to Budget.
	KindErrorRate = "error_rate"
	// KindEfficiencyFloor bounds the fraction of timeline samples where
	// gauge Series sits below Threshold (only samples where the gauge is
	// non-zero count) to Budget.
	KindEfficiencyFloor = "efficiency_floor"
	// KindAttemptBound compares the windowed Las Vegas failure rate of
	// every attempt group against its equation (2) bound; the burn is the
	// worst rate/bound ratio (scaled by Budget, normally 1).
	KindAttemptBound = "attempt_bound"
)

// Objective is one declarative service-level objective.
type Objective struct {
	// Name identifies the objective in kp_slo_* metric names and /healthz
	// verdicts; keep it snake_case.
	Name string `json:"name"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Series is the histogram series key (KindLatency, see histSeriesKey),
	// the bad-event counter (KindErrorRate), or the gauge name
	// (KindEfficiencyFloor).
	Series string `json:"series,omitempty"`
	// TotalSeries is the denominator counter for KindErrorRate.
	TotalSeries string `json:"total_series,omitempty"`
	// Threshold is the latency cut in ns (KindLatency; bucket-resolution,
	// factor of 2) or the gauge floor (KindEfficiencyFloor).
	Threshold float64 `json:"threshold,omitempty"`
	// Budget is the allowed bad fraction (e.g. 0.01 → a p99 objective).
	Budget float64 `json:"budget"`
}

// ObjectiveStatus is one objective's latest evaluation.
type ObjectiveStatus struct {
	Objective
	// BurnFast and BurnSlow are the budget burn rates over the two
	// windows: 1.0 means consuming exactly the budget, sustained.
	BurnFast float64 `json:"burn_fast"`
	BurnSlow float64 `json:"burn_slow"`
	// Breached reports both windows at or above the engine's burn
	// threshold.
	Breached bool      `json:"breached"`
	Since    time.Time `json:"since,omitempty"` // start of the current breach
}

// SLOConfig configures an SLOEngine; zero values select defaults.
type SLOConfig struct {
	// FastWindow and SlowWindow are the two burn windows (defaults 1m and
	// 15m). Windows clip to the timeline's retained history.
	FastWindow time.Duration
	SlowWindow time.Duration
	// Burn is the breach threshold on both windows' burn rates (default
	// 1.0 — budget consumed at sustained rate).
	Burn float64
	// Interval is the evaluation period (default: the timeline's sampling
	// interval).
	Interval time.Duration
}

// SLO telemetry on /metrics (beyond the per-objective gauges).
var (
	sloBreaches = NewCounter("slo.breaches")
	sloDegraded = NewGauge("slo.degraded")
)

// SLOEngine evaluates objectives over a Timeline. Safe for concurrent use.
type SLOEngine struct {
	cfg        SLOConfig
	timeline   *Timeline
	objectives []Objective

	// Per-objective exposition gauges, pre-registered so kp_slo_* families
	// exist from engine construction.
	burnFast []*Gauge
	burnSlow []*Gauge
	breach   []*Gauge

	mu     sync.Mutex
	status []ObjectiveStatus

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewSLOEngine returns an engine evaluating the objectives over the
// timeline, resolving zero config values. Call Start to launch the
// evaluation loop; Evaluate works without it.
func NewSLOEngine(cfg SLOConfig, tl *Timeline, objectives []Objective) *SLOEngine {
	if cfg.FastWindow <= 0 {
		cfg.FastWindow = time.Minute
	}
	if cfg.SlowWindow <= 0 {
		cfg.SlowWindow = 15 * time.Minute
	}
	if cfg.Burn <= 0 {
		cfg.Burn = 1.0
	}
	if cfg.Interval <= 0 {
		cfg.Interval = tl.Config().Interval
	}
	e := &SLOEngine{
		cfg: cfg, timeline: tl, objectives: objectives,
		status: make([]ObjectiveStatus, len(objectives)),
		stop:   make(chan struct{}), done: make(chan struct{}),
	}
	for i, o := range objectives {
		e.status[i] = ObjectiveStatus{Objective: o}
		e.burnFast = append(e.burnFast, NewGauge("slo."+o.Name+".burn_fast_milli"))
		e.burnSlow = append(e.burnSlow, NewGauge("slo."+o.Name+".burn_slow_milli"))
		e.breach = append(e.breach, NewGauge("slo."+o.Name+".breached"))
	}
	return e
}

// Config returns the resolved configuration.
func (e *SLOEngine) Config() SLOConfig { return e.cfg }

// Start launches the evaluation loop until Stop.
func (e *SLOEngine) Start() {
	go func() {
		defer close(e.done)
		tick := time.NewTicker(e.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				e.Evaluate()
			case <-e.stop:
				return
			}
		}
	}()
}

// Stop halts the evaluation loop and waits for it to exit. Idempotent.
func (e *SLOEngine) Stop() {
	e.stopOnce.Do(func() { close(e.stop) })
	<-e.done
}

// Evaluate runs one evaluation pass over the timeline: burn rates per
// objective over both windows, gauge updates, breach transitions into the
// flight ring.
func (e *SLOEngine) Evaluate() []ObjectiveStatus {
	newest, ok := e.timeline.Latest()
	if !ok {
		return e.Status()
	}
	fastOld, _ := e.timeline.At(e.cfg.FastWindow)
	slowOld, _ := e.timeline.At(e.cfg.SlowWindow)
	samples := e.timeline.Samples()

	e.mu.Lock()
	defer e.mu.Unlock()
	degraded := false
	for i := range e.status {
		st := &e.status[i]
		st.BurnFast = e.burn(st.Objective, fastOld, newest, samples, e.cfg.FastWindow)
		st.BurnSlow = e.burn(st.Objective, slowOld, newest, samples, e.cfg.SlowWindow)
		breached := st.BurnFast >= e.cfg.Burn && st.BurnSlow >= e.cfg.Burn
		if breached && !st.Breached {
			st.Since = time.Now()
			sloBreaches.Inc()
			RecordFlight(FlightEntry{
				Op: "slo.breach",
				Outcome: fmt.Sprintf("%s burning budget: fast=%.2fx slow=%.2fx (threshold %.2fx)",
					st.Name, st.BurnFast, st.BurnSlow, e.cfg.Burn),
			})
		}
		if !breached {
			st.Since = time.Time{}
		}
		st.Breached = breached
		e.burnFast[i].Set(int64(st.BurnFast * 1000))
		e.burnSlow[i].Set(int64(st.BurnSlow * 1000))
		if breached {
			e.breach[i].Set(1)
			degraded = true
		} else {
			e.breach[i].Set(0)
		}
	}
	if degraded {
		sloDegraded.Set(1)
	} else {
		sloDegraded.Set(0)
	}
	out := make([]ObjectiveStatus, len(e.status))
	copy(out, e.status)
	return out
}

// burn computes one objective's budget burn rate between two timeline
// samples (old → new), with the full window's samples available for
// gauge-style objectives.
func (e *SLOEngine) burn(o Objective, old, cur TimelineSample, samples []TimelineSample, window time.Duration) float64 {
	switch o.Kind {
	case KindLatency:
		h1, ok1 := cur.Hists[o.Series]
		if !ok1 {
			return 0
		}
		h0 := old.Hists[o.Series] // zero value when absent: empty history
		total := float64(h1.Count) - float64(h0.Count)
		if total <= 0 || o.Budget <= 0 {
			return 0
		}
		bad := countOver(h1.Buckets, o.Threshold) - countOver(h0.Buckets, o.Threshold)
		return (bad / total) / o.Budget

	case KindErrorRate:
		total := float64(cur.Metrics[o.TotalSeries] - old.Metrics[o.TotalSeries])
		if total <= 0 || o.Budget <= 0 {
			return 0
		}
		bad := float64(cur.Metrics[o.Series] - old.Metrics[o.Series])
		return (bad / total) / o.Budget

	case KindEfficiencyFloor:
		cutoff := cur.When.Add(-window)
		eligible, bad := 0, 0
		for _, s := range samples {
			if s.When.Before(cutoff) {
				continue
			}
			v := s.Metrics[o.Series]
			if v <= 0 {
				continue // gauge never set: no ring traffic in this sample
			}
			eligible++
			if float64(v) < o.Threshold {
				bad++
			}
		}
		if eligible == 0 || o.Budget <= 0 {
			return 0
		}
		return (float64(bad) / float64(eligible)) / o.Budget

	case KindAttemptBound:
		budget := o.Budget
		if budget <= 0 {
			budget = 1
		}
		worst := 0.0
		for key, a1 := range cur.Attempts {
			a0 := old.Attempts[key]
			dAtt := a1.Attempts - a0.Attempts
			dFail := a1.Failures - a0.Failures
			// Too few attempts in the window and the empirical rate is
			// noise, not evidence against equation (2).
			if dAtt < 4 || a1.BoundEq2 <= 0 {
				continue
			}
			ratio := (float64(dFail) / float64(dAtt)) / a1.BoundEq2
			if ratio > worst {
				worst = ratio
			}
		}
		return worst / budget
	}
	return 0
}

// countOver counts observations above the threshold from raw log2 bucket
// counts. A bucket counts when its upper bound exceeds the threshold, so
// the cut has the histogram's factor-of-two resolution — fine for burn
// rates, which compare windows of the same exposition against each other.
func countOver(buckets []HistBucket, threshold float64) float64 {
	var n uint64
	for _, b := range buckets {
		if b.Le == ^uint64(0) || float64(b.Le) > threshold {
			n += b.Count
		}
	}
	return float64(n)
}

// Status returns the latest evaluation per objective.
func (e *SLOEngine) Status() []ObjectiveStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]ObjectiveStatus, len(e.status))
	copy(out, e.status)
	return out
}

// Verdict reports whether any objective is breaching and names the
// burning objectives — what /healthz serves.
func (e *SLOEngine) Verdict() (degraded bool, reasons []string) {
	for _, st := range e.Status() {
		if st.Breached {
			degraded = true
			reasons = append(reasons, fmt.Sprintf("%s: burn fast=%.2fx slow=%.2fx over budget %.4g",
				st.Name, st.BurnFast, st.BurnSlow, st.Budget))
		}
	}
	return degraded, reasons
}

// DefaultKpdObjectives returns the kpd service objectives: request p99
// latency, 5xx-class error rate, the RNS residue fan-out's parallel
// efficiency floor (Theorem 1's measured quantity), and the Las Vegas
// attempt rate against equation (2).
func DefaultKpdObjectives(p99 time.Duration) []Objective {
	return []Objective{
		{
			Name: "latency_solve_p99", Kind: KindLatency,
			Series:    `server.request.ns{route="solve"}`,
			Threshold: float64(p99.Nanoseconds()), Budget: 0.01,
		},
		{
			Name: "error_rate", Kind: KindErrorRate,
			Series: "server.errors", TotalSeries: "server.requests",
			Budget: 0.01,
		},
		{
			Name: "rns_parallel_efficiency", Kind: KindEfficiencyFloor,
			Series: "rns.parallel.efficiency.milli", Threshold: 1000, Budget: 0.5,
		},
		{
			Name: "attempt_bound_eq2", Kind: KindAttemptBound, Budget: 1,
		},
	}
}

// activeSLO is the process-global engine /healthz consults; nil keeps
// /healthz unconditionally ok.
var activeSLO atomic.Pointer[SLOEngine]

// SetSLOEngine installs e as the process-global SLO engine (nil disables).
func SetSLOEngine(e *SLOEngine) { activeSLO.Store(e) }

// ActiveSLOEngine returns the installed engine, or nil.
func ActiveSLOEngine() *SLOEngine { return activeSLO.Load() }
