package obs

import (
	"testing"
	"time"
)

func TestBoundsReportGroupsAndBounds(t *testing.T) {
	ResetAttempts()
	t.Cleanup(ResetAttempts)

	// 9 successes and 1 division-by-zero failure in one (solver, n, |S|)
	// group; a separate solver keys its own group.
	for i := 0; i < 9; i++ {
		RecordAttempt(Attempt{Solver: "kp.solve", N: 8, Subset: 4096, Outcome: OutcomeSuccess, Wall: time.Microsecond})
	}
	RecordAttempt(Attempt{Solver: "kp.solve", N: 8, Subset: 4096, Outcome: OutcomeDivZero, Phase: PhaseMinPoly, Wall: time.Microsecond})
	RecordAttempt(Attempt{Solver: "wiedemann.solve", N: 8, Subset: 4096, Outcome: OutcomeSuccess})

	lines := BoundsReport()
	if len(lines) != 2 {
		t.Fatalf("got %d groups, want 2: %+v", len(lines), lines)
	}
	// Sorted by solver name: kp.solve before wiedemann.solve.
	l := lines[0]
	if l.Solver != "kp.solve" || l.N != 8 || l.Subset != 4096 {
		t.Fatalf("group key wrong: %+v", l)
	}
	if l.Attempts != 10 || l.Failures != 1 {
		t.Fatalf("attempts/failures = %d/%d, want 10/1", l.Attempts, l.Failures)
	}
	if l.ObservedRate != 0.1 {
		t.Fatalf("observed rate = %v, want 0.1", l.ObservedRate)
	}
	// Equation (2): 3·8²/4096 = 192/4096 = 0.046875.
	if l.BoundEq2 != 3.0*64/4096 {
		t.Fatalf("eq2 bound = %v", l.BoundEq2)
	}
	// Lemma 2: 2·8/4096; Theorem 2: 8·7/(2·4096).
	if l.BoundLemma2 != 16.0/4096 || l.BoundThm2 != 56.0/8192 {
		t.Fatalf("lemma2/thm2 = %v/%v", l.BoundLemma2, l.BoundThm2)
	}
	// The observed 0.1 rate exceeds the 0.047 bound — the invariant flag
	// must say so. (10 attempts is noise, which is why the acceptance test
	// uses ≥1000; here we only check the comparison wiring.)
	if l.WithinEq2 {
		t.Fatal("0.1 observed > 0.0469 bound must report WithinEq2=false")
	}
	if l.ByOutcome[OutcomeSuccess] != 9 || l.ByOutcome[OutcomeDivZero] != 1 {
		t.Fatalf("by-outcome wrong: %v", l.ByOutcome)
	}
	if l.ByPhase[PhaseMinPoly] != 1 {
		t.Fatalf("by-phase wrong: %v", l.ByPhase)
	}
	if l.WallNs != 10*time.Microsecond.Nanoseconds() {
		t.Fatalf("wall = %d", l.WallNs)
	}

	if got := AttemptsTotal(); got != 11 {
		t.Fatalf("AttemptsTotal = %d, want 11", got)
	}
	ResetAttempts()
	if got := AttemptsTotal(); got != 0 {
		t.Fatalf("AttemptsTotal after reset = %d", got)
	}
}

func TestBoundsCapAtOne(t *testing.T) {
	// A tiny subset pushes every bound past 1; they must cap there rather
	// than report a "probability" above 1.
	if got := Eq2Bound(100, 2); got != 1 {
		t.Fatalf("eq2 = %v", got)
	}
	if got := Lemma2Bound(100, 2); got != 1 {
		t.Fatalf("lemma2 = %v", got)
	}
	if got := Theorem2Bound(100, 2); got != 1 {
		t.Fatalf("thm2 = %v", got)
	}
	// Subset 0 (unknown) degrades to the trivial bound.
	if Eq2Bound(4, 0) != 1 || Lemma2Bound(4, 0) != 1 || Theorem2Bound(4, 0) != 1 {
		t.Fatal("subset 0 must yield the trivial bound 1")
	}
	// Sanity: a generous subset leaves the bounds strictly inside (0, 1).
	if b := Eq2Bound(4, 1<<20); b <= 0 || b >= 1 {
		t.Fatalf("eq2 with large subset = %v", b)
	}
}

func TestBoundsReportSortOrder(t *testing.T) {
	ResetAttempts()
	t.Cleanup(ResetAttempts)
	RecordAttempt(Attempt{Solver: "b", N: 4, Subset: 10, Outcome: OutcomeSuccess})
	RecordAttempt(Attempt{Solver: "a", N: 8, Subset: 10, Outcome: OutcomeSuccess})
	RecordAttempt(Attempt{Solver: "a", N: 4, Subset: 20, Outcome: OutcomeSuccess})
	RecordAttempt(Attempt{Solver: "a", N: 4, Subset: 10, Outcome: OutcomeSuccess})
	lines := BoundsReport()
	type key struct {
		s string
		n int
		u uint64
	}
	var got []key
	for _, l := range lines {
		got = append(got, key{l.Solver, l.N, l.Subset})
	}
	want := []key{{"a", 4, 10}, {"a", 4, 20}, {"a", 8, 10}, {"b", 4, 10}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}
