package obs

import (
	"fmt"
	"io"
	"math"
	"runtime/metrics"
	"sort"
)

// Runtime profiling gauges: a fixed set of runtime/metrics samples read at
// scrape time and exported beside the kp_ registry on /metrics. They answer
// the "was it us or the runtime?" half of a slow-request investigation — a
// p99 spike that coincides with a GC pause burst or scheduling latency is
// a different bug than one that does not. Names keep the conventional go_
// prefix (no kp_ mangling) so standard dashboards pick them up.

// runtimeSamples is the fixed sample set. Reading a fixed set through one
// metrics.Read call is the cheap, allocation-stable pattern the runtime
// documentation recommends for scrape paths.
var runtimeSamples = []string{
	"/sched/goroutines:goroutines",
	"/sched/latencies:seconds",
	"/gc/pauses:seconds",
	"/gc/cycles/total:gc-cycles",
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/total:bytes",
}

// RuntimeSnapshot reads the runtime metric set and derives the exported
// gauges: goroutine count, GC cycle count, heap/total bytes, and
// p50/p99/max quantiles of the GC pause and scheduler latency
// distributions (nanoseconds).
func RuntimeSnapshot() map[string]float64 {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, name := range runtimeSamples {
		samples[i].Name = name
	}
	metrics.Read(samples)

	out := make(map[string]float64, 16)
	for _, s := range samples {
		switch s.Name {
		case "/sched/goroutines:goroutines":
			out["go_goroutines"] = float64(s.Value.Uint64())
		case "/gc/cycles/total:gc-cycles":
			out["go_gc_cycles_total"] = float64(s.Value.Uint64())
		case "/memory/classes/heap/objects:bytes":
			out["go_heap_objects_bytes"] = float64(s.Value.Uint64())
		case "/memory/classes/total:bytes":
			out["go_memory_total_bytes"] = float64(s.Value.Uint64())
		case "/gc/pauses:seconds":
			histQuantiles(out, "go_gc_pause", s.Value.Float64Histogram())
		case "/sched/latencies:seconds":
			histQuantiles(out, "go_sched_latency", s.Value.Float64Histogram())
		}
	}
	return out
}

// histQuantiles derives <prefix>_{count,p50_ns,p99_ns,max_ns} from a
// runtime seconds-histogram. Quantiles interpolate on bucket lower bounds;
// ±Inf boundary buckets clamp to their finite neighbor.
func histQuantiles(out map[string]float64, prefix string, h *metrics.Float64Histogram) {
	if h == nil {
		return
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	out[prefix+"_count"] = float64(total)
	out[prefix+"_p50_ns"] = histQuantile(h, total, 0.50) * 1e9
	out[prefix+"_p99_ns"] = histQuantile(h, total, 0.99) * 1e9
	out[prefix+"_max_ns"] = histMax(h) * 1e9
}

// histQuantile returns the q-quantile (in the histogram's unit, seconds)
// using the lower bound of the bucket the quantile falls in.
func histQuantile(h *metrics.Float64Histogram, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > rank {
			lo := h.Buckets[i]
			if math.IsInf(lo, -1) {
				lo = 0
			}
			return lo
		}
	}
	return 0
}

// histMax returns the lower bound of the highest non-empty bucket.
func histMax(h *metrics.Float64Histogram) float64 {
	for i := len(h.Counts) - 1; i >= 0; i-- {
		if h.Counts[i] == 0 {
			continue
		}
		lo := h.Buckets[i]
		if math.IsInf(lo, -1) {
			lo = 0
		}
		if math.IsInf(lo, 1) && i > 0 {
			lo = h.Buckets[i-1]
		}
		return lo
	}
	return 0
}

// writeRuntimeMetrics emits the runtime gauges in Prometheus text format.
func writeRuntimeMetrics(w io.Writer) {
	snap := RuntimeSnapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		promHeader(w, n, "gauge", fmt.Sprintf("Go runtime metric %q.", n))
		fmt.Fprintf(w, "%s %s\n", n, formatFloat(snap[n]))
	}
}
