package obs

import (
	"sync"
	"testing"
)

func TestHistogramBucketPlacement(t *testing.T) {
	h := NewHistogram("test.hist.placement")
	// Value v lands in bucket bits.Len64(v): 0 → bucket 0, 1 → 1, 2..3 → 2,
	// 4..7 → 3, …; bucket i's inclusive upper bound is 2^i − 1.
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 1023, -5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 9 {
		t.Fatalf("count = %d, want 9", got)
	}
	// -5 clamps to 0, so the sum excludes it.
	if got := h.Sum(); got != 0+1+2+3+4+7+8+1023 {
		t.Fatalf("sum = %d", got)
	}
	snap := h.Snapshot()
	counts := map[uint64]uint64{}
	for _, b := range snap.Buckets {
		counts[b.Le] = b.Count
	}
	// Bucket upper bounds hit: 0 (values 0, -5), 1 (value 1), 3 (2 and 3),
	// 7 (4 and 7), 15 (8), 1023 (1023).
	want := map[uint64]uint64{0: 2, 1: 1, 3: 2, 7: 2, 15: 1, 1023: 1}
	for le, c := range want {
		if counts[le] != c {
			t.Fatalf("bucket le=%d count=%d, want %d (buckets %+v)", le, counts[le], c, snap.Buckets)
		}
	}
	if len(counts) != len(want) {
		t.Fatalf("unexpected extra buckets: %+v", snap.Buckets)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram("test.hist.quantile")
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", got)
	}
	// 90 small values and 10 large ones: p50 sits in the small bucket, p99
	// in the large one. Log2 bucketing means quantiles are bucket upper
	// bounds, exact to a factor of two.
	for i := 0; i < 90; i++ {
		h.Observe(100) // bucket upper bound 127
	}
	for i := 0; i < 10; i++ {
		h.Observe(100000) // bucket upper bound 131071
	}
	if got := h.Quantile(0.50); got != 127 {
		t.Fatalf("p50 = %d, want 127", got)
	}
	if got := h.Quantile(0.99); got != 131071 {
		t.Fatalf("p99 = %d, want 131071", got)
	}
	snap := h.Snapshot()
	if snap.P50 != 127 || snap.P99 != 131071 {
		t.Fatalf("snapshot quantiles = %d/%d", snap.P50, snap.P99)
	}
}

func TestHistogramRegistryDedupes(t *testing.T) {
	a := NewHistogram("test.hist.dedupe")
	b := NewHistogram("test.hist.dedupe")
	if a != b {
		t.Fatal("NewHistogram must return the registered instance for a seen name")
	}
	l1 := NewLabeledHistogram("test.hist.family", "phase", "krylov")
	l2 := NewLabeledHistogram("test.hist.family", "phase", "minpoly")
	if l1 == l2 {
		t.Fatal("distinct label values must be distinct series")
	}
	if again := NewLabeledHistogram("test.hist.family", "phase", "krylov"); again != l1 {
		t.Fatal("same (name, label) must dedupe")
	}
	l1.Observe(1)
	l2.Observe(2)
	var series []HistSnapshot
	for _, s := range Histograms() {
		if s.Name == "test.hist.family" {
			series = append(series, s)
		}
	}
	if len(series) != 2 {
		t.Fatalf("got %d series in family, want 2", len(series))
	}
	// Sorted by label value within the family.
	if series[0].LabelValue != "krylov" || series[1].LabelValue != "minpoly" {
		t.Fatalf("family order wrong: %q, %q", series[0].LabelValue, series[1].LabelValue)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram("test.hist.concurrent")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
	if got := h.Sum(); got != 8*999*1000/2 {
		t.Fatalf("sum = %d", got)
	}
}

func TestHistogramNilObserve(t *testing.T) {
	var h *Histogram
	h.Observe(5) // must not panic
}
