package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// withObserver installs o as the active observer for the test's duration.
// The active observer is process-global, so tests that install one must
// not run in parallel.
func withObserver(t *testing.T, o *Observer) {
	t.Helper()
	prev := Active()
	SetActive(o)
	t.Cleanup(func() { SetActive(prev) })
}

func TestDisabledFastPathIsNilSafe(t *testing.T) {
	SetActive(nil)
	sp := StartPhase(PhaseKrylov)
	if sp != nil {
		t.Fatal("disabled StartPhase must return nil")
	}
	sp.AddFieldOps(10, 1) // must not panic
	sp.End()
	AddFieldOps(10, 1)
}

func TestSpanHierarchyAndTotals(t *testing.T) {
	o := New(16)
	withObserver(t, o)

	root := StartPhase("solve")
	pre := StartPhase(PhasePrecondition)
	AddFieldOps(100, 2)
	pre.End()
	kry := StartPhase(PhaseKrylov)
	AddFieldOps(300, 3)
	kry.End()
	AddFieldOps(7, 1) // falls back to the reopened root span
	root.End()

	recs := o.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if byName[PhasePrecondition].Parent != byName["solve"].ID {
		t.Fatal("precondition span must be a child of solve")
	}
	if byName[PhaseKrylov].Parent != byName["solve"].ID {
		t.Fatal("krylov span must be a child of solve")
	}
	if byName["solve"].Parent != 0 {
		t.Fatal("solve must be top-level")
	}
	if byName[PhasePrecondition].FieldOps != 100 || byName[PhaseKrylov].FieldOps != 300 {
		t.Fatalf("ops misattributed: %+v", byName)
	}
	if byName["solve"].FieldOps != 7 {
		t.Fatalf("root ops = %d, want 7 (ops after child End reattach to parent)", byName["solve"].FieldOps)
	}
	if got := o.TotalFieldOps(); got != 407 {
		t.Fatalf("TotalFieldOps = %d, want 407", got)
	}
	totals := o.PhaseTotals()
	if totals[PhaseKrylov].MulCalls != 3 || totals[PhaseKrylov].Count != 1 {
		t.Fatalf("phase totals wrong: %+v", totals[PhaseKrylov])
	}
	if recs[0].GID <= 0 {
		t.Fatalf("goroutine id not recorded: %d", recs[0].GID)
	}
}

func TestRingWrapDropsOldest(t *testing.T) {
	o := New(4)
	withObserver(t, o)
	for i := 0; i < 10; i++ {
		StartPhase("p").End()
	}
	if got := o.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	recs := o.Records()
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	// Oldest surviving first: ids 7,8,9,10.
	if recs[0].ID != 7 || recs[3].ID != 10 {
		t.Fatalf("wrap order wrong: %v .. %v", recs[0].ID, recs[3].ID)
	}
}

func TestPhaseNamesCanonicalOrder(t *testing.T) {
	o := New(8)
	withObserver(t, o)
	for _, n := range []string{"zeta", PhaseBacksolve, PhaseKrylov, PhasePrecondition, PhaseMinPoly, "alpha"} {
		StartPhase(n).End()
	}
	want := []string{PhasePrecondition, PhaseKrylov, PhaseMinPoly, PhaseBacksolve, "alpha", "zeta"}
	got := o.PhaseNames()
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestConcurrentAddFieldOps(t *testing.T) {
	o := New(8)
	withObserver(t, o)
	sp := StartPhase(PhaseKrylov)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				AddFieldOps(1, 1)
			}
		}()
	}
	wg.Wait()
	sp.End()
	if got := o.TotalFieldOps(); got != 8000 {
		t.Fatalf("TotalFieldOps = %d, want 8000", got)
	}
}

func TestWriteTraceIsValidTraceEventJSON(t *testing.T) {
	o := New(8)
	withObserver(t, o)
	sp := StartPhase(PhasePrecondition)
	AddFieldOps(42, 1)
	time.Sleep(time.Millisecond)
	sp.End()

	var buf bytes.Buffer
	if err := o.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
			Args struct {
				FieldOps uint64 `json:"field_ops"`
				Parent   int64  `json:"parent"`
			} `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) != 1 {
		t.Fatalf("got %d events", len(parsed.TraceEvents))
	}
	ev := parsed.TraceEvents[0]
	if ev.Name != PhasePrecondition || ev.Ph != "X" || ev.Args.FieldOps != 42 || ev.Args.Parent != 0 {
		t.Fatalf("event wrong: %+v", ev)
	}
	if ev.Dur < 900 { // slept 1ms; dur is in microseconds
		t.Fatalf("duration %f µs too small", ev.Dur)
	}
}

func TestCountersAndGauges(t *testing.T) {
	c := NewCounter("test.counter")
	if again := NewCounter("test.counter"); again != c {
		t.Fatal("NewCounter must dedupe by name")
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	g := NewGauge("test.gauge")
	g.Add(3)
	g.Add(2)
	g.Add(-4)
	if g.Value() != 1 || g.Max() != 5 {
		t.Fatalf("gauge = %d max %d", g.Value(), g.Max())
	}
	g.Set(2)
	if g.Value() != 2 || g.Max() != 5 {
		t.Fatalf("gauge after Set = %d max %d", g.Value(), g.Max())
	}
	snap := MetricsSnapshot()
	if snap["test.counter"] != 5 || snap["test.gauge"] != 2 || snap["test.gauge.max"] != 5 {
		t.Fatalf("snapshot wrong: %v", snap)
	}
	found := false
	for _, n := range MetricNames() {
		if n == "test.gauge.max" {
			found = true
		}
	}
	if !found {
		t.Fatal("MetricNames missing test.gauge.max")
	}
	PublishExpvar()
	PublishExpvar() // second call must be a no-op, not a duplicate-publish panic
}

// BenchmarkSpanDisabled measures the nil fast path: the full per-phase
// call pattern (StartPhase + AddFieldOps + End) with no active observer.
// This is the overhead an instrumented-but-disabled solve pays per phase
// boundary; it must stay in the nanoseconds.
func BenchmarkSpanDisabled(b *testing.B) {
	SetActive(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := StartPhase(PhaseKrylov)
		AddFieldOps(1000, 1)
		sp.End()
	}
}

// BenchmarkSpanEnabled is the enabled-path cost for comparison.
func BenchmarkSpanEnabled(b *testing.B) {
	o := New(64)
	SetActive(o)
	defer SetActive(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := StartPhase(PhaseKrylov)
		AddFieldOps(1000, 1)
		sp.End()
	}
}

func TestEndIsIdempotent(t *testing.T) {
	o := New(8)
	withObserver(t, o)
	sp := StartPhase(PhaseKrylov)
	sp.End()
	sp.End() // defer-guard second close: must not commit a second record
	sp.End()
	if recs := o.Records(); len(recs) != 1 {
		t.Fatalf("got %d records after repeated End, want 1", len(recs))
	}
	if got := o.OpenSpanName(); got != "" {
		t.Fatalf("open span %q after End, want none", got)
	}
}

func TestOpenSpanName(t *testing.T) {
	var nilObs *Observer
	if got := nilObs.OpenSpanName(); got != "" {
		t.Fatalf("nil observer open span = %q", got)
	}
	o := New(8)
	withObserver(t, o)
	if got := o.OpenSpanName(); got != "" {
		t.Fatalf("fresh observer open span = %q", got)
	}
	root := StartPhase("solve")
	inner := StartPhase(PhaseKrylov)
	if got := o.OpenSpanName(); got != PhaseKrylov {
		t.Fatalf("open span = %q, want %q", got, PhaseKrylov)
	}
	inner.End()
	if got := o.OpenSpanName(); got != "solve" {
		t.Fatalf("open span after inner End = %q, want solve", got)
	}
	root.End()
	if got := o.OpenSpanName(); got != "" {
		t.Fatalf("open span after root End = %q, want none", got)
	}
}

func TestRingWrapMultipleTimes(t *testing.T) {
	o := New(4)
	withObserver(t, o)
	const total = 103 // 25 full wraps plus a partial one
	for i := 0; i < total; i++ {
		StartPhase("p").End()
	}
	if got := o.Dropped(); got != total-4 {
		t.Fatalf("dropped = %d, want %d", got, total-4)
	}
	recs := o.Records()
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	for i, r := range recs {
		if want := int64(total - 3 + i); r.ID != want {
			t.Fatalf("record %d has id %d, want %d (oldest surviving first)", i, r.ID, want)
		}
	}
}

func TestPhaseTotalsSurviveWrap(t *testing.T) {
	o := New(4)
	withObserver(t, o)
	// 3 "a" spans then 5 "b" spans through a 4-slot ring: every "a" is
	// evicted, the last 4 "b"s survive. PhaseTotals must aggregate exactly
	// the surviving records — no double count from revisited ring slots, no
	// ghosts of evicted spans.
	for i := 0; i < 3; i++ {
		sp := o.StartSpan("a")
		sp.AddFieldOps(10, 1)
		sp.End()
	}
	for i := 0; i < 5; i++ {
		sp := o.StartSpan("b")
		sp.AddFieldOps(100, 1)
		sp.End()
	}
	totals := o.PhaseTotals()
	if _, ok := totals["a"]; ok {
		t.Fatalf("evicted phase still in totals: %+v", totals)
	}
	bt := totals["b"]
	if bt.Count != 4 || bt.FieldOps != 400 || bt.MulCalls != 4 {
		t.Fatalf("post-wrap totals for b = %+v, want Count 4 FieldOps 400 MulCalls 4", bt)
	}
	if got := o.Dropped(); got != 4 {
		t.Fatalf("dropped = %d, want 4", got)
	}
}

func TestParseGoroutineID(t *testing.T) {
	cases := []struct {
		in   string
		id   int64
		ok   bool
		note string
	}{
		{"goroutine 1 [running]:\nmain.main()", 1, true, "canonical header"},
		{"goroutine 6120 [running]:", 6120, true, "multi-digit id"},
		{"goroutine 123456789012345678901234567890", 0, false, "id truncated before the separator must not parse"},
		{"goroutine ", 0, false, "empty id"},
		{"goroutine  [running]:", 0, false, "missing id"},
		{"goroutine x [running]:", 0, false, "non-numeric id"},
		{"", 0, false, "empty input"},
	}
	for _, c := range cases {
		id, ok := parseGoroutineID([]byte(c.in))
		if ok != c.ok || (ok && id != c.id) {
			t.Errorf("%s: parseGoroutineID(%q) = (%d, %v), want (%d, %v)", c.note, c.in, id, ok, c.id, c.ok)
		}
	}
}

func TestGoroutineIDCurrent(t *testing.T) {
	if id := goroutineID(); id <= 0 {
		t.Fatalf("goroutineID() = %d for a live goroutine, want > 0", id)
	}
}
