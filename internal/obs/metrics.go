package obs

import (
	"expvar"
	"sort"
	"sync"
)

// Named counters and gauges, registered at package init of the subsystems
// that own them (the matrix worker pool, the solvers). Unlike spans they
// are process-lifetime and always on: one uncontended atomic add is cheaper
// than a branch worth maintaining, and the pool amortizes every add over a
// grain-sized chunk of work. Snapshot them with MetricsSnapshot or serve
// them over HTTP via PublishExpvar + the -pprof flag of the CLI tools.

// Counter is a monotonically increasing metric.
type Counter struct {
	name string
	v    expvar.Int
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Value() }

// Name returns the registered name.
func (c *Counter) Name() string { return c.name }

// Gauge is a settable level metric that also tracks its high-water mark
// (exported as "<name>.max").
type Gauge struct {
	name string
	mu   sync.Mutex
	v    int64
	max  int64
}

// Set sets the gauge to v.
func (g *Gauge) Set(v int64) {
	g.mu.Lock()
	g.v = v
	if v > g.max {
		g.max = v
	}
	g.mu.Unlock()
}

// Add moves the gauge by d (negative d decreases it) and updates the
// high-water mark.
func (g *Gauge) Add(d int64) {
	g.mu.Lock()
	g.v += d
	if g.v > g.max {
		g.max = g.v
	}
	g.mu.Unlock()
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Max returns the high-water mark.
func (g *Gauge) Max() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.max
}

// Name returns the registered name.
func (g *Gauge) Name() string { return g.name }

var registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewCounter registers (or, for an already registered name, returns) the
// named counter.
func NewCounter(name string) *Counter {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.counters == nil {
		registry.counters = make(map[string]*Counter)
	}
	if c, ok := registry.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	registry.counters[name] = c
	return c
}

// NewGauge registers (or, for an already registered name, returns) the
// named gauge.
func NewGauge(name string) *Gauge {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.gauges == nil {
		registry.gauges = make(map[string]*Gauge)
	}
	if g, ok := registry.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	registry.gauges[name] = g
	return g
}

// MetricsSnapshot returns every registered counter and gauge by name
// (gauges additionally contribute "<name>.max").
func MetricsSnapshot() map[string]int64 {
	registry.mu.Lock()
	counters := make([]*Counter, 0, len(registry.counters))
	for _, c := range registry.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(registry.gauges))
	for _, g := range registry.gauges {
		gauges = append(gauges, g)
	}
	registry.mu.Unlock()

	out := make(map[string]int64, len(counters)+2*len(gauges))
	for _, c := range counters {
		out[c.name] = c.Value()
	}
	for _, g := range gauges {
		out[g.name] = g.Value()
		out[g.name+".max"] = g.Max()
	}
	return out
}

// MetricNames returns the snapshot keys in sorted order (for stable
// human-readable dumps).
func MetricNames() []string {
	snap := MetricsSnapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

var publishOnce sync.Once

// PublishExpvar publishes the metrics registry as the expvar variable
// "kp_metrics", so an HTTP server with the default mux (e.g. the CLI
// tools' -pprof listener) serves it at /debug/vars. Safe to call more
// than once.
func PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("kp_metrics", expvar.Func(func() any {
			return MetricsSnapshot()
		}))
	})
}
