package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Tail-sampling trace store: a bounded ring of completed request traces
// that decides retention after the request finishes, when its latency,
// status and Las Vegas attempt count are known — the opposite of head
// sampling, which must guess up front and therefore misses exactly the
// requests worth keeping. Every slow, errored or unlucky (more than one
// attempt) request is admitted; of the boring rest a deterministic 1-in-N
// sample survives so the store also shows what "normal" looks like. The
// ring evicts oldest-first regardless of why an entry was kept, bounding
// memory under any traffic mix.

// Trace-store telemetry on /metrics (kp_trace_store_…).
var (
	tracesKept    = NewCounter("trace.store.kept")
	tracesSampled = NewCounter("trace.store.sampled_out")
	tracesSize    = NewGauge("trace.store.size")
)

// Retention reasons recorded on RequestTrace.Kept.
const (
	KeptSlow    = "slow"    // wall time ≥ SlowThreshold
	KeptError   = "error"   // HTTP status ≥ 400 (429/503/422/504/5xx)
	KeptUnlucky = "unlucky" // more than one Las Vegas attempt
	KeptSampled = "sampled" // the 1-in-SampleEvery background sample
)

// RequestTrace is one completed request as retained by the TraceStore: the
// request summary plus its span tree (the scope's collected SpanRecords,
// each tagged with the trace id).
type RequestTrace struct {
	TraceID      string        `json:"trace_id"`
	SpanID       string        `json:"span_id"`               // this process's root span id
	ParentSpanID string        `json:"parent_span_id,omitempty"` // caller's span id from the incoming traceparent
	Route        string        `json:"route"`
	N            int           `json:"n,omitempty"`
	Status       int           `json:"status"`
	Cache        string        `json:"cache,omitempty"`
	Attempts     int           `json:"attempts"`
	Error        string        `json:"error,omitempty"`
	Start        time.Time     `json:"start"`
	Wall         time.Duration `json:"wall_ns"`
	QueueWait    time.Duration `json:"queue_wait_ns"`
	Kept         string        `json:"kept"` // retention reason (one of the Kept* constants)
	Spans        []SpanRecord  `json:"spans,omitempty"`
	SpansDropped int64         `json:"spans_dropped,omitempty"`
}

// TraceStoreConfig configures a TraceStore; zero values select defaults.
type TraceStoreConfig struct {
	// Capacity bounds the ring (default 256 traces).
	Capacity int
	// SlowThreshold marks a request slow (always retained); default 250ms.
	SlowThreshold time.Duration
	// SampleEvery keeps 1 in SampleEvery boring requests (default 16;
	// 1 keeps everything). The sample is a deterministic counter, not a
	// coin flip, so retention is reproducible under test.
	SampleEvery int
}

// TraceStore is the bounded tail-sampling ring. Safe for concurrent use.
type TraceStore struct {
	cfg TraceStoreConfig

	mu     sync.Mutex
	ring   []RequestTrace
	next   int64 // traces ever admitted; ring slot is next % len(ring)
	boring int64 // boring requests seen, for the 1-in-N sample
}

// NewTraceStore returns a store for the config, resolving zero values.
func NewTraceStore(cfg TraceStoreConfig) *TraceStore {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 256
	}
	if cfg.SlowThreshold <= 0 {
		cfg.SlowThreshold = 250 * time.Millisecond
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 16
	}
	return &TraceStore{cfg: cfg, ring: make([]RequestTrace, 0, cfg.Capacity)}
}

// Config returns the resolved configuration.
func (ts *TraceStore) Config() TraceStoreConfig { return ts.cfg }

// Record applies the tail-sampling policy to one completed request. It
// stamps rt.Kept with the retention reason and returns whether the trace
// was admitted; sampled-out traces are counted and discarded.
func (ts *TraceStore) Record(rt RequestTrace) bool {
	switch {
	case rt.Status >= 400:
		rt.Kept = KeptError
	case rt.Wall >= ts.cfg.SlowThreshold:
		rt.Kept = KeptSlow
	case rt.Attempts > 1:
		rt.Kept = KeptUnlucky
	default:
		ts.mu.Lock()
		ts.boring++
		sampled := ts.boring%int64(ts.cfg.SampleEvery) == 1 || ts.cfg.SampleEvery == 1
		ts.mu.Unlock()
		if !sampled {
			tracesSampled.Inc()
			return false
		}
		rt.Kept = KeptSampled
	}
	ts.mu.Lock()
	if len(ts.ring) < cap(ts.ring) {
		ts.ring = append(ts.ring, rt)
	} else {
		ts.ring[ts.next%int64(cap(ts.ring))] = rt
	}
	ts.next++
	size := len(ts.ring)
	ts.mu.Unlock()
	tracesKept.Inc()
	tracesSize.Set(int64(size))
	return true
}

// Traces returns the retained traces, newest first.
func (ts *TraceStore) Traces() []RequestTrace {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]RequestTrace, 0, len(ts.ring))
	for k := int64(1); k <= int64(len(ts.ring)); k++ {
		out = append(out, ts.ring[(ts.next-k)%int64(cap(ts.ring))])
	}
	return out
}

// Get returns the retained trace with the given id.
func (ts *TraceStore) Get(traceID string) (RequestTrace, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	for i := range ts.ring {
		if ts.ring[i].TraceID == traceID {
			return ts.ring[i], true
		}
	}
	return RequestTrace{}, false
}

// Len returns the number of retained traces.
func (ts *TraceStore) Len() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.ring)
}

// activeStore is the process-global trace store /debug/traces serves and
// the kpd request pipeline records into; nil disables tail sampling.
var activeStore atomic.Pointer[TraceStore]

// SetTraceStore installs ts as the process-global trace store (nil
// disables).
func SetTraceStore(ts *TraceStore) { activeStore.Store(ts) }

// ActiveTraceStore returns the installed trace store, or nil.
func ActiveTraceStore() *TraceStore { return activeStore.Load() }
