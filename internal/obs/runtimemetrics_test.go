package obs

import (
	"runtime"
	"runtime/metrics"
	"strings"
	"testing"
)

func TestRuntimeSnapshotGauges(t *testing.T) {
	// Force at least one GC cycle so the pause histogram is non-trivial.
	runtime.GC()
	snap := RuntimeSnapshot()
	for _, name := range []string{
		"go_goroutines", "go_gc_cycles_total", "go_heap_objects_bytes", "go_memory_total_bytes",
		"go_gc_pause_count", "go_gc_pause_p50_ns", "go_gc_pause_p99_ns", "go_gc_pause_max_ns",
		"go_sched_latency_count", "go_sched_latency_p50_ns", "go_sched_latency_p99_ns", "go_sched_latency_max_ns",
	} {
		v, ok := snap[name]
		if !ok {
			t.Fatalf("RuntimeSnapshot misses %s", name)
		}
		if v < 0 {
			t.Fatalf("%s = %v, want ≥ 0", name, v)
		}
	}
	if snap["go_goroutines"] < 1 {
		t.Fatalf("go_goroutines = %v, want ≥ 1", snap["go_goroutines"])
	}
	if snap["go_gc_cycles_total"] < 1 {
		t.Fatalf("go_gc_cycles_total = %v after runtime.GC(), want ≥ 1", snap["go_gc_cycles_total"])
	}
	if snap["go_gc_pause_max_ns"] < snap["go_gc_pause_p50_ns"] {
		t.Fatalf("pause max %v < p50 %v", snap["go_gc_pause_max_ns"], snap["go_gc_pause_p50_ns"])
	}
}

func TestMetricsEndpointIncludesRuntimeGauges(t *testing.T) {
	runtime.GC()
	var sb strings.Builder
	WriteMetrics(&sb)
	text := sb.String()
	for _, family := range []string{
		"\ngo_goroutines ", "\ngo_gc_pause_p99_ns ", "\ngo_gc_pause_count ",
		"\ngo_sched_latency_p99_ns ", "\ngo_memory_total_bytes ",
	} {
		if !strings.Contains(text, family) {
			t.Fatalf("/metrics output misses %q", strings.TrimSpace(family))
		}
	}
	// The runtime names keep their conventional go_ prefix, never the kp_
	// mangling of the internal registry.
	if strings.Contains(text, "kp_go_") {
		t.Fatal("runtime gauges were kp_-mangled")
	}
}

func TestHistQuantileOnSyntheticHistogram(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{10, 80, 10},
		Buckets: []float64{0, 1e-6, 1e-3, 1},
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if got := histQuantile(h, total, 0.50); got != 1e-6 {
		t.Fatalf("p50 = %v, want 1e-6 (middle bucket lower bound)", got)
	}
	if got := histQuantile(h, total, 0.99); got != 1e-3 {
		t.Fatalf("p99 = %v, want 1e-3 (top bucket lower bound)", got)
	}
	if got := histMax(h); got != 1e-3 {
		t.Fatalf("max = %v, want 1e-3", got)
	}
	// Empty histogram: all zeros, no panic.
	empty := &metrics.Float64Histogram{Counts: []uint64{0, 0}, Buckets: []float64{0, 1, 2}}
	if histQuantile(empty, 0, 0.5) != 0 || histMax(empty) != 0 {
		t.Fatal("empty histogram should yield zeros")
	}
}
