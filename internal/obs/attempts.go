package obs

import (
	"sort"
	"sync"
	"time"
)

// Las Vegas attempt statistics: every randomized attempt of the kp and
// wiedemann drivers reports its outcome here, keyed by (solver, n, |S|), so
// the paper's probabilistic claims become monitored invariants instead of
// one-time proofs. BoundsReport places the observed per-attempt failure
// rate next to the three bounds the analysis is built from:
//
//   - equation (2): an attempt fails with probability ≤ 3n²/|S|;
//   - Lemma 2: the projected minimum polynomial f_u^{A,b} differs from f^A
//     with probability ≤ 2·deg(f^A)/|S| ≤ 2n/|S|;
//   - Theorem 2: the preconditioner A·H fails to have generic rank profile
//     with probability ≤ n(n−1)/(2|S|).
//
// An observed rate above the equation (2) bound (beyond statistical noise)
// means a broken sampler, a broken preconditioner, or a field whose
// characteristic violates the hypotheses — exactly the regressions this
// module exists to surface.

// Attempt outcomes. Success is OutcomeSuccess; everything else counts as a
// failure in the observed rate.
const (
	OutcomeSuccess = "success"
	// OutcomeDivZero is a division by zero during the attempt — over a
	// concrete field this is how unlucky randomness (singular Ã, vanishing
	// leading principal minor) surfaces mid-pipeline.
	OutcomeDivZero = "division_by_zero"
	// OutcomeVerifyFailed is a completed attempt whose candidate solution
	// failed the A·x = b (or A·X = B) check.
	OutcomeVerifyFailed = "verify_failed"
	// OutcomeDegenerate is a structurally unusable candidate: a minimum
	// polynomial of too-low degree or with zero constant term.
	OutcomeDegenerate = "degenerate"
	// OutcomeError is any other attempt-terminating error.
	OutcomeError = "error"
)

// Attempt is one randomized attempt of a Las Vegas driver.
type Attempt struct {
	Solver  string        // driver: "kp.solve", "kp.batch", "kp.factor", "wiedemann.solve", ...
	N       int           // system dimension
	Subset  uint64        // |S|, the sampling-subset size of the attempt
	Outcome string        // one of the Outcome* constants
	Phase   string        // phase the failure surfaced in ("" for success)
	Wall    time.Duration // attempt wall time
}

// attemptKey groups attempts whose bound parameters coincide.
type attemptKey struct {
	solver string
	n      int
	subset uint64
}

type attemptGroup struct {
	attempts  int64
	failures  int64
	wall      time.Duration
	byOutcome map[string]int64
	byPhase   map[string]int64
}

var attemptStats struct {
	mu     sync.Mutex
	groups map[attemptKey]*attemptGroup
}

var attemptsRecorded = NewCounter("attempts.recorded")

// RecordAttempt folds one attempt into the per-(solver, n, |S|) statistics.
// It is always on: the cost (one short mutex hold) is paid once per Las
// Vegas attempt, i.e. once per Ω(n^ω) field operations.
func RecordAttempt(a Attempt) {
	attemptsRecorded.Inc()
	attemptStats.mu.Lock()
	defer attemptStats.mu.Unlock()
	if attemptStats.groups == nil {
		attemptStats.groups = make(map[attemptKey]*attemptGroup)
	}
	k := attemptKey{solver: a.Solver, n: a.N, subset: a.Subset}
	g := attemptStats.groups[k]
	if g == nil {
		g = &attemptGroup{byOutcome: make(map[string]int64), byPhase: make(map[string]int64)}
		attemptStats.groups[k] = g
	}
	g.attempts++
	g.wall += a.Wall
	g.byOutcome[a.Outcome]++
	if a.Outcome != OutcomeSuccess {
		g.failures++
		if a.Phase != "" {
			g.byPhase[a.Phase]++
		}
	}
}

// BoundsLine is the observed-vs-paper comparison for one (solver, n, |S|)
// group of attempts.
type BoundsLine struct {
	Solver   string `json:"solver"`
	N        int    `json:"n"`
	Subset   uint64 `json:"subset"`
	Attempts int64  `json:"attempts"`
	Failures int64  `json:"failures"`
	// ObservedRate is Failures/Attempts.
	ObservedRate float64 `json:"observed_failure_rate"`
	// BoundEq2 is equation (2)'s per-attempt failure bound 3n²/|S| (capped
	// at 1; a cap of 1 means the subset is too small for the bound to say
	// anything).
	BoundEq2 float64 `json:"bound_eq2"`
	// BoundLemma2 is Lemma 2's minimum-polynomial bound 2n/|S| (deg f^A ≤ n).
	BoundLemma2 float64 `json:"bound_lemma2"`
	// BoundThm2 is Theorem 2's generic-rank-profile bound n(n−1)/(2|S|).
	BoundThm2 float64 `json:"bound_theorem2"`
	// WithinEq2 reports ObservedRate ≤ BoundEq2 — the monitored invariant.
	WithinEq2 bool             `json:"within_eq2"`
	ByOutcome map[string]int64 `json:"by_outcome"`
	ByPhase   map[string]int64 `json:"by_phase,omitempty"`
	WallNs    int64            `json:"wall_ns"`
}

// capProb caps a probability bound at 1.
func capProb(p float64) float64 {
	if p > 1 {
		return 1
	}
	return p
}

// Eq2Bound returns equation (2)'s per-attempt failure bound 3n²/|S|,
// capped at 1.
func Eq2Bound(n int, subset uint64) float64 {
	if subset == 0 {
		return 1
	}
	return capProb(3 * float64(n) * float64(n) / float64(subset))
}

// Lemma2Bound returns Lemma 2's bound 2·deg(f^A)/|S| with deg(f^A) ≤ n,
// capped at 1.
func Lemma2Bound(n int, subset uint64) float64 {
	if subset == 0 {
		return 1
	}
	return capProb(2 * float64(n) / float64(subset))
}

// Theorem2Bound returns Theorem 2's bound n(n−1)/(2|S|), capped at 1.
func Theorem2Bound(n int, subset uint64) float64 {
	if subset == 0 {
		return 1
	}
	return capProb(float64(n) * float64(n-1) / (2 * float64(subset)))
}

// BoundsReport returns one line per (solver, n, |S|) group, sorted by
// solver, then n, then |S| — the observed failure rate beside the paper's
// bounds.
func BoundsReport() []BoundsLine {
	attemptStats.mu.Lock()
	lines := make([]BoundsLine, 0, len(attemptStats.groups))
	for k, g := range attemptStats.groups {
		l := BoundsLine{
			Solver:      k.solver,
			N:           k.n,
			Subset:      k.subset,
			Attempts:    g.attempts,
			Failures:    g.failures,
			BoundEq2:    Eq2Bound(k.n, k.subset),
			BoundLemma2: Lemma2Bound(k.n, k.subset),
			BoundThm2:   Theorem2Bound(k.n, k.subset),
			ByOutcome:   make(map[string]int64, len(g.byOutcome)),
			ByPhase:     make(map[string]int64, len(g.byPhase)),
			WallNs:      g.wall.Nanoseconds(),
		}
		if g.attempts > 0 {
			l.ObservedRate = float64(g.failures) / float64(g.attempts)
		}
		l.WithinEq2 = l.ObservedRate <= l.BoundEq2
		for o, c := range g.byOutcome {
			l.ByOutcome[o] = c
		}
		for p, c := range g.byPhase {
			l.ByPhase[p] = c
		}
		lines = append(lines, l)
	}
	attemptStats.mu.Unlock()
	sort.Slice(lines, func(i, j int) bool {
		if lines[i].Solver != lines[j].Solver {
			return lines[i].Solver < lines[j].Solver
		}
		if lines[i].N != lines[j].N {
			return lines[i].N < lines[j].N
		}
		return lines[i].Subset < lines[j].Subset
	})
	return lines
}

// AttemptsTotal returns the number of attempts recorded process-wide.
func AttemptsTotal() int64 {
	attemptStats.mu.Lock()
	defer attemptStats.mu.Unlock()
	var total int64
	for _, g := range attemptStats.groups {
		total += g.attempts
	}
	return total
}

// ResetAttempts clears the attempt statistics (tests; the process-lifetime
// counters in the metrics registry are unaffected).
func ResetAttempts() {
	attemptStats.mu.Lock()
	attemptStats.groups = nil
	attemptStats.mu.Unlock()
}
