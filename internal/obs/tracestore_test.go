package obs

import (
	"fmt"
	"testing"
	"time"
)

func newTestStore(cfg TraceStoreConfig) *TraceStore { return NewTraceStore(cfg) }

func TestTraceStoreRetentionRules(t *testing.T) {
	ts := newTestStore(TraceStoreConfig{Capacity: 16, SlowThreshold: 100 * time.Millisecond, SampleEvery: 1 << 30})
	cases := []struct {
		name string
		rt   RequestTrace
		kept string
	}{
		{"slow", RequestTrace{TraceID: "slow", Wall: 150 * time.Millisecond, Status: 200}, KeptSlow},
		{"errored 429", RequestTrace{TraceID: "e429", Status: 429}, KeptError},
		{"errored 503", RequestTrace{TraceID: "e503", Status: 503}, KeptError},
		{"errored 422", RequestTrace{TraceID: "e422", Status: 422}, KeptError},
		{"unlucky", RequestTrace{TraceID: "retry", Status: 200, Attempts: 2}, KeptUnlucky},
	}
	for _, tt := range cases {
		if !ts.Record(tt.rt) {
			t.Fatalf("%s: must always be retained", tt.name)
		}
		got, ok := ts.Get(tt.rt.TraceID)
		if !ok {
			t.Fatalf("%s: not found after Record", tt.name)
		}
		if got.Kept != tt.kept {
			t.Fatalf("%s: kept = %q, want %q", tt.name, got.Kept, tt.kept)
		}
	}
	// Error classification beats slow: a slow 503 is retained as an error.
	ts.Record(RequestTrace{TraceID: "slow503", Status: 503, Wall: time.Second})
	if got, _ := ts.Get("slow503"); got.Kept != KeptError {
		t.Fatalf("slow 503 kept = %q, want %q", got.Kept, KeptError)
	}
}

func TestTraceStoreDeterministicSampling(t *testing.T) {
	ts := newTestStore(TraceStoreConfig{Capacity: 64, SlowThreshold: time.Hour, SampleEvery: 4})
	kept := 0
	for i := 0; i < 16; i++ {
		if ts.Record(RequestTrace{TraceID: fmt.Sprintf("boring-%d", i), Status: 200, Attempts: 1}) {
			kept++
		}
	}
	if kept != 4 {
		t.Fatalf("kept %d of 16 boring requests with SampleEvery=4, want 4", kept)
	}
	// SampleEvery=1 keeps everything.
	all := newTestStore(TraceStoreConfig{Capacity: 64, SlowThreshold: time.Hour, SampleEvery: 1})
	for i := 0; i < 8; i++ {
		if !all.Record(RequestTrace{TraceID: fmt.Sprintf("b-%d", i), Status: 200}) {
			t.Fatal("SampleEvery=1 must keep every request")
		}
	}
	sampled := all.Traces()
	for _, rt := range sampled {
		if rt.Kept != KeptSampled {
			t.Fatalf("boring request kept as %q, want %q", rt.Kept, KeptSampled)
		}
	}
}

func TestTraceStoreRingEvictsOldestFirst(t *testing.T) {
	ts := newTestStore(TraceStoreConfig{Capacity: 4, SlowThreshold: time.Hour, SampleEvery: 1})
	for i := 0; i < 7; i++ {
		ts.Record(RequestTrace{TraceID: fmt.Sprintf("t%d", i), Status: 200})
	}
	if ts.Len() != 4 {
		t.Fatalf("Len = %d, want capacity 4", ts.Len())
	}
	got := ts.Traces()
	want := []string{"t6", "t5", "t4", "t3"} // newest first; t0–t2 evicted
	if len(got) != len(want) {
		t.Fatalf("Traces returned %d entries, want %d", len(got), len(want))
	}
	for i, rt := range got {
		if rt.TraceID != want[i] {
			t.Fatalf("Traces()[%d] = %s, want %s", i, rt.TraceID, want[i])
		}
	}
	if _, ok := ts.Get("t0"); ok {
		t.Fatal("t0 should have been evicted")
	}
	// Retention reason does not protect against ring eviction: an errored
	// trace ages out like any other once the ring wraps past it.
	ts.Record(RequestTrace{TraceID: "err", Status: 500})
	for i := 0; i < 4; i++ {
		ts.Record(RequestTrace{TraceID: fmt.Sprintf("later%d", i), Status: 200})
	}
	if _, ok := ts.Get("err"); ok {
		t.Fatal("errored trace must still age out of a full ring")
	}
}

func TestTraceStoreConfigDefaults(t *testing.T) {
	ts := NewTraceStore(TraceStoreConfig{})
	cfg := ts.Config()
	if cfg.Capacity != 256 || cfg.SlowThreshold != 250*time.Millisecond || cfg.SampleEvery != 16 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestActiveTraceStoreGlobal(t *testing.T) {
	prev := ActiveTraceStore()
	t.Cleanup(func() { SetTraceStore(prev) })
	SetTraceStore(nil)
	if ActiveTraceStore() != nil {
		t.Fatal("nil store should disable")
	}
	ts := NewTraceStore(TraceStoreConfig{})
	SetTraceStore(ts)
	if ActiveTraceStore() != ts {
		t.Fatal("installed store not returned")
	}
}
