// Package obs is the solver-wide telemetry pipeline: hierarchical spans
// over the Kaltofen–Pan solve phases, named counters/gauges and lock-free
// log-bucketed histograms (phase latencies, retry counts, batch sizes,
// pool samples), Las Vegas attempt statistics compared against the paper's
// failure bounds (BoundsReport), an always-on flight recorder of recent
// solve summaries, and exporters — Chrome trace_event JSON, expvar, and an
// embeddable HTTP Handler serving Prometheus text at /metrics plus a JSON
// /snapshot and /healthz — that make the paper's per-phase work/depth
// accounting and probabilistic claims measurable instead of asserted.
//
// The layer is off by default and built around a nil fast path: with no
// active Observer, StartPhase returns a nil *Span whose methods are no-ops,
// so an instrumented solve path costs one atomic pointer load per phase
// boundary (see BenchmarkSpanDisabled). Installing an Observer — via
// core.Options.Observer or obs.SetActive — turns the same call sites into
// real measurements.
//
// Spans record wall time, goroutine id, and the field-operation count that
// matrix.Instrumented folds into the innermost open span. Phase names
// follow the paper's algorithm steps (the constants below), so a trace of
// Theorem 4 reads as: precondition → krylov → minpoly → backsolve.
package obs

import (
	"bytes"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// phaseLatencyHists caches the per-phase latency histogram ("phase.latency.ns"
// family, one labeled series per phase name) so Span.End pays one sync.Map
// load instead of a registry lock per close.
var phaseLatencyHists sync.Map // phase name -> *Histogram

func phaseLatencyHist(name string) *Histogram {
	if h, ok := phaseLatencyHists.Load(name); ok {
		return h.(*Histogram)
	}
	h, _ := phaseLatencyHists.LoadOrStore(name, NewLabeledHistogram("phase.latency.ns", "phase", name))
	return h.(*Histogram)
}

// The canonical phase families are registered eagerly so /metrics and
// /snapshot expose every phase.latency.ns series — the rns/* ones included —
// from process start, not only after the first solve of that kind ran. The
// exposition-parity regression test leans on this: a family registered
// anywhere must appear on both endpoints.
func init() {
	for _, name := range []string{
		PhasePrecondition, PhaseKrylov, PhaseMinPoly, PhaseBacksolve,
		PhaseBatchPrecondition, PhaseBatchKrylov, PhaseBatchMinPoly,
		PhaseBatchBacksolve, PhaseBatchVerify,
		PhaseRNSPrimes, PhaseRNSResidue, PhaseRNSCRT, PhaseRNSVerify,
	} {
		phaseLatencyHist(name)
	}
}

// Span taxonomy: the KP91 (SPAA 1991) algorithm steps. Theorem 4 emits
// exactly these four top-level phases per attempt; the black-box
// (Wiedemann) route reuses the same names so phase totals aggregate across
// solvers.
const (
	// PhasePrecondition is Ã = A·H·D (Theorem 2 + equation (1)).
	PhasePrecondition = "precondition"
	// PhaseKrylov is the Krylov sequence {Ãⁱv} and its projection — the
	// doubling of display (9) in the dense route, iterative products in the
	// black-box route.
	PhaseKrylov = "krylov"
	// PhaseMinPoly is the minimum/characteristic-polynomial recovery: the
	// Lemma 1 Toeplitz system (§3) or Berlekamp–Massey.
	PhaseMinPoly = "minpoly"
	// PhaseBacksolve is the Cayley–Hamilton back-substitution and the
	// undoing of the preconditioner.
	PhaseBacksolve = "backsolve"
)

// Batch-engine phases: the multi-RHS solve engine (kp.SolveBatch /
// kp.Factor) shares one preconditioning, Krylov sequence and minimum
// polynomial across k right-hand sides, so its spans carry a "batch/"
// prefix to keep the amortized work distinguishable from the per-solve
// phases above. A Factored handle replays only batch/backsolve (and
// batch/verify) — the absence of further batch/krylov spans is the
// measurable statement that the Krylov phase was skipped.
const (
	// PhaseBatchPrecondition is the shared Ã = A·H·D of a batch attempt.
	PhaseBatchPrecondition = "batch/precondition"
	// PhaseBatchKrylov is the shared Krylov doubling and projection
	// (computed once per attempt, reused by every right-hand side).
	PhaseBatchKrylov = "batch/krylov"
	// PhaseBatchMinPoly is the shared characteristic-polynomial recovery.
	PhaseBatchMinPoly = "batch/minpoly"
	// PhaseBatchBacksolve is the fused multi-RHS Cayley–Hamilton
	// back-substitution and preconditioner undo.
	PhaseBatchBacksolve = "batch/backsolve"
	// PhaseBatchVerify is the blocked A·X = B verification.
	PhaseBatchVerify = "batch/verify"
)

// RNS/CRT multi-modulus phases: the ring-ℤ/ℚ engine (kp.IntEngine) splits
// an exact integer or rational problem into independent word-prime residue
// solves and recombines. The "rns/" prefix keeps the number-theoretic
// bookkeeping distinguishable from the per-residue Theorem 4 phases, which
// nest under each rns/residue span with their usual batch/* names.
const (
	// PhaseRNSPrimes is the certified prime-set generation: Hadamard/Cramer
	// bound → residue count → NTT-friendly word primes.
	PhaseRNSPrimes = "rns/primes"
	// PhaseRNSResidue is one residue field's solve: reduce mod p, factor
	// (or hit the per-prime factorization cache), backsolve. One span per
	// residue; they run concurrently across the worker pool.
	PhaseRNSResidue = "rns/residue"
	// PhaseRNSCRT is the Chinese-remainder combination and, for solves, the
	// per-coordinate rational reconstruction (the half-gcd lattice step).
	PhaseRNSCRT = "rns/crt"
	// PhaseRNSVerify is the a-posteriori exact check over ℤ: A·num = den·b
	// (solve) or a fresh check-prime residue comparison (det).
	PhaseRNSVerify = "rns/verify"
)

// SpanRecord is one completed span as stored in the Observer's ring (and,
// for spans opened under a request TraceScope, in the scope's collection
// serialized by the /debug/traces trace store).
type SpanRecord struct {
	ID       int64         `json:"id"`        // 1-based span id, unique per Observer
	Parent   int64         `json:"parent"`    // enclosing span's id, 0 for a top-level span
	Name     string        `json:"name"`      // phase name
	Start    time.Duration `json:"start_ns"`  // offset from the Observer's epoch
	Dur      time.Duration `json:"dur_ns"`    // wall time between StartPhase and End
	GID      int64         `json:"gid"`       // goroutine that started the span
	FieldOps uint64        `json:"field_ops"` // field operations folded in via AddFieldOps
	MulCalls uint64        `json:"mul_calls"` // multiplier invocations folded in
	// ApplyNs/ApplyCalls account the black-box matrix-vector products folded
	// in via AddApplyTime — the implicit-preconditioning pipeline's unit of
	// work, where MulCalls (dense matrix-matrix products) stays zero.
	ApplyNs    int64   `json:"apply_ns,omitempty"`
	ApplyCalls uint64  `json:"apply_calls,omitempty"`
	Trace      TraceID `json:"trace"` // owning request's trace id (zero for unscoped spans)
}

// Observer collects completed spans into a fixed-capacity ring buffer and
// anchors the trace timeline. One Observer watches one logical run; the
// process-global active Observer (SetActive) is what the solve-path
// call sites report to.
type Observer struct {
	epoch   time.Time
	ids     atomic.Int64
	current atomic.Pointer[Span]

	mu      sync.Mutex
	ring    []SpanRecord
	next    int64 // records ever completed; ring slot is next % len(ring)
	dropped int64
}

// DefaultCapacity is the span-ring capacity New uses for capacity ≤ 0.
// A Theorem 4 solve emits 4 spans per Las Vegas attempt, so the default
// holds thousands of attempts before wrapping.
const DefaultCapacity = 4096

// New returns an Observer whose ring holds capacity completed spans
// (DefaultCapacity if capacity ≤ 0). When the ring wraps, the oldest
// records are overwritten and Dropped reports how many were lost.
func New(capacity int) *Observer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Observer{epoch: time.Now(), ring: make([]SpanRecord, capacity)}
}

// active is the process-global Observer the package-level helpers report
// to; nil means observability is disabled (the fast path).
var active atomic.Pointer[Observer]

// SetActive installs o as the process-global active Observer (nil disables
// observability). The solve paths are instrumented against the active
// Observer, so concurrent solvers share it; per-run isolation is obtained
// by running one traced solve at a time, which is what the CLI tools do.
func SetActive(o *Observer) {
	if o == nil {
		active.Store(nil)
		return
	}
	active.Store(o)
}

// Active returns the process-global active Observer, or nil when
// observability is disabled.
func Active() *Observer { return active.Load() }

// Span is one open phase. A nil *Span (the disabled fast path) accepts
// every method as a no-op, so call sites never branch on enablement.
type Span struct {
	obs    *Observer
	scope  *TraceScope // owning request scope; nil for Observer-global spans
	parent *Span
	id     int64
	pid    int64
	name   string
	start  time.Duration
	gid        int64
	ops        atomic.Uint64
	calls      atomic.Uint64
	applyNs    atomic.Int64
	applyCalls atomic.Uint64
	ended      atomic.Bool
}

// StartPhase opens a span on the active Observer (nil, at the cost of one
// atomic load, when observability is disabled). The new span becomes the
// innermost open span: AddFieldOps and nested StartPhase calls attach to
// it until End.
func StartPhase(name string) *Span { return active.Load().StartSpan(name) }

// StartSpan opens a span on o; a nil Observer returns a nil (no-op) span.
// Span nesting is tracked with a single current-span pointer, matching the
// solve paths, which open and close phases from one orchestrating
// goroutine (the data parallelism lives inside the phases, on the matrix
// pool).
func (o *Observer) StartSpan(name string) *Span {
	if o == nil {
		return nil
	}
	s := &Span{
		obs:   o,
		name:  name,
		start: time.Since(o.epoch),
		gid:   goroutineID(),
		id:    o.ids.Add(1),
	}
	if parent := o.current.Load(); parent != nil {
		s.parent = parent
		s.pid = parent.id
	}
	o.current.Store(s)
	return s
}

// AddFieldOps attributes ops field operations (and calls multiplier
// invocations) to the span.
func (s *Span) AddFieldOps(ops, calls uint64) {
	if s == nil {
		return
	}
	s.ops.Add(ops)
	s.calls.Add(calls)
}

// AddFieldOps attributes ops field operations to the innermost open span
// of the active Observer. This is the hook matrix.Instrumented reports
// through; with observability disabled it is two atomic loads.
func AddFieldOps(ops, calls uint64) {
	o := active.Load()
	if o == nil {
		return
	}
	o.current.Load().AddFieldOps(ops, calls)
}

// AddApplyTime attributes d of black-box apply wall time (and calls apply
// invocations) to the span.
func (s *Span) AddApplyTime(d time.Duration, calls uint64) {
	if s == nil {
		return
	}
	s.applyNs.Add(d.Nanoseconds())
	s.applyCalls.Add(calls)
}

// AddApplyTime attributes black-box apply time to the innermost open span
// of the active Observer — the hook the kp implicit-preconditioning boxes
// report through, giving kpbench its apply_ns column.
func AddApplyTime(d time.Duration, calls uint64) {
	o := active.Load()
	if o == nil {
		return
	}
	o.current.Load().AddApplyTime(d, calls)
}

// End closes the span and commits its record to the Observer's ring. The
// enclosing span (if any) becomes the innermost open span again. End is
// idempotent: the second and later calls are no-ops, so call sites close
// spans eagerly for tight timing AND via defer as a leak guard on error,
// cancellation and panic paths.
func (s *Span) End() {
	if s == nil || s.ended.Swap(true) {
		return
	}
	o := s.obs
	if s.scope != nil {
		s.scope.current.CompareAndSwap(s, s.parent)
	} else {
		o.current.CompareAndSwap(s, s.parent)
	}
	rec := SpanRecord{
		ID:         s.id,
		Parent:     s.pid,
		Name:       s.name,
		Start:      s.start,
		Dur:        time.Since(o.epoch) - s.start,
		GID:        s.gid,
		FieldOps:   s.ops.Load(),
		MulCalls:   s.calls.Load(),
		ApplyNs:    s.applyNs.Load(),
		ApplyCalls: s.applyCalls.Load(),
	}
	if s.scope != nil {
		rec.Trace = s.scope.tc.Trace
		s.scope.append(rec)
	}
	o.mu.Lock()
	if int(o.next) >= len(o.ring) {
		o.dropped++
	}
	o.ring[o.next%int64(len(o.ring))] = rec
	o.next++
	o.mu.Unlock()
	// Trace-scoped spans stamp the latency sample as the bucket's exemplar,
	// so a phase-latency band on /metrics links to the /debug/traces entry
	// that produced it.
	phaseLatencyHist(s.name).ObserveExemplar(rec.Dur.Nanoseconds(), rec.Trace.String())
}

// OpenSpanName returns the name of the innermost open span, or "" when no
// span is open — the invariant tests assert after cancellation: a returned
// driver must leave no span open (and no stale current pointer) behind.
func (o *Observer) OpenSpanName() string {
	if o == nil {
		return ""
	}
	if s := o.current.Load(); s != nil {
		return s.name
	}
	return ""
}

// Records returns the completed spans in completion order (oldest
// surviving record first when the ring has wrapped).
func (o *Observer) Records() []SpanRecord {
	o.mu.Lock()
	defer o.mu.Unlock()
	n := o.next
	cap64 := int64(len(o.ring))
	if n <= cap64 {
		out := make([]SpanRecord, n)
		copy(out, o.ring[:n])
		return out
	}
	out := make([]SpanRecord, cap64)
	head := n % cap64
	copy(out, o.ring[head:])
	copy(out[cap64-head:], o.ring[:head])
	return out
}

// Dropped returns how many completed spans the ring overwrote.
func (o *Observer) Dropped() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.dropped
}

// PhaseTotal aggregates the spans sharing one name.
type PhaseTotal struct {
	Count      int           // completed spans with this name
	Wall       time.Duration // summed span durations
	FieldOps   uint64        // summed field operations
	MulCalls   uint64        // summed multiplier invocations
	ApplyTime  time.Duration // summed black-box apply wall time
	ApplyCalls uint64        // summed black-box apply invocations
}

// PhaseTotals aggregates the recorded spans by name — the per-phase
// work/time split the paper states its cost claims in.
func (o *Observer) PhaseTotals() map[string]PhaseTotal {
	totals := make(map[string]PhaseTotal)
	for _, r := range o.Records() {
		t := totals[r.Name]
		t.Count++
		t.Wall += r.Dur
		t.FieldOps += r.FieldOps
		t.MulCalls += r.MulCalls
		t.ApplyTime += time.Duration(r.ApplyNs)
		t.ApplyCalls += r.ApplyCalls
		totals[r.Name] = t
	}
	return totals
}

// PhaseNames returns the recorded phase names, KP91 phases first in
// algorithm order, then any others alphabetically.
func (o *Observer) PhaseNames() []string {
	totals := o.PhaseTotals()
	canonical := []string{
		PhasePrecondition, PhaseKrylov, PhaseMinPoly, PhaseBacksolve,
		PhaseBatchPrecondition, PhaseBatchKrylov, PhaseBatchMinPoly,
		PhaseBatchBacksolve, PhaseBatchVerify,
	}
	var names []string
	for _, n := range canonical {
		if _, ok := totals[n]; ok {
			names = append(names, n)
			delete(totals, n)
		}
	}
	var rest []string
	for n := range totals {
		rest = append(rest, n)
	}
	sort.Strings(rest)
	return append(names, rest...)
}

// TotalFieldOps sums the field operations over every recorded span. Ops
// are attributed to the innermost open span only, so the sum counts each
// operation exactly once — it must match the matrix.Instrumented total
// for the same run.
func (o *Observer) TotalFieldOps() uint64 {
	var total uint64
	for _, r := range o.Records() {
		total += r.FieldOps
	}
	return total
}

// goroutineID parses the current goroutine's id from its stack header
// ("goroutine N [...]"). Only called on the enabled path; the runtime has
// no public accessor. Ids wider than the fast 40-byte buffer (the header
// would be truncated mid-digits, which must not parse as a wrong id) fall
// back to a larger buffer; a still-unparseable header yields -1.
func goroutineID() int64 {
	var buf [40]byte
	n := runtime.Stack(buf[:], false)
	if id, ok := parseGoroutineID(buf[:n]); ok {
		return id
	}
	big := make([]byte, 128)
	n = runtime.Stack(big, false)
	if id, ok := parseGoroutineID(big[:n]); ok {
		return id
	}
	return -1
}

// parseGoroutineID extracts N from a "goroutine N [...]" stack header. It
// requires the separator after the id to be present — a header truncated
// inside the digits (possible when the capture buffer is smaller than the
// header) is rejected rather than parsed as a shorter, wrong id.
func parseGoroutineID(s []byte) (int64, bool) {
	s = bytes.TrimPrefix(s, []byte("goroutine "))
	i := bytes.IndexByte(s, ' ')
	if i <= 0 {
		return 0, false
	}
	id, err := strconv.ParseInt(string(s[:i]), 10, 64)
	if err != nil || id < 0 {
		return 0, false
	}
	return id, true
}
