package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4) of the whole telemetry state:
// the counter/gauge registry, the log-bucketed histograms, and the Las
// Vegas attempt statistics with the paper's failure bounds beside the
// observed rates. The internal dotted metric names ("pool.jobs.submitted")
// are mangled into the prometheus_naming_convention with a "kp_" namespace
// prefix; counters gain the "_total" suffix the convention requires.

// promName mangles an internal metric name into a valid Prometheus metric
// name: "kp_" namespace prefix, every non-[a-zA-Z0-9_] byte replaced by
// '_'.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("kp_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabel escapes a label value per the exposition format (backslash,
// double quote, newline).
func promLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func promHeader(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

// WriteMetrics writes the full telemetry state in Prometheus text format:
// registry counters (as "<kp_name>_total" counters), gauges (plus their
// "_max" high-water marks), histogram families (cumulative "le" buckets,
// "_sum", "_count"), and the attempt statistics
// (kp_attempts_total{solver,n,subset,outcome} counters beside
// kp_attempt_failure_rate / kp_attempt_failure_bound_* gauges).
func WriteMetrics(w io.Writer) {
	writeExposition(w, false)
}

// WriteOpenMetrics writes the same telemetry state in OpenMetrics 1.0
// format. The differences from the 0.0.4 text format that matter here:
// counter family names drop the "_total" suffix on their metadata lines
// (samples keep it), histogram buckets carry exemplars — the last
// trace-tagged observation per bucket, "# {trace_id=\"…\"} value ts" —
// and the exposition ends with the mandatory "# EOF" terminator. Serve it
// with Content-Type "application/openmetrics-text; version=1.0.0".
func WriteOpenMetrics(w io.Writer) {
	writeExposition(w, true)
	io.WriteString(w, "# EOF\n")
}

func writeExposition(w io.Writer, om bool) {
	snap := MetricsSnapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		if strings.HasSuffix(n, ".max") {
			continue // emitted beside its gauge
		}
		names = append(names, n)
	}
	sort.Strings(names)

	counters := make(map[string]bool)
	registry.mu.Lock()
	for n := range registry.counters {
		counters[n] = true
	}
	registry.mu.Unlock()

	for _, n := range names {
		pn := promName(n)
		if counters[n] {
			if !strings.HasSuffix(pn, "_total") {
				pn += "_total"
			}
			// OpenMetrics names the counter family without the _total
			// suffix; only the sample line keeps it.
			family := pn
			if om {
				family = strings.TrimSuffix(pn, "_total")
			}
			promHeader(w, family, "counter", fmt.Sprintf("Monotonic counter %q.", n))
			fmt.Fprintf(w, "%s %d\n", pn, snap[n])
			continue
		}
		promHeader(w, pn, "gauge", fmt.Sprintf("Gauge %q.", n))
		fmt.Fprintf(w, "%s %d\n", pn, snap[n])
		if max, ok := snap[n+".max"]; ok {
			promHeader(w, pn+"_max", "gauge", fmt.Sprintf("High-water mark of gauge %q.", n))
			fmt.Fprintf(w, "%s_max %d\n", pn, max)
		}
	}

	writeHistogramFamilies(w, Histograms(), om)
	writeAttemptMetrics(w, BoundsReport(), om)
	writeRuntimeMetrics(w)
}

// promExemplar renders an OpenMetrics exemplar suffix for a bucket line:
// " # {trace_id=\"…\"} value unix_ts". The exemplar's value always falls
// inside its bucket (both were derived from the same observation), which
// the spec requires.
func promExemplar(e *Exemplar) string {
	if e == nil || e.TraceID == "" {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=\"%s\"} %d %.3f",
		promLabel(e.TraceID), e.Value, float64(e.Time.UnixNano())/1e9)
}

// writeHistogramFamilies groups the snapshots by family name and emits one
// HELP/TYPE header per family followed by each labeled series' cumulative
// buckets. In OpenMetrics mode each bucket that retained a trace-tagged
// observation carries it as an exemplar.
func writeHistogramFamilies(w io.Writer, snaps []HistSnapshot, om bool) {
	for i := 0; i < len(snaps); {
		j := i
		for j < len(snaps) && snaps[j].Name == snaps[i].Name {
			j++
		}
		family := promName(snaps[i].Name)
		promHeader(w, family, "histogram", fmt.Sprintf("Log2-bucketed histogram %q.", snaps[i].Name))
		for _, s := range snaps[i:j] {
			labelPrefix := ""
			if s.LabelKey != "" {
				labelPrefix = fmt.Sprintf("%s=%q,", promName(s.LabelKey)[3:], promLabel(s.LabelValue))
			}
			var cum uint64
			var infEx *Exemplar
			for _, b := range s.Buckets {
				if b.Le == ^uint64(0) {
					infEx = b.Exemplar
					continue // folded into +Inf below
				}
				cum += b.Count
				ex := ""
				if om {
					ex = promExemplar(b.Exemplar)
				}
				fmt.Fprintf(w, "%s_bucket{%sle=\"%d\"} %d%s\n", family, labelPrefix, b.Le, cum, ex)
			}
			ex := ""
			if om {
				ex = promExemplar(infEx)
			}
			fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d%s\n", family, labelPrefix, s.Count, ex)
			if s.LabelKey != "" {
				fmt.Fprintf(w, "%s_sum{%s=%q} %d\n", family, promName(s.LabelKey)[3:], promLabel(s.LabelValue), s.Sum)
				fmt.Fprintf(w, "%s_count{%s=%q} %d\n", family, promName(s.LabelKey)[3:], promLabel(s.LabelValue), s.Count)
			} else {
				fmt.Fprintf(w, "%s_sum %d\n", family, s.Sum)
				fmt.Fprintf(w, "%s_count %d\n", family, s.Count)
			}
		}
		i = j
	}
}

// writeAttemptMetrics emits the Las Vegas attempt statistics: per-outcome
// attempt counters and, per (solver, n, |S|) group, the observed failure
// rate beside the equation (2), Lemma 2 and Theorem 2 bounds.
func writeAttemptMetrics(w io.Writer, lines []BoundsLine, om bool) {
	if len(lines) == 0 {
		return
	}
	groupLabels := func(l BoundsLine) string {
		return fmt.Sprintf("solver=%q,n=\"%d\",subset=\"%s\"",
			promLabel(l.Solver), l.N, strconv.FormatUint(l.Subset, 10))
	}
	counterFamily := func(name string) string {
		if om {
			return strings.TrimSuffix(name, "_total")
		}
		return name
	}

	promHeader(w, counterFamily("kp_attempts_total"), "counter", "Las Vegas attempts by driver, dimension, subset size and outcome.")
	for _, l := range lines {
		outcomes := make([]string, 0, len(l.ByOutcome))
		for o := range l.ByOutcome {
			outcomes = append(outcomes, o)
		}
		sort.Strings(outcomes)
		for _, o := range outcomes {
			fmt.Fprintf(w, "kp_attempts_total{%s,outcome=%q} %d\n", groupLabels(l), promLabel(o), l.ByOutcome[o])
		}
	}

	promHeader(w, counterFamily("kp_attempt_failures_total"), "counter", "Failed Las Vegas attempts by driver, dimension and subset size.")
	for _, l := range lines {
		fmt.Fprintf(w, "kp_attempt_failures_total{%s} %d\n", groupLabels(l), l.Failures)
	}

	promHeader(w, "kp_attempt_failure_rate", "gauge", "Observed per-attempt failure rate (failures/attempts).")
	for _, l := range lines {
		fmt.Fprintf(w, "kp_attempt_failure_rate{%s} %s\n", groupLabels(l), formatFloat(l.ObservedRate))
	}
	promHeader(w, "kp_attempt_failure_bound_eq2", "gauge", "Paper equation (2) per-attempt failure bound 3n^2/|S|.")
	for _, l := range lines {
		fmt.Fprintf(w, "kp_attempt_failure_bound_eq2{%s} %s\n", groupLabels(l), formatFloat(l.BoundEq2))
	}
	promHeader(w, "kp_attempt_failure_bound_lemma2", "gauge", "Lemma 2 minimum-polynomial failure bound 2n/|S|.")
	for _, l := range lines {
		fmt.Fprintf(w, "kp_attempt_failure_bound_lemma2{%s} %s\n", groupLabels(l), formatFloat(l.BoundLemma2))
	}
	promHeader(w, "kp_attempt_failure_bound_theorem2", "gauge", "Theorem 2 preconditioner failure bound n(n-1)/(2|S|).")
	for _, l := range lines {
		fmt.Fprintf(w, "kp_attempt_failure_bound_theorem2{%s} %s\n", groupLabels(l), formatFloat(l.BoundThm2))
	}
}

// formatFloat renders a float sample without exponent surprises for small
// magnitudes ('g' keeps full precision and stays parseable).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
