package seq

import (
	"repro/internal/ff"
	"repro/internal/matrix"
	"repro/internal/poly"
	"repro/internal/structured"
)

// MinPolyParallel is the §3 parallel replacement for Berlekamp–Massey in
// full: it locates the minimum-polynomial degree m as the largest µ with
// det(T_µ) ≠ 0 (Lemma 1 makes non-singularity monotone below m and
// identically singular above), computing each candidate determinant with
// the branch-free Theorem 3 circuitry, then recovers the polynomial by one
// structured Toeplitz solve. In the PRAM model all n candidate
// determinants run concurrently, so the critical path stays polylog; this
// sequential realization evaluates them in a binary search.
//
// Requires characteristic 0 or > len(a)/2 (the Theorem 3 hypothesis) and a
// sequence of at least 2·maxDeg terms. Sequences whose minimum polynomial
// is λ^j (nilpotent projections) have singular T_µ for every µ ≥ 1 despite
// m = j > 0; like the paper's pipeline — which only ever meets sequences
// with f(0) ≠ 0 after preconditioning — this routine returns the constant
// polynomial 1 in that degenerate case.
func MinPolyParallel[E any](f ff.Field[E], a []E, maxDeg int) ([]E, error) {
	if 2*maxDeg > len(a) {
		panic("seq: need 2·maxDeg sequence terms")
	}
	// Largest µ with det(T_µ) ≠ 0. Lemma 1: non-zero exactly for µ = m
	// (and typically below; zero for all µ > m).
	nonSingular := func(mu int) (bool, error) {
		tm := structured.NewToeplitz(a[:2*mu-1])
		d, err := structured.Det(f, tm)
		if err != nil {
			return false, err
		}
		return !f.IsZero(d), nil
	}
	m := 0
	// Binary search is only sound on monotone predicates; Lemma 1
	// guarantees det(T_µ) = 0 for µ > m but says nothing below m, so scan
	// from the top (the PRAM version evaluates all µ at once anyway).
	for mu := maxDeg; mu >= 1; mu-- {
		ok, err := nonSingular(mu)
		if err != nil {
			return nil, err
		}
		if ok {
			m = mu
			break
		}
	}
	if m == 0 {
		return poly.Constant(f, f.One()), nil
	}
	return MinPolyByToeplitz(f, a, m, func(tm *matrix.Dense[E], rhs []E) ([]E, error) {
		// The moment matrix is Toeplitz: solve it with the §3 machinery.
		t := structured.NewToeplitz(momentEntries(tm))
		return structured.Solve(f, t, rhs)
	})
}

// momentEntries recovers the 2µ−1 defining entries from a dense Toeplitz
// moment matrix (first row reversed, then first column tail).
func momentEntries[E any](tm *matrix.Dense[E]) []E {
	n := tm.Rows
	d := make([]E, 2*n-1)
	for j := 0; j < n; j++ {
		d[n-1-j] = tm.At(0, j)
	}
	for i := 1; i < n; i++ {
		d[n-1+i] = tm.At(i, 0)
	}
	return d
}
