package seq

import (
	"testing"

	"repro/internal/ff"
	"repro/internal/matrix"
	"repro/internal/poly"
)

func TestMinPolyParallelMatchesBM(t *testing.T) {
	f := ff.MustFp64(ff.P31)
	src := ff.NewSource(181)
	for trial := 0; trial < 25; trial++ {
		l := 1 + src.Intn(6)
		g := make([]uint64, l+1)
		for i := 0; i < l; i++ {
			g[i] = src.Uint64n(ff.P31)
		}
		g[l] = 1
		init := ff.SampleVec[uint64](f, src, l, ff.P31)
		maxDeg := l + 2
		a := Apply[uint64](f, g, init, 2*maxDeg)
		want, err := MinPoly[uint64](f, a)
		if err != nil {
			t.Fatal(err)
		}
		if f.IsZero(poly.Coef[uint64](f, want, 0)) {
			continue // λ | minpoly: the documented degenerate case
		}
		got, err := MinPolyParallel[uint64](f, a, maxDeg)
		if err != nil {
			t.Fatal(err)
		}
		if !poly.Equal[uint64](f, got, want) {
			t.Fatalf("parallel %s != BM %s",
				poly.String[uint64](f, got), poly.String[uint64](f, want))
		}
	}
}

func TestMinPolyParallelMatrixSequence(t *testing.T) {
	// The use case of the paper: {u·Ãⁱ·b} for a preconditioned matrix.
	f := ff.MustFp64(ff.P31)
	src := ff.NewSource(183)
	n := 6
	var a *matrix.Dense[uint64]
	for {
		a = matrix.Random[uint64](f, src, n, n, ff.P31)
		if d, _ := matrix.Det[uint64](f, a); !f.IsZero(d) {
			break
		}
	}
	u := ff.SampleVec[uint64](f, src, n, ff.P31)
	b := ff.SampleVec[uint64](f, src, n, ff.P31)
	s := MatrixSequence[uint64](f, a, u, b, 2*n)
	want, err := MinPoly[uint64](f, s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MinPolyParallel[uint64](f, s, n)
	if err != nil {
		t.Fatal(err)
	}
	if !poly.Equal[uint64](f, got, want) {
		t.Fatal("parallel minpoly disagrees on a matrix sequence")
	}
}

func TestMinPolyParallelZeroSequence(t *testing.T) {
	f := ff.MustFp64(ff.P31)
	got, err := MinPolyParallel[uint64](f, make([]uint64, 12), 6)
	if err != nil {
		t.Fatal(err)
	}
	if poly.Deg[uint64](f, got) != 0 {
		t.Fatalf("zero sequence minpoly degree %d", poly.Deg[uint64](f, got))
	}
}
