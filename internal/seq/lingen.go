package seq

import (
	"repro/internal/ff"
	"repro/internal/matrix"
	"repro/internal/poly"
)

// MomentMatrix returns the µ×µ Toeplitz matrix T_µ of Lemma 1 built from
// the sequence a (which must supply at least 2µ−1 terms):
//
//	T_µ[i][j] = a_{µ−1+i−j}
//
// Lemma 1: if the sequence is linearly generated with minimum polynomial of
// degree m, then det(T_m) ≠ 0 while det(T_M) = 0 for every M > m. This is
// the bridge from Wiedemann's method to Toeplitz systems: the minimum
// polynomial is read off from a non-singular Toeplitz solve.
func MomentMatrix[E any](f ff.Field[E], a []E, mu int) *matrix.Dense[E] {
	if len(a) < 2*mu-1 {
		panic("seq: sequence too short for moment matrix")
	}
	return matrix.ToeplitzDense(f, a[:2*mu-1])
}

// MinPolyByToeplitz recovers the minimum polynomial of the sequence a under
// the promise that its degree is exactly m, by solving the Lemma 1 system
//
//	T_m·(c_{m−1}, …, c₀)ᵀ = (a_m, …, a_{2m−1})ᵀ
//
// and returning λ^m − c_{m−1}λ^{m−1} − … − c₀. The sequence must supply at
// least 2m terms. This is the §3 replacement for Berlekamp–Massey: the
// solve parallelizes, the iterative BM recurrence does not. Here the
// Toeplitz system is solved by the provided solver (the paper's own
// Toeplitz machinery in package structured, or Gaussian elimination for
// cross-checks).
//
// If the true minimum polynomial has degree < m, T_m is singular (Lemma 1)
// and the solver reports it.
func MinPolyByToeplitz[E any](f ff.Field[E], a []E, m int,
	solve func(t *matrix.Dense[E], b []E) ([]E, error)) ([]E, error) {
	if len(a) < 2*m {
		panic("seq: need 2m sequence terms")
	}
	tm := MomentMatrix(f, a, m)
	b := make([]E, m)
	for i := 0; i < m; i++ {
		b[i] = a[m+i]
	}
	c, err := solve(tm, b)
	if err != nil {
		return nil, err
	}
	// c = (c_{m−1}, …, c₀); minimum polynomial λ^m − Σ c_i λ^i.
	mp := make([]E, m+1)
	for i := 0; i < m; i++ {
		mp[i] = f.Neg(c[m-1-i])
	}
	mp[m] = f.One()
	return mp, nil
}

// MinPolyDegree returns the degree of the minimum polynomial of the
// sequence segment a by running Berlekamp–Massey; it is the m that makes
// Lemma 1's T_m non-singular.
func MinPolyDegree[E any](f ff.Field[E], a []E) (int, error) {
	mp, err := MinPoly(f, a)
	if err != nil {
		return 0, err
	}
	return poly.Deg(f, mp), nil
}

// MatrixSequence returns the first m terms of {u·Aⁱ·b} for a dense A: the
// scalar sequence Wiedemann's method projects out of the black box.
func MatrixSequence[E any](f ff.Field[E], a *matrix.Dense[E], u, b []E, m int) []E {
	vs := matrix.KrylovIterative(f, matrix.DenseBox[E]{M: a}, b, m)
	return matrix.ProjectSequence(f, u, vs)
}
