package structured

import (
	"repro/internal/charpoly"
	"repro/internal/ff"
	"repro/internal/poly"
)

// CharPoly returns det(λI − T) for an n×n Toeplitz matrix by the paper's
// Theorem 3 pipeline (Pan 1990b):
//
//  1. Newton-iterate the implicit inverse of B = I − λT, carrying only its
//     first and last columns in Gohberg/Semencul form (newton.go);
//  2. read off Trace((I − λT)⁻¹) mod λ^{n+1} = Σ Trace(Tⁱ)·λⁱ, the power
//     sums s₁, …, sₙ of the eigenvalues;
//  3. solve the Leverrier/Newton-identity system by power-series
//     exponentiation (Schönhage), which divides by 2, …, n.
//
// Requires characteristic 0 or > n (charpoly.ErrSmallCharacteristic
// otherwise — use CharPolySmallChar). The whole computation is branch-free:
// it never tests a field element for zero, matching the circuit model.
func CharPoly[E any](f ff.Field[E], t Toeplitz[E]) ([]E, error) {
	n := t.N
	if n == 0 {
		return []E{f.One()}, nil
	}
	tr, err := TraceSeries(f, t, n+1)
	if err != nil {
		return nil, err
	}
	s := make([]E, n)
	for i := 1; i <= n; i++ {
		s[i-1] = poly.Coef(f, tr, i)
	}
	return charpoly.PowerSumsToCharPolySeries(f, s)
}

// Det returns det(T) = (−1)ⁿ·(constant term of det(λI − T)).
func Det[E any](f ff.Field[E], t Toeplitz[E]) (E, error) {
	cp, err := CharPoly(f, t)
	if err != nil {
		var z E
		return z, err
	}
	d := cp[0]
	if t.N%2 == 1 {
		d = f.Neg(d)
	}
	return d, nil
}

// DetHankel returns det(H) by mirroring to a Toeplitz matrix: H = J·T with
// J the row-reversal, so det(H) = det(J)·det(T) = (−1)^{n(n−1)/2}·det(T).
// This is exactly how the paper's §4 computes det(H) for the random Hankel
// preconditioner.
func DetHankel[E any](f ff.Field[E], h Hankel[E]) (E, error) {
	d, err := Det(f, h.Mirror())
	if err != nil {
		var z E
		return z, err
	}
	if (h.N*(h.N-1)/2)%2 == 1 {
		d = f.Neg(d)
	}
	return d, nil
}

// CharPolySmallChar returns det(λI − T) over a field of any characteristic
// by the §5 extension: Chistov's telescoping product over all leading
// principal submatrices T_i, with each ((I_i − λT_i)⁻¹)_{i,i} computed by
// Toeplitz-structured Neumann series (n matvecs of cost M(i) each). Total
// O(n³ log n loglog n) with fast polynomial multiplication — the paper's
// display (12), one factor n more than Theorem 3.
func CharPolySmallChar[E any](f ff.Field[E], t Toeplitz[E]) ([]E, error) {
	n := t.N
	if n == 0 {
		return []E{f.One()}, nil
	}
	gs := make([][]E, n)
	for i := 1; i <= n; i++ {
		ti := t.Leading(i)
		// g_i = Σ_j ((T_i)ʲ e_i)_i λʲ mod λ^{n+1}, by structured matvecs.
		v := ff.VecZero(f, i)
		v[i-1] = f.One()
		g := make([]E, n+1)
		for j := 0; j <= n; j++ {
			g[j] = v[i-1]
			if j < n {
				v = ti.MulVec(f, v)
			}
		}
		gs[i-1] = poly.Trim(f, g)
	}
	prod := poly.Constant(f, f.One())
	for _, g := range gs {
		prod = poly.MulTrunc(f, prod, g, n+1)
	}
	rev, err := poly.SeriesInv(f, prod, n+1)
	if err != nil {
		return nil, err
	}
	cp := poly.Reverse(f, rev, n)
	out := make([]E, n+1)
	for k := range out {
		out[k] = poly.Coef(f, cp, k)
	}
	return out, nil
}
