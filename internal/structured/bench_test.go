package structured

import (
	"testing"

	"repro/internal/ff"
)

func BenchmarkCharPoly(b *testing.B) {
	f := ff.MustFp64(ff.PNTT62)
	src := ff.NewSource(3)
	t := RandomToeplitz[uint64](f, src, 256, ff.PNTT62)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CharPoly[uint64](f, t); err != nil {
			b.Fatal(err)
		}
	}
}
