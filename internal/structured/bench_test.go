package structured

import (
	"fmt"
	"testing"

	"repro/internal/ff"
)

// BenchmarkToeplitzApply is the before/after for the persistent NTT apply:
// "cached" exercises the constructor path (transform of D computed once,
// each product = forward + pointwise + inverse on process-wide twiddle
// tables), "schoolbook" forces the legacy per-call poly.Mul via a
// zero-value literal.
func BenchmarkToeplitzApply(b *testing.B) {
	f := ff.MustFp64(ff.PNTT62)
	for _, n := range []int{256, 1024} {
		src := ff.NewSource(5)
		tm := RandomToeplitz[uint64](f, src, n, ff.PNTT62)
		legacy := Toeplitz[uint64]{N: tm.N, D: tm.D}
		x := ff.SampleVec[uint64](f, src, n, ff.PNTT62)
		b.Run(fmt.Sprintf("cached/n=%d", n), func(b *testing.B) {
			tm.MulVec(f, x) // warm the cache outside the timer
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tm.MulVec(f, x)
			}
		})
		b.Run(fmt.Sprintf("schoolbook/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				legacy.MulVec(f, x)
			}
		})
	}
}

func BenchmarkCharPoly(b *testing.B) {
	f := ff.MustFp64(ff.PNTT62)
	src := ff.NewSource(3)
	t := RandomToeplitz[uint64](f, src, 256, ff.PNTT62)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CharPoly[uint64](f, t); err != nil {
			b.Fatal(err)
		}
	}
}
