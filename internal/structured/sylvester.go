package structured

import (
	"repro/internal/ff"
	"repro/internal/poly"
)

// Sylvester is the Sylvester matrix of two polynomials a (degree m) and b
// (degree n) presented as a structured operator: it acts on stacked
// coefficient vectors (u, v) with deg u < n, deg v < m by
//
//	S·(u, v) = coefficients of u·a + v·b   (length m+n)
//
// so one matrix-vector product costs two polynomial multiplications —
// O(M(n)) instead of n². This is the §5 remark made executable: "The
// efficient parallel algorithms ... are extendible to structured
// Toeplitz-like matrices such as Sylvester matrices", and it lets the
// whole black-box toolbox (Wiedemann determinants = resultants, solves)
// run on Sylvester systems at structured cost.
type Sylvester[E any] struct {
	A, B []E // trimmed, non-constant
	m, n int // degrees of A and B

	// antt/bntt cache the forward transforms of A and B (see nttCache): the
	// Wiedemann driver issues 2(m+n) applies against one operator, so both
	// transforms are computed exactly once per Sylvester value.
	antt, bntt *nttCache[E]
}

// NewSylvester builds the operator for non-zero polynomials a, b, at least
// one of which must be non-constant.
func NewSylvester[E any](f ff.Field[E], a, b []E) Sylvester[E] {
	a, b = poly.Trim(f, a), poly.Trim(f, b)
	if len(a) == 0 || len(b) == 0 {
		panic("structured: Sylvester of zero polynomial")
	}
	m, n := len(a)-1, len(b)-1
	if m+n == 0 {
		panic("structured: Sylvester needs a non-constant polynomial")
	}
	return Sylvester[E]{A: a, B: b, m: m, n: n, antt: &nttCache[E]{}, bntt: &nttCache[E]{}}
}

// Dims returns (m+n, m+n).
func (s Sylvester[E]) Dims() (int, int) { return s.m + s.n, s.m + s.n }

// Apply returns S·x for x = (u | v) with len(u) = n, len(v) = m.
func (s Sylvester[E]) Apply(f ff.Field[E], x []E) []E {
	if len(x) != s.m+s.n {
		panic("structured: Sylvester Apply dimension mismatch")
	}
	u := x[:s.n]
	v := x[s.n:]
	dim := s.m + s.n
	out := make([]E, dim)
	// Both products fit one transform length: deg(u·a), deg(v·b) < m+n.
	if s.n > 0 && s.m > 0 {
		uaNTT := make([]E, dim)
		if s.antt.convolve(f, s.A, u, 0, dim, uaNTT) && s.bntt.convolve(f, s.B, v, 0, dim, out) {
			for i := range out {
				out[i] = f.Add(out[i], uaNTT[i])
			}
			return out
		}
	}
	ua := poly.Mul(f, u, s.A)
	vb := poly.Mul(f, v, s.B)
	for i := range out {
		out[i] = f.Add(poly.Coef(f, ua, i), poly.Coef(f, vb, i))
	}
	return out
}

// Dense materializes the matrix (tests and cross-checks).
func (s Sylvester[E]) Dense(f ff.Field[E]) [][]E {
	dim := s.m + s.n
	rows := make([][]E, dim)
	for i := range rows {
		rows[i] = ff.VecZero(f, dim)
	}
	for j := 0; j < s.n; j++ {
		for i := 0; i <= s.m; i++ {
			rows[i+j][j] = s.A[i]
		}
	}
	for j := 0; j < s.m; j++ {
		for i := 0; i <= s.n; i++ {
			rows[i+j][s.n+j] = s.B[i]
		}
	}
	return rows
}
