package structured_test

import (
	"errors"
	"testing"

	"repro/internal/ff"
	"repro/internal/matrix"
	"repro/internal/structured"
	"repro/internal/wiedemann"
)

// TestGSSolverAgainstWiedemann is the differential suite the issue asks
// for: the Theorem 3 backend (Newton/Gohberg–Semencul charpoly + GS apply
// per right-hand side) must agree with the Wiedemann black-box solver on
// the same Toeplitz operator, across sizes and multiple right-hand sides.
func TestGSSolverAgainstWiedemann(t *testing.T) {
	f := ff.MustFp64(ff.PNTT62)
	for _, n := range []int{2, 5, 16, 40} {
		src := ff.NewSource(uint64(100 + n))
		tm := structured.RandomToeplitz[uint64](f, src, n, f.Modulus())
		gs, err := structured.NewGSSolver(f, tm)
		if errors.Is(err, matrix.ErrSingular) {
			continue // random draw was singular; nothing to compare
		}
		if err != nil {
			t.Fatalf("n=%d: NewGSSolver: %v", n, err)
		}
		if !gs.HasGS() {
			t.Logf("n=%d: (T⁻¹)₀₀ = 0, CH fallback in use", n)
		}
		for rhs := 0; rhs < 3; rhs++ {
			b := ff.SampleVec[uint64](f, src, n, f.Modulus())
			x := gs.SolveVec(f, b)
			// Residual check: T·x = b.
			res := tm.MulVec(f, x)
			for i := range b {
				if res[i] != b[i] {
					t.Fatalf("n=%d rhs=%d: GS solution fails residual at %d", n, rhs, i)
				}
			}
			xw, err := wiedemann.Solve[uint64](f, tm, b, src, f.Modulus(), 20)
			if err != nil {
				t.Fatalf("n=%d rhs=%d: wiedemann.Solve: %v", n, rhs, err)
			}
			for i := range x {
				if x[i] != xw[i] {
					t.Fatalf("n=%d rhs=%d: GS and Wiedemann disagree at %d", n, rhs, i)
				}
			}
		}
		// Determinant cross-check against the Wiedemann determinant.
		dw, err := wiedemann.Det[uint64](f, tm, src, f.Modulus(), 20)
		if err != nil {
			t.Fatalf("n=%d: wiedemann.Det: %v", n, err)
		}
		if gs.Det(f) != dw {
			t.Fatalf("n=%d: GS det %d vs Wiedemann det %d", n, gs.Det(f), dw)
		}
	}
}

// TestGSSolverFallbackU0Zero pins the measure-zero branch: the exchange
// matrix T = [[0,1],[1,0]] is self-inverse with (T⁻¹)₀₀ = 0, so the
// Gohberg/Semencul formula is unavailable and the solver must fall back to
// the cached Cayley–Hamilton backsolve.
func TestGSSolverFallbackU0Zero(t *testing.T) {
	f := ff.MustFp64(ff.PNTT62)
	tm := structured.NewToeplitz([]uint64{1, 0, 1}) // n=2 exchange matrix
	gs, err := structured.NewGSSolver(f, tm)
	if err != nil {
		t.Fatal(err)
	}
	if gs.HasGS() {
		t.Fatal("exchange matrix should have no GS representation")
	}
	b := []uint64{3, 9}
	x := gs.SolveVec(f, b)
	if x[0] != 9 || x[1] != 3 {
		t.Fatalf("exchange solve wrong: %v", x)
	}
}

// TestGSSolverSingular: a singular Toeplitz matrix must be reported as
// matrix.ErrSingular at construction.
func TestGSSolverSingular(t *testing.T) {
	f := ff.MustFp64(ff.PNTT62)
	tm := structured.NewToeplitz([]uint64{1, 1, 1}) // all-ones 2×2, det 0
	if _, err := structured.NewGSSolver(f, tm); !errors.Is(err, matrix.ErrSingular) {
		t.Fatalf("error = %v, want ErrSingular", err)
	}
}

// TestGSSolverMultiRHSReuse: the whole point of the backend — one charpoly,
// many right-hand sides — so hammer it and compare with structured.Solve.
func TestGSSolverMultiRHSReuse(t *testing.T) {
	f := ff.MustFp64(ff.PNTT62)
	src := ff.NewSource(777)
	n := 33
	tm := structured.RandomToeplitz[uint64](f, src, n, f.Modulus())
	gs, err := structured.NewGSSolver(f, tm)
	if errors.Is(err, matrix.ErrSingular) {
		t.Skip("singular draw")
	}
	if err != nil {
		t.Fatal(err)
	}
	for rhs := 0; rhs < 8; rhs++ {
		b := ff.SampleVec[uint64](f, src, n, f.Modulus())
		x := gs.SolveVec(f, b)
		want, err := structured.Solve(f, tm, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if x[i] != want[i] {
				t.Fatalf("rhs=%d: GS and CH solve disagree at %d", rhs, i)
			}
		}
	}
}
