package structured

import (
	"repro/internal/ff"
	"repro/internal/matrix"
)

// Solve returns x with T·x = b for a non-singular Toeplitz matrix, by the
// paper's Cayley–Hamilton deduction: with det(λI − T) = λⁿ + p₁λ^{n−1} +
// … + pₙ,
//
//	x = T⁻¹b = −(1/pₙ)·(T^{n−1}b + p₁T^{n−2}b + … + p_{n−1}b),
//
// where the Krylov vectors Tʲb cost one structured matvec each. Requires
// characteristic 0 or > n; singular T yields matrix.ErrSingular (pₙ = 0).
func Solve[E any](f ff.Field[E], t Toeplitz[E], b []E) ([]E, error) {
	n := t.N
	if len(b) != n {
		panic("structured: Solve dimension mismatch")
	}
	cp, err := CharPoly(f, t)
	if err != nil {
		return nil, err
	}
	pn := cp[0] // pₙ = constant term
	if f.IsZero(pn) {
		return nil, matrix.ErrSingular
	}
	// Krylov vectors b, Tb, …, T^{n−1}b.
	krylov := make([][]E, n)
	krylov[0] = ff.VecCopy(b)
	for j := 1; j < n; j++ {
		krylov[j] = t.MulVec(f, krylov[j-1])
	}
	// x = −(1/pₙ)·Σ_{j=0}^{n−1} p_{n−1−j}·Tʲb with p₀ = 1, p_k = cp[n−k].
	acc := ff.VecZero(f, n)
	for j := 0; j < n; j++ {
		// p_{n−1−j} = cp[n−(n−1−j)] = cp[j+1]
		ff.VecMulAddInto(f, acc, cp[j+1], krylov[j])
	}
	scale, err := f.Div(f.Neg(f.One()), pn)
	if err != nil {
		return nil, err
	}
	ff.VecScaleInto(f, acc, scale, acc)
	return acc, nil
}

// SolveParallel is Solve with the Krylov vectors computed by the doubling
// argument of the paper's display (9) on the dense form of T, using the
// supplied matrix-multiplication black box: this is the variant Theorem 4
// invokes ("Again from (9) we deduce that the circuit complexity of this
// step is (10)"), with O(n^ω log n) size and O((log n)²) depth where the
// iterative Solve would have depth Ω(n). The accumulation is a balanced
// vector tree.
func SolveParallel[E any](f ff.Field[E], mul matrix.Multiplier[E], t Toeplitz[E], b []E) ([]E, error) {
	n := t.N
	if len(b) != n {
		panic("structured: SolveParallel dimension mismatch")
	}
	cp, err := CharPoly(f, t)
	if err != nil {
		return nil, err
	}
	pn := cp[0]
	if f.IsZero(pn) {
		return nil, matrix.ErrSingular
	}
	k := matrix.KrylovDoubling(f, mul, t.Dense(f), b, n)
	var acc []E
	if _, fused := ff.KernelsOf[E](f); fused {
		// Row i of the Krylov matrix holds (Tʲb)_i for j = 0..n−1, so each
		// entry of the accumulation is one contiguous fused dot against the
		// coefficient vector — no per-column copies, no intermediate slices.
		acc = make([]E, n)
		for i := 0; i < n; i++ {
			acc[i] = ff.DotFused(f, k.Data[i*n:(i+1)*n], cp[1:n+1])
		}
	} else {
		// Balanced vector tree: this is the O(log n)-depth accumulation the
		// circuit trace of Theorem 4 must see.
		scaled := make([][]E, n)
		for j := 0; j < n; j++ {
			scaled[j] = ff.VecScale(f, cp[j+1], k.Col(j))
		}
		acc = ff.SumVecs(f, scaled)
	}
	scale, err := f.Div(f.Neg(f.One()), pn)
	if err != nil {
		return nil, err
	}
	ff.VecScaleInto(f, acc, scale, acc)
	return acc, nil
}

// SolveHankel solves H·x = b for a non-singular Hankel matrix through the
// mirror Toeplitz matrix: H = J·T ⇒ T·x = J·b.
func SolveHankel[E any](f ff.Field[E], h Hankel[E], b []E) ([]E, error) {
	n := h.N
	if len(b) != n {
		panic("structured: SolveHankel dimension mismatch")
	}
	jb := make([]E, n)
	for i := range jb {
		jb[i] = b[n-1-i]
	}
	return Solve(f, h.Mirror(), jb)
}

// InverseColumns returns the first and last columns of T⁻¹ for a
// non-singular Toeplitz matrix (by two Solve calls), packaged as a
// Gohberg/Semencul representation of the whole inverse.
func InverseColumns[E any](f ff.Field[E], t Toeplitz[E]) (GS[E], error) {
	n := t.N
	e0 := ff.VecZero(f, n)
	e0[0] = f.One()
	en := ff.VecZero(f, n)
	en[n-1] = f.One()
	u, err := Solve(f, t, e0)
	if err != nil {
		return GS[E]{}, err
	}
	w, err := Solve(f, t, en)
	if err != nil {
		return GS[E]{}, err
	}
	return GS[E]{U: u, W: w}, nil
}
