package structured

import (
	"testing"
	"testing/quick"

	"repro/internal/charpoly"
	"repro/internal/ff"
	"repro/internal/poly"
)

var qf = ff.MustFp64(ff.P31)

func mkToeplitz(seed []uint64, n int) Toeplitz[uint64] {
	d := make([]uint64, 2*n-1)
	for i := range d {
		d[i] = qf.Elem(at(seed, i))
	}
	return Toeplitz[uint64]{N: n, D: d}
}

func at(seed []uint64, i int) uint64 {
	if len(seed) == 0 {
		return uint64(i)*0x9e3779b97f4a7c15 + 13
	}
	return seed[i%len(seed)] + uint64(i)*0x9e3779b97f4a7c15
}

func TestQuickToeplitzLinear(t *testing.T) {
	prop := func(sd, sx, sy []uint64, nRaw uint8, c uint64) bool {
		n := 1 + int(nRaw%10)
		tp := mkToeplitz(sd, n)
		x := make([]uint64, n)
		y := make([]uint64, n)
		for i := range x {
			x[i], y[i] = qf.Elem(at(sx, i)), qf.Elem(at(sy, i))
		}
		cv := qf.Elem(c)
		// T(c·x + y) = c·T(x) + T(y)
		lhs := tp.MulVec(qf, ff.VecAdd[uint64](qf, ff.VecScale[uint64](qf, cv, x), y))
		rhs := ff.VecAdd[uint64](qf, ff.VecScale[uint64](qf, cv, tp.MulVec(qf, x)), tp.MulVec(qf, y))
		return ff.VecEqual[uint64](qf, lhs, rhs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickToeplitzMatchesDense(t *testing.T) {
	prop := func(sd, sx []uint64, nRaw uint8) bool {
		n := 1 + int(nRaw%12)
		tp := mkToeplitz(sd, n)
		x := make([]uint64, n)
		for i := range x {
			x[i] = qf.Elem(at(sx, i))
		}
		return ff.VecEqual[uint64](qf, tp.MulVec(qf, x), tp.Dense(qf).MulVec(qf, x))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTheorem3MatchesBerkowitz(t *testing.T) {
	prop := func(sd []uint64, nRaw uint8) bool {
		n := 1 + int(nRaw%9)
		tp := mkToeplitz(sd, n)
		got, err := CharPoly[uint64](qf, tp)
		if err != nil {
			return false
		}
		want := charpoly.CharPolyBerkowitz[uint64](qf, tp.Dense(qf))
		return poly.Equal[uint64](qf, got, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHankelMirror(t *testing.T) {
	prop := func(sd, sx []uint64, nRaw uint8) bool {
		n := 1 + int(nRaw%10)
		d := make([]uint64, 2*n-1)
		for i := range d {
			d[i] = qf.Elem(at(sd, i))
		}
		h := Hankel[uint64]{N: n, D: d}
		x := make([]uint64, n)
		for i := range x {
			x[i] = qf.Elem(at(sx, i))
		}
		// H·x equals J·(Mirror·x): the mirror relation as an operator.
		tx := h.Mirror().MulVec(qf, x)
		jx := make([]uint64, n)
		for i := range jx {
			jx[i] = tx[n-1-i]
		}
		return ff.VecEqual[uint64](qf, h.MulVec(qf, x), jx)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSolveRoundTrip(t *testing.T) {
	prop := func(sd, sb []uint64, nRaw uint8) bool {
		n := 1 + int(nRaw%8)
		tp := mkToeplitz(sd, n)
		b := make([]uint64, n)
		for i := range b {
			b[i] = qf.Elem(at(sb, i))
		}
		x, err := Solve[uint64](qf, tp, b)
		if err != nil {
			return true // singular draw: correctly reported
		}
		return ff.VecEqual[uint64](qf, tp.MulVec(qf, x), b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
