// Package structured implements the Toeplitz machinery of Kaltofen–Pan §3:
// Toeplitz and Hankel matrices with matrix-vector products by polynomial
// multiplication, the Gohberg/Semencul implicit-inverse representation
// (the paper's Figure 1), the Newton iteration X_i = X_{i−1}(2I − BX_{i−1})
// on B = I − λT that carries only the first and last columns of the
// inverse, the resulting characteristic-polynomial algorithm (Theorem 3),
// and non-singular Toeplitz/Hankel system solvers via Cayley–Hamilton.
package structured

import (
	"sync"

	"repro/internal/ff"
	"repro/internal/matrix"
	"repro/internal/poly"
)

// nttCache is the persistent transform state shared by every copy of a
// structured matrix built through a constructor: the plan and the forward
// transform of the 2n−1 defining entries, computed once on the first apply
// so the 2n Krylov products of a solve each pay one forward transform of x,
// one pointwise product and one inverse transform — O(n log n) — instead of
// a fresh O(n log n)-with-full-setup poly.Mul. Built lazily because the
// field is an argument of MulVec, not of the constructor; fields without a
// fused kernel (wrappers, circuits, FpBig, the p = 2 sentinel and primes of
// small 2-adicity) leave ok = false and keep the schoolbook path, so traced
// circuit structure and op counts are untouched.
type nttCache[E any] struct {
	once sync.Once
	plan *poly.NTTPlan[E]
	dhat []E
	ok   bool
}

// convolve fills the cache on first use and, when the field supports the
// fused transform, writes coefficients [lo, hi) of D(z)·x(z) into out,
// reporting whether it did.
func (c *nttCache[E]) convolve(f ff.Field[E], d, x []E, lo, hi int, out []E) bool {
	if c == nil {
		return false
	}
	c.once.Do(func() {
		plan, err := poly.NewNTTPlan(f, len(d)+len(x)-1)
		if err != nil {
			return // typed ErrNoRootOfUnity / ErrNoNTTKernel: schoolbook fallback
		}
		c.plan = plan
		c.dhat = plan.Transform(d)
		c.ok = true
	})
	if !c.ok {
		return false
	}
	c.plan.ConvolveHat(c.dhat, x, lo, hi, out)
	return true
}

// Toeplitz is an n×n Toeplitz matrix, stored by its 2n−1 defining entries:
//
//	T[i][j] = D[n−1+i−j]
//
// so D[0] is the top-right corner and D[2n−2] the bottom-left, matching the
// paper's display (4) with D = (a₀, a₁, …, a_{2n−2}).
type Toeplitz[E any] struct {
	N int
	D []E

	// ntt, when non-nil, holds the lazily-built persistent transform of D
	// (shared by copies of this value). Zero-value literals skip it and use
	// the schoolbook product; the constructors below always attach one.
	ntt *nttCache[E]
}

// NewToeplitz builds an n×n Toeplitz matrix from its 2n−1 entries.
func NewToeplitz[E any](d []E) Toeplitz[E] {
	if len(d)%2 == 0 {
		panic("structured: Toeplitz needs 2n−1 entries")
	}
	return Toeplitz[E]{N: (len(d) + 1) / 2, D: d, ntt: &nttCache[E]{}}
}

// RandomToeplitz draws the 2n−1 entries uniformly from the canonical subset.
func RandomToeplitz[E any](f ff.Field[E], src *ff.Source, n int, subset uint64) Toeplitz[E] {
	return NewToeplitz(ff.SampleVec(f, src, 2*n-1, subset))
}

// At returns T[i][j].
func (t Toeplitz[E]) At(i, j int) E { return t.D[t.N-1+i-j] }

// Dense materializes the matrix.
func (t Toeplitz[E]) Dense(f ff.Field[E]) *matrix.Dense[E] {
	return matrix.ToeplitzDense(f, t.D)
}

// Leading returns the leading principal k×k submatrix, itself Toeplitz:
// its defining entries are D[n−k : n+k−1].
func (t Toeplitz[E]) Leading(k int) Toeplitz[E] {
	if k < 1 || k > t.N {
		panic("structured: Leading out of range")
	}
	return Toeplitz[E]{N: k, D: t.D[t.N-k : t.N+k-1], ntt: &nttCache[E]{}}
}

// MulVec returns T·x with one polynomial multiplication: the i-th output
// coordinate is the coefficient of z^{n−1+i} in D(z)·x(z) (cost O(M(n))
// instead of n², the reduction the paper spells out before display (5)).
// On fields with a fused NTT kernel the transform of D is cached in the
// struct, so each product is one forward transform + pointwise + inverse.
func (t Toeplitz[E]) MulVec(f ff.Field[E], x []E) []E {
	if len(x) != t.N {
		panic("structured: MulVec dimension mismatch")
	}
	out := make([]E, t.N)
	if t.ntt.convolve(f, t.D, x, t.N-1, 2*t.N-1, out) {
		return out
	}
	prod := poly.Mul(f, t.D, x)
	for i := range out {
		out[i] = poly.Coef(f, prod, t.N-1+i)
	}
	return out
}

// Dims implements matrix.BlackBox.
func (t Toeplitz[E]) Dims() (int, int) { return t.N, t.N }

// Apply implements matrix.BlackBox.
func (t Toeplitz[E]) Apply(f ff.Field[E], x []E) []E { return t.MulVec(f, x) }

// Transpose returns Tᵀ, the Toeplitz matrix with reversed defining entries.
func (t Toeplitz[E]) Transpose() Toeplitz[E] {
	rev := make([]E, len(t.D))
	for i := range rev {
		rev[i] = t.D[len(t.D)-1-i]
	}
	return Toeplitz[E]{N: t.N, D: rev, ntt: &nttCache[E]{}}
}

// Hankel is an n×n Hankel matrix stored by its 2n−1 anti-diagonal entries:
// H[i][j] = D[i+j]. Its mirror image across a horizontal line is Toeplitz,
// the observation the paper uses in §4 to compute det(H) with the Toeplitz
// characteristic-polynomial circuit.
type Hankel[E any] struct {
	N int
	D []E

	// ntt: see Toeplitz — lazily-built persistent transform of D, attached
	// by the constructors, skipped by zero-value literals.
	ntt *nttCache[E]
}

// NewHankel builds an n×n Hankel matrix from its 2n−1 entries.
func NewHankel[E any](d []E) Hankel[E] {
	if len(d)%2 == 0 {
		panic("structured: Hankel needs 2n−1 entries")
	}
	return Hankel[E]{N: (len(d) + 1) / 2, D: d, ntt: &nttCache[E]{}}
}

// At returns H[i][j].
func (h Hankel[E]) At(i, j int) E { return h.D[i+j] }

// Dense materializes the matrix.
func (h Hankel[E]) Dense(f ff.Field[E]) *matrix.Dense[E] {
	return matrix.HankelDense(f, h.D)
}

// Mirror returns the Toeplitz matrix T with H = J·T, where J is the
// exchange (row-reversal) matrix: T's defining entries are H's reversed.
func (h Hankel[E]) Mirror() Toeplitz[E] {
	rev := make([]E, len(h.D))
	for i := range rev {
		rev[i] = h.D[len(h.D)-1-i]
	}
	return Toeplitz[E]{N: h.N, D: rev, ntt: &nttCache[E]{}}
}

// MulVec returns H·x: coordinate i is the coefficient of z^{n−1+i} in
// D(z)·x̃(z) with x̃ the reversal of x. Like Toeplitz.MulVec, the transform
// of D is cached when the field has a fused NTT kernel.
func (h Hankel[E]) MulVec(f ff.Field[E], x []E) []E {
	if len(x) != h.N {
		panic("structured: MulVec dimension mismatch")
	}
	xr := make([]E, h.N)
	for i := range xr {
		xr[i] = x[h.N-1-i]
	}
	out := make([]E, h.N)
	if h.ntt.convolve(f, h.D, xr, h.N-1, 2*h.N-1, out) {
		return out
	}
	prod := poly.Mul(f, h.D, xr)
	for i := range out {
		out[i] = poly.Coef(f, prod, h.N-1+i)
	}
	return out
}

// Dims implements matrix.BlackBox.
func (h Hankel[E]) Dims() (int, int) { return h.N, h.N }

// Apply implements matrix.BlackBox.
func (h Hankel[E]) Apply(f ff.Field[E], x []E) []E { return h.MulVec(f, x) }
