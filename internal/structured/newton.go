package structured

import (
	"repro/internal/ff"
	"repro/internal/poly"
)

// Newton iteration of the paper's display (3) specialized to B = I − λT
// over truncated power series (display (6)): maintain only the first and
// last columns u, w of X_i ≈ B⁻¹, reconstructing the action of X_{i−1}
// through the Gohberg/Semencul representation. Each doubling step costs a
// constant number of "bivariate" multiplications — polynomial products
// whose coefficients are themselves truncated series — exactly as the paper
// bounds via Cantor–Kaltofen.
//
// Soundness of the truncated columns: the entries of the GS reconstruction
// are rational in u, w with unit denominator u₀, so columns correct mod
// λ^p reconstruct an operator X ≡ B⁻¹ (mod λ^p), and the Newton step
// X(2I − BX) is then ≡ B⁻¹ (mod λ^{2p}).

// SeriesVec is a vector whose entries are truncated power series.
type SeriesVec[E any] = [][]E

// InverseSeriesColumns returns u, w — the first and last columns of
// (I − λT)⁻¹ mod λᵏ — by ⌈log₂ k⌉ Newton doubling steps, together with the
// power-series inverse of u₀ at final precision. It never divides except
// by series with constant term 1 (X₀ = I makes u₀(0) = 1), matching the
// paper's remark that "(T(λ)⁻¹)₁,₁ mod λ^i ≠ 0 for any i ≥ 1".
//
// The inverse of u₀ is *maintained* across iterations with two extra
// scalar Newton steps per round — the paper's "expansion for the inverse
// of u₁^{(i)} ... can be obtained from the first 2^i terms of this
// expansion and from u₁^{(i)} with 2 Newton iteration steps". Recomputing
// it from scratch each round would stack the series-inversion log-loop on
// top of the doubling loop and push the circuit depth to Θ((log n)³).
func InverseSeriesColumns[E any](f ff.Field[E], t Toeplitz[E], k int) (u, w SeriesVec[E], u0inv []E, err error) {
	n := t.N
	// X₀ = I: u = e₀, w = e_{n−1} as constant series; 1/u₀ = 1.
	u = make(SeriesVec[E], n)
	w = make(SeriesVec[E], n)
	s1 := poly.NewSeries(f, 1)
	for i := 0; i < n; i++ {
		u[i], w[i] = s1.Zero(), s1.Zero()
	}
	u[0], w[n-1] = s1.One(), s1.One()
	u0inv = s1.One()

	for prec := 1; prec < k; {
		prev := prec
		prec *= 2
		if prec > k {
			prec = k
		}
		s := poly.NewSeries(f, prec)
		b := seriesToeplitz(s, t, prec)
		// Middle-product form: the residual e − B·col of a column that is
		// correct mod λ^prev is exactly divisible by λ^prev, so X_{i−1}
		// only ever acts on the quotient — at the complementary precision
		// prec − prev, with its GS columns truncated to match. This halves
		// the four GS bivariate products of each column step (and collapses
		// them entirely on the clamped final round, where prec − prev is
		// tiny), without changing a single output coefficient.
		sh := poly.NewSeries(f, prec-prev)
		g := GS[[]E]{U: truncSeriesVec(sh, u), W: truncSeriesVec(sh, w)}
		ui := poly.TruncDeg(f, u0inv, sh.K)
		uNew := newtonColumn(s, sh, b, g, u, ui, prev)
		wNew := newtonColumn(s, sh, b, g, w, ui, prev)
		u, w = uNew, wNew
		// Refresh 1/u₀ to the new precision: y ← y(2 − u₀y), twice.
		two := s.FromInt64(2)
		for step := 0; step < 2; step++ {
			u0inv = s.Mul(u0inv, s.Sub(two, s.Mul(u[0], u0inv)))
		}
	}
	return u, w, u0inv, nil
}

// seriesToeplitz lifts B = I − λT into the series ring: entry series
// δ_{m,n−1} − λ·D[m].
func seriesToeplitz[E any](s poly.Series[E], t Toeplitz[E], prec int) Toeplitz[[]E] {
	d := make(SeriesVec[E], len(t.D))
	for m := range d {
		var c0 E
		if m == t.N-1 {
			c0 = s.F.One()
		} else {
			c0 = s.F.Zero()
		}
		d[m] = s.LambdaMinus(c0, s.F.Neg(t.D[m]))
	}
	return Toeplitz[[]E]{N: t.N, D: d}
}

// newtonColumn advances one column of the inverse by the residual form of
// the Newton step, algebraically equal to X_{i−1}(2I − B·X_{i−1})e:
//
//	col_new = col + λ^shift · X_{i−1}·((e − B·col)/λ^shift)
//
// where X_{i−1} is applied through the GS representation with the
// maintained u₀-inverse. The residual form needs only X_{i−1} ≡ B⁻¹
// (mod λ^shift): the error of col_new is (X_{i−1}B − I)(B⁻¹e − col) ≡ 0
// (mod λ^{2·shift}), a product of two λ^shift-small factors. col is exact
// mod λ^shift, so the residual's low shift coefficients vanish identically
// and the division is a plain coefficient shift; the GS apply then runs in
// the smaller ring sh = K[[λ]]/λ^{prec−shift} (its result below λ^shift of
// the correction is all that survives the final truncation). The unit
// vector e is recovered as the constant term of col (X₀ = I).
func newtonColumn[E any](s, sh poly.Series[E], b Toeplitz[[]E], g GS[[]E], col SeriesVec[E], u0inv []E, shift int) SeriesVec[E] {
	n := b.N
	res := b.MulVec(s, col)
	rhat := make(SeriesVec[E], n)
	for i := 0; i < n; i++ {
		e := constTerm(s, col[i]) // 0 or 1
		r := s.Sub(e, res[i])
		if len(r) <= shift {
			rhat[i] = nil
		} else {
			rhat[i] = r[shift:]
		}
	}
	corr := g.ApplyWithInv(sh, rhat, u0inv)
	out := make(SeriesVec[E], n)
	for i := 0; i < n; i++ {
		out[i] = splice(s, col[i], corr[i], shift)
	}
	return out
}

// truncSeriesVec truncates every entry of v to the ring s's precision.
func truncSeriesVec[E any](s poly.Series[E], v SeriesVec[E]) SeriesVec[E] {
	out := make(SeriesVec[E], len(v))
	for i := range v {
		out[i] = poly.TruncDeg(s.F, v[i], s.K)
	}
	return out
}

// splice returns col + λ^shift·corr for deg col < shift ≤ shift + deg corr
// < s.K: the supports are disjoint, so the sum is a concatenation with zero
// padding in between — no field operations, exactly what a traced circuit
// would fold the coefficient-wise addition down to.
func splice[E any](s poly.Series[E], col, corr []E, shift int) []E {
	if len(corr) == 0 {
		return col
	}
	out := make([]E, shift+len(corr))
	copy(out, col)
	for i := len(col); i < shift; i++ {
		out[i] = s.F.Zero()
	}
	copy(out[shift:], corr)
	return out
}

func constTerm[E any](s poly.Series[E], a []E) []E {
	if len(a) == 0 {
		return s.Zero()
	}
	return poly.Constant(s.F, a[0])
}

// TraceSeries returns Trace((I − λT)⁻¹) mod λᵏ = Σ_{i≥0} Trace(Tⁱ)·λⁱ,
// the generating function of the power sums the Leverrier step consumes.
func TraceSeries[E any](f ff.Field[E], t Toeplitz[E], k int) ([]E, error) {
	u, w, u0inv, err := InverseSeriesColumns(f, t, k)
	if err != nil {
		return nil, err
	}
	s := poly.NewSeries(f, k)
	g := GS[[]E]{U: u, W: w}
	return g.TraceWithInv(s, u0inv), nil
}
