package structured

import (
	"repro/internal/ff"
	"repro/internal/poly"
)

// Gohberg/Semencul representation (the paper's Figure 1 and display (5)):
// a non-singular Toeplitz matrix T with (T⁻¹)₀₀ ≠ 0 has
//
//	u₀·T⁻¹ = L(u)·U(J·w) − L(Z·w)·U(J·Z·u)
//
// where u is the first column of T⁻¹, w its last column, L(a) the lower
// triangular Toeplitz matrix with first column a, U(r) the upper triangular
// Toeplitz matrix with first row r, J the reversal and Z the down-shift —
// so "T⁻¹ is fully determined by the entries of its first and last"
// columns. Applying T⁻¹ to a vector costs four triangular-Toeplitz products
// (each one polynomial multiplication) and one division by u₀.
//
// All functions are generic over the field, so they serve both concrete
// coefficients and truncated power series (the Newton iteration of
// newton.go runs them over poly.Series).

// GS holds the two defining columns of a Toeplitz inverse.
type GS[E any] struct {
	// U is the first column of T⁻¹; U[0] must be invertible.
	U []E
	// W is the last column of T⁻¹.
	W []E
}

// lowerMulVec returns L(a)·x: (L·x)_i = Σ_{j≤i} a[i−j]·x[j], the low n
// coefficients of a(z)·x(z).
func lowerMulVec[E any](f ff.Field[E], a, x []E) []E {
	prod := poly.Mul(f, a, x)
	out := make([]E, len(x))
	for i := range out {
		out[i] = poly.Coef(f, prod, i)
	}
	return out
}

// upperMulVec returns U(r)·x for first row r (r[0] on the diagonal):
// (U·x)_i = Σ_k r[k]·x[i+k], read off a product against the reversed x.
func upperMulVec[E any](f ff.Field[E], r, x []E) []E {
	n := len(x)
	xr := make([]E, n)
	for i := range xr {
		xr[i] = x[n-1-i]
	}
	prod := poly.Mul(f, xr, r)
	out := make([]E, n)
	for i := range out {
		out[i] = poly.Coef(f, prod, n-1-i)
	}
	return out
}

// Apply returns T⁻¹·x from the representation, without materializing T⁻¹.
func (g GS[E]) Apply(f ff.Field[E], x []E) ([]E, error) {
	u0inv, err := f.Inv(g.U[0])
	if err != nil {
		return nil, err
	}
	return g.ApplyWithInv(f, x, u0inv), nil
}

// ApplyWithInv is Apply with the inverse of U[0] supplied by the caller —
// the form the Newton iteration uses, which maintains that power-series
// inverse incrementally across iterations instead of recomputing it (the
// paper's "2 Newton iteration steps" remark; recomputation would add a
// log-factor to the circuit depth).
func (g GS[E]) ApplyWithInv(f ff.Field[E], x []E, u0inv E) []E {
	n := len(g.U)
	if len(x) != n {
		panic("structured: GS.Apply dimension mismatch")
	}
	// B·x with B = U(J·w): first row (w_{n−1}, …, w₀).
	jw := make([]E, n)
	for i := range jw {
		jw[i] = g.W[n-1-i]
	}
	t1 := lowerMulVec(f, g.U, upperMulVec(f, jw, x))

	// D·x with D = U(J·Z·u): first row (0, u_{n−1}, …, u₁).
	jzu := make([]E, n)
	jzu[0] = f.Zero()
	for i := 1; i < n; i++ {
		jzu[i] = g.U[n-i]
	}
	// C = L(Z·w): first column (0, w₀, …, w_{n−2}).
	zw := make([]E, n)
	zw[0] = f.Zero()
	for i := 1; i < n; i++ {
		zw[i] = g.W[i-1]
	}
	t2 := lowerMulVec(f, zw, upperMulVec(f, jzu, x))

	out := make([]E, n)
	for i := range out {
		out[i] = f.Mul(f.Sub(t1[i], t2[i]), u0inv)
	}
	return out
}

// Trace returns Trace(T⁻¹) from the representation:
//
//	Trace(T⁻¹) = (1/u₀)·Σ_{d=0}^{n−1} (n − 2d)·u[d]·w[n−1−d]
//
// which is the paper's formula "Trace(T⁻¹) = (1/u₁)(n·u₁v₁ + (n−2)u₂v₂ +
// … + (−n+2)uₙvₙ)" in 0-based indexing. The sum is balanced for circuit
// depth.
func (g GS[E]) Trace(f ff.Field[E]) (E, error) {
	var z E
	u0inv, err := f.Inv(g.U[0])
	if err != nil {
		return z, err
	}
	return g.TraceWithInv(f, u0inv), nil
}

// TraceWithInv is Trace with the inverse of U[0] supplied by the caller.
func (g GS[E]) TraceWithInv(f ff.Field[E], u0inv E) E {
	n := len(g.U)
	terms := make([]E, n)
	for d := 0; d < n; d++ {
		coef := f.FromInt64(int64(n - 2*d))
		terms[d] = f.Mul(coef, f.Mul(g.U[d], g.W[n-1-d]))
	}
	return f.Mul(ff.SumTree(f, terms), u0inv)
}

// Dense materializes T⁻¹ by applying the representation to the standard
// basis (tests and diagnostics only; the algorithms never form it).
func (g GS[E]) Dense(f ff.Field[E]) ([][]E, error) {
	n := len(g.U)
	cols := make([][]E, n)
	for j := 0; j < n; j++ {
		e := ff.VecZero(f, n)
		e[j] = f.One()
		c, err := g.Apply(f, e)
		if err != nil {
			return nil, err
		}
		cols[j] = c
	}
	rows := make([][]E, n)
	for i := range rows {
		rows[i] = make([]E, n)
		for j := range rows[i] {
			rows[i][j] = cols[j][i]
		}
	}
	return rows, nil
}
