package structured

import (
	"testing"

	"repro/internal/charpoly"
	"repro/internal/ff"
	"repro/internal/matrix"
	"repro/internal/poly"
)

var fp = ff.MustFp64(ff.P31)

func TestToeplitzMulVec(t *testing.T) {
	f := fp
	src := ff.NewSource(71)
	for _, n := range []int{1, 2, 3, 8, 17, 40} {
		tp := RandomToeplitz[uint64](f, src, n, ff.P31)
		x := ff.SampleVec[uint64](f, src, n, ff.P31)
		want := tp.Dense(f).MulVec(f, x)
		if !ff.VecEqual[uint64](f, tp.MulVec(f, x), want) {
			t.Fatalf("n=%d: Toeplitz MulVec disagrees with dense", n)
		}
	}
}

func TestHankelMulVecAndMirror(t *testing.T) {
	f := fp
	src := ff.NewSource(72)
	for _, n := range []int{1, 2, 5, 12} {
		h := Hankel[uint64]{N: n, D: ff.SampleVec[uint64](f, src, 2*n-1, ff.P31)}
		x := ff.SampleVec[uint64](f, src, n, ff.P31)
		want := h.Dense(f).MulVec(f, x)
		if !ff.VecEqual[uint64](f, h.MulVec(f, x), want) {
			t.Fatalf("n=%d: Hankel MulVec disagrees with dense", n)
		}
		// H = J·Mirror: row i of H is row n−1−i of the mirror Toeplitz.
		tm := h.Mirror().Dense(f)
		hd := h.Dense(f)
		for i := 0; i < n; i++ {
			if !ff.VecEqual[uint64](f, hd.Row(i), tm.Row(n-1-i)) {
				t.Fatalf("n=%d: mirror relation broken at row %d", n, i)
			}
		}
	}
}

func TestToeplitzLeadingTranspose(t *testing.T) {
	f := fp
	src := ff.NewSource(73)
	tp := RandomToeplitz[uint64](f, src, 7, ff.P31)
	d := tp.Dense(f)
	for k := 1; k <= 7; k++ {
		if !tp.Leading(k).Dense(f).Equal(f, d.Leading(k)) {
			t.Fatalf("Leading(%d) mismatch", k)
		}
	}
	if !tp.Transpose().Dense(f).Equal(f, d.Transpose()) {
		t.Fatal("Transpose mismatch")
	}
}

// nonsingularToeplitz draws Toeplitz matrices until one is invertible with
// (T⁻¹)₀₀ ≠ 0 (needed by the GS representation), returning it with its
// dense inverse.
func nonsingularToeplitz(t *testing.T, src *ff.Source, n int) (Toeplitz[uint64], *matrix.Dense[uint64]) {
	t.Helper()
	f := fp
	for {
		tp := RandomToeplitz[uint64](f, src, n, ff.P31)
		inv, err := matrix.Inverse[uint64](f, tp.Dense(f))
		if err != nil {
			continue
		}
		if f.IsZero(inv.At(0, 0)) {
			continue
		}
		return tp, inv
	}
}

func TestGohbergSemencul(t *testing.T) {
	f := fp
	src := ff.NewSource(74)
	for _, n := range []int{1, 2, 3, 5, 9, 16} {
		tp, inv := nonsingularToeplitz(t, src, n)
		g := GS[uint64]{U: inv.Col(0), W: inv.Col(n - 1)}
		// Reconstruction must equal the dense inverse exactly.
		rows, err := g.Dense(f)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if !ff.VecEqual[uint64](f, rows[i], inv.Row(i)) {
				t.Fatalf("n=%d: GS reconstruction differs at row %d:\ngot  %s\nwant %s",
					n, i, ff.VecString[uint64](f, rows[i]), ff.VecString[uint64](f, inv.Row(i)))
			}
		}
		// Apply on a random vector.
		x := ff.SampleVec[uint64](f, src, n, ff.P31)
		got, err := g.Apply(f, x)
		if err != nil {
			t.Fatal(err)
		}
		if !ff.VecEqual[uint64](f, got, inv.MulVec(f, x)) {
			t.Fatalf("n=%d: GS.Apply differs from dense inverse apply", n)
		}
		// Trace formula.
		tr, err := g.Trace(f)
		if err != nil {
			t.Fatal(err)
		}
		if tr != inv.Trace(f) {
			t.Fatalf("n=%d: GS.Trace = %d, dense trace = %d", n, tr, inv.Trace(f))
		}
		// Applying T then T⁻¹ round-trips.
		y, err := g.Apply(f, tp.MulVec(f, x))
		if err != nil {
			t.Fatal(err)
		}
		if !ff.VecEqual[uint64](f, y, x) {
			t.Fatalf("n=%d: GS(T·x) != x", n)
		}
	}
}

func TestInverseSeriesColumns(t *testing.T) {
	f := fp
	src := ff.NewSource(75)
	for _, n := range []int{1, 2, 3, 6, 10} {
		tp := RandomToeplitz[uint64](f, src, n, ff.P31)
		k := n + 1
		u, w, u0inv, err := InverseSeriesColumns[uint64](f, tp, k)
		if err != nil {
			t.Fatal(err)
		}
		// The maintained inverse matches a fresh series inversion of u₀.
		s := poly.NewSeries[uint64](f, k)
		fresh, err := s.Inv(u[0])
		if err != nil {
			t.Fatal(err)
		}
		if !s.Equal(u0inv, fresh) {
			t.Fatalf("n=%d: maintained u₀ inverse diverged from fresh inversion", n)
		}
		// Ground truth: (I − λT)⁻¹ = Σ λⁱTⁱ, so column 0 mod λᵏ is
		// Σ λⁱ·(Tⁱe₀) and column n−1 is Σ λⁱ·(Tⁱe_{n−1}).
		e0 := ff.VecZero[uint64](f, n)
		e0[0] = f.One()
		en := ff.VecZero[uint64](f, n)
		en[n-1] = f.One()
		for name, tc := range map[string]struct {
			col SeriesVec[uint64]
			e   []uint64
		}{"first": {u, e0}, "last": {w, en}} {
			v := tc.e
			for i := 0; i < k; i++ {
				for row := 0; row < n; row++ {
					if poly.Coef[uint64](f, tc.col[row], i) != v[row] {
						t.Fatalf("n=%d: %s column coefficient λ^%d row %d wrong", n, name, i, row)
					}
				}
				v = tp.MulVec(f, v)
			}
		}
	}
}

func TestTraceSeriesMatchesPowerTraces(t *testing.T) {
	f := fp
	src := ff.NewSource(76)
	for _, n := range []int{1, 2, 4, 8, 13} {
		tp := RandomToeplitz[uint64](f, src, n, ff.P31)
		k := n + 1
		tr, err := TraceSeries[uint64](f, tp, k)
		if err != nil {
			t.Fatal(err)
		}
		if poly.Coef[uint64](f, tr, 0) != f.FromInt64(int64(n)) {
			t.Fatalf("n=%d: Trace(T⁰) != n", n)
		}
		s := charpoly.PowerTraces[uint64](f, matrix.Classical[uint64]{}, tp.Dense(f), n)
		for i := 1; i <= n; i++ {
			if poly.Coef[uint64](f, tr, i) != s[i-1] {
				t.Fatalf("n=%d: Trace(T^%d) mismatch", n, i)
			}
		}
	}
}

func TestCharPolyToeplitz(t *testing.T) {
	f := fp
	src := ff.NewSource(77)
	for _, n := range []int{1, 2, 3, 5, 8, 12, 20} {
		tp := RandomToeplitz[uint64](f, src, n, ff.P31)
		got, err := CharPoly[uint64](f, tp)
		if err != nil {
			t.Fatal(err)
		}
		want := charpoly.CharPolyBerkowitz[uint64](f, tp.Dense(f))
		if !poly.Equal[uint64](f, got, want) {
			t.Fatalf("n=%d: Theorem 3 charpoly %s != Berkowitz %s", n,
				poly.String[uint64](f, got), poly.String[uint64](f, want))
		}
		// Determinant agrees with LU.
		d, err := Det[uint64](f, tp)
		if err != nil {
			t.Fatal(err)
		}
		lu, err := matrix.Det[uint64](f, tp.Dense(f))
		if err != nil {
			t.Fatal(err)
		}
		if d != lu {
			t.Fatalf("n=%d: Det = %d, LU = %d", n, d, lu)
		}
	}
}

func TestCharPolySmallChar(t *testing.T) {
	for _, p := range []uint64{2, 3, 5} {
		f := ff.MustFp64(p)
		src := ff.NewSource(78 + p)
		for _, n := range []int{1, 2, 4, 7} {
			tp := RandomToeplitz[uint64](f, src, n, p)
			got, err := CharPolySmallChar[uint64](f, tp)
			if err != nil {
				t.Fatal(err)
			}
			want := charpoly.CharPolyBerkowitz[uint64](f, tp.Dense(f))
			if !poly.Equal[uint64](f, got, want) {
				t.Fatalf("F_%d n=%d: small-char charpoly %s != Berkowitz %s", p, n,
					poly.String[uint64](f, got), poly.String[uint64](f, want))
			}
			// Theorem 3 route must refuse when char ≤ n.
			if uint64(n) >= p {
				if _, err := CharPoly[uint64](f, tp); err != charpoly.ErrSmallCharacteristic {
					t.Fatalf("F_%d n=%d: CharPoly err = %v, want ErrSmallCharacteristic", p, n, err)
				}
			}
		}
	}
}

func TestDetHankel(t *testing.T) {
	f := fp
	src := ff.NewSource(80)
	for _, n := range []int{1, 2, 3, 6, 11} {
		h := Hankel[uint64]{N: n, D: ff.SampleVec[uint64](f, src, 2*n-1, ff.P31)}
		got, err := DetHankel[uint64](f, h)
		if err != nil {
			t.Fatal(err)
		}
		want, err := matrix.Det[uint64](f, h.Dense(f))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("n=%d: DetHankel = %d, LU = %d", n, got, want)
		}
	}
}

func TestSolveToeplitz(t *testing.T) {
	f := fp
	src := ff.NewSource(81)
	for _, n := range []int{1, 2, 3, 6, 10, 16} {
		tp, _ := nonsingularToeplitz(t, src, n)
		b := ff.SampleVec[uint64](f, src, n, ff.P31)
		x, err := Solve[uint64](f, tp, b)
		if err != nil {
			t.Fatal(err)
		}
		if !ff.VecEqual[uint64](f, tp.MulVec(f, x), b) {
			t.Fatalf("n=%d: T·x != b", n)
		}
	}
	// Singular Toeplitz (all-equal entries, n ≥ 2) must be reported.
	ones := make([]uint64, 5)
	for i := range ones {
		ones[i] = 1
	}
	sing := NewToeplitz[uint64](ones)
	if _, err := Solve[uint64](f, sing, []uint64{1, 2, 3}); err != matrix.ErrSingular {
		t.Fatalf("singular Toeplitz: err = %v, want ErrSingular", err)
	}
}

func TestSolveHankel(t *testing.T) {
	f := fp
	src := ff.NewSource(82)
	for _, n := range []int{1, 2, 4, 9} {
		var h Hankel[uint64]
		for {
			h = Hankel[uint64]{N: n, D: ff.SampleVec[uint64](f, src, 2*n-1, ff.P31)}
			if d, err := matrix.Det[uint64](f, h.Dense(f)); err == nil && !f.IsZero(d) {
				// The mirror Toeplitz solve also needs (T⁻¹)₀₀ ≠ 0 — no:
				// Solve goes through Cayley–Hamilton, no GS condition.
				break
			}
		}
		b := ff.SampleVec[uint64](f, src, n, ff.P31)
		x, err := SolveHankel[uint64](f, h, b)
		if err != nil {
			t.Fatal(err)
		}
		if !ff.VecEqual[uint64](f, h.MulVec(f, x), b) {
			t.Fatalf("n=%d: H·x != b", n)
		}
	}
}

func TestInverseColumnsGS(t *testing.T) {
	f := fp
	src := ff.NewSource(83)
	n := 8
	tp, inv := nonsingularToeplitz(t, src, n)
	g, err := InverseColumns[uint64](f, tp)
	if err != nil {
		t.Fatal(err)
	}
	if !ff.VecEqual[uint64](f, g.U, inv.Col(0)) || !ff.VecEqual[uint64](f, g.W, inv.Col(n-1)) {
		t.Fatal("InverseColumns columns wrong")
	}
	x := ff.SampleVec[uint64](f, src, n, ff.P31)
	got, err := g.Apply(f, x)
	if err != nil {
		t.Fatal(err)
	}
	if !ff.VecEqual[uint64](f, got, inv.MulVec(f, x)) {
		t.Fatal("InverseColumns GS does not reproduce the inverse")
	}
}

func TestSeriesRingAxioms(t *testing.T) {
	// The series ring adapter behaves like a field on units.
	f := fp
	s := poly.NewSeries[uint64](f, 8)
	src := ff.NewSource(84)
	for i := 0; i < 40; i++ {
		a := ff.SampleVec[uint64](f, src, 8, ff.P31) // random series
		b := ff.SampleVec[uint64](f, src, 8, ff.P31)
		if !s.Equal(s.Mul(a, b), s.Mul(b, a)) {
			t.Fatal("series mul not commutative")
		}
		if !s.IsZero(s.Sub(a, a)) {
			t.Fatal("a − a != 0 in series ring")
		}
		if a[0] != 0 {
			inv, err := s.Inv(a)
			if err != nil {
				t.Fatal(err)
			}
			if !s.Equal(s.Mul(a, inv), s.One()) {
				t.Fatal("series inverse wrong")
			}
		}
	}
	// Non-units are rejected like zero divisions.
	if _, err := s.Inv([]uint64{0, 1}); err == nil {
		t.Fatal("series Inv accepted a non-unit")
	}
}
