package structured

import (
	"testing"

	"repro/internal/ff"
	"repro/internal/matrix"
	"repro/internal/poly"
)

// Focused tests of the Newton/Gohberg–Semencul engine beyond the
// column-correctness checks in structured_test.go.

func TestInverseSeriesColumnsHighPrecision(t *testing.T) {
	// Precision well beyond n+1 (the charpoly need): the truncated columns
	// must match the Neumann series Σ λⁱTⁱ at every order.
	f := ff.MustFp64(ff.P31)
	src := ff.NewSource(401)
	n := 5
	tp := RandomToeplitz[uint64](f, src, n, ff.P31)
	k := 23 // deliberately not a power of two
	u, w, _, err := InverseSeriesColumns[uint64](f, tp, k)
	if err != nil {
		t.Fatal(err)
	}
	e0 := ff.VecZero[uint64](f, n)
	e0[0] = f.One()
	en := ff.VecZero[uint64](f, n)
	en[n-1] = f.One()
	for name, tc := range map[string]struct {
		col SeriesVec[uint64]
		e   []uint64
	}{"first": {u, e0}, "last": {w, en}} {
		v := tc.e
		for i := 0; i < k; i++ {
			for row := 0; row < n; row++ {
				if poly.Coef[uint64](f, tc.col[row], i) != v[row] {
					t.Fatalf("%s column, λ^%d, row %d wrong", name, i, row)
				}
			}
			v = tp.MulVec(f, v)
		}
	}
}

func TestNewtonPersymmetryInvariant(t *testing.T) {
	// The exact inverse of a Toeplitz matrix is persymmetric; in
	// particular u₀ = w_{n−1} — and since the computed columns are exact
	// truncations, the identity must hold coefficientwise.
	f := ff.MustFp64(ff.P31)
	src := ff.NewSource(403)
	for _, n := range []int{2, 4, 9} {
		tp := RandomToeplitz[uint64](f, src, n, ff.P31)
		u, w, u0inv, err := InverseSeriesColumns[uint64](f, tp, n+1)
		if err != nil {
			t.Fatal(err)
		}
		s := poly.NewSeries[uint64](f, n+1)
		if !s.Equal(u[0], w[n-1]) {
			t.Fatalf("n=%d: u₀ != w_{n−1} (persymmetry broken)", n)
		}
		// u0inv really inverts u₀ at full precision.
		if !s.Equal(s.Mul(u[0], u0inv), s.One()) {
			t.Fatalf("n=%d: maintained inverse wrong", n)
		}
	}
}

func TestTraceSeriesUpperLeftEntry(t *testing.T) {
	// n = 1 degenerate case: T = [c]; trace series = 1/(1−λc) = Σ cⁱλⁱ.
	f := ff.MustFp64(ff.P31)
	c := uint64(7)
	tp := Toeplitz[uint64]{N: 1, D: []uint64{c}}
	k := 6
	tr, err := TraceSeries[uint64](f, tp, k)
	if err != nil {
		t.Fatal(err)
	}
	pow := f.One()
	for i := 0; i < k; i++ {
		if poly.Coef[uint64](f, tr, i) != pow {
			t.Fatalf("coefficient λ^%d = %d, want %d", i,
				poly.Coef[uint64](f, tr, i), pow)
		}
		pow = f.Mul(pow, c)
	}
}

func TestCharPolyZeroToeplitz(t *testing.T) {
	// T = 0: charpoly = λⁿ.
	f := ff.MustFp64(ff.P31)
	n := 4
	tp := Toeplitz[uint64]{N: n, D: make([]uint64, 2*n-1)}
	cp, err := CharPoly[uint64](f, tp)
	if err != nil {
		t.Fatal(err)
	}
	want := poly.Monomial[uint64](f, f.One(), n)
	if !poly.Equal[uint64](f, cp, want) {
		t.Fatalf("charpoly(0) = %s, want λ^%d", poly.String[uint64](f, cp), n)
	}
}

func TestCharPolyScalarToeplitz(t *testing.T) {
	// T = c·J-ish? Simplest: T with all entries equal c is rank ≤ 1 with
	// trace nc: charpoly = λ^{n−1}(λ − nc).
	f := ff.MustFp64(ff.P31)
	n := 5
	c := f.FromInt64(3)
	d := make([]uint64, 2*n-1)
	for i := range d {
		d[i] = c
	}
	cp, err := CharPoly[uint64](f, Toeplitz[uint64]{N: n, D: d})
	if err != nil {
		t.Fatal(err)
	}
	want := poly.Mul[uint64](f,
		poly.Monomial[uint64](f, f.One(), n-1),
		[]uint64{f.Neg(f.Mul(f.FromInt64(int64(n)), c)), f.One()})
	if !poly.Equal[uint64](f, cp, want) {
		t.Fatalf("rank-1 charpoly = %s", poly.String[uint64](f, cp))
	}
}

func TestSolveParallelMatchesIterative(t *testing.T) {
	f := ff.MustFp64(ff.P31)
	src := ff.NewSource(405)
	for _, n := range []int{2, 5, 9} {
		var tp Toeplitz[uint64]
		for {
			tp = RandomToeplitz[uint64](f, src, n, ff.P31)
			if d, err := matrix.Det[uint64](f, tp.Dense(f)); err == nil && !f.IsZero(d) {
				break
			}
		}
		b := ff.SampleVec[uint64](f, src, n, ff.P31)
		x1, err := Solve[uint64](f, tp, b)
		if err != nil {
			t.Fatal(err)
		}
		x2, err := SolveParallel[uint64](f, matrix.Classical[uint64]{}, tp, b)
		if err != nil {
			t.Fatal(err)
		}
		if !ff.VecEqual[uint64](f, x1, x2) {
			t.Fatalf("n=%d: parallel and iterative Toeplitz solves differ", n)
		}
	}
}
