package structured

import (
	"repro/internal/ff"
	"repro/internal/matrix"
)

// GSSolver packages the paper's Theorem 3 machinery — the Newton-iterated
// Gohberg/Semencul implicit inverse and the resulting characteristic
// polynomial — as a reusable solver backend for non-singular Toeplitz
// systems. Construction pays the Theorem 3 charpoly (O(n² log n) field ops
// with the cached NTT applies) plus two Cayley–Hamilton backsolves for the
// first and last columns of T⁻¹; after that every right-hand side costs
// four triangular-Toeplitz products via GS.ApplyWithInv — O(M(n)) instead
// of the 2n black-box applies a fresh Wiedemann run would pay. When
// (T⁻¹)₀₀ = 0 the Gohberg/Semencul formula is unavailable (the paper's
// genericity assumption u₁ ≠ 0); the solver then falls back to the cached
// Cayley–Hamilton backsolve, still reusing the one charpoly.
type GSSolver[E any] struct {
	T  Toeplitz[E]
	CP []E // det(λI − T): CP[0] = pₙ … CP[n] = 1

	scale E // −1/pₙ, the Cayley–Hamilton backsolve constant
	gs    GS[E]
	u0inv E
	hasGS bool
}

// NewGSSolver runs the Theorem 3 pipeline once. It returns
// matrix.ErrSingular for singular T and propagates
// charpoly.ErrSmallCharacteristic when char(F) ≤ n.
func NewGSSolver[E any](f ff.Field[E], t Toeplitz[E]) (*GSSolver[E], error) {
	cp, err := CharPoly(f, t)
	if err != nil {
		return nil, err
	}
	if f.IsZero(cp[0]) {
		return nil, matrix.ErrSingular
	}
	scale, err := f.Div(f.Neg(f.One()), cp[0])
	if err != nil {
		return nil, err
	}
	s := &GSSolver[E]{T: t, CP: cp, scale: scale}
	n := t.N
	e0 := ff.VecZero(f, n)
	e0[0] = f.One()
	en := ff.VecZero(f, n)
	en[n-1] = f.One()
	u := s.chSolve(f, e0)
	if !f.IsZero(u[0]) {
		w := s.chSolve(f, en)
		u0inv, err := f.Inv(u[0])
		if err != nil {
			return nil, err
		}
		s.gs, s.u0inv, s.hasGS = GS[E]{U: u, W: w}, u0inv, true
	}
	return s, nil
}

// HasGS reports whether the Gohberg/Semencul fast path is active (false
// only in the measure-zero case (T⁻¹)₀₀ = 0).
func (s *GSSolver[E]) HasGS() bool { return s.hasGS }

// Det returns det(T) = (−1)ⁿ·pₙ.
func (s *GSSolver[E]) Det(f ff.Field[E]) E {
	d := s.CP[0]
	if s.T.N%2 == 1 {
		d = f.Neg(d)
	}
	return d
}

// chSolve is the Cayley–Hamilton backsolve x = −(1/pₙ)·Σ p_{n−1−j}·Tʲb
// against the cached characteristic polynomial: n−1 structured applies.
func (s *GSSolver[E]) chSolve(f ff.Field[E], b []E) []E {
	n := s.T.N
	acc := ff.VecZero(f, n)
	v := ff.VecCopy(b)
	for j := 0; j < n; j++ {
		ff.VecMulAddInto(f, acc, s.CP[j+1], v)
		if j < n-1 {
			v = s.T.MulVec(f, v)
		}
	}
	ff.VecScaleInto(f, acc, s.scale, acc)
	return acc
}

// SolveVec returns T⁻¹·b: four triangular-Toeplitz products on the fast
// path, the cached Cayley–Hamilton backsolve otherwise.
func (s *GSSolver[E]) SolveVec(f ff.Field[E], b []E) []E {
	if len(b) != s.T.N {
		panic("structured: GSSolver.SolveVec dimension mismatch")
	}
	if s.hasGS {
		return s.gs.ApplyWithInv(f, b, s.u0inv)
	}
	return s.chSolve(f, b)
}
