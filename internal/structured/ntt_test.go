package structured

import (
	"math/big"
	"testing"

	"repro/internal/ff"
)

// The cached-NTT applies must be bit-identical to the schoolbook products.
// A zero-value literal (no ntt cache box) always takes the schoolbook path,
// which gives us the reference oracle without exporting the internals.

func toeplitzOracle[E any](t Toeplitz[E]) Toeplitz[E] { return Toeplitz[E]{N: t.N, D: t.D} }
func hankelOracle[E any](h Hankel[E]) Hankel[E]       { return Hankel[E]{N: h.N, D: h.D} }

func TestToeplitzNTTApplyMatchesSchoolbook(t *testing.T) {
	f := ff.MustFp64(ff.PNTT62)
	src := ff.NewSource(11)
	for _, n := range []int{1, 2, 3, 7, 16, 33, 100} {
		tm := RandomToeplitz[uint64](f, src, n, f.Modulus())
		ref := toeplitzOracle(tm)
		for rep := 0; rep < 3; rep++ {
			x := ff.SampleVec[uint64](f, src, n, f.Modulus())
			got := tm.MulVec(f, x)
			want := ref.MulVec(f, x)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d rep=%d: NTT apply diverges at %d: %d vs %d", n, rep, i, got[i], want[i])
				}
			}
		}
	}
}

func TestHankelNTTApplyMatchesSchoolbook(t *testing.T) {
	f := ff.MustFp64(ff.PNTT62)
	src := ff.NewSource(13)
	for _, n := range []int{1, 2, 5, 31, 64} {
		h := NewHankel(ff.SampleVec[uint64](f, src, 2*n-1, f.Modulus()))
		ref := hankelOracle(h)
		x := ff.SampleVec[uint64](f, src, n, f.Modulus())
		got := h.MulVec(f, x)
		want := ref.MulVec(f, x)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: Hankel NTT apply diverges at %d", n, i)
			}
		}
		// Dense cross-check closes the loop on the oracle itself.
		dense := h.Dense(f).MulVec(f, x)
		for i := range want {
			if want[i] != dense[i] {
				t.Fatalf("n=%d: schoolbook oracle diverges from dense at %d", n, i)
			}
		}
	}
}

func TestSylvesterNTTApplyMatchesSchoolbook(t *testing.T) {
	f := ff.MustFp64(ff.PNTT62)
	src := ff.NewSource(17)
	for _, degs := range [][2]int{{1, 1}, {3, 2}, {8, 8}, {20, 5}} {
		a := ff.SampleVec[uint64](f, src, degs[0]+1, f.Modulus())
		b := ff.SampleVec[uint64](f, src, degs[1]+1, f.Modulus())
		a[len(a)-1], b[len(b)-1] = f.One(), f.One() // keep degrees exact
		s := NewSylvester(f, a, b)
		ref := Sylvester[uint64]{A: s.A, B: s.B, m: s.m, n: s.n}
		dim, _ := s.Dims()
		x := ff.SampleVec[uint64](f, src, dim, f.Modulus())
		got := s.Apply(f, x)
		want := ref.Apply(f, x)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("degs=%v: Sylvester NTT apply diverges at %d", degs, i)
			}
		}
	}
}

// TestStructuredApplyFallbackUnfriendlyPrime: with 2-adicity 1 (M61) no
// usable transform exists at n ≥ 2 and the apply must silently produce the
// schoolbook answer — the satellite regression for the typed-error fallback.
func TestStructuredApplyFallbackUnfriendlyPrime(t *testing.T) {
	f := ff.MustFp64(2305843009213693951) // 2⁶¹ − 1
	src := ff.NewSource(19)
	n := 24
	tm := RandomToeplitz[uint64](f, src, n, f.Modulus())
	x := ff.SampleVec[uint64](f, src, n, f.Modulus())
	got := tm.MulVec(f, x)
	want := tm.Dense(f).MulVec(f, x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("M61 fallback diverges from dense at %d", i)
		}
	}
}

// TestStructuredApplyFallbackP2: the p = 2 sentinel has no fused transform;
// constructor-built matrices must still apply correctly.
func TestStructuredApplyFallbackP2(t *testing.T) {
	f := ff.MustFp64(2)
	tm := NewToeplitz([]uint64{1, 0, 1, 1, 1}) // n = 3
	x := []uint64{1, 1, 0}
	got := tm.MulVec(f, x)
	want := tm.Dense(f).MulVec(f, x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("F_2 fallback diverges from dense at %d", i)
		}
	}
}

// TestStructuredApplyFallbackFpBig: wrapper fields have no fused kernel;
// the cache stays empty and answers match the dense product.
func TestStructuredApplyFallbackFpBig(t *testing.T) {
	f, err := ff.NewFpBig(new(big.Int).SetUint64(ff.PNTT62))
	if err != nil {
		t.Fatal(err)
	}
	src := ff.NewSource(23)
	n := 9
	tm := RandomToeplitz[*big.Int](f, src, n, 1<<20)
	x := ff.SampleVec[*big.Int](f, src, n, 1<<20)
	got := tm.MulVec(f, x)
	want := tm.Dense(f).MulVec(f, x)
	for i := range want {
		if !f.Equal(got[i], want[i]) {
			t.Fatalf("FpBig fallback diverges from dense at %d", i)
		}
	}
}

// FuzzToeplitzNTTApply drives random sizes and entries through both paths.
func FuzzToeplitzNTTApply(fz *testing.F) {
	fz.Add(uint64(1), uint8(4))
	fz.Add(uint64(99), uint8(17))
	fz.Fuzz(func(t *testing.T, seed uint64, nRaw uint8) {
		n := int(nRaw)%40 + 1
		f := ff.MustFp64(ff.PNTT62)
		src := ff.NewSource(seed)
		tm := RandomToeplitz[uint64](f, src, n, f.Modulus())
		x := ff.SampleVec[uint64](f, src, n, f.Modulus())
		got := tm.MulVec(f, x)
		want := toeplitzOracle(tm).MulVec(f, x)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed=%d n=%d: divergence at %d", seed, n, i)
			}
		}
	})
}
