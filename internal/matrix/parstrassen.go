package matrix

import (
	"math"

	"repro/internal/ff"
)

// ParallelStrassen runs Strassen's seven-product recursion with the
// products of each level executed concurrently on the shared worker pool,
// cutting over to the cache-blocked classical kernel at the Cutoff
// dimension. The recursion tree supplies abundant parallelism near the
// root (7-way per level) while the blocked leaves keep per-task work
// cache-resident; the pool's caller-participates scheduling makes the
// nesting deadlock-free however deep the recursion goes. All recursion
// temporaries come from the package scratch pools (scratch.go), so a
// Krylov doubling pass that issues thousands of products reuses one
// working set instead of storming the allocator.
type ParallelStrassen[E any] struct {
	// Cutoff is the dimension at or below which a subproduct runs on the
	// blocked classical kernel. Zero selects a default tuned higher than
	// the serial Strassen cutoff, because the blocked leaf is faster than
	// the classical leaf the serial recursion bottoms out in.
	Cutoff int
}

// Name returns "parallel-strassen".
func (ParallelStrassen[E]) Name() string { return "parallel-strassen" }

// Omega returns log₂ 7.
func (ParallelStrassen[E]) Omega() float64 { return math.Log2(7) }

const defaultParallelStrassenCutoff = 128

// Mul returns a·b. Non-square operands fall back to the pooled row-parallel
// classical path; non-concurrency-safe fields (the circuit Builder) fall
// back to the serial Strassen recursion, which has the same algebraic
// structure and traced depth.
func (s ParallelStrassen[E]) Mul(f ff.Field[E], a, b *Dense[E]) *Dense[E] {
	if a.Cols != b.Rows {
		panic("matrix: Mul dimension mismatch")
	}
	cutoff := s.Cutoff
	if cutoff <= 0 {
		cutoff = defaultParallelStrassenCutoff
	}
	if !ff.IsConcurrentSafe(f) {
		return Strassen[E]{Cutoff: cutoff}.Mul(f, a, b)
	}
	if a.Rows != a.Cols || b.Rows != b.Cols || a.Rows <= cutoff {
		return Parallel[E]{}.Mul(f, a, b)
	}
	out := &Dense[E]{Rows: a.Rows, Cols: b.Cols, Data: make([]E, a.Rows*b.Cols)}
	strassenInto(f, a, b, out, cutoff, true)
	return out
}
