package matrix

import (
	"math"

	"repro/internal/ff"
)

// ParallelStrassen runs Strassen's seven-product recursion with the
// products of each level executed concurrently on the shared worker pool,
// cutting over to the cache-blocked classical kernel at the Cutoff
// dimension. The recursion tree supplies abundant parallelism near the
// root (7-way per level) while the blocked leaves keep per-task work
// cache-resident; the pool's caller-participates scheduling makes the
// nesting deadlock-free however deep the recursion goes.
type ParallelStrassen[E any] struct {
	// Cutoff is the dimension at or below which a subproduct runs on the
	// blocked classical kernel. Zero selects a default tuned higher than
	// the serial Strassen cutoff, because the blocked leaf is faster than
	// the classical leaf the serial recursion bottoms out in.
	Cutoff int
}

// Name returns "parallel-strassen".
func (ParallelStrassen[E]) Name() string { return "parallel-strassen" }

// Omega returns log₂ 7.
func (ParallelStrassen[E]) Omega() float64 { return math.Log2(7) }

const defaultParallelStrassenCutoff = 128

// Mul returns a·b. Non-square operands fall back to the pooled row-parallel
// classical path; non-concurrency-safe fields (the circuit Builder) fall
// back to the serial Strassen recursion, which has the same algebraic
// structure and traced depth.
func (s ParallelStrassen[E]) Mul(f ff.Field[E], a, b *Dense[E]) *Dense[E] {
	if a.Cols != b.Rows {
		panic("matrix: Mul dimension mismatch")
	}
	cutoff := s.Cutoff
	if cutoff <= 0 {
		cutoff = defaultParallelStrassenCutoff
	}
	if !ff.IsConcurrentSafe(f) {
		return Strassen[E]{Cutoff: cutoff}.Mul(f, a, b)
	}
	return s.mul(f, a, b, cutoff)
}

func (s ParallelStrassen[E]) mul(f ff.Field[E], a, b *Dense[E], cutoff int) *Dense[E] {
	if a.Rows != a.Cols || b.Rows != b.Cols || a.Rows <= cutoff {
		return Parallel[E]{}.Mul(f, a, b)
	}
	n := a.Rows
	if n%2 == 1 {
		ap, bp := padTo(f, a, n+1), padTo(f, b, n+1)
		cp := s.mul(f, ap, bp, cutoff)
		return cp.Submatrix(0, n, 0, n)
	}
	h := n / 2
	a11 := a.Submatrix(0, h, 0, h)
	a12 := a.Submatrix(0, h, h, n)
	a21 := a.Submatrix(h, n, 0, h)
	a22 := a.Submatrix(h, n, h, n)
	b11 := b.Submatrix(0, h, 0, h)
	b12 := b.Submatrix(0, h, h, n)
	b21 := b.Submatrix(h, n, 0, h)
	b22 := b.Submatrix(h, n, h, n)

	var m1, m2, m3, m4, m5, m6, m7 *Dense[E]
	parallelDo(
		func() { m1 = s.mul(f, a11.Add(f, a22), b11.Add(f, b22), cutoff) },
		func() { m2 = s.mul(f, a21.Add(f, a22), b11, cutoff) },
		func() { m3 = s.mul(f, a11, b12.Sub(f, b22), cutoff) },
		func() { m4 = s.mul(f, a22, b21.Sub(f, b11), cutoff) },
		func() { m5 = s.mul(f, a11.Add(f, a12), b22, cutoff) },
		func() { m6 = s.mul(f, a21.Sub(f, a11), b11.Add(f, b12), cutoff) },
		func() { m7 = s.mul(f, a12.Sub(f, a22), b21.Add(f, b22), cutoff) },
	)

	c11 := m1.Add(f, m4).Sub(f, m5).Add(f, m7)
	c12 := m3.Add(f, m5)
	c21 := m2.Add(f, m4)
	c22 := m1.Sub(f, m2).Add(f, m3).Add(f, m6)

	return assemble(f, c11, c12, c21, c22)
}
