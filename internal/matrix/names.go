package matrix

import (
	"fmt"
	"strings"
)

// Multiplier registry: the CLI flags (-mul), core.Options.Multiplier and
// the experiment ablations all select dense multipliers by these names.

// Names returns the registered multiplier names in presentation order.
func Names() []string {
	return []string{"classical", "blocked", "parallel", "strassen", "parallel-strassen"}
}

// ByName returns the named dense multiplier. The empty string selects
// classical, matching the package default.
func ByName[E any](name string) (Multiplier[E], error) {
	switch name {
	case "", "classical":
		return Classical[E]{}, nil
	case "blocked":
		return Blocked[E]{}, nil
	case "parallel":
		return Parallel[E]{}, nil
	case "strassen":
		return Strassen[E]{}, nil
	case "parallel-strassen":
		return ParallelStrassen[E]{}, nil
	}
	return nil, fmt.Errorf("matrix: unknown multiplier %q (want %s)", name, strings.Join(Names(), "|"))
}

// ParseMulFlag parses a -mul flag value shared by the CLI binaries: "all"
// (or "") selects every registered multiplier; otherwise the value is a
// comma-separated list of registered names. Unknown names are an error
// naming the valid set — the binaries must reject them rather than
// silently fall back to the classical default.
func ParseMulFlag(spec string) ([]string, error) {
	if spec == "" || spec == "all" {
		return Names(), nil
	}
	var names []string
	for _, raw := range strings.Split(spec, ",") {
		name := strings.TrimSpace(raw)
		if _, err := ByName[uint64](name); err != nil {
			return nil, err
		}
		names = append(names, name)
	}
	return names, nil
}

// CircuitSafeName maps a multiplier name to the one circuit tracing must
// use instead: the parallel kernels would race on the circuit Builder's
// node list, and the blocked kernel's sequential accumulation would trace
// to depth Ω(n) where the balanced-tree classical kernel gives O(log n).
// Strassen variants keep Strassen's algebraic structure; everything else
// traces through classical.
func CircuitSafeName(name string) string {
	switch name {
	case "strassen", "parallel-strassen":
		return "strassen"
	}
	return "classical"
}
