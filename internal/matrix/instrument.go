package matrix

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ff"
	"repro/internal/obs"
)

// MulStats accumulates per-multiply instrumentation. Counters are atomic so
// one stats block can be shared by concurrent callers (e.g. a multiplier
// used from inside the worker pool).
type MulStats struct {
	calls atomic.Uint64
	ops   atomic.Uint64
	busy  atomic.Int64 // summed per-call durations

	// Wall time is the union of the in-flight intervals, so it never
	// exceeds elapsed time no matter how many calls overlap. Each call
	// takes its own monotonic start/stop (time.Since); the mutex only
	// guards the interval bookkeeping at call entry/exit, far off the
	// per-element hot path.
	mu        sync.Mutex
	active    int
	spanStart time.Time
	wall      time.Duration
}

// MulStatsSnapshot is a point-in-time copy of the counters.
type MulStatsSnapshot struct {
	// Calls is the number of Mul invocations.
	Calls uint64
	// FieldOps is the classical-equivalent field-operation count:
	// rows·cols·(2k−1) per r×k by k×c product, the unit-cost measure the
	// paper's size bounds are stated in. Sub-cubic multipliers therefore
	// show a FieldOps larger than the work they actually performed.
	FieldOps uint64
	// Wall is the wall time during which at least one Mul was in flight
	// (the union of the call intervals): concurrent callers do not
	// double-count, so Wall never exceeds elapsed time.
	Wall time.Duration
	// Busy is total time inside Mul summed over calls; concurrent callers
	// overlap, so Busy can exceed Wall — the ratio Busy/Wall is the mean
	// multiply concurrency.
	Busy time.Duration
}

// Snapshot returns the current counter values. An in-flight interval (one
// or more Mul calls currently executing) contributes its elapsed portion
// to Wall.
func (s *MulStats) Snapshot() MulStatsSnapshot {
	s.mu.Lock()
	wall := s.wall
	if s.active > 0 {
		wall += time.Since(s.spanStart)
	}
	s.mu.Unlock()
	return MulStatsSnapshot{
		Calls:    s.calls.Load(),
		FieldOps: s.ops.Load(),
		Wall:     wall,
		Busy:     time.Duration(s.busy.Load()),
	}
}

// Reset zeroes the counters. Not safe to call concurrently with Mul.
func (s *MulStats) Reset() {
	s.calls.Store(0)
	s.ops.Store(0)
	s.busy.Store(0)
	s.mu.Lock()
	s.active = 0
	s.wall = 0
	s.mu.Unlock()
}

// enter opens one call interval: the first concurrent caller starts the
// wall-clock span. The returned timestamp is taken under the lock so the
// per-call intervals exactly tile the wall span (Busy ≥ Wall holds as an
// invariant, not just approximately).
func (s *MulStats) enter() time.Time {
	s.mu.Lock()
	now := time.Now()
	if s.active == 0 {
		s.spanStart = now
	}
	s.active++
	s.mu.Unlock()
	return now
}

// exit closes one call interval: the last concurrent caller commits the
// span to the wall total.
func (s *MulStats) exit(start time.Time) {
	s.mu.Lock()
	now := time.Now()
	s.busy.Add(int64(now.Sub(start)))
	s.active--
	if s.active == 0 {
		s.wall += now.Sub(s.spanStart)
	}
	s.mu.Unlock()
}

// Instrumented wraps a Multiplier and records calls, classical-equivalent
// field operations, and wall/busy time per multiply into a shared MulStats —
// the benchmark harness's view into how a solver exercises its
// multiplication black box. Each call also folds its op count into the
// innermost open obs span (a no-op unless an obs.Observer is active), so
// traced solves attribute multiplication work to the phase that issued it.
type Instrumented[E any] struct {
	Inner Multiplier[E]
	Stats *MulStats
}

// NewInstrumented returns an instrumented wrapper around inner with a fresh
// stats block.
func NewInstrumented[E any](inner Multiplier[E]) Instrumented[E] {
	return Instrumented[E]{Inner: inner, Stats: &MulStats{}}
}

// Name returns "instrumented(<inner>)".
func (m Instrumented[E]) Name() string { return "instrumented(" + m.Inner.Name() + ")" }

// Omega returns the wrapped multiplier's exponent.
func (m Instrumented[E]) Omega() float64 { return m.Inner.Omega() }

// Mul returns a·b through the wrapped multiplier, updating the counters.
func (m Instrumented[E]) Mul(f ff.Field[E], a, b *Dense[E]) *Dense[E] {
	start := m.Stats.enter()
	out := m.Inner.Mul(f, a, b)
	m.Stats.exit(start)
	m.Stats.calls.Add(1)
	var ops uint64
	if a.Cols > 0 {
		ops = uint64(a.Rows) * uint64(b.Cols) * uint64(2*a.Cols-1)
		m.Stats.ops.Add(ops)
	}
	obs.AddFieldOps(ops, 1)
	return out
}
