package matrix

import (
	"sync/atomic"
	"time"

	"repro/internal/ff"
)

// MulStats accumulates per-multiply instrumentation. Counters are atomic so
// one stats block can be shared by concurrent callers (e.g. a multiplier
// used from inside the worker pool).
type MulStats struct {
	calls atomic.Uint64
	ops   atomic.Uint64
	nanos atomic.Int64
}

// MulStatsSnapshot is a point-in-time copy of the counters.
type MulStatsSnapshot struct {
	// Calls is the number of Mul invocations.
	Calls uint64
	// FieldOps is the classical-equivalent field-operation count:
	// rows·cols·(2k−1) per r×k by k×c product, the unit-cost measure the
	// paper's size bounds are stated in. Sub-cubic multipliers therefore
	// show a FieldOps larger than the work they actually performed.
	FieldOps uint64
	// Wall is total wall time inside Mul, summed over calls (concurrent
	// callers overlap, so Wall can exceed elapsed time).
	Wall time.Duration
}

// Snapshot returns the current counter values.
func (s *MulStats) Snapshot() MulStatsSnapshot {
	return MulStatsSnapshot{
		Calls:    s.calls.Load(),
		FieldOps: s.ops.Load(),
		Wall:     time.Duration(s.nanos.Load()),
	}
}

// Reset zeroes the counters.
func (s *MulStats) Reset() {
	s.calls.Store(0)
	s.ops.Store(0)
	s.nanos.Store(0)
}

// Instrumented wraps a Multiplier and records calls, classical-equivalent
// field operations, and wall time per multiply into a shared MulStats —
// the benchmark harness's view into how a solver exercises its
// multiplication black box.
type Instrumented[E any] struct {
	Inner Multiplier[E]
	Stats *MulStats
}

// NewInstrumented returns an instrumented wrapper around inner with a fresh
// stats block.
func NewInstrumented[E any](inner Multiplier[E]) Instrumented[E] {
	return Instrumented[E]{Inner: inner, Stats: &MulStats{}}
}

// Name returns "instrumented(<inner>)".
func (m Instrumented[E]) Name() string { return "instrumented(" + m.Inner.Name() + ")" }

// Omega returns the wrapped multiplier's exponent.
func (m Instrumented[E]) Omega() float64 { return m.Inner.Omega() }

// Mul returns a·b through the wrapped multiplier, updating the counters.
func (m Instrumented[E]) Mul(f ff.Field[E], a, b *Dense[E]) *Dense[E] {
	start := time.Now()
	out := m.Inner.Mul(f, a, b)
	m.Stats.nanos.Add(int64(time.Since(start)))
	m.Stats.calls.Add(1)
	if a.Cols > 0 {
		m.Stats.ops.Add(uint64(a.Rows) * uint64(b.Cols) * uint64(2*a.Cols-1))
	}
	return out
}
