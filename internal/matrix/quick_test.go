package matrix

import (
	"testing"
	"testing/quick"

	"repro/internal/ff"
)

// Property-based tests on the dense linear-algebra substrate.

var qf = ff.MustFp64(ff.P31)

func mkMat(seed []uint64, n int) *Dense[uint64] {
	m := NewDense[uint64](qf, n, n)
	for i := range m.Data {
		m.Data[i] = qf.Elem(at(seed, i))
	}
	return m
}

func at(seed []uint64, i int) uint64 {
	if len(seed) == 0 {
		return uint64(i)*0x9e3779b97f4a7c15 + 7
	}
	return seed[i%len(seed)] + uint64(i)*0x9e3779b97f4a7c15
}

func TestQuickTransposeProduct(t *testing.T) {
	prop := func(sa, sb []uint64, nRaw uint8) bool {
		n := 1 + int(nRaw%8)
		a, b := mkMat(sa, n), mkMat(sb, n)
		// (AB)ᵀ = BᵀAᵀ
		lhs := Mul[uint64](qf, a, b).Transpose()
		rhs := Mul[uint64](qf, b.Transpose(), a.Transpose())
		return lhs.Equal(qf, rhs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDetMultiplicative(t *testing.T) {
	prop := func(sa, sb []uint64, nRaw uint8) bool {
		n := 1 + int(nRaw%7)
		a, b := mkMat(sa, n), mkMat(sb, n)
		da, err := Det[uint64](qf, a)
		if err != nil {
			return false
		}
		db, err := Det[uint64](qf, b)
		if err != nil {
			return false
		}
		dab, err := Det[uint64](qf, Mul[uint64](qf, a, b))
		if err != nil {
			return false
		}
		return qf.Equal(dab, qf.Mul(da, db))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTraceCyclic(t *testing.T) {
	prop := func(sa, sb []uint64, nRaw uint8) bool {
		n := 1 + int(nRaw%8)
		a, b := mkMat(sa, n), mkMat(sb, n)
		// trace(AB) = trace(BA)
		return qf.Equal(Mul[uint64](qf, a, b).Trace(qf), Mul[uint64](qf, b, a).Trace(qf))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRankBounds(t *testing.T) {
	prop := func(sa, sb []uint64, nRaw, rRaw uint8) bool {
		n := 2 + int(nRaw%6)
		r := 1 + int(rRaw)%n
		l := &Dense[uint64]{Rows: n, Cols: r, Data: make([]uint64, n*r)}
		rm := &Dense[uint64]{Rows: r, Cols: n, Data: make([]uint64, r*n)}
		for i := range l.Data {
			l.Data[i] = qf.Elem(at(sa, i))
		}
		for i := range rm.Data {
			rm.Data[i] = qf.Elem(at(sb, i))
		}
		// rank(LR) ≤ r always.
		got, err := Rank[uint64](qf, Mul[uint64](qf, l, rm))
		return err == nil && got <= r
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNullspaceAnnihilates(t *testing.T) {
	prop := func(sa []uint64, nRaw uint8) bool {
		n := 1 + int(nRaw%6)
		a := mkMat(sa, n)
		// Make it singular by zeroing a row (forcing a non-trivial kernel
		// in most draws); the property must hold regardless.
		for j := 0; j < n; j++ {
			a.Set(0, j, qf.Zero())
		}
		ns, err := NullspaceDense[uint64](qf, a)
		if err != nil {
			return false
		}
		rk, err := Rank[uint64](qf, a)
		if err != nil {
			return false
		}
		if ns.Cols != n-rk {
			return false
		}
		if ns.Cols == 0 {
			return true
		}
		return Mul[uint64](qf, a, ns).IsZero(qf)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStrassenMatchesClassical(t *testing.T) {
	prop := func(sa, sb []uint64, nRaw uint8) bool {
		n := 1 + int(nRaw%24)
		a, b := mkMat(sa, n), mkMat(sb, n)
		s := Strassen[uint64]{Cutoff: 2}
		return s.Mul(qf, a, b).Equal(qf, mulClassical[uint64](qf, a, b))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickKrylovDoublingMatchesIterative(t *testing.T) {
	prop := func(sa, sv []uint64, nRaw, mRaw uint8) bool {
		n := 1 + int(nRaw%6)
		m := 1 + int(mRaw%12)
		a := mkMat(sa, n)
		v := make([]uint64, n)
		for i := range v {
			v[i] = qf.Elem(at(sv, i))
		}
		doub := KrylovDoubling[uint64](qf, Classical[uint64]{}, a, v, m)
		iter := KrylovIterative[uint64](qf, DenseBox[uint64]{a}, v, m)
		for j := 0; j < m; j++ {
			if !ff.VecEqual[uint64](qf, doub.Col(j), iter[j]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
