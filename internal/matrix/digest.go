package matrix

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"io"
	"math/big"

	"repro/internal/ff"
)

// Canonical matrix digests for content-addressed factorization caching.
// A digest identifies the mathematical object — the field and the entries —
// not any implementation detail: two matrices digest equal exactly when a
// solve against one is a solve against the other. The kpd server keys its
// kp.Factorization cache on these, so the canonicalization rules below are
// load-bearing:
//
//   - The field enters through its characteristic and cardinality, so F_p as
//     ff.Fp64 and the same F_p as ff.FpBig collide (they are the same field)
//     while F_p and F_q never do.
//   - Entries enter through Field.String, which every backend defines as the
//     canonical residue representation (Fp64 converts out of Montgomery form
//     before printing), so internal representation changes cannot split the
//     cache.
//   - Dimensions are framed explicitly and every token is length-prefixed,
//     so a 2×3 and a 3×2 matrix with the same flat data differ, and no
//     concatenation of entry strings is ambiguous.
//
// The multiplier, the random source, and every other solve knob are
// deliberately absent: a factorization produced under any of them answers
// queries about the same matrix.

// DigestSize is the size of a matrix digest in bytes.
const DigestSize = sha256.Size

// Digest returns the canonical SHA-256 digest of m over f.
func Digest[E any](f ff.Field[E], m *Dense[E]) [DigestSize]byte {
	h := sha256.New()
	writeToken(h, []byte("kp/matrix/v1"))
	writeToken(h, []byte(f.Characteristic().String()))
	writeToken(h, []byte(f.Cardinality().String()))
	var dims [16]byte
	binary.BigEndian.PutUint64(dims[0:8], uint64(m.Rows))
	binary.BigEndian.PutUint64(dims[8:16], uint64(m.Cols))
	h.Write(dims[:])
	for _, e := range m.Data {
		writeToken(h, []byte(f.String(e)))
	}
	var out [DigestSize]byte
	h.Sum(out[:0])
	return out
}

// DigestString returns the hex form of Digest — the cache key and the wire
// representation the kpd API reports.
func DigestString[E any](f ff.Field[E], m *Dense[E]) string {
	d := Digest(f, m)
	return hex.EncodeToString(d[:])
}

// DigestInts returns the canonical digest of an integer matrix — the ring-ℤ
// analogue of Digest, under its own domain tag so a ℤ matrix and an F_p
// matrix can never collide. data is row-major with len = rows·cols; entries
// enter through big.Int.String (the canonical signed decimal), so any two
// big.Int representations of the same integer digest equal. The kpd server
// keys the per-prime factorization cache of ring=zz requests on these
// (qualified by the residue prime), so repeat integer matrices skip every
// Krylov phase.
func DigestInts(rows, cols int, data []*big.Int) [DigestSize]byte {
	if len(data) != rows*cols {
		panic("matrix: DigestInts data length does not match dimensions")
	}
	h := sha256.New()
	writeToken(h, []byte("kp/matrix/zz/v1"))
	var dims [16]byte
	binary.BigEndian.PutUint64(dims[0:8], uint64(rows))
	binary.BigEndian.PutUint64(dims[8:16], uint64(cols))
	h.Write(dims[:])
	for _, e := range data {
		writeToken(h, []byte(e.String()))
	}
	var out [DigestSize]byte
	h.Sum(out[:0])
	return out
}

// DigestIntsString returns the hex form of DigestInts.
func DigestIntsString(rows, cols int, data []*big.Int) string {
	d := DigestInts(rows, cols, data)
	return hex.EncodeToString(d[:])
}

// writeToken writes a length-prefixed token, making the digest input stream
// an unambiguous framing of its tokens.
func writeToken(w io.Writer, b []byte) {
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(b)))
	w.Write(n[:])
	w.Write(b)
}
