package matrix

import (
	"math"

	"repro/internal/ff"
)

// Strassen multiplies square matrices with Strassen's seven-product
// recursion, ω = log₂ 7 ≈ 2.807. It stands in for the paper's fast
// matrix-multiplication black box (the paper's reference exponent,
// Coppersmith–Winograd ω < 2.376, is not practical at any feasible n).
// Non-square or small operands fall back to the classical method.
type Strassen[E any] struct {
	// Cutoff is the dimension at or below which the recursion falls back
	// to classical multiplication. Zero selects a sensible default.
	Cutoff int
}

// Name returns "strassen".
func (Strassen[E]) Name() string { return "strassen" }

// Omega returns log₂ 7.
func (Strassen[E]) Omega() float64 { return math.Log2(7) }

const defaultStrassenCutoff = 64

// Mul returns a·b.
func (s Strassen[E]) Mul(f ff.Field[E], a, b *Dense[E]) *Dense[E] {
	if a.Cols != b.Rows {
		panic("matrix: Mul dimension mismatch")
	}
	cutoff := s.Cutoff
	if cutoff <= 0 {
		cutoff = defaultStrassenCutoff
	}
	if a.Rows != a.Cols || b.Rows != b.Cols || a.Rows <= cutoff {
		return mulClassical(f, a, b)
	}
	n := a.Rows
	// Pad odd dimensions to even by one bordering zero row/column.
	if n%2 == 1 {
		ap, bp := padTo(f, a, n+1), padTo(f, b, n+1)
		cp := s.Mul(f, ap, bp)
		return cp.Submatrix(0, n, 0, n)
	}
	h := n / 2
	a11 := a.Submatrix(0, h, 0, h)
	a12 := a.Submatrix(0, h, h, n)
	a21 := a.Submatrix(h, n, 0, h)
	a22 := a.Submatrix(h, n, h, n)
	b11 := b.Submatrix(0, h, 0, h)
	b12 := b.Submatrix(0, h, h, n)
	b21 := b.Submatrix(h, n, 0, h)
	b22 := b.Submatrix(h, n, h, n)

	m1 := s.Mul(f, a11.Add(f, a22), b11.Add(f, b22))
	m2 := s.Mul(f, a21.Add(f, a22), b11)
	m3 := s.Mul(f, a11, b12.Sub(f, b22))
	m4 := s.Mul(f, a22, b21.Sub(f, b11))
	m5 := s.Mul(f, a11.Add(f, a12), b22)
	m6 := s.Mul(f, a21.Sub(f, a11), b11.Add(f, b12))
	m7 := s.Mul(f, a12.Sub(f, a22), b21.Add(f, b22))

	c11 := m1.Add(f, m4).Sub(f, m5).Add(f, m7)
	c12 := m3.Add(f, m5)
	c21 := m2.Add(f, m4)
	c22 := m1.Sub(f, m2).Add(f, m3).Add(f, m6)

	return assemble(f, c11, c12, c21, c22)
}

func padTo[E any](f ff.Field[E], m *Dense[E], n int) *Dense[E] {
	p := NewDense(f, n, n)
	for i := 0; i < m.Rows; i++ {
		copy(p.Data[i*n:i*n+m.Cols], m.Data[i*m.Cols:(i+1)*m.Cols])
	}
	return p
}

func assemble[E any](f ff.Field[E], c11, c12, c21, c22 *Dense[E]) *Dense[E] {
	h := c11.Rows
	n := 2 * h
	out := &Dense[E]{Rows: n, Cols: n, Data: make([]E, n*n)}
	for i := 0; i < h; i++ {
		copy(out.Data[i*n:i*n+h], c11.Data[i*h:(i+1)*h])
		copy(out.Data[i*n+h:(i+1)*n], c12.Data[i*h:(i+1)*h])
		copy(out.Data[(i+h)*n:(i+h)*n+h], c21.Data[i*h:(i+1)*h])
		copy(out.Data[(i+h)*n+h:(i+h+1)*n], c22.Data[i*h:(i+1)*h])
	}
	return out
}
