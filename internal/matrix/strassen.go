package matrix

import (
	"math"

	"repro/internal/ff"
)

// Strassen multiplies square matrices with Strassen's seven-product
// recursion, ω = log₂ 7 ≈ 2.807. It stands in for the paper's fast
// matrix-multiplication black box (the paper's reference exponent,
// Coppersmith–Winograd ω < 2.376, is not practical at any feasible n).
// Non-square or small operands fall back to the classical method.
type Strassen[E any] struct {
	// Cutoff is the dimension at or below which the recursion falls back
	// to classical multiplication. Zero selects a sensible default.
	Cutoff int
}

// Name returns "strassen".
func (Strassen[E]) Name() string { return "strassen" }

// Omega returns log₂ 7.
func (Strassen[E]) Omega() float64 { return math.Log2(7) }

const defaultStrassenCutoff = 64

// Mul returns a·b.
func (s Strassen[E]) Mul(f ff.Field[E], a, b *Dense[E]) *Dense[E] {
	if a.Cols != b.Rows {
		panic("matrix: Mul dimension mismatch")
	}
	cutoff := s.Cutoff
	if cutoff <= 0 {
		cutoff = defaultStrassenCutoff
	}
	if a.Rows != a.Cols || b.Rows != b.Cols || a.Rows <= cutoff {
		return mulClassical(f, a, b)
	}
	out := &Dense[E]{Rows: a.Rows, Cols: b.Cols, Data: make([]E, a.Rows*b.Cols)}
	strassenInto(f, a, b, out, cutoff, false)
	return out
}

// strassenInto computes out = a·b (out fully overwritten, shape a.Rows ×
// b.Cols) by Strassen's recursion with every temporary — submatrix copies,
// operand sums, the seven sub-products, odd-dimension padding — drawn from
// the package scratch pools, so the recursion allocates nothing per level
// beyond pooled storage reused across multiplies. par selects the execution
// discipline at each node: parallel runs the seven products concurrently on
// the shared worker pool and bottoms out in the pooled blocked kernel;
// serial recursion bottoms out in the balanced-tree classical kernel, which
// is what circuit tracing requires (O(log n) accumulation depth and no
// concurrent Builder access).
func strassenInto[E any](f ff.Field[E], a, b, out *Dense[E], cutoff int, par bool) {
	n := a.Rows
	if a.Rows != a.Cols || b.Rows != b.Cols || n <= cutoff {
		if par {
			strassenLeafParallel(f, a, b, out)
		} else {
			mulClassicalInto(f, a, b, out)
		}
		return
	}
	// Pad odd dimensions to even by one bordering zero row/column.
	if n%2 == 1 {
		m := n + 1
		ap, bp, cp := scratchDense[E](m, m), scratchDense[E](m, m), scratchDense[E](m, m)
		padInto(f, a, ap)
		padInto(f, b, bp)
		strassenInto(f, ap, bp, cp, cutoff, par)
		for i := 0; i < n; i++ {
			copy(out.Data[i*out.Cols:i*out.Cols+n], cp.Data[i*m:i*m+n])
		}
		scratchRelease(ap, bp, cp)
		return
	}
	h := n / 2
	blk := func() *Dense[E] { return scratchDense[E](h, h) }
	a11, a12, a21, a22 := blk(), blk(), blk(), blk()
	b11, b12, b21, b22 := blk(), blk(), blk(), blk()
	copyQuadrant(a, a11, 0, 0)
	copyQuadrant(a, a12, 0, h)
	copyQuadrant(a, a21, h, 0)
	copyQuadrant(a, a22, h, h)
	copyQuadrant(b, b11, 0, 0)
	copyQuadrant(b, b12, 0, h)
	copyQuadrant(b, b21, h, 0)
	copyQuadrant(b, b22, h, h)

	// Operand combinations of the seven products.
	s1, s2, s3, s4, s5 := blk(), blk(), blk(), blk(), blk()
	s6, s7, s8, s9, s10 := blk(), blk(), blk(), blk(), blk()
	addDenseInto(f, s1, a11, a22)  // m1 left
	addDenseInto(f, s2, b11, b22)  // m1 right
	addDenseInto(f, s3, a21, a22)  // m2 left
	subDenseInto(f, s4, b12, b22)  // m3 right
	subDenseInto(f, s5, b21, b11)  // m4 right
	addDenseInto(f, s6, a11, a12)  // m5 left
	subDenseInto(f, s7, a21, a11)  // m6 left
	addDenseInto(f, s8, b11, b12)  // m6 right
	subDenseInto(f, s9, a12, a22)  // m7 left
	addDenseInto(f, s10, b21, b22) // m7 right

	m1, m2, m3, m4 := blk(), blk(), blk(), blk()
	m5, m6, m7 := blk(), blk(), blk()
	products := []func(){
		func() { strassenInto(f, s1, s2, m1, cutoff, par) },
		func() { strassenInto(f, s3, b11, m2, cutoff, par) },
		func() { strassenInto(f, a11, s4, m3, cutoff, par) },
		func() { strassenInto(f, a22, s5, m4, cutoff, par) },
		func() { strassenInto(f, s6, b22, m5, cutoff, par) },
		func() { strassenInto(f, s7, s8, m6, cutoff, par) },
		func() { strassenInto(f, s9, s10, m7, cutoff, par) },
	}
	if par {
		parallelDo(products...)
	} else {
		for _, p := range products {
			p()
		}
	}

	// Combine straight into the out quadrants:
	// c11 = m1 + m4 − m5 + m7, c12 = m3 + m5,
	// c21 = m2 + m4,           c22 = m1 − m2 + m3 + m6.
	oc := out.Cols
	for i := 0; i < h; i++ {
		r1 := m1.Data[i*h : (i+1)*h]
		r2 := m2.Data[i*h : (i+1)*h]
		r3 := m3.Data[i*h : (i+1)*h]
		r4 := m4.Data[i*h : (i+1)*h]
		r5 := m5.Data[i*h : (i+1)*h]
		r6 := m6.Data[i*h : (i+1)*h]
		r7 := m7.Data[i*h : (i+1)*h]
		o11 := out.Data[i*oc : i*oc+h]
		o12 := out.Data[i*oc+h : (i+1)*oc]
		o21 := out.Data[(i+h)*oc : (i+h)*oc+h]
		o22 := out.Data[(i+h)*oc+h : (i+h+1)*oc]
		for j := 0; j < h; j++ {
			o11[j] = f.Add(f.Sub(f.Add(r1[j], r4[j]), r5[j]), r7[j])
			o12[j] = f.Add(r3[j], r5[j])
			o21[j] = f.Add(r2[j], r4[j])
			o22[j] = f.Add(f.Add(f.Sub(r1[j], r2[j]), r3[j]), r6[j])
		}
	}
	scratchRelease(a11, a12, a21, a22, b11, b12, b21, b22)
	scratchRelease(s1, s2, s3, s4, s5, s6, s7, s8, s9, s10)
	scratchRelease(m1, m2, m3, m4, m5, m6, m7)
}

// strassenLeafParallel is the recursion leaf of the pooled-parallel
// variant: the cache-blocked kernel, row-banded over the shared worker pool
// when the product is large enough to amortize the scheduling.
func strassenLeafParallel[E any](f ff.Field[E], a, b, out *Dense[E]) {
	zeroDenseRange(f, out, 0, out.Rows)
	if a.Rows*b.Cols*a.Cols < parallelMulMinOps {
		blockedMulInto(f, a, b, out, 0, a.Rows, defaultMulTile)
		return
	}
	parallelFor(a.Rows, max(1, defaultMulTile/4), func(lo, hi int) {
		blockedMulInto(f, a, b, out, lo, hi, defaultMulTile)
	})
}

// copyQuadrant copies the h×h block of src with top-left corner (r0, c0)
// into dst (pure data movement, no field operations).
func copyQuadrant[E any](src, dst *Dense[E], r0, c0 int) {
	h := dst.Rows
	for i := 0; i < h; i++ {
		copy(dst.Data[i*h:(i+1)*h], src.Data[(r0+i)*src.Cols+c0:(r0+i)*src.Cols+c0+h])
	}
}

// addDenseInto sets dst = x + y elementwise (equal shapes).
func addDenseInto[E any](f ff.Field[E], dst, x, y *Dense[E]) {
	if ker, ok := ff.KernelsOf(f); ok {
		copy(dst.Data, x.Data)
		ker.AddInto(dst.Data, y.Data)
		return
	}
	for i := range dst.Data {
		dst.Data[i] = f.Add(x.Data[i], y.Data[i])
	}
}

// subDenseInto sets dst = x − y elementwise.
func subDenseInto[E any](f ff.Field[E], dst, x, y *Dense[E]) {
	if ker, ok := ff.KernelsOf(f); ok {
		copy(dst.Data, x.Data)
		ker.SubInto(dst.Data, y.Data)
		return
	}
	for i := range dst.Data {
		dst.Data[i] = f.Sub(x.Data[i], y.Data[i])
	}
}

// padInto copies src into the top-left corner of dst and zeroes the border.
func padInto[E any](f ff.Field[E], src, dst *Dense[E]) {
	z := f.Zero()
	n := dst.Cols
	for i := 0; i < src.Rows; i++ {
		row := dst.Data[i*n : (i+1)*n]
		copy(row, src.Data[i*src.Cols:(i+1)*src.Cols])
		for j := src.Cols; j < n; j++ {
			row[j] = z
		}
	}
	for i := src.Rows * n; i < len(dst.Data); i++ {
		dst.Data[i] = z
	}
}
