package matrix

import (
	"repro/internal/errs"
	"repro/internal/ff"
)

// ErrSingular is returned by the elimination routines when the matrix is
// singular (and by the randomized algorithms after exhausting retries).
// It is the shared errs.ErrSingular sentinel, so errors.Is matches it
// against kp.ErrSingular and the structured-solver failures alike.
var ErrSingular = errs.ErrSingular

// Gaussian elimination is the paper's sequential yardstick ("Gaussian
// elimination is a sequential method for all these computational problems
// over abstract fields", citing Bunch–Hopcroft). Unlike the Kaltofen–Pan
// circuits it uses zero tests to pick pivots, which is exactly why it does
// not parallelize to polylog depth.

// LU holds a PLU factorization P·A = L·U with unit-diagonal L, produced by
// elimination with first-non-zero pivoting (the only pivoting available
// over an abstract field).
type LU[E any] struct {
	// Fact stores L below the diagonal (unit diagonal implicit) and U on
	// and above it.
	Fact *Dense[E]
	// Perm is the row permutation: row i of Fact came from row Perm[i] of A.
	Perm []int
	// Sign is the permutation sign (+1/−1) for determinant computation.
	Sign int
	// Rank is the number of non-zero pivots found.
	Rank int
}

// Factor computes a PLU factorization of a square matrix. Rank-deficient
// matrices factor too; Rank records how far elimination got.
func Factor[E any](f ff.Field[E], a *Dense[E]) (*LU[E], error) {
	a.mustSquare()
	n := a.Rows
	m := a.Clone()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sign := 1
	rank := 0
	for col := 0; col < n; col++ {
		// Find first non-zero pivot at or below the diagonal.
		pivot := -1
		for r := rank; r < n; r++ {
			if !f.IsZero(m.At(r, col)) {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue // singular in this column; move on (rank deficiency)
		}
		if pivot != rank {
			swapRows(m, pivot, rank)
			perm[pivot], perm[rank] = perm[rank], perm[pivot]
			sign = -sign
		}
		pInv, err := f.Inv(m.At(rank, col))
		if err != nil {
			return nil, err
		}
		for r := rank + 1; r < n; r++ {
			factor := f.Mul(m.At(r, col), pInv)
			m.Set(r, col, factor) // store L entry
			if f.IsZero(factor) {
				continue
			}
			for c := col + 1; c < n; c++ {
				m.Set(r, c, f.Sub(m.At(r, c), f.Mul(factor, m.At(rank, c))))
			}
		}
		rank++
	}
	return &LU[E]{Fact: m, Perm: perm, Sign: sign, Rank: rank}, nil
}

func swapRows[E any](m *Dense[E], a, b int) {
	if a == b {
		return
	}
	ra := m.Data[a*m.Cols : (a+1)*m.Cols]
	rb := m.Data[b*m.Cols : (b+1)*m.Cols]
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

// Det returns the determinant from the factorization.
func (lu *LU[E]) Det(f ff.Field[E]) E {
	n := lu.Fact.Rows
	if lu.Rank < n {
		return f.Zero()
	}
	d := f.One()
	if lu.Sign < 0 {
		d = f.Neg(d)
	}
	for i := 0; i < n; i++ {
		d = f.Mul(d, lu.Fact.At(i, i))
	}
	return d
}

// Solve returns x with A·x = b, or ErrSingular for rank-deficient A.
func (lu *LU[E]) Solve(f ff.Field[E], b []E) ([]E, error) {
	n := lu.Fact.Rows
	if lu.Rank < n {
		return nil, ErrSingular
	}
	if len(b) != n {
		panic("matrix: Solve dimension mismatch")
	}
	// Apply permutation: Pb.
	y := make([]E, n)
	for i := range y {
		y[i] = b[lu.Perm[i]]
	}
	// Forward substitution L·y = Pb.
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			y[i] = f.Sub(y[i], f.Mul(lu.Fact.At(i, j), y[j]))
		}
	}
	// Back substitution U·x = y.
	x := make([]E, n)
	for i := n - 1; i >= 0; i-- {
		acc := y[i]
		for j := i + 1; j < n; j++ {
			acc = f.Sub(acc, f.Mul(lu.Fact.At(i, j), x[j]))
		}
		v, err := f.Div(acc, lu.Fact.At(i, i))
		if err != nil {
			return nil, ErrSingular
		}
		x[i] = v
	}
	return x, nil
}

// Det returns the determinant of a square matrix by elimination.
func Det[E any](f ff.Field[E], a *Dense[E]) (E, error) {
	lu, err := Factor(f, a)
	if err != nil {
		var z E
		return z, err
	}
	return lu.Det(f), nil
}

// Solve solves A·x = b by elimination.
func Solve[E any](f ff.Field[E], a *Dense[E], b []E) ([]E, error) {
	lu, err := Factor(f, a)
	if err != nil {
		return nil, err
	}
	return lu.Solve(f, b)
}

// Inverse returns A⁻¹ by elimination, or ErrSingular.
func Inverse[E any](f ff.Field[E], a *Dense[E]) (*Dense[E], error) {
	lu, err := Factor(f, a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	if lu.Rank < n {
		return nil, ErrSingular
	}
	inv := NewDense(f, n, n)
	e := make([]E, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = f.Zero()
		}
		e[j] = f.One()
		col, err := lu.Solve(f, e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

// Rank returns the rank of an arbitrary rectangular matrix by row
// reduction.
func Rank[E any](f ff.Field[E], a *Dense[E]) (int, error) {
	m := a.Clone()
	rank := 0
	for col := 0; col < m.Cols && rank < m.Rows; col++ {
		pivot := -1
		for r := rank; r < m.Rows; r++ {
			if !f.IsZero(m.At(r, col)) {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		swapRows(m, pivot, rank)
		pInv, err := f.Inv(m.At(rank, col))
		if err != nil {
			return 0, err
		}
		for r := rank + 1; r < m.Rows; r++ {
			factor := f.Mul(m.At(r, col), pInv)
			if f.IsZero(factor) {
				continue
			}
			for c := col; c < m.Cols; c++ {
				m.Set(r, c, f.Sub(m.At(r, c), f.Mul(factor, m.At(rank, c))))
			}
		}
		rank++
	}
	return rank, nil
}

// NullspaceDense returns a basis (as columns) of the right nullspace of a,
// computed by reduced row echelon form. It is the reference the randomized
// Kaltofen–Pan nullspace construction is validated against.
func NullspaceDense[E any](f ff.Field[E], a *Dense[E]) (*Dense[E], error) {
	m := a.Clone()
	rows, cols := m.Rows, m.Cols
	pivotCol := make([]int, 0, rows)
	rank := 0
	for col := 0; col < cols && rank < rows; col++ {
		pivot := -1
		for r := rank; r < rows; r++ {
			if !f.IsZero(m.At(r, col)) {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		swapRows(m, pivot, rank)
		pInv, err := f.Inv(m.At(rank, col))
		if err != nil {
			return nil, err
		}
		// Normalize pivot row.
		for c := col; c < cols; c++ {
			m.Set(rank, c, f.Mul(m.At(rank, c), pInv))
		}
		// Eliminate the column everywhere else (full RREF).
		for r := 0; r < rows; r++ {
			if r == rank || f.IsZero(m.At(r, col)) {
				continue
			}
			factor := m.At(r, col)
			for c := col; c < cols; c++ {
				m.Set(r, c, f.Sub(m.At(r, c), f.Mul(factor, m.At(rank, c))))
			}
		}
		pivotCol = append(pivotCol, col)
		rank++
	}
	// Free columns parameterize the nullspace.
	isPivot := make([]bool, cols)
	for _, c := range pivotCol {
		isPivot[c] = true
	}
	free := make([]int, 0, cols-rank)
	for c := 0; c < cols; c++ {
		if !isPivot[c] {
			free = append(free, c)
		}
	}
	ns := NewDense(f, cols, len(free))
	for k, fc := range free {
		ns.Set(fc, k, f.One())
		for r, pc := range pivotCol {
			ns.Set(pc, k, f.Neg(m.At(r, fc)))
		}
	}
	return ns, nil
}
