package matrix

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Shared bounded worker pool for the dense substrate. Every parallel code
// path in this package — Parallel, ParallelStrassen, and the data-movement
// helpers inside Transpose / hcat / the diagonal scalings — schedules onto
// this one pool instead of spawning per-call goroutines, so a solver that
// performs thousands of multiplies reuses a fixed set of long-lived workers.
//
// The scheduling discipline is deadlock-free under arbitrary nesting
// (ParallelStrassen recurses through parallelDo): a job's chunks are claimed
// from an atomic counter, the submitting goroutine always executes the job
// itself, and workers are only *offered* the job with non-blocking sends.
// Completion therefore never depends on a pool worker being available.

// Pool metrics (obs registry). Counter adds are amortized: each run()
// invocation accumulates locally and commits once, so the per-chunk hot
// loop stays free of shared writes.
var (
	poolJobsSubmitted = obs.NewCounter("pool.jobs.submitted")
	poolChunksClaimed = obs.NewCounter("pool.chunks.claimed")
	poolCallerChunks  = obs.NewCounter("pool.chunks.caller")
	poolOffersDropped = obs.NewCounter("pool.offers.dropped")
	poolQueueDepth    = obs.NewGauge("pool.queue.depth")
	poolBusyWorkers   = obs.NewGauge("pool.workers.busy")

	// Submit-time distribution samples: the queue depth and busy-worker
	// count observed at every job submission. One lock-free histogram add
	// each, amortized over a whole parallel loop, turns the point-in-time
	// gauges above into scrape-able utilization distributions.
	poolQueueDepthHist = obs.NewHistogram("pool.queue.depth.sampled")
	poolBusyHist       = obs.NewHistogram("pool.workers.busy.sampled")
)

// poolJob is one parallel loop: the body is applied to grain-sized chunks of
// [0, n), each chunk claimed exactly once via the atomic counter.
type poolJob struct {
	body   func(lo, hi int)
	grain  int
	n      int
	chunks int64
	next   atomic.Int64
	done   sync.WaitGroup
}

// run claims and executes chunks until none remain. Both pool workers and
// the submitting goroutine drive jobs through this single entry point;
// caller marks the submitting goroutine so its pitch-in share is visible
// in the metrics (caller participation is what makes the pool
// deadlock-free, so its magnitude is worth watching).
func (j *poolJob) run(caller bool) {
	claimed := int64(0)
	for {
		c := j.next.Add(1) - 1
		if c >= j.chunks {
			break
		}
		lo := int(c) * j.grain
		hi := lo + j.grain
		if hi > j.n {
			hi = j.n
		}
		j.body(lo, hi)
		j.done.Done()
		claimed++
	}
	if claimed > 0 {
		poolChunksClaimed.Add(claimed)
		if caller {
			poolCallerChunks.Add(claimed)
		}
	}
}

var (
	poolOnce      sync.Once
	poolJobs      chan *poolJob
	poolSize      int
	poolStarted   atomic.Bool
	poolRequested atomic.Int64
)

// SetPoolWorkers fixes the width of the shared worker pool. It must be
// called before the pool's first use (any parallel multiply or data-movement
// helper); once the long-lived workers are running the width cannot change
// and SetPoolWorkers reports an error. n < 1 is rejected.
func SetPoolWorkers(n int) error {
	if n < 1 {
		return fmt.Errorf("matrix: pool width %d out of range", n)
	}
	if poolStarted.Load() {
		return fmt.Errorf("matrix: worker pool already started with %d workers", poolSize)
	}
	poolRequested.Store(int64(n))
	return nil
}

func startPool() {
	poolStarted.Store(true)
	if r := int(poolRequested.Load()); r >= 1 {
		poolSize = r
	} else {
		poolSize = runtime.GOMAXPROCS(0)
		if poolSize < 2 {
			// Keep at least one helper worker so the concurrent paths stay
			// exercised (and race-checked) even on single-core hosts.
			poolSize = 2
		}
	}
	poolJobs = make(chan *poolJob, 8*poolSize)
	for w := 0; w < poolSize; w++ {
		go func() {
			for j := range poolJobs {
				poolBusyWorkers.Add(1)
				j.run(false)
				poolBusyWorkers.Add(-1)
			}
		}()
	}
}

// PoolWorkers returns the number of long-lived workers in the shared pool
// (GOMAXPROCS at first use, minimum 2).
func PoolWorkers() int {
	poolOnce.Do(startPool)
	return poolSize
}

// parallelFor applies body to grain-sized chunks of [0, n) on the shared
// pool. The caller participates in the work, so the call is deadlock-free
// even when every pool worker is busy (including with nested parallelFors).
func parallelFor(n, grain int, body func(lo, hi int)) {
	parallelForMax(n, grain, 0, body)
}

// parallelForMax is parallelFor with the chunk count additionally capped at
// maxPar (0 means uncapped): at most maxPar goroutines ever work on the loop.
func parallelForMax(n, grain, maxPar int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	if maxPar > 0 && chunks > maxPar {
		grain = (n + maxPar - 1) / maxPar
		chunks = (n + grain - 1) / grain
	}
	if chunks <= 1 {
		body(0, n)
		return
	}
	poolOnce.Do(startPool)
	j := &poolJob{body: body, grain: grain, n: n, chunks: int64(chunks)}
	j.done.Add(chunks)
	poolJobsSubmitted.Inc()
	helpers := chunks - 1
	if helpers > poolSize {
		helpers = poolSize
	}
	dropped := int64(0)
offer:
	for h := 0; h < helpers; h++ {
		select {
		case poolJobs <- j:
		default:
			// Every worker busy: the caller picks up the slack.
			dropped = int64(helpers - h)
			break offer
		}
	}
	depth := int64(len(poolJobs))
	poolQueueDepth.Set(depth)
	poolQueueDepthHist.Observe(depth)
	poolBusyHist.Observe(poolBusyWorkers.Value())
	if dropped > 0 {
		poolOffersDropped.Add(dropped)
	}
	j.run(true)
	j.done.Wait()
}

// parallelDo runs the given functions on the shared pool and waits for all
// of them; ParallelStrassen uses it for the seven recursive products.
func parallelDo(fns ...func()) {
	if len(fns) == 1 {
		fns[0]()
		return
	}
	parallelFor(len(fns), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fns[i]()
		}
	})
}
