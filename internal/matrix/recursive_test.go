package matrix

import (
	"testing"

	"repro/internal/ff"
)

func TestInverseStrong(t *testing.T) {
	f := fp31
	src := ff.NewSource(411)
	for _, n := range []int{1, 2, 3, 5, 8, 13, 16} {
		// Draw until every leading minor is non-zero (overwhelmingly
		// likely over P31).
		var a *Dense[uint64]
		for {
			a = Random[uint64](f, src, n, n, ff.P31)
			ok, err := AllLeadingMinorsNonZero[uint64](f, a)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				break
			}
		}
		inv, err := InverseStrong[uint64](f, Classical[uint64]{}, a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !Mul[uint64](f, a, inv).Equal(f, Identity[uint64](f, n)) {
			t.Fatalf("n=%d: A·A⁻¹ != I", n)
		}
		want, err := Inverse[uint64](f, a)
		if err != nil {
			t.Fatal(err)
		}
		if !inv.Equal(f, want) {
			t.Fatalf("n=%d: recursive inverse differs from LU inverse", n)
		}
	}
	// A zero leading entry must be reported.
	bad := FromRows[uint64](f, [][]int64{{0, 1}, {1, 0}})
	if _, err := InverseStrong[uint64](f, Classical[uint64]{}, bad); err != ErrSingular {
		t.Fatalf("vanishing minor: err = %v, want ErrSingular", err)
	}
}

func TestInverseBH(t *testing.T) {
	f := fp31
	src := ff.NewSource(413)
	for _, n := range []int{1, 2, 4, 7, 12} {
		var a *Dense[uint64]
		for {
			a = Random[uint64](f, src, n, n, ff.P31)
			if d, _ := Det[uint64](f, a); !f.IsZero(d) {
				break
			}
		}
		inv, err := InverseBH[uint64](f, Classical[uint64]{}, a, src, ff.P31, 0)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !Mul[uint64](f, a, inv).Equal(f, Identity[uint64](f, n)) {
			t.Fatalf("n=%d: BH inverse wrong", n)
		}
	}
	// The preconditioner rescues matrices with vanishing leading minors
	// that InverseStrong alone refuses.
	swap := FromRows[uint64](f, [][]int64{{0, 1}, {1, 0}})
	if _, err := InverseStrong[uint64](f, Classical[uint64]{}, swap); err != ErrSingular {
		t.Fatal("expected the raw recursion to refuse the swap matrix")
	}
	inv, err := InverseBH[uint64](f, Classical[uint64]{}, swap, src, ff.P31, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !Mul[uint64](f, swap, inv).Equal(f, Identity[uint64](f, 2)) {
		t.Fatal("BH inverse of swap wrong")
	}
	// Singular input exhausts retries.
	sing := FromRows[uint64](f, [][]int64{{1, 2}, {2, 4}})
	if _, err := InverseBH[uint64](f, Classical[uint64]{}, sing, src, ff.P31, 3); err != ErrSingular {
		t.Fatalf("singular: err = %v, want ErrSingular", err)
	}
}

func TestInverseBHWithStrassen(t *testing.T) {
	f := fp31
	src := ff.NewSource(415)
	n := 10
	var a *Dense[uint64]
	for {
		a = Random[uint64](f, src, n, n, ff.P31)
		if d, _ := Det[uint64](f, a); !f.IsZero(d) {
			break
		}
	}
	inv, err := InverseBH[uint64](f, Strassen[uint64]{Cutoff: 2}, a, src, ff.P31, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !Mul[uint64](f, a, inv).Equal(f, Identity[uint64](f, n)) {
		t.Fatal("Strassen-backed BH inverse wrong")
	}
}
