package matrix

import "repro/internal/ff"

// BlackBox is a matrix accessed only through matrix-times-vector products,
// the access model of Wiedemann's method. Dense, Sparse and structured
// (Toeplitz/Hankel) matrices all implement it.
type BlackBox[E any] interface {
	// Dims returns (rows, cols).
	Dims() (int, int)
	// Apply returns A·x.
	Apply(f ff.Field[E], x []E) []E
}

// DenseBox adapts a Dense matrix to the BlackBox interface.
type DenseBox[E any] struct{ M *Dense[E] }

// Dims returns the matrix shape.
func (b DenseBox[E]) Dims() (int, int) { return b.M.Rows, b.M.Cols }

// Apply returns M·x.
func (b DenseBox[E]) Apply(f ff.Field[E], x []E) []E { return b.M.MulVec(f, x) }

// SparseBox adapts a Sparse matrix to the BlackBox interface.
type SparseBox[E any] struct{ M *Sparse[E] }

// Dims returns the matrix shape.
func (b SparseBox[E]) Dims() (int, int) { return b.M.Rows(), b.M.Cols() }

// Apply returns M·x.
func (b SparseBox[E]) Apply(f ff.Field[E], x []E) []E { return b.M.Apply(f, x) }

// DiagBox is a diagonal matrix as a black box: Apply costs n scalar
// multiplications. It is the D factor of the Kaltofen–Pan preconditioner
// Ã = A·H·D in the implicit (never materialized) route.
type DiagBox[E any] struct{ D []E }

// Dims returns the (square) shape.
func (b DiagBox[E]) Dims() (int, int) { return len(b.D), len(b.D) }

// Apply returns diag(D)·x.
func (b DiagBox[E]) Apply(f ff.Field[E], x []E) []E {
	if len(x) != len(b.D) {
		panic("matrix: DiagBox dimension mismatch")
	}
	out := make([]E, len(x))
	for i := range out {
		out[i] = f.Mul(b.D[i], x[i])
	}
	return out
}

// ComposedBox applies a chain of black boxes right to left: (B₁∘B₂∘…)(x).
// It represents products like Ã = A·H·D without forming them, the way
// Wiedemann's preconditioned algorithm consumes them.
type ComposedBox[E any] struct{ Boxes []BlackBox[E] }

// Dims returns (rows of the first box, cols of the last box).
func (c ComposedBox[E]) Dims() (int, int) {
	r, _ := c.Boxes[0].Dims()
	_, cl := c.Boxes[len(c.Boxes)-1].Dims()
	return r, cl
}

// Apply returns B₁(B₂(…(x))).
func (c ComposedBox[E]) Apply(f ff.Field[E], x []E) []E {
	for i := len(c.Boxes) - 1; i >= 0; i-- {
		x = c.Boxes[i].Apply(f, x)
	}
	return x
}

// KrylovIterative returns the m vectors b, Ab, A²b, …, A^{m−1}b by repeated
// application — the sequential way to drive Wiedemann's method (cost
// m − 1 black-box products).
func KrylovIterative[E any](f ff.Field[E], a BlackBox[E], b []E, m int) [][]E {
	out := make([][]E, m)
	cur := ff.VecCopy(b)
	for i := 0; i < m; i++ {
		out[i] = cur
		if i+1 < m {
			cur = a.Apply(f, cur)
		}
	}
	return out
}

// KrylovDoubling returns [b | Ab | … | A^{m−1}b] as the columns of a dense
// matrix, computed by the doubling argument of the paper's equation (9):
//
//	A^{2^i}·(v  Av  …  A^{2^i−1}v) = (A^{2^i}v  …  A^{2^{i+1}−1}v)
//
// (Borodin–Munro p. 128; Keller-Gehrig 1985). Each of the ⌈log₂ m⌉ rounds
// is one matrix product plus one squaring, so the whole Krylov matrix costs
// O(n^ω log m) operations at O((log n)²) circuit depth — this is what makes
// the Kaltofen–Pan solver processor efficient, where the iterative method
// would have depth Ω(n). On real cores the same structure parallelizes: the
// two products per round go through mul (plug in Parallel or
// ParallelStrassen for the pooled kernels) and the column-batch
// concatenation fans out over the shared worker pool.
func KrylovDoubling[E any](f ff.Field[E], mul Multiplier[E], a *Dense[E], b []E, m int) *Dense[E] {
	a.mustSquare()
	n := a.Rows
	if len(b) != n {
		panic("matrix: KrylovDoubling dimension mismatch")
	}
	// The single-vector case of the block doubling: K starts as the one
	// column b and each round appends A^{2^i}·K.
	col := &Dense[E]{Rows: n, Cols: 1, Data: append([]E(nil), b...)}
	return KrylovBlockDoubling(f, mul, a, col, m, nil)
}

// hcat concatenates the column batches [a | b] of a doubling round. The
// copies carry no field operations, so large batches are interleaved in
// parallel on the shared worker pool regardless of element type.
func hcat[E any](f ff.Field[E], a, b *Dense[E]) *Dense[E] {
	if a.Rows != b.Rows {
		panic("matrix: hcat row mismatch")
	}
	out := &Dense[E]{Rows: a.Rows, Cols: a.Cols + b.Cols, Data: make([]E, a.Rows*(a.Cols+b.Cols))}
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(out.Data[i*out.Cols:i*out.Cols+a.Cols], a.Data[i*a.Cols:(i+1)*a.Cols])
			copy(out.Data[i*out.Cols+a.Cols:(i+1)*out.Cols], b.Data[i*b.Cols:(i+1)*b.Cols])
		}
	}
	if len(out.Data) >= parallelCopyMin {
		parallelFor(a.Rows, 32, body)
	} else {
		body(0, a.Rows)
	}
	return out
}

// ProjectKrylov returns the scalars a_i = u·k_i for the columns k_i of the
// Krylov matrix: the linearly generated sequence {u A^i b} of Wiedemann's
// method, computed with balanced inner products.
func ProjectKrylov[E any](f ff.Field[E], u []E, k *Dense[E]) []E {
	if len(u) != k.Rows {
		panic("matrix: ProjectKrylov dimension mismatch")
	}
	return k.VecMul(f, u)
}

// ProjectSequence returns u·v_i for a list of vectors, with fused
// allocation-free dots over kernel-bearing fields.
func ProjectSequence[E any](f ff.Field[E], u []E, vs [][]E) []E {
	out := make([]E, len(vs))
	for i, v := range vs {
		out[i] = ff.DotFused(f, u, v)
	}
	return out
}
