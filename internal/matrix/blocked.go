package matrix

import "repro/internal/ff"

// Blocked is the cache-blocked classical multiplier: an i-k-j loop nest with
// square tiles over the k and j dimensions, so a tile of b and the active
// rows of out stay resident in L1/L2 across the whole accumulation. Unlike
// Classical — whose balanced-tree inner products allocate two temporary
// slices per output entry so traced circuits get O(log n) depth — the
// blocked kernel is allocation-free in its inner loops, which is what makes
// it the fast path for word-sized concrete fields.
//
// The accumulation is sequential per entry (depth Ω(n) if traced), so
// circuit tracing must keep using Classical or Strassen; core maps the
// multiplier choice accordingly.
type Blocked[E any] struct {
	// Tile is the square tile edge for the k and j loops; 0 selects
	// defaultMulTile.
	Tile int
}

// defaultMulTile is 64: a 64×64 tile of 8-byte words is 32 KiB, matching
// typical L1 data caches.
const defaultMulTile = 64

// Name returns "blocked".
func (Blocked[E]) Name() string { return "blocked" }

// Omega returns 3.
func (Blocked[E]) Omega() float64 { return 3 }

// Mul returns a·b.
func (blk Blocked[E]) Mul(f ff.Field[E], a, b *Dense[E]) *Dense[E] {
	if a.Cols != b.Rows {
		panic("matrix: Mul dimension mismatch")
	}
	out := NewDense(f, a.Rows, b.Cols)
	blockedMulInto(f, a, b, out, 0, a.Rows, blk.tile())
	return out
}

func (blk Blocked[E]) tile() int {
	if blk.Tile > 0 {
		return blk.Tile
	}
	return defaultMulTile
}

// blockedMulInto accumulates rows [r0, r1) of a·b into out, whose entries in
// that row range must already be zero. The j loop is innermost and walks
// contiguous rows of b and out, so the kernel streams at full cache-line
// width; the jj/kk tiling bounds the working set to O(tile²) entries of b.
// Row ranges of out are disjoint per call, which is what lets Parallel and
// ParallelStrassen run bands of the same product concurrently.
//
// Over a field with fused kernels (ff.Kernels) the inner row update runs as
// one MulAddVec per (i, k) pair — division-free Montgomery arithmetic with
// no per-element interface dispatch — instead of per-element f.Add(f.Mul).
func blockedMulInto[E any](f ff.Field[E], a, b, out *Dense[E], r0, r1, tile int) {
	n, m := a.Cols, b.Cols
	ker, fused := ff.KernelsOf(f)
	for jj := 0; jj < m; jj += tile {
		jmax := min(jj+tile, m)
		for kk := 0; kk < n; kk += tile {
			kmax := min(kk+tile, n)
			for i := r0; i < r1; i++ {
				arow := a.Data[i*n : (i+1)*n]
				orow := out.Data[i*m : (i+1)*m]
				if fused {
					oseg := orow[jj:jmax]
					for k := kk; k < kmax; k++ {
						ker.MulAddVec(oseg, arow[k], b.Data[k*m+jj:k*m+jmax])
					}
					continue
				}
				for k := kk; k < kmax; k++ {
					aik := arow[k]
					brow := b.Data[k*m : (k+1)*m]
					for j := jj; j < jmax; j++ {
						orow[j] = f.Add(orow[j], f.Mul(aik, brow[j]))
					}
				}
			}
		}
	}
}

// zeroDenseRange sets rows [r0, r1) of out to zero — the accumulation
// identity blockedMulInto needs. Pooled scratch matrices arrive with stale
// contents, so every into-style product clears its target first.
func zeroDenseRange[E any](f ff.Field[E], out *Dense[E], r0, r1 int) {
	z := f.Zero()
	row := out.Data[r0*out.Cols : r1*out.Cols]
	for i := range row {
		row[i] = z
	}
}
