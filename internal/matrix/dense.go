// Package matrix provides the dense, sparse and black-box linear-algebra
// substrate of the reproduction: the objects Kaltofen–Pan's algorithms act
// on, the Gaussian-elimination baseline they are compared against
// (Bunch–Hopcroft relate its cost to matrix multiplication), Strassen's
// sub-cubic multiplication standing in for the paper's O(n^ω) black box,
// Krylov-sequence generation with Keller-Gehrig doubling (the paper's
// equation (9)), and the random Hankel/diagonal preconditioners of
// Theorem 2.
package matrix

import (
	"fmt"

	"repro/internal/ff"
)

// Dense is a dense r×c matrix over an abstract field, stored row-major.
// Elements are treated as immutable; entries may be shared between
// matrices.
type Dense[E any] struct {
	Rows, Cols int
	Data       []E // len = Rows*Cols, row-major
}

// NewDense returns a zero r×c matrix.
func NewDense[E any](f ff.Field[E], r, c int) *Dense[E] {
	if r < 0 || c < 0 {
		panic("matrix: negative dimension")
	}
	d := &Dense[E]{Rows: r, Cols: c, Data: make([]E, r*c)}
	for i := range d.Data {
		d.Data[i] = f.Zero()
	}
	return d
}

// Identity returns the n×n identity matrix.
func Identity[E any](f ff.Field[E], n int) *Dense[E] {
	m := NewDense(f, n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, f.One())
	}
	return m
}

// FromRows builds a matrix from integer rows (all rows must have equal
// length); a convenience for tests and examples.
func FromRows[E any](f ff.Field[E], rows [][]int64) *Dense[E] {
	r := len(rows)
	c := 0
	if r > 0 {
		c = len(rows[0])
	}
	m := NewDense(f, r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("matrix: ragged rows")
		}
		for j, v := range row {
			m.Set(i, j, f.FromInt64(v))
		}
	}
	return m
}

// Random returns an r×c matrix with independent uniform entries from the
// canonical subset of size subset.
func Random[E any](f ff.Field[E], src *ff.Source, r, c int, subset uint64) *Dense[E] {
	m := &Dense[E]{Rows: r, Cols: c, Data: make([]E, r*c)}
	for i := range m.Data {
		m.Data[i] = ff.Sample(f, src, subset)
	}
	return m
}

// At returns the (i, j) entry.
func (m *Dense[E]) At(i, j int) E {
	return m.Data[i*m.Cols+j]
}

// Set assigns the (i, j) entry.
func (m *Dense[E]) Set(i, j int, v E) {
	m.Data[i*m.Cols+j] = v
}

// Clone returns a copy sharing no slice structure with m.
func (m *Dense[E]) Clone() *Dense[E] {
	return &Dense[E]{Rows: m.Rows, Cols: m.Cols, Data: append([]E(nil), m.Data...)}
}

// Row returns a copy of row i.
func (m *Dense[E]) Row(i int) []E {
	return append([]E(nil), m.Data[i*m.Cols:(i+1)*m.Cols]...)
}

// Col returns a copy of column j.
func (m *Dense[E]) Col(j int) []E {
	c := make([]E, m.Rows)
	for i := range c {
		c[i] = m.At(i, j)
	}
	return c
}

// parallelCopyMin is the element count above which pure data-movement
// helpers (Transpose, hcat) fan out over the shared worker pool. Copies
// involve no field operations, so this path is safe for every element type,
// including circuit wires.
const parallelCopyMin = 1 << 14

// Transpose returns mᵀ. Large matrices transpose in parallel row bands on
// the shared worker pool.
func (m *Dense[E]) Transpose() *Dense[E] {
	t := &Dense[E]{Rows: m.Cols, Cols: m.Rows, Data: make([]E, len(m.Data))}
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Data[i*m.Cols : (i+1)*m.Cols]
			for j, v := range row {
				t.Data[j*t.Cols+i] = v
			}
		}
	}
	if len(m.Data) >= parallelCopyMin {
		parallelFor(m.Rows, 32, body)
	} else {
		body(0, m.Rows)
	}
	return t
}

// parallelOpsMin is the element count above which elementwise field-op
// helpers fan out, provided the field is safe for concurrent use.
const parallelOpsMin = 1 << 13

// ScaleColumnsDiag returns m·D for the diagonal matrix with entries d —
// column j of the result is d[j]·(column j of m). Right-multiplying by a
// diagonal never needs a full matrix product; the preconditioning pipelines
// (Ã = A·H·D) use this as their D step. Large products over
// concurrency-safe fields run in parallel row bands.
func ScaleColumnsDiag[E any](f ff.Field[E], m *Dense[E], d []E) *Dense[E] {
	if len(d) != m.Cols {
		panic("matrix: ScaleColumnsDiag dimension mismatch")
	}
	out := &Dense[E]{Rows: m.Rows, Cols: m.Cols, Data: make([]E, len(m.Data))}
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Data[i*m.Cols : (i+1)*m.Cols]
			orow := out.Data[i*m.Cols : (i+1)*m.Cols]
			for j, v := range row {
				orow[j] = f.Mul(v, d[j])
			}
		}
	}
	if len(m.Data) >= parallelOpsMin && ff.IsConcurrentSafe(f) {
		parallelFor(m.Rows, 32, body)
	} else {
		body(0, m.Rows)
	}
	return out
}

// ScaleRowsDiag returns D·m for the diagonal matrix with entries d — row i
// of the result is d[i]·(row i of m); the undo step of the preconditioned
// inverses. Large products over concurrency-safe fields run in parallel.
func ScaleRowsDiag[E any](f ff.Field[E], m *Dense[E], d []E) *Dense[E] {
	if len(d) != m.Rows {
		panic("matrix: ScaleRowsDiag dimension mismatch")
	}
	out := &Dense[E]{Rows: m.Rows, Cols: m.Cols, Data: make([]E, len(m.Data))}
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			di := d[i]
			row := m.Data[i*m.Cols : (i+1)*m.Cols]
			orow := out.Data[i*m.Cols : (i+1)*m.Cols]
			for j, v := range row {
				orow[j] = f.Mul(di, v)
			}
		}
	}
	if len(m.Data) >= parallelOpsMin && ff.IsConcurrentSafe(f) {
		parallelFor(m.Rows, 32, body)
	} else {
		body(0, m.Rows)
	}
	return out
}

// Leading returns the leading principal k×k submatrix (a copy).
func (m *Dense[E]) Leading(k int) *Dense[E] {
	if k > m.Rows || k > m.Cols {
		panic("matrix: leading submatrix too large")
	}
	s := &Dense[E]{Rows: k, Cols: k, Data: make([]E, k*k)}
	for i := 0; i < k; i++ {
		copy(s.Data[i*k:(i+1)*k], m.Data[i*m.Cols:i*m.Cols+k])
	}
	return s
}

// Submatrix returns the block with the given half-open row/column ranges.
func (m *Dense[E]) Submatrix(r0, r1, c0, c1 int) *Dense[E] {
	if r0 < 0 || c0 < 0 || r1 > m.Rows || c1 > m.Cols || r0 > r1 || c0 > c1 {
		panic("matrix: submatrix out of range")
	}
	s := &Dense[E]{Rows: r1 - r0, Cols: c1 - c0, Data: make([]E, (r1-r0)*(c1-c0))}
	for i := r0; i < r1; i++ {
		copy(s.Data[(i-r0)*s.Cols:(i-r0+1)*s.Cols], m.Data[i*m.Cols+c0:i*m.Cols+c1])
	}
	return s
}

// Equal reports whether m and o are elementwise equal.
func (m *Dense[E]) Equal(f ff.Field[E], o *Dense[E]) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i := range m.Data {
		if !f.Equal(m.Data[i], o.Data[i]) {
			return false
		}
	}
	return true
}

// IsZero reports whether every entry of m is zero.
func (m *Dense[E]) IsZero(f ff.Field[E]) bool {
	for i := range m.Data {
		if !f.IsZero(m.Data[i]) {
			return false
		}
	}
	return true
}

// Add returns m + o.
func (m *Dense[E]) Add(f ff.Field[E], o *Dense[E]) *Dense[E] {
	m.mustSameShape(o)
	out := &Dense[E]{Rows: m.Rows, Cols: m.Cols, Data: make([]E, len(m.Data))}
	for i := range m.Data {
		out.Data[i] = f.Add(m.Data[i], o.Data[i])
	}
	return out
}

// Sub returns m − o.
func (m *Dense[E]) Sub(f ff.Field[E], o *Dense[E]) *Dense[E] {
	m.mustSameShape(o)
	out := &Dense[E]{Rows: m.Rows, Cols: m.Cols, Data: make([]E, len(m.Data))}
	for i := range m.Data {
		out.Data[i] = f.Sub(m.Data[i], o.Data[i])
	}
	return out
}

// Scale returns s·m.
func (m *Dense[E]) Scale(f ff.Field[E], s E) *Dense[E] {
	out := &Dense[E]{Rows: m.Rows, Cols: m.Cols, Data: make([]E, len(m.Data))}
	for i := range m.Data {
		out.Data[i] = f.Mul(s, m.Data[i])
	}
	return out
}

// MulVec returns m·x for a column vector x. Inner products dispatch through
// ff.DotFused: fused lazy-reduction dots over kernel-bearing fields,
// balanced trees (O(log n) traced depth) everywhere else.
func (m *Dense[E]) MulVec(f ff.Field[E], x []E) []E {
	if len(x) != m.Cols {
		panic("matrix: MulVec dimension mismatch")
	}
	out := make([]E, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = ff.DotFused(f, m.Data[i*m.Cols:(i+1)*m.Cols], x)
	}
	return out
}

// VecMul returns xᵀ·m for a row vector x. Over a field with fused kernels
// it streams row-major (out += x[i]·row_i, one MulAddVec per row, no
// temporaries); the generic path keeps the per-column balanced sums.
func (m *Dense[E]) VecMul(f ff.Field[E], x []E) []E {
	if len(x) != m.Rows {
		panic("matrix: VecMul dimension mismatch")
	}
	out := make([]E, m.Cols)
	if ker, ok := ff.KernelsOf(f); ok {
		for j := range out {
			out[j] = f.Zero()
		}
		for i := 0; i < m.Rows; i++ {
			ker.MulAddVec(out, x[i], m.Data[i*m.Cols:(i+1)*m.Cols])
		}
		return out
	}
	for j := 0; j < m.Cols; j++ {
		terms := make([]E, m.Rows)
		for i := 0; i < m.Rows; i++ {
			terms[i] = f.Mul(x[i], m.At(i, j))
		}
		out[j] = ff.SumTree(f, terms)
	}
	return out
}

// Trace returns the trace of a square matrix via a balanced sum.
func (m *Dense[E]) Trace(f ff.Field[E]) E {
	m.mustSquare()
	d := make([]E, m.Rows)
	for i := range d {
		d[i] = m.At(i, i)
	}
	return ff.SumTree(f, d)
}

// Diagonal returns a square matrix with the given diagonal entries.
func Diagonal[E any](f ff.Field[E], d []E) *Dense[E] {
	m := NewDense(f, len(d), len(d))
	for i, v := range d {
		m.Set(i, i, v)
	}
	return m
}

// String formats small matrices for diagnostics.
func (m *Dense[E]) String(f ff.Field[E]) string {
	s := ""
	for i := 0; i < m.Rows; i++ {
		s += ff.VecString(f, m.Data[i*m.Cols:(i+1)*m.Cols]) + "\n"
	}
	return s
}

func (m *Dense[E]) mustSameShape(o *Dense[E]) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("matrix: shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

func (m *Dense[E]) mustSquare() {
	if m.Rows != m.Cols {
		panic("matrix: operation requires a square matrix")
	}
}
