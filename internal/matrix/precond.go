package matrix

import (
	"repro/internal/ff"
	"repro/internal/obs"
)

// Random preconditioners of Kaltofen–Pan §2. Theorem 2 (due to B. D.
// Saunders): for a random Hankel matrix H with entries uniform in S, every
// leading principal submatrix of Â = A·H is non-singular with probability
// ≥ 1 − n(n−1)/(2|S|). Equation (1) (Wiedemann): with a further random
// diagonal D, Ã = Â·D has its minimum polynomial equal to its
// characteristic polynomial with probability ≥ 1 − n(2n−2)/|S|.

// HankelDense builds the n×n Hankel matrix H with H[i][j] = h[i+j] from the
// 2n−1 entries h₀ … h_{2n−2} (the paper's matrix in Theorem 2).
func HankelDense[E any](f ff.Field[E], h []E) *Dense[E] {
	if len(h)%2 == 0 {
		panic("matrix: Hankel needs an odd number of entries (2n−1)")
	}
	n := (len(h) + 1) / 2
	m := &Dense[E]{Rows: n, Cols: n, Data: make([]E, n*n)}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Data[i*n+j] = h[i+j]
		}
	}
	return m
}

// ToeplitzDense builds the n×n Toeplitz matrix T with T[i][j] = t[n−1+i−j]
// from the 2n−1 entries t₀ … t_{2n−2} (t₀ is the top-right corner, matching
// the paper's display (4)).
func ToeplitzDense[E any](f ff.Field[E], t []E) *Dense[E] {
	if len(t)%2 == 0 {
		panic("matrix: Toeplitz needs an odd number of entries (2n−1)")
	}
	n := (len(t) + 1) / 2
	m := &Dense[E]{Rows: n, Cols: n, Data: make([]E, n*n)}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Data[i*n+j] = t[n-1+i-j]
		}
	}
	return m
}

// Preconditioner bundles the random Hankel and diagonal factors H, D of
// the transformation Ã = A·H·D together with the raw random entries, so
// that det(H) and det(D) can be recovered when undoing the preconditioning
// (the paper divides the computed determinant by det(H)·det(D)).
type Preconditioner[E any] struct {
	HEntries []E // 2n−1 Hankel entries
	DEntries []E // n diagonal entries
	H        *Dense[E]
	D        *Dense[E]
}

// NewPreconditioner draws H and D with entries uniform from the canonical
// subset of size subset. The diagonal entries are drawn non-zero: a zero
// entry makes D singular outright, and the paper's probability analysis
// already charges for this case, so rejecting zeros only improves the
// constant while keeping the Ã-distribution within the analysis.
func NewPreconditioner[E any](f ff.Field[E], src *ff.Source, n int, subset uint64) *Preconditioner[E] {
	h := ff.SampleVec(f, src, 2*n-1, subset)
	d := make([]E, n)
	for i := range d {
		d[i] = ff.SampleNonZero(f, src, subset)
	}
	return &Preconditioner[E]{
		HEntries: h,
		DEntries: d,
		H:        HankelDense(f, h),
		D:        Diagonal(f, d),
	}
}

// Apply returns Ã = A·H·D.
func (p *Preconditioner[E]) Apply(f ff.Field[E], mul Multiplier[E], a *Dense[E]) *Dense[E] {
	sp := obs.StartPhase(obs.PhasePrecondition)
	defer sp.End()
	ah := mul.Mul(f, a, p.H)
	// Right-multiplying by a diagonal scales columns; no full product needed.
	return ScaleColumnsDiag(f, ah, p.DEntries)
}

// DetD returns det(D) = ∏ dᵢ via a balanced product.
func (p *Preconditioner[E]) DetD(f ff.Field[E]) E {
	terms := ff.VecCopy(p.DEntries)
	for len(terms) > 1 {
		next := terms[:(len(terms)+1)/2]
		for i := 0; i+1 < len(terms); i += 2 {
			next[i/2] = f.Mul(terms[i], terms[i+1])
		}
		if len(terms)%2 == 1 {
			next[len(next)-1] = terms[len(terms)-1]
		}
		terms = next
	}
	if len(terms) == 0 {
		return f.One()
	}
	return terms[0]
}

// AllLeadingMinorsNonZero reports whether every leading principal k×k minor
// of a is non-zero — the property Theorem 2 establishes for Â = AH. It is
// used by the E2 experiment, not by the algorithms themselves (which never
// zero-test).
func AllLeadingMinorsNonZero[E any](f ff.Field[E], a *Dense[E]) (bool, error) {
	a.mustSquare()
	for k := 1; k <= a.Rows; k++ {
		d, err := Det(f, a.Leading(k))
		if err != nil {
			return false, err
		}
		if f.IsZero(d) {
			return false, nil
		}
	}
	return true, nil
}
