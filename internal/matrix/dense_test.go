package matrix

import (
	"testing"

	"repro/internal/ff"
)

var f101 = ff.MustFp64(101)
var fp31 = ff.MustFp64(ff.P31)

func TestDenseBasics(t *testing.T) {
	f := f101
	m := FromRows[uint64](f, [][]int64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatal("At/FromRows wrong")
	}
	m.Set(0, 0, f.FromInt64(9))
	if m.At(0, 0) != 9 {
		t.Fatal("Set wrong")
	}
	c := m.Clone()
	c.Set(0, 0, f.FromInt64(7))
	if m.At(0, 0) != 9 {
		t.Fatal("Clone aliases original")
	}
	mt := m.Transpose()
	if mt.At(1, 0) != 2 || mt.At(0, 1) != 3 {
		t.Fatal("Transpose wrong")
	}
	if !ff.VecEqual[uint64](f, m.Row(1), ff.VecFromInt64[uint64](f, []int64{3, 4})) {
		t.Fatal("Row wrong")
	}
	if !ff.VecEqual[uint64](f, m.Col(1), ff.VecFromInt64[uint64](f, []int64{2, 4})) {
		t.Fatal("Col wrong")
	}
	id := Identity[uint64](f, 2)
	if !Mul[uint64](f, m, id).Equal(f, m) {
		t.Fatal("m·I != m")
	}
	if !NewDense[uint64](f, 3, 3).IsZero(f) {
		t.Fatal("NewDense not zero")
	}
}

func TestDenseArith(t *testing.T) {
	f := f101
	a := FromRows[uint64](f, [][]int64{{1, 2}, {3, 4}})
	b := FromRows[uint64](f, [][]int64{{5, 6}, {7, 8}})
	if !a.Add(f, b).Equal(f, FromRows[uint64](f, [][]int64{{6, 8}, {10, 12}})) {
		t.Fatal("Add wrong")
	}
	if !b.Sub(f, a).Equal(f, FromRows[uint64](f, [][]int64{{4, 4}, {4, 4}})) {
		t.Fatal("Sub wrong")
	}
	if !a.Scale(f, f.FromInt64(2)).Equal(f, FromRows[uint64](f, [][]int64{{2, 4}, {6, 8}})) {
		t.Fatal("Scale wrong")
	}
	// {1,2},{3,4} · {5,6},{7,8} = {19,22},{43,50}
	if !Mul[uint64](f, a, b).Equal(f, FromRows[uint64](f, [][]int64{{19, 22}, {43, 50}})) {
		t.Fatal("Mul wrong")
	}
	x := ff.VecFromInt64[uint64](f, []int64{1, 1})
	if !ff.VecEqual[uint64](f, a.MulVec(f, x), ff.VecFromInt64[uint64](f, []int64{3, 7})) {
		t.Fatal("MulVec wrong")
	}
	if !ff.VecEqual[uint64](f, a.VecMul(f, x), ff.VecFromInt64[uint64](f, []int64{4, 6})) {
		t.Fatal("VecMul wrong")
	}
	if a.Trace(f) != 5 {
		t.Fatal("Trace wrong")
	}
}

func TestSubmatrixLeading(t *testing.T) {
	f := f101
	m := FromRows[uint64](f, [][]int64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	if !m.Leading(2).Equal(f, FromRows[uint64](f, [][]int64{{1, 2}, {4, 5}})) {
		t.Fatal("Leading wrong")
	}
	if !m.Submatrix(1, 3, 1, 3).Equal(f, FromRows[uint64](f, [][]int64{{5, 6}, {8, 9}})) {
		t.Fatal("Submatrix wrong")
	}
}

func TestMultipliersAgree(t *testing.T) {
	f := fp31
	src := ff.NewSource(42)
	multipliers := []Multiplier[uint64]{
		Classical[uint64]{},
		Parallel[uint64]{Workers: 3},
		Strassen[uint64]{Cutoff: 4},
		Blocked[uint64]{Tile: 7},
		ParallelStrassen[uint64]{Cutoff: 8},
		NewInstrumented[uint64](Parallel[uint64]{}),
	}
	for _, n := range []int{1, 2, 3, 7, 8, 16, 33} {
		a := Random[uint64](f, src, n, n, ff.P31)
		b := Random[uint64](f, src, n, n, ff.P31)
		want := mulClassical[uint64](f, a, b)
		for _, m := range multipliers {
			if got := m.Mul(f, a, b); !got.Equal(f, want) {
				t.Fatalf("n=%d: %s disagrees with classical", n, m.Name())
			}
		}
	}
	// Rectangular fall-through for Strassen.
	a := Random[uint64](f, src, 5, 9, ff.P31)
	b := Random[uint64](f, src, 9, 3, ff.P31)
	if !(Strassen[uint64]{}).Mul(f, a, b).Equal(f, mulClassical[uint64](f, a, b)) {
		t.Fatal("Strassen rectangular fallback wrong")
	}
}

func TestPow(t *testing.T) {
	f := f101
	a := FromRows[uint64](f, [][]int64{{1, 1}, {0, 1}})
	p := Pow[uint64](f, a, 5)
	if !p.Equal(f, FromRows[uint64](f, [][]int64{{1, 5}, {0, 1}})) {
		t.Fatal("Pow wrong")
	}
	if !Pow[uint64](f, a, 0).Equal(f, Identity[uint64](f, 2)) {
		t.Fatal("a^0 != I")
	}
}

func TestFactorSolveDet(t *testing.T) {
	f := fp31
	src := ff.NewSource(7)
	for _, n := range []int{1, 2, 3, 5, 10, 25} {
		a := Random[uint64](f, src, n, n, ff.P31)
		b := ff.SampleVec[uint64](f, src, n, ff.P31)
		lu, err := Factor[uint64](f, a)
		if err != nil {
			t.Fatal(err)
		}
		if lu.Rank < n {
			continue // singular random instance; astronomically unlikely
		}
		x, err := lu.Solve(f, b)
		if err != nil {
			t.Fatal(err)
		}
		if !ff.VecEqual[uint64](f, a.MulVec(f, x), b) {
			t.Fatalf("n=%d: Ax != b", n)
		}
		// det(A)·det(A⁻¹) = 1 and A·A⁻¹ = I.
		d := lu.Det(f)
		inv, err := Inverse[uint64](f, a)
		if err != nil {
			t.Fatal(err)
		}
		if !Mul[uint64](f, a, inv).Equal(f, Identity[uint64](f, n)) {
			t.Fatalf("n=%d: A·A⁻¹ != I", n)
		}
		dInv, err := Det[uint64](f, inv)
		if err != nil {
			t.Fatal(err)
		}
		if f.Mul(d, dInv) != 1 {
			t.Fatalf("n=%d: det(A)·det(A⁻¹) != 1", n)
		}
	}
}

func TestDetKnownValues(t *testing.T) {
	f := f101
	// det {{1,2},{3,4}} = −2 ≡ 99.
	d, err := Det[uint64](f, FromRows[uint64](f, [][]int64{{1, 2}, {3, 4}}))
	if err != nil {
		t.Fatal(err)
	}
	if d != 99 {
		t.Fatalf("det = %d, want 99", d)
	}
	// Permutation matrix with odd permutation: det = −1.
	p := FromRows[uint64](f, [][]int64{{0, 1}, {1, 0}})
	d, err = Det[uint64](f, p)
	if err != nil {
		t.Fatal(err)
	}
	if d != 100 {
		t.Fatalf("det(swap) = %d, want −1 ≡ 100", d)
	}
	// Singular matrix: det = 0, Solve errors.
	s := FromRows[uint64](f, [][]int64{{1, 2}, {2, 4}})
	d, err = Det[uint64](f, s)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("det(singular) = %d", d)
	}
	if _, err := Solve[uint64](f, s, []uint64{1, 1}); err != ErrSingular {
		t.Fatalf("Solve singular: err = %v", err)
	}
	if _, err := Inverse[uint64](f, s); err != ErrSingular {
		t.Fatalf("Inverse singular: err = %v", err)
	}
}

func TestRankAndNullspace(t *testing.T) {
	f := fp31
	src := ff.NewSource(8)
	for _, tc := range []struct{ n, r int }{{3, 1}, {4, 2}, {6, 3}, {8, 8}, {5, 0}} {
		a := randomRank[uint64](f, src, tc.n, tc.r)
		got, err := Rank[uint64](f, a)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.r {
			t.Fatalf("Rank = %d, want %d", got, tc.r)
		}
		ns, err := NullspaceDense[uint64](f, a)
		if err != nil {
			t.Fatal(err)
		}
		if ns.Cols != tc.n-tc.r {
			t.Fatalf("nullity = %d, want %d", ns.Cols, tc.n-tc.r)
		}
		if ns.Cols > 0 {
			prod := Mul[uint64](f, a, ns)
			if !prod.IsZero(f) {
				t.Fatal("A·N != 0")
			}
			nsRank, err := Rank[uint64](f, ns)
			if err != nil {
				t.Fatal(err)
			}
			if nsRank != ns.Cols {
				t.Fatal("nullspace basis not independent")
			}
		}
	}
}

// randomRank returns an n×n matrix of exact rank r as a product of random
// n×r and r×n full-rank factors.
func randomRank[E any](f ff.Field[E], src *ff.Source, n, r int) *Dense[E] {
	if r == 0 {
		return NewDense(f, n, n)
	}
	for {
		l := Random(f, src, n, r, 1<<20)
		rm := Random(f, src, r, n, 1<<20)
		m := Mul(f, l, rm)
		if got, _ := Rank(f, m); got == r {
			return m
		}
	}
}

func TestSparse(t *testing.T) {
	f := f101
	entries := []Entry[uint64]{
		{0, 0, f.FromInt64(1)}, {0, 2, f.FromInt64(2)},
		{1, 1, f.FromInt64(3)},
		{2, 0, f.FromInt64(4)}, {2, 2, f.FromInt64(5)},
		{2, 2, f.FromInt64(96)}, // duplicate: 5 + 96 ≡ 0, must be dropped
	}
	s := NewSparse[uint64](f, 3, 3, entries)
	if s.NNZ() != 4 {
		t.Fatalf("NNZ = %d, want 4 (dup summed to zero dropped)", s.NNZ())
	}
	d := s.Dense(f)
	x := ff.VecFromInt64[uint64](f, []int64{1, 2, 3})
	if !ff.VecEqual[uint64](f, s.Apply(f, x), d.MulVec(f, x)) {
		t.Fatal("sparse Apply disagrees with dense")
	}
	if !ff.VecEqual[uint64](f, s.ApplyTranspose(f, x), d.Transpose().MulVec(f, x)) {
		t.Fatal("sparse ApplyTranspose disagrees with dense")
	}
}

func TestRandomSparse(t *testing.T) {
	f := fp31
	src := ff.NewSource(5)
	s := RandomSparse[uint64](f, src, 40, 0.05, ff.P31)
	if s.NNZ() < 40 {
		t.Fatal("diagonal entries missing")
	}
	// Density sanity: expect about 40 + 0.05·40·39 ≈ 118 nonzeros.
	if s.NNZ() > 400 {
		t.Fatalf("NNZ = %d far above expectation", s.NNZ())
	}
	x := ff.SampleVec[uint64](f, src, 40, ff.P31)
	if !ff.VecEqual[uint64](f, s.Apply(f, x), s.Dense(f).MulVec(f, x)) {
		t.Fatal("RandomSparse Apply mismatch")
	}
}

func TestKrylov(t *testing.T) {
	f := fp31
	src := ff.NewSource(9)
	n, m := 8, 16
	a := Random[uint64](f, src, n, n, ff.P31)
	b := ff.SampleVec[uint64](f, src, n, ff.P31)

	iter := KrylovIterative[uint64](f, DenseBox[uint64]{a}, b, m)
	doub := KrylovDoubling[uint64](f, Classical[uint64]{}, a, b, m)
	if doub.Cols != m || doub.Rows != n {
		t.Fatalf("KrylovDoubling shape %dx%d", doub.Rows, doub.Cols)
	}
	for j := 0; j < m; j++ {
		if !ff.VecEqual[uint64](f, doub.Col(j), iter[j]) {
			t.Fatalf("Krylov column %d mismatch", j)
		}
	}
	// Projections agree.
	u := ff.SampleVec[uint64](f, src, n, ff.P31)
	p1 := ProjectKrylov[uint64](f, u, doub)
	p2 := ProjectSequence[uint64](f, u, iter)
	if !ff.VecEqual[uint64](f, p1, p2) {
		t.Fatal("projection mismatch")
	}
	// Non-power-of-two m.
	doub13 := KrylovDoubling[uint64](f, Classical[uint64]{}, a, b, 13)
	if doub13.Cols != 13 {
		t.Fatalf("m=13: got %d columns", doub13.Cols)
	}
	for j := 0; j < 13; j++ {
		if !ff.VecEqual[uint64](f, doub13.Col(j), iter[j]) {
			t.Fatalf("m=13 column %d mismatch", j)
		}
	}
}

func TestComposedBox(t *testing.T) {
	f := f101
	a := FromRows[uint64](f, [][]int64{{1, 2}, {3, 4}})
	b := FromRows[uint64](f, [][]int64{{0, 1}, {1, 0}})
	comp := ComposedBox[uint64]{Boxes: []BlackBox[uint64]{DenseBox[uint64]{a}, DenseBox[uint64]{b}}}
	x := ff.VecFromInt64[uint64](f, []int64{5, 6})
	want := Mul[uint64](f, a, b).MulVec(f, x)
	if !ff.VecEqual[uint64](f, comp.Apply(f, x), want) {
		t.Fatal("ComposedBox wrong")
	}
	r, c := comp.Dims()
	if r != 2 || c != 2 {
		t.Fatal("ComposedBox dims wrong")
	}
}

func TestHankelToeplitzDense(t *testing.T) {
	f := f101
	h := ff.VecFromInt64[uint64](f, []int64{1, 2, 3, 4, 5}) // n = 3
	hm := HankelDense[uint64](f, h)
	want := FromRows[uint64](f, [][]int64{{1, 2, 3}, {2, 3, 4}, {3, 4, 5}})
	if !hm.Equal(f, want) {
		t.Fatal("HankelDense wrong")
	}
	tm := ToeplitzDense[uint64](f, h)
	wantT := FromRows[uint64](f, [][]int64{{3, 2, 1}, {4, 3, 2}, {5, 4, 3}})
	if !tm.Equal(f, wantT) {
		t.Fatal("ToeplitzDense wrong")
	}
}

func TestPreconditioner(t *testing.T) {
	f := fp31
	src := ff.NewSource(11)
	n := 6
	p := NewPreconditioner[uint64](f, src, n, ff.P31)
	a := Random[uint64](f, src, n, n, ff.P31)
	atilde := p.Apply(f, Classical[uint64]{}, a)
	// Against the explicit product A·H·D.
	want := Mul[uint64](f, Mul[uint64](f, a, p.H), p.D)
	if !atilde.Equal(f, want) {
		t.Fatal("Preconditioner.Apply != A·H·D")
	}
	// det(D) = product of diagonal entries.
	dd, err := Det[uint64](f, p.D)
	if err != nil {
		t.Fatal(err)
	}
	if p.DetD(f) != dd {
		t.Fatal("DetD mismatch")
	}
	// Theorem 2 property should essentially always hold at |S| = P31.
	ok, err := AllLeadingMinorsNonZero[uint64](f, atilde)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("leading minors vanished at huge |S| (prob < 1e-8); suspicious")
	}
}

func TestAllLeadingMinorsDetectsZero(t *testing.T) {
	f := f101
	// (0,0) entry zero ⇒ first minor zero.
	m := FromRows[uint64](f, [][]int64{{0, 1}, {1, 0}})
	ok, err := AllLeadingMinorsNonZero[uint64](f, m)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("zero minor not detected")
	}
}
