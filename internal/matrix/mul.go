package matrix

import (
	"runtime"
	"sync"

	"repro/internal/ff"
)

// Multiplier is the paper's "matrix multiplication as a black box": the
// Kaltofen–Pan processor count inherits its exponent ω from whatever
// multiplier is plugged in here. Classical gives ω = 3, Strassen ω ≈ 2.81;
// the paper notes the classical method "may yield a practical algorithm".
type Multiplier[E any] interface {
	// Mul returns a·b; a.Cols must equal b.Rows.
	Mul(f ff.Field[E], a, b *Dense[E]) *Dense[E]
	// Name identifies the algorithm in benchmark output.
	Name() string
	// Omega is the algorithm's exponent (3 classical, log₂7 Strassen).
	Omega() float64
}

// Classical is the cubic-time schoolbook multiplier.
type Classical[E any] struct{}

// Name returns "classical".
func (Classical[E]) Name() string { return "classical" }

// Omega returns 3.
func (Classical[E]) Omega() float64 { return 3 }

// Mul returns a·b with balanced inner products (depth O(log n) when traced
// as a circuit).
func (Classical[E]) Mul(f ff.Field[E], a, b *Dense[E]) *Dense[E] {
	return mulClassical(f, a, b)
}

func mulClassical[E any](f ff.Field[E], a, b *Dense[E]) *Dense[E] {
	if a.Cols != b.Rows {
		panic("matrix: Mul dimension mismatch")
	}
	out := &Dense[E]{Rows: a.Rows, Cols: b.Cols, Data: make([]E, a.Rows*b.Cols)}
	bt := b.Transpose() // contiguous columns for cache friendliness
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j := 0; j < b.Cols; j++ {
			out.Data[i*out.Cols+j] = ff.Dot(f, arow, bt.Data[j*bt.Cols:(j+1)*bt.Cols])
		}
	}
	return out
}

// Parallel wraps a multiplier-independent classical multiply that splits
// rows across goroutines. It demonstrates real multicore speedup of the
// substrate (the PRAM experiments use the circuit scheduler instead).
type Parallel[E any] struct {
	// Workers is the number of goroutines; 0 means GOMAXPROCS.
	Workers int
}

// Name returns "parallel-classical".
func (Parallel[E]) Name() string { return "parallel-classical" }

// Omega returns 3.
func (Parallel[E]) Omega() float64 { return 3 }

// Mul returns a·b with rows distributed over a goroutine pool.
func (p Parallel[E]) Mul(f ff.Field[E], a, b *Dense[E]) *Dense[E] {
	if a.Cols != b.Rows {
		panic("matrix: Mul dimension mismatch")
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := &Dense[E]{Rows: a.Rows, Cols: b.Cols, Data: make([]E, a.Rows*b.Cols)}
	bt := b.Transpose()
	var wg sync.WaitGroup
	rowsPer := (a.Rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * rowsPer
		hi := min(lo+rowsPer, a.Rows)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				arow := a.Data[i*a.Cols : (i+1)*a.Cols]
				for j := 0; j < b.Cols; j++ {
					out.Data[i*out.Cols+j] = ff.Dot(f, arow, bt.Data[j*bt.Cols:(j+1)*bt.Cols])
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// Mul is the package-default product (classical).
func Mul[E any](f ff.Field[E], a, b *Dense[E]) *Dense[E] {
	return mulClassical(f, a, b)
}

// Pow returns a^k for square a by repeated squaring (k ≥ 0).
func Pow[E any](f ff.Field[E], a *Dense[E], k int) *Dense[E] {
	a.mustSquare()
	result := Identity(f, a.Rows)
	base := a
	for k > 0 {
		if k&1 == 1 {
			result = Mul(f, result, base)
		}
		base = Mul(f, base, base)
		k >>= 1
	}
	return result
}
