package matrix

import (
	"repro/internal/ff"
)

// Multiplier is the paper's "matrix multiplication as a black box": the
// Kaltofen–Pan processor count inherits its exponent ω from whatever
// multiplier is plugged in here. Classical gives ω = 3, Strassen ω ≈ 2.81;
// the paper notes the classical method "may yield a practical algorithm".
type Multiplier[E any] interface {
	// Mul returns a·b; a.Cols must equal b.Rows.
	Mul(f ff.Field[E], a, b *Dense[E]) *Dense[E]
	// Name identifies the algorithm in benchmark output.
	Name() string
	// Omega is the algorithm's exponent (3 classical, log₂7 Strassen).
	Omega() float64
}

// Classical is the cubic-time schoolbook multiplier.
type Classical[E any] struct{}

// Name returns "classical".
func (Classical[E]) Name() string { return "classical" }

// Omega returns 3.
func (Classical[E]) Omega() float64 { return 3 }

// Mul returns a·b with balanced inner products (depth O(log n) when traced
// as a circuit).
func (Classical[E]) Mul(f ff.Field[E], a, b *Dense[E]) *Dense[E] {
	return mulClassical(f, a, b)
}

func mulClassical[E any](f ff.Field[E], a, b *Dense[E]) *Dense[E] {
	if a.Cols != b.Rows {
		panic("matrix: Mul dimension mismatch")
	}
	out := &Dense[E]{Rows: a.Rows, Cols: b.Cols, Data: make([]E, a.Rows*b.Cols)}
	mulClassicalInto(f, a, b, out)
	return out
}

// mulClassicalInto assigns a·b into out (fully overwritten; shape must
// match). Inner products go through ff.DotFused: fields with fused kernels
// get the allocation-free lazy-reduction dot, everything else — including
// the circuit Builder — keeps the balanced tree and its O(log n) traced
// depth. The transposed copy of b comes from the scratch pool.
func mulClassicalInto[E any](f ff.Field[E], a, b, out *Dense[E]) {
	bt := scratchDense[E](b.Cols, b.Rows)
	for i := 0; i < b.Rows; i++ {
		row := b.Data[i*b.Cols : (i+1)*b.Cols]
		for j, v := range row {
			bt.Data[j*b.Rows+i] = v
		}
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j := 0; j < b.Cols; j++ {
			out.Data[i*out.Cols+j] = ff.DotFused(f, arow, bt.Data[j*bt.Cols:(j+1)*bt.Cols])
		}
	}
	scratchRelease(bt)
}

// Parallel is the pooled multicore multiplier: disjoint row bands of the
// product run concurrently on the package's shared worker pool (pool.go),
// each band through the cache-blocked kernel. Calls reuse the pool's
// long-lived workers instead of spawning goroutines per multiply, so the
// solvers — which issue thousands of multiplies per run — pay the spawn
// cost once per process.
type Parallel[E any] struct {
	// Workers caps the number of concurrent row bands; 0 means the pool
	// width (GOMAXPROCS).
	Workers int
	// Tile is the blocked-kernel tile edge; 0 selects the default.
	Tile int
}

// Name returns "parallel".
func (Parallel[E]) Name() string { return "parallel" }

// Omega returns 3.
func (Parallel[E]) Omega() float64 { return 3 }

// parallelMulMinOps is the work floor (≈ entries of a 32³ product) below
// which the pooled path is not worth its scheduling overhead.
const parallelMulMinOps = 32 * 32 * 32

// Mul returns a·b with row bands distributed over the shared worker pool.
// Over a field that is not ff.ConcurrentSafe (the circuit Builder), it
// falls back to the serial balanced-tree classical kernel, preserving both
// correctness and the O(log n) traced depth.
func (p Parallel[E]) Mul(f ff.Field[E], a, b *Dense[E]) *Dense[E] {
	if a.Cols != b.Rows {
		panic("matrix: Mul dimension mismatch")
	}
	if !ff.IsConcurrentSafe(f) {
		return mulClassical(f, a, b)
	}
	tile := p.Tile
	if tile <= 0 {
		tile = defaultMulTile
	}
	out := NewDense(f, a.Rows, b.Cols)
	if a.Rows*b.Cols*a.Cols < parallelMulMinOps {
		blockedMulInto(f, a, b, out, 0, a.Rows, tile)
		return out
	}
	grain := max(1, tile/4)
	parallelForMax(a.Rows, grain, p.Workers, func(lo, hi int) {
		blockedMulInto(f, a, b, out, lo, hi, tile)
	})
	return out
}

// Mul is the package-default product (classical).
func Mul[E any](f ff.Field[E], a, b *Dense[E]) *Dense[E] {
	return mulClassical(f, a, b)
}

// Pow returns a^k for square a by repeated squaring (k ≥ 0).
func Pow[E any](f ff.Field[E], a *Dense[E], k int) *Dense[E] {
	a.mustSquare()
	result := Identity(f, a.Rows)
	base := a
	for k > 0 {
		if k&1 == 1 {
			result = Mul(f, result, base)
		}
		base = Mul(f, base, base)
		k >>= 1
	}
	return result
}
