package matrix

import (
	"sort"

	"repro/internal/ff"
)

// Sparse is a compressed-sparse-row matrix. Wiedemann's method — the first
// pillar of the Kaltofen–Pan construction — was designed for exactly this
// object: a matrix accessed only through matrix-times-vector products whose
// cost is proportional to the number of non-zero entries.
type Sparse[E any] struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	vals       []E
}

// Entry is one (row, col, value) triplet.
type Entry[E any] struct {
	Row, Col int
	Val      E
}

// NewSparse builds a CSR matrix from triplets. Duplicate positions are
// summed; explicit zeros are dropped.
func NewSparse[E any](f ff.Field[E], rows, cols int, entries []Entry[E]) *Sparse[E] {
	es := append([]Entry[E](nil), entries...)
	sort.Slice(es, func(i, j int) bool {
		if es[i].Row != es[j].Row {
			return es[i].Row < es[j].Row
		}
		return es[i].Col < es[j].Col
	})
	// Merge duplicates.
	merged := es[:0]
	for _, e := range es {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			panic("matrix: sparse entry out of range")
		}
		if n := len(merged); n > 0 && merged[n-1].Row == e.Row && merged[n-1].Col == e.Col {
			merged[n-1].Val = f.Add(merged[n-1].Val, e.Val)
		} else {
			merged = append(merged, e)
		}
	}
	s := &Sparse[E]{rows: rows, cols: cols, rowPtr: make([]int, rows+1)}
	for _, e := range merged {
		if f.IsZero(e.Val) {
			continue
		}
		s.colIdx = append(s.colIdx, e.Col)
		s.vals = append(s.vals, e.Val)
		s.rowPtr[e.Row+1]++
	}
	for i := 0; i < rows; i++ {
		s.rowPtr[i+1] += s.rowPtr[i]
	}
	return s
}

// RandomSparse returns an n×n matrix with approximately density·n² uniform
// non-zero entries plus a full diagonal of non-zero entries, which makes
// the matrix non-singular with high probability (and at worst costs the
// caller a Las Vegas retry).
func RandomSparse[E any](f ff.Field[E], src *ff.Source, n int, density float64, subset uint64) *Sparse[E] {
	var es []Entry[E]
	for i := 0; i < n; i++ {
		es = append(es, Entry[E]{Row: i, Col: i, Val: ff.SampleNonZero(f, src, subset)})
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if src.Float64() < density {
				es = append(es, Entry[E]{Row: i, Col: j, Val: ff.SampleNonZero(f, src, subset)})
			}
		}
	}
	return NewSparse(f, n, n, es)
}

// Rows returns the number of rows.
func (s *Sparse[E]) Rows() int { return s.rows }

// Cols returns the number of columns.
func (s *Sparse[E]) Cols() int { return s.cols }

// NNZ returns the number of stored non-zero entries.
func (s *Sparse[E]) NNZ() int { return len(s.vals) }

// Apply returns A·x.
func (s *Sparse[E]) Apply(f ff.Field[E], x []E) []E {
	if len(x) != s.cols {
		panic("matrix: sparse Apply dimension mismatch")
	}
	out := make([]E, s.rows)
	for i := 0; i < s.rows; i++ {
		acc := f.Zero()
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			acc = f.Add(acc, f.Mul(s.vals[k], x[s.colIdx[k]]))
		}
		out[i] = acc
	}
	return out
}

// ApplyTranspose returns Aᵀ·x.
func (s *Sparse[E]) ApplyTranspose(f ff.Field[E], x []E) []E {
	if len(x) != s.rows {
		panic("matrix: sparse ApplyTranspose dimension mismatch")
	}
	out := ff.VecZero(f, s.cols)
	for i := 0; i < s.rows; i++ {
		if f.IsZero(x[i]) {
			continue
		}
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			j := s.colIdx[k]
			out[j] = f.Add(out[j], f.Mul(s.vals[k], x[i]))
		}
	}
	return out
}

// Dense expands s to a dense matrix (tests and small baselines).
func (s *Sparse[E]) Dense(f ff.Field[E]) *Dense[E] {
	d := NewDense(f, s.rows, s.cols)
	for i := 0; i < s.rows; i++ {
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			d.Set(i, s.colIdx[k], s.vals[k])
		}
	}
	return d
}
