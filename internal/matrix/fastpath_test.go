package matrix

import (
	"fmt"
	"testing"

	"repro/internal/ff"
)

// Differential tests for the fused fast path: every multiplier, run over a
// raw Fp64 (which exposes ff.Kernels and therefore takes the Montgomery /
// lazy-reduction kernels), must produce exactly the matrix the generic
// Field[E] path computes. The generic reference is obtained through an
// ff.Counting wrapper, which deliberately hides the kernels, so the
// reference multiplication runs the per-element Add/Mul loops.

func fastpathPrimes() []uint64 {
	return []uint64{ff.P62, ff.P31, ff.P17, ff.PNTT62}
}

func TestFastKernelsAgreeWithGenericPath(t *testing.T) {
	for _, p := range fastpathPrimes() {
		f := ff.MustFp64(p)
		if _, ok := ff.KernelsOf[uint64](f); !ok {
			t.Fatalf("F_%d: expected fused kernels", p)
		}
		cf := ff.NewCounting[uint64](f)
		src := ff.NewSource(p ^ 0xabcdef)
		muls := []Multiplier[uint64]{
			Classical[uint64]{},
			Blocked[uint64]{Tile: 8},
			Parallel[uint64]{Tile: 8},
			Strassen[uint64]{Cutoff: 4},
			ParallelStrassen[uint64]{Cutoff: 4},
		}
		for _, n := range []int{1, 2, 3, 7, 8, 13, 16, 33} {
			a := Random[uint64](f, src, n, n, p)
			b := Random[uint64](f, src, n, n, p)
			want := mulClassical[uint64](cf, a, b) // generic loops, no kernels
			for _, m := range muls {
				got := m.Mul(f, a, b)
				if !got.Equal(f, want) {
					t.Fatalf("F_%d n=%d: %s disagrees with generic path", p, n, m.Name())
				}
			}
			// Rectangular shapes exercise the non-square fallbacks.
			r := Random[uint64](f, src, n, n+3, p)
			wantR := mulClassical[uint64](cf, a, r)
			for _, m := range muls {
				if got := m.Mul(f, a, r); !got.Equal(f, wantR) {
					t.Fatalf("F_%d n=%d rect: %s disagrees with generic path", p, n, m.Name())
				}
			}
		}
	}
}

// TestFusedVectorPathsAgree checks MulVec / VecMul / ProjectSequence take
// identical values over the fused and generic paths.
func TestFusedVectorPathsAgree(t *testing.T) {
	for _, p := range fastpathPrimes() {
		f := ff.MustFp64(p)
		cf := ff.NewCounting[uint64](f)
		src := ff.NewSource(p + 17)
		for _, n := range []int{1, 5, 16, 40} {
			m := Random[uint64](f, src, n, n, p)
			x := ff.SampleVec[uint64](f, src, n, p)
			if !ff.VecEqual[uint64](f, m.MulVec(f, x), m.MulVec(cf, x)) {
				t.Fatalf("F_%d n=%d: MulVec fused != generic", p, n)
			}
			if !ff.VecEqual[uint64](f, m.VecMul(f, x), m.VecMul(cf, x)) {
				t.Fatalf("F_%d n=%d: VecMul fused != generic", p, n)
			}
			vs := [][]uint64{x, m.MulVec(f, x), m.MulVec(f, m.MulVec(f, x))}
			if !ff.VecEqual[uint64](f, ProjectSequence(f, x, vs), ProjectSequence[uint64](cf, x, vs)) {
				t.Fatalf("F_%d n=%d: ProjectSequence fused != generic", p, n)
			}
		}
	}
}

// TestScratchPoolRecycling sanity-checks the pooled buffers: matrices
// returned by the Strassen paths must be freshly allocated (mutating the
// result of one multiply must not corrupt a later one).
func TestScratchPoolRecycling(t *testing.T) {
	f := ff.MustFp64(ff.P31)
	src := ff.NewSource(7)
	n := 12
	a := Random[uint64](f, src, n, n, ff.P31)
	b := Random[uint64](f, src, n, n, ff.P31)
	s := Strassen[uint64]{Cutoff: 4}
	first := s.Mul(f, a, b)
	snapshot := append([]uint64(nil), first.Data...)
	for i := range first.Data {
		first.Data[i] = 0xdead % ff.P31 // poison the returned buffer
	}
	second := s.Mul(f, a, b)
	for i := range second.Data {
		if second.Data[i] != snapshot[i] {
			t.Fatalf("pooled scratch leaked into returned matrix at %d", i)
		}
	}
}

func BenchmarkBlockedFused(bb *testing.B) {
	f := ff.MustFp64(ff.P62)
	src := ff.NewSource(1)
	for _, n := range []int{64, 128} {
		a := Random[uint64](f, src, n, n, ff.P62)
		b := Random[uint64](f, src, n, n, ff.P62)
		bb.Run(fmt.Sprintf("n=%d", n), func(bb *testing.B) {
			for i := 0; i < bb.N; i++ {
				Blocked[uint64]{}.Mul(f, a, b)
			}
		})
	}
}
