package matrix

import "repro/internal/ff"

// Block-Krylov machinery for the batched multi-RHS solve engine: the
// doubling of the paper's equation (9) generalized from one starting vector
// to a block B of k columns, with the squarings A^{2^i} captured in a
// caller-owned cache so repeated doublings against the same operator (the
// k right-hand-side backsolves of a batch, or every Factored.Solve after
// the first) pay for the power ladder exactly once.

// KrylovBlockDoubling returns [B | A·B | … | A^{m−1}·B] as one n × m·k
// dense matrix (k = B.Cols), with column group j holding Aʲ·B. Each of the
// ⌈log₂ m⌉ rounds is one matrix product against the whole accumulated
// block, so the k right-hand sides share every squaring and ride the
// multiplier's fast paths as fused matrix–matrix work instead of k
// separate doubling passes.
//
// pows, when non-nil, caches the power ladder: (*pows)[i] = A^{2^i}. An
// empty cache is filled as rounds demand (starting with (*pows)[0] = A); a
// pre-filled cache — from a previous doubling against the same A — is
// reused, skipping the squarings entirely. Passing a cache built from a
// different matrix is a caller error.
func KrylovBlockDoubling[E any](f ff.Field[E], mul Multiplier[E], a, b *Dense[E], m int, pows *[]*Dense[E]) *Dense[E] {
	a.mustSquare()
	n := a.Rows
	if b.Rows != n {
		panic("matrix: KrylovBlockDoubling dimension mismatch")
	}
	w := b.Cols
	if m <= 0 || w == 0 {
		return &Dense[E]{Rows: n, Cols: 0}
	}
	if pows == nil {
		local := make([]*Dense[E], 0, 8)
		pows = &local
	}
	k := b.Clone()
	for i := 0; k.Cols < m*w; {
		next := mul.Mul(f, powerAt(f, mul, a, pows, i), k)
		k = hcat(f, k, next)
		i++
		if k.Cols < m*w {
			// Extend the ladder eagerly only when another round is coming,
			// mirroring the single-vector doubling's operation sequence
			// (no trailing unused squaring).
			powerAt(f, mul, a, pows, i)
		}
	}
	if k.Cols > m*w {
		k = k.Submatrix(0, n, 0, m*w)
	}
	return k
}

// powerAt returns A^{2^i} from the cache, extending it by squaring as
// needed ((*pows)[0] is A itself, so only genuinely new rounds multiply).
func powerAt[E any](f ff.Field[E], mul Multiplier[E], a *Dense[E], pows *[]*Dense[E], i int) *Dense[E] {
	for len(*pows) <= i {
		if len(*pows) == 0 {
			*pows = append(*pows, a)
			continue
		}
		prev := (*pows)[len(*pows)-1]
		*pows = append(*pows, mul.Mul(f, prev, prev))
	}
	return (*pows)[i]
}

// CombineKrylovBlocks returns Σ_j coeffs[j]·Wⱼ for the column groups
// Wⱼ = W[:, j·w:(j+1)·w] of a block Krylov matrix — the Cayley–Hamilton
// accumulation of the batched backsolve, evaluated for all k right-hand
// sides at once. Rows are independent, so large combines run as fused
// mul-add sweeps on the shared worker pool; the generic (kernel-less) path
// keeps a plain sequential accumulation, which is fine because the batch
// engine is never traced as a circuit.
func CombineKrylovBlocks[E any](f ff.Field[E], wm *Dense[E], w int, coeffs []E) *Dense[E] {
	m := len(coeffs)
	if w <= 0 || wm.Cols < m*w {
		panic("matrix: CombineKrylovBlocks shape mismatch")
	}
	out := NewDense(f, wm.Rows, w)
	ker, fused := ff.KernelsOf(f)
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := out.Data[i*w : (i+1)*w]
			wrow := wm.Data[i*wm.Cols : i*wm.Cols+m*w]
			if fused {
				for j := 0; j < m; j++ {
					ker.MulAddVec(orow, coeffs[j], wrow[j*w:(j+1)*w])
				}
				continue
			}
			for j := 0; j < m; j++ {
				c := coeffs[j]
				for t, v := range wrow[j*w : (j+1)*w] {
					orow[t] = f.Add(orow[t], f.Mul(c, v))
				}
			}
		}
	}
	if wm.Rows*m*w >= parallelOpsMin && ff.IsConcurrentSafe(f) {
		parallelFor(wm.Rows, 8, body)
	} else {
		body(0, wm.Rows)
	}
	return out
}
