package matrix

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/ff"
	"repro/internal/obs"
)

func TestParallelForCoversRangeOnce(t *testing.T) {
	for _, tc := range []struct{ n, grain, maxPar int }{
		{1, 1, 0}, {7, 3, 0}, {64, 1, 0}, {64, 16, 0}, {1000, 7, 0},
		{100, 1, 3}, {100, 10, 200}, {5, 100, 0}, {33, 4, 1},
	} {
		hits := make([]atomic.Int32, tc.n)
		parallelForMax(tc.n, tc.grain, tc.maxPar, func(lo, hi int) {
			if lo < 0 || hi > tc.n || lo >= hi {
				t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, tc.n)
			}
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("n=%d grain=%d maxPar=%d: index %d visited %d times",
					tc.n, tc.grain, tc.maxPar, i, got)
			}
		}
	}
}

func TestParallelForEmptyAndNested(t *testing.T) {
	parallelFor(0, 4, func(lo, hi int) { t.Error("body called for n=0") })
	parallelFor(-3, 4, func(lo, hi int) { t.Error("body called for n<0") })

	// Nested parallelFors must not deadlock, whatever the pool is doing.
	var total atomic.Int64
	parallelFor(8, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			parallelFor(16, 2, func(lo2, hi2 int) {
				total.Add(int64(hi2 - lo2))
			})
		}
	})
	if total.Load() != 8*16 {
		t.Fatalf("nested total %d, want %d", total.Load(), 8*16)
	}

	var ran [3]atomic.Bool
	parallelDo(
		func() { ran[0].Store(true) },
		func() { ran[1].Store(true) },
		func() { ran[2].Store(true) },
	)
	for i := range ran {
		if !ran[i].Load() {
			t.Fatalf("parallelDo skipped fn %d", i)
		}
	}

	if PoolWorkers() < 2 {
		t.Fatalf("pool has %d workers, want ≥ 2", PoolWorkers())
	}
}

// TestParallelMulEdgeCases covers the dimension corners the row-banded
// schedule must get right: more workers than rows, single-row and
// single-column operands, and empty products.
func TestParallelMulEdgeCases(t *testing.T) {
	f := fp31
	src := ff.NewSource(77)
	cases := []struct{ r, k, c int }{
		{1, 1, 1}, {1, 9, 1}, {1, 5, 7}, {7, 5, 1}, {3, 3, 3},
		{2, 64, 2}, {64, 2, 64}, {0, 4, 3}, {4, 0, 3}, {129, 65, 33},
	}
	muls := []Multiplier[uint64]{
		Parallel[uint64]{},
		Parallel[uint64]{Workers: 64}, // Workers ≫ Rows
		Parallel[uint64]{Workers: 1},
		Parallel[uint64]{Tile: 5},
		Blocked[uint64]{},
		Blocked[uint64]{Tile: 3},
		ParallelStrassen[uint64]{Cutoff: 8},
	}
	for _, tc := range cases {
		a := Random[uint64](f, src, tc.r, tc.k, ff.P31)
		b := Random[uint64](f, src, tc.k, tc.c, ff.P31)
		want := mulClassical[uint64](f, a, b)
		for _, m := range muls {
			got := m.Mul(f, a, b)
			if !got.Equal(f, want) {
				t.Fatalf("%s disagrees with classical on %dx%d · %dx%d",
					m.Name(), tc.r, tc.k, tc.c, tc.c)
			}
		}
	}
}

func TestParallelMulDimensionMismatchPanics(t *testing.T) {
	f := fp31
	a := NewDense[uint64](f, 2, 3)
	b := NewDense[uint64](f, 4, 2)
	for _, m := range []Multiplier[uint64]{Parallel[uint64]{}, Blocked[uint64]{}, ParallelStrassen[uint64]{}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s accepted mismatched dims", m.Name())
				}
			}()
			m.Mul(f, a, b)
		}()
	}
}

// TestParallelStrassenRecursion drives the pooled recursion through several
// levels (odd sizes force the padding path) against the classical product.
func TestParallelStrassenRecursion(t *testing.T) {
	f := fp31
	src := ff.NewSource(123)
	s := ParallelStrassen[uint64]{Cutoff: 4}
	for _, n := range []int{5, 8, 16, 23, 33, 64} {
		a := Random[uint64](f, src, n, n, ff.P31)
		b := Random[uint64](f, src, n, n, ff.P31)
		if !s.Mul(f, a, b).Equal(f, mulClassical[uint64](f, a, b)) {
			t.Fatalf("parallel-strassen wrong at n=%d", n)
		}
	}
}

func TestScaleDiagHelpers(t *testing.T) {
	f := fp31
	src := ff.NewSource(5)
	for _, shape := range []struct{ r, c int }{{3, 5}, {64, 130}, {1, 1}} {
		m := Random[uint64](f, src, shape.r, shape.c, ff.P31)
		dc := ff.SampleVec[uint64](f, src, shape.c, ff.P31)
		dr := ff.SampleVec[uint64](f, src, shape.r, ff.P31)
		wantC := Mul(f, m, Diagonal(f, dc))
		if !ScaleColumnsDiag(f, m, dc).Equal(f, wantC) {
			t.Fatalf("ScaleColumnsDiag wrong at %dx%d", shape.r, shape.c)
		}
		wantR := Mul(f, Diagonal(f, dr), m)
		if !ScaleRowsDiag(f, m, dr).Equal(f, wantR) {
			t.Fatalf("ScaleRowsDiag wrong at %dx%d", shape.r, shape.c)
		}
	}
}

func TestByNameRegistry(t *testing.T) {
	for _, name := range Names() {
		m, err := ByName[uint64](name)
		if err != nil {
			t.Fatal(err)
		}
		if m.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, m.Name())
		}
		if m.Omega() < 2 || m.Omega() > 3 {
			t.Fatalf("%s: omega %f out of range", name, m.Omega())
		}
	}
	if m, err := ByName[uint64](""); err != nil || m.Name() != "classical" {
		t.Fatalf("empty name: %v, %v", m, err)
	}
	if _, err := ByName[uint64]("quantum"); err == nil {
		t.Fatal("unknown multiplier accepted")
	}
	for in, want := range map[string]string{
		"classical": "classical", "blocked": "classical", "parallel": "classical",
		"strassen": "strassen", "parallel-strassen": "strassen", "": "classical",
	} {
		if got := CircuitSafeName(in); got != want {
			t.Fatalf("CircuitSafeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestInstrumentedCounts(t *testing.T) {
	f := fp31
	src := ff.NewSource(9)
	inst := NewInstrumented(Classical[uint64]{})
	a := Random[uint64](f, src, 4, 6, ff.P31)
	b := Random[uint64](f, src, 6, 3, ff.P31)
	want := mulClassical[uint64](f, a, b)
	for i := 0; i < 3; i++ {
		if !inst.Mul(f, a, b).Equal(f, want) {
			t.Fatal("instrumented product wrong")
		}
	}
	snap := inst.Stats.Snapshot()
	if snap.Calls != 3 {
		t.Fatalf("calls = %d", snap.Calls)
	}
	if wantOps := uint64(3 * 4 * 3 * (2*6 - 1)); snap.FieldOps != wantOps {
		t.Fatalf("field-ops = %d, want %d", snap.FieldOps, wantOps)
	}
	if snap.Wall <= 0 {
		t.Fatal("wall time not recorded")
	}
	if inst.Name() != "instrumented(classical)" {
		t.Fatalf("name %q", inst.Name())
	}
	if inst.Omega() != 3 {
		t.Fatalf("omega %f", inst.Omega())
	}
	inst.Stats.Reset()
	if s := inst.Stats.Snapshot(); s.Calls != 0 || s.FieldOps != 0 || s.Wall != 0 {
		t.Fatalf("reset left %+v", s)
	}
}

// TestParallelFallsBackOverCircuitBuilder checks the concurrency guard: a
// circuit Builder is not ff.ConcurrentSafe, so the pooled multipliers must
// trace through their serial forms — same results, no data race on the
// node list, and classical-shape depth for Parallel.
func TestParallelFallsBackOverCircuitBuilder(t *testing.T) {
	model := ff.MustFp64(ff.P31)
	n := 6
	build := func(mul Multiplier[circuit.Wire]) *circuit.Builder {
		b := circuit.NewBuilderFor[uint64](model)
		aw := &Dense[circuit.Wire]{Rows: n, Cols: n, Data: b.Inputs(n * n)}
		bw := &Dense[circuit.Wire]{Rows: n, Cols: n, Data: b.Inputs(n * n)}
		out := mul.Mul(b, aw, bw)
		b.Return(out.Data...)
		return b
	}
	if ff.IsConcurrentSafe[circuit.Wire](circuit.NewBuilderFor[uint64](model)) {
		t.Fatal("circuit Builder must not report itself concurrency-safe")
	}
	classical := build(Classical[circuit.Wire]{})
	parallel := build(Parallel[circuit.Wire]{})
	if cm, pm := classical.Metrics(), parallel.Metrics(); cm != pm {
		t.Fatalf("Parallel over a Builder traced %+v, classical traced %+v", pm, cm)
	}

	// The traced product evaluates correctly and its p=1 list schedule
	// validates (the serialized schedule the PRAM experiments start from).
	f := ff.MustFp64(ff.P31)
	src := ff.NewSource(31)
	a := Random[uint64](f, src, n, n, ff.P31)
	bm := Random[uint64](f, src, n, n, ff.P31)
	inputs := append(append([]uint64{}, a.Data...), bm.Data...)
	got, err := circuit.Eval[uint64](parallel, f, inputs)
	if err != nil {
		t.Fatal(err)
	}
	want := mulClassical[uint64](f, a, bm)
	if !ff.VecEqual[uint64](f, got, want.Data) {
		t.Fatal("traced product evaluates wrong")
	}
	sched := parallel.ListSchedule(1)
	if err := sched.Validate(parallel); err != nil {
		t.Fatalf("p=1 schedule invalid: %v", err)
	}
	if sched.Steps != sched.Work {
		t.Fatalf("p=1 must serialize exactly: steps %d, work %d", sched.Steps, sched.Work)
	}
}

// TestInstrumentedConcurrentWall exercises the concurrent wall-time
// accounting: many goroutines share one Instrumented multiplier (as pool
// callers do), and the union-of-intervals Wall must stay below elapsed
// time while Busy sums every call. Run under -race this also proves the
// interval bookkeeping is data-race free.
func TestInstrumentedConcurrentWall(t *testing.T) {
	f := fp31
	src := ff.NewSource(77)
	inst := NewInstrumented(Classical[uint64]{})
	a := Random[uint64](f, src, 24, 24, ff.P31)
	b := Random[uint64](f, src, 24, 24, ff.P31)
	const workers, reps = 8, 12
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < reps; r++ {
				inst.Mul(f, a, b)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	snap := inst.Stats.Snapshot()
	if snap.Calls != workers*reps {
		t.Fatalf("calls = %d, want %d", snap.Calls, workers*reps)
	}
	if wantOps := uint64(workers * reps * 24 * 24 * (2*24 - 1)); snap.FieldOps != wantOps {
		t.Fatalf("field-ops = %d, want %d", snap.FieldOps, wantOps)
	}
	if snap.Wall <= 0 || snap.Busy <= 0 {
		t.Fatalf("times not recorded: %+v", snap)
	}
	// Union of intervals can never exceed the enclosing elapsed window...
	if snap.Wall > elapsed {
		t.Fatalf("Wall %v exceeds elapsed %v: overlapping calls double-counted", snap.Wall, elapsed)
	}
	// ...and the per-call sum can never undercut the union.
	if snap.Busy < snap.Wall {
		t.Fatalf("Busy %v < Wall %v", snap.Busy, snap.Wall)
	}
}

// TestPoolMetrics checks the obs counters the pool maintains: chunks are
// counted once each, the submitting goroutine's participation is visible,
// and submissions are tallied.
func TestPoolMetrics(t *testing.T) {
	submitted := obs.NewCounter("pool.jobs.submitted").Value()
	claimed := obs.NewCounter("pool.chunks.claimed").Value()
	caller := obs.NewCounter("pool.chunks.caller").Value()

	const n, grain, runs = 256, 4, 50
	var touched atomic.Int64
	for r := 0; r < runs; r++ {
		parallelFor(n, grain, func(lo, hi int) {
			touched.Add(int64(hi - lo))
		})
	}
	if touched.Load() != n*runs {
		t.Fatalf("touched %d of %d", touched.Load(), n*runs)
	}
	if got := obs.NewCounter("pool.jobs.submitted").Value() - submitted; got < runs {
		t.Fatalf("jobs.submitted delta = %d, want ≥ %d", got, runs)
	}
	wantChunks := int64((n+grain-1)/grain) * runs
	if got := obs.NewCounter("pool.chunks.claimed").Value() - claimed; got < wantChunks {
		t.Fatalf("chunks.claimed delta = %d, want ≥ %d", got, wantChunks)
	}
	// The submitting goroutine drives every job itself after the
	// non-blocking offers, so across many runs it claims chunks (any
	// single run can in principle be fully served by workers).
	if got := obs.NewCounter("pool.chunks.caller").Value() - caller; got < 1 {
		t.Fatalf("chunks.caller delta = %d, want ≥ 1 over %d runs", got, runs)
	}
	if obs.NewGauge("pool.workers.busy").Max() < 0 {
		t.Fatal("busy gauge must be non-negative")
	}
}
