package matrix

import "repro/internal/ff"

// Bunch–Hopcroft (1974) style recursive inversion — the paper's citation
// for "Gaussian elimination['s] ... running time can be asymptotically
// related to the sequential complexity of n×n matrix multiplication":
// inverting by 2×2 block recursion costs O(n^ω) with the multiplier
// supplying ω. The recursion requires every leading principal minor to be
// non-zero — which is precisely the property the paper's Theorem 2 Hankel
// preconditioner provides, so InverseBH preconditions with Â = A·H·D and
// undoes the factors afterwards.

// InverseStrong inverts a matrix all of whose leading principal minors are
// non-zero, by block 2×2 recursion:
//
//	A = (A₁₁ A₁₂)    A⁻¹ = (A₁₁⁻¹ + B·S⁻¹·C   −B·S⁻¹)
//	    (A₂₁ A₂₂)          (−S⁻¹·C                S⁻¹)
//
// with B = A₁₁⁻¹·A₁₂, C = A₂₁·A₁₁⁻¹ and Schur complement S = A₂₂ − A₂₁·B.
// A singular block surfaces as ErrSingular. Cost: O(n^ω) products through
// mul.
func InverseStrong[E any](f ff.Field[E], mul Multiplier[E], a *Dense[E]) (*Dense[E], error) {
	a.mustSquare()
	n := a.Rows
	if n == 0 {
		return NewDense(f, 0, 0), nil
	}
	if n == 1 {
		inv, err := f.Inv(a.At(0, 0))
		if err != nil {
			return nil, ErrSingular
		}
		out := NewDense(f, 1, 1)
		out.Set(0, 0, inv)
		return out, nil
	}
	h := (n + 1) / 2
	a11 := a.Submatrix(0, h, 0, h)
	a12 := a.Submatrix(0, h, h, n)
	a21 := a.Submatrix(h, n, 0, h)
	a22 := a.Submatrix(h, n, h, n)

	inv11, err := InverseStrong(f, mul, a11)
	if err != nil {
		return nil, err
	}
	b := mul.Mul(f, inv11, a12) // h×(n−h)
	c := mul.Mul(f, a21, inv11) // (n−h)×h
	s := a22.Sub(f, mul.Mul(f, a21, b))
	invS, err := InverseStrong(f, mul, s)
	if err != nil {
		return nil, err
	}
	bInvS := mul.Mul(f, b, invS)
	topLeft := inv11.Add(f, mul.Mul(f, bInvS, c))
	topRight := bInvS.Scale(f, f.Neg(f.One()))
	bottomLeft := mul.Mul(f, invS, c).Scale(f, f.Neg(f.One()))

	out := NewDense(f, n, n)
	pasteBlock(out, topLeft, 0, 0)
	pasteBlock(out, topRight, 0, h)
	pasteBlock(out, bottomLeft, h, 0)
	pasteBlock(out, invS, h, h)
	return out, nil
}

func pasteBlock[E any](dst, src *Dense[E], r0, c0 int) {
	for i := 0; i < src.Rows; i++ {
		copy(dst.Data[(r0+i)*dst.Cols+c0:(r0+i)*dst.Cols+c0+src.Cols],
			src.Data[i*src.Cols:(i+1)*src.Cols])
	}
}

// InverseBH is the Las Vegas driver: Theorem 2's random Hankel (plus
// diagonal) preconditioning makes every leading principal minor of
// Â = A·H·D non-zero with probability ≥ 1 − n(n−1)/(2|S|), after which the
// strong recursion applies and A⁻¹ = H·D·Â⁻¹. The result is verified
// (A·A⁻¹ = I), so it is always correct; ErrSingular after the retries
// means a singular input with overwhelming probability.
func InverseBH[E any](f ff.Field[E], mul Multiplier[E], a *Dense[E], src *ff.Source, subset uint64, retries int) (*Dense[E], error) {
	a.mustSquare()
	n := a.Rows
	if retries <= 0 {
		retries = 5
	}
	id := Identity(f, n)
	for attempt := 0; attempt < retries; attempt++ {
		p := NewPreconditioner(f, src, n, subset)
		ahat := p.Apply(f, mul, a)
		invHat, err := InverseStrong(f, mul, ahat)
		if err != nil {
			continue // a vanishing minor: unlucky randomness (or singular A)
		}
		// A⁻¹ = H·D·Â⁻¹: apply D (row scaling) then H.
		inv := mul.Mul(f, p.H, ScaleRowsDiag(f, invHat, p.DEntries))
		if Mul(f, a, inv).Equal(f, id) {
			return inv, nil
		}
	}
	return nil, ErrSingular
}
