package matrix

import (
	"math/bits"
	"sync"
)

// Scratch-buffer pooling for the dense kernels. The Strassen recursions and
// the blocked tiles previously allocated every temporary fresh — 25 h×h
// buffers per recursion node, reallocated on every multiply of a Krylov
// doubling pass — which made the garbage collector a hidden term in the
// solver's wall time. Buffers now come from sync.Pools keyed by (element
// type, power-of-two size class), so a solver performing thousands of
// multiplies recycles a small working set instead of churning the heap.
//
// Contract: pooled buffers carry stale contents. Every consumer must fully
// overwrite the logical range it uses (the Into-style kernels do), and must
// never retain a buffer past its scratchPut. Matrices returned to callers
// are always freshly allocated — pooled memory never escapes the package.

// scratchKey identifies one pool: the element type (as a *E nil pointer,
// comparable and unique per instantiation) and the ceil-log₂ size class.
type scratchKey struct {
	typ any
	cls int
}

var scratchPools sync.Map // scratchKey → *sync.Pool of []E

// scratchGet returns a length-n slice with unspecified contents, drawn from
// the pool for E's size class (capacity is the next power of two).
func scratchGet[E any](n int) []E {
	if n <= 0 {
		return nil
	}
	cls := bits.Len(uint(n - 1))
	key := scratchKey{typ: (*E)(nil), cls: cls}
	pi, ok := scratchPools.Load(key)
	if !ok {
		pi, _ = scratchPools.LoadOrStore(key, &sync.Pool{})
	}
	pool := pi.(*sync.Pool)
	if s, ok := pool.Get().([]E); ok {
		return s[:n]
	}
	return make([]E, n, 1<<cls)
}

// scratchPut recycles a slice obtained from scratchGet.
func scratchPut[E any](s []E) {
	c := cap(s)
	if c == 0 || c&(c-1) != 0 {
		return // not one of ours; let the GC have it
	}
	key := scratchKey{typ: (*E)(nil), cls: bits.Len(uint(c - 1))}
	if pi, ok := scratchPools.Load(key); ok {
		pi.(*sync.Pool).Put(s[:c])
	}
}

// scratchDense returns an r×c matrix backed by pooled storage with
// unspecified contents. Pair with scratchRelease; never return it to a
// caller outside the package.
func scratchDense[E any](r, c int) *Dense[E] {
	return &Dense[E]{Rows: r, Cols: c, Data: scratchGet[E](r * c)}
}

// scratchRelease returns the backing storage of pooled matrices.
func scratchRelease[E any](ms ...*Dense[E]) {
	for _, m := range ms {
		if m != nil {
			scratchPut(m.Data)
			m.Data = nil
		}
	}
}
