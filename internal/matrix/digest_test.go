package matrix

import (
	"math/big"
	"testing"

	"repro/internal/ff"
)

// TestDigestCrossBackend checks the canonicalization contract: the same
// mathematical matrix digests equal whether its field is the Montgomery-form
// word backend or the big-integer backend, because the digest sees canonical
// residue strings, never internal representations.
func TestDigestCrossBackend(t *testing.T) {
	p := ff.P62
	f64 := ff.MustFp64(p)
	fbig, err := ff.NewFpBig(new(big.Int).SetUint64(p))
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]int64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	a64 := FromRows[uint64](f64, rows)
	abig := FromRows[*big.Int](fbig, rows)
	d64 := DigestString[uint64](f64, a64)
	dbig := DigestString[*big.Int](fbig, abig)
	if d64 != dbig {
		t.Fatalf("digest differs across backends over the same field:\n  Fp64  %s\n  FpBig %s", d64, dbig)
	}
}

func TestDigestDistinguishesFields(t *testing.T) {
	rows := [][]int64{{1, 2}, {3, 4}}
	f1 := ff.MustFp64(ff.P62)
	f2 := ff.MustFp64(ff.P31)
	if DigestString[uint64](f1, FromRows[uint64](f1, rows)) == DigestString[uint64](f2, FromRows[uint64](f2, rows)) {
		t.Fatal("same entries over different fields must digest differently")
	}
}

// TestDigestEntrySensitivity flips every entry of a random matrix in turn
// and checks each change flips the digest.
func TestDigestEntrySensitivity(t *testing.T) {
	f := ff.MustFp64(ff.P62)
	src := ff.NewSource(7)
	a := Random[uint64](f, src, 5, 5, f.Modulus())
	base := DigestString[uint64](f, a)
	for i := range a.Data {
		old := a.Data[i]
		a.Data[i] = f.Add(old, f.One())
		if DigestString[uint64](f, a) == base {
			t.Fatalf("changing entry %d did not change the digest", i)
		}
		a.Data[i] = old
	}
	if DigestString[uint64](f, a) != base {
		t.Fatal("digest is not a pure function of the entries")
	}
}

// TestDigestShapeFraming: a 2×3 and a 3×2 matrix sharing the same flat data
// must digest differently (dimensions are framed, not inferred).
func TestDigestShapeFraming(t *testing.T) {
	f := ff.MustFp64(ff.P62)
	flat := []uint64{1, 2, 3, 4, 5, 6}
	a := &Dense[uint64]{Rows: 2, Cols: 3, Data: flat}
	b := &Dense[uint64]{Rows: 3, Cols: 2, Data: flat}
	if DigestString[uint64](f, a) == DigestString[uint64](f, b) {
		t.Fatal("2×3 and 3×2 with the same flat data digest equal")
	}
}

func TestDigestDeterministic(t *testing.T) {
	f := ff.MustFp64(ff.P62)
	a := Random[uint64](f, ff.NewSource(1), 8, 8, f.Modulus())
	if Digest[uint64](f, a) != Digest[uint64](f, a) {
		t.Fatal("digest not deterministic")
	}
	if DigestString[uint64](f, a) != DigestString[uint64](f, a.Clone()) {
		t.Fatal("clone digests differently")
	}
}
