package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/ff"
	"repro/internal/kp"
	"repro/internal/matrix"
	"repro/internal/obs"
)

func nonsingular(t *testing.T, src *ff.Source, n int) *matrix.Dense[uint64] {
	t.Helper()
	for {
		a := matrix.Random[uint64](fp, src, n, n, ff.P31)
		if d, _ := matrix.Det[uint64](fp, a); !fp.IsZero(d) {
			return a
		}
	}
}

func TestSolverSolveBatch(t *testing.T) {
	src := ff.NewSource(401)
	n, k := 7, 4
	a := nonsingular(t, src, n)
	bm := matrix.Random[uint64](fp, src, n, k, ff.P31)

	s := newSolver(t)
	x, err := s.SolveBatch(a, bm)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Mul[uint64](fp, a, x).Equal(fp, bm) {
		t.Fatal("SolveBatch: A·X != B")
	}
	// Bit-identical to the per-column path on a fresh, identically seeded
	// solver (the exact solution is unique).
	indep := newSolver(t)
	for j := 0; j < k; j++ {
		want, err := indep.Solve(a, bm.Col(j))
		if err != nil {
			t.Fatal(err)
		}
		if !ff.VecEqual[uint64](fp, x.Col(j), want) {
			t.Fatalf("batch column %d differs from independent Solve", j)
		}
	}
	short := matrix.Random[uint64](fp, src, n-1, k, ff.P31)
	if _, err := s.SolveBatch(a, short); !errors.Is(err, kp.ErrBadShape) {
		t.Fatalf("mismatched B: err = %v", err)
	}
}

// TestSolverFactored exercises the reusable handle through the Solver
// surface and pins the "skips Krylov" claim at this level too: after
// Factor, further Solve calls on the handle add no batch/krylov span.
func TestSolverFactored(t *testing.T) {
	o := obs.New(0)
	s, err := NewSolver[uint64](fp, Options{Seed: 1, Observer: o})
	if err != nil {
		t.Fatal(err)
	}
	defer obs.SetActive(nil)
	src := ff.NewSource(403)
	n := 6
	a := nonsingular(t, src, n)

	h, err := s.Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if h.Dim() != n {
		t.Fatalf("Dim = %d", h.Dim())
	}
	krylov := o.PhaseTotals()[obs.PhaseBatchKrylov].Count
	if krylov == 0 {
		t.Fatal("Factor recorded no batch/krylov span")
	}

	fresh := newSolver(t)
	for trial := 0; trial < 2; trial++ {
		b := ff.SampleVec[uint64](fp, src, n, ff.P31)
		x, err := h.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Solve(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !ff.VecEqual[uint64](fp, x, want) {
			t.Fatalf("trial %d: Factored.Solve differs from Solver.Solve", trial)
		}
	}
	if got := o.PhaseTotals()[obs.PhaseBatchKrylov].Count; got != krylov {
		t.Fatalf("Factored.Solve re-ran Krylov: %d spans, want %d", got, krylov)
	}

	d, err := h.Det()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := matrix.Det[uint64](fp, a)
	if d != want {
		t.Fatalf("Factored.Det = %d, want %d", d, want)
	}
	inv, err := h.InverseApply(matrix.Identity[uint64](fp, n))
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Mul[uint64](fp, a, inv).Equal(fp, matrix.Identity[uint64](fp, n)) {
		t.Fatal("Factored.InverseApply(I) is not the inverse")
	}
}

func TestSolverCtxCancellation(t *testing.T) {
	s := newSolver(t)
	src := ff.NewSource(405)
	n := 5
	a := nonsingular(t, src, n)
	b := ff.SampleVec[uint64](fp, src, n, ff.P31)
	bm := matrix.Random[uint64](fp, src, n, 2, ff.P31)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.SolveCtx(ctx, a, b); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveCtx: err = %v", err)
	}
	if _, err := s.SolveBatchCtx(ctx, a, bm); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveBatchCtx: err = %v", err)
	}
	if _, err := s.FactorCtx(ctx, a); !errors.Is(err, context.Canceled) {
		t.Fatalf("FactorCtx: err = %v", err)
	}
}
