package core

import (
	"context"
	"fmt"
	"log/slog"
	"math/big"

	"repro/internal/ff"
	"repro/internal/kp"
	"repro/internal/matrix"
	"repro/internal/rns"
)

// IntOptions configures an IntSolver — the ring-aware entry point that
// solves over ℤ and ℚ instead of one fixed finite field.
type IntOptions struct {
	// Seed seeds the deterministic random source for the per-residue Las
	// Vegas attempts; 0 selects the fixed default.
	Seed uint64
	// Retries bounds the Las Vegas attempts per residue field.
	Retries int
	// Multiplier names the matrix-multiplication black box used inside
	// every residue field: one of matrix.Names(); "" selects "classical".
	Multiplier string
	// PrecondMode selects the per-residue preconditioner realization
	// ("dense" or "implicit"); every generated prime is NTT-friendly, so
	// the implicit Hankel fast path is always available.
	PrecondMode string
	// Logger receives the per-attempt structured records of every residue
	// solve (nil disables logging, as in Options).
	Logger *slog.Logger
	// RNS carries the multi-modulus knobs (prime count/bound overrides,
	// verification, worker cap). The zero value certifies the prime count
	// from the input's Hadamard/Cramer bound and verifies the answer.
	RNS rns.Params
}

// IntSolver is the public façade for exact linear algebra over ℤ and ℚ:
// SolveInt / SolveRat / DetInt / RankInt on integer or rational matrices,
// with results carrying *big.Int / *big.Rat values. It wraps kp.IntEngine,
// so one IntSolver held across calls caches the per-(matrix, prime)
// factorizations; the engine is safe for concurrent use, and unlike
// Solver, IntSolver needs no WithSource dance — each call splits its own
// residue sources internally.
type IntSolver struct {
	eng     *kp.IntEngine
	seed    uint64
	retries int
	rp      rns.Params
	precond kp.PrecondMode
	logger  *slog.Logger
}

// NewIntSolver returns an IntSolver, or an error for an unknown
// Multiplier/PrecondMode name or invalid RNS knobs.
func NewIntSolver(opts IntOptions) (*IntSolver, error) {
	mul, err := matrix.ByName[uint64](opts.Multiplier)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	precond, err := kp.ParsePrecondMode(opts.PrecondMode)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if _, err := rns.ParseVerifyMode(string(opts.RNS.Verify)); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	seed := opts.Seed
	if seed == 0 {
		seed = kp.DefaultSeed
	}
	return &IntSolver{
		eng:     kp.NewIntEngine(mul),
		seed:    seed,
		retries: opts.Retries,
		rp:      opts.RNS,
		precond: precond,
		logger:  opts.Logger,
	}, nil
}

// MustNewIntSolver is NewIntSolver panicking on configuration errors.
func MustNewIntSolver(opts IntOptions) *IntSolver {
	s, err := NewIntSolver(opts)
	if err != nil {
		panic(err)
	}
	return s
}

// params builds the per-call kp.Params. A fresh source per call (seeded
// deterministically) keeps the solver safe for concurrent callers: the
// engine splits one child source per residue from it.
func (s *IntSolver) params(ctx context.Context) kp.Params {
	return kp.Params{Src: ff.NewSource(s.seed), Retries: s.retries, Ctx: ctx, Precond: s.precond, Logger: s.logger}
}

// Engine exposes the underlying kp.IntEngine (for cache inspection).
func (s *IntSolver) Engine() *kp.IntEngine { return s.eng }

// SolveInt solves the non-singular integer system A·x = b exactly over ℚ.
func (s *IntSolver) SolveInt(a *rns.IntMat, b []*big.Int) (*rns.RatVec, *kp.RingStats, error) {
	return s.SolveIntCtx(context.Background(), a, b)
}

// SolveIntCtx is SolveInt with cooperative cancellation.
func (s *IntSolver) SolveIntCtx(ctx context.Context, a *rns.IntMat, b []*big.Int) (*rns.RatVec, *kp.RingStats, error) {
	return s.eng.Solve(ctx, a, b, s.rp, s.params(ctx))
}

// SolveRat solves the non-singular rational system A·x = b exactly.
func (s *IntSolver) SolveRat(a [][]*big.Rat, b []*big.Rat) (*rns.RatVec, *kp.RingStats, error) {
	return s.SolveRatCtx(context.Background(), a, b)
}

// SolveRatCtx is SolveRat with cooperative cancellation.
func (s *IntSolver) SolveRatCtx(ctx context.Context, a [][]*big.Rat, b []*big.Rat) (*rns.RatVec, *kp.RingStats, error) {
	return s.eng.SolveRat(ctx, a, b, s.rp, s.params(ctx))
}

// DetInt returns det(A) exactly over ℤ (0 for singular A).
func (s *IntSolver) DetInt(a *rns.IntMat) (*big.Int, *kp.RingStats, error) {
	return s.DetIntCtx(context.Background(), a)
}

// DetIntCtx is DetInt with cooperative cancellation.
func (s *IntSolver) DetIntCtx(ctx context.Context, a *rns.IntMat) (*big.Int, *kp.RingStats, error) {
	return s.eng.Det(ctx, a, s.rp, s.params(ctx))
}

// RankInt returns rank(A) over ℚ (Monte Carlo, like the field driver).
func (s *IntSolver) RankInt(a *rns.IntMat) (int, *kp.RingStats, error) {
	return s.RankIntCtx(context.Background(), a)
}

// RankIntCtx is RankInt with cooperative cancellation.
func (s *IntSolver) RankIntCtx(ctx context.Context, a *rns.IntMat) (int, *kp.RingStats, error) {
	return s.eng.Rank(ctx, a, s.rp, s.params(ctx))
}
