package core

import (
	"errors"
	"math/big"
	"testing"

	"repro/internal/errs"
	"repro/internal/rns"
)

// TestIntSolverSolveAndDet: the façade end to end — exact solve, exact
// det, cache reuse across calls on the same matrix.
func TestIntSolverSolveAndDet(t *testing.T) {
	s, err := NewIntSolver(IntOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	a := rns.IntMatFromInt64([][]int64{
		{4, -2, 1},
		{3, 6, -4},
		{2, 1, 8},
	})
	b := []*big.Int{big.NewInt(12), big.NewInt(-25), big.NewInt(32)}
	x, stats, err := s.SolveInt(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Verified {
		t.Fatal("not verified")
	}
	// Residual check A·x = b over ℚ.
	for i := 0; i < 3; i++ {
		acc := new(big.Rat)
		for j := 0; j < 3; j++ {
			acc.Add(acc, new(big.Rat).Mul(new(big.Rat).SetInt(a.At(i, j)), x.Rat(j)))
		}
		if acc.Cmp(new(big.Rat).SetInt(b[i])) != 0 {
			t.Fatalf("row %d residual: %s ≠ %s", i, acc.RatString(), b[i])
		}
	}
	// det = 4(48+4) + 2(24+8) + 1(3−12) = 208 + 64 − 9 = 263.
	det, dstats, err := s.DetInt(a)
	if err != nil {
		t.Fatal(err)
	}
	if det.Cmp(big.NewInt(263)) != 0 {
		t.Fatalf("det = %s, want 263", det)
	}
	// The det call factors the same matrix mod the same primes as the
	// solve (deterministic sequence) — the engine cache must have hits.
	if dstats.CacheHits == 0 {
		t.Fatalf("det after solve hit no cached factorizations: %+v", dstats)
	}
	if s.Engine().CacheLen() == 0 {
		t.Fatal("engine cache empty")
	}
}

// TestIntSolverSolveRat: rational inputs clear denominators and solve
// exactly.
func TestIntSolverSolveRat(t *testing.T) {
	s := MustNewIntSolver(IntOptions{})
	a := [][]*big.Rat{
		{big.NewRat(1, 3), big.NewRat(2, 1)},
		{big.NewRat(1, 1), big.NewRat(-1, 7)},
	}
	b := []*big.Rat{big.NewRat(7, 3), big.NewRat(6, 7)}
	x, _, err := s.SolveRat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		acc := new(big.Rat)
		for j := range a[i] {
			acc.Add(acc, new(big.Rat).Mul(a[i][j], x.Rat(j)))
		}
		if acc.Cmp(b[i]) != 0 {
			t.Fatalf("row %d: A·x = %s, want %s", i, acc.RatString(), b[i].RatString())
		}
	}
}

// TestIntSolverRank and singular det through the façade.
func TestIntSolverRankAndSingular(t *testing.T) {
	s := MustNewIntSolver(IntOptions{Retries: 2})
	a := rns.IntMatFromInt64([][]int64{
		{1, 2},
		{2, 4},
	})
	r, _, err := s.RankInt(a)
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Fatalf("rank = %d, want 1", r)
	}
	det, _, err := s.DetInt(a)
	if err != nil {
		t.Fatal(err)
	}
	if det.Sign() != 0 {
		t.Fatalf("det = %s, want 0", det)
	}
	if _, _, err := s.SolveInt(a, []*big.Int{big.NewInt(1), big.NewInt(1)}); !errors.Is(err, errs.ErrSingular) {
		t.Fatalf("singular solve err = %v, want ErrSingular", err)
	}
}

// TestNewIntSolverValidation: bad names fail construction, matching the
// NewSolver contract.
func TestNewIntSolverValidation(t *testing.T) {
	if _, err := NewIntSolver(IntOptions{Multiplier: "nope"}); err == nil {
		t.Fatal("unknown multiplier accepted")
	}
	if _, err := NewIntSolver(IntOptions{PrecondMode: "nope"}); err == nil {
		t.Fatal("unknown precond mode accepted")
	}
	if _, err := NewIntSolver(IntOptions{RNS: rns.Params{Verify: "nope"}}); err == nil {
		t.Fatal("unknown verify mode accepted")
	}
}
