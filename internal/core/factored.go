package core

import (
	"context"

	"repro/internal/kp"
	"repro/internal/matrix"
)

// Factored is a reusable handle on the shared Theorem 4 front end for one
// non-singular matrix, produced by Solver.Factor. The preconditioner, the
// randomness, the characteristic polynomial and the Ã^{2^i} power ladder
// are cached, so every call below replays only the backsolve (and its
// verification) — observable as batch/backsolve spans with no further
// batch/krylov span. Safe for concurrent use: the kpd factorization cache
// shares one handle across requests (see kp.Factorization).
type Factored[E any] struct {
	fa *kp.Factorization[E]
}

// Dim returns the dimension of the factored matrix.
func (h *Factored[E]) Dim() int { return h.fa.Dim() }

// Solve returns the verified solution of A·x = b without re-running the
// Krylov phase.
func (h *Factored[E]) Solve(b []E) ([]E, error) { return h.fa.Solve(b) }

// SolveCtx is Solve carrying a request context: the backsolve/verify spans
// record under the context's trace scope, so a kpd cache hit is
// attributable to the request that replayed it.
func (h *Factored[E]) SolveCtx(ctx context.Context, b []E) ([]E, error) {
	return h.fa.SolveCtx(ctx, b)
}

// InverseApply returns the verified X = A⁻¹·B for all columns of B in one
// fused backsolve.
func (h *Factored[E]) InverseApply(b *matrix.Dense[E]) (*matrix.Dense[E], error) {
	return h.fa.InverseApply(b)
}

// InverseApplyCtx is InverseApply carrying a request context for span
// attribution (see SolveCtx).
func (h *Factored[E]) InverseApplyCtx(ctx context.Context, b *matrix.Dense[E]) (*matrix.Dense[E], error) {
	return h.fa.InverseApplyCtx(ctx, b)
}

// Det returns det(A) from the cached characteristic polynomial. Unlike
// Solver.Det it does not vote across independent randomizations: the
// answer is Monte Carlo with error probability ≤ 3n²/|S|.
func (h *Factored[E]) Det() (E, error) { return h.fa.Det() }
