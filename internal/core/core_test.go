package core

import (
	"errors"
	"testing"

	"repro/internal/ff"
	"repro/internal/kp"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/poly"
)

var fp = ff.MustFp64(ff.P31)

func newSolver(t *testing.T) *Solver[uint64] {
	t.Helper()
	s, err := NewSolver[uint64](fp, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSolverEndToEnd(t *testing.T) {
	s := newSolver(t)
	src := ff.NewSource(201)
	n := 7
	var a *matrix.Dense[uint64]
	for {
		a = matrix.Random[uint64](fp, src, n, n, ff.P31)
		if d, _ := matrix.Det[uint64](fp, a); !fp.IsZero(d) {
			break
		}
	}
	b := ff.SampleVec[uint64](fp, src, n, ff.P31)

	x, err := s.Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !ff.VecEqual[uint64](fp, a.MulVec(fp, x), b) {
		t.Fatal("Solve wrong")
	}

	d, err := s.Det(a)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := matrix.Det[uint64](fp, a)
	if d != want {
		t.Fatal("Det wrong")
	}

	inv, err := s.Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Mul[uint64](fp, a, inv).Equal(fp, matrix.Identity[uint64](fp, n)) {
		t.Fatal("Inverse wrong")
	}

	xt, err := s.TransposedSolve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !ff.VecEqual[uint64](fp, a.Transpose().MulVec(fp, xt), b) {
		t.Fatal("TransposedSolve wrong")
	}

	sing, err := s.IsSingular(a)
	if err != nil {
		t.Fatal(err)
	}
	if sing {
		t.Fatal("non-singular flagged singular")
	}

	r, err := s.Rank(a)
	if err != nil {
		t.Fatal(err)
	}
	if r != n {
		t.Fatalf("Rank = %d, want %d", r, n)
	}
}

func TestSolverSingularPaths(t *testing.T) {
	s := newSolver(t)
	a := matrix.FromRows[uint64](fp, [][]int64{{1, 2, 3}, {2, 4, 6}, {1, 1, 1}})
	r, err := s.Rank(a)
	if err != nil {
		t.Fatal(err)
	}
	if r != 2 {
		t.Fatalf("Rank = %d, want 2", r)
	}
	ns, err := s.Nullspace(a)
	if err != nil {
		t.Fatal(err)
	}
	if ns.Cols != 1 || !matrix.Mul[uint64](fp, a, ns).IsZero(fp) {
		t.Fatal("Nullspace wrong")
	}
	// Consistent singular solve.
	y := []uint64{1, 2, 3}
	b := a.MulVec(fp, y)
	x, err := s.SolveSingular(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !ff.VecEqual[uint64](fp, a.MulVec(fp, x), b) {
		t.Fatal("SolveSingular wrong")
	}
	// The full solver must report failure on singular input.
	if _, err := s.Solve(a, b); !errors.Is(err, kp.ErrRetriesExhausted) {
		t.Fatalf("Solve on singular: err = %v", err)
	}
}

func TestSolverToeplitzAndGCD(t *testing.T) {
	s := newSolver(t)
	src := ff.NewSource(203)
	n := 6
	entries := ff.SampleVec[uint64](fp, src, 2*n-1, ff.P31)
	cp, err := s.CharPolyToeplitz(entries)
	if err != nil {
		t.Fatal(err)
	}
	if poly.Deg[uint64](fp, cp) != n {
		t.Fatal("CharPolyToeplitz degree wrong")
	}
	cp2, err := s.CharPolyToeplitzAnyChar(entries)
	if err != nil {
		t.Fatal(err)
	}
	if !poly.Equal[uint64](fp, cp, cp2) {
		t.Fatal("any-char route disagrees")
	}
	b := ff.SampleVec[uint64](fp, src, n, ff.P31)
	x, err := s.SolveToeplitz(entries, b)
	if err != nil {
		t.Fatal(err)
	}
	tm := matrix.ToeplitzDense[uint64](fp, entries)
	if !ff.VecEqual[uint64](fp, tm.MulVec(fp, x), b) {
		t.Fatal("SolveToeplitz wrong")
	}
	g := poly.FromInt64[uint64](fp, []int64{1, 1})
	pa := poly.Mul[uint64](fp, g, poly.FromInt64[uint64](fp, []int64{3, 1}))
	pb := poly.Mul[uint64](fp, g, poly.FromInt64[uint64](fp, []int64{5, 0, 1}))
	gg, err := s.GCD(pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	if !poly.Equal[uint64](fp, gg, g) {
		t.Fatalf("GCD = %s", poly.String[uint64](fp, gg))
	}
}

func TestSolverBlackBox(t *testing.T) {
	s := newSolver(t)
	src := ff.NewSource(205)
	n := 30
	sp := matrix.RandomSparse[uint64](fp, src, n, 0.1, ff.P31)
	b := ff.SampleVec[uint64](fp, src, n, ff.P31)
	x, err := s.SolveBlackBox(matrix.SparseBox[uint64]{M: sp}, b)
	if err != nil {
		t.Fatal(err)
	}
	if !ff.VecEqual[uint64](fp, sp.Apply(fp, x), b) {
		t.Fatal("SolveBlackBox wrong")
	}
	d, err := s.DetBlackBox(matrix.SparseBox[uint64]{M: sp})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := matrix.Det[uint64](fp, sp.Dense(fp))
	if d != want {
		t.Fatal("DetBlackBox wrong")
	}
}

func TestSolverCircuits(t *testing.T) {
	s := newSolver(t)
	n := 4
	circ, err := s.SolveCircuit(n)
	if err != nil {
		t.Fatal(err)
	}
	if circ.NumRandom() != kp.Count(n) {
		t.Fatal("random-node count wrong")
	}
	inv, err := s.InverseCircuit(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(inv.Outputs()) != n*n {
		t.Fatal("inverse circuit output count wrong")
	}
}

func TestCharacteristicGuard(t *testing.T) {
	f2 := ff.MustFp64(2)
	s := MustNewSolver[uint64](f2, Options{Seed: 3})
	a := matrix.Identity[uint64](f2, 4)
	if _, err := s.Solve(a, []uint64{1, 0, 1, 0}); err == nil {
		t.Fatal("characteristic 2 with n = 4 must be refused by Theorem 4")
	}
	// But the any-characteristic Toeplitz charpoly works.
	entries := []uint64{1, 0, 1, 1, 0, 1, 1}
	if _, err := s.CharPolyToeplitzAnyChar(entries); err != nil {
		t.Fatal(err)
	}
}

func TestStrassenOption(t *testing.T) {
	// The deprecated boolean folds into Multiplier resolution.
	s, err := NewSolver[uint64](fp, Options{Seed: 5, Strassen: true})
	if err != nil {
		t.Fatal(err)
	}
	src := ff.NewSource(207)
	n := 6
	var a *matrix.Dense[uint64]
	for {
		a = matrix.Random[uint64](fp, src, n, n, ff.P31)
		if d, _ := matrix.Det[uint64](fp, a); !fp.IsZero(d) {
			break
		}
	}
	b := ff.SampleVec[uint64](fp, src, n, ff.P31)
	x, err := s.Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !ff.VecEqual[uint64](fp, a.MulVec(fp, x), b) {
		t.Fatal("Strassen-backed Solve wrong")
	}
}

func TestMultiplierOption(t *testing.T) {
	src := ff.NewSource(311)
	n := 8
	var a *matrix.Dense[uint64]
	for {
		a = matrix.Random[uint64](fp, src, n, n, ff.P31)
		if d, _ := matrix.Det[uint64](fp, a); !fp.IsZero(d) {
			break
		}
	}
	b := ff.SampleVec[uint64](fp, src, n, ff.P31)
	// Every named multiplier solves, and circuits still trace (the solver
	// maps parallel kernels to their serial circuit-safe forms).
	for _, name := range matrix.Names() {
		s, err := NewSolver[uint64](fp, Options{Seed: 5, Multiplier: name})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		x, err := s.Solve(a, b)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !ff.VecEqual[uint64](fp, a.MulVec(fp, x), b) {
			t.Fatalf("%s-backed Solve wrong", name)
		}
		if _, err := s.SolveCircuit(4); err != nil {
			t.Fatalf("%s: circuit trace: %v", name, err)
		}
	}
	// An unregistered name is a configuration error, reported, not panicked.
	if _, err := NewSolver[uint64](fp, Options{Multiplier: "quantum"}); err == nil {
		t.Fatal("unknown multiplier name accepted")
	}
	// The deprecated Strassen boolean may not contradict an explicit
	// non-Strassen Multiplier.
	if _, err := NewSolver[uint64](fp, Options{Strassen: true, Multiplier: "classical"}); err == nil {
		t.Fatal("conflicting Strassen/Multiplier options accepted")
	}
	if _, err := NewSolver[uint64](fp, Options{Strassen: true, Multiplier: "parallel-strassen"}); err != nil {
		t.Fatalf("compatible Strassen/Multiplier options refused: %v", err)
	}
	// MustNewSolver keeps the old panic behaviour for tooling that wants it.
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewSolver did not panic on unknown multiplier")
		}
	}()
	MustNewSolver[uint64](fp, Options{Multiplier: "quantum"})
}

// TestObserverAndInstrumentOptions runs a traced, instrumented solve and
// checks the observability contract end to end: the timeline's top-level
// spans are exactly the KP91 phases, and the op count attributed to spans
// matches the Instrumented multiplier total (every multiplication charged
// to exactly one phase).
func TestObserverAndInstrumentOptions(t *testing.T) {
	o := obs.New(0)
	s := MustNewSolver[uint64](fp, Options{Seed: 3, Observer: o, Instrument: true})
	defer obs.SetActive(nil)
	if s.MulStats() == nil {
		t.Fatal("Instrument: MulStats must be non-nil")
	}
	if s.Observer() != o {
		t.Fatal("Observer not retained")
	}
	src := ff.NewSource(11)
	n := 8
	var a *matrix.Dense[uint64]
	for {
		a = matrix.Random[uint64](fp, src, n, n, ff.P31)
		if d, _ := matrix.Det[uint64](fp, a); !fp.IsZero(d) {
			break
		}
	}
	b := ff.SampleVec[uint64](fp, src, n, ff.P31)
	if _, err := s.Solve(a, b); err != nil {
		t.Fatal(err)
	}

	top := map[string]bool{}
	for _, r := range o.Records() {
		if r.Parent == 0 {
			top[r.Name] = true
		}
	}
	want := []string{obs.PhasePrecondition, obs.PhaseKrylov, obs.PhaseMinPoly, obs.PhaseBacksolve}
	for _, name := range want {
		if !top[name] {
			t.Fatalf("missing top-level phase %q in %v", name, top)
		}
	}
	if len(top) != len(want) {
		t.Fatalf("unexpected top-level spans: %v", top)
	}
	snap := s.MulStats().Snapshot()
	if snap.FieldOps == 0 {
		t.Fatal("instrumented multiplier saw no work")
	}
	if got := o.TotalFieldOps(); got != snap.FieldOps {
		t.Fatalf("span field-ops %d != instrumented field-ops %d", got, snap.FieldOps)
	}
}
