package core

import (
	"testing"

	"repro/internal/ff"
	"repro/internal/matrix"
	"repro/internal/poly"
	"repro/internal/seq"
)

func TestSolverResultantAndKnownDegreeGCD(t *testing.T) {
	s := MustNewSolver[uint64](fp, Options{Seed: 21})
	f := fp
	// Planted gcd of degree 2.
	g := poly.FromInt64[uint64](f, []int64{1, 5, 1})
	a := poly.Mul[uint64](f, g, poly.FromInt64[uint64](f, []int64{3, 1, 0, 1}))
	b := poly.Mul[uint64](f, g, poly.FromInt64[uint64](f, []int64{7, 0, 1}))
	want, err := poly.GCD[uint64](f, a, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.GCDKnownDegree(a, b, poly.Deg[uint64](f, want))
	if err != nil {
		t.Fatal(err)
	}
	if !poly.Equal[uint64](f, got, want) {
		t.Fatal("GCDKnownDegree via facade wrong")
	}
	// Shared factor ⇒ resultant zero; coprime ⇒ matches the dense route.
	r, err := s.Resultant(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsZero(r) {
		t.Fatal("resultant with shared factor must vanish")
	}
	ca := poly.FromInt64[uint64](f, []int64{1, 1, 1})
	cb := poly.FromInt64[uint64](f, []int64{2, 0, 0, 1})
	r, err = s.Resultant(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := poly.Resultant[uint64](f, ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	if f.IsZero(r) || (r != rd && r != f.Neg(rd)) {
		t.Fatalf("facade resultant %d vs Euclid %d", r, rd)
	}
}

func TestSolverMinPolyOfSequence(t *testing.T) {
	s := MustNewSolver[uint64](fp, Options{Seed: 23})
	f := fp
	g := poly.FromInt64[uint64](f, []int64{3, 1, 1}) // λ² + λ + 3
	a := seq.Apply[uint64](f, g, []uint64{1, 2}, 16)
	got, err := s.MinPolyOfSequence(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := seq.MinPoly[uint64](f, a)
	if err != nil {
		t.Fatal(err)
	}
	if !poly.Equal[uint64](f, got, want) {
		t.Fatal("MinPolyOfSequence wrong")
	}
}

func TestSolveSmallPrimeField(t *testing.T) {
	base := ff.MustFp64(101)
	src := ff.NewSource(25)
	n := 8 // 3n² = 192 > 101: the extension path engages
	var a *matrix.Dense[uint64]
	for {
		a = matrix.Random[uint64](base, src, n, n, 101)
		if d, _ := matrix.Det[uint64](base, a); !base.IsZero(d) {
			break
		}
	}
	b := ff.SampleVec[uint64](base, src, n, 101)
	x, err := SolveSmallPrimeField(base, a, b, Options{Seed: 27, Retries: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !ff.VecEqual[uint64](base, a.MulVec(base, x), b) {
		t.Fatal("small-field solve wrong")
	}
}
