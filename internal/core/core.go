// Package core is the public façade of the Kaltofen–Pan reproduction: a
// Solver bundling the paper's randomized algorithms behind one configured
// entry point. Downstream users construct a Solver for their field and call
// Solve / Det / Inverse / Rank / Nullspace / CharPoly without touching the
// individual substrate packages.
//
// Quick start:
//
//	f := ff.MustFp64(ff.P62)
//	s, err := core.NewSolver[uint64](f, core.Options{Seed: 42})
//	x, err := s.Solve(a, b)       // a *matrix.Dense[uint64], b []uint64
//	xs, err := s.SolveBatch(a, B) // B *matrix.Dense[uint64]: k RHS at once
//
// All algorithms are Las Vegas: returned results are verified (or agreed
// across independent randomizations) and therefore correct; unlucky random
// choices cost retries, with per-attempt failure probability ≤ 3n²/|S|
// (the paper's equation (2)) for subset size |S|.
package core

import (
	"context"
	"fmt"
	"log/slog"

	"repro/internal/circuit"
	"repro/internal/errs"
	"repro/internal/ff"
	"repro/internal/kp"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/seq"
	"repro/internal/structured"
	"repro/internal/wiedemann"
)

// Options configures a Solver.
type Options struct {
	// Seed seeds the deterministic random source; 0 selects a fixed
	// default so runs are replayable.
	Seed uint64
	// SubsetSize is |S|, the size of the sampling subset. 0 selects the
	// field cardinality capped at 2⁶², giving failure probability ≈ 0 for
	// word-sized fields.
	SubsetSize uint64
	// Retries bounds the Las Vegas attempts (default kp.DefaultRetries).
	Retries int
	// Strassen selects Strassen's Ω(n^2.81) multiplication instead of the
	// classical cubic method as the matrix-multiplication black box.
	//
	// Deprecated: set Multiplier to "strassen". Strassen is folded into
	// the Multiplier resolution; setting both to conflicting values is a
	// NewSolver error.
	Strassen bool
	// Multiplier names the matrix-multiplication black box: one of
	// matrix.Names() — "classical" (default), "blocked", "parallel",
	// "strassen", "parallel-strassen". The parallel kernels run on the
	// matrix package's shared worker pool; circuit tracing automatically
	// uses the matching serial balanced form (matrix.CircuitSafeName).
	// Unknown names are a NewSolver error.
	Multiplier string
	// Observer, when non-nil, is installed as the process-global active
	// obs.Observer: the solve phases (precondition, krylov, minpoly,
	// backsolve) record spans into it, exportable as a Chrome trace_event
	// timeline. The observer is global because the substrate packages are
	// instrumented against obs.Active(); run one traced solve at a time
	// for per-run attribution. Nil leaves observability in whatever state
	// the process has (off by default, the nil-span fast path).
	Observer *obs.Observer
	// Instrument wraps the multiplication black box in matrix.Instrumented
	// so calls, classical-equivalent field operations, and wall/busy time
	// are counted; read them via Solver.MulStats. Combined with Observer,
	// each multiply's op count is folded into the phase span that issued
	// it.
	Instrument bool
	// Logger, when non-nil, receives structured slog records from the Las
	// Vegas drivers: one per randomized attempt (solver, attempt number, n,
	// |S|, outcome, failure phase, wall time) and one per finished driver
	// call. Logging is orthogonal to the always-on attempt statistics
	// (obs.BoundsReport) and the flight recorder, which need no
	// configuration.
	Logger *slog.Logger
	// PrecondMode selects how Solve/SolveBatch/Factor realize the Theorem 4
	// preconditioner Ã = A·H·D: "dense" (default, materialized with one
	// O(n^ω) product) or "implicit" (A, H, D composed as black boxes; the
	// Hankel factor applies through its cached NTT transform and the
	// precondition phase performs zero dense matrix products). Results are
	// identical either way; only the cost profile changes. Unknown names are
	// a NewSolver error.
	PrecondMode string
}

// Solver bundles a field, a random stream and the algorithm configuration.
type Solver[E any] struct {
	f       ff.Field[E]
	src     *ff.Source
	subset  uint64
	retries int
	mul     matrix.Multiplier[E]
	wmul    matrix.Multiplier[circuit.Wire]
	stats   *matrix.MulStats
	obs     *obs.Observer
	logger  *slog.Logger
	precond kp.PrecondMode
}

// NewSolver returns a Solver over the given field, or an error for an
// unknown Multiplier name or a Strassen/Multiplier conflict.
func NewSolver[E any](f ff.Field[E], opts Options) (*Solver[E], error) {
	seed := opts.Seed
	if seed == 0 {
		seed = kp.DefaultSeed
	}
	name := opts.Multiplier
	if opts.Strassen {
		switch name {
		case "":
			name = "strassen"
		case "strassen", "parallel-strassen":
			// Strassen flag is redundant but consistent.
		default:
			return nil, fmt.Errorf("core: Options.Strassen conflicts with Multiplier %q", name)
		}
	}
	mul, err := matrix.ByName[E](name)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	wmul, err := matrix.ByName[circuit.Wire](matrix.CircuitSafeName(name))
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	subset := opts.SubsetSize
	if subset == 0 {
		subset = kp.DefaultSubset(f)
	}
	precond, err := kp.ParsePrecondMode(opts.PrecondMode)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	s := &Solver[E]{
		f:       f,
		src:     ff.NewSource(seed),
		subset:  subset,
		retries: opts.Retries,
		mul:     mul,
		wmul:    wmul,
		obs:     opts.Observer,
		logger:  opts.Logger,
		precond: precond,
	}
	if opts.Instrument {
		im := matrix.NewInstrumented(mul)
		s.mul = im
		s.stats = im.Stats
	}
	if opts.Observer != nil {
		obs.SetActive(opts.Observer)
	}
	return s, nil
}

// MustNewSolver is NewSolver panicking on configuration errors — the
// old constructor contract, for tests and static configurations.
func MustNewSolver[E any](f ff.Field[E], opts Options) *Solver[E] {
	s, err := NewSolver(f, opts)
	if err != nil {
		panic(err)
	}
	return s
}

// params returns the solver's configuration as a kp.Params carrying the
// given context.
func (s *Solver[E]) params(ctx context.Context) kp.Params {
	return kp.Params{Src: s.src, Subset: s.subset, Retries: s.retries, Ctx: ctx, Logger: s.logger, Precond: s.precond}
}

// PrecondMode returns the preconditioner realization this solver uses.
func (s *Solver[E]) PrecondMode() kp.PrecondMode { return s.precond }

// WithSource returns a copy of the solver drawing all randomness from src
// instead of the solver's own stream. A Solver's embedded source is a
// mutable ff.Source with no internal synchronization, so a Solver must not
// be shared by concurrent callers directly; a server handling concurrent
// requests keeps one root source under a lock, Splits one child per
// request, and runs the request on WithSource(child). The copy shares the
// field, multiplier and instrumentation with its parent — only the
// randomness differs.
func (s *Solver[E]) WithSource(src *ff.Source) *Solver[E] {
	c := *s
	c.src = src
	return &c
}

// MulStats returns the multiplication instrumentation block, or nil unless
// Options.Instrument was set.
func (s *Solver[E]) MulStats() *matrix.MulStats { return s.stats }

// Observer returns the Options.Observer this solver was built with (nil if
// none).
func (s *Solver[E]) Observer() *obs.Observer { return s.obs }

// Field returns the solver's field.
func (s *Solver[E]) Field() ff.Field[E] { return s.f }

// Solve solves the non-singular system A·x = b (Theorem 4). Requires
// characteristic 0 or > n.
func (s *Solver[E]) Solve(a *matrix.Dense[E], b []E) ([]E, error) {
	return s.SolveCtx(context.Background(), a, b)
}

// SolveCtx is Solve with cooperative cancellation: ctx is checked between
// the phases of an attempt and between Las Vegas attempts, and its error
// is returned once it is done.
func (s *Solver[E]) SolveCtx(ctx context.Context, a *matrix.Dense[E], b []E) ([]E, error) {
	if err := s.checkChar(a.Rows); err != nil {
		return nil, err
	}
	return kp.Solve(s.f, s.mul, a, b, s.params(ctx))
}

// SolveBatch solves A·X = B for every column of B through the batched
// engine: the preconditioning, Krylov doubling and characteristic
// polynomial are computed once per attempt and shared by all k = B.Cols
// right-hand sides, so the marginal cost of an extra RHS is roughly one
// matrix product. Results are verified per column and bit-identical to k
// independent Solve calls. Requires characteristic 0 or > n.
func (s *Solver[E]) SolveBatch(a, b *matrix.Dense[E]) (*matrix.Dense[E], error) {
	return s.SolveBatchCtx(context.Background(), a, b)
}

// SolveBatchCtx is SolveBatch with cooperative cancellation.
func (s *Solver[E]) SolveBatchCtx(ctx context.Context, a, b *matrix.Dense[E]) (*matrix.Dense[E], error) {
	if err := s.checkChar(a.Rows); err != nil {
		return nil, err
	}
	return kp.SolveBatch(s.f, s.mul, a, b, s.params(ctx))
}

// Factor runs the shared Theorem 4 front end once and returns a reusable
// Factored handle: subsequent Solve/InverseApply/Det calls on the handle
// skip the preconditioning, Krylov and minpoly phases entirely. Requires
// characteristic 0 or > n.
func (s *Solver[E]) Factor(a *matrix.Dense[E]) (*Factored[E], error) {
	return s.FactorCtx(context.Background(), a)
}

// FactorCtx is Factor with cooperative cancellation.
func (s *Solver[E]) FactorCtx(ctx context.Context, a *matrix.Dense[E]) (*Factored[E], error) {
	if err := s.checkChar(a.Rows); err != nil {
		return nil, err
	}
	fa, err := kp.Factor(s.f, s.mul, a, s.params(ctx))
	if err != nil {
		return nil, err
	}
	return &Factored[E]{fa: fa}, nil
}

// Det returns det(A) for non-singular A (§2 + §3). Requires characteristic
// 0 or > n. For a possibly-singular matrix, call IsSingular first or use
// the Gaussian baseline in package matrix.
func (s *Solver[E]) Det(a *matrix.Dense[E]) (E, error) {
	return s.DetCtx(context.Background(), a)
}

// DetCtx is Det carrying a context: a trace context on ctx tags the flight
// recorder entry and attempt logs with the owning request.
func (s *Solver[E]) DetCtx(ctx context.Context, a *matrix.Dense[E]) (E, error) {
	var zero E
	if err := s.checkChar(a.Rows); err != nil {
		return zero, err
	}
	return kp.Det(s.f, s.mul, a, s.params(ctx))
}

// Inverse returns A⁻¹ (Theorem 6: Baur–Strassen gradient of the
// determinant circuit). Requires characteristic 0 or > n.
func (s *Solver[E]) Inverse(a *matrix.Dense[E]) (*matrix.Dense[E], error) {
	return s.InverseCtx(context.Background(), a)
}

// InverseCtx is Inverse carrying a context (see DetCtx).
func (s *Solver[E]) InverseCtx(ctx context.Context, a *matrix.Dense[E]) (*matrix.Dense[E], error) {
	if err := s.checkChar(a.Rows); err != nil {
		return nil, err
	}
	return kp.Inverse(s.f, s.mul, a, s.params(ctx))
}

// TransposedSolve solves Aᵀ·x = b via the transposition principle (end of
// §4) without forming Aᵀ.
func (s *Solver[E]) TransposedSolve(a *matrix.Dense[E], b []E) ([]E, error) {
	return s.TransposedSolveCtx(context.Background(), a, b)
}

// TransposedSolveCtx is TransposedSolve carrying a context (see DetCtx).
func (s *Solver[E]) TransposedSolveCtx(ctx context.Context, a *matrix.Dense[E], b []E) ([]E, error) {
	if err := s.checkChar(a.Rows); err != nil {
		return nil, err
	}
	return kp.TransposedSolve(s.f, a, b, s.params(ctx))
}

// Rank returns rank(A) (§5, Monte Carlo with one-sided error shrinking
// geometrically in the retry count).
func (s *Solver[E]) Rank(a *matrix.Dense[E]) (int, error) {
	return s.RankCtx(context.Background(), a)
}

// RankCtx is Rank carrying a context (see DetCtx).
func (s *Solver[E]) RankCtx(ctx context.Context, a *matrix.Dense[E]) (int, error) {
	return kp.Rank(s.f, a, s.params(ctx))
}

// Nullspace returns a verified basis of the right null space of a square
// matrix as the columns of an n×(n−r) matrix (§5).
func (s *Solver[E]) Nullspace(a *matrix.Dense[E]) (*matrix.Dense[E], error) {
	return kp.Nullspace(s.f, a, s.params(nil))
}

// SolveSingular returns one verified solution of a consistent (possibly
// singular) square system, or kp.ErrInconsistent (§5).
func (s *Solver[E]) SolveSingular(a *matrix.Dense[E], b []E) ([]E, error) {
	return kp.SolveSingular(s.f, a, b, s.params(nil))
}

// LeastSquares returns a least-squares solution over a characteristic-zero
// field (§5).
func (s *Solver[E]) LeastSquares(a *matrix.Dense[E], b []E) ([]E, error) {
	return kp.LeastSquares(s.f, s.mul, a, b, s.params(nil))
}

// IsSingular runs Wiedemann's Las Vegas singularity test: a true answer is
// certain, a false answer errs with probability ≤ 2n/|S|.
func (s *Solver[E]) IsSingular(a *matrix.Dense[E]) (bool, error) {
	return wiedemann.IsSingular(s.f, matrix.DenseBox[E]{M: a}, s.src, s.subset)
}

// SolveBlackBox solves A·x = b for a matrix available only through
// matrix-vector products (Wiedemann's method, §2) — the right call for
// large sparse systems.
func (s *Solver[E]) SolveBlackBox(a matrix.BlackBox[E], b []E) ([]E, error) {
	return wiedemann.Solve(s.f, a, b, s.src, s.subset, s.retries)
}

// DetBlackBox returns the determinant of a non-singular black-box matrix.
func (s *Solver[E]) DetBlackBox(a matrix.BlackBox[E]) (E, error) {
	return wiedemann.Det(s.f, a, s.src, s.subset, s.retries)
}

// CharPolyToeplitz returns det(λI − T) for a Toeplitz matrix given by its
// 2n−1 entries (Theorem 3). Requires characteristic 0 or > n; use
// CharPolyToeplitzAnyChar otherwise.
func (s *Solver[E]) CharPolyToeplitz(entries []E) ([]E, error) {
	t := structured.NewToeplitz(entries)
	if err := s.checkChar(t.N); err != nil {
		return nil, err
	}
	return structured.CharPoly(s.f, t)
}

// CharPolyToeplitzAnyChar returns det(λI − T) over any characteristic (§5,
// Chistov's method on the structured leading blocks; one factor n slower).
func (s *Solver[E]) CharPolyToeplitzAnyChar(entries []E) ([]E, error) {
	return structured.CharPolySmallChar(s.f, structured.NewToeplitz(entries))
}

// SolveToeplitz solves the non-singular Toeplitz system T·x = b from the
// matrix's 2n−1 entries (§3). Requires characteristic 0 or > n.
func (s *Solver[E]) SolveToeplitz(entries []E, b []E) ([]E, error) {
	t := structured.NewToeplitz(entries)
	if err := s.checkChar(t.N); err != nil {
		return nil, err
	}
	return structured.Solve(s.f, t, b)
}

// FactorToeplitz runs the Theorem 3 pipeline once (Newton iteration on the
// Gohberg–Semencul implicit inverse → characteristic polynomial → first and
// last columns of T⁻¹) and returns the reusable fast-path handle: each
// subsequent SolveVec costs four triangular-Toeplitz products. Requires
// characteristic 0 or > n; singular T is matrix.ErrSingular.
func (s *Solver[E]) FactorToeplitz(entries []E) (*structured.GSSolver[E], error) {
	t := structured.NewToeplitz(entries)
	if err := s.checkChar(t.N); err != nil {
		return nil, err
	}
	return structured.NewGSSolver(s.f, t)
}

// SolveToeplitzGS solves the non-singular Toeplitz system T·x = b through
// the Gohberg–Semencul backend (FactorToeplitz + one SolveVec) — the
// Theorem 3 alternative to the Cayley–Hamilton route of SolveToeplitz,
// cross-checked against Wiedemann in the differential suite.
func (s *Solver[E]) SolveToeplitzGS(entries []E, b []E) ([]E, error) {
	gs, err := s.FactorToeplitz(entries)
	if err != nil {
		return nil, err
	}
	return gs.SolveVec(s.f, b), nil
}

// GCD returns the monic gcd of two polynomials through Sylvester-matrix
// linear algebra (§5).
func (s *Solver[E]) GCD(a, b []E) ([]E, error) {
	return kp.GCDSylvester(s.f, a, b)
}

// GCDKnownDegree returns the monic gcd given its degree, with no zero
// tests — the branch-free §5 form (one structured linear solve).
func (s *Solver[E]) GCDKnownDegree(a, b []E, deg int) ([]E, error) {
	return kp.GCDKnownDegree(s.f, a, b, deg)
}

// Resultant computes Res(a, b) as the determinant of the structured
// Sylvester operator via Wiedemann's black-box method: every inner
// matrix-vector product is two polynomial multiplications (§5).
func (s *Solver[E]) Resultant(a, b []E) (E, error) {
	return kp.ResultantWiedemann(s.f, a, b, s.params(nil))
}

// TransposedVandermonde solves Vᵀ·x = b for the Vandermonde matrix of the
// given pairwise-distinct nodes — the paper's §4 closing special case,
// obtained by differentiating the fast-interpolation circuit.
func (s *Solver[E]) TransposedVandermonde(nodes, b []E) ([]E, error) {
	return kp.TransposedVandermondeSolve(s.f, nodes, b)
}

// MinPolyOfSequence returns the minimum polynomial of a linearly generated
// sequence by the §3 parallel route (Lemma 1 degree location + one
// structured Toeplitz solve) — the circuit-friendly replacement for
// Berlekamp–Massey. The sequence must supply 2·maxDeg terms.
func (s *Solver[E]) MinPolyOfSequence(a []E, maxDeg int) ([]E, error) {
	if err := s.checkChar(maxDeg); err != nil {
		return nil, err
	}
	return seq.MinPolyParallel(s.f, a, maxDeg)
}

// SolveSmallPrimeField solves a system over a word prime field F_p whose
// cardinality is below the 3n²/ε probability budget, by lifting into an
// algebraic extension F_{p^k} and projecting the (base-field) solution
// back — the paper's §2 remedy for small Galois fields. It is a standalone
// function because the lift changes the element type.
func SolveSmallPrimeField(base ff.Fp64, a *matrix.Dense[uint64], b []uint64, opts Options) ([]uint64, error) {
	seed := opts.Seed
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return kp.SolveViaExtension(base, a, b, ff.NewSource(seed), 0.25, opts.Retries)
}

// SolveCircuit builds the Theorem 4 circuit for dimension n (size
// O(n^ω log n), depth O((log n)²)) for inspection, scheduling, or repeated
// evaluation.
func (s *Solver[E]) SolveCircuit(n int) (*circuit.Builder, error) {
	if err := s.checkChar(n); err != nil {
		return nil, err
	}
	return kp.TraceSolve(s.f, s.wmul, n)
}

// InverseCircuit builds the Theorem 6 inverse circuit for dimension n.
func (s *Solver[E]) InverseCircuit(n int) (*circuit.Builder, error) {
	if err := s.checkChar(n); err != nil {
		return nil, err
	}
	return kp.TraceInverse(s.f, s.wmul, n)
}

// DrawRandomness exposes the Theorem 4 randomness for circuit evaluation.
func (s *Solver[E]) DrawRandomness(n int) kp.Randomness[E] {
	return kp.DrawRandomness(s.f, s.src, n, s.subset)
}

func (s *Solver[E]) checkChar(n int) error {
	if !ff.CharacteristicExceeds(s.f, n) {
		return fmt.Errorf("core: field characteristic %v ≤ n = %d: %w",
			s.f.Characteristic(), n, errs.ErrCharacteristicTooSmall)
	}
	return nil
}
