package kp

import (
	"testing"

	"repro/internal/ff"
	"repro/internal/matrix"
)

func TestExtensionDegree(t *testing.T) {
	// p = 101, n = 8, eps = 0.5: need ≥ 384 > 101, so k = 2 (101² = 10201).
	if k := ExtensionDegree(101, 8, 0.5); k != 2 {
		t.Fatalf("k = %d, want 2", k)
	}
	// Large p never needs lifting beyond k = 1.
	if k := ExtensionDegree(ff.P62, 100, 0.01); k != 1 {
		t.Fatalf("k = %d, want 1", k)
	}
	// Tiny p, big n: several digits.
	if k := ExtensionDegree(3, 32, 0.25); k < 8 {
		t.Fatalf("k = %d suspiciously small for p=3, n=32", k)
	}
}

func TestSolveViaExtension(t *testing.T) {
	// F_101 with n = 8: 3n² = 192 > 101, the exact situation the paper's
	// extension remark covers (char 101 > 8 is fine, the field is just too
	// small for the probability bound).
	base := ff.MustFp64(101)
	src := ff.NewSource(161)
	n := 8
	var a *matrix.Dense[uint64]
	for {
		a = matrix.Random[uint64](base, src, n, n, 101)
		if d, _ := matrix.Det[uint64](base, a); !base.IsZero(d) {
			break
		}
	}
	b := ff.SampleVec[uint64](base, src, n, 101)
	x, err := SolveViaExtension(base, a, b, src, 0.25, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !ff.VecEqual[uint64](base, a.MulVec(base, x), b) {
		t.Fatal("extension solve: Ax != b over the base field")
	}
	want, err := matrix.Solve[uint64](base, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !ff.VecEqual[uint64](base, x, want) {
		t.Fatal("extension solve differs from LU")
	}
}

func TestDetViaExtension(t *testing.T) {
	base := ff.MustFp64(131) // 3n² = 432 > 131 for n = 12... use n = 7: 147 > 131
	src := ff.NewSource(163)
	n := 7
	var a *matrix.Dense[uint64]
	for {
		a = matrix.Random[uint64](base, src, n, n, 131)
		if d, _ := matrix.Det[uint64](base, a); !base.IsZero(d) {
			break
		}
	}
	got, err := DetViaExtension(base, a, src, 0.25, 8)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := matrix.Det[uint64](base, a)
	if got != want {
		t.Fatalf("DetViaExtension = %d, LU = %d", got, want)
	}
}

func TestExtensionRefusesSmallCharacteristic(t *testing.T) {
	// Extensions cannot repair the characteristic: F_5 with n = 8 stays
	// invalid for Theorem 4 in any extension.
	base := ff.MustFp64(5)
	src := ff.NewSource(165)
	a := matrix.Identity[uint64](base, 8)
	b := make([]uint64, 8)
	if _, err := SolveViaExtension(base, a, b, src, 0.25, 3); err == nil {
		t.Fatal("characteristic 5 with n = 8 must be refused")
	}
}
