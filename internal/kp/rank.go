package kp

import (
	"repro/internal/ff"
	"repro/internal/matrix"
)

// §5 extensions: rank. "The former can be accomplished, for instance, by a
// randomization such that precisely the first r principal minors in the
// randomized matrix are not zero, and then by performing a binary search
// for the largest non-singular principal submatrix" (citing Borodin, von
// zur Gathen & Hopcroft 1982).

// Rank returns the rank of an m×n matrix (Monte Carlo, error probability
// decreasing geometrically in retries). Each attempt conjugates A by fresh
// random non-singular U, V; with high probability the first r = rank(A)
// leading principal minors of Â = U·A·V are non-zero while all larger ones
// vanish identically, making "det(Â_k) ≠ 0" a monotone predicate amenable
// to binary search with O(log n) determinant evaluations. Unlucky
// randomness can only under-estimate, so the maximum over attempts is
// reported.
func Rank[E any](f ff.Field[E], a *matrix.Dense[E], p Params) (int, error) {
	p = fill(f, p)
	m, n := a.Rows, a.Cols
	limit := min(m, n)
	if limit == 0 {
		return 0, nil
	}
	best := 0
	for attempt := 0; attempt < p.Retries; attempt++ {
		if err := ctxErr(p.Ctx); err != nil {
			return 0, err
		}
		u, err := randomNonsingular(f, p.Src, m, p.Subset)
		if err != nil {
			return 0, err
		}
		v, err := randomNonsingular(f, p.Src, n, p.Subset)
		if err != nil {
			return 0, err
		}
		ahat := matrix.Mul(f, matrix.Mul(f, u, a), v)
		r, err := largestNonsingularLeading(f, ahat, limit)
		if err != nil {
			return 0, err
		}
		if r > best {
			best = r
		}
		if best == limit {
			break
		}
	}
	return best, nil
}

// largestNonsingularLeading binary-searches the largest k ≤ limit with
// det(leading k×k) ≠ 0, assuming the predicate is monotone (guaranteed
// with high probability by the randomization).
func largestNonsingularLeading[E any](f ff.Field[E], a *matrix.Dense[E], limit int) (int, error) {
	lo, hi := 0, limit // invariant: minor(lo) ≠ 0 (minor(0) = 1), minor(hi+1) unknown
	for lo < hi {
		mid := (lo + hi + 1) / 2
		d, err := matrix.Det(f, a.Leading(mid))
		if err != nil {
			return 0, err
		}
		if f.IsZero(d) {
			hi = mid - 1
		} else {
			lo = mid
		}
	}
	return lo, nil
}

// randomNonsingular draws dense matrices until one is invertible — over a
// subset of size s a draw fails with probability ≤ n/s (Schwartz–Zippel on
// the determinant), so a couple of draws suffice.
func randomNonsingular[E any](f ff.Field[E], src *ff.Source, n int, subset uint64) (*matrix.Dense[E], error) {
	for attempt := 0; attempt < 32; attempt++ {
		m := matrix.Random(f, src, n, n, subset)
		d, err := matrix.Det(f, m)
		if err != nil {
			return nil, err
		}
		if !f.IsZero(d) {
			return m, nil
		}
	}
	return nil, ErrRetriesExhausted
}
