package kp

import (
	"errors"

	"repro/internal/ff"
	"repro/internal/matrix"
	"repro/internal/poly"
	"repro/internal/structured"
	"repro/internal/wiedemann"
)

// §5 extensions: polynomial GCD via structured (Sylvester) matrices. "The
// efficient parallel algorithms ... are extendible to structured
// Toeplitz-like matrices such as Sylvester matrices. In particular, it is
// then possible to compute the greatest common divisor of two polynomials
// of degree n over a field of characteristic zero or greater n."
//
// The linear-algebra route implemented here: the kernel of the Sylvester
// matrix of (a, b) is {(w·b/h, −w·a/h) : deg w < d} with h = gcd(a, b) of
// degree d, so (i) d = deg a + deg b − rank(Sylvester) and (ii) the
// minimal-degree polynomial in the span of the kernel's u-components is
// b/h up to a scalar, from which h follows by one exact division.

// Sylvester returns the (m+n)×(m+n) Sylvester matrix S of a (degree m) and
// b (degree n), acting on stacked coefficient vectors (u, v) with
// deg u < n, deg v < m: S·(u,v) = coefficients of u·a + v·b.
func Sylvester[E any](f ff.Field[E], a, b []E) *matrix.Dense[E] {
	a, b = poly.Trim(f, a), poly.Trim(f, b)
	m, n := len(a)-1, len(b)-1
	if m < 1 && n < 1 {
		panic("kp: Sylvester needs at least one non-constant polynomial")
	}
	s := matrix.NewDense(f, m+n, m+n)
	// Columns 0..n−1: shifts of a; columns n..n+m−1: shifts of b.
	for j := 0; j < n; j++ {
		for i := 0; i <= m; i++ {
			s.Set(i+j, j, a[i])
		}
	}
	for j := 0; j < m; j++ {
		for i := 0; i <= n; i++ {
			s.Set(i+j, n+j, b[i])
		}
	}
	return s
}

// ResultantSylvester returns det(Sylvester(a, b)) — the resultant, computed
// through the linear-algebra substrate (cross-checked against the
// Euclidean-scheme resultant in the tests and E12).
func ResultantSylvester[E any](f ff.Field[E], a, b []E) (E, error) {
	return matrix.Det(f, Sylvester(f, a, b))
}

// GCDSylvester returns the monic gcd of two non-zero polynomials through
// Sylvester-matrix linear algebra (no Euclidean remainder sequence).
func GCDSylvester[E any](f ff.Field[E], a, b []E) ([]E, error) {
	a, b = poly.Trim(f, a), poly.Trim(f, b)
	switch {
	case len(a) == 0 && len(b) == 0:
		return nil, nil
	case len(a) == 0:
		return poly.Monic(f, b)
	case len(b) == 0:
		return poly.Monic(f, a)
	case len(a) == 1 || len(b) == 1:
		return poly.Constant(f, f.One()), nil // non-zero constant divides all
	}
	n := len(b) - 1
	s := Sylvester(f, a, b)
	kernel, err := matrix.NullspaceDense(f, s)
	if err != nil {
		return nil, err
	}
	d := kernel.Cols // dim ker = deg gcd
	if d == 0 {
		return poly.Constant(f, f.One()), nil
	}
	// u-components: first n coordinates of each kernel vector; their span
	// is (b/h)·{polynomials of degree < d}. Row-reduce from the highest
	// degree downward; the minimal-degree element is the last pivot row.
	rows := make([][]E, d)
	for k := 0; k < d; k++ {
		rows[k] = make([]E, n)
		for i := 0; i < n; i++ {
			rows[k][i] = kernel.At(i, k)
		}
	}
	minU := minimalDegreeSpanElement(f, rows)
	if minU == nil {
		return nil, matrix.ErrSingular // cannot happen for a true kernel
	}
	// h = b / (c·b/h): exact division, then normalize.
	q, r, err := poly.DivMod(f, b, minU)
	if err != nil {
		return nil, err
	}
	if !poly.IsZero(f, r) {
		return nil, matrix.ErrSingular // impossible for a true kernel element
	}
	return poly.Monic(f, q)
}

// minimalDegreeSpanElement row-reduces the given coefficient rows
// (low-degree-first) eliminating from the highest degree column down, and
// returns the non-zero row of minimal degree, or nil if all rows are zero.
func minimalDegreeSpanElement[E any](f ff.Field[E], rows [][]E) []E {
	if len(rows) == 0 {
		return nil
	}
	n := len(rows[0])
	work := make([][]E, len(rows))
	for i := range rows {
		work[i] = ff.VecCopy(rows[i])
	}
	r := 0
	for col := n - 1; col >= 0 && r < len(work); col-- {
		pivot := -1
		for k := r; k < len(work); k++ {
			if !f.IsZero(work[k][col]) {
				pivot = k
				break
			}
		}
		if pivot < 0 {
			continue
		}
		work[r], work[pivot] = work[pivot], work[r]
		pInv, err := f.Inv(work[r][col])
		if err != nil {
			return nil
		}
		for k := 0; k < len(work); k++ {
			if k == r || f.IsZero(work[k][col]) {
				continue
			}
			factor := f.Mul(work[k][col], pInv)
			for c := 0; c <= col; c++ {
				work[k][c] = f.Sub(work[k][c], f.Mul(factor, work[r][c]))
			}
		}
		r++
	}
	// The last pivot row has the lowest leading degree.
	var best []E
	bestDeg := n
	for _, row := range work {
		d := poly.Deg(f, row)
		if d >= 0 && d < bestDeg {
			bestDeg = d
			best = poly.Trim(f, row)
		}
	}
	return best
}

// ResultantWiedemann computes the resultant as the determinant of the
// *structured* Sylvester operator via Wiedemann's black-box method — the
// §5 extension end-to-end: every matrix-vector product inside the
// determinant computation is two polynomial multiplications, so the whole
// resultant costs Õ(n)·M(n) with no dense matrix ever formed. Requires
// characteristic 0 or > m+n (the det pipeline's Toeplitz step).
func ResultantWiedemann[E any](f ff.Field[E], a, b []E, p Params) (E, error) {
	var zero E
	a, b = poly.Trim(f, a), poly.Trim(f, b)
	if len(a) == 0 || len(b) == 0 {
		return zero, nil
	}
	if len(a) == 1 && len(b) == 1 {
		return f.One(), nil // two non-zero constants
	}
	p = fill(f, p)
	s := structured.NewSylvester(f, a, b)
	d, err := wiedemann.Det[E](f, s, p.Src, p.Subset, p.Retries)
	if err != nil {
		if errors.Is(err, wiedemann.ErrRetriesExhausted) {
			// Singular Sylvester matrix ⇔ non-trivial gcd ⇔ resultant 0.
			return f.Zero(), nil
		}
		return zero, err
	}
	return d, nil
}

// GCDKnownDegree recovers the monic gcd of a and b given its degree d
// (obtained e.g. from GCDDegreeSylvester), with *no zero tests*: the
// extended-Euclidean relation u·a + v·b = h with deg u < deg b − d,
// deg v < deg a − d, and h monic of degree d is one non-singular linear
// system — the branch-free form §5's parallel GCD needs. The result is
// verified (h must divide both inputs); a wrong d surfaces as an error.
func GCDKnownDegree[E any](f ff.Field[E], a, b []E, deg int) ([]E, error) {
	a, b = poly.Trim(f, a), poly.Trim(f, b)
	m, n := len(a)-1, len(b)-1
	if deg < 0 || deg > min(m, n) {
		return nil, matrix.ErrSingular
	}
	if deg == min(m, n) {
		// gcd can only be the shorter polynomial (up to scale): verify.
		short, long := a, b
		if n < m {
			short, long = b, a
		}
		h, err := poly.Monic(f, short)
		if err != nil {
			return nil, err
		}
		if _, r, err := poly.DivMod(f, long, h); err != nil || !poly.IsZero(f, r) {
			return nil, matrix.ErrSingular
		}
		return h, nil
	}
	// Unknowns: u (n−deg coeffs), v (m−deg coeffs). Equations: the
	// coefficients of u·a + v·b at degrees deg+1 … m+n−deg−1 vanish
	// (m+n−2·deg−1 equations) and the coefficient at degree deg equals 1.
	du, dv := n-deg, m-deg
	dim := du + dv
	sys := matrix.NewDense(f, dim, dim)
	rhs := ff.VecZero(f, dim)
	rhs[0] = f.One()
	row := 0
	fill := func(degIdx int) {
		for j := 0; j < du; j++ { // u_j contributes a_{degIdx−j}
			sys.Set(row, j, poly.Coef(f, a, degIdx-j))
		}
		for j := 0; j < dv; j++ { // v_j contributes b_{degIdx−j}
			sys.Set(row, du+j, poly.Coef(f, b, degIdx-j))
		}
		row++
	}
	fill(deg) // = 1
	for k := deg + 1; k <= m+n-deg-1; k++ {
		fill(k)
	}
	sol, err := matrix.Solve(f, sys, rhs)
	if err != nil {
		return nil, err
	}
	u := poly.Trim(f, sol[:du])
	v := poly.Trim(f, sol[du:])
	h := poly.TruncDeg(f, poly.Add(f, poly.Mul(f, u, a), poly.Mul(f, v, b)), deg+1)
	// Verify: h must divide both (a wrong degree promise fails here).
	for _, p := range [][]E{a, b} {
		if _, r, err := poly.DivMod(f, p, h); err != nil || !poly.IsZero(f, r) {
			return nil, matrix.ErrSingular
		}
	}
	return poly.Monic(f, h)
}

// GCDDegreeSylvester returns deg gcd(a, b) = deg a + deg b − rank(Sylvester)
// without recovering the gcd itself.
func GCDDegreeSylvester[E any](f ff.Field[E], a, b []E) (int, error) {
	a, b = poly.Trim(f, a), poly.Trim(f, b)
	m, n := len(a)-1, len(b)-1
	if m < 1 && n < 1 {
		return 0, nil
	}
	rank, err := matrix.Rank(f, Sylvester(f, a, b))
	if err != nil {
		return 0, err
	}
	return m + n - rank, nil
}
