package kp

import (
	"errors"
	"fmt"

	"repro/internal/circuit"
	"repro/internal/ff"
	"repro/internal/matrix"
	"repro/internal/structured"
)

// DetOnce is one branch-free determinant attempt (§2 + §3): with the
// supplied randomness it computes the characteristic polynomial of
// Ã = A·H·D through the Toeplitz machinery and returns
//
//	det(A) = (−1)ⁿ·cp(0) / (det(H)·det(D)),
//
// with det(H) computed by the Theorem 3 circuit on the Hankel mirror and
// det(D) as a balanced product. No zero tests are performed.
func DetOnce[E any](f ff.Field[E], mul matrix.Multiplier[E], a *matrix.Dense[E], rnd Randomness[E]) (E, error) {
	var zero E
	n := a.Rows
	if a.Cols != n {
		panic("kp: DetOnce needs a square matrix")
	}
	atilde := precondition(f, mul, a, rnd)
	cp, err := charPolyOfPreconditioned(f, mul, atilde, rnd)
	if err != nil {
		return zero, err
	}
	detTilde := cp[0]
	if n%2 == 1 {
		detTilde = f.Neg(detTilde)
	}
	detH, err := structured.DetHankel(f, structured.Hankel[E]{N: n, D: rnd.H})
	if err != nil {
		return zero, err
	}
	detD := balancedProduct(f, rnd.D)
	return f.Div(detTilde, f.Mul(detH, detD))
}

func balancedProduct[E any](f ff.Field[E], xs []E) E {
	if len(xs) == 0 {
		return f.One()
	}
	cur := ff.VecCopy(xs)
	for len(cur) > 1 {
		next := cur[:(len(cur)+1)/2]
		for i := 0; i+1 < len(cur); i += 2 {
			next[i/2] = f.Mul(cur[i], cur[i+1])
		}
		if len(cur)%2 == 1 {
			next[len(next)-1] = cur[len(cur)-1]
		}
		cur = next
	}
	return cur[0]
}

// Det is the Las Vegas determinant driver. Verification is indirect (there
// is no cheap certificate for a determinant): an attempt is accepted when
// the branch-free pipeline completes without a zero division *and* two
// independent random attempts agree — disagreement flags the ≤ 3n²/|S|
// unlucky case. Singular matrices exhaust the retries of the inner
// attempts only when every Ã sequence degenerates; a clean run on a
// singular matrix returns 0 via the f̃(0) = 0 path surfacing as a zero
// division, so exhaustion is reported as a (correct) zero determinant only
// when the cheaper Wiedemann singularity test concurs.
func Det[E any](f ff.Field[E], mul matrix.Multiplier[E], a *matrix.Dense[E], p Params) (E, error) {
	var zero E
	n := a.Rows
	if a.Cols != n {
		return zero, fmt.Errorf("kp: Det needs a square matrix (got %d×%d): %w", a.Rows, a.Cols, ErrBadShape)
	}
	p = fill(f, p)
	attempt := func() (E, error) {
		for i := 0; i < p.Retries; i++ {
			if err := ctxErr(p.Ctx); err != nil {
				return zero, err
			}
			rnd := DrawRandomness(f, p.Src, n, p.Subset)
			d, err := DetOnce(f, mul, a, rnd)
			if err != nil {
				if errors.Is(err, ff.ErrDivisionByZero) || errors.Is(err, matrix.ErrSingular) {
					continue
				}
				return zero, err
			}
			return d, nil
		}
		return zero, ErrRetriesExhausted
	}
	d1, err := attempt()
	if err != nil {
		if errors.Is(err, ErrRetriesExhausted) {
			return zero, err
		}
		return zero, err
	}
	d2, err := attempt()
	if err == nil && f.Equal(d1, d2) {
		return d1, nil
	}
	if cerr := ctxErr(p.Ctx); cerr != nil {
		return zero, cerr
	}
	// Disagreement (rare): fall back to a best-of-three vote.
	d3, err3 := attempt()
	if err3 == nil && (f.Equal(d3, d1) || (err == nil && f.Equal(d3, d2))) {
		return d3, nil
	}
	return zero, ErrRetriesExhausted
}

// TraceDet builds the determinant circuit for dimension n: n² inputs (the
// entries of A), 5n−1 random inputs, one output — the input to the
// Theorem 6 gradient transformation.
func TraceDet[E any](model ff.Field[E], mul matrix.Multiplier[circuit.Wire], n int) (*circuit.Builder, error) {
	b := circuit.NewBuilderFor(model)
	aw := matrixInput(b, n)
	rnd := randomnessInput(b, n)
	d, err := DetOnce[circuit.Wire](b, mul, aw, rnd)
	if err != nil {
		return nil, err
	}
	b.Return(d)
	return b, nil
}
