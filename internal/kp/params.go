package kp

import (
	"context"
	"fmt"
	"log/slog"

	"repro/internal/errs"
	"repro/internal/ff"
)

// Error taxonomy. The sentinels are the shared errs values, so errors.Is
// matches them against the same failures surfacing from the substrate
// packages (matrix.ErrSingular, wiedemann.ErrRetriesExhausted, the
// structured solvers) without the caller knowing which engine ran.
var (
	// ErrSingular reports a singular matrix on a path that requires a
	// non-singular one.
	ErrSingular = errs.ErrSingular
	// ErrRetriesExhausted is returned by the Las Vegas drivers when all
	// random attempts failed; on non-singular inputs each attempt fails
	// with probability ≤ 3n²/|S|, so exhaustion virtually certifies
	// singularity.
	ErrRetriesExhausted = errs.ErrRetriesExhausted
	// ErrInconsistent is returned by SolveSingular when the system has no
	// solution.
	ErrInconsistent = errs.ErrInconsistent
	// ErrBadShape reports arguments whose dimensions do not form a valid
	// problem (non-square matrix, mismatched right-hand side, …).
	ErrBadShape = errs.ErrBadShape
	// ErrCharacteristicTooSmall reports a field violating Theorem 4's
	// characteristic-0-or-> n hypothesis.
	ErrCharacteristicTooSmall = errs.ErrCharacteristicTooSmall
)

// PrecondMode selects how the Theorem 4 preconditioner Ã = A·H·D is
// realized.
type PrecondMode string

const (
	// PrecondDense materializes Ã with one dense matrix product (the
	// original route; O(n^ω) formation, then dense Krylov doubling). This is
	// the default — it is what the traced circuits and the processor-count
	// claims of the paper measure.
	PrecondDense PrecondMode = "dense"
	// PrecondImplicit never forms Ã: A, H and D stay black boxes composed
	// per apply (H through the cached-NTT structured product, D in O(n)),
	// and the Krylov sequence, minpoly system and Cayley–Hamilton backsolve
	// run on black-box applies — O(n² log n) total where the dense route
	// pays O(n^ω log n). Answers are identical to PrecondDense: the exact
	// field arithmetic and the randomness stream are the same.
	PrecondImplicit PrecondMode = "implicit"
)

// ParsePrecondMode validates a mode string ("" selects PrecondDense).
func ParsePrecondMode(s string) (PrecondMode, error) {
	switch PrecondMode(s) {
	case "", PrecondDense:
		return PrecondDense, nil
	case PrecondImplicit:
		return PrecondImplicit, nil
	}
	return "", fmt.Errorf("kp: unknown precond mode %q (want %q or %q)", s, PrecondDense, PrecondImplicit)
}

// DefaultSeed seeds the deterministic random source when a caller supplies
// none, so runs are replayable by default.
const DefaultSeed uint64 = 0x9e3779b97f4a7c15

// DefaultRetries is the Las Vegas retry budget.
const DefaultRetries = 5

// Params bundles the knobs every randomized driver shares. The zero value
// is ready to use: a nil Src draws a fresh deterministic source seeded
// with DefaultSeed, Subset 0 selects the field cardinality capped at 2⁶²
// (failure probability ≈ 0 for word-sized fields), Retries 0 means
// DefaultRetries, and a nil Ctx never cancels.
type Params struct {
	// Src is the random stream the Las Vegas attempts draw from; nil
	// selects a fresh deterministic source seeded with DefaultSeed.
	Src *ff.Source
	// Subset is |S|, the size of the sampling subset of the paper's
	// probability bound 3n²/|S|; 0 selects the field cardinality capped
	// at 2⁶².
	Subset uint64
	// Retries bounds the Las Vegas attempts (0 = DefaultRetries).
	Retries int
	// Ctx, when non-nil, cancels cooperatively: the drivers check it
	// between the Krylov/minpoly/backsolve phases of an attempt and
	// between Las Vegas attempts, returning ctx.Err() once it is done.
	Ctx context.Context
	// Logger, when non-nil, receives one structured slog record per Las
	// Vegas attempt (solver, attempt number, n, |S|, outcome, failure
	// phase, wall time) and one per finished driver call. Nil disables
	// logging; the always-on attempt statistics (obs.BoundsReport) and
	// flight recorder are unaffected by this knob.
	Logger *slog.Logger
	// Precond selects the preconditioner realization for Solve, Factor and
	// SolveBatch ("" = PrecondDense). See PrecondMode.
	Precond PrecondMode
}

// DefaultSubset returns the subset size Params.Subset 0 resolves to for
// the field: the full cardinality, capped at 2⁶² for infinite or
// beyond-word-size fields.
func DefaultSubset[E any](f ff.Field[E]) uint64 {
	card := f.Cardinality()
	if card.Sign() == 0 || !card.IsUint64() {
		return 1 << 62
	}
	return card.Uint64()
}

// fill resolves the zero values of p against the field's defaults.
func fill[E any](f ff.Field[E], p Params) Params {
	if p.Src == nil {
		p.Src = ff.NewSource(DefaultSeed)
	}
	if p.Subset == 0 {
		p.Subset = DefaultSubset(f)
	}
	if p.Retries <= 0 {
		p.Retries = DefaultRetries
	}
	if p.Precond == "" {
		p.Precond = PrecondDense
	}
	return p
}

// ctxErr reports the context's error if it is done (nil-safe, non-blocking).
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}
