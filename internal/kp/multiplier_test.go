package kp

import (
	"testing"

	"repro/internal/ff"
	"repro/internal/matrix"
)

// TestSolversIdenticalUnderAllMultipliers is the substrate property test:
// the multiplication black box must be observationally invisible. Over a
// finite field the arithmetic is exact, so for the same randomness stream
// every multiplier — serial, tiled, pooled, Strassen — must drive Solve,
// Det and the Bunch–Hopcroft inverse to bit-identical results.
func TestSolversIdenticalUnderAllMultipliers(t *testing.T) {
	f := ff.MustFp64(ff.P62)
	gen := ff.NewSource(424242)
	for trial, n := range []int{3, 8, 17, 33} {
		a := matrix.Random[uint64](f, gen, n, n, f.Modulus())
		b := ff.SampleVec[uint64](f, gen, n, f.Modulus())
		seed := uint64(1000 + trial)

		wantX, err := Solve[uint64](f, matrix.Classical[uint64]{}, a, b, Params{Src: ff.NewSource(seed), Subset: f.Modulus()})
		if err != nil {
			t.Fatalf("n=%d: classical solve: %v", n, err)
		}
		wantDet, err := Det[uint64](f, matrix.Classical[uint64]{}, a, Params{Src: ff.NewSource(seed), Subset: f.Modulus()})
		if err != nil {
			t.Fatalf("n=%d: classical det: %v", n, err)
		}
		wantInv, err := matrix.InverseBH[uint64](f, matrix.Classical[uint64]{}, a, ff.NewSource(seed), f.Modulus(), 0)
		if err != nil {
			t.Fatalf("n=%d: classical inverse: %v", n, err)
		}

		for _, name := range matrix.Names() {
			mul, err := matrix.ByName[uint64](name)
			if err != nil {
				t.Fatal(err)
			}
			x, err := Solve[uint64](f, mul, a, b, Params{Src: ff.NewSource(seed), Subset: f.Modulus()})
			if err != nil {
				t.Fatalf("n=%d %s: solve: %v", n, name, err)
			}
			if !ff.VecEqual[uint64](f, x, wantX) {
				t.Fatalf("n=%d: %s solve differs from classical", n, name)
			}
			d, err := Det[uint64](f, mul, a, Params{Src: ff.NewSource(seed), Subset: f.Modulus()})
			if err != nil {
				t.Fatalf("n=%d %s: det: %v", n, name, err)
			}
			if !f.Equal(d, wantDet) {
				t.Fatalf("n=%d: %s det differs from classical", n, name)
			}
			inv, err := matrix.InverseBH[uint64](f, mul, a, ff.NewSource(seed), f.Modulus(), 0)
			if err != nil {
				t.Fatalf("n=%d %s: inverse: %v", n, name, err)
			}
			if !inv.Equal(f, wantInv) {
				t.Fatalf("n=%d: %s inverse differs from classical", n, name)
			}
		}
	}
}
