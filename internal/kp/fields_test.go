package kp

import (
	"errors"
	"math/big"
	"testing"

	"repro/internal/circuit"
	"repro/internal/ff"
	"repro/internal/matrix"
)

// The paper's algorithms are stated over an *abstract* field; these tests
// run the full Theorem 4 pipeline over an extension field F_{p²}, a
// 127-bit prime field, and the NTT-friendly word field, confirming the
// implementation is genuinely field-generic.

func TestSolveOverExtensionField(t *testing.T) {
	src := ff.NewSource(151)
	base := ff.MustFp64(ff.P17) // characteristic 131071 ≫ n
	mod, err := ff.FindIrreducible(base, 2, src)
	if err != nil {
		t.Fatal(err)
	}
	f, err := ff.NewFpExt(base, mod)
	if err != nil {
		t.Fatal(err)
	}
	n := 5
	subset := uint64(1) << 30
	var a *matrix.Dense[[]uint64]
	for {
		a = matrix.Random[[]uint64](f, src, n, n, subset)
		if d, _ := matrix.Det[[]uint64](f, a); !f.IsZero(d) {
			break
		}
	}
	b := ff.SampleVec[[]uint64](f, src, n, subset)
	x, err := Solve[[]uint64](f, matrix.Classical[[]uint64]{}, a, b, Params{Src: src, Subset: subset})
	if err != nil {
		t.Fatal(err)
	}
	if !ff.VecEqual[[]uint64](f, a.MulVec(f, x), b) {
		t.Fatal("F_{p²}: Ax != b")
	}
	// Determinant agrees with LU over the same field.
	d, err := Det[[]uint64](f, matrix.Classical[[]uint64]{}, a, Params{Src: src, Subset: subset})
	if err != nil {
		t.Fatal(err)
	}
	lu, _ := matrix.Det[[]uint64](f, a)
	if !f.Equal(d, lu) {
		t.Fatal("F_{p²}: KP det != LU det")
	}
}

func TestSolveOverBigPrime(t *testing.T) {
	p, _ := new(big.Int).SetString("170141183460469231731687303715884105727", 10) // 2¹²⁷−1
	f := ff.MustFpBig(p)
	src := ff.NewSource(153)
	n := 4
	subset := uint64(1) << 40
	a := matrix.Random[*big.Int](f, src, n, n, subset)
	b := ff.SampleVec[*big.Int](f, src, n, subset)
	x, err := Solve[*big.Int](f, matrix.Classical[*big.Int]{}, a, b, Params{Src: src, Subset: subset})
	if err != nil {
		t.Fatal(err)
	}
	if !ff.VecEqual[*big.Int](f, a.MulVec(f, x), b) {
		t.Fatal("big prime: Ax != b")
	}
}

func TestSolveOverNTTField(t *testing.T) {
	f := ff.MustFp64(ff.PNTT62)
	src := ff.NewSource(155)
	for _, n := range []int{8, 24} { // 24 pushes convolutions past the NTT threshold
		var a *matrix.Dense[uint64]
		for {
			a = matrix.Random[uint64](f, src, n, n, f.Modulus())
			if d, _ := matrix.Det[uint64](f, a); !f.IsZero(d) {
				break
			}
		}
		b := ff.SampleVec[uint64](f, src, n, f.Modulus())
		x, err := Solve[uint64](f, matrix.Classical[uint64]{}, a, b, Params{Src: src, Subset: f.Modulus()})
		if err != nil {
			t.Fatal(err)
		}
		if !ff.VecEqual[uint64](f, a.MulVec(f, x), b) {
			t.Fatalf("NTT field n=%d: Ax != b", n)
		}
		want, _ := matrix.Solve[uint64](f, a, b)
		if !ff.VecEqual[uint64](f, x, want) {
			t.Fatalf("NTT field n=%d: differs from LU", n)
		}
	}
}

// TestAdversarialRandomness injects pathological random choices into the
// branch-free pipeline: a division by zero (the paper's declared failure
// mode) must surface as an error — never as a silently wrong answer that
// the driver would return unverified.
func TestAdversarialRandomness(t *testing.T) {
	f := ff.MustFp64(ff.P31)
	src := ff.NewSource(157)
	n := 4
	var a *matrix.Dense[uint64]
	for {
		a = matrix.Random[uint64](f, src, n, n, ff.P31)
		if d, _ := matrix.Det[uint64](f, a); !f.IsZero(d) {
			break
		}
	}
	b := ff.SampleVec[uint64](f, src, n, ff.P31)

	// All-zero Hankel makes Ã = 0: the Toeplitz system degenerates.
	zeroH := Randomness[uint64]{
		H: make([]uint64, 2*n-1),
		D: ff.SampleVec[uint64](f, src, n, ff.P31),
		U: ff.SampleVec[uint64](f, src, n, ff.P31),
		V: ff.SampleVec[uint64](f, src, n, ff.P31),
	}
	for i := range zeroH.D {
		if zeroH.D[i] == 0 {
			zeroH.D[i] = 1
		}
	}
	if _, err := SolveOnce[uint64](f, matrix.Classical[uint64]{}, a, b, zeroH); err == nil {
		t.Fatal("zero Hankel preconditioner must fail, not fabricate a solution")
	} else if !errors.Is(err, ff.ErrDivisionByZero) && !errors.Is(err, matrix.ErrSingular) {
		t.Fatalf("unexpected failure mode: %v", err)
	}

	// Zero projection vector u: the sequence is identically zero.
	zeroU := DrawRandomness[uint64](f, src, n, ff.P31)
	zeroU.U = make([]uint64, n)
	if _, err := SolveOnce[uint64](f, matrix.Classical[uint64]{}, a, b, zeroU); err == nil {
		t.Fatal("zero projection must fail")
	}

	// The circuit form fails identically (same failure semantics).
	circ, err := TraceSolve[uint64](f, matrix.Classical[circuit.Wire]{}, n)
	if err != nil {
		t.Fatal(err)
	}
	inputs := append(append(append([]uint64{}, a.Data...), b...), zeroH.Flat()...)
	if _, err := circuit.Eval[uint64](circ, f, inputs); !errors.Is(err, ff.ErrDivisionByZero) {
		t.Fatalf("circuit with zero Hankel: err = %v, want division by zero", err)
	}

	// And the Las Vegas driver still succeeds with fresh randomness.
	x, err := Solve[uint64](f, matrix.Classical[uint64]{}, a, b, Params{Src: src, Subset: ff.P31})
	if err != nil {
		t.Fatal(err)
	}
	if !ff.VecEqual[uint64](f, a.MulVec(f, x), b) {
		t.Fatal("driver failed after adversarial warm-up")
	}
}

// TestGradientOfSolveIsInverseRow cross-checks Theorem 5 against linear
// algebra: x = A⁻¹b is linear in b, so ∂x_i/∂b_j = (A⁻¹)_{ij}. The
// gradient of each solver output with respect to the b inputs must
// reproduce the corresponding row of the inverse.
func TestGradientOfSolveIsInverseRow(t *testing.T) {
	f := ff.MustFp64(ff.P31)
	src := ff.NewSource(159)
	n := 3
	circ, err := TraceSolve[uint64](f, matrix.Classical[circuit.Wire]{}, n)
	if err != nil {
		t.Fatal(err)
	}
	var a *matrix.Dense[uint64]
	for {
		a = matrix.Random[uint64](f, src, n, n, ff.P31)
		if d, _ := matrix.Det[uint64](f, a); !f.IsZero(d) {
			break
		}
	}
	inv, err := matrix.Inverse[uint64](f, a)
	if err != nil {
		t.Fatal(err)
	}
	rnd := DrawRandomness[uint64](f, src, n, ff.P31)
	for i := 0; i < n; i++ {
		c := circ.Clone()
		grads, err := circuit.Gradient(c, c.Outputs()[i])
		if err != nil {
			t.Fatal(err)
		}
		// Select gradients with respect to the b inputs (positions n²…n²+n−1).
		outs := make([]circuit.Wire, n)
		copy(outs, grads[n*n:n*n+n])
		c.Return(outs...)
		b := ff.SampleVec[uint64](f, src, n, ff.P31)
		inputs := append(append(append([]uint64{}, a.Data...), b...), rnd.Flat()...)
		row, err := circuit.Eval[uint64](c, f, inputs)
		if err != nil {
			t.Fatal(err) // randomness is generous; treat failure as real
		}
		if !ff.VecEqual[uint64](f, row, inv.Row(i)) {
			t.Fatalf("∂x_%d/∂b != row %d of A⁻¹", i, i)
		}
	}
}
