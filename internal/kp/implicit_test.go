package kp

import (
	"errors"
	"math/big"
	"testing"

	"repro/internal/ff"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/structured"
)

var fntt = ff.MustFp64(ff.PNTT62)

// solveBothModes runs kp.Solve twice from identical seeds, once per
// preconditioner mode, and returns both results. Identical seeds mean both
// runs draw the same randomness stream, so the results must agree exactly
// (same attempts, same failures, same final x).
func solveBothModes(a *matrix.Dense[uint64], b []uint64, seed uint64, subset uint64, retries int) (dense, implicit []uint64, denseErr, implicitErr error) {
	dense, denseErr = Solve[uint64](fntt, classical(), a, b,
		Params{Src: ff.NewSource(seed), Subset: subset, Retries: retries, Precond: PrecondDense})
	implicit, implicitErr = Solve[uint64](fntt, classical(), a, b,
		Params{Src: ff.NewSource(seed), Subset: subset, Retries: retries, Precond: PrecondImplicit})
	return
}

// TestImplicitMatchesDenseFp64 is the core differential claim: over the
// NTT-friendly word field, implicit- and dense-preconditioned solves are
// bit-identical for dense random A.
func TestImplicitMatchesDenseFp64(t *testing.T) {
	src := ff.NewSource(31)
	for _, n := range []int{1, 2, 3, 5, 8, 17, 33} {
		a := matrix.Random[uint64](fntt, src, n, n, 1<<40)
		b := ff.SampleVec[uint64](fntt, src, n, 1<<40)
		xd, xi, errD, errI := solveBothModes(a, b, uint64(1000+n), 0, 0)
		if (errD == nil) != (errI == nil) {
			t.Fatalf("n=%d: modes disagree on success: dense=%v implicit=%v", n, errD, errI)
		}
		if errD != nil {
			continue // singular draw: both agreed
		}
		if !ff.VecEqual[uint64](fntt, xd, xi) {
			t.Fatalf("n=%d: implicit solution differs from dense", n)
		}
	}
}

// TestImplicitMatchesDenseToeplitzA: the structured-workload shape — A
// itself a dense-materialized Toeplitz matrix.
func TestImplicitMatchesDenseToeplitzA(t *testing.T) {
	src := ff.NewSource(37)
	for _, n := range []int{4, 16, 31} {
		tm := structured.RandomToeplitz[uint64](fntt, src, n, 1<<40)
		a := tm.Dense(fntt)
		b := ff.SampleVec[uint64](fntt, src, n, 1<<40)
		xd, xi, errD, errI := solveBothModes(a, b, uint64(2000+n), 0, 0)
		if (errD == nil) != (errI == nil) {
			t.Fatalf("n=%d: modes disagree on success: dense=%v implicit=%v", n, errD, errI)
		}
		if errD == nil && !ff.VecEqual[uint64](fntt, xd, xi) {
			t.Fatalf("n=%d: implicit solution differs from dense on Toeplitz A", n)
		}
	}
}

// TestImplicitMatchesDenseFpBig: the wrapper field has no fused NTT kernel,
// so the implicit route runs entirely on schoolbook structured applies —
// and must still agree with the dense route.
func TestImplicitMatchesDenseFpBig(t *testing.T) {
	f, err := ff.NewFpBig(new(big.Int).SetUint64(ff.PNTT62))
	if err != nil {
		t.Fatal(err)
	}
	mul := matrix.Classical[*big.Int]{}
	src := ff.NewSource(41)
	n := 7
	a := matrix.Random[*big.Int](f, src, n, n, 1<<30)
	b := ff.SampleVec[*big.Int](f, src, n, 1<<30)
	xd, errD := Solve[*big.Int](f, mul, a, b,
		Params{Src: ff.NewSource(99), Subset: 1 << 30, Precond: PrecondDense})
	xi, errI := Solve[*big.Int](f, mul, a, b,
		Params{Src: ff.NewSource(99), Subset: 1 << 30, Precond: PrecondImplicit})
	if (errD == nil) != (errI == nil) {
		t.Fatalf("modes disagree on success: dense=%v implicit=%v", errD, errI)
	}
	if errD == nil && !ff.VecEqual(f, xd, xi) {
		t.Fatal("implicit solution differs from dense over FpBig")
	}
}

// TestImplicitRetryPathMatchesDense forces unlucky attempts with a tiny
// sampling subset: both modes must walk the same retry sequence — failing
// and succeeding on exactly the same draws — because they consume one
// randomness stream and compute the same exact values.
func TestImplicitRetryPathMatchesDense(t *testing.T) {
	src := ff.NewSource(43)
	n := 6
	a := matrix.Random[uint64](fntt, src, n, n, 1<<40)
	b := ff.SampleVec[uint64](fntt, src, n, 1<<40)
	agreeing, retried := 0, 0
	for seed := uint64(1); seed <= 40; seed++ {
		// Subset 2 draws from {0, 1}: preconditioners are frequently
		// singular, so most seeds exercise at least one retry.
		xd, xi, errD, errI := solveBothModes(a, b, seed, 2, 6)
		if (errD == nil) != (errI == nil) {
			t.Fatalf("seed=%d: modes disagree on success: dense=%v implicit=%v", seed, errD, errI)
		}
		if errD != nil {
			if !errors.Is(errD, ErrRetriesExhausted) && !errors.Is(errI, ErrRetriesExhausted) {
				t.Fatalf("seed=%d: unexpected errors dense=%v implicit=%v", seed, errD, errI)
			}
			retried++
			continue
		}
		if !ff.VecEqual[uint64](fntt, xd, xi) {
			t.Fatalf("seed=%d: solutions differ after retry path", seed)
		}
		agreeing++
	}
	if agreeing == 0 {
		t.Fatal("subset too small: no seed ever succeeded, test proves nothing")
	}
}

// TestImplicitBatchMatchesDense: SolveBatch under both modes, same seeds,
// identical k-column results.
func TestImplicitBatchMatchesDense(t *testing.T) {
	src := ff.NewSource(47)
	n, k := 12, 5
	a := matrix.Random[uint64](fntt, src, n, n, 1<<40)
	bm := matrix.Random[uint64](fntt, src, n, k, 1<<40)
	xd, errD := SolveBatch[uint64](fntt, classical(), a, bm,
		Params{Src: ff.NewSource(7), Precond: PrecondDense})
	xi, errI := SolveBatch[uint64](fntt, classical(), a, bm,
		Params{Src: ff.NewSource(7), Precond: PrecondImplicit})
	if (errD == nil) != (errI == nil) {
		t.Fatalf("modes disagree: dense=%v implicit=%v", errD, errI)
	}
	if errD == nil && !xd.Equal(fntt, xi) {
		t.Fatal("implicit batch solution differs from dense")
	}
}

// TestImplicitPreconditionZeroDenseMul is the acceptance-criteria op-count
// check: in implicit mode the precondition phase — and in fact the whole
// solve — performs zero dense matrix-matrix Mul calls, while the black-box
// apply counters show where the work went instead.
func TestImplicitPreconditionZeroDenseMul(t *testing.T) {
	o := obs.New(0)
	obs.SetActive(o)
	defer obs.SetActive(nil)
	im := matrix.NewInstrumented[uint64](classical())
	src := ff.NewSource(53)
	n := 16
	a := matrix.Random[uint64](fntt, src, n, n, 1<<40)
	b := ff.SampleVec[uint64](fntt, src, n, 1<<40)
	if _, err := Solve[uint64](fntt, im, a, b,
		Params{Src: ff.NewSource(3), Precond: PrecondImplicit}); err != nil {
		t.Fatal(err)
	}
	totals := o.PhaseTotals()
	pre, ok := totals[obs.PhasePrecondition]
	if !ok {
		t.Fatal("no precondition span recorded")
	}
	if pre.MulCalls != 0 {
		t.Fatalf("implicit precondition made %d dense Mul calls, want 0", pre.MulCalls)
	}
	if got := im.Stats.Snapshot().Calls; got != 0 {
		t.Fatalf("implicit solve invoked the dense multiplier %d times, want 0", got)
	}
	if totals[obs.PhaseKrylov].ApplyCalls == 0 {
		t.Fatal("krylov phase recorded no black-box applies")
	}
	if totals[obs.PhaseKrylov].ApplyTime == 0 {
		t.Fatal("krylov phase recorded no apply time")
	}

	// The batch engine's implicit front end makes the same claim for
	// batch/precondition (its verify phase legitimately uses dense products).
	o2 := obs.New(0)
	obs.SetActive(o2)
	fa, err := Factor[uint64](fntt, im, a, Params{Src: ff.NewSource(5), Precond: PrecondImplicit})
	if err != nil {
		t.Fatal(err)
	}
	if fa.Mode() != PrecondImplicit {
		t.Fatalf("factorization mode = %q, want implicit", fa.Mode())
	}
	if pre := o2.PhaseTotals()[obs.PhaseBatchPrecondition]; pre.MulCalls != 0 {
		t.Fatalf("implicit batch precondition made %d dense Mul calls, want 0", pre.MulCalls)
	}
}

// TestImplicitFactorSolve: a factorization built implicitly keeps the Las
// Vegas contract — verified solves, correct answers.
func TestImplicitFactorSolve(t *testing.T) {
	src := ff.NewSource(59)
	n := 10
	a := matrix.Random[uint64](fntt, src, n, n, 1<<40)
	fa, err := Factor[uint64](fntt, classical(), a, Params{Src: ff.NewSource(11), Precond: PrecondImplicit})
	if err != nil {
		t.Fatal(err)
	}
	for rhs := 0; rhs < 3; rhs++ {
		b := ff.SampleVec[uint64](fntt, src, n, 1<<40)
		x, err := fa.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		if !ff.VecEqual[uint64](fntt, a.MulVec(fntt, x), b) {
			t.Fatalf("rhs=%d: implicit factorization solution fails A·x = b", rhs)
		}
	}
}

// TestSylvesterDriverNTTField runs the structured Sylvester-GCD driver over
// the NTT-friendly field, so every inner apply goes through the cached
// transforms, and cross-checks against the dense resultant — the Sylvester
// leg of the differential suite.
func TestSylvesterDriverNTTField(t *testing.T) {
	src := ff.NewSource(61)
	randPoly := func(deg int) []uint64 {
		p := ff.SampleVec[uint64](fntt, src, deg+1, 1<<40)
		p[deg] = fntt.One()
		return p
	}
	for trial := 0; trial < 10; trial++ {
		a := randPoly(1 + src.Intn(8))
		b := randPoly(1 + src.Intn(8))
		got, err := ResultantWiedemann[uint64](fntt, a, b, Params{Src: src})
		if err != nil {
			t.Fatal(err)
		}
		want, err := ResultantSylvester[uint64](fntt, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: NTT-field Wiedemann resultant %d != dense %d", trial, got, want)
		}
	}
}

// FuzzImplicitSolveMatchesDense drives random seeds, sizes and subsets
// through both modes; any divergence in success pattern or solution is a
// bug in the implicit pipeline.
func FuzzImplicitSolveMatchesDense(fz *testing.F) {
	fz.Add(uint64(1), uint8(6), uint8(0))
	fz.Add(uint64(42), uint8(3), uint8(1))
	fz.Fuzz(func(t *testing.T, seed uint64, nRaw, small uint8) {
		n := int(nRaw)%12 + 1
		subset := uint64(0)
		if small%2 == 1 {
			subset = 4 // stress the retry path
		}
		src := ff.NewSource(seed)
		a := matrix.Random[uint64](fntt, src, n, n, 1<<40)
		b := ff.SampleVec[uint64](fntt, src, n, 1<<40)
		xd, xi, errD, errI := solveBothModes(a, b, seed^0xabcdef, subset, 4)
		if (errD == nil) != (errI == nil) {
			t.Fatalf("seed=%d n=%d: modes disagree: dense=%v implicit=%v", seed, n, errD, errI)
		}
		if errD == nil && !ff.VecEqual[uint64](fntt, xd, xi) {
			t.Fatalf("seed=%d n=%d: solutions differ", seed, n)
		}
	})
}
