package kp

import (
	"errors"
	"fmt"

	"repro/internal/circuit"
	"repro/internal/ff"
	"repro/internal/matrix"
)

// Transposition principle (end of §4): from a circuit computing A⁻¹b one
// obtains a circuit for (Aᵀ)⁻¹b at 4× the size and O(1)× the depth, by
// differentiating
//
//	f(y₁,…,yₙ) := yᵀ·(Aᵀ)⁻¹·b = (A⁻¹y)ᵀ·b
//
// with respect to y: ∇_y f = (A⁻¹)ᵀ·b = (Aᵀ)⁻¹·b. The function f itself is
// computed with the *given* solver circuit (solve against right-hand side
// y, then one inner product with b) — no transposed algorithm is ever
// written by hand.

// TraceTransposedSolve builds the circuit computing (Aᵀ)⁻¹b for dimension
// n. Inputs: A (n², row-major) then b (n); random inputs as in Theorem 4;
// outputs: the n entries of (Aᵀ)⁻¹b.
func TraceTransposedSolve[E any](model ff.Field[E], mul matrix.Multiplier[circuit.Wire], n int) (*circuit.Builder, error) {
	bld := circuit.NewBuilderFor(model)
	aw := matrixInput(bld, n)
	bw := bld.Inputs(n)
	// y are ordinary inputs: the gradient is taken with respect to them,
	// and they are *evaluated* at arbitrary values (the derivative of a
	// linear function does not depend on the evaluation point; we feed
	// zeros at evaluation time).
	yw := bld.Inputs(n)
	rnd := randomnessInput(bld, n)
	x, err := SolveOnce[circuit.Wire](bld, mul, aw, yw, rnd)
	if err != nil {
		return nil, err
	}
	f := ff.Dot[circuit.Wire](bld, x, bw)
	grads, err := circuit.Gradient(bld, f)
	if err != nil {
		return nil, err
	}
	// Gradient with respect to the y inputs: positions n²+n … n²+2n−1.
	outs := make([]circuit.Wire, n)
	for i := 0; i < n; i++ {
		outs[i] = grads[n*n+n+i]
	}
	bld.Return(outs...)
	return bld, nil
}

// TransposedSolveFromCircuit evaluates a TraceTransposedSolve circuit:
// inputs A, b, y = 0 (any value works — f is linear in y), randomness.
func TransposedSolveFromCircuit[E any](bld *circuit.Builder, f ff.Field[E], a *matrix.Dense[E], b []E, rnd Randomness[E]) ([]E, error) {
	n := a.Rows
	inputs := make([]E, 0, n*n+2*n+len(rnd.Flat()))
	inputs = append(inputs, a.Data...)
	inputs = append(inputs, b...)
	inputs = append(inputs, ff.VecZero(f, n)...) // y evaluation point
	inputs = append(inputs, rnd.Flat()...)
	return circuit.Eval(bld, f, inputs)
}

// TransposedSolve solves Aᵀ·x = b through the transposition principle,
// verifying the result (Las Vegas). It never forms Aᵀ.
func TransposedSolve[E any](f ff.Field[E], a *matrix.Dense[E], b []E, p Params) ([]E, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		return nil, fmt.Errorf("kp: TransposedSolve needs a square system with a matching right-hand side (A is %d×%d, b has %d entries): %w",
			a.Rows, a.Cols, len(b), ErrBadShape)
	}
	p = fill(f, p)
	circ, err := TraceTransposedSolve(f, matrix.Classical[circuit.Wire]{}, n)
	if err != nil {
		return nil, err
	}
	for attempt := 0; attempt < p.Retries; attempt++ {
		if err := ctxErr(p.Ctx); err != nil {
			return nil, err
		}
		rnd := DrawRandomness(f, p.Src, n, p.Subset)
		x, err := TransposedSolveFromCircuit(circ, f, a, b, rnd)
		if err != nil {
			if errors.Is(err, ff.ErrDivisionByZero) {
				continue
			}
			return nil, err
		}
		// Verify Aᵀx = b, i.e. xᵀA = bᵀ.
		if ff.VecEqual(f, a.VecMul(f, x), b) {
			return x, nil
		}
	}
	return nil, ErrRetriesExhausted
}
