package kp

import (
	"errors"
	"testing"

	"repro/internal/circuit"
	"repro/internal/ff"
	"repro/internal/matrix"
	"repro/internal/poly"
)

func TestTransposedVandermondeSolve(t *testing.T) {
	f := ff.MustFp64(ff.P31)
	src := ff.NewSource(211)
	for _, n := range []int{1, 2, 3, 5, 8, 16} {
		xs := make([]uint64, n)
		for i := range xs {
			xs[i] = uint64(2*i + 3) // distinct
		}
		b := ff.SampleVec[uint64](f, src, n, ff.P31)
		x, err := TransposedVandermondeSolve[uint64](f, xs, b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Against dense linear algebra: Vᵀ·x = b.
		vt := matrix.NewDense[uint64](f, n, n)
		for i := 0; i < n; i++ {
			pw := f.One()
			for j := 0; j < n; j++ {
				vt.Set(j, i, pw) // Vᵀ[j][i] = xsᵢ^j
				pw = f.Mul(pw, xs[i])
			}
		}
		want, err := matrix.Solve[uint64](f, vt, b)
		if err != nil {
			t.Fatal(err)
		}
		if !ff.VecEqual[uint64](f, x, want) {
			t.Fatalf("n=%d: transposed Vandermonde solution differs from dense", n)
		}
	}
}

func TestTransposedVandermondeRepeatedNodes(t *testing.T) {
	f := ff.MustFp64(ff.P31)
	_, err := TransposedVandermondeSolve[uint64](f, []uint64{1, 2, 2}, []uint64{1, 1, 1})
	if !errors.Is(err, ErrRepeatedNodes) {
		t.Fatalf("err = %v, want ErrRepeatedNodes", err)
	}
}

func TestTraceTransposedVandermondeCost(t *testing.T) {
	// The transposed solver's circuit should stay within the Theorem 5
	// factor of the interpolation circuit it was derived from.
	f := ff.MustFp64(ff.P31)
	n := 16
	trans, err := TraceTransposedVandermonde[uint64](f, n)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: the interpolation circuit alone.
	interp := tracedInterpolation(t, f, n)
	ratio := float64(trans.LiveSize()) / float64(interp.LiveSize())
	if ratio > 5 {
		t.Fatalf("transposed/interpolation size ratio %.2f > 5", ratio)
	}
	if trans.Depth() > 4*interp.Depth()+16 {
		t.Fatalf("transposed depth %d vs interpolation depth %d", trans.Depth(), interp.Depth())
	}
}

func tracedInterpolation(t *testing.T, model ff.Fp64, n int) *circuit.Builder {
	t.Helper()
	bld := circuit.NewBuilderFor[uint64](model)
	xs := bld.Inputs(n)
	yw := bld.Inputs(n)
	c, err := poly.InterpolateFast[circuit.Wire](bld, xs, yw)
	if err != nil {
		t.Fatal(err)
	}
	outs := make([]circuit.Wire, n)
	for i := range outs {
		outs[i] = poly.Coef[circuit.Wire](bld, c, i)
	}
	bld.Return(outs...)
	return bld
}
