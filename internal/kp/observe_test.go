package kp

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"strings"
	"testing"

	"repro/internal/ff"
	"repro/internal/matrix"
	"repro/internal/obs"
)

// hookMul wraps the classical multiplier with a per-call hook — the lever
// the cancellation and panic tests use to fail mid-phase, while a span is
// open, rather than at the driver's own checkpoints.
type hookMul struct {
	calls int
	hook  func(call int)
}

func (m *hookMul) Mul(f ff.Field[uint64], a, b *matrix.Dense[uint64]) *matrix.Dense[uint64] {
	m.calls++
	if m.hook != nil {
		m.hook(m.calls)
	}
	return matrix.Classical[uint64]{}.Mul(f, a, b)
}
func (m *hookMul) Name() string   { return "hook" }
func (m *hookMul) Omega() float64 { return 3 }

// TestSolveCancellationLeavesNoOpenSpan cancels the context from inside the
// Krylov phase (the second multiplier call happens under the krylov span)
// and asserts the driver surfaces ctx.Err() with every span closed — the
// defer guards must unwind the Observer's current-span chain on the
// cancellation path, or later spans would attach to a stale parent.
func TestSolveCancellationLeavesNoOpenSpan(t *testing.T) {
	src := ff.NewSource(311)
	f, a := randomNonsingularP62(src, 6)
	b := ff.SampleVec[uint64](f, src, 6, f.Modulus())

	o := obs.New(0)
	prev := obs.Active()
	obs.SetActive(o)
	defer obs.SetActive(prev)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	mul := &hookMul{hook: func(call int) {
		if call == 2 {
			cancel()
		}
	}}
	_, err := Solve[uint64](f, mul, a, b, Params{Src: ff.NewSource(5), Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if open := o.OpenSpanName(); open != "" {
		t.Fatalf("span %q left open after cancellation", open)
	}
}

// TestSolvePanicLeavesNoOpenSpan panics out of the Krylov doubling and
// asserts the defer guards still closed every span during unwinding.
func TestSolvePanicLeavesNoOpenSpan(t *testing.T) {
	src := ff.NewSource(313)
	f, a := randomNonsingularP62(src, 6)
	b := ff.SampleVec[uint64](f, src, 6, f.Modulus())

	o := obs.New(0)
	prev := obs.Active()
	obs.SetActive(o)
	defer obs.SetActive(prev)

	mul := &hookMul{hook: func(call int) {
		if call == 3 {
			panic("mid-krylov failure injection")
		}
	}}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected the injected panic to propagate")
			}
		}()
		Solve[uint64](f, mul, a, b, Params{Src: ff.NewSource(5)})
	}()
	if open := o.OpenSpanName(); open != "" {
		t.Fatalf("span %q left open after panic", open)
	}
	// The spans closed by the unwind must have committed records.
	totals := o.PhaseTotals()
	if totals[obs.PhasePrecondition].Count == 0 {
		t.Fatal("precondition span not committed before the panic")
	}
	if totals[obs.PhaseKrylov].Count == 0 {
		t.Fatal("krylov span not committed by its defer guard")
	}
}

// TestSolveRecordsAttemptTelemetry pins the always-on side of the pipeline:
// one successful Solve leaves an attempt record (feeding BoundsReport) and
// one flight-ring entry with no Observer and no Logger configured.
func TestSolveRecordsAttemptTelemetry(t *testing.T) {
	obs.ResetAttempts()
	obs.ResetFlight()
	t.Cleanup(func() {
		obs.ResetAttempts()
		obs.ResetFlight()
	})
	src := ff.NewSource(317)
	f, a := randomNonsingularP62(src, 5)
	b := ff.SampleVec[uint64](f, src, 5, f.Modulus())
	if _, err := Solve[uint64](f, matrix.Classical[uint64]{}, a, b, Params{Src: ff.NewSource(5)}); err != nil {
		t.Fatal(err)
	}
	lines := obs.BoundsReport()
	var found bool
	for _, l := range lines {
		if l.Solver == "kp.solve" && l.N == 5 {
			found = true
			if l.ByOutcome[obs.OutcomeSuccess] == 0 {
				t.Fatalf("no success outcome recorded: %+v", l)
			}
		}
	}
	if !found {
		t.Fatalf("no kp.solve attempt group: %+v", lines)
	}
	entries := obs.FlightEntries()
	if len(entries) != 1 {
		t.Fatalf("flight entries = %d, want 1", len(entries))
	}
	if e := entries[0]; e.Op != "kp.solve" || e.N != 5 || e.Outcome != "ok" || e.Attempts < 1 {
		t.Fatalf("flight entry wrong: %+v", e)
	}
}

// TestSolveStructuredLogging wires a slog.Logger through Params and checks
// the per-attempt and per-call records come out with the documented keys.
func TestSolveStructuredLogging(t *testing.T) {
	src := ff.NewSource(331)
	f, a := randomNonsingularP62(src, 5)
	b := ff.SampleVec[uint64](f, src, 5, f.Modulus())
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	if _, err := Solve[uint64](f, matrix.Classical[uint64]{}, a, b, Params{Src: ff.NewSource(5), Logger: logger}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"msg":"kp.attempt"`, `"msg":"kp.done"`, `"solver":"kp.solve"`, `"outcome":"success"`, `"outcome":"ok"`, `"n":5`} {
		if !strings.Contains(out, want) {
			t.Fatalf("log output missing %s:\n%s", want, out)
		}
	}
}

// TestPhaseErrorTagging covers the error → (outcome, phase) classification
// the attempt statistics are built from.
func TestPhaseErrorTagging(t *testing.T) {
	if got := failurePhase(inPhase(obs.PhaseMinPoly, ff.ErrDivisionByZero)); got != obs.PhaseMinPoly {
		t.Fatalf("failurePhase = %q", got)
	}
	if got := failurePhase(errors.New("plain")); got != "" {
		t.Fatalf("untagged failurePhase = %q", got)
	}
	if inPhase("any", nil) != nil {
		t.Fatal("inPhase(nil) must stay nil")
	}
	wrapped := inPhase(obs.PhaseBacksolve, ff.ErrDivisionByZero)
	if !errors.Is(wrapped, ff.ErrDivisionByZero) {
		t.Fatal("inPhase must preserve errors.Is on the sentinel")
	}
	if got := outcomeOf(wrapped); got != obs.OutcomeDivZero {
		t.Fatalf("outcomeOf(div) = %q", got)
	}
	if got := outcomeOf(matrix.ErrSingular); got != obs.OutcomeDivZero {
		t.Fatalf("outcomeOf(singular) = %q", got)
	}
	if got := outcomeOf(errors.New("boom")); got != obs.OutcomeError {
		t.Fatalf("outcomeOf(other) = %q", got)
	}
	if got := outcomeOf(nil); got != obs.OutcomeSuccess {
		t.Fatalf("outcomeOf(nil) = %q", got)
	}
}
