package kp

import (
	"sync"
	"testing"

	"repro/internal/ff"
	"repro/internal/matrix"
)

// TestFactorizationConcurrentSolve hammers one cached Factorization from
// many goroutines — the kpd cache-hit pattern — and verifies every result.
// Run under -race this is the regression test for the shared power-ladder
// mutation: before the snapshot/merge fix, concurrent backsolves appended
// to fa.pows through the same slice header.
func TestFactorizationConcurrentSolve(t *testing.T) {
	f := ff.MustFp64(ff.P62)
	src := ff.NewSource(11)
	mul := matrix.Classical[uint64]{}
	n := 24
	a := matrix.Random[uint64](f, src, n, n, f.Modulus())
	fa, err := Factor(f, mul, a, Params{Src: src.Split()})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const perG = 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// One independent random stream per goroutine: ff.Source is not
			// safe to share across goroutines.
			local := ff.NewSource(uint64(1000 + g))
			for i := 0; i < perG; i++ {
				b := ff.SampleVec[uint64](f, local, n, f.Modulus())
				x, err := fa.Solve(b)
				if err != nil {
					errs <- err
					return
				}
				if !ff.VecEqual[uint64](f, a.MulVec(f, x), b) {
					t.Errorf("goroutine %d: concurrent Factorization.Solve returned a wrong answer", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestFactorizationConcurrentColdLadder resets the power ladder before the
// concurrent hammer, so every goroutine races to rebuild it — the worst
// case for the ladder cache. The merge keeps one winner; all answers must
// still verify.
func TestFactorizationConcurrentColdLadder(t *testing.T) {
	f := ff.MustFp64(ff.P62)
	src := ff.NewSource(13)
	mul := matrix.Classical[uint64]{}
	n := 17 // not a power of two: exercises the ladder's ragged final round
	a := matrix.Random[uint64](f, src, n, n, f.Modulus())
	fa, err := Factor(f, mul, a, Params{Src: src.Split()})
	if err != nil {
		t.Fatal(err)
	}
	// Forget the ladder built during certification (white-box: same pkg).
	fa.mu.Lock()
	fa.pows = nil
	fa.mu.Unlock()

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			local := ff.NewSource(uint64(2000 + g))
			b := ff.SampleVec[uint64](f, local, n, f.Modulus())
			x, err := fa.Solve(b)
			if err != nil {
				t.Errorf("goroutine %d: %v", g, err)
				return
			}
			if !ff.VecEqual[uint64](f, a.MulVec(f, x), b) {
				t.Errorf("goroutine %d: wrong answer from cold-ladder concurrent solve", g)
			}
		}(g)
	}
	wg.Wait()

	// The merged ladder must be a usable cache: one more solve reuses it.
	fa.mu.Lock()
	got := len(fa.pows)
	fa.mu.Unlock()
	if got == 0 {
		t.Fatal("no goroutine published its rebuilt ladder")
	}
	b := ff.SampleVec[uint64](f, ff.NewSource(3000), n, f.Modulus())
	x, err := fa.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if !ff.VecEqual[uint64](f, a.MulVec(f, x), b) {
		t.Fatal("solve after merge returned a wrong answer")
	}
}

// TestFactorizationConcurrentInverseApply exercises the block path (the
// /v1/solve_batch cache hit) concurrently.
func TestFactorizationConcurrentInverseApply(t *testing.T) {
	f := ff.MustFp64(ff.P62)
	src := ff.NewSource(17)
	mul := matrix.Classical[uint64]{}
	n := 16
	a := matrix.Random[uint64](f, src, n, n, f.Modulus())
	fa, err := Factor(f, mul, a, Params{Src: src.Split()})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			local := ff.NewSource(uint64(4000 + g))
			bm := matrix.Random[uint64](f, local, n, 3, f.Modulus())
			x, err := fa.InverseApply(bm)
			if err != nil {
				t.Errorf("goroutine %d: %v", g, err)
				return
			}
			if !mul.Mul(f, a, x).Equal(f, bm) {
				t.Errorf("goroutine %d: wrong block answer", g)
			}
		}(g)
	}
	wg.Wait()
}
