package kp

import (
	"repro/internal/ff"
	"repro/internal/matrix"
)

// Legacy entry points: the pre-Params signatures, kept as thin wrappers so
// existing callers keep compiling. Each forwards to the canonical driver
// with Params{Src, Subset, Retries}; new code should call the canonical
// name with a Params literal (the zero value is a valid default).

// SolveLegacy solves A·x = b with the old positional knobs.
//
// Deprecated: use Solve with Params.
func SolveLegacy[E any](f ff.Field[E], mul matrix.Multiplier[E], a *matrix.Dense[E], b []E, src *ff.Source, subset uint64, retries int) ([]E, error) {
	return Solve(f, mul, a, b, Params{Src: src, Subset: subset, Retries: retries})
}

// DetLegacy computes det(A) with the old positional knobs.
//
// Deprecated: use Det with Params.
func DetLegacy[E any](f ff.Field[E], mul matrix.Multiplier[E], a *matrix.Dense[E], src *ff.Source, subset uint64, retries int) (E, error) {
	return Det(f, mul, a, Params{Src: src, Subset: subset, Retries: retries})
}

// RankLegacy computes rank(A) with the old positional knobs.
//
// Deprecated: use Rank with Params.
func RankLegacy[E any](f ff.Field[E], a *matrix.Dense[E], src *ff.Source, subset uint64, retries int) (int, error) {
	return Rank(f, a, Params{Src: src, Subset: subset, Retries: retries})
}

// NullspaceLegacy computes a right-nullspace basis with the old positional
// knobs.
//
// Deprecated: use Nullspace with Params.
func NullspaceLegacy[E any](f ff.Field[E], a *matrix.Dense[E], src *ff.Source, subset uint64, retries int) (*matrix.Dense[E], error) {
	return Nullspace(f, a, Params{Src: src, Subset: subset, Retries: retries})
}

// SolveSingularLegacy solves a possibly-singular system with the old
// positional knobs.
//
// Deprecated: use SolveSingular with Params.
func SolveSingularLegacy[E any](f ff.Field[E], a *matrix.Dense[E], b []E, src *ff.Source, subset uint64, retries int) ([]E, error) {
	return SolveSingular(f, a, b, Params{Src: src, Subset: subset, Retries: retries})
}

// LeastSquaresLegacy computes a least-squares solution with the old
// positional knobs.
//
// Deprecated: use LeastSquares with Params.
func LeastSquaresLegacy[E any](f ff.Field[E], mul matrix.Multiplier[E], a *matrix.Dense[E], b []E, src *ff.Source, subset uint64, retries int) ([]E, error) {
	return LeastSquares(f, mul, a, b, Params{Src: src, Subset: subset, Retries: retries})
}

// TransposedSolveLegacy solves Aᵀ·x = b with the old positional knobs.
//
// Deprecated: use TransposedSolve with Params.
func TransposedSolveLegacy[E any](f ff.Field[E], a *matrix.Dense[E], b []E, src *ff.Source, subset uint64, retries int) ([]E, error) {
	return TransposedSolve(f, a, b, Params{Src: src, Subset: subset, Retries: retries})
}

// InverseLegacy computes A⁻¹ with the old positional knobs.
//
// Deprecated: use Inverse with Params.
func InverseLegacy[E any](f ff.Field[E], mul matrix.Multiplier[E], a *matrix.Dense[E], src *ff.Source, subset uint64, retries int) (*matrix.Dense[E], error) {
	return Inverse(f, mul, a, Params{Src: src, Subset: subset, Retries: retries})
}

// ResultantWiedemannLegacy computes Res(a, b) with the old positional
// knobs.
//
// Deprecated: use ResultantWiedemann with Params.
func ResultantWiedemannLegacy[E any](f ff.Field[E], a, b []E, src *ff.Source, subset uint64, retries int) (E, error) {
	return ResultantWiedemann(f, a, b, Params{Src: src, Subset: subset, Retries: retries})
}
