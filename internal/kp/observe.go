package kp

import (
	"context"
	"errors"
	"log/slog"
	"time"

	"repro/internal/ff"
	"repro/internal/matrix"
	"repro/internal/obs"
)

// isDivisionError reports the retryable unlucky-randomness failures: a
// division by zero mid-pipeline or a singular-system error from the
// structured substrate.
func isDivisionError(err error) bool {
	return errors.Is(err, ff.ErrDivisionByZero) || errors.Is(err, matrix.ErrSingular)
}

// Telemetry plumbing for the Las Vegas drivers: every randomized attempt is
// recorded into obs' attempt statistics (feeding obs.BoundsReport, which
// compares observed failure rates against equation (2), Lemma 2 and
// Theorem 2), optionally logged through Params.Logger, and every driver
// call leaves one flight-recorder entry for post-mortems. All of it is
// attempt-granular — the instrumented paths already pay Ω(n^ω) field
// operations per attempt, so a mutex hold and a handful of atomic adds per
// attempt are noise.

// Driver names under which attempts and flight entries are recorded.
const (
	solverSolve  = "kp.solve"
	solverBatch  = "kp.batch"
	solverFactor = "kp.factor"
)

// Retry-count and batch-size distributions (attempts consumed per driver
// call; right-hand sides per SolveBatch call).
var (
	solveAttemptsHist = obs.NewHistogram("solve.attempts")
	batchSizeHist     = obs.NewHistogram("solve.batch.size")
)

// phaseError tags a failure with the KP91 phase it surfaced in, so the
// attempt statistics can split failures by phase. Unwrap preserves
// errors.Is matching on the underlying sentinel (ff.ErrDivisionByZero,
// matrix.ErrSingular, ...).
type phaseError struct {
	phase string
	err   error
}

func (e *phaseError) Error() string { return e.err.Error() }
func (e *phaseError) Unwrap() error { return e.err }

// inPhase wraps a non-nil error with the phase it surfaced in.
func inPhase(phase string, err error) error {
	if err == nil {
		return nil
	}
	return &phaseError{phase: phase, err: err}
}

// failurePhase extracts the tagged phase of an error ("" when untagged).
func failurePhase(err error) string {
	var pe *phaseError
	if errors.As(err, &pe) {
		return pe.phase
	}
	return ""
}

// outcomeOf classifies an attempt error into the obs outcome taxonomy.
func outcomeOf(err error) string {
	switch {
	case err == nil:
		return obs.OutcomeSuccess
	case errors.Is(err, ErrRetriesExhausted):
		return obs.OutcomeVerifyFailed
	case isDivisionError(err):
		return obs.OutcomeDivZero
	default:
		return obs.OutcomeError
	}
}

// attemptRecorder accumulates one driver call's attempt telemetry: per-
// attempt records plus the driver-level flight entry and retry-count
// sample on finish.
type attemptRecorder struct {
	solver  string
	n       int
	rhs     int
	subset  uint64
	logger  *slog.Logger
	started time.Time
	count   int
	tc      obs.TraceContext // owning request identity (zero when untraced)
	scope   *obs.TraceScope  // owning request scope, for attempt accounting
}

// newAttemptRecorder starts the driver-level clock. p must be filled. When
// p.Ctx carries a trace context (kpd requests, traced CLI runs) every
// attempt record, log line and the flight entry are tagged with it, and a
// full TraceScope additionally receives the per-request attempt count the
// tail sampler keys its "unlucky" retention rule on.
func newAttemptRecorder(solver string, n, rhs int, p Params) *attemptRecorder {
	return &attemptRecorder{
		solver: solver, n: n, rhs: rhs, subset: p.Subset,
		logger: p.Logger, started: time.Now(),
		tc:    obs.TraceFromContext(p.Ctx),
		scope: obs.ScopeFromContext(p.Ctx),
	}
}

// attempt records one Las Vegas attempt with the given outcome and failure
// phase (both "" resolve to a success record).
func (r *attemptRecorder) attempt(outcome, phase string, wall time.Duration) {
	if outcome == "" {
		outcome = obs.OutcomeSuccess
	}
	r.count++
	r.scope.NoteAttempt()
	obs.RecordAttempt(obs.Attempt{
		Solver: r.solver, N: r.n, Subset: r.subset,
		Outcome: outcome, Phase: phase, Wall: wall,
	})
	if r.logger != nil {
		attrs := []slog.Attr{
			slog.String("solver", r.solver),
			slog.Int("attempt", r.count),
			slog.Int("n", r.n),
			slog.Uint64("subset", r.subset),
			slog.String("outcome", outcome),
			slog.String("phase", phase),
			slog.Duration("wall", wall),
		}
		if !r.tc.IsZero() {
			attrs = append(attrs, slog.String("trace", r.tc.Trace.String()))
		}
		r.logger.LogAttrs(context.Background(), slog.LevelInfo, "kp.attempt", attrs...)
	}
}

// attemptErr records one failed attempt classified from its error.
func (r *attemptRecorder) attemptErr(err error, wall time.Duration) {
	r.attempt(outcomeOf(err), failurePhase(err), wall)
}

// finish closes the driver call: the retry-count sample, the flight-ring
// entry, and (when logging) one driver-level record. err == nil is a
// successful call.
func (r *attemptRecorder) finish(err error) {
	solveAttemptsHist.Observe(int64(r.count))
	outcome := "ok"
	if err != nil {
		outcome = err.Error()
	}
	obs.RecordFlight(obs.FlightEntry{
		Op: r.solver, N: r.n, Rhs: r.rhs, Subset: r.subset,
		Attempts: r.count, Outcome: outcome, Wall: time.Since(r.started),
		Trace: r.tc.Trace, Span: r.tc.Span,
	})
	if r.logger != nil {
		level := slog.LevelInfo
		if err != nil {
			level = slog.LevelWarn
		}
		attrs := []slog.Attr{
			slog.String("solver", r.solver),
			slog.Int("n", r.n),
			slog.Int("attempts", r.count),
			slog.String("outcome", outcome),
			slog.Duration("wall", time.Since(r.started)),
		}
		if !r.tc.IsZero() {
			attrs = append(attrs, slog.String("trace", r.tc.Trace.String()))
		}
		r.logger.LogAttrs(context.Background(), level, "kp.done", attrs...)
	}
}
