package kp

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"math/big"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/ff"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/rns"
)

// Exact solving over ℤ and ℚ (§5 of the paper: "integer determinants,
// least squares over ℚ"). The abstract-field hypothesis is what makes this
// a thin layer: the Theorem 4 machinery runs unchanged over every residue
// field F_p, so one characteristic-0 problem becomes rns.PrimesFor(bound)
// fully independent word-sized solves — the embarrassingly parallel axis —
// followed by Chinese remaindering and rational reconstruction from the
// rns package.
//
// The residue loop is Las Vegas about its primes: a prime dividing det(A)
// makes A singular mod p even though A is invertible over ℚ. Factor then
// exhausts its retries, the engine marks the prime bad, draws the next
// prime from the deterministic sequence, and re-solves only that residue.
// Bad primes also carry information: every bad prime divides det(A), each
// exceeds 2^(PrimeBits−1), and |det(A)| is below the Hadamard bound the
// prime count was sized for — so once the bad primes' product exceeds the
// CRT modulus requirement, det(A) = 0 is *certified*, turning what looks
// like retry exhaustion into the correct answer (0 for Det, ErrSingular
// for Solve).

// ErrBoundTooSmall reports a forced rns.Params prime set or bound that the
// answer did not fit; see rns.ErrBoundTooSmall.
var ErrBoundTooSmall = rns.ErrBoundTooSmall

var (
	rnsResidueSolves = obs.NewCounter("rns.residues")
	rnsBadPrimes     = obs.NewCounter("rns.bad_primes")
	rnsCacheHits     = obs.NewCounter("rns.cache.hits")
	rnsCacheMisses   = obs.NewCounter("rns.cache.misses")
	// rnsEfficiency is the last run's realized residue fan-out speedup in
	// milli-units (2500 = 2.5× — the metrics registry is integral). The SLO
	// engine's efficiency_floor objective watches it.
	rnsEfficiency = obs.NewGauge("rns.parallel.efficiency.milli")
)

// DefaultFactorCacheCap bounds the per-engine factorization cache: one
// entry is a Factorization[uint64] for one (matrix, prime) pair — the
// Krylov ladder and charpoly, O(n²) words — so repeated requests for the
// same matrix (a kpd client iterating right-hand sides) skip the entire
// Theorem 4 front end per residue.
const DefaultFactorCacheCap = 256

// RingStats reports how a multi-modulus run spent its time — the numbers
// behind the kpbench -ring rows and the kpd response fields.
type RingStats struct {
	// Residues is the number of residue fields that contributed to the CRT
	// modulus (bad primes excluded).
	Residues int `json:"residues"`
	// BadPrimes counts primes discarded because they divide det(A).
	BadPrimes int `json:"bad_primes"`
	// CacheHits / CacheMisses count residue factorization cache lookups.
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	// Primes is the final residue prime set, index-aligned with the CRT
	// combination (replacement primes in place of bad ones).
	Primes []uint64 `json:"primes,omitempty"`
	// PrimesNs is the bound/prime-generation phase (rns/primes).
	PrimesNs int64 `json:"primes_ns"`
	// ResidueWallNs is the wall time of the concurrent residue phase;
	// ResidueSumNs is the same work serialized (sum over residues), so
	// ResidueSumNs / ResidueWallNs is the realized parallel speedup.
	ResidueWallNs int64 `json:"residue_wall_ns"`
	ResidueSumNs  int64 `json:"residue_sum_ns"`
	// CRTNs is Chinese remaindering plus rational reconstruction (rns/crt);
	// VerifyNs the a-posteriori exact check (rns/verify).
	CRTNs    int64 `json:"crt_ns"`
	VerifyNs int64 `json:"verify_ns"`
	// ParallelEfficiency = ResidueSumNs / ResidueWallNs.
	ParallelEfficiency float64 `json:"parallel_efficiency"`
	// Verified reports that the exact a-posteriori check ran and passed.
	Verified bool `json:"verified"`
}

func (s *RingStats) finishTiming() {
	if s.ResidueWallNs > 0 {
		s.ParallelEfficiency = float64(s.ResidueSumNs) / float64(s.ResidueWallNs)
		rnsEfficiency.Set(int64(s.ParallelEfficiency * 1000))
	}
}

// IntEngine drives exact solves over ℤ and ℚ. It owns the residue
// factorization cache, so holding one engine across calls (as kpd does)
// lets repeated requests on the same matrix reuse every per-prime Krylov
// front end; the prime sequence is deterministic per matrix, so repeats
// hit the same keys. Safe for concurrent use.
type IntEngine struct {
	mul matrix.Multiplier[uint64]

	mu    sync.Mutex
	cache map[string]*list.Element
	order *list.List // front = most recently used
	cap   int
}

type cacheEntry struct {
	key string
	fa  *Factorization[uint64]
}

// NewIntEngine returns an engine multiplying with mul (nil selects the
// classical multiplier) and a DefaultFactorCacheCap-entry residue cache.
func NewIntEngine(mul matrix.Multiplier[uint64]) *IntEngine {
	if mul == nil {
		mul = matrix.Classical[uint64]{}
	}
	return &IntEngine{
		mul:   mul,
		cache: make(map[string]*list.Element),
		order: list.New(),
		cap:   DefaultFactorCacheCap,
	}
}

// CacheLen returns the number of cached residue factorizations.
func (e *IntEngine) CacheLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cache)
}

func (e *IntEngine) cacheGet(key string) *Factorization[uint64] {
	e.mu.Lock()
	defer e.mu.Unlock()
	el, ok := e.cache[key]
	if !ok {
		return nil
	}
	e.order.MoveToFront(el)
	return el.Value.(*cacheEntry).fa
}

func (e *IntEngine) cachePut(key string, fa *Factorization[uint64]) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if el, ok := e.cache[key]; ok {
		e.order.MoveToFront(el)
		el.Value.(*cacheEntry).fa = fa
		return
	}
	e.cache[key] = e.order.PushFront(&cacheEntry{key: key, fa: fa})
	for len(e.cache) > e.cap {
		el := e.order.Back()
		e.order.Remove(el)
		delete(e.cache, el.Value.(*cacheEntry).key)
	}
}

// fillInt resolves the engine-level zero values of p (the per-residue
// fields — Subset, per-field defaults — are resolved by the residue fields
// themselves).
func fillInt(p Params) Params {
	if p.Src == nil {
		p.Src = ff.NewSource(DefaultSeed)
	}
	if p.Retries <= 0 {
		p.Retries = DefaultRetries
	}
	return p
}

// Solve solves A·x = b exactly over ℚ for an integer system: A must be
// square and non-singular over ℚ. The result is the exact rational
// solution in lowest common-denominator form. A singular A returns
// ErrSingular (certified by the bad-prime product when rp is certified).
func (e *IntEngine) Solve(ctx context.Context, a *rns.IntMat, b []*big.Int, rp rns.Params, p Params) (*rns.RatVec, *RingStats, error) {
	if a.Rows != a.Cols || a.Rows == 0 {
		return nil, nil, fmt.Errorf("kp: SolveInt needs a non-empty square matrix (got %d×%d): %w", a.Rows, a.Cols, ErrBadShape)
	}
	if len(b) != a.Rows {
		return nil, nil, fmt.Errorf("kp: SolveInt right-hand side has %d entries, want %d: %w", len(b), a.Rows, ErrBadShape)
	}
	rp = rp.Fill()
	p = fillInt(p)
	stats := &RingStats{}

	// Phase rns/primes: size the CRT modulus and generate the prime set.
	tPrimes := time.Now()
	sp := obs.StartPhaseCtx(ctx, obs.PhaseRNSPrimes)
	certified := rp.Primes <= 0 && rp.Bound == nil
	bound := rp.Bound
	if bound == nil {
		bound = rns.SolveBound(a, b)
	}
	count := rp.Primes
	if count <= 0 {
		count = rns.PrimesFor(bound, rp.PrimeBits)
	}
	seq, err := ff.NewNTTPrimeSeq(rp.PrimeBits, rp.Log2n)
	if err != nil {
		sp.End()
		return nil, nil, err
	}
	primes, err := drawPrimes(seq, count)
	sp.End()
	stats.PrimesNs = time.Since(tPrimes).Nanoseconds()
	if err != nil {
		return nil, nil, err
	}

	// Phase rns/residue: fully independent solves, one per prime.
	run, err := e.runResidues(ctx, a, b, primes, seq, rp, p, count, stats)
	if err != nil {
		if errors.Is(err, errDetIsZero) {
			return nil, stats, fmt.Errorf("kp: matrix is singular over ℚ (%d residue primes divide det(A), product exceeds its bound): %w", stats.BadPrimes, ErrSingular)
		}
		return nil, stats, err
	}

	// Phase rns/crt: Chinese remaindering + rational reconstruction.
	tCRT := time.Now()
	sp = obs.StartPhaseCtx(ctx, obs.PhaseRNSCRT)
	basis := rns.NewCRTBasis(run.primes)
	// Forced prime count without an explicit bound: the widest symmetric
	// window the modulus supports, N = D = floor(√((M−1)/2)).
	numBound, denBound := bound, bound
	if rp.Primes > 0 && rp.Bound == nil {
		w := new(big.Int).Sub(basis.M, bigIntOne)
		w.Rsh(w, 1)
		w.Sqrt(w)
		numBound, denBound = w, w
	}
	n := a.Rows
	co := make([]uint64, len(run.primes))
	combined := make([]*big.Int, n)
	for i := 0; i < n; i++ {
		for k := range run.primes {
			co[k] = run.x[k][i]
		}
		combined[i] = basis.Combine(co)
	}
	v, err := rns.ReconstructVec(combined, basis.M, numBound, denBound)
	sp.End()
	stats.CRTNs = time.Since(tCRT).Nanoseconds()
	if err != nil {
		if !certified {
			err = fmt.Errorf("%w: %w", rns.ErrBoundTooSmall, err)
		}
		stats.finishTiming()
		return nil, stats, err
	}

	// Phase rns/verify: the exact check A·num = den·b over ℤ.
	if rp.Verify == rns.VerifyOn {
		tVerify := time.Now()
		sp = obs.StartPhaseCtx(ctx, obs.PhaseRNSVerify)
		ok := intResidualZero(a, v, b)
		sp.End()
		stats.VerifyNs = time.Since(tVerify).Nanoseconds()
		if !ok {
			stats.finishTiming()
			if !certified {
				return nil, stats, fmt.Errorf("kp: verification failed, A·x ≠ b for the reconstructed x: %w", rns.ErrBoundTooSmall)
			}
			return nil, stats, fmt.Errorf("kp: internal error: certified bound produced A·x ≠ b")
		}
		stats.Verified = true
	}
	stats.finishTiming()
	return v, stats, nil
}

// SolveRat solves A·x = b exactly over ℚ for rational inputs by clearing
// denominators row by row and running the integer pipeline.
func (e *IntEngine) SolveRat(ctx context.Context, a [][]*big.Rat, b []*big.Rat, rp rns.Params, p Params) (*rns.RatVec, *RingStats, error) {
	ai, bi, err := rns.ClearDenominators(a, b)
	if err != nil {
		return nil, nil, err
	}
	return e.Solve(ctx, ai, bi, rp, p)
}

// Det returns det(A) exactly over ℤ. A singular matrix returns 0: the
// certificate is the bad primes themselves (their product exceeds the
// Hadamard bound, so the only integer determinant they all divide is 0).
func (e *IntEngine) Det(ctx context.Context, a *rns.IntMat, rp rns.Params, p Params) (*big.Int, *RingStats, error) {
	if a.Rows != a.Cols || a.Rows == 0 {
		return nil, nil, fmt.Errorf("kp: DetInt needs a non-empty square matrix (got %d×%d): %w", a.Rows, a.Cols, ErrBadShape)
	}
	rp = rp.Fill()
	p = fillInt(p)
	stats := &RingStats{}

	tPrimes := time.Now()
	sp := obs.StartPhaseCtx(ctx, obs.PhaseRNSPrimes)
	certified := rp.Primes <= 0 && rp.Bound == nil
	bound := rp.Bound
	if bound == nil {
		bound = rns.HadamardBound(a)
	}
	count := rp.Primes
	if count <= 0 {
		count = rns.DetPrimesFor(bound, rp.PrimeBits)
	}
	seq, err := ff.NewNTTPrimeSeq(rp.PrimeBits, rp.Log2n)
	if err != nil {
		sp.End()
		return nil, nil, err
	}
	primes, err := drawPrimes(seq, count)
	sp.End()
	stats.PrimesNs = time.Since(tPrimes).Nanoseconds()
	if err != nil {
		return nil, nil, err
	}

	run, err := e.runResidues(ctx, a, nil, primes, seq, rp, p, count, stats)
	if err != nil {
		if errors.Is(err, errDetIsZero) {
			stats.Verified = certified // the bad-prime product is the proof
			stats.finishTiming()
			return new(big.Int), stats, nil
		}
		return nil, stats, err
	}

	tCRT := time.Now()
	sp = obs.StartPhaseCtx(ctx, obs.PhaseRNSCRT)
	basis := rns.NewCRTBasis(run.primes)
	det := rns.SymmetricReduce(basis.Combine(run.det), basis.M)
	sp.End()
	stats.CRTNs = time.Since(tCRT).Nanoseconds()

	if rp.Verify == rns.VerifyOn {
		// One fresh check prime: recompute det mod q for a prime outside
		// the CRT set and compare. A mismatch means the symmetric window
		// aliased — only reachable with a forced (undersized) prime set.
		tVerify := time.Now()
		sp = obs.StartPhaseCtx(ctx, obs.PhaseRNSVerify)
		ok, err := e.checkDetResidue(ctx, a, seq, rp, p, det, stats)
		sp.End()
		stats.VerifyNs = time.Since(tVerify).Nanoseconds()
		if err != nil {
			stats.finishTiming()
			return nil, stats, err
		}
		if !ok {
			stats.finishTiming()
			if !certified {
				return nil, stats, fmt.Errorf("kp: determinant check-prime mismatch: %w", rns.ErrBoundTooSmall)
			}
			return nil, stats, fmt.Errorf("kp: internal error: certified bound produced a determinant check-prime mismatch")
		}
		stats.Verified = true
	}
	stats.finishTiming()
	return det, stats, nil
}

// Rank returns rank(A) over ℚ for a rectangular integer matrix (Monte
// Carlo, like the underlying field driver): the rank mod p never exceeds
// the rank over ℚ and matches it unless p divides a specific minor, so the
// maximum over a few residue fields is correct with high probability.
func (e *IntEngine) Rank(ctx context.Context, a *rns.IntMat, rp rns.Params, p Params) (int, *RingStats, error) {
	if a.Rows == 0 || a.Cols == 0 {
		return 0, &RingStats{}, nil
	}
	rp = rp.Fill()
	p = fillInt(p)
	stats := &RingStats{}

	count := rp.Primes
	if count <= 0 {
		count = 3
	}
	tPrimes := time.Now()
	sp := obs.StartPhaseCtx(ctx, obs.PhaseRNSPrimes)
	seq, err := ff.NewNTTPrimeSeq(rp.PrimeBits, rp.Log2n)
	if err != nil {
		sp.End()
		return 0, nil, err
	}
	primes, err := drawPrimes(seq, count)
	sp.End()
	stats.PrimesNs = time.Since(tPrimes).Nanoseconds()
	if err != nil {
		return 0, nil, err
	}
	stats.Residues = count
	stats.Primes = primes

	srcs := make([]*ff.Source, count)
	for k := range srcs {
		srcs[k] = p.Src.Split()
	}
	tWall := time.Now()
	ranks := make([]int, count)
	errsAt := make([]error, count)
	var wg sync.WaitGroup
	var sum int64
	var sumMu sync.Mutex
	for k := range primes {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			t := time.Now()
			sp := obs.StartPhaseCtx(ctx, obs.PhaseRNSResidue)
			defer sp.End()
			f, err := ff.NewFp64(primes[k])
			if err != nil {
				errsAt[k] = err
				return
			}
			ad := reduceMat(a, primes[k])
			pk := p
			pk.Src = srcs[k]
			pk.Ctx = ctx
			ranks[k], errsAt[k] = Rank(f, ad, pk)
			sumMu.Lock()
			sum += time.Since(t).Nanoseconds()
			sumMu.Unlock()
		}(k)
	}
	wg.Wait()
	stats.ResidueWallNs = time.Since(tWall).Nanoseconds()
	stats.ResidueSumNs = sum
	best := 0
	for k := range ranks {
		if errsAt[k] != nil {
			return 0, stats, errsAt[k]
		}
		if ranks[k] > best {
			best = ranks[k]
		}
	}
	stats.finishTiming()
	return best, stats, nil
}

// SolveInt solves A·x = b exactly over ℚ for an integer system with a
// one-shot engine (no cross-call factorization cache; hold an IntEngine
// for that). A nil mul selects the classical multiplier; ctx comes from
// p.Ctx.
func SolveInt(mul matrix.Multiplier[uint64], a *rns.IntMat, b []*big.Int, rp rns.Params, p Params) (*rns.RatVec, *RingStats, error) {
	return NewIntEngine(mul).Solve(p.Ctx, a, b, rp, p)
}

// SolveRat solves a rational system A·x = b exactly with a one-shot
// engine; see IntEngine.SolveRat.
func SolveRat(mul matrix.Multiplier[uint64], a [][]*big.Rat, b []*big.Rat, rp rns.Params, p Params) (*rns.RatVec, *RingStats, error) {
	return NewIntEngine(mul).SolveRat(p.Ctx, a, b, rp, p)
}

// DetInt returns det(A) over ℤ with a one-shot engine; see IntEngine.Det.
func DetInt(mul matrix.Multiplier[uint64], a *rns.IntMat, rp rns.Params, p Params) (*big.Int, *RingStats, error) {
	return NewIntEngine(mul).Det(p.Ctx, a, rp, p)
}

// RankInt returns rank(A) over ℚ with a one-shot engine; see
// IntEngine.Rank.
func RankInt(mul matrix.Multiplier[uint64], a *rns.IntMat, rp rns.Params, p Params) (int, *RingStats, error) {
	return NewIntEngine(mul).Rank(p.Ctx, a, rp, p)
}

// errDetIsZero is the internal signal that the bad-prime budget was
// exhausted: enough distinct primes divide det(A) that det(A) = 0 is
// certain. Det turns it into the answer 0, Solve into ErrSingular.
var errDetIsZero = errors.New("kp: bad-prime product certifies det = 0")

var bigIntOne = big.NewInt(1)

// residueRun is the output of the concurrent residue phase.
type residueRun struct {
	primes []uint64   // final prime set (replacements in place)
	x      [][]uint64 // x[k][i] = solution coordinate i mod primes[k]; nil in det mode
	det    []uint64   // det[k] = det(A) mod primes[k]
}

// runResidues executes one independent residue solve per prime on a
// bounded worker pool. b nil selects det mode (factor + determinant only).
// badBudget is the number of distinct bad primes whose product certifies
// det = 0 (the caller's prime count: count primes each > 2^(bits−1) always
// out-product the bound the count was sized for).
func (e *IntEngine) runResidues(ctx context.Context, a *rns.IntMat, b []*big.Int, primes []uint64, seq *ff.NTTPrimeSeq, rp rns.Params, p Params, badBudget int, stats *RingStats) (*residueRun, error) {
	count := len(primes)
	run := &residueRun{
		primes: primes,
		det:    make([]uint64, count),
	}
	if b != nil {
		run.x = make([][]uint64, count)
	}
	digest := a.Digest()

	// Split one child source per residue upfront, in index order, so the
	// randomness each residue sees is independent of scheduling.
	srcs := make([]*ff.Source, count)
	for k := range srcs {
		srcs[k] = p.Src.Split()
	}

	workers := rp.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > count {
		workers = count
	}

	rctx, cancel := context.WithCancel(contextOrBackground(ctx))
	defer cancel()
	var (
		mu       sync.Mutex // guards seq, badCount, firstErr, stats counters
		badCount int
		firstErr error
		sumNs    int64
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	jobs := make(chan int)
	tWall := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range jobs {
				for {
					t := time.Now()
					x, det, hit, err := e.solveResidue(rctx, a, digest, b, run.primes[k], srcs[k], p)
					mu.Lock()
					sumNs += time.Since(t).Nanoseconds()
					if hit {
						stats.CacheHits++
					} else if err == nil || isBadPrime(err) {
						stats.CacheMisses++
					}
					mu.Unlock()
					if err == nil {
						run.det[k] = det
						if b != nil {
							run.x[k] = x
						}
						rnsResidueSolves.Inc()
						break
					}
					if rctx.Err() != nil {
						return
					}
					if !isBadPrime(err) {
						fail(err)
						return
					}
					// Bad prime: primes[k] divides det(A). Replace it and
					// re-solve this residue only.
					rnsBadPrimes.Inc()
					obs.NoteBadPrimeReplacement(obs.TraceFromContext(rctx).Trace.String())
					mu.Lock()
					stats.BadPrimes++
					badCount++
					exhausted := badCount >= badBudget
					var next uint64
					var serr error
					if !exhausted {
						next, serr = seq.Next()
						srcs[k] = p.Src.Split()
					}
					mu.Unlock()
					if exhausted {
						fail(errDetIsZero)
						return
					}
					if serr != nil {
						fail(serr)
						return
					}
					run.primes[k] = next
				}
			}
		}()
	}
	for k := 0; k < count; k++ {
		select {
		case jobs <- k:
		case <-rctx.Done():
			k = count // stop feeding; workers drain on rctx
		}
	}
	close(jobs)
	wg.Wait()
	stats.ResidueWallNs = time.Since(tWall).Nanoseconds()
	stats.ResidueSumNs = sumNs
	stats.Residues = count
	stats.Primes = append([]uint64(nil), run.primes...)
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	return run, nil
}

// solveResidue runs one residue field end to end: reduce, factor (or hit
// the cache), determinant, and — in solve mode — the verified backsolve.
func (e *IntEngine) solveResidue(ctx context.Context, a *rns.IntMat, digest string, b []*big.Int, prime uint64, src *ff.Source, p Params) (x []uint64, det uint64, hit bool, err error) {
	sp := obs.StartPhaseCtx(ctx, obs.PhaseRNSResidue)
	defer sp.End()
	f, err := ff.NewFp64(prime)
	if err != nil {
		return nil, 0, false, err
	}
	key := digest + "|" + strconv.FormatUint(prime, 10) + "|" + string(p.Precond)
	fa := e.cacheGet(key)
	if fa != nil {
		hit = true
		rnsCacheHits.Inc()
	} else {
		rnsCacheMisses.Inc()
		pk := p
		pk.Src = src
		pk.Ctx = ctx
		fa, err = Factor(f, e.mul, reduceMat(a, prime), pk)
		if err != nil {
			return nil, 0, false, err
		}
		e.cachePut(key, fa)
	}
	det, err = fa.Det()
	if err != nil {
		return nil, 0, hit, err
	}
	if det == 0 {
		// Unreachable in practice (Factor certifies non-singularity), but a
		// zero here must count as a bad prime, not poison the CRT.
		return nil, 0, hit, fmt.Errorf("kp: det ≡ 0 mod %d: %w", prime, matrix.ErrSingular)
	}
	if b != nil {
		br := make([]uint64, len(b))
		rns.ReduceVecMod(b, prime, br)
		x, err = fa.SolveCtx(ctx, br)
		if err != nil {
			return nil, 0, hit, err
		}
	}
	return x, det, hit, nil
}

// checkDetResidue compares det mod a fresh check prime against a direct
// residue computation, replacing check primes that themselves divide det.
func (e *IntEngine) checkDetResidue(ctx context.Context, a *rns.IntMat, seq *ff.NTTPrimeSeq, rp rns.Params, p Params, det *big.Int, stats *RingStats) (bool, error) {
	digest := a.Digest()
	tmp := new(big.Int)
	for tries := 0; tries < 8; tries++ {
		q, err := seq.Next()
		if err != nil {
			return false, err
		}
		_, got, hit, err := e.solveResidue(ctx, a, digest, nil, q, p.Src.Split(), p)
		if hit {
			stats.CacheHits++
		} else if err == nil || isBadPrime(err) {
			stats.CacheMisses++
		}
		if err != nil {
			if isBadPrime(err) && ctxErr(ctx) == nil {
				stats.BadPrimes++
				rnsBadPrimes.Inc()
				obs.NoteBadPrimeReplacement(obs.TraceFromContext(ctx).Trace.String())
				continue
			}
			return false, err
		}
		want := tmp.Mod(det, tmp.SetUint64(q)).Uint64()
		return got == want, nil
	}
	return false, fmt.Errorf("kp: could not find a check prime not dividing det(A): %w", ErrRetriesExhausted)
}

// isBadPrime classifies residue failures attributable to the prime
// dividing det(A): the matrix is genuinely singular mod p, so the Las
// Vegas drivers exhaust their retries or hit zero divisions.
func isBadPrime(err error) bool {
	return errors.Is(err, ErrRetriesExhausted) || isDivisionError(err)
}

func reduceMat(a *rns.IntMat, p uint64) *matrix.Dense[uint64] {
	d := &matrix.Dense[uint64]{Rows: a.Rows, Cols: a.Cols, Data: make([]uint64, a.Rows*a.Cols)}
	a.ReduceMod(p, d.Data)
	return d
}

func drawPrimes(seq *ff.NTTPrimeSeq, count int) ([]uint64, error) {
	primes := make([]uint64, count)
	for k := range primes {
		p, err := seq.Next()
		if err != nil {
			return nil, err
		}
		primes[k] = p
	}
	return primes, nil
}

func contextOrBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// intResidualZero checks A·num == den·b over ℤ.
func intResidualZero(a *rns.IntMat, v *rns.RatVec, b []*big.Int) bool {
	n := a.Rows
	acc := new(big.Int)
	term := new(big.Int)
	rhs := new(big.Int)
	for i := 0; i < n; i++ {
		acc.SetInt64(0)
		for j := 0; j < a.Cols; j++ {
			acc.Add(acc, term.Mul(a.At(i, j), v.Num[j]))
		}
		rhs.Mul(v.Den, b[i])
		if acc.Cmp(rhs) != 0 {
			return false
		}
	}
	return true
}
