package kp

import (
	"context"
	"time"

	"repro/internal/ff"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/structured"
)

// Implicit preconditioning (PrecondImplicit): the Theorem 4 pipeline with
// Ã = A·H·D left as a composition of black boxes instead of a materialized
// dense matrix. One Ã-apply is one dense matrix-vector product (O(n²)),
// one cached-NTT Hankel apply (O(n log n)) and one diagonal scale (O(n)),
// so the 2n-term Krylov sequence costs O(n³ → n²·(n applies)) — in total
// O(n² log n) field work against the dense route's O(n^ω log n) formation
// and doubling. The answers are identical to the dense route: both consume
// the same randomness stream, run the same exact field arithmetic on the
// same operator, and fail (division by zero / verification) on exactly the
// same draws, so the Las Vegas retry path is shared bit for bit.

// timedBox attributes per-apply wall time and call counts to the innermost
// open obs span, surfacing as the apply_ns/apply_calls span fields and
// kpbench's apply_ns column.
type timedBox[E any] struct{ b matrix.BlackBox[E] }

func (t timedBox[E]) Dims() (int, int) { return t.b.Dims() }

func (t timedBox[E]) Apply(f ff.Field[E], x []E) []E {
	start := time.Now()
	out := t.b.Apply(f, x)
	obs.AddApplyTime(time.Since(start), 1)
	return out
}

// preconditionBox assembles the implicit Ã = A·H·D operator. No field
// operation happens here — the precondition phase in implicit mode is pure
// wiring, which is the measurable "zero dense Mul calls" claim.
func preconditionBox[E any](f ff.Field[E], a *matrix.Dense[E], rnd Randomness[E]) (matrix.BlackBox[E], structured.Hankel[E]) {
	h := structured.NewHankel(rnd.H)
	box := matrix.ComposedBox[E]{Boxes: []matrix.BlackBox[E]{
		matrix.DenseBox[E]{M: a},
		h,
		matrix.DiagBox[E]{D: rnd.D},
	}}
	return timedBox[E]{b: box}, h
}

// charPolyImplicitCtx mirrors charPolyCtx on a black-box Ã: the sequence
// a_i = u·Ãⁱ·v by 2n−1 iterative applies, then the Lemma 1 Toeplitz system
// through the iterative Cayley–Hamilton solver (structured.Solve), whose
// inner products are the cached-NTT Toeplitz applies — never a dense
// Krylov-doubling ladder.
func charPolyImplicitCtx[E any](ctx context.Context, f ff.Field[E], atilde matrix.BlackBox[E], rnd Randomness[E], krylovPhase, minpolyPhase string) ([]E, error) {
	n, _ := atilde.Dims()
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	sp := obs.StartPhaseCtx(ctx, krylovPhase)
	defer sp.End()
	ks := matrix.KrylovIterative(f, atilde, rnd.V, 2*n)
	a := matrix.ProjectSequence(f, rnd.U, ks)
	sp.End()
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	sp = obs.StartPhaseCtx(ctx, minpolyPhase)
	defer sp.End()
	tm := structured.NewToeplitz(a[:2*n-1])
	rhs := a[n : 2*n]
	c, err := structured.Solve(f, tm, rhs)
	sp.End()
	if err != nil {
		return nil, inPhase(minpolyPhase, err)
	}
	cp := make([]E, n+1)
	for i := 0; i < n; i++ {
		cp[i] = f.Neg(c[n-1-i])
	}
	cp[n] = f.One()
	return cp, nil
}

// chBacksolveBox is the iterative Cayley–Hamilton backsolve on a black-box
// operator: x̃ = −(1/c₀)·Σ_{j=0}^{n−1} c_{j+1}·Ãʲ·b with n−1 applies. The
// caller supplies scale = −1/c₀.
func chBacksolveBox[E any](f ff.Field[E], atilde matrix.BlackBox[E], cp []E, scale E, b []E) []E {
	n := len(b)
	acc := ff.VecZero(f, n)
	v := ff.VecCopy(b)
	for j := 0; j < n; j++ {
		ff.VecMulAddInto(f, acc, cp[j+1], v)
		if j < n-1 {
			v = atilde.Apply(f, v)
		}
	}
	ff.VecScaleInto(f, acc, scale, acc)
	return acc
}

// undoPrecondition maps the preconditioned solution x̃ back: x = H·(D·x̃).
func undoPrecondition[E any](f ff.Field[E], h structured.Hankel[E], d []E, xt []E) []E {
	dx := make([]E, len(xt))
	for i := range dx {
		dx[i] = f.Mul(d[i], xt[i])
	}
	return h.MulVec(f, dx)
}

// solveOnceImplicitCtx is one branch-free Theorem 4 attempt in implicit
// mode: same phases, same randomness consumption and same failure pattern
// as solveOnceCtx, with every dense matrix-matrix product replaced by
// black-box applies.
func solveOnceImplicitCtx[E any](ctx context.Context, f ff.Field[E], a *matrix.Dense[E], b []E, rnd Randomness[E]) ([]E, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		panic("kp: SolveOnce needs a square system")
	}
	sp := obs.StartPhaseCtx(ctx, obs.PhasePrecondition)
	defer sp.End()
	atilde, h := preconditionBox(f, a, rnd)
	sp.End()
	cp, err := charPolyImplicitCtx(ctx, f, atilde, rnd, obs.PhaseKrylov, obs.PhaseMinPoly)
	if err != nil {
		return nil, err
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	sp = obs.StartPhaseCtx(ctx, obs.PhaseBacksolve)
	defer sp.End()
	scale, err := f.Div(f.Neg(f.One()), cp[0])
	if err != nil {
		return nil, inPhase(obs.PhaseBacksolve, err)
	}
	xt := chBacksolveBox(f, atilde, cp, scale, b)
	return undoPrecondition(f, h, rnd.D, xt), nil
}
