package kp

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/ff"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/structured"
)

// Batched multi-RHS solve engine. Everything expensive in a Theorem 4
// attempt — the preconditioning Ã = A·H·D, the Krylov doubling and its
// Ã^{2^i} power ladder, and the Lemma 1 characteristic-polynomial recovery
// — depends only on (A, randomness), never on the right-hand side. The
// engine therefore runs that front end once and amortizes it across k
// right-hand sides: the per-RHS tail is one block Cayley–Hamilton
// backsolve, fused as matrix–matrix work over all pending columns, plus
// the A·X = B verification. At k = 8 this shares the ~dozen full n×n
// products of the squaring ladder and the minpoly Toeplitz machinery,
// leaving roughly one matrix product of marginal cost per extra RHS.
//
// The same split yields the reusable handle: Factor captures the certified
// front end in a Factorization whose Solve/InverseApply replay only the
// backsolve (observable as batch/backsolve spans with no further
// batch/krylov span).

// Factorization is the reusable product of the shared Theorem 4 front end
// for one non-singular matrix: the preconditioner, the drawn randomness,
// the characteristic polynomial of Ã, and the cached power ladder Ã^{2^i}.
// It is obtained from Factor and amortizes every subsequent solve against
// the same matrix down to one block backsolve.
//
// Solve, InverseApply and Det are safe for concurrent use: everything but
// the on-demand power-ladder cache is immutable after Factor, and the
// ladder is read and extended through a mutex-guarded snapshot/merge (each
// call works on a private copy of the slice header, so a concurrent
// extension is recomputed rather than raced on — see backsolve). The kpd
// factorization cache relies on this to hand one handle to many requests.
type Factorization[E any] struct {
	f      ff.Field[E]
	mul    matrix.Multiplier[E]
	a      *matrix.Dense[E]
	rnd    Randomness[E]
	atilde *matrix.Dense[E]
	hd     *matrix.Dense[E] // dense Hankel preconditioner H
	cp     []E              // char poly of Ã, low degree first, cp[n] = 1
	scale  E                // −1/cp[0]
	n      int

	// mode is the preconditioner realization this factorization was built
	// under (it determines the backsolve route and is part of the kpd cache
	// key). In PrecondImplicit, atilde/hd/pows stay nil and abox/h carry the
	// operator instead.
	mode PrecondMode
	abox matrix.BlackBox[E]
	h    structured.Hankel[E]

	// mu guards pows, the Ã^{2^i} ladder shared by concurrent backsolves.
	// The individual matrices are immutable once appended; only the slice
	// itself mutates.
	mu   sync.Mutex
	pows []*matrix.Dense[E]
}

// Mode returns the preconditioner realization the factorization was built
// under.
func (fa *Factorization[E]) Mode() PrecondMode { return fa.mode }

// ladderSnapshot returns a private copy of the power-ladder slice header.
// The caller may append to it freely: the copy has its own backing array,
// and the shared matrices inside are never written after creation.
func (fa *Factorization[E]) ladderSnapshot() []*matrix.Dense[E] {
	fa.mu.Lock()
	defer fa.mu.Unlock()
	return append(make([]*matrix.Dense[E], 0, len(fa.pows)+2), fa.pows...)
}

// ladderMerge publishes a ladder extended by a backsolve, keeping the
// longest one seen. Concurrent extenders compute identical matrices (the
// ladder is the deterministic squaring sequence of Ã), so whichever copy
// wins, subsequent snapshots see a correct prefix of the same sequence.
func (fa *Factorization[E]) ladderMerge(ladder []*matrix.Dense[E]) {
	fa.mu.Lock()
	if len(ladder) > len(fa.pows) {
		fa.pows = ladder
	}
	fa.mu.Unlock()
}

// factorOnce runs the shared front end of one attempt with the supplied
// randomness, recording the batch/precondition, batch/krylov and
// batch/minpoly spans. A zero constant term (singular Ã: unlucky
// randomness or a singular input) surfaces as ff.ErrDivisionByZero.
func factorOnce[E any](ctx context.Context, f ff.Field[E], mul matrix.Multiplier[E], a *matrix.Dense[E], rnd Randomness[E], mode PrecondMode) (*Factorization[E], error) {
	if mode == PrecondImplicit {
		return factorOnceImplicit(ctx, f, mul, a, rnd)
	}
	n := a.Rows
	sp := obs.StartPhaseCtx(ctx, obs.PhaseBatchPrecondition)
	defer sp.End()
	hd := matrix.HankelDense(f, rnd.H)
	atilde := matrix.ScaleColumnsDiag(f, mul.Mul(f, a, hd), rnd.D)
	sp.End()
	pows := make([]*matrix.Dense[E], 0, 8)
	cp, err := charPolyCtx(ctx, f, mul, atilde, rnd, obs.PhaseBatchKrylov, obs.PhaseBatchMinPoly, &pows)
	if err != nil {
		return nil, err
	}
	scale, err := f.Div(f.Neg(f.One()), cp[0])
	if err != nil {
		return nil, inPhase(obs.PhaseBatchMinPoly, err)
	}
	return &Factorization[E]{
		f: f, mul: mul, a: a, rnd: rnd, atilde: atilde, hd: hd,
		cp: cp, scale: scale, pows: pows, n: n, mode: PrecondDense,
	}, nil
}

// factorOnceImplicit is the shared front end with Ã composed, never formed:
// the batch/precondition span performs no dense multiplication at all, and
// the Krylov/minpoly phases run on black-box applies.
func factorOnceImplicit[E any](ctx context.Context, f ff.Field[E], mul matrix.Multiplier[E], a *matrix.Dense[E], rnd Randomness[E]) (*Factorization[E], error) {
	n := a.Rows
	sp := obs.StartPhaseCtx(ctx, obs.PhaseBatchPrecondition)
	defer sp.End()
	abox, h := preconditionBox(f, a, rnd)
	sp.End()
	cp, err := charPolyImplicitCtx(ctx, f, abox, rnd, obs.PhaseBatchKrylov, obs.PhaseBatchMinPoly)
	if err != nil {
		return nil, err
	}
	scale, err := f.Div(f.Neg(f.One()), cp[0])
	if err != nil {
		return nil, inPhase(obs.PhaseBatchMinPoly, err)
	}
	return &Factorization[E]{
		f: f, mul: mul, a: a, rnd: rnd,
		cp: cp, scale: scale, n: n, mode: PrecondImplicit, abox: abox, h: h,
	}, nil
}

// backsolve computes X = A⁻¹·B for the columns of bm through the cached
// front end: one block Krylov doubling (reusing the Ã^{2^i} ladder, so no
// squarings recur), the fused Cayley–Hamilton combination
// −(1/c₀)·Σⱼ c_{j+1}·Ãʲ·B, and the preconditioner undo X = H·(D·X̃). The
// result is unverified — callers wrap it in their own batch/verify check.
func (fa *Factorization[E]) backsolve(ctx context.Context, bm *matrix.Dense[E]) *matrix.Dense[E] {
	sp := obs.StartPhaseCtx(ctx, obs.PhaseBatchBacksolve)
	defer sp.End()
	if fa.mode == PrecondImplicit {
		return fa.backsolveImplicit(bm)
	}
	f, n, k := fa.f, fa.n, bm.Cols
	ladder := fa.ladderSnapshot()
	wb := matrix.KrylovBlockDoubling(f, fa.mul, fa.atilde, bm, n, &ladder)
	fa.ladderMerge(ladder)
	xt := matrix.CombineKrylovBlocks(f, wb, k, fa.cp[1:n+1])
	// Fold the −1/c₀ scale and the diagonal D into one row sweep:
	// row i of D·(scale·X̃) is (scale·dᵢ)·X̃ᵢ.
	for i := 0; i < n; i++ {
		ci := f.Mul(fa.scale, fa.rnd.D[i])
		row := xt.Data[i*k : (i+1)*k]
		for j := range row {
			row[j] = f.Mul(ci, row[j])
		}
	}
	return fa.mul.Mul(f, fa.hd, xt)
}

// backsolveImplicit runs the per-column iterative Cayley–Hamilton backsolve
// on the composed operator: n−1 black-box applies per column (O(n² log n)
// each with the cached-NTT Hankel apply), then the structured undo
// x = H·(D·x̃) — no dense ladder, no dense H product.
func (fa *Factorization[E]) backsolveImplicit(bm *matrix.Dense[E]) *matrix.Dense[E] {
	f, n, k := fa.f, fa.n, bm.Cols
	out := matrix.NewDense(f, n, k)
	for j := 0; j < k; j++ {
		xt := chBacksolveBox(f, fa.abox, fa.cp, fa.scale, bm.Col(j))
		x := undoPrecondition(f, fa.h, fa.rnd.D, xt)
		for i := 0; i < n; i++ {
			out.Set(i, j, x[i])
		}
	}
	return out
}

// Dim returns the dimension of the factored matrix.
func (fa *Factorization[E]) Dim() int { return fa.n }

// Solve returns the verified solution of A·x = b, skipping the Krylov
// phase: only a batch/backsolve and a batch/verify span are recorded. A
// verification failure (probability ≤ 3n²/|S| per Factor, and only if the
// probe certification was also fooled) is reported as ErrRetriesExhausted
// — re-Factor to retry with fresh randomness.
func (fa *Factorization[E]) Solve(b []E) ([]E, error) {
	return fa.SolveCtx(nil, b)
}

// SolveCtx is Solve carrying a request context: spans record under the
// context's trace scope (per-request attribution in kpd) and ctx is not
// otherwise consulted — the backsolve is non-iterative, so there is no
// useful cancellation point inside it.
func (fa *Factorization[E]) SolveCtx(ctx context.Context, b []E) ([]E, error) {
	if len(b) != fa.n {
		return nil, fmt.Errorf("kp: Factorization.Solve needs a length-%d right-hand side (got %d): %w", fa.n, len(b), ErrBadShape)
	}
	bm := &matrix.Dense[E]{Rows: fa.n, Cols: 1, Data: append([]E(nil), b...)}
	x := fa.backsolve(ctx, bm)
	sp := obs.StartPhaseCtx(ctx, obs.PhaseBatchVerify)
	ok := ff.VecEqual(fa.f, fa.a.MulVec(fa.f, x.Col(0)), b)
	sp.End()
	if !ok {
		return nil, fmt.Errorf("kp: Factorization.Solve verification failed (stale or unlucky factorization): %w", ErrRetriesExhausted)
	}
	return x.Col(0), nil
}

// InverseApply returns the verified X = A⁻¹·B for all columns of bm in one
// fused backsolve. Any column failing verification fails the whole call
// with ErrRetriesExhausted (re-Factor to retry).
func (fa *Factorization[E]) InverseApply(bm *matrix.Dense[E]) (*matrix.Dense[E], error) {
	return fa.InverseApplyCtx(nil, bm)
}

// InverseApplyCtx is InverseApply carrying a request context for span
// attribution (see SolveCtx).
func (fa *Factorization[E]) InverseApplyCtx(ctx context.Context, bm *matrix.Dense[E]) (*matrix.Dense[E], error) {
	if bm.Rows != fa.n {
		return nil, fmt.Errorf("kp: Factorization.InverseApply needs %d-row columns (got %d): %w", fa.n, bm.Rows, ErrBadShape)
	}
	if bm.Cols == 0 {
		return matrix.NewDense(fa.f, fa.n, 0), nil
	}
	x := fa.backsolve(ctx, bm)
	sp := obs.StartPhaseCtx(ctx, obs.PhaseBatchVerify)
	ok := fa.mul.Mul(fa.f, fa.a, x).Equal(fa.f, bm)
	sp.End()
	if !ok {
		return nil, fmt.Errorf("kp: Factorization.InverseApply verification failed: %w", ErrRetriesExhausted)
	}
	return x, nil
}

// Det returns det(A) from the cached characteristic polynomial:
// det(Ã) = (−1)ⁿ·c₀ divided by det(H)·det(D). Unlike the standalone Det
// driver it does not cross-check independent randomizations — the answer
// is Monte Carlo with the factorization's ≤ 3n²/|S| error bound (the probe
// certification of Factor does not certify the determinant itself).
func (fa *Factorization[E]) Det() (E, error) {
	f := fa.f
	detTilde := fa.cp[0]
	if fa.n%2 == 1 {
		detTilde = f.Neg(detTilde)
	}
	detH, err := structured.DetHankel(f, structured.Hankel[E]{N: fa.n, D: fa.rnd.H})
	if err != nil {
		return detTilde, err
	}
	detD := balancedProduct(f, fa.rnd.D)
	return f.Div(detTilde, f.Mul(detH, detD))
}

// Factor runs the shared Theorem 4 front end for a non-singular matrix and
// returns a certified reusable handle. Certification solves one random
// probe system and checks A·x = probe, so a surviving Factorization has a
// correct characteristic polynomial except with the usual ≤ 3n²/|S|
// probability; every subsequent Solve additionally verifies its own
// result, keeping the Las Vegas guarantee. Requires characteristic 0 or
// > n.
func Factor[E any](f ff.Field[E], mul matrix.Multiplier[E], a *matrix.Dense[E], p Params) (*Factorization[E], error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("kp: Factor needs a square matrix (got %d×%d): %w", a.Rows, a.Cols, ErrBadShape)
	}
	p = fill(f, p)
	rec := newAttemptRecorder(solverFactor, n, 1, p)
	for attempt := 0; attempt < p.Retries; attempt++ {
		if err := ctxErr(p.Ctx); err != nil {
			rec.finish(err)
			return nil, err
		}
		rnd := DrawRandomness(f, p.Src, n, p.Subset)
		start := time.Now()
		fa, err := factorOnce(p.Ctx, f, mul, a, rnd, p.Precond)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				rec.finish(err)
				return nil, err
			}
			rec.attemptErr(err, time.Since(start))
			if isDivisionError(err) {
				continue // unlucky randomness (or singular input)
			}
			rec.finish(err)
			return nil, err
		}
		probe := ff.SampleVec(f, p.Src, n, p.Subset)
		x := fa.backsolve(p.Ctx, &matrix.Dense[E]{Rows: n, Cols: 1, Data: append([]E(nil), probe...)})
		sp := obs.StartPhaseCtx(p.Ctx, obs.PhaseBatchVerify)
		ok := ff.VecEqual(f, a.MulVec(f, x.Col(0)), probe)
		sp.End()
		if ok {
			rec.attempt(obs.OutcomeSuccess, "", time.Since(start))
			rec.finish(nil)
			return fa, nil
		}
		rec.attempt(obs.OutcomeVerifyFailed, obs.PhaseBatchVerify, time.Since(start))
	}
	rec.finish(ErrRetriesExhausted)
	return nil, ErrRetriesExhausted
}

// SolveBatch solves A·X = B for all k = B.Cols right-hand sides at once:
// one shared front end per attempt, one fused block backsolve over the
// still-pending columns, and a blocked verification. Columns that verify
// are committed; an unlucky column retries alone (with the other
// stragglers) under fresh randomness, so one bad draw never re-runs the
// whole batch. Results are exact and verified, hence bit-identical to k
// independent Solve calls. Requires characteristic 0 or > n.
func SolveBatch[E any](f ff.Field[E], mul matrix.Multiplier[E], a, bm *matrix.Dense[E], p Params) (*matrix.Dense[E], error) {
	n := a.Rows
	if a.Cols != n || bm.Rows != n {
		return nil, fmt.Errorf("kp: SolveBatch needs a square matrix and matching right-hand sides (A is %d×%d, B is %d×%d): %w",
			a.Rows, a.Cols, bm.Rows, bm.Cols, ErrBadShape)
	}
	k := bm.Cols
	out := matrix.NewDense(f, n, k)
	if k == 0 {
		return out, nil
	}
	p = fill(f, p)
	batchSizeHist.Observe(int64(k))
	rec := newAttemptRecorder(solverBatch, n, k, p)
	pending := make([]int, k)
	for i := range pending {
		pending[i] = i
	}
	for attempt := 0; attempt < p.Retries && len(pending) > 0; attempt++ {
		if err := ctxErr(p.Ctx); err != nil {
			rec.finish(err)
			return nil, err
		}
		rnd := DrawRandomness(f, p.Src, n, p.Subset)
		start := time.Now()
		fa, err := factorOnce(p.Ctx, f, mul, a, rnd, p.Precond)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				rec.finish(err)
				return nil, err
			}
			rec.attemptErr(err, time.Since(start))
			if isDivisionError(err) {
				continue // unlucky randomness (or singular input)
			}
			rec.finish(err)
			return nil, err
		}
		sub := pickColumns(f, bm, pending)
		x := fa.backsolve(p.Ctx, sub)
		sp := obs.StartPhaseCtx(p.Ctx, obs.PhaseBatchVerify)
		ax := fa.mul.Mul(f, a, x)
		var still []int
		for idx, col := range pending {
			verified := true
			for i := 0; i < n; i++ {
				if !f.Equal(ax.At(i, idx), bm.At(i, col)) {
					verified = false
					break
				}
			}
			if verified {
				for i := 0; i < n; i++ {
					out.Set(i, col, x.At(i, idx))
				}
			} else {
				still = append(still, col)
			}
		}
		sp.End()
		if len(still) == 0 {
			rec.attempt(obs.OutcomeSuccess, "", time.Since(start))
		} else {
			// At least one column failed its A·x = b check under this
			// randomness: the attempt counts as a verify failure even though
			// the verified columns were committed.
			rec.attempt(obs.OutcomeVerifyFailed, obs.PhaseBatchVerify, time.Since(start))
		}
		pending = still
	}
	if len(pending) > 0 {
		rec.finish(ErrRetriesExhausted)
		return nil, ErrRetriesExhausted
	}
	rec.finish(nil)
	return out, nil
}

// pickColumns gathers the listed columns of bm into a fresh dense matrix.
func pickColumns[E any](f ff.Field[E], bm *matrix.Dense[E], cols []int) *matrix.Dense[E] {
	out := matrix.NewDense(f, bm.Rows, len(cols))
	for i := 0; i < bm.Rows; i++ {
		for j, c := range cols {
			out.Set(i, j, bm.At(i, c))
		}
	}
	return out
}
