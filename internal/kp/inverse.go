package kp

import (
	"errors"
	"fmt"

	"repro/internal/circuit"
	"repro/internal/ff"
	"repro/internal/matrix"
)

// Theorem 6: the inverse circuit is the Baur–Strassen gradient of the
// determinant circuit. By Jacobi's formula ∂det(A)/∂a_{j,i} is the (j,i)
// cofactor, i.e. the (i,j) entry of the adjugate, so
//
//	(A⁻¹)_{i,j} = (∂det/∂a_{j,i}) / det(A)
//
// — the paper's A⁻¹ = ((−1)^{i+j}·∂_{x_{j,i}}(f))/f with the sign absorbed
// into the cofactor. Theorem 5 bounds the gradient circuit at 4× the
// length and O(1)× the depth of the determinant circuit, which preserves
// the O(n^ω log n) size / O((log n)²) depth of Theorem 4.

// TraceInverse builds the Theorem 6 inverse circuit for dimension n: n²
// inputs (A row-major), 5n−1 random inputs, n² outputs (A⁻¹ row-major).
func TraceInverse[E any](model ff.Field[E], mul matrix.Multiplier[circuit.Wire], n int) (*circuit.Builder, error) {
	b, err := TraceDet(model, mul, n)
	if err != nil {
		return nil, err
	}
	det := b.Outputs()[0]
	grads, err := circuit.Gradient(b, det)
	if err != nil {
		return nil, err
	}
	// grads[k] = ∂det/∂(input k); the first n² inputs are A row-major, so
	// ∂det/∂a_{j,i} is grads[j*n+i]. (A⁻¹)_{i,j} = grads[j*n+i]/det.
	outs := make([]circuit.Wire, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			w, err := b.Div(grads[j*n+i], det)
			if err != nil {
				return nil, err
			}
			outs[i*n+j] = w
		}
	}
	b.Return(outs...)
	return b, nil
}

// InverseFromCircuit evaluates a TraceInverse circuit on a concrete matrix
// with the given randomness.
func InverseFromCircuit[E any](b *circuit.Builder, f ff.Field[E], a *matrix.Dense[E], rnd Randomness[E]) (*matrix.Dense[E], error) {
	n := a.Rows
	inputs := append(append([]E{}, a.Data...), rnd.Flat()...)
	vals, err := circuit.Eval(b, f, inputs)
	if err != nil {
		return nil, err
	}
	return &matrix.Dense[E]{Rows: n, Cols: n, Data: vals}, nil
}

// Inverse is the Las Vegas Theorem 6 driver: build the inverse circuit
// once, then evaluate it with fresh randomness until A·A⁻¹ = I verifies.
// Requires characteristic 0 or > n.
func Inverse[E any](f ff.Field[E], mul matrix.Multiplier[E], a *matrix.Dense[E], p Params) (*matrix.Dense[E], error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("kp: Inverse needs a square matrix (got %d×%d): %w", a.Rows, a.Cols, ErrBadShape)
	}
	p = fill(f, p)
	circ, err := TraceInverse(f, matrix.Classical[circuit.Wire]{}, n)
	if err != nil {
		return nil, err
	}
	id := matrix.Identity(f, n)
	for attempt := 0; attempt < p.Retries; attempt++ {
		if err := ctxErr(p.Ctx); err != nil {
			return nil, err
		}
		rnd := DrawRandomness(f, p.Src, n, p.Subset)
		inv, err := InverseFromCircuit(circ, f, a, rnd)
		if err != nil {
			if errors.Is(err, ff.ErrDivisionByZero) {
				continue
			}
			return nil, err
		}
		if matrix.Mul(f, a, inv).Equal(f, id) {
			return inv, nil
		}
	}
	return nil, ErrRetriesExhausted
}
